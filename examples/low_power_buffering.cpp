// Low-power buffering via the cost/RAT frontier (paper reference [9]).
//
// Van Ginneken spends buffers freely to maximize the root RAT; most of the
// last buffers buy almost nothing. This example computes the full
// (buffer cost, achievable RAT) Pareto frontier, prints it, and picks the
// cheapest design within 1% / 5% of the timing optimum -- the classic
// low-power trade-off of Lillis, Cheng and Lin.
#include <iostream>

#include "analysis/reporting.hpp"
#include "core/cost_bounded.hpp"
#include "tree/generators.hpp"

int main() {
  using namespace vabi;

  tree::random_tree_options net_opts;
  net_opts.num_sinks = 80;
  net_opts.die_side_um = 9000.0;
  net_opts.seed = 5;
  const auto net = tree::make_random_tree(net_opts);

  core::cost_bounded_options opts;
  opts.base.library = timing::standard_library();
  opts.base.driver_res_ohm = 150.0;
  // Area-like costs: bigger buffers are pricier.
  opts.buffer_costs = {1.0, 2.0, 4.0};

  const auto r = core::run_cost_bounded_insertion(net, opts);
  std::cout << "net: " << net.num_sinks() << " sinks; frontier has "
            << r.frontier.size() << " points ("
            << r.stats.candidates_created << " candidates, "
            << r.stats.wall_seconds << " s)\n\n";

  analysis::text_table t{{"cost (area units)", "root RAT (ps)", "buffers"}};
  // Print a decimated view of the frontier (every step can be long).
  const std::size_t stride = std::max<std::size_t>(1, r.frontier.size() / 15);
  for (std::size_t i = 0; i + 1 < r.frontier.size(); i += stride) {
    const auto& p = r.frontier[i];
    t.add_row({analysis::fmt(p.cost, 0), analysis::fmt(p.root_rat_ps, 1),
               std::to_string(p.assignment.count())});
  }
  const auto& best = r.frontier.back();
  t.add_row({analysis::fmt(best.cost, 0), analysis::fmt(best.root_rat_ps, 1),
             std::to_string(best.assignment.count())});
  t.print(std::cout);

  for (const double frac : {0.01, 0.05}) {
    const double target = best.root_rat_ps - frac * std::abs(best.root_rat_ps);
    const auto cheap = r.cheapest_meeting(target);
    if (cheap.has_value()) {
      std::cout << "within " << frac * 100 << "% of optimum: cost "
                << cheap->cost << " instead of " << best.cost << " ("
                << cheap->assignment.count() << " vs "
                << best.assignment.count() << " buffers)\n";
    }
  }
  return 0;
}
