// Capacity demo: buffer a large H-tree clock network (paper footnote 4).
//
// The paper's largest in-house test is an eight-level H-tree with more than
// 64,000 sinks, feasible only because the 2P rule keeps merging and pruning
// linear. This example builds an H-tree (6 levels / 4096 sinks by default;
// pass the level count as argv[1], 8 reproduces the 65,536-sink run) and
// buffers it under the full WID variation model.
#include <cstdlib>
#include <iostream>

#include "analysis/clock_skew.hpp"
#include "analysis/yield.hpp"
#include "core/statistical_dp.hpp"
#include "tree/generators.hpp"

int main(int argc, char** argv) {
  using namespace vabi;

  std::size_t levels = 6;
  if (argc > 1) levels = static_cast<std::size_t>(std::atoi(argv[1]));
  if (levels == 0 || levels > 9) {
    std::cerr << "usage: clock_htree [levels 1..9]\n";
    return 1;
  }

  tree::h_tree_options h;
  h.levels = levels;
  h.die_side_um = 16000.0;
  const auto net = tree::make_h_tree(h);
  std::cout << "H-tree: " << levels << " levels, " << net.num_sinks()
            << " sinks, " << net.num_buffer_positions()
            << " legal buffer positions, total wire "
            << net.total_wire_um() / 1000.0 << " mm\n";

  layout::process_model_config pm_cfg;
  pm_cfg.mode = layout::wid_mode();
  layout::process_model model{layout::square_die(h.die_side_um), pm_cfg};

  core::stat_options opts;
  opts.library = timing::standard_library();
  opts.driver_res_ohm = 100.0;
  const auto result = core::run_statistical_insertion(net, model, opts);
  if (!result.ok()) {
    std::cerr << "aborted: " << result.stats.abort_reason << "\n";
    return 1;
  }

  const auto& space = model.space();
  std::cout << "buffers inserted: " << result.num_buffers << "\n";
  std::cout << "clock source RAT: mean " << result.root_rat.mean()
            << " ps, sigma " << result.root_rat.stddev(space) << " ps\n";
  std::cout << "95%-yield RAT: "
            << analysis::yield_rat(result.root_rat, space) << " ps\n";
  std::cout << "runtime: " << result.stats.wall_seconds << " s, "
            << result.stats.candidates_created << " candidates, peak list "
            << result.stats.peak_list_size << "\n";

  // An H-tree is symmetric, so a good buffering is symmetric too: count
  // buffers per tree depth as a sanity report.
  std::vector<std::size_t> depth(net.num_nodes(), 0);
  std::vector<std::size_t> per_depth;
  for (tree::node_id id = 1; id < net.num_nodes(); ++id) {
    depth[id] = depth[net.node(id).parent] + 1;
    if (result.assignment.has_buffer(id)) {
      if (per_depth.size() <= depth[id]) per_depth.resize(depth[id] + 1, 0);
      ++per_depth[depth[id]];
    }
  }
  std::cout << "buffers per tree depth:";
  for (std::size_t d = 0; d < per_depth.size(); ++d) {
    if (per_depth[d] != 0) std::cout << " d" << d << ":" << per_depth[d];
  }
  std::cout << "\n";

  // Statistical clock skew of the buffered tree (the paper's future-work
  // direction): fresh model so the analysis owns its variation sources.
  layout::process_model skew_model{layout::square_die(h.die_side_um), pm_cfg};
  const auto skew = analysis::analyze_clock_skew(
      net, opts.wire, opts.library, result.assignment, skew_model, 100.0);
  std::cout << "clock skew: mean " << skew.skew.mean() << " ps, sigma "
            << skew.skew.stddev(skew_model.space()) << " ps; latest sink "
            << skew.latest_sink << ", earliest sink " << skew.earliest_sink
            << "\n";
  std::cout << "P(skew <= " << 1.5 * skew.skew.mean() << " ps) = "
            << analysis::skew_yield(skew, skew_model.space(),
                                    1.5 * skew.skew.mean())
            << "\n";
  return 0;
}
