// vabi_shard: multi-process sharded batch solving with exactly-once resume.
//
// Partitions a batch of generated nets across N forked worker processes
// (or N sessions against a running vabi_serve daemon with --remote-*), each
// writing its own journal shard under --journal-dir. Crashed or hung workers
// are restarted with exponential backoff under a per-slot --kill-budget;
// jobs already durable in a dead worker's shard are recovered, never
// re-solved. On completion the shards are merged into one result set that is
// bit-identical to a single-process journaled run -- which --verify asserts
// by actually running one and comparing result hashes.
//
//   vabi_shard --nets 32 --sinks 12 --seed 7 --workers 4 --journal-dir /tmp/s
//   vabi_shard ... --resume          # pick up after a kill -9
//   vabi_shard ... --remote-socket /tmp/vabi.sock
//
// Exit codes: 0 merged ok, 1 usage, 2 coordinator/journal failure,
// 3 shard merge mismatch, 4 --verify hash divergence.
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/journal.hpp"
#include "core/parallel.hpp"
#include "core/solve_status.hpp"
#include "serve/wire.hpp"
#include "shard/shard_coordinator.hpp"

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: vabi_shard [options]\n"
      "  --nets N              number of generated nets (default 16)\n"
      "  --sinks S             sinks per net (default 12)\n"
      "  --seed SEED           batch seed (default 1)\n"
      "  --workers W           worker processes/sessions (default 2)\n"
      "  --journal-dir D       directory for shard journals (required)\n"
      "  --resume              recover jobs from existing shards first\n"
      "  --kill-budget K       restarts per slot before retiring (default 3)\n"
      "  --heartbeat-ms MS     worker heartbeat interval (default 25)\n"
      "  --timeout-ms MS       silent-worker kill threshold (default 2000)\n"
      "  --remote-socket PATH  use vabi_serve sessions on a unix socket\n"
      "  --remote-port P       use vabi_serve sessions on 127.0.0.1:P\n"
      "  --verify              also solve single-process and compare hashes\n");
  std::exit(1);
}

/// Order-sensitive hash over the merged outcomes, mirroring the one the
/// shard tests use: nominal-RAT bits + buffer count for ok slots, the code
/// for failed ones.
std::uint64_t hash_slots(
    const std::vector<vabi::core::solve_outcome<vabi::core::batch_result>>&
        slots) {
  std::uint64_t h = vabi::core::fnv1a_seed;
  for (const auto& slot : slots) {
    h = vabi::core::fnv1a_u64(slot.ok() ? 1 : 0, h);
    if (slot.ok()) {
      h = vabi::core::fnv1a_u64(
          std::bit_cast<std::uint64_t>(slot->result.root_rat.nominal()), h);
      h = vabi::core::fnv1a_u64(slot->result.num_buffers, h);
    } else {
      h = vabi::core::fnv1a_u64(
          static_cast<std::uint64_t>(slot.error().code), h);
    }
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t nets = 16;
  std::size_t sinks = 12;
  std::uint64_t seed = 1;
  std::string remote_socket;
  int remote_port = -1;
  bool verify = false;
  vabi::shard::coordinator_options copts;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (a == "--nets") {
      nets = static_cast<std::size_t>(std::atoi(value().c_str()));
    } else if (a == "--sinks") {
      sinks = static_cast<std::size_t>(std::atoi(value().c_str()));
    } else if (a == "--seed") {
      seed = std::strtoull(value().c_str(), nullptr, 10);
    } else if (a == "--workers") {
      copts.num_workers = static_cast<std::size_t>(std::atoi(value().c_str()));
    } else if (a == "--journal-dir") {
      copts.journal_dir = value();
    } else if (a == "--resume") {
      copts.resume = true;
    } else if (a == "--kill-budget") {
      copts.restart_budget =
          static_cast<std::size_t>(std::atoi(value().c_str()));
    } else if (a == "--heartbeat-ms") {
      copts.heartbeat_interval_ms = std::atof(value().c_str());
    } else if (a == "--timeout-ms") {
      copts.heartbeat_timeout_ms = std::atof(value().c_str());
    } else if (a == "--remote-socket") {
      remote_socket = value();
    } else if (a == "--remote-port") {
      remote_port = std::atoi(value().c_str());
    } else if (a == "--verify") {
      verify = true;
    } else {
      std::fprintf(stderr, "vabi_shard: unknown option '%s'\n", a.c_str());
      usage();
    }
  }
  if (copts.journal_dir.empty()) {
    std::fprintf(stderr, "vabi_shard: --journal-dir is required\n");
    usage();
  }
  copts.batch_seed = seed;

  std::vector<vabi::core::batch_job> jobs(nets);
  for (auto& job : jobs) {
    vabi::tree::random_tree_options g;
    g.num_sinks = sinks;
    job.generate = g;
  }

  vabi::shard::shard_coordinator coord(copts);
  vabi::core::solve_outcome<vabi::shard::coordinator_report> run_result =
      [&]() {
        if (!remote_socket.empty()) {
          vabi::serve::submit_msg submit;
          submit.batch_seed = seed;
          for (std::size_t i = 0; i < nets; ++i) {
            vabi::serve::wire_job wj;
            wj.num_sinks = sinks;
            submit.jobs.push_back(wj);
          }
          return coord.run_remote(submit, remote_socket);
        }
        if (remote_port > 0) {
          vabi::serve::submit_msg submit;
          submit.batch_seed = seed;
          for (std::size_t i = 0; i < nets; ++i) {
            vabi::serve::wire_job wj;
            wj.num_sinks = sinks;
            submit.jobs.push_back(wj);
          }
          return coord.run_remote(submit,
                                  "port:" + std::to_string(remote_port));
        }
        return coord.run(jobs);
      }();

  if (!run_result.ok()) {
    std::fprintf(stderr, "vabi_shard: %s\n",
                 run_result.error().message().c_str());
    return run_result.error().code == vabi::core::solve_code::shard_mismatch
               ? 3
               : 2;
  }

  const vabi::shard::coordinator_report& rep = *run_result;
  std::printf(
      "vabi_shard: %zu jobs merged from %zu shards in %.3fs "
      "(recovered=%zu workers=%zu inline=%zu restarts=%zu retired=%zu)\n",
      rep.jobs_total, rep.merged.shards_read, rep.wall_seconds,
      rep.jobs_recovered, rep.jobs_solved_by_workers, rep.jobs_solved_inline,
      rep.restarts_total, rep.workers_retired);
  for (std::size_t w = 0; w < rep.workers.size(); ++w) {
    const vabi::shard::worker_stats& ws = rep.workers[w];
    const double rate =
        rep.wall_seconds > 0.0
            ? static_cast<double>(ws.jobs_completed) / rep.wall_seconds
            : 0.0;
    std::printf(
        "  worker %zu: jobs=%llu (%.1f/s) restarts=%llu shards=%llu "
        "heartbeats=%llu\n",
        w, static_cast<unsigned long long>(ws.jobs_completed), rate,
        static_cast<unsigned long long>(ws.restarts),
        static_cast<unsigned long long>(ws.shards_opened),
        static_cast<unsigned long long>(ws.heartbeats));
  }

  if (verify) {
    vabi::core::batch_solver::config scfg;
    scfg.batch_seed = seed;
    vabi::core::batch_solver solver{scfg};
    const auto reference = solver.solve_outcomes(jobs);
    if (reference.size() != rep.merged.slots.size() ||
        hash_slots(reference) != hash_slots(rep.merged.slots)) {
      std::fprintf(stderr,
                   "vabi_shard: VERIFY FAILED -- merged result diverges from "
                   "single-process solve\n");
      return 4;
    }
    std::printf("vabi_shard: verify ok -- merged == single-process (hash %llx)\n",
                static_cast<unsigned long long>(hash_slots(reference)));
  }
  return 0;
}
