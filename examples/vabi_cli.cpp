// vabi_cli -- command-line variation-aware buffer insertion.
//
// Reads a routing tree in the vabi-tree text format (see tree/tree_io.hpp),
// optimizes it, and prints the buffered design and its RAT statistics.
//
//   vabi_cli NET.tree [options]
//     --mode nom|d2d|wid        variation model to optimize under (default wid)
//     --rule 2p|4p|1p           pruning rule (default 2p)
//     --profile homo|hetero     spatial budget profile (default hetero)
//     --pbar P                  2P parameters pbar_L = pbar_T (default 0.5)
//     --yield-percentile Q      selection/root percentile (default 0.05)
//     --driver-res OHM          source driver resistance (default 150)
//     --wire-widths W1,W2,...   enable wire sizing with these multipliers
//     --emit-assignment PATH    write "node buffer_name [width]" lines
//     --stats-json PATH         dump the solve's full dp_stats as one flat
//                               JSON object (schema in README.md); single-net
//                               mode only
//     --generate SINKS          ignore NET.tree; generate a random net
//     --seed N                  seed for --generate / the batch seed stream
//     --threads N               solve sibling subtrees on N threads
//                               (default 1 = serial; results are identical)
//     --deadline SECONDS        wall-clock budget for the solve
//     --degrade none|retry|partial   fallback on cap/deadline trips
//     --audit                   independently re-derive and cross-check every
//                               winning solution (solution_witness) plus a
//                               64-sample Monte-Carlo spot check
//
//   Batch / crash recovery:
//     --batch N                 solve N generated nets (requires --generate;
//                               per-net seeds derive from --seed)
//     --journal PATH            journal every finished net to PATH (.vjl),
//                               checkpointed atomically; implies batch mode
//     --checkpoint-every N      checkpoint the journal every N nets (default 16)
//     --resume                  restore already-journaled nets from --journal
//                               instead of re-solving them (bit-identical)
//     --verify-restored         paranoia: re-solve restored nets anyway and
//                               require bit-identical results
//
// SIGINT/SIGTERM drain gracefully: running nets finish and are journaled,
// pending nets come back "cancelled", and the run exits with code 20
// ("interrupted, resumable") when a journal is in use.
//
// Exit codes (documented in README.md): 0 success, 1 usage error, 2 cannot
// read/parse the input tree, then one distinct code per solve_code:
// 3 candidate_cap, 4 deadline_exceeded, 5 memory_cap, 6 nonfinite_value,
// 7 invalid_options, 8 invalid_tree, 9 cancelled, 10 internal,
// 11 journal_corrupt, 12 journal_mismatch; 13 audit mismatch; 20 interrupted
// with a resumable journal. Every failure prints a one-line
// "vabi_cli: error: ..." diagnostic to stderr.
#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "core/solve_status.hpp"

#include "analysis/solution_witness.hpp"
#include "analysis/variance_breakdown.hpp"
#include "analysis/yield.hpp"
#include "core/journal.hpp"
#include "core/parallel.hpp"
#include "core/statistical_dp.hpp"
#include "core/van_ginneken.hpp"
#include "tree/generators.hpp"
#include "tree/tree_io.hpp"

namespace {

using namespace vabi;

struct cli_options {
  std::string tree_path;
  layout::variation_mode mode = layout::wid_mode();
  core::pruning_kind rule = core::pruning_kind::two_param;
  layout::spatial_profile profile = layout::spatial_profile::heterogeneous;
  double pbar = 0.5;
  double yield_percentile = 0.05;
  double driver_res = 150.0;
  std::vector<double> wire_widths = {1.0};
  std::string emit_assignment;
  std::string stats_json;
  std::size_t generate_sinks = 0;
  std::uint64_t seed = 1;
  std::size_t threads = 1;
  double deadline_seconds = 0.0;
  core::degrade_policy degrade = core::degrade_policy::none;
  bool audit = false;
  std::size_t batch = 0;
  std::string journal_path;
  std::size_t checkpoint_every = 16;
  bool resume = false;
  bool verify_restored = false;
};

/// One distinct nonzero exit code per solve_code (see the header comment).
int exit_code_for(core::solve_code code) {
  switch (code) {
    case core::solve_code::ok:
      return 0;
    case core::solve_code::candidate_cap:
      return 3;
    case core::solve_code::deadline_exceeded:
      return 4;
    case core::solve_code::memory_cap:
      return 5;
    case core::solve_code::nonfinite_value:
      return 6;
    case core::solve_code::invalid_options:
      return 7;
    case core::solve_code::invalid_tree:
      return 8;
    case core::solve_code::cancelled:
      return 9;
    case core::solve_code::internal:
      return 10;
    case core::solve_code::journal_corrupt:
      return 11;
    case core::solve_code::journal_mismatch:
      return 12;
  }
  return 10;
}

constexpr int exit_audit_mismatch = 13;
constexpr int exit_interrupted_resumable = 20;
/// Every net solved, but the journal could not be (fully) written: results
/// are correct and printed, crash recovery just is not guaranteed. Non-fatal
/// but distinct, so scripts that rely on --resume notice.
constexpr int exit_journal_warning = 21;

[[noreturn]] void usage(const char* msg) {
  if (msg != nullptr) std::cerr << "vabi_cli: " << msg << "\n";
  std::cerr << "usage: vabi_cli NET.tree [--mode nom|d2d|wid] [--rule 2p|4p|1p]\n"
               "                [--profile homo|hetero] [--pbar P]\n"
               "                [--yield-percentile Q] [--driver-res OHM]\n"
               "                [--wire-widths W1,W2,...]\n"
               "                [--emit-assignment PATH] [--stats-json PATH]\n"
               "                [--generate SINKS] [--seed N] [--threads N]\n"
               "                [--deadline SECONDS] [--degrade none|retry|partial]\n"
               "                [--audit] [--batch N] [--journal PATH]\n"
               "                [--checkpoint-every N] [--resume]\n"
               "                [--verify-restored]\n";
  std::exit(1);
}

std::vector<double> parse_widths(const std::string& arg) {
  std::vector<double> widths;
  std::istringstream is(arg);
  std::string tok;
  while (std::getline(is, tok, ',')) {
    widths.push_back(std::stod(tok));
  }
  if (widths.empty()) usage("empty --wire-widths");
  return widths;
}

cli_options parse(int argc, char** argv) {
  cli_options o;
  const auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage("missing value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--help" || a == "-h") {
      usage(nullptr);
    } else if (a == "--mode") {
      const std::string v = need_value(i);
      if (v == "nom") {
        o.mode = layout::nom_mode();
      } else if (v == "d2d") {
        o.mode = layout::d2d_mode();
      } else if (v == "wid") {
        o.mode = layout::wid_mode();
      } else {
        usage("unknown --mode");
      }
    } else if (a == "--rule") {
      const std::string v = need_value(i);
      if (v == "2p") {
        o.rule = core::pruning_kind::two_param;
      } else if (v == "4p") {
        o.rule = core::pruning_kind::four_param;
      } else if (v == "1p") {
        o.rule = core::pruning_kind::corner;
      } else {
        usage("unknown --rule");
      }
    } else if (a == "--profile") {
      const std::string v = need_value(i);
      if (v == "homo") {
        o.profile = layout::spatial_profile::homogeneous;
      } else if (v == "hetero") {
        o.profile = layout::spatial_profile::heterogeneous;
      } else {
        usage("unknown --profile");
      }
    } else if (a == "--pbar") {
      o.pbar = std::stod(need_value(i));
    } else if (a == "--yield-percentile") {
      o.yield_percentile = std::stod(need_value(i));
    } else if (a == "--driver-res") {
      o.driver_res = std::stod(need_value(i));
    } else if (a == "--wire-widths") {
      o.wire_widths = parse_widths(need_value(i));
    } else if (a == "--emit-assignment") {
      o.emit_assignment = need_value(i);
    } else if (a == "--stats-json") {
      o.stats_json = need_value(i);
    } else if (a == "--generate") {
      o.generate_sinks = static_cast<std::size_t>(std::stoul(need_value(i)));
    } else if (a == "--seed") {
      o.seed = std::stoull(need_value(i));
    } else if (a == "--threads") {
      o.threads = static_cast<std::size_t>(std::stoul(need_value(i)));
      if (o.threads == 0) usage("--threads must be at least 1");
    } else if (a == "--deadline") {
      o.deadline_seconds = std::stod(need_value(i));
      if (o.deadline_seconds <= 0.0) usage("--deadline must be > 0");
    } else if (a == "--degrade") {
      const std::string v = need_value(i);
      if (v == "none") {
        o.degrade = core::degrade_policy::none;
      } else if (v == "retry") {
        o.degrade = core::degrade_policy::retry_deterministic;
      } else if (v == "partial") {
        o.degrade = core::degrade_policy::best_partial;
      } else {
        usage("unknown --degrade");
      }
    } else if (a == "--audit") {
      o.audit = true;
    } else if (a == "--batch") {
      o.batch = static_cast<std::size_t>(std::stoul(need_value(i)));
      if (o.batch == 0) usage("--batch must be at least 1");
    } else if (a == "--journal") {
      o.journal_path = need_value(i);
    } else if (a == "--checkpoint-every") {
      o.checkpoint_every =
          static_cast<std::size_t>(std::stoul(need_value(i)));
      if (o.checkpoint_every == 0) usage("--checkpoint-every must be >= 1");
    } else if (a == "--resume") {
      o.resume = true;
    } else if (a == "--verify-restored") {
      o.verify_restored = true;
    } else if (!a.empty() && a[0] == '-') {
      usage(("unknown option " + a).c_str());
    } else if (o.tree_path.empty()) {
      o.tree_path = a;
    } else {
      usage("multiple tree paths");
    }
  }
  if (o.tree_path.empty() && o.generate_sinks == 0) {
    usage("need NET.tree or --generate");
  }
  if (o.batch > 1 && o.generate_sinks == 0) {
    usage("--batch needs --generate (a file is a single net)");
  }
  if ((o.resume || o.verify_restored) && o.journal_path.empty()) {
    usage("--resume/--verify-restored require --journal");
  }
  if (!o.stats_json.empty() && (o.batch > 1 || !o.journal_path.empty())) {
    usage("--stats-json is single-net mode only");
  }
  return o;
}

/// Flat JSON dump of one solve's dp_stats plus run context (the schema
/// documented in README.md). Every counter is emitted, including the
/// session-only slab-cache triple and li_shi_nodes, so downstream tooling
/// never has to guess which fields a build knows about.
bool write_stats_json(const std::string& path, const core::stat_result& r,
                      const cli_options& cli) {
  std::ofstream os(path);
  if (!os) return false;
  os << "{\n"
     << "  \"rule\": \"" << core::to_string(cli.rule) << "\",\n"
     << "  \"mode\": \"" << layout::to_string(cli.mode) << "\",\n"
     << "  \"threads\": " << cli.threads << ",\n"
     << "  \"solve_path\": \"" << core::to_string(r.path) << "\",\n"
     << "  \"num_buffers\": " << r.num_buffers << ",\n"
     << "  \"root_rat_mean_ps\": " << r.root_rat.mean() << ",\n"
     << "  \"candidates_created\": " << r.stats.candidates_created << ",\n"
     << "  \"candidates_pruned\": " << r.stats.candidates_pruned << ",\n"
     << "  \"merge_pairs\": " << r.stats.merge_pairs << ",\n"
     << "  \"peak_list_size\": " << r.stats.peak_list_size << ",\n"
     << "  \"allocations\": " << r.stats.allocations << ",\n"
     << "  \"peak_terms\": " << r.stats.peak_terms << ",\n"
     << "  \"dense_forms\": " << r.stats.dense_forms << ",\n"
     << "  \"terms_merged\": " << r.stats.terms_merged << ",\n"
     << "  \"dominance_prefilter_hits\": "
     << r.stats.dominance_prefilter_hits << ",\n"
     << "  \"li_shi_nodes\": " << r.stats.li_shi_nodes << ",\n"
     << "  \"tiled_prunes\": " << r.stats.tiled_prunes << ",\n"
     << "  \"tile_prefilter_hits\": " << r.stats.tile_prefilter_hits << ",\n"
     << "  \"pairs_batched\": " << r.stats.pairs_batched << ",\n"
     << "  \"cache_hits\": " << r.stats.cache_hits << ",\n"
     << "  \"cache_misses\": " << r.stats.cache_misses << ",\n"
     << "  \"nodes_reused\": " << r.stats.nodes_reused << ",\n"
     << "  \"wall_seconds\": " << r.stats.wall_seconds << ",\n"
     << "  \"aborted\": " << (r.stats.aborted ? "true" : "false") << ",\n"
     << "  \"abort_code\": \"" << core::to_string(r.stats.abort_code)
     << "\"\n"
     << "}\n";
  return os.good();
}

// -- graceful SIGINT/SIGTERM draining ---------------------------------------

core::cancel_token g_cancel;                   // armed by the signal handler
volatile std::sig_atomic_t g_signal = 0;

void handle_signal(int sig) {
  g_signal = sig;
  // atomic<bool>::store with relaxed order; lock-free, so async-signal-safe.
  g_cancel.request_stop();
}

void install_signal_handlers() {
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
}

core::stat_options make_stat_options(const cli_options& cli) {
  core::stat_options o;
  o.library = timing::standard_library();
  o.driver_res_ohm = cli.driver_res;
  o.rule = cli.rule;
  o.two_param.p_load = cli.pbar;
  o.two_param.p_rat = cli.pbar;
  o.root_percentile = cli.yield_percentile;
  o.selection_percentile = cli.yield_percentile;
  o.wire_width_multipliers = cli.wire_widths;
  if (cli.rule == core::pruning_kind::four_param) {
    o.max_list_size = 200000;  // fail fast instead of exploding
    o.max_wall_seconds = 300.0;
  }
  if (cli.deadline_seconds > 0.0) o.max_wall_seconds = cli.deadline_seconds;
  o.degrade = cli.degrade;
  return o;
}

layout::process_model_config make_model_config(const cli_options& cli) {
  layout::process_model_config pm;
  pm.mode = cli.mode;
  pm.spatial.profile = cli.profile;
  return pm;
}

// -- batch / journal mode ----------------------------------------------------

int run_batch(const cli_options& cli,
              const std::optional<tree::routing_tree>& loaded) {
  const std::size_t num_jobs = cli.batch == 0 ? 1 : cli.batch;
  std::vector<core::batch_job> jobs(num_jobs);
  for (auto& job : jobs) {
    if (loaded.has_value()) {
      job.tree = &*loaded;
    } else {
      tree::random_tree_options g;
      g.num_sinks = cli.generate_sinks;
      g.die_side_um = 8000.0;
      g.criticality_balance = 0.8;
      job.generate = g;  // per-job seed derives from the solver's batch_seed
    }
    job.options = make_stat_options(cli);
    job.model = make_model_config(cli);
  }

  core::batch_solver::config cfg;
  cfg.num_threads = cli.threads;
  cfg.batch_seed = cli.seed;
  core::batch_solver solver{cfg};

  install_signal_handlers();

  std::vector<core::solve_outcome<core::batch_result>> slots;
  std::size_t restored = 0;
  bool journal_warned = false;
  if (!cli.journal_path.empty()) {
    core::batch_journal_options jopts;
    jopts.path = cli.journal_path;
    jopts.checkpoint_every_jobs = cli.checkpoint_every;
    jopts.resume = cli.resume;
    jopts.verify_restored = cli.verify_restored;
    auto outcome = solver.solve_journaled(jobs, jopts, &g_cancel);
    if (!outcome.ok()) {
      std::cerr << "vabi_cli: error: " << outcome.error().message() << "\n";
      return exit_code_for(outcome.error().code);
    }
    if (!outcome->journal_warning.empty()) {
      std::cerr << "vabi_cli: warning: " << outcome->journal_warning << "\n";
      journal_warned = true;
    }
    restored = outcome->restored;
    std::cout << "journal " << cli.journal_path << ": " << outcome->restored
              << " restored, " << outcome->solved << " solved, "
              << outcome->checkpoints << " checkpoints, "
              << outcome->journal_bytes << " bytes";
    if (outcome->dropped_tail_bytes > 0) {
      std::cout << " (dropped a torn tail of " << outcome->dropped_tail_bytes
                << " bytes)";
    }
    std::cout << "\n";
    slots = std::move(outcome->slots);
  } else {
    slots = solver.solve_outcomes(jobs, &g_cancel);
  }

  std::size_t ok = 0;
  std::size_t cancelled = 0;
  std::optional<core::solve_code> first_error;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    const auto& slot = slots[i];
    if (slot.ok()) {
      ++ok;
      std::cout << "net " << i << ": ok, " << slot->result.num_buffers
                << " buffers, root RAT mean " << slot->result.root_rat.mean()
                << " ps, sigma "
                << slot->result.root_rat.stddev(slot->model.space())
                << " ps\n";
    } else if (slot.error().code == core::solve_code::cancelled) {
      ++cancelled;
    } else {
      if (!first_error.has_value()) first_error = slot.error().code;
      std::cout << "net " << i << ": " << slot.error().message() << "\n";
    }
  }
  std::cout << ok << "/" << slots.size() << " nets solved";
  if (restored > 0) std::cout << " (" << restored << " restored)";
  if (cancelled > 0) std::cout << ", " << cancelled << " cancelled";
  std::cout << "\n";

  if (cli.audit) {
    std::size_t audited = 0;
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (!slots[i].ok()) continue;
      const auto report = analysis::audit_solution(jobs[i], *slots[i]);
      if (!report.checked && !report.skip_reason.empty()) {
        std::cout << "audit net " << i << ": skipped (" << report.skip_reason
                  << ")\n";
        continue;
      }
      ++audited;
      if (!report.ok()) {
        std::cerr << "vabi_cli: error: audit mismatch on net " << i << ": "
                  << (!report.match ? report.mismatch : report.mc_detail)
                  << "\n";
        return exit_audit_mismatch;
      }
    }
    std::cout << "audit: " << audited
              << " solutions independently re-derived, all match\n";
  }

  if (g_signal != 0 && cancelled > 0) {
    if (!cli.journal_path.empty()) {
      std::cerr << "vabi_cli: interrupted by signal " << g_signal << "; "
                << ok << " nets journaled, rerun with --resume to continue\n";
      return exit_interrupted_resumable;
    }
    std::cerr << "vabi_cli: interrupted by signal " << g_signal << "\n";
    return exit_code_for(core::solve_code::cancelled);
  }
  if (first_error.has_value()) return exit_code_for(*first_error);
  if (cancelled > 0) return exit_code_for(core::solve_code::cancelled);
  if (journal_warned) return exit_journal_warning;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const cli_options cli = parse(argc, argv);

  std::optional<tree::routing_tree> loaded;
  try {
    if (cli.generate_sinks > 0 && cli.batch == 0 && cli.journal_path.empty()) {
      tree::random_tree_options g;
      g.num_sinks = cli.generate_sinks;
      g.die_side_um = 8000.0;
      g.seed = cli.seed;
      g.criticality_balance = 0.8;
      loaded.emplace(tree::make_random_tree(g));
    } else if (cli.generate_sinks == 0) {
      loaded.emplace(tree::load_tree(cli.tree_path));
    }
  } catch (const std::exception& e) {
    std::cerr << "vabi_cli: error: " << e.what() << "\n";
    return 2;
  }

  // Batch / journaled mode: the batch solver owns net generation (per-job
  // seeds derive from --seed) and the journal lifecycle.
  if (cli.batch > 0 || !cli.journal_path.empty()) {
    return run_batch(cli, loaded);
  }

  tree::routing_tree& net = *loaded;

  const auto lib = timing::standard_library();
  layout::bbox die = net.bounding_box();
  die.expand({die.lo.x - 1.0, die.lo.y - 1.0});
  die.expand({die.hi.x + 1.0, die.hi.y + 1.0});

  const layout::process_model_config pm = make_model_config(cli);
  layout::process_model model{die, pm};

  const core::stat_options o = make_stat_options(cli);

  install_signal_handlers();
  const auto outcome = [&] {
    if (cli.threads > 1) {
      core::thread_pool pool{cli.threads};
      return core::solve_parallel_insertion(net, model, o, pool, &g_cancel);
    }
    return core::solve_statistical_insertion(net, model, o, &g_cancel);
  }();
  if (!outcome.ok()) {
    std::cerr << "vabi_cli: error: " << outcome.error().message() << "\n";
    return exit_code_for(outcome.error().code);
  }
  const core::stat_result& r = *outcome;

  const auto& space = model.space();
  std::cout << "net: " << net.num_sinks() << " sinks, "
            << net.num_buffer_positions() << " positions, "
            << net.total_wire_um() / 1000.0 << " mm wire\n";
  std::cout << "mode " << layout::to_string(cli.mode) << ", rule "
            << core::to_string(cli.rule) << ", profile "
            << layout::to_string(cli.profile) << "\n";
  if (r.path != core::solve_path::primary) {
    std::cout << "degraded: answer produced by " << core::to_string(r.path)
              << "\n";
  }
  std::cout << "buffers: " << r.num_buffers;
  if (o.wire_width_multipliers.size() > 1) {
    std::cout << ", widened edges: " << r.wires.count_nondefault();
  }
  std::cout << "\n";
  std::cout << "root RAT: mean " << r.root_rat.mean() << " ps, sigma "
            << r.root_rat.stddev(space) << " ps, 95%-yield "
            << analysis::yield_rat(r.root_rat, space) << " ps\n";
  std::cout << "runtime " << r.stats.wall_seconds << " s, "
            << r.stats.candidates_created << " candidates, peak list "
            << r.stats.peak_list_size << "\n";
  const auto vb = analysis::decompose_variance(r.root_rat, space);
  if (vb.total() > 0.0) {
    std::cout << "variance by class: random "
              << 100.0 * vb.fraction(vb.random_device) << "%, spatial "
              << 100.0 * vb.fraction(vb.spatial) << "%, inter-die "
              << 100.0 * vb.fraction(vb.inter_die) << "%\n";
  }

  if (cli.audit) {
    const auto report = analysis::audit_solution(
        net, o, pm, die, model.space().size(), r);
    if (!report.checked) {
      std::cout << "audit: skipped (" << report.skip_reason << ")\n";
    } else if (!report.ok()) {
      std::cerr << "vabi_cli: error: audit mismatch: "
                << (!report.match ? report.mismatch : report.mc_detail)
                << "\n";
      return exit_audit_mismatch;
    } else {
      std::cout << "audit: root RAT form independently re-derived, "
                << r.root_rat.terms().size() << " terms match";
      if (report.mc_checked) {
        std::cout << "; MC spot check (" << 64 << " samples): mean "
                  << report.mc_mean_ps << " vs model " << report.model_mean_ps
                  << " ps, KS " << report.ks_distance;
      }
      std::cout << "\n";
    }
  }

  if (!cli.stats_json.empty()) {
    if (!write_stats_json(cli.stats_json, r, cli)) {
      std::cerr << "cannot write " << cli.stats_json << "\n";
      return 1;
    }
    std::cout << "stats written to " << cli.stats_json << "\n";
  }

  if (!cli.emit_assignment.empty()) {
    std::ofstream os(cli.emit_assignment);
    if (!os) {
      std::cerr << "cannot open " << cli.emit_assignment << "\n";
      return 1;
    }
    for (tree::node_id id = 0; id < net.num_nodes(); ++id) {
      if (r.assignment.has_buffer(id)) {
        os << id << ' ' << lib[r.assignment.buffer(id)].name;
        if (o.wire_width_multipliers.size() > 1) {
          os << ' ' << r.wires.width(id);
        }
        os << '\n';
      }
    }
    std::cout << "assignment written to " << cli.emit_assignment << "\n";
  }
  return 0;
}
