// vabi_cli -- command-line variation-aware buffer insertion.
//
// Reads a routing tree in the vabi-tree text format (see tree/tree_io.hpp),
// optimizes it, and prints the buffered design and its RAT statistics.
//
//   vabi_cli NET.tree [options]
//     --mode nom|d2d|wid        variation model to optimize under (default wid)
//     --rule 2p|4p|1p           pruning rule (default 2p)
//     --profile homo|hetero     spatial budget profile (default hetero)
//     --pbar P                  2P parameters pbar_L = pbar_T (default 0.5)
//     --yield-percentile Q      selection/root percentile (default 0.05)
//     --driver-res OHM          source driver resistance (default 150)
//     --wire-widths W1,W2,...   enable wire sizing with these multipliers
//     --emit-assignment PATH    write "node buffer_name [width]" lines
//     --generate SINKS          ignore NET.tree; generate a random net
//     --seed N                  seed for --generate (default 1)
//     --threads N               solve sibling subtrees on N threads
//                               (default 1 = serial; results are identical)
//     --deadline SECONDS        wall-clock budget for the solve
//     --degrade none|retry|partial   fallback on cap/deadline trips
//
// Exit codes (documented in README.md): 0 success, 1 usage error, 2 cannot
// read/parse the input tree, then one distinct code per solve_code:
// 3 candidate_cap, 4 deadline_exceeded, 5 memory_cap, 6 nonfinite_value,
// 7 invalid_options, 8 invalid_tree, 9 cancelled, 10 internal. Every failure
// prints a one-line "vabi_cli: error: ..." diagnostic to stderr.
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "core/solve_status.hpp"

#include "analysis/variance_breakdown.hpp"
#include "analysis/yield.hpp"
#include "core/parallel.hpp"
#include "core/statistical_dp.hpp"
#include "core/van_ginneken.hpp"
#include "tree/generators.hpp"
#include "tree/tree_io.hpp"

namespace {

using namespace vabi;

struct cli_options {
  std::string tree_path;
  layout::variation_mode mode = layout::wid_mode();
  core::pruning_kind rule = core::pruning_kind::two_param;
  layout::spatial_profile profile = layout::spatial_profile::heterogeneous;
  double pbar = 0.5;
  double yield_percentile = 0.05;
  double driver_res = 150.0;
  std::vector<double> wire_widths = {1.0};
  std::string emit_assignment;
  std::size_t generate_sinks = 0;
  std::uint64_t seed = 1;
  std::size_t threads = 1;
  double deadline_seconds = 0.0;
  core::degrade_policy degrade = core::degrade_policy::none;
};

/// One distinct nonzero exit code per solve_code (see the header comment).
int exit_code_for(core::solve_code code) {
  switch (code) {
    case core::solve_code::ok:
      return 0;
    case core::solve_code::candidate_cap:
      return 3;
    case core::solve_code::deadline_exceeded:
      return 4;
    case core::solve_code::memory_cap:
      return 5;
    case core::solve_code::nonfinite_value:
      return 6;
    case core::solve_code::invalid_options:
      return 7;
    case core::solve_code::invalid_tree:
      return 8;
    case core::solve_code::cancelled:
      return 9;
    case core::solve_code::internal:
      return 10;
  }
  return 10;
}

[[noreturn]] void usage(const char* msg) {
  if (msg != nullptr) std::cerr << "vabi_cli: " << msg << "\n";
  std::cerr << "usage: vabi_cli NET.tree [--mode nom|d2d|wid] [--rule 2p|4p|1p]\n"
               "                [--profile homo|hetero] [--pbar P]\n"
               "                [--yield-percentile Q] [--driver-res OHM]\n"
               "                [--wire-widths W1,W2,...]\n"
               "                [--emit-assignment PATH]\n"
               "                [--generate SINKS] [--seed N] [--threads N]\n"
               "                [--deadline SECONDS] [--degrade none|retry|partial]\n";
  std::exit(1);
}

std::vector<double> parse_widths(const std::string& arg) {
  std::vector<double> widths;
  std::istringstream is(arg);
  std::string tok;
  while (std::getline(is, tok, ',')) {
    widths.push_back(std::stod(tok));
  }
  if (widths.empty()) usage("empty --wire-widths");
  return widths;
}

cli_options parse(int argc, char** argv) {
  cli_options o;
  const auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage("missing value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--help" || a == "-h") {
      usage(nullptr);
    } else if (a == "--mode") {
      const std::string v = need_value(i);
      if (v == "nom") {
        o.mode = layout::nom_mode();
      } else if (v == "d2d") {
        o.mode = layout::d2d_mode();
      } else if (v == "wid") {
        o.mode = layout::wid_mode();
      } else {
        usage("unknown --mode");
      }
    } else if (a == "--rule") {
      const std::string v = need_value(i);
      if (v == "2p") {
        o.rule = core::pruning_kind::two_param;
      } else if (v == "4p") {
        o.rule = core::pruning_kind::four_param;
      } else if (v == "1p") {
        o.rule = core::pruning_kind::corner;
      } else {
        usage("unknown --rule");
      }
    } else if (a == "--profile") {
      const std::string v = need_value(i);
      if (v == "homo") {
        o.profile = layout::spatial_profile::homogeneous;
      } else if (v == "hetero") {
        o.profile = layout::spatial_profile::heterogeneous;
      } else {
        usage("unknown --profile");
      }
    } else if (a == "--pbar") {
      o.pbar = std::stod(need_value(i));
    } else if (a == "--yield-percentile") {
      o.yield_percentile = std::stod(need_value(i));
    } else if (a == "--driver-res") {
      o.driver_res = std::stod(need_value(i));
    } else if (a == "--wire-widths") {
      o.wire_widths = parse_widths(need_value(i));
    } else if (a == "--emit-assignment") {
      o.emit_assignment = need_value(i);
    } else if (a == "--generate") {
      o.generate_sinks = static_cast<std::size_t>(std::stoul(need_value(i)));
    } else if (a == "--seed") {
      o.seed = std::stoull(need_value(i));
    } else if (a == "--threads") {
      o.threads = static_cast<std::size_t>(std::stoul(need_value(i)));
      if (o.threads == 0) usage("--threads must be at least 1");
    } else if (a == "--deadline") {
      o.deadline_seconds = std::stod(need_value(i));
      if (o.deadline_seconds <= 0.0) usage("--deadline must be > 0");
    } else if (a == "--degrade") {
      const std::string v = need_value(i);
      if (v == "none") {
        o.degrade = core::degrade_policy::none;
      } else if (v == "retry") {
        o.degrade = core::degrade_policy::retry_deterministic;
      } else if (v == "partial") {
        o.degrade = core::degrade_policy::best_partial;
      } else {
        usage("unknown --degrade");
      }
    } else if (!a.empty() && a[0] == '-') {
      usage(("unknown option " + a).c_str());
    } else if (o.tree_path.empty()) {
      o.tree_path = a;
    } else {
      usage("multiple tree paths");
    }
  }
  if (o.tree_path.empty() && o.generate_sinks == 0) {
    usage("need NET.tree or --generate");
  }
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const cli_options cli = parse(argc, argv);

  std::optional<tree::routing_tree> loaded;
  try {
    if (cli.generate_sinks > 0) {
      tree::random_tree_options g;
      g.num_sinks = cli.generate_sinks;
      g.die_side_um = 8000.0;
      g.seed = cli.seed;
      g.criticality_balance = 0.8;
      loaded.emplace(tree::make_random_tree(g));
    } else {
      loaded.emplace(tree::load_tree(cli.tree_path));
    }
  } catch (const std::exception& e) {
    std::cerr << "vabi_cli: error: " << e.what() << "\n";
    return 2;
  }
  tree::routing_tree& net = *loaded;

  const auto lib = timing::standard_library();
  layout::bbox die = net.bounding_box();
  die.expand({die.lo.x - 1.0, die.lo.y - 1.0});
  die.expand({die.hi.x + 1.0, die.hi.y + 1.0});

  layout::process_model_config pm;
  pm.mode = cli.mode;
  pm.spatial.profile = cli.profile;
  layout::process_model model{die, pm};

  core::stat_options o;
  o.library = lib;
  o.driver_res_ohm = cli.driver_res;
  o.rule = cli.rule;
  o.two_param.p_load = cli.pbar;
  o.two_param.p_rat = cli.pbar;
  o.root_percentile = cli.yield_percentile;
  o.selection_percentile = cli.yield_percentile;
  o.wire_width_multipliers = cli.wire_widths;
  if (cli.rule == core::pruning_kind::four_param) {
    o.max_list_size = 200000;  // fail fast instead of exploding
    o.max_wall_seconds = 300.0;
  }
  if (cli.deadline_seconds > 0.0) o.max_wall_seconds = cli.deadline_seconds;
  o.degrade = cli.degrade;

  const auto outcome = [&] {
    if (cli.threads > 1) {
      core::thread_pool pool{cli.threads};
      return core::solve_parallel_insertion(net, model, o, pool);
    }
    return core::solve_statistical_insertion(net, model, o);
  }();
  if (!outcome.ok()) {
    std::cerr << "vabi_cli: error: " << outcome.error().message() << "\n";
    return exit_code_for(outcome.error().code);
  }
  const core::stat_result& r = *outcome;

  const auto& space = model.space();
  std::cout << "net: " << net.num_sinks() << " sinks, "
            << net.num_buffer_positions() << " positions, "
            << net.total_wire_um() / 1000.0 << " mm wire\n";
  std::cout << "mode " << layout::to_string(cli.mode) << ", rule "
            << core::to_string(cli.rule) << ", profile "
            << layout::to_string(cli.profile) << "\n";
  if (r.path != core::solve_path::primary) {
    std::cout << "degraded: answer produced by " << core::to_string(r.path)
              << "\n";
  }
  std::cout << "buffers: " << r.num_buffers;
  if (o.wire_width_multipliers.size() > 1) {
    std::cout << ", widened edges: " << r.wires.count_nondefault();
  }
  std::cout << "\n";
  std::cout << "root RAT: mean " << r.root_rat.mean() << " ps, sigma "
            << r.root_rat.stddev(space) << " ps, 95%-yield "
            << analysis::yield_rat(r.root_rat, space) << " ps\n";
  std::cout << "runtime " << r.stats.wall_seconds << " s, "
            << r.stats.candidates_created << " candidates, peak list "
            << r.stats.peak_list_size << "\n";
  const auto vb = analysis::decompose_variance(r.root_rat, space);
  if (vb.total() > 0.0) {
    std::cout << "variance by class: random "
              << 100.0 * vb.fraction(vb.random_device) << "%, spatial "
              << 100.0 * vb.fraction(vb.spatial) << "%, inter-die "
              << 100.0 * vb.fraction(vb.inter_die) << "%\n";
  }

  if (!cli.emit_assignment.empty()) {
    std::ofstream os(cli.emit_assignment);
    if (!os) {
      std::cerr << "cannot open " << cli.emit_assignment << "\n";
      return 1;
    }
    for (tree::node_id id = 0; id < net.num_nodes(); ++id) {
      if (r.assignment.has_buffer(id)) {
        os << id << ' ' << lib[r.assignment.buffer(id)].name;
        if (o.wire_width_multipliers.size() > 1) {
          os << ' ' << r.wires.width(id);
        }
        os << '\n';
      }
    }
    std::cout << "assignment written to " << cli.emit_assignment << "\n";
  }
  return 0;
}
