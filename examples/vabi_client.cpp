// vabi_client: command-line client of the vabi_serve daemon. Submits a batch
// of generated nets, streams per-net results as the server solves them, and
// survives a server restart mid-stream: the connection tears, the client
// backs off (deterministic exponential backoff with jitter), reconnects with
// its session token, and resumes -- journaled results are restored by the
// server bit-identically and never re-solved.
//
//   vabi_client --unix /tmp/vabi.sock --generate 20 --batch 8 --seed 7
//   vabi_client --tcp 45123 --token mysess --resume --generate 20 --batch 8
//
// Per-net output lines are stable and full-precision:
//   net <i> ok nominal=<%.17g> buffers=<n> candidates=<c> [restored]
//   net <i> error <code-name>: <detail>
// which is what the CI smoke script diffs between an uninterrupted run and
// an interrupted+resumed one.
//
// Exit codes: 0 batch complete, 1 usage, 2 connect/budget exhausted,
// 3 overloaded, 4 draining, 5 session error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/solve_status.hpp"
#include "serve/client.hpp"

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: vabi_client [options]\n"
      "  --unix PATH           connect to a unix-domain socket\n"
      "  --tcp PORT            connect to 127.0.0.1:PORT\n"
      "  --token T             session token (server-assigned when absent)\n"
      "  --resume              restore journaled results for --token\n"
      "  --generate N          sinks per generated net (default 16)\n"
      "  --batch B             number of nets in the batch (default 4)\n"
      "  --seed S              batch seed (default 1)\n"
      "  --priority P          session priority 0-255 (default 1)\n"
      "  --deadline-ms D       session wall deadline (0 = none)\n"
      "  --rule 2p|4p|corner   pruning rule (default 2p)\n"
      "  --retries N           reconnect budget (default 5)\n"
      "  --overload-retries N  typed-overload resubmit budget (default 3)\n"
      "  --base-delay-ms MS    backoff base delay (default 50)\n"
      "  --jitter-seed S       backoff jitter seed (default 1)\n"
      "  --stats               fetch and print server stats JSON, then exit\n");
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  vabi::serve::client_options copts;
  vabi::serve::submit_msg submit;
  std::size_t sinks = 16;
  std::size_t batch = 4;
  bool stats_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (a == "--unix") {
      copts.unix_socket_path = value();
    } else if (a == "--tcp") {
      copts.tcp_port = std::atoi(value().c_str());
    } else if (a == "--token") {
      copts.token = value();
    } else if (a == "--resume") {
      copts.resume = true;
    } else if (a == "--generate") {
      sinks = static_cast<std::size_t>(std::atoi(value().c_str()));
    } else if (a == "--batch") {
      batch = static_cast<std::size_t>(std::atoi(value().c_str()));
    } else if (a == "--seed") {
      submit.batch_seed = std::strtoull(value().c_str(), nullptr, 10);
    } else if (a == "--priority") {
      submit.priority = static_cast<std::uint8_t>(std::atoi(value().c_str()));
    } else if (a == "--deadline-ms") {
      submit.session_deadline_ms =
          std::strtoull(value().c_str(), nullptr, 10);
    } else if (a == "--rule") {
      const std::string v = value();
      if (v == "2p") {
        submit.options.rule = 0;
      } else if (v == "4p") {
        submit.options.rule = 1;
      } else if (v == "corner") {
        submit.options.rule = 2;
      } else {
        usage();
      }
    } else if (a == "--retries") {
      copts.retry.max_attempts =
          static_cast<std::size_t>(std::atoi(value().c_str()));
    } else if (a == "--overload-retries") {
      copts.retry.max_overload_retries =
          static_cast<std::size_t>(std::atoi(value().c_str()));
    } else if (a == "--base-delay-ms") {
      copts.retry.base_delay_ms = std::atof(value().c_str());
    } else if (a == "--jitter-seed") {
      copts.retry.jitter_seed = std::strtoull(value().c_str(), nullptr, 10);
    } else if (a == "--stats") {
      stats_only = true;
    } else {
      std::fprintf(stderr, "vabi_client: unknown option '%s'\n", a.c_str());
      usage();
    }
  }
  if (copts.unix_socket_path.empty() && copts.tcp_port <= 0) {
    std::fprintf(stderr, "vabi_client: need --unix PATH or --tcp PORT\n");
    usage();
  }

  vabi::serve::serve_client client(copts);
  if (!client.connect()) {
    std::fprintf(stderr, "vabi_client: %s\n", client.last_error().c_str());
    return 2;
  }
  std::fprintf(stderr, "vabi_client: session token %s\n",
               client.token().c_str());

  if (stats_only) {
    const std::string json = client.fetch_stats();
    if (json.empty()) {
      std::fprintf(stderr, "vabi_client: %s\n", client.last_error().c_str());
      return 5;
    }
    std::fputs(json.c_str(), stdout);
    return 0;
  }

  for (std::size_t i = 0; i < batch; ++i) {
    vabi::serve::wire_job j;
    j.num_sinks = sinks;
    submit.jobs.push_back(j);
  }

  const vabi::serve::batch_summary summary = client.run_batch(
      submit, [](const vabi::serve::result_msg& r) {
        const vabi::core::journal_record& rec = r.record;
        if (rec.ok) {
          std::printf("net %llu ok nominal=%.17g buffers=%zu candidates=%zu%s\n",
                      static_cast<unsigned long long>(rec.job_index),
                      rec.result.root_rat.nominal(), rec.result.num_buffers,
                      rec.result.stats.candidates_created,
                      r.resumed ? " restored" : "");
        } else {
          std::printf("net %llu error %s: %s\n",
                      static_cast<unsigned long long>(rec.job_index),
                      vabi::core::to_string(rec.code), rec.detail.c_str());
        }
        std::fflush(stdout);
      });

  if (summary.complete) {
    std::fprintf(stderr,
                 "vabi_client: batch done solved=%llu restored=%llu "
                 "failed=%llu cancelled=%llu reconnects=%zu\n",
                 static_cast<unsigned long long>(summary.solved),
                 static_cast<unsigned long long>(summary.restored),
                 static_cast<unsigned long long>(summary.failed),
                 static_cast<unsigned long long>(summary.cancelled),
                 summary.reconnects);
    return 0;
  }
  std::fprintf(stderr, "vabi_client: %s\n", summary.error.c_str());
  if (summary.overloaded) return 3;
  if (summary.draining) return 4;
  return 5;
}
