// Yield-driven design: why variation-blind buffering loses timing yield.
//
// Reproduces the paper's central design argument (Section 5.3) on one net:
// optimize the same tree three ways -- NOM (deterministic), D2D (no spatial
// correlation), WID (full model) -- then evaluate every design under the true
// heterogeneous variation and compare timing yield at a common target, both
// analytically (canonical forms) and by Monte Carlo.
#include <iostream>

#include "analysis/monte_carlo_validation.hpp"
#include "analysis/variance_breakdown.hpp"
#include "analysis/yield.hpp"
#include "core/statistical_dp.hpp"
#include "core/van_ginneken.hpp"
#include "tree/generators.hpp"

int main() {
  using namespace vabi;

  tree::random_tree_options net_opts;
  net_opts.num_sinks = 300;
  net_opts.die_side_um = 12000.0;
  net_opts.seed = 2026;
  net_opts.criticality_balance = 0.8;  // budgeted net: many near-critical sinks
  const auto net = tree::make_random_tree(net_opts);
  const auto die = layout::square_die(net_opts.die_side_um);

  // Per-class budgets at the characterized (parameter-level 5%) strengths:
  // ~5% on C_b but ~10.5% on T_b (see examples/custom_device_characterization
  // for where these sensitivities come from).
  const layout::class_budget per_class{0.05, 0.105};

  timing::wire_model wire;
  const auto lib = timing::standard_library();
  const double rd = 150.0;

  const auto make_model = [&](layout::variation_mode mode) {
    layout::process_model_config c;
    c.mode = mode;
    c.budgets = {per_class, per_class, per_class};
    c.spatial.profile = layout::spatial_profile::heterogeneous;
    return layout::process_model{die, c};
  };

  // --- optimize three ways -------------------------------------------------
  core::det_options det{wire, lib, rd};
  const auto nom = core::run_van_ginneken(net, det).assignment;

  const auto run_stat = [&](layout::variation_mode mode) {
    auto model = make_model(mode);
    core::stat_options o;
    o.wire = wire;
    o.library = lib;
    o.driver_res_ohm = rd;
    // Optimize the paper's figure of merit: the 95%-yield RAT.
    o.root_percentile = 0.05;
    o.selection_percentile = 0.05;
    const auto r = core::run_statistical_insertion(net, model, o);
    return r.assignment;
  };
  const auto d2d = run_stat(layout::d2d_mode());
  const auto wid = run_stat(layout::wid_mode());

  // --- evaluate all three under the true variation -------------------------
  auto truth = make_model(layout::wid_mode());
  const auto evaluate = [&](const timing::buffer_assignment& a,
                            const char* name, double target) {
    analysis::buffered_tree_model design{net, wire, lib, a, truth, rd};
    const auto& space = truth.space();
    const auto v = analysis::validate_rat_model(design, truth, 3000, 99);
    std::cout << name << ": buffers " << design.num_buffers()
              << ", 95%-yield RAT "
              << analysis::yield_rat(design.root_rat(), space) << " ps"
              << ", yield@target "
              << 100.0 * analysis::timing_yield(design.root_rat(), space,
                                                target)
              << "% (model) / "
              << 100.0 * analysis::timing_yield_empirical(v.samples, target)
              << "% (MC)\n";
    return design.root_rat().mean();
  };

  // Target = WID mean RAT relaxed by 10% (the paper's convention).
  analysis::buffered_tree_model wid_design{net, wire, lib, wid, truth, rd};
  const double target =
      analysis::target_rat_from_mean(wid_design.root_rat().mean());
  std::cout << "target RAT = " << target << " ps\n";

  evaluate(nom, "NOM", target);
  evaluate(d2d, "D2D", target);
  evaluate(wid, "WID", target);

  // Which variation class dominates the WID design's spread?
  analysis::buffered_tree_model wid_eval{net, wire, lib, wid, truth, rd};
  const auto vb =
      analysis::decompose_variance(wid_eval.root_rat(), truth.space());
  std::cout << "WID RAT variance by class: random "
            << 100.0 * vb.fraction(vb.random_device) << "%, spatial "
            << 100.0 * vb.fraction(vb.spatial) << "%, inter-die "
            << 100.0 * vb.fraction(vb.inter_die) << "%\n";
  return 0;
}
