// vabi_serve: the solver daemon (src/serve/server.hpp) as a command-line
// service. Listens on a unix socket and/or loopback TCP, serves concurrent
// vabi_client sessions, and drains gracefully on SIGINT/SIGTERM: admission
// stops (clients get a typed `draining` reply), in-flight nets finish,
// session journals flush, then the process exits 0.
//
//   vabi_serve --unix /tmp/vabi.sock --journal-dir /tmp/vabi-journals
//   vabi_serve --tcp 0 --threads 4            # ephemeral port, printed
//
// Exit codes: 0 clean shutdown, 1 usage error, 2 bind/listen failure.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "serve/server.hpp"

namespace {

volatile std::sig_atomic_t g_signal = 0;

void on_signal(int) { g_signal = 1; }

void usage() {
  std::fprintf(
      stderr,
      "usage: vabi_serve [options]\n"
      "  --unix PATH            unix-domain listener socket\n"
      "  --tcp PORT             loopback TCP listener (0 = ephemeral)\n"
      "  --threads N            solver pool width (default: auto)\n"
      "  --max-sessions N       concurrent session cap (default 64)\n"
      "  --max-queued-jobs N    admission bound on queued+running jobs\n"
      "  --journal-dir DIR      per-session journals (enables resume)\n"
      "  --checkpoint-every N   journal checkpoint cadence (default 8)\n"
      "  --stall-timeout SEC    shed a stalled reader after SEC (default 10)\n"
      "  --drain-timeout SEC    drain wait before cancelling (default 30)\n"
      "  --stats-json PATH      dump final stats JSON on shutdown\n");
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  vabi::serve::serve_options opts;
  std::string stats_json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (a == "--unix") {
      opts.unix_socket_path = value();
    } else if (a == "--tcp") {
      opts.tcp_port = std::atoi(value().c_str());
    } else if (a == "--threads") {
      opts.num_threads = static_cast<std::size_t>(std::atoi(value().c_str()));
    } else if (a == "--max-sessions") {
      opts.max_sessions = static_cast<std::size_t>(std::atoi(value().c_str()));
    } else if (a == "--max-queued-jobs") {
      opts.max_queued_jobs =
          static_cast<std::size_t>(std::atoi(value().c_str()));
    } else if (a == "--journal-dir") {
      opts.journal_dir = value();
    } else if (a == "--checkpoint-every") {
      opts.checkpoint_every_jobs =
          static_cast<std::size_t>(std::atoi(value().c_str()));
    } else if (a == "--stall-timeout") {
      opts.stall_timeout_seconds = std::atof(value().c_str());
    } else if (a == "--drain-timeout") {
      opts.drain_timeout_seconds = std::atof(value().c_str());
    } else if (a == "--stats-json") {
      stats_json_path = value();
    } else {
      std::fprintf(stderr, "vabi_serve: unknown option '%s'\n", a.c_str());
      usage();
    }
  }
  if (opts.unix_socket_path.empty() && opts.tcp_port < 0) {
    std::fprintf(stderr, "vabi_serve: need --unix PATH and/or --tcp PORT\n");
    usage();
  }

  vabi::serve::solver_daemon daemon(opts);
  if (const std::string err = daemon.start(); !err.empty()) {
    std::fprintf(stderr, "vabi_serve: %s\n", err.c_str());
    return 2;
  }
  if (!opts.unix_socket_path.empty()) {
    std::fprintf(stderr, "vabi_serve: listening on %s\n",
                 opts.unix_socket_path.c_str());
  }
  if (opts.tcp_port >= 0) {
    std::fprintf(stderr, "vabi_serve: listening on 127.0.0.1:%d\n",
                 daemon.tcp_port());
  }
  std::fflush(stderr);

  struct sigaction sa{};
  sa.sa_handler = on_signal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);

  while (g_signal == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::fprintf(stderr, "vabi_serve: draining (finishing in-flight jobs)\n");
  daemon.stop();  // request_drain + bounded wait + journal flush

  if (!stats_json_path.empty()) {
    if (std::FILE* f = std::fopen(stats_json_path.c_str(), "w")) {
      const std::string json = daemon.stats_json();
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "vabi_serve: cannot write %s\n",
                   stats_json_path.c_str());
    }
  }
  std::fprintf(stderr, "vabi_serve: shutdown complete\n");
  return 0;
}
