// eco_fuzz -- incremental-consistency fuzzer for the ECO solve_session.
//
// Generates seeded random trees, drives each through a stream of random
// edits (sink moves, RAT retargets, wire resizes), and after every edit
// requires the session's warm incremental re-solve to be bit-identical --
// equal root-RAT form hashes -- to a cache-bypassing cold solve of the same
// edited tree. The nightly workflow runs this under VABI_FORCE_DENSE=1 and
// VABI_FORCE_KERNEL=scalar, the engine's least-exercised corner.
//
//   eco_fuzz [--trees N] [--edits M] [--sinks S] [--seed X]
//            [--fail-script PATH]
//
// On a mismatch (or any unexpected solve failure) the full edit script that
// led to it is written to --fail-script (default failing_edits.txt) so the
// exact sequence can be replayed, and the exit code is 1.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "core/slab_cache.hpp"
#include "core/statistical_dp.hpp"
#include "stats/rng.hpp"
#include "tree/generators.hpp"

namespace {

using namespace vabi;

struct fuzz_options {
  std::size_t trees = 8;
  std::size_t edits = 25;
  std::size_t sinks = 200;
  std::uint64_t seed = 1;
  std::string fail_script = "failing_edits.txt";
};

[[noreturn]] void usage(const char* msg) {
  if (msg != nullptr) std::cerr << "eco_fuzz: " << msg << "\n";
  std::cerr << "usage: eco_fuzz [--trees N] [--edits M] [--sinks S]\n"
               "                [--seed X] [--fail-script PATH]\n";
  std::exit(1);
}

fuzz_options parse(int argc, char** argv) {
  fuzz_options o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage("missing value");
      return argv[++i];
    };
    if (a == "--trees") {
      o.trees = std::stoul(value());
    } else if (a == "--edits") {
      o.edits = std::stoul(value());
    } else if (a == "--sinks") {
      o.sinks = std::stoul(value());
    } else if (a == "--seed") {
      o.seed = std::stoull(value());
    } else if (a == "--fail-script") {
      o.fail_script = value();
    } else if (a == "--help" || a == "-h") {
      usage(nullptr);
    } else {
      usage(("unknown option " + a).c_str());
    }
  }
  if (o.trees == 0 || o.edits == 0 || o.sinks < 2) {
    usage("--trees/--edits must be >= 1, --sinks >= 2");
  }
  return o;
}

layout::process_model make_model(const tree::routing_tree& t) {
  layout::process_model_config c;
  c.mode = layout::wid_mode();
  layout::bbox die = t.bounding_box();
  die.expand({die.lo.x - 200.0, die.lo.y - 200.0});
  die.expand({die.hi.x + 200.0, die.hi.y + 200.0});
  return layout::process_model{die, c};
}

/// One random edit; appends its replayable description to `script`.
void random_edit(tree::routing_tree& t, std::mt19937_64& rng,
                 double die_side_um, std::vector<std::string>& script) {
  const auto sinks = t.sinks();
  std::uniform_int_distribution<std::size_t> pick_sink(0, sinks.size() - 1);
  std::uniform_real_distribution<double> coord(0.0, die_side_um);
  std::ostringstream line;
  switch (rng() % 3) {
    case 0: {
      const tree::node_id s = sinks[pick_sink(rng)];
      const layout::point to{coord(rng), coord(rng)};
      t.apply_edit(tree::tree_edit::move_sink(s, to));
      line << "move_sink " << s << ' ' << to.x << ' ' << to.y;
      break;
    }
    case 1: {
      const tree::node_id s = sinks[pick_sink(rng)];
      std::uniform_real_distribution<double> delta(-250.0, 250.0);
      const double rat = t.node(s).sink_rat_ps + delta(rng);
      t.apply_edit(tree::tree_edit::retarget_rat(s, rat));
      line << "retarget_rat " << s << ' ' << rat;
      break;
    }
    default: {
      std::uniform_int_distribution<tree::node_id> pick_node(
          1, static_cast<tree::node_id>(t.num_nodes() - 1));
      const tree::node_id n = pick_node(rng);
      std::uniform_real_distribution<double> len(1.0, 600.0);
      const double um = len(rng);
      t.apply_edit(tree::tree_edit::resize_wire(n, um));
      line << "resize_wire " << n << ' ' << um;
      break;
    }
  }
  script.push_back(line.str());
}

int dump_failure(const fuzz_options& o, std::size_t tree_index,
                 std::uint64_t tree_seed, const char* why,
                 const std::vector<std::string>& script) {
  std::cerr << "eco_fuzz: FAILURE on tree " << tree_index << " (seed "
            << tree_seed << "): " << why << "\n";
  std::ofstream os(o.fail_script);
  if (os) {
    os << "# eco_fuzz failing edit script\n"
       << "# seed " << o.seed << " tree " << tree_index << " tree_seed "
       << tree_seed << " sinks " << o.sinks << "\n"
       << "# failure: " << why << "\n";
    for (const auto& line : script) os << line << '\n';
    std::cerr << "eco_fuzz: edit script written to " << o.fail_script << "\n";
  } else {
    std::cerr << "eco_fuzz: cannot write " << o.fail_script << "\n";
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const fuzz_options o = parse(argc, argv);
  constexpr double die_side_um = 8000.0;

  for (std::size_t ti = 0; ti < o.trees; ++ti) {
    const std::uint64_t tree_seed = o.seed * 1000 + ti;
    tree::random_tree_options g;
    g.num_sinks = o.sinks;
    g.die_side_um = die_side_um;
    g.seed = tree_seed;
    auto t = tree::make_random_tree(g);

    auto model = make_model(t);
    core::solve_session session{model};
    core::stat_options so;
    so.library = timing::standard_library();
    so.driver_res_ohm = 150.0;
    // Alternate the engines and the Li-Shi path across trees so one run
    // covers the full rule x frontier matrix.
    so.rule = ti % 3 == 2 ? core::pruning_kind::corner
                          : core::pruning_kind::two_param;
    so.li_shi =
        ti % 2 == 0 ? core::li_shi_mode::always : core::li_shi_mode::never;

    std::vector<std::string> script;
    const auto first = session.solve(t, so);
    if (!first.ok()) {
      return dump_failure(o, ti, tree_seed, core::to_string(first.code()),
                          script);
    }

    auto rng = stats::make_rng(tree_seed, 97);
    for (std::size_t e = 0; e < o.edits; ++e) {
      random_edit(t, rng, die_side_um, script);
      const auto warm = session.solve(t, so);
      if (!warm.ok()) {
        return dump_failure(o, ti, tree_seed, core::to_string(warm.code()),
                            script);
      }
      const auto cold = session.solve_cold(t, so);
      if (!cold.ok()) {
        return dump_failure(o, ti, tree_seed, core::to_string(cold.code()),
                            script);
      }
      if (core::form_hash(warm->root_rat) != core::form_hash(cold->root_rat)) {
        return dump_failure(o, ti, tree_seed,
                            "warm root RAT hash != cold root RAT hash",
                            script);
      }
    }
    std::cout << "tree " << ti << " (" << core::to_string(so.rule) << ", "
              << o.edits << " edits): warm == cold after every edit, "
              << session.cached_nodes() << " nodes cached\n";
  }
  std::cout << "eco_fuzz: " << o.trees << " trees x " << o.edits
            << " edits, all incremental re-solves bit-identical\n";
  return 0;
}
