// Building a buffer library from device characterization (Section 3.1 flow).
//
// Instead of taking the stock library, this example characterizes three
// buffer sizes against the nonlinear transistor model (the SPICE stand-in),
// fits the first-order sensitivities of eqs. (19)-(20), and then uses the
// fitted nominals to drive a variation-aware insertion run with budgets
// derived from the fit rather than the default 5% rule of thumb.
#include <iostream>

#include "core/statistical_dp.hpp"
#include "device/characterize.hpp"
#include "tree/generators.hpp"

int main() {
  using namespace vabi;

  // --- characterize three sizes against the nonlinear device model ---------
  const device::transistor_model xtor{device::transistor_model_config{},
                                      timing::standard_library()[0]};
  timing::buffer_library fitted_lib;
  layout::class_budget fitted_budget{0.0, 0.0};
  for (const double size : {1.0, 2.0, 4.0}) {
    device::characterization_config cfg;
    cfg.samples = 5000;
    cfg.leff_sigma_frac = 0.10;
    cfg.buffer_size = size;
    cfg.seed = 1000 + static_cast<std::uint64_t>(size);
    const auto r = device::characterize_buffer(xtor, cfg);

    const auto nominal = xtor.extract(xtor.config().nominal, size);
    fitted_lib.add({"fit_x" + std::to_string(static_cast<int>(size)),
                    r.cap_nominal_pf, r.delay_nominal_ps, nominal.res_ohm});
    const double rel = r.delay_sigma_ps / r.delay_nominal_ps;
    fitted_budget.delay = std::max(fitted_budget.delay, rel);
    fitted_budget.cap =
        std::max(fitted_budget.cap, r.cap_sigma_pf / r.cap_nominal_pf);
    std::cout << "size x" << size << ": Cb0 = " << r.cap_nominal_pf
              << " pF, Tb0 = " << r.delay_nominal_ps << " ps, sigma(Tb)/Tb0 = "
              << 100.0 * rel << "% (fit R^2 " << r.delay_fit.r_squared
              << ", KS " << r.delay_ks_to_fitted_normal << ")\n";
  }

  // --- use the fitted library + budgets in an insertion run ----------------
  tree::random_tree_options net_opts;
  net_opts.num_sinks = 100;
  net_opts.die_side_um = 6000.0;
  net_opts.seed = 7;
  const auto net = tree::make_random_tree(net_opts);

  layout::process_model_config pm_cfg;
  pm_cfg.mode = layout::wid_mode();
  pm_cfg.budgets.random_device = fitted_budget;  // from the fit
  layout::process_model model{layout::square_die(net_opts.die_side_um),
                              pm_cfg};

  core::stat_options opts;
  opts.library = fitted_lib;
  opts.driver_res_ohm = 150.0;
  const auto result = core::run_statistical_insertion(net, model, opts);
  if (!result.ok()) {
    std::cerr << "aborted: " << result.stats.abort_reason << "\n";
    return 1;
  }
  std::cout << "inserted " << result.num_buffers
            << " fitted buffers; root RAT mean " << result.root_rat.mean()
            << " ps, sigma " << result.root_rat.stddev(model.space())
            << " ps\n";
  return 0;
}
