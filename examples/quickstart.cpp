// Quickstart: variation-aware buffer insertion on a small net in ~40 lines.
//
//   1. Build (or load) a routing tree.
//   2. Describe the process variation (budgets + spatial model).
//   3. Run the 2P-pruned statistical optimizer.
//   4. Inspect the buffered design and its RAT distribution.
#include <iostream>

#include "analysis/yield.hpp"
#include "core/statistical_dp.hpp"
#include "tree/generators.hpp"

int main() {
  using namespace vabi;

  // 1. A random 50-sink net on a 6 mm x 6 mm die (use tree::load_tree to read
  //    your own net from disk instead).
  tree::random_tree_options net_opts;
  net_opts.num_sinks = 50;
  net_opts.die_side_um = 6000.0;
  net_opts.seed = 1;
  const auto net = tree::make_random_tree(net_opts);

  // 2. Full variation model: 5% random device + 5% inter-die + 5% spatially
  //    correlated intra-die variation (the paper's WID setting).
  layout::process_model_config pm_cfg;
  pm_cfg.mode = layout::wid_mode();
  layout::process_model model{layout::square_die(net_opts.die_side_um), pm_cfg};

  // 3. Optimize. The default pruning rule is the paper's two-parameter (2P)
  //    rule at pbar = 0.5, which runs in deterministic-van-Ginneken time.
  core::stat_options opts;
  opts.library = timing::standard_library();
  opts.driver_res_ohm = 150.0;
  const auto result = core::run_statistical_insertion(net, model, opts);
  if (!result.ok()) {
    std::cerr << "optimization aborted: " << result.stats.abort_reason << "\n";
    return 1;
  }

  // 4. Report.
  const auto& space = model.space();
  std::cout << "inserted " << result.num_buffers << " buffers into a net with "
            << net.num_buffer_positions() << " legal positions\n";
  std::cout << "root RAT:  mean = " << result.root_rat.mean()
            << " ps,  sigma = " << result.root_rat.stddev(space) << " ps\n";
  std::cout << "95%-yield RAT (5th percentile) = "
            << analysis::yield_rat(result.root_rat, space) << " ps\n";
  std::cout << "optimizer: " << result.stats.candidates_created
            << " candidates, peak list " << result.stats.peak_list_size
            << ", " << result.stats.wall_seconds << " s\n";

  // Where did the buffers go?
  std::cout << "buffered nodes:";
  for (tree::node_id id = 0; id < net.num_nodes(); ++id) {
    if (result.assignment.has_buffer(id)) {
      std::cout << " " << id << "("
                << opts.library[result.assignment.buffer(id)].name << ")";
    }
  }
  std::cout << "\n";
  return 0;
}
