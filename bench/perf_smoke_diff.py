#!/usr/bin/env python3
"""Perf smoke: diff a bench JSON run against the committed baseline.

Understands two input shapes:

  - google-benchmark JSON (bench_micro_ops): per-benchmark real_time ns/op;
  - the repo's own json_records artifacts (bench_table2_runtime,
    bench_table5_buffers, ...): ``{"bench", "git_sha", "records": [...]}``.
    Each record's string-valued fields (section, bench, rule, li_shi, ...)
    are joined into the benchmark name, every numeric field ending in
    "seconds" becomes one timing entry, and records flagged aborted are
    skipped -- so the DP hot paths the tables time (per-net 2P/4P solves,
    the Li-Shi b-axis) gate CI exactly like the micro-ops do.

Prints a table of ratios and emits a GitHub Actions `::warning::` annotation
for every benchmark slower than --max-ratio times its baseline.

With --fail-ratio set, the smoke *gates*: any benchmark slower than
fail-ratio times its baseline emits a `::error::` annotation and the script
exits 1 (CI fails the job). Without it the script always exits 0 on
well-formed input -- the historical warn-only behavior. The two thresholds
compose: warn early at --max-ratio, fail hard at --fail-ratio (set the
fail threshold above the warn one and above the hardware noise floor; the
suite enforces bit-identity, this enforces that the bit-identical code also
stays fast).

Usage:
  perf_smoke_diff.py CURRENT.json [--baseline bench/baselines/...json]
                     [--max-ratio 1.5] [--fail-ratio 2.0]
"""

import argparse
import json
import sys


def load_times(path):
    """name -> time in ns for every benchmark entry in either format."""
    with open(path) as f:
        doc = json.load(f)
    times = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        unit = b.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit)
        if scale is None or "real_time" not in b:
            continue
        times[b["name"]] = b["real_time"] * scale
    # Numeric fields that identify a sweep point rather than measure it;
    # they join the name so e.g. b=8 and b=64 records stay distinct.
    axis_keys = ("b", "job", "threads")
    for r in doc.get("records", []):
        if r.get("aborted"):
            continue
        parts = [
            v for k, v in r.items() if isinstance(v, str) and k != "detail"
        ]
        parts += [
            f"{k}{r[k]:g}" for k in axis_keys if isinstance(r.get(k), (int, float))
        ]
        name = ":".join(parts)
        for key, value in r.items():
            if not key.endswith("seconds"):
                continue
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            times[f"{name}/{key}"] = value * 1e9
    return times


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("current")
    ap.add_argument(
        "--baseline", default="bench/baselines/BENCH_micro_ops_baseline.json"
    )
    ap.add_argument(
        "--max-ratio",
        type=float,
        default=1.5,
        help="warn when current/baseline exceeds this",
    )
    ap.add_argument(
        "--fail-ratio",
        type=float,
        default=None,
        help="exit 1 when current/baseline exceeds this (default: warn only)",
    )
    args = ap.parse_args()
    if args.fail_ratio is not None and args.fail_ratio < args.max_ratio:
        print(f"::error::perf smoke: --fail-ratio {args.fail_ratio} below "
              f"--max-ratio {args.max_ratio}")
        return 2

    base = load_times(args.baseline)
    cur = load_times(args.current)
    if not base or not cur:
        print(f"::warning::perf smoke: empty benchmark set "
              f"(baseline={len(base)}, current={len(cur)}) -- skipping diff")
        return 0

    shared = sorted(set(base) & set(cur))
    missing = sorted(set(base) - set(cur))
    slow = []
    failed = []
    width = max((len(n) for n in shared), default=10)
    print(f"{'benchmark':<{width}}  {'base ns':>10}  {'cur ns':>10}  ratio")
    for name in shared:
        ratio = cur[name] / base[name] if base[name] > 0 else float("inf")
        flag = "  <-- slow" if ratio > args.max_ratio else ""
        print(f"{name:<{width}}  {base[name]:>10.1f}  {cur[name]:>10.1f}  "
              f"{ratio:>5.2f}{flag}")
        if args.fail_ratio is not None and ratio > args.fail_ratio:
            failed.append((name, ratio))
        elif ratio > args.max_ratio:
            slow.append((name, ratio))

    for name, ratio in slow:
        print(f"::warning::perf smoke: {name} is {ratio:.2f}x its baseline "
              f"(limit {args.max_ratio}x)")
    for name, ratio in failed:
        print(f"::error::perf smoke: {name} is {ratio:.2f}x its baseline "
              f"(fail limit {args.fail_ratio}x)")
    for name in missing:
        print(f"::warning::perf smoke: baseline benchmark {name} missing "
              f"from current run")
    print(f"perf smoke: {len(shared)} compared, {len(slow)} above "
          f"{args.max_ratio}x, {len(failed)} above fail limit, "
          f"{len(missing)} missing")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
