// Table 5: number of buffers inserted by each optimization mode.
//
// Paper shape to reproduce: WID uses the fewest buffers (NOM ~1.15x, D2D
// ~1.13x on average) -- the variation-aware optimizer spends buffers only
// where they buy statistical RAT.
#include <iostream>
#include <vector>

#include "rat_pipeline.hpp"

int main() {
  using namespace vabi;
  bench::experiment_config cfg;

  std::cout << "=== Table 5: Number of buffers under different variation "
               "models (heterogeneous spatial) ===\n";
  analysis::text_table t{{"Bench", "NOM", "D2D", "WID"}};
  double ratio_nom = 0.0;
  double ratio_d2d = 0.0;
  std::size_t n = 0;
  for (const auto& spec : bench::suite()) {
    const auto row = bench::run_rat_experiment(
        spec, cfg, layout::spatial_profile::heterogeneous);
    const double wid = static_cast<double>(std::max<std::size_t>(row.buf_wid, 1));
    ratio_nom += static_cast<double>(row.buf_nom) / wid;
    ratio_d2d += static_cast<double>(row.buf_d2d) / wid;
    ++n;
    t.add_row({row.name,
               std::to_string(row.buf_nom) + " (" +
                   analysis::fmt(static_cast<double>(row.buf_nom) / wid, 2) +
                   "x)",
               std::to_string(row.buf_d2d) + " (" +
                   analysis::fmt(static_cast<double>(row.buf_d2d) / wid, 2) +
                   "x)",
               std::to_string(row.buf_wid)});
  }
  t.add_row({"Avg", analysis::fmt(ratio_nom / static_cast<double>(n), 2) + "x",
             analysis::fmt(ratio_d2d / static_cast<double>(n), 2) + "x", "1x"});
  t.print(std::cout);
  std::cout << "(paper: NOM avg 1.15x, D2D avg 1.13x, WID 1x -- WID uses the "
               "fewest buffers)\n";
  return 0;
}
