// Table 5: number of buffers inserted by each optimization mode.
//
// Paper shape to reproduce: WID uses the fewest buffers (NOM ~1.15x, D2D
// ~1.13x on average) -- the variation-aware optimizer spends buffers only
// where they buy statistical RAT.
//
// A second section sweeps the library size b (make_parameterized_library):
// richer libraries let both the deterministic and the 2P engines hit the
// same RAT with different (usually fewer) repeaters, and with the Li-Shi
// frontier the sweep stays near-linear in b. `--smoke` restricts the suite
// and the sweep for the CI bench-smoke job; `--json <path>` writes the
// BENCH_table5.json artifact.
#include <iostream>
#include <string>
#include <vector>

#include "json_out.hpp"
#include "rat_pipeline.hpp"

namespace {

bool smoke_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") return true;
  }
  const char* v = std::getenv("VABI_SMOKE");
  return v != nullptr && std::string(v) != "0";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vabi;
  bench::experiment_config cfg;
  const bool smoke = smoke_mode(argc, argv);
  bench::json_records json;

  std::cout << "=== Table 5: Number of buffers under different variation "
               "models (heterogeneous spatial) ===\n";
  analysis::text_table t{{"Bench", "NOM", "D2D", "WID"}};
  double ratio_nom = 0.0;
  double ratio_d2d = 0.0;
  std::size_t n = 0;
  auto specs = bench::suite();
  if (smoke) specs.resize(std::min<std::size_t>(specs.size(), 2));
  for (const auto& spec : specs) {
    const auto row = bench::run_rat_experiment(
        spec, cfg, layout::spatial_profile::heterogeneous);
    const double wid = static_cast<double>(std::max<std::size_t>(row.buf_wid, 1));
    ratio_nom += static_cast<double>(row.buf_nom) / wid;
    ratio_d2d += static_cast<double>(row.buf_d2d) / wid;
    ++n;
    t.add_row({row.name,
               std::to_string(row.buf_nom) + " (" +
                   analysis::fmt(static_cast<double>(row.buf_nom) / wid, 2) +
                   "x)",
               std::to_string(row.buf_d2d) + " (" +
                   analysis::fmt(static_cast<double>(row.buf_d2d) / wid, 2) +
                   "x)",
               std::to_string(row.buf_wid)});
    json.begin()
        .str("section", "modes")
        .str("bench", row.name)
        .num("buf_nom", static_cast<std::uint64_t>(row.buf_nom))
        .num("buf_d2d", static_cast<std::uint64_t>(row.buf_d2d))
        .num("buf_wid", static_cast<std::uint64_t>(row.buf_wid));
  }
  t.add_row({"Avg", analysis::fmt(ratio_nom / static_cast<double>(n), 2) + "x",
             analysis::fmt(ratio_d2d / static_cast<double>(n), 2) + "x", "1x"});
  t.print(std::cout);

  // -- Library-size axis ----------------------------------------------------
  std::cout << "\n=== Buffers vs library size (Li-Shi frontier) ===\n";
  analysis::text_table tb{{"b", "NOM bufs", "NOM (s)", "WID 2P bufs",
                           "WID 2P (s)", "li-shi nodes"}};
  const std::vector<std::size_t> lib_sizes =
      smoke ? std::vector<std::size_t>{8, 64}
            : std::vector<std::size_t>{8, 64, 256};
  tree::benchmark_spec bspec;
  bspec.name = "baxis";
  bspec.sinks = smoke ? 64 : 128;
  bspec.die_side_um = 6000.0;
  bspec.seed = 900;
  const auto bnet = tree::build_benchmark(bspec);
  const auto profile = layout::spatial_profile::heterogeneous;

  for (const std::size_t b : lib_sizes) {
    const auto lib = timing::make_parameterized_library(b);

    core::det_options det{cfg.wire, lib, cfg.driver_res_ohm};
    const auto rd = core::run_van_ginneken(bnet, det);

    core::stat_options so =
        bench::make_stat_options(cfg, core::pruning_kind::two_param);
    so.library = lib;
    so.selection_percentile = 0.5;  // mean selection: the frontier regime
    auto model = bench::make_model(bspec, cfg, layout::wid_mode(), profile);
    const auto rs = core::run_statistical_insertion(bnet, model, so);

    tb.add_row({std::to_string(b), std::to_string(rd.num_buffers),
                analysis::fmt(rd.stats.wall_seconds, 3),
                std::to_string(rs.num_buffers),
                analysis::fmt(rs.stats.wall_seconds, 3),
                std::to_string(rs.stats.li_shi_nodes)});
    json.begin()
        .str("section", "b_axis")
        .num("b", static_cast<std::uint64_t>(b))
        .num("buf_nom", static_cast<std::uint64_t>(rd.num_buffers))
        .num("buf_wid", static_cast<std::uint64_t>(rs.num_buffers))
        .num("det_seconds", rd.stats.wall_seconds)
        .num("stat_seconds", rs.stats.wall_seconds)
        .num("li_shi_nodes",
             static_cast<std::uint64_t>(rs.stats.li_shi_nodes));
  }
  tb.print(std::cout);

  const std::string json_path = bench::parse_json_path(argc, argv);
  if (json.write(json_path, "table5_buffers")) {
    std::cout << "(json artifact: " << json_path << ")\n";
  }
  std::cout << "(paper: NOM avg 1.15x, D2D avg 1.13x, WID 1x -- WID uses the "
               "fewest buffers)\n";
  return 0;
}
