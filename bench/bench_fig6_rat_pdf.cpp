// Figure 6: root RAT PDF predicted by the canonical-form model vs Monte
// Carlo simulation of the same buffered tree.
//
// The paper runs this on its largest net (r5) and finds the first-order model
// "very accurate". Default here uses r2 so the bench suite stays fast;
// VABI_FULL=1 switches to r5 as in the paper.
#include <iostream>

#include "analysis/monte_carlo_validation.hpp"
#include "harness.hpp"

int main() {
  using namespace vabi;
  bench::experiment_config cfg;
  const auto spec = *tree::find_benchmark(bench::full_mode() ? "r5" : "r2");
  const auto profile = layout::spatial_profile::heterogeneous;

  const auto net = tree::build_benchmark(spec);
  const auto wid = bench::optimize(net, spec, cfg, layout::wid_mode(), profile);

  auto eval_model = bench::make_model(spec, cfg, layout::wid_mode(), profile);
  analysis::buffered_tree_model design{
      net, cfg.wire, cfg.library, wid.assignment, eval_model,
      cfg.driver_res_ohm};

  const std::size_t samples = bench::full_mode() ? 10000 : 4000;
  const auto v = analysis::validate_rat_model(design, eval_model, samples, 4242);

  std::cout << "=== Figure 6: RAT at the root, model vs Monte Carlo ("
            << spec.name << ", " << samples << " samples) ===\n";
  analysis::text_table t{{"Quantity", "Model", "Monte Carlo"}};
  t.add_row({"mean (ps)", analysis::fmt(v.model_mean_ps, 1),
             analysis::fmt(v.mc_moments.mean, 1)});
  t.add_row({"sigma (ps)", analysis::fmt(v.model_sigma_ps, 2),
             analysis::fmt(v.mc_moments.stddev, 2)});
  t.add_row({"5th pct (ps)",
             analysis::fmt(v.model_mean_ps - 1.6449 * v.model_sigma_ps, 1),
             analysis::fmt(v.samples.quantile(0.05), 1)});
  t.print(std::cout);
  std::cout << "KS distance = " << analysis::fmt(v.ks_distance, 4) << "\n\n";

  std::cout << "-- Monte-Carlo RAT PDF --\n";
  analysis::print_histogram(std::cout, v.samples.density_histogram(25), 50);
  std::cout << "(paper: model-predicted PDF overlays the MC PDF)\n";
  return 0;
}
