// Machine-readable bench artifacts: every record-emitting bench writes one
// flat JSON file (`--json <path>`) of the form
//
//   {"bench": "...", "git_sha": "...", "kernel_isa": "...",
//    "records": [{...}, {...}, ...]}
//
// so CI can upload and diff results across commits without scraping the
// human-oriented text tables. git_sha and kernel_isa attribute every artifact
// to a commit and the SIMD dispatch the run actually took (the same context
// bench_micro_ops attaches to its google-benchmark output). Values are
// restricted to strings and numbers; keys are code-controlled identifiers
// (no general escaping needed beyond quotes/backslashes).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <variant>
#include <vector>

#include "stats/kernels.hpp"

#ifndef VABI_GIT_SHA
#define VABI_GIT_SHA "unknown"
#endif

namespace vabi::bench {

inline const char* git_sha() { return VABI_GIT_SHA; }

/// `--json PATH` from a bench command line; empty if absent.
inline std::string parse_json_path(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") return argv[i + 1];
  }
  return {};
}

class json_records {
 public:
  json_records& begin() {
    rows_.emplace_back();
    return *this;
  }
  json_records& str(const char* key, std::string value) {
    rows_.back().emplace_back(key, std::move(value));
    return *this;
  }
  json_records& num(const char* key, double value) {
    rows_.back().emplace_back(key, value);
    return *this;
  }
  json_records& num(const char* key, std::uint64_t value) {
    rows_.back().emplace_back(key, value);
    return *this;
  }
  json_records& boolean(const char* key, bool value) {
    rows_.back().emplace_back(key, value);
    return *this;
  }

  /// Writes the artifact; returns false (and stays silent) on I/O failure so
  /// benches degrade to text-only output.
  bool write(const std::string& path, const std::string& bench_name) const {
    if (path.empty()) return false;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(
        f, "{\"bench\": \"%s\", \"git_sha\": \"%s\", \"kernel_isa\": \"%s\", "
           "\"records\": [",
        escape(bench_name).c_str(), escape(git_sha()).c_str(),
        stats::kernels::to_string(stats::kernels::active_isa()));
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      std::fprintf(f, "%s\n  {", r == 0 ? "" : ",");
      for (std::size_t i = 0; i < rows_[r].size(); ++i) {
        const auto& [key, value] = rows_[r][i];
        std::fprintf(f, "%s\"%s\": ", i == 0 ? "" : ", ", key.c_str());
        if (const auto* s = std::get_if<std::string>(&value)) {
          std::fprintf(f, "\"%s\"", escape(*s).c_str());
        } else if (const auto* d = std::get_if<double>(&value)) {
          std::fprintf(f, "%.17g", *d);
        } else if (const auto* u = std::get_if<std::uint64_t>(&value)) {
          std::fprintf(f, "%llu", static_cast<unsigned long long>(*u));
        } else {
          std::fprintf(f, "%s", std::get<bool>(value) ? "true" : "false");
        }
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "\n]}\n");
    std::fclose(f);
    return true;
  }

 private:
  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  using value = std::variant<std::string, double, std::uint64_t, bool>;
  std::vector<std::vector<std::pair<std::string, value>>> rows_;
};

}  // namespace vabi::bench
