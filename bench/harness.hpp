// Shared harness for the table/figure reproduction binaries.
//
// Every bench_* executable regenerates one table or figure of the paper and
// prints it in a stable text format. Defaults are sized to finish the whole
// bench suite in a few minutes on a laptop; set VABI_FULL=1 to run the full
// benchmark set (through r5, as in the paper).
#pragma once

#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/buffered_tree_model.hpp"
#include "analysis/reporting.hpp"
#include "analysis/yield.hpp"
#include "core/statistical_dp.hpp"
#include "core/van_ginneken.hpp"
#include "layout/process_model.hpp"
#include "timing/buffer_library.hpp"
#include "device/characterize.hpp"
#include "timing/wire_model.hpp"
#include "tree/benchmarks.hpp"

namespace vabi::bench {

inline bool full_mode() {
  const char* v = std::getenv("VABI_FULL");
  return v != nullptr && std::string(v) != "0";
}

/// `--threads N` from a bench command line; falls back to the VABI_THREADS
/// env var, then to 1 (serial), so the printed tables stay comparable run to
/// run unless parallelism is asked for explicitly.
inline std::size_t parse_threads(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--threads") {
      const unsigned long n = std::strtoul(argv[i + 1], nullptr, 10);
      if (n > 0) return static_cast<std::size_t>(n);
    }
  }
  if (const char* v = std::getenv("VABI_THREADS")) {
    const unsigned long n = std::strtoul(v, nullptr, 10);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return 1;
}

/// The benchmark suite: the 2P engine is fast enough to run all seven nets
/// of Table 1 by default; VABI_FULL only enlarges the expensive extras
/// (4P budgets, Monte-Carlo sample counts, Fig. 5 sweep sizes).
inline std::vector<tree::benchmark_spec> suite() {
  return tree::paper_benchmarks();
}

/// Budgets realizing the paper's "5% of nominal per class" at the process-
/// parameter level: the device characterization flow (Section 3.1) turns a
/// 5% L_eff sigma into the cap/delay sigmas via the fitted sensitivities --
/// ~5% on C_b but ~10.5% on T_b for the 65nm-flavor model (delay responds
/// super-linearly to channel length). Computed once per process.
inline layout::variation_budgets calibrated_budgets() {
  static const layout::variation_budgets budgets = [] {
    const device::transistor_model model{device::transistor_model_config{},
                                         timing::standard_library()[0]};
    device::characterization_config cfg;
    cfg.samples = 4000;
    cfg.leff_sigma_frac = 0.05;  // the paper's per-class budget
    const auto fit = device::characterize_buffer(model, cfg);
    layout::class_budget per_class{fit.cap_sigma_pf / fit.cap_nominal_pf,
                                   fit.delay_sigma_ps / fit.delay_nominal_ps};
    return layout::variation_budgets{per_class, per_class, per_class};
  }();
  return budgets;
}

struct experiment_config {
  timing::wire_model wire;
  timing::buffer_library library = timing::standard_library();
  double driver_res_ohm = 150.0;
  layout::variation_budgets budgets = calibrated_budgets();
  /// The optimization figure of merit: the paper evaluates the 95% timing
  /// yield, so the statistical engines select candidates and the root
  /// solution by the 5th RAT percentile.
  double yield_percentile = 0.05;
};

inline layout::process_model_config make_model_config(
    const experiment_config& cfg, layout::variation_mode mode,
    layout::spatial_profile profile) {
  layout::process_model_config c;
  c.mode = mode;
  c.budgets = cfg.budgets;
  c.spatial.profile = profile;
  return c;
}

inline layout::process_model make_model(const tree::benchmark_spec& spec,
                                        const experiment_config& cfg,
                                        layout::variation_mode mode,
                                        layout::spatial_profile profile) {
  return layout::process_model{layout::square_die(spec.die_side_um),
                               make_model_config(cfg, mode, profile)};
}

/// The stat_options every statistical bench run uses (optionally seeded from
/// `overrides`, e.g. resource caps). Shared by the direct and the batched
/// paths so both solve the identical problem.
inline core::stat_options make_stat_options(
    const experiment_config& cfg, core::pruning_kind rule,
    const core::stat_options* overrides = nullptr) {
  core::stat_options o;
  if (overrides != nullptr) o = *overrides;
  o.wire = cfg.wire;
  o.library = cfg.library;
  o.driver_res_ohm = cfg.driver_res_ohm;
  o.rule = rule;
  o.root_percentile = cfg.yield_percentile;
  o.selection_percentile = cfg.yield_percentile;
  return o;
}

struct mode_run {
  timing::buffer_assignment assignment;
  core::dp_stats stats;
  std::size_t num_buffers = 0;
};

/// Optimizes `net` under one variation mode (NOM uses the deterministic
/// engine, as in the paper).
inline mode_run optimize(const tree::routing_tree& net,
                         const tree::benchmark_spec& spec,
                         const experiment_config& cfg,
                         layout::variation_mode mode,
                         layout::spatial_profile profile,
                         core::pruning_kind rule = core::pruning_kind::two_param,
                         const core::stat_options* overrides = nullptr) {
  mode_run out;
  if (mode == layout::nom_mode()) {
    core::det_options o{cfg.wire, cfg.library, cfg.driver_res_ohm};
    auto r = core::run_van_ginneken(net, o);
    out.assignment = std::move(r.assignment);
    out.stats = std::move(r.stats);
    out.num_buffers = r.num_buffers;
    return out;
  }
  auto model = make_model(spec, cfg, mode, profile);
  const core::stat_options o = make_stat_options(cfg, rule, overrides);
  auto r = core::run_statistical_insertion(net, model, o);
  out.assignment = std::move(r.assignment);
  out.stats = std::move(r.stats);
  out.num_buffers = r.num_buffers;
  return out;
}

/// Root RAT canonical form of a fixed design under the full evaluation model.
inline stats::linear_form evaluate_design(
    const tree::routing_tree& net, const experiment_config& cfg,
    const timing::buffer_assignment& assignment,
    layout::process_model& eval_model) {
  analysis::buffered_tree_model m{net,        cfg.wire,          cfg.library,
                                  assignment, eval_model, cfg.driver_res_ohm};
  return m.root_rat();
}

}  // namespace vabi::bench
