// Figure 2: P(T1 > T2) versus the mean difference, for correlation
// coefficients rho in {0, 0.5, 0.9} and sigma ratios 1:1 and 3:1 (eq. 8).
//
// The paper uses this plot to argue that modest mean separation already gives
// high ordering confidence, so the 2P rule loses little even for pbar > 0.5.
#include <cmath>
#include <iostream>

#include "analysis/reporting.hpp"
#include "stats/normal.hpp"

int main() {
  using namespace vabi;
  std::cout << "=== Figure 2: P(T1 > T2) vs mean difference (eq. 8) ===\n";
  const double rhos[] = {0.0, 0.5, 0.9};
  const double sigma2 = 1.0;

  for (const double ratio : {1.0, 3.0}) {
    const double sigma1 = ratio * sigma2;
    std::cout << "\n-- sigma_T1 = " << ratio << " * sigma_T2 --\n";
    analysis::text_table t{{"mu1-mu2", "rho=0", "rho=0.5", "rho=0.9"}};
    for (double d = 0.0; d <= 6.0 + 1e-9; d += 0.5) {
      std::vector<std::string> row{analysis::fmt(d, 1)};
      for (const double rho : rhos) {
        const double s = std::sqrt(sigma1 * sigma1 -
                                   2.0 * rho * sigma1 * sigma2 +
                                   sigma2 * sigma2);
        const double p =
            s == 0.0 ? (d > 0 ? 1.0 : 0.5) : stats::normal_cdf(d / s);
        row.push_back(analysis::fmt(p, 4));
      }
      t.add_row(row);
    }
    t.print(std::cout);
  }
  std::cout << "(paper: for pbar = 0.85 a mean separation of < 4 time units "
               "suffices; higher correlation sharpens the curve)\n";
  return 0;
}
