// Ablations of the design choices DESIGN.md calls out:
//
//   A. Wire sizing ([8] extension): RAT gain of simultaneous buffer
//      insertion + wire sizing over buffering alone, deterministic and
//      statistical.
//   B. Yield-driven vs mean-driven candidate selection: what the 5th-
//      percentile selection key buys in 95%-yield RAT and buffer count.
//   C. 2P sweep window: pruning thoroughness vs cost for pbar > 0.5.
#include <iostream>

#include "harness.hpp"

namespace {

using namespace vabi;

void ablation_wire_sizing(const bench::experiment_config& cfg) {
  std::cout << "\n=== Ablation A: simultaneous wire sizing ([8]) ===\n";
  analysis::text_table t{{"Bench", "buffered RAT", "sized RAT", "gain",
                          "widened edges", "sized time (s)"}};
  for (const auto& spec : bench::suite()) {
    const auto net = tree::build_benchmark(spec);
    core::det_options plain{cfg.wire, cfg.library, cfg.driver_res_ohm, {1.0}};
    core::det_options sized = plain;
    sized.wire_width_multipliers = {1.0, 2.0, 4.0};
    const auto r_plain = core::run_van_ginneken(net, plain);
    const auto r_sized = core::run_van_ginneken(net, sized);
    t.add_row({spec.name, analysis::fmt(r_plain.root_rat_ps, 1),
               analysis::fmt(r_sized.root_rat_ps, 1),
               analysis::fmt_percent((r_sized.root_rat_ps - r_plain.root_rat_ps) /
                                         std::abs(r_plain.root_rat_ps),
                                     2),
               std::to_string(r_sized.wires.count_nondefault()),
               analysis::fmt(r_sized.stats.wall_seconds, 2)});
  }
  t.print(std::cout);
}

void ablation_selection(const bench::experiment_config& cfg) {
  std::cout << "\n=== Ablation B: mean-driven vs yield-driven selection ===\n";
  analysis::text_table t{{"Bench", "mean-sel q05 RAT", "yield-sel q05 RAT",
                          "mean-sel buffers", "yield-sel buffers"}};
  const auto profile = layout::spatial_profile::heterogeneous;
  for (const auto& spec : bench::suite()) {
    const auto net = tree::build_benchmark(spec);
    double q05[2];
    std::size_t bufs[2];
    int i = 0;
    for (const double sel : {0.5, 0.05}) {
      auto model = bench::make_model(spec, cfg, layout::wid_mode(), profile);
      core::stat_options o;
      o.wire = cfg.wire;
      o.library = cfg.library;
      o.driver_res_ohm = cfg.driver_res_ohm;
      o.selection_percentile = sel;
      o.root_percentile = 0.05;
      const auto r = core::run_statistical_insertion(net, model, o);
      auto eval = bench::make_model(spec, cfg, layout::wid_mode(), profile);
      const auto rat = bench::evaluate_design(net, cfg, r.assignment, eval);
      q05[i] = analysis::yield_rat(rat, eval.space());
      bufs[i] = r.num_buffers;
      ++i;
    }
    t.add_row({spec.name, analysis::fmt(q05[0], 1), analysis::fmt(q05[1], 1),
               std::to_string(bufs[0]), std::to_string(bufs[1])});
  }
  t.print(std::cout);
}

void ablation_sweep_window(const bench::experiment_config& cfg) {
  std::cout << "\n=== Ablation C: 2P sweep window at pbar = 0.9 ===\n";
  analysis::text_table t{{"Window", "peak list", "pruned", "time (s)",
                          "root RAT mean"}};
  const auto spec = *tree::find_benchmark("r2");
  const auto net = tree::build_benchmark(spec);
  for (const std::size_t window : {1ul, 2ul, 4ul, 16ul, 64ul}) {
    auto model = bench::make_model(spec, cfg, layout::wid_mode(),
                                   layout::spatial_profile::heterogeneous);
    core::stat_options o;
    o.wire = cfg.wire;
    o.library = cfg.library;
    o.driver_res_ohm = cfg.driver_res_ohm;
    o.two_param.p_load = 0.9;
    o.two_param.p_rat = 0.9;
    o.two_param.sweep_window = window;
    const auto r = core::run_statistical_insertion(net, model, o);
    t.add_row({std::to_string(window), std::to_string(r.stats.peak_list_size),
               std::to_string(r.stats.candidates_pruned),
               analysis::fmt(r.stats.wall_seconds, 3),
               analysis::fmt(r.root_rat.mean(), 2)});
  }
  t.print(std::cout);
}

}  // namespace

int main() {
  bench::experiment_config cfg;
  ablation_wire_sizing(cfg);
  ablation_selection(cfg);
  ablation_sweep_window(cfg);
  return 0;
}
