// Table 1: characteristics of the benchmark suite.
//
// Prints the regenerated nets' sink and buffer-position counts (which match
// the paper's Table 1 exactly by construction) plus geometry statistics of
// our synthetic embeddings.
#include <iostream>

#include "harness.hpp"

int main() {
  using namespace vabi;
  std::cout << "=== Table 1: Characteristics of benchmarks ===\n";
  analysis::text_table t{{"Bench", "Sinks", "Buffer Positions", "Die (um)",
                          "Total wire (mm)", "Nodes"}};
  for (const auto& spec : tree::paper_benchmarks()) {
    const auto net = tree::build_benchmark(spec);
    t.add_row({spec.name, std::to_string(net.num_sinks()),
               std::to_string(net.num_buffer_positions()),
               analysis::fmt(spec.die_side_um, 0),
               analysis::fmt(net.total_wire_um() / 1000.0, 1),
               std::to_string(net.num_nodes())});
  }
  t.print(std::cout);
  std::cout << "(paper Table 1: p1 269/537, p2 603/1205, r1 267/533, "
               "r2 598/1195, r3 862/1723, r4 1903/3805, r5 3101/6201)\n";
  return 0;
}
