// Micro-benchmarks of the DP key operations (google-benchmark).
//
// Quantifies the constants behind the complexity claims:
//   - sparse canonical-form arithmetic (add / sigma-of-difference / min);
//   - linear merge + sweep prune (2P) vs cross-product merge + pairwise
//     prune (4P) on identical candidate lists -- Fig. 1 vs Section 2.2;
//   - the Fig. 1 deterministic linear merge.
#include <benchmark/benchmark.h>

#include <random>

#include "core/pruning.hpp"
#include "stats/linear_form.hpp"
#include "stats/rng.hpp"

namespace {

using namespace vabi;

struct form_fixture {
  stats::variation_space space;
  std::vector<stats::linear_form> forms;

  form_fixture(std::size_t num_sources, std::size_t num_forms,
               std::size_t terms_per_form, std::uint64_t seed = 7) {
    for (std::size_t i = 0; i < num_sources; ++i) {
      space.add_source(stats::source_kind::random_device, 1.0);
    }
    auto rng = stats::make_rng(seed);
    std::uniform_int_distribution<std::size_t> pick(0, num_sources - 1);
    std::uniform_real_distribution<double> coeff(-1.0, 1.0);
    std::uniform_real_distribution<double> mean(-100.0, 100.0);
    for (std::size_t f = 0; f < num_forms; ++f) {
      stats::linear_form lf{mean(rng)};
      for (std::size_t t = 0; t < terms_per_form; ++t) {
        lf.add_term(static_cast<stats::source_id>(pick(rng)), coeff(rng));
      }
      forms.push_back(std::move(lf));
    }
  }
};

void BM_LinearFormAdd(benchmark::State& state) {
  form_fixture fx(1024, 2, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto sum = fx.forms[0] + fx.forms[1];
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_LinearFormAdd)->Arg(8)->Arg(64)->Arg(512);

void BM_SigmaOfDifference(benchmark::State& state) {
  form_fixture fx(1024, 2, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stats::sigma_of_difference(fx.forms[0], fx.forms[1], fx.space));
  }
}
BENCHMARK(BM_SigmaOfDifference)->Arg(8)->Arg(64)->Arg(512);

void BM_StatisticalMin(benchmark::State& state) {
  form_fixture fx(1024, 2, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto m = stats::statistical_min(fx.forms[0], fx.forms[1], fx.space);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_StatisticalMin)->Arg(8)->Arg(64)->Arg(512);

std::vector<core::stat_candidate> make_candidates(std::size_t n,
                                                  std::uint64_t seed) {
  auto rng = stats::make_rng(seed);
  std::uniform_real_distribution<double> load(0.01, 0.5);
  std::uniform_real_distribution<double> rat(-2000.0, -1000.0);
  std::vector<core::stat_candidate> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    core::stat_candidate c;
    c.load = stats::linear_form{load(rng)};
    c.rat = stats::linear_form{rat(rng)};
    // a few variation terms so sigma computations are exercised
    for (stats::source_id id = 0; id < 8; ++id) {
      c.load.add_term(id, 0.001 * static_cast<double>(i % 7));
      c.rat.add_term(id, 0.1 * static_cast<double>((i + 3) % 5));
    }
    out.push_back(std::move(c));
  }
  return out;
}

void BM_PruneTwoParam(benchmark::State& state) {
  form_fixture fx(64, 0, 0);
  const auto base =
      make_candidates(static_cast<std::size_t>(state.range(0)), 3);
  core::dp_stats s;
  for (auto _ : state) {
    auto list = base;
    core::prune_two_param(core::two_param_rule{}, list, fx.space, s);
    benchmark::DoNotOptimize(list);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PruneTwoParam)->Range(64, 4096)->Complexity();

void BM_PruneFourParam(benchmark::State& state) {
  form_fixture fx(64, 0, 0);
  const auto base =
      make_candidates(static_cast<std::size_t>(state.range(0)), 3);
  core::dp_stats s;
  for (auto _ : state) {
    auto list = base;
    core::prune_four_param(core::four_param_rule{}, list, fx.space, s);
    benchmark::DoNotOptimize(list);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PruneFourParam)->Range(64, 1024)->Complexity();

void BM_DetPrune(benchmark::State& state) {
  std::vector<core::det_candidate> base;
  auto rng = stats::make_rng(11);
  std::uniform_real_distribution<double> load(0.01, 0.5);
  std::uniform_real_distribution<double> rat(-2000.0, -1000.0);
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    base.push_back({load(rng), rat(rng), nullptr});
  }
  core::dp_stats s;
  for (auto _ : state) {
    auto list = base;
    core::prune_deterministic(list, s);
    benchmark::DoNotOptimize(list);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DetPrune)->Range(64, 4096)->Complexity();

}  // namespace

BENCHMARK_MAIN();
