// Micro-benchmarks of the DP key operations (google-benchmark).
//
// Quantifies the constants behind the complexity claims:
//   - sparse canonical-form arithmetic (add / sigma-of-difference / min),
//     value-semantics vs pooled (arena-backed) variants, with allocations/op
//     reported as a counter;
//   - linear merge + sweep prune (2P) vs cross-product merge + pairwise
//     prune (4P) on identical candidate lists -- Fig. 1 vs Section 2.2;
//   - the Fig. 1 deterministic linear merge.
//
// Machine-readable output: run with
//   --benchmark_format=json --benchmark_out=BENCH_micro_ops.json
// The JSON carries ns/op, the allocs_per_op counter, the git sha and the
// runtime-selected SIMD ISA (custom context), and -- on the Kernel*
// dense-path benchmarks -- the dense-switch counters as per-op rates.
//
// Convenience flag: --min-time=<seconds> is translated to google-benchmark's
// --benchmark_min_time so CI and humans share one spelling.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <new>
#include <random>
#include <string>
#include <vector>

#include "core/pruning.hpp"
#include "json_out.hpp"
#include "stats/kernels.hpp"
#include "stats/linear_form.hpp"
#include "stats/term_pool.hpp"
#include "stats/rng.hpp"

// Global allocation counter: every operator new in the process bumps it, so
// the allocs_per_op counters below cover the term vectors, list buffers, and
// everything else the measured op touches. (Aligned variants are not
// overridden; lf_term storage is 8-byte aligned and never routes there.)
namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

// The replacement is program-wide (all four news below), so free() always
// receives malloc'd pointers; GCC's mismatched-new-delete heuristic cannot
// see that across TUs.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace {

using namespace vabi;

/// Measures heap allocations across the timed loop and reports them per op.
class alloc_meter {
 public:
  alloc_meter() : start_(g_heap_allocs.load(std::memory_order_relaxed)) {}
  void report(benchmark::State& state) const {
    const auto end = g_heap_allocs.load(std::memory_order_relaxed);
    state.counters["allocs_per_op"] = benchmark::Counter(
        static_cast<double>(end - start_) /
        static_cast<double>(state.iterations()));
  }

 private:
  std::uint64_t start_;
};

struct form_fixture {
  stats::variation_space space;
  std::vector<stats::linear_form> forms;

  form_fixture(std::size_t num_sources, std::size_t num_forms,
               std::size_t terms_per_form, std::uint64_t seed = 7) {
    for (std::size_t i = 0; i < num_sources; ++i) {
      space.add_source(stats::source_kind::random_device, 1.0);
    }
    auto rng = stats::make_rng(seed);
    std::uniform_int_distribution<std::size_t> pick(0, num_sources - 1);
    std::uniform_real_distribution<double> coeff(-1.0, 1.0);
    std::uniform_real_distribution<double> mean(-100.0, 100.0);
    for (std::size_t f = 0; f < num_forms; ++f) {
      stats::linear_form lf{mean(rng)};
      for (std::size_t t = 0; t < terms_per_form; ++t) {
        lf.add_term(static_cast<stats::source_id>(pick(rng)), coeff(rng));
      }
      forms.push_back(std::move(lf));
    }
  }
};

void BM_LinearFormAdd(benchmark::State& state) {
  form_fixture fx(1024, 2, static_cast<std::size_t>(state.range(0)));
  alloc_meter allocs;
  for (auto _ : state) {
    auto sum = fx.forms[0] + fx.forms[1];
    benchmark::DoNotOptimize(sum);
  }
  allocs.report(state);
}
BENCHMARK(BM_LinearFormAdd)->Arg(8)->Arg(64)->Arg(512);

void BM_PooledAdd(benchmark::State& state) {
  form_fixture fx(1024, 2, static_cast<std::size_t>(state.range(0)));
  stats::term_pool pool;
  alloc_meter allocs;
  for (auto _ : state) {
    pool.reset();  // epoch boundary, exactly as the DP's per-node rewind
    auto sum = stats::pooled_add(fx.forms[0], fx.forms[1], pool);
    benchmark::DoNotOptimize(sum);
  }
  allocs.report(state);
}
BENCHMARK(BM_PooledAdd)->Arg(8)->Arg(64)->Arg(512);

void BM_SigmaOfDifference(benchmark::State& state) {
  form_fixture fx(1024, 2, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stats::sigma_of_difference(fx.forms[0], fx.forms[1], fx.space));
  }
}
BENCHMARK(BM_SigmaOfDifference)->Arg(8)->Arg(64)->Arg(512);

void BM_StatisticalMin(benchmark::State& state) {
  form_fixture fx(1024, 2, static_cast<std::size_t>(state.range(0)));
  alloc_meter allocs;
  for (auto _ : state) {
    auto m = stats::statistical_min(fx.forms[0], fx.forms[1], fx.space);
    benchmark::DoNotOptimize(m);
  }
  allocs.report(state);
}
BENCHMARK(BM_StatisticalMin)->Arg(8)->Arg(64)->Arg(512);

void BM_PooledStatisticalMin(benchmark::State& state) {
  form_fixture fx(1024, 2, static_cast<std::size_t>(state.range(0)));
  stats::term_pool pool;
  alloc_meter allocs;
  for (auto _ : state) {
    pool.reset();
    auto m =
        stats::statistical_min(fx.forms[0], fx.forms[1], fx.space, pool);
    benchmark::DoNotOptimize(m);
  }
  allocs.report(state);
}
BENCHMARK(BM_PooledStatisticalMin)->Arg(8)->Arg(64)->Arg(512);

void BM_PooledSubScaled(benchmark::State& state) {
  // The add-wire / add-buffer update (eqs. 33-36): a - s*b in one merge.
  form_fixture fx(1024, 2, static_cast<std::size_t>(state.range(0)));
  stats::term_pool pool;
  alloc_meter allocs;
  for (auto _ : state) {
    pool.reset();
    auto r = stats::pooled_sub_scaled(fx.forms[0], 3.25, fx.forms[1], pool);
    benchmark::DoNotOptimize(r);
  }
  allocs.report(state);
}
BENCHMARK(BM_PooledSubScaled)->Arg(8)->Arg(64)->Arg(512);

// ---------------------------------------------------------------------------
// Dense-vs-sparse kernel comparisons (the PR's adaptive representation).
//
// Each BM_Kernel* benchmark runs twice per space size: once with the dense
// representation forced off (the seed's sparse scalar path over sorted
// (id, coeff) terms) and once forced on (contiguous coefficient planes fed to
// the runtime-dispatched SIMD kernels). Forms are fully populated -- every
// source carries a term -- which is exactly the saturated regime the adaptive
// switch targets. Results are bit-identical by construction (the golden
// tests prove it); only the time differs.
// ---------------------------------------------------------------------------

/// RAII toggle of the adaptive dense switch (+1 always / -1 never).
struct dense_mode_guard {
  explicit dense_mode_guard(bool dense) {
    stats::set_force_dense(dense ? 1 : -1);
  }
  ~dense_mode_guard() { stats::set_force_dense(0); }
};

struct kernel_fixture {
  stats::variation_space space;
  stats::term_pool setup_pool;  ///< holds the pre-densified operand forms
  stats::linear_form a, b;      ///< fully populated operands (sparse or dense)

  kernel_fixture(std::size_t num_sources, bool dense, std::uint64_t seed = 23) {
    for (std::size_t i = 0; i < num_sources; ++i) {
      space.add_source(stats::source_kind::random_device, 0.8 + 0.001 * i);
    }
    auto rng = stats::make_rng(seed);
    std::uniform_real_distribution<double> coeff(-1.0, 1.0);
    stats::linear_form sa{12.5};
    stats::linear_form sb{-7.25};
    for (std::size_t i = 0; i < num_sources; ++i) {
      sa.add_term(static_cast<stats::source_id>(i), coeff(rng));
      sb.add_term(static_cast<stats::source_id>(i), coeff(rng));
    }
    if (!dense) {
      a = std::move(sa);
      b = std::move(sb);
      return;
    }
    // Materialize dense-resident operands: a pooled merge with the switch
    // forced on yields plane-backed forms borrowing setup_pool.
    dense_mode_guard guard{true};
    const stats::linear_form zero{0.0};
    a = stats::pooled_add(sa, zero, setup_pool);
    b = stats::pooled_add(sb, zero, setup_pool);
  }
};

/// Reports the dense-switch counters accumulated across the timed loop.
class dense_meter {
 public:
  dense_meter()
      : forms0_(stats::dense_forms_produced()),
        terms0_(stats::pooled_terms_merged()) {}
  void report(benchmark::State& state) const {
    const double iters = static_cast<double>(state.iterations());
    state.counters["dense_forms_per_op"] = benchmark::Counter(
        static_cast<double>(stats::dense_forms_produced() - forms0_) / iters);
    state.counters["terms_merged_per_op"] = benchmark::Counter(
        static_cast<double>(stats::pooled_terms_merged() - terms0_) / iters);
  }

 private:
  std::size_t forms0_;
  std::size_t terms0_;
};

void BM_KernelMerge(benchmark::State& state) {
  const bool dense = state.range(1) != 0;
  kernel_fixture fx(static_cast<std::size_t>(state.range(0)), dense);
  dense_mode_guard guard{dense};
  stats::term_pool pool;
  dense_meter meter;
  for (auto _ : state) {
    pool.reset();
    auto r = stats::pooled_add(fx.a, fx.b, pool);
    benchmark::DoNotOptimize(r);
  }
  meter.report(state);
}

void BM_KernelBlend(benchmark::State& state) {
  const bool dense = state.range(1) != 0;
  kernel_fixture fx(static_cast<std::size_t>(state.range(0)), dense);
  dense_mode_guard guard{dense};
  stats::term_pool pool;
  dense_meter meter;
  for (auto _ : state) {
    pool.reset();
    auto r = stats::pooled_blend(0.375, fx.a, 0.625, fx.b, pool);
    benchmark::DoNotOptimize(r);
  }
  meter.report(state);
}

void BM_KernelStatisticalMin(benchmark::State& state) {
  const bool dense = state.range(1) != 0;
  kernel_fixture fx(static_cast<std::size_t>(state.range(0)), dense);
  dense_mode_guard guard{dense};
  stats::term_pool pool;
  dense_meter meter;
  for (auto _ : state) {
    pool.reset();
    auto r = stats::statistical_min(fx.a, fx.b, fx.space, pool);
    benchmark::DoNotOptimize(r);
  }
  meter.report(state);
}

void BM_KernelVariance(benchmark::State& state) {
  const bool dense = state.range(1) != 0;
  kernel_fixture fx(static_cast<std::size_t>(state.range(0)), dense);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.a.variance(fx.space));
  }
}

void BM_KernelCovariance(benchmark::State& state) {
  const bool dense = state.range(1) != 0;
  kernel_fixture fx(static_cast<std::size_t>(state.range(0)), dense);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::covariance(fx.a, fx.b, fx.space));
  }
}

void BM_KernelSigmaOfDifference(benchmark::State& state) {
  const bool dense = state.range(1) != 0;
  kernel_fixture fx(static_cast<std::size_t>(state.range(0)), dense);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stats::sigma_of_difference(fx.a, fx.b, fx.space));
  }
}

void kernel_args(benchmark::internal::Benchmark* b) {
  b->ArgNames({"sources", "dense"});
  for (const std::int64_t sources : {8, 64, 256}) {
    b->Args({sources, 0});
    b->Args({sources, 1});
  }
}
BENCHMARK(BM_KernelMerge)->Apply(kernel_args);
BENCHMARK(BM_KernelBlend)->Apply(kernel_args);
BENCHMARK(BM_KernelStatisticalMin)->Apply(kernel_args);
BENCHMARK(BM_KernelVariance)->Apply(kernel_args);
BENCHMARK(BM_KernelCovariance)->Apply(kernel_args);
BENCHMARK(BM_KernelSigmaOfDifference)->Apply(kernel_args);

std::vector<core::stat_candidate> make_candidates(std::size_t n,
                                                  std::uint64_t seed) {
  auto rng = stats::make_rng(seed);
  std::uniform_real_distribution<double> load(0.01, 0.5);
  std::uniform_real_distribution<double> rat(-2000.0, -1000.0);
  std::vector<core::stat_candidate> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    core::stat_candidate c;
    c.load = stats::linear_form{load(rng)};
    c.rat = stats::linear_form{rat(rng)};
    // a few variation terms so sigma computations are exercised
    for (stats::source_id id = 0; id < 8; ++id) {
      c.load.add_term(id, 0.001 * static_cast<double>(i % 7));
      c.rat.add_term(id, 0.1 * static_cast<double>((i + 3) % 5));
    }
    out.push_back(std::move(c));
  }
  return out;
}

void BM_PruneTwoParam(benchmark::State& state) {
  form_fixture fx(64, 0, 0);
  const auto base =
      make_candidates(static_cast<std::size_t>(state.range(0)), 3);
  core::dp_stats s;
  for (auto _ : state) {
    auto list = base;
    core::prune_two_param(core::two_param_rule{}, list, fx.space, s);
    benchmark::DoNotOptimize(list);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PruneTwoParam)->Range(64, 4096)->Complexity();

void BM_PruneFourParam(benchmark::State& state) {
  form_fixture fx(64, 0, 0);
  const auto base =
      make_candidates(static_cast<std::size_t>(state.range(0)), 3);
  core::dp_stats s;
  for (auto _ : state) {
    auto list = base;
    core::prune_four_param(core::four_param_rule{}, list, fx.space, s);
    benchmark::DoNotOptimize(list);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PruneFourParam)->Range(64, 1024)->Complexity();

// ---------------------------------------------------------------------------
// Dominance-sweep comparison: pairwise vs tiled engine.
//
// The BM_DominanceSweep* benchmarks prune identical candidate lists twice per
// (k, sources) point: once forced onto the seed's per-pair sweep and once
// onto the tiled engine (SoA candidate planes + batched one-vs-many moment
// kernels; core/pruning.cpp). Candidates carry genuine per-source variation
// terms and overlapping means, so the sweeps run the full mixture of
// prefilter hits and exact sigma-of-difference fallbacks. Survivors are
// bit-identical by contract (tests/core/tiled_prune_test.cpp proves it);
// only the time and the organization counters differ.
// ---------------------------------------------------------------------------

/// RAII toggle of the prune-implementation switch (+1 tiled / -1 pairwise);
/// restores the VABI_FORCE_PRUNE environment default on exit.
struct prune_mode_guard {
  explicit prune_mode_guard(bool tiled) {
    core::set_force_prune(tiled ? 1 : -1);
  }
  ~prune_mode_guard() { core::reset_force_prune_from_env(); }
};

/// Candidates with overlapping means and per-source variation terms over a
/// `sources`-wide space: the regime where p > 0.5 dominance is decided by
/// second moments, not means alone.
std::vector<core::stat_candidate> make_stat_candidates(std::size_t n,
                                                       std::size_t sources,
                                                       std::uint64_t seed) {
  auto rng = stats::make_rng(seed);
  std::uniform_real_distribution<double> load(0.10, 0.35);
  std::uniform_real_distribution<double> rat(-1300.0, -1000.0);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_real_distribution<double> lcoeff(-0.02, 0.02);
  std::uniform_real_distribution<double> rcoeff(-15.0, 15.0);
  std::vector<core::stat_candidate> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    core::stat_candidate c;
    c.load = stats::linear_form{load(rng)};
    c.rat = stats::linear_form{rat(rng)};
    for (std::size_t id = 0; id < sources; ++id) {
      if (unit(rng) < 0.7) {
        c.load.add_term(static_cast<stats::source_id>(id), lcoeff(rng));
      }
      if (unit(rng) < 0.7) {
        c.rat.add_term(static_cast<stats::source_id>(id), rcoeff(rng));
      }
    }
    out.push_back(std::move(c));
  }
  return out;
}

/// Reports the tiled-engine organization counters accumulated across the
/// timed loop (zero on the pairwise runs).
void report_tiled_counters(benchmark::State& state, const core::dp_stats& s) {
  const double iters = static_cast<double>(state.iterations());
  state.counters["tile_prefilter_hits_per_op"] = benchmark::Counter(
      static_cast<double>(s.tile_prefilter_hits) / iters);
  state.counters["pairs_batched_per_op"] =
      benchmark::Counter(static_cast<double>(s.pairs_batched) / iters);
}

void BM_DominanceSweep2P(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto sources = static_cast<std::size_t>(state.range(1));
  const bool tiled = state.range(2) != 0;
  form_fixture fx(sources, 0, 0);
  const auto base = make_stat_candidates(k, sources, 3);
  core::two_param_rule rule;
  rule.p_load = 0.9;
  rule.p_rat = 0.9;
  prune_mode_guard guard{tiled};
  core::prune_scratch scratch;  // per-worker reuse, as in the engine
  core::dp_stats s;
  // Manual timing: the per-iteration deep copy of the candidate list is
  // setup, not sweep -- timing it would put the same O(k * sources) floor
  // under both modes and mask the sweep difference being measured.
  for (auto _ : state) {
    auto list = base;
    const auto t0 = std::chrono::steady_clock::now();
    core::prune_two_param(rule, list, fx.space, s, &scratch);
    const auto t1 = std::chrono::steady_clock::now();
    state.SetIterationTime(std::chrono::duration<double>(t1 - t0).count());
    benchmark::DoNotOptimize(list);
  }
  report_tiled_counters(state, s);
}

void BM_DominanceSweep4P(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto sources = static_cast<std::size_t>(state.range(1));
  const bool tiled = state.range(2) != 0;
  form_fixture fx(sources, 0, 0);
  // Dense-resident candidates: the regime the automatic 4P moment-fill
  // policy targets (for sparse forms the lazy O(nnz) walk wins and the
  // automatic policy keeps it; see prune_four_param).
  stats::term_pool dense_pool;
  std::vector<core::stat_candidate> base;
  {
    dense_mode_guard dense{true};
    const stats::linear_form zero{0.0};
    for (auto& c : make_stat_candidates(k, sources, 5)) {
      core::stat_candidate d;
      d.load = stats::pooled_add(c.load, zero, dense_pool);
      d.rat = stats::pooled_add(c.rat, zero, dense_pool);
      base.push_back(std::move(d));
    }
  }
  prune_mode_guard guard{tiled};
  core::prune_scratch scratch;
  core::dp_stats s;
  for (auto _ : state) {
    auto list = base;
    const auto t0 = std::chrono::steady_clock::now();
    core::prune_four_param(core::four_param_rule{}, list, fx.space, s, 0,
                           &scratch);
    const auto t1 = std::chrono::steady_clock::now();
    state.SetIterationTime(std::chrono::duration<double>(t1 - t0).count());
    benchmark::DoNotOptimize(list);
  }
  report_tiled_counters(state, s);
}

void dominance_args(benchmark::internal::Benchmark* b) {
  b->ArgNames({"k", "sources", "tiled"});
  for (const std::int64_t k : {32, 128, 512}) {
    for (const std::int64_t sources : {8, 64, 256}) {
      b->Args({k, sources, 0});
      b->Args({k, sources, 1});
    }
  }
}
BENCHMARK(BM_DominanceSweep2P)->Apply(dominance_args)->UseManualTime();
BENCHMARK(BM_DominanceSweep4P)->Apply(dominance_args)->UseManualTime();

void BM_DetPrune(benchmark::State& state) {
  std::vector<core::det_candidate> base;
  auto rng = stats::make_rng(11);
  std::uniform_real_distribution<double> load(0.01, 0.5);
  std::uniform_real_distribution<double> rat(-2000.0, -1000.0);
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    base.push_back({load(rng), rat(rng), nullptr});
  }
  core::dp_stats s;
  for (auto _ : state) {
    auto list = base;
    core::prune_deterministic(list, s);
    benchmark::DoNotOptimize(list);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DetPrune)->Range(64, 4096)->Complexity();

}  // namespace

int main(int argc, char** argv) {
  // Translate the harness's --min-time[=N] into google-benchmark's
  // --benchmark_min_time so callers don't need to know the library spelling.
  std::vector<std::string> arg_storage;
  std::vector<char*> args;
  arg_storage.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--min-time=", 0) == 0) {
      a = "--benchmark_min_time=" + a.substr(std::strlen("--min-time="));
    }
    arg_storage.push_back(std::move(a));
  }
  for (auto& a : arg_storage) args.push_back(a.data());
  int args_count = static_cast<int>(args.size());

  benchmark::AddCustomContext("git_sha", vabi::bench::git_sha());
  // The runtime-dispatched SIMD ISA the kernels resolved to (honors
  // VABI_FORCE_KERNEL); lands in the JSON context block.
  benchmark::AddCustomContext(
      "kernel_isa",
      vabi::stats::kernels::to_string(vabi::stats::kernels::active_isa()));
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
