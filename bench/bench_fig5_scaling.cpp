// Figure 5: runtime of the 2P-pruned variation-aware engine vs sink count.
//
// The paper's point: with the 2P rule both merging and pruning are linear, so
// the end-to-end runtime scales roughly linearly in the number of sinks. We
// sweep generated nets and report seconds per net plus the least-squares
// exponent of runtime ~ sinks^k (k near 1, far below the 4P blow-up).
//
// A second section measures multi-net batch throughput on the parallel batch
// solver: run it once with `--threads 1` and once with `--threads 8` to see
// the wall-clock scaling on a realistic many-nets workload (the jobs are
// generated from fixed per-job seeds, so every thread count solves the
// identical batch).
// A third section exercises ECO mode: a VPR-style net (10k+ nodes; 100k+
// sinks under VABI_FULL=1) is solved once through a solve_session, one sink
// is moved, and the incremental re-solve is timed against a cache-bypassing
// cold solve of the identical edited tree. The JSON records carry the cache
// hit/miss/reuse counters and both root-RAT form hashes, so CI can assert
// the bit-identity *and* the speedup, not just eyeball the table.
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "core/journal.hpp"
#include "core/parallel.hpp"
#include "core/slab_cache.hpp"
#include "harness.hpp"
#include "json_out.hpp"
#include "shard/shard_coordinator.hpp"
#include "tree/vpr_import.hpp"

namespace {

/// Order-sensitive hash over the first `count` outcomes: nominal-RAT bits +
/// buffer count for ok slots, the code for failed ones. Same recipe as
/// vabi_shard --verify, so the bench asserts the same merge identity.
std::uint64_t hash_slots(
    const std::vector<vabi::core::solve_outcome<vabi::core::batch_result>>&
        slots,
    std::size_t count) {
  std::uint64_t h = vabi::core::fnv1a_seed;
  for (std::size_t i = 0; i < count && i < slots.size(); ++i) {
    const auto& slot = slots[i];
    h = vabi::core::fnv1a_u64(slot.ok() ? 1 : 0, h);
    if (slot.ok()) {
      h = vabi::core::fnv1a_u64(
          std::bit_cast<std::uint64_t>(slot->result.root_rat.nominal()), h);
      h = vabi::core::fnv1a_u64(slot->result.num_buffers, h);
    } else {
      h = vabi::core::fnv1a_u64(static_cast<std::uint64_t>(slot.error().code),
                                h);
    }
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vabi;
  bench::experiment_config cfg;
  const std::size_t threads = bench::parse_threads(argc, argv);

  std::vector<std::size_t> sizes{100, 200, 400, 800, 1600, 3200};
  if (bench::full_mode()) {
    sizes.push_back(6400);
    sizes.push_back(12800);
    sizes.push_back(25600);
  }

  std::cout << "=== Figure 5: 2P runtime vs number of sinks (WID model) ===\n";
  analysis::text_table t{{"Sinks", "Positions", "Runtime (s)", "Candidates",
                          "Peak list", "Allocs", "Peak terms"}};
  std::vector<std::pair<double, double>> loglog;
  for (const std::size_t sinks : sizes) {
    tree::benchmark_spec spec;
    spec.name = "gen" + std::to_string(sinks);
    spec.sinks = sinks;
    spec.die_side_um = 4000.0 * std::sqrt(static_cast<double>(sinks) / 250.0);
    spec.seed = 900 + sinks;
    const auto net = tree::build_benchmark(spec);
    const auto r = bench::optimize(net, spec, cfg, layout::wid_mode(),
                                   layout::spatial_profile::heterogeneous);
    // `Allocs` is the whole-net term-storage heap-allocation count. The
    // scratch pools warm up and stop allocating, so what remains (sealed
    // node blocks + escaping survivor forms) grows roughly with the node
    // count -- a small constant per candidate, where the value-semantics
    // engine paid several per *operation*.
    t.add_row({std::to_string(sinks), std::to_string(net.num_buffer_positions()),
               analysis::fmt(r.stats.wall_seconds, 3),
               std::to_string(r.stats.candidates_created),
               std::to_string(r.stats.peak_list_size),
               std::to_string(r.stats.allocations),
               std::to_string(r.stats.peak_terms)});
    loglog.emplace_back(std::log(static_cast<double>(sinks)),
                        std::log(std::max(r.stats.wall_seconds, 1e-6)));
  }
  t.print(std::cout);

  // Least-squares slope of log(time) vs log(sinks).
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (const auto& [x, y] : loglog) {
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double n = static_cast<double>(loglog.size());
  const double slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
  std::cout << "runtime ~ sinks^" << analysis::fmt(slope, 2)
            << "  (paper: roughly linear scaling, Fig. 5)\n";

  // -- Batch throughput on the parallel solver ------------------------------
  const std::size_t num_jobs = bench::full_mode() ? 128 : 48;
  const std::size_t job_sinks = bench::full_mode() ? 800 : 400;
  std::vector<core::batch_job> jobs(num_jobs);
  for (auto& j : jobs) {
    tree::random_tree_options g;
    g.num_sinks = job_sinks;
    g.criticality_balance = 0.5;
    j.generate = g;  // seed comes from the solver's batch_seed stream
    j.options = bench::make_stat_options(cfg, core::pruning_kind::two_param);
    j.model = bench::make_model_config(cfg, layout::wid_mode(),
                                       layout::spatial_profile::heterogeneous);
  }

  // -- Sharded multi-process batch: supervision cost + merge identity -------
  // The coordinator forks its worker processes, so this runs while the
  // process is still single-threaded -- before the batch_solver below brings
  // up its pool. A prefix of the same batch (same batch_seed, hence identical
  // per-job seeds) is solved across worker processes, each journaling its own
  // shard; the merged slots must hash-equal the same prefix of the in-process
  // solve below.
  const std::size_t shard_nets =
      std::min<std::size_t>(num_jobs, bench::full_mode() ? 32 : 16);
  const std::size_t shard_workers =
      std::max<std::size_t>(2, std::min<std::size_t>(threads, 8));
  std::vector<core::batch_job> shard_jobs(jobs.begin(),
                                          jobs.begin() + shard_nets);
  shard::coordinator_report shard_report;
  bool shard_ok = false;
  double shard_seconds = 0.0;
  std::string shard_error;
  {
    char shard_dir[] = "/tmp/bench_fig5_shards_XXXXXX";
    if (::mkdtemp(shard_dir) != nullptr) {
      shard::coordinator_options sopts;
      sopts.num_workers = shard_workers;
      sopts.journal_dir = shard_dir;
      sopts.batch_seed = 7;  // the batch_solver's seed below
      shard::shard_coordinator coord(sopts);
      const auto ts0 = std::chrono::steady_clock::now();
      auto sharded = coord.run(shard_jobs);
      shard_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - ts0)
              .count();
      if (sharded.ok()) {
        shard_ok = true;
        shard_report = std::move(*sharded);
      } else {
        shard_error = sharded.error().message();
      }
      std::filesystem::remove_all(shard_dir);
    } else {
      shard_error = "mkdtemp failed";
    }
  }

  core::batch_solver::config solver_cfg;
  solver_cfg.num_threads = threads;
  solver_cfg.batch_seed = 7;
  core::batch_solver solver{solver_cfg};

  const auto t0 = std::chrono::steady_clock::now();
  const auto outcomes = solver.solve_outcomes(jobs);
  const double batch_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // Per-net status artifact: one record per job, uploaded by the CI bench
  // smoke so a regression that starts tripping caps on some nets is visible
  // as typed per-net codes, not a lost batch.
  bench::json_records status;
  std::size_t total_buffers = 0;
  std::size_t failed = 0;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const auto& slot = outcomes[i];
    status.begin()
        .num("job", static_cast<std::uint64_t>(i))
        .str("status", core::to_string(slot.ok() ? core::solve_code::ok
                                                 : slot.error().code));
    if (slot.ok()) {
      total_buffers += slot->result.num_buffers;
      status.str("path", core::to_string(slot->result.path))
          .num("num_buffers",
               static_cast<std::uint64_t>(slot->result.num_buffers))
          .num("seconds", slot->result.stats.wall_seconds)
          .num("dense_forms",
               static_cast<std::uint64_t>(slot->result.stats.dense_forms))
          .num("terms_merged",
               static_cast<std::uint64_t>(slot->result.stats.terms_merged))
          .num("dominance_prefilter_hits",
               static_cast<std::uint64_t>(
                   slot->result.stats.dominance_prefilter_hits))
          .num("tiled_prunes",
               static_cast<std::uint64_t>(slot->result.stats.tiled_prunes))
          .num("tile_prefilter_hits",
               static_cast<std::uint64_t>(
                   slot->result.stats.tile_prefilter_hits))
          .num("pairs_batched",
               static_cast<std::uint64_t>(slot->result.stats.pairs_batched));
    } else {
      ++failed;
      status.str("detail", slot.error().detail);
    }
  }
  std::cout << "\n=== Batch throughput: " << num_jobs << " nets x "
            << job_sinks << " sinks, 2P (WID model) ===\n"
            << "threads " << threads << ": " << analysis::fmt(batch_seconds, 2)
            << " s total, "
            << analysis::fmt(static_cast<double>(num_jobs) / batch_seconds, 1)
            << " nets/s (" << total_buffers << " buffers inserted, " << failed
            << " failed)\n"
            << "(rerun with --threads N to compare wall-clock scaling)\n";
  const std::string json_path = bench::parse_json_path(argc, argv);

  // Sharded vs in-process: the shards merged above must be bit-identical to
  // the same prefix of the in-process batch (identical seed stream).
  std::cout << "\n=== Sharded batch: " << shard_nets << " nets across "
            << shard_workers << " worker processes ===\n";
  if (shard_ok) {
    const std::uint64_t merged_hash =
        hash_slots(shard_report.merged.slots, shard_nets);
    const std::uint64_t in_process_hash = hash_slots(outcomes, shard_nets);
    const bool bit_identical = merged_hash == in_process_hash;
    std::cout << "sharded: " << analysis::fmt(shard_seconds, 2) << " s, "
              << analysis::fmt(
                     static_cast<double>(shard_nets) /
                         std::max(shard_seconds, 1e-9),
                     1)
              << " nets/s, merged from " << shard_report.merged.shards_read
              << " shards"
              << (bit_identical ? " (bit-identical to in-process)"
                                : " (HASH MISMATCH vs in-process)")
              << "\n";
    status.begin()
        .str("section", "shard")
        .num("nets", static_cast<std::uint64_t>(shard_nets))
        .num("workers", static_cast<std::uint64_t>(shard_workers))
        .num("seconds", shard_seconds)
        .num("shards_read",
             static_cast<std::uint64_t>(shard_report.merged.shards_read))
        .num("restarts_total",
             static_cast<std::uint64_t>(shard_report.restarts_total))
        .num("workers_retired",
             static_cast<std::uint64_t>(shard_report.workers_retired))
        .boolean("bit_identical", bit_identical);
    for (std::size_t w = 0; w < shard_report.workers.size(); ++w) {
      const shard::worker_stats& ws = shard_report.workers[w];
      const double rate =
          shard_seconds > 0.0
              ? static_cast<double>(ws.jobs_completed) / shard_seconds
              : 0.0;
      std::cout << "  worker " << w << ": jobs=" << ws.jobs_completed << " ("
                << analysis::fmt(rate, 1) << "/s) restarts=" << ws.restarts
                << " shards=" << ws.shards_opened << "\n";
      status.begin()
          .str("section", "shard_worker")
          .num("worker", static_cast<std::uint64_t>(w))
          .num("jobs_completed", ws.jobs_completed)
          .num("jobs_per_second", rate)
          .num("restarts", ws.restarts)
          .num("shards_opened", ws.shards_opened);
    }
  } else {
    std::cout << "sharded section failed: " << shard_error << "\n";
    status.begin().str("section", "shard").str("status", shard_error);
  }

  // -- Journaled mode: durability overhead and recovery cost ----------------
  // Same batch, now journaled with per-8-jobs checkpoints (solve + fsync +
  // atomic rename), then resumed from the complete journal. The delta over
  // the plain run is what crash recoverability costs; the resume time is
  // what a post-crash restart pays to get every result back without
  // re-solving anything.
  const std::string journal_path =
      (json_path.empty() ? std::string{"bench_fig5"} : json_path) + ".vjl";
  std::remove(journal_path.c_str());
  core::batch_journal_options jopts;
  jopts.path = journal_path;
  jopts.checkpoint_every_jobs = 8;
  const auto tj0 = std::chrono::steady_clock::now();
  auto journaled = solver.solve_journaled(jobs, jopts);
  const double journaled_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - tj0)
          .count();
  double restore_seconds = 0.0;
  std::uint64_t journal_bytes = 0;
  std::uint64_t checkpoints = 0;
  std::size_t restored = 0;
  if (journaled.ok()) {
    journal_bytes = journaled->journal_bytes;
    checkpoints = journaled->checkpoints;
    jopts.resume = true;
    const auto tr0 = std::chrono::steady_clock::now();
    auto resumed = solver.solve_journaled(jobs, jopts);
    restore_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - tr0)
            .count();
    if (resumed.ok()) restored = resumed->restored;
  }
  std::remove(journal_path.c_str());
  const double overhead_pct =
      batch_seconds > 0.0
          ? 100.0 * (journaled_seconds - batch_seconds) / batch_seconds
          : 0.0;
  std::cout << "\n=== Journaled batch: durability overhead ===\n"
            << "journaled: " << analysis::fmt(journaled_seconds, 2) << " s ("
            << analysis::fmt(overhead_pct, 1) << "% over plain, "
            << journal_bytes << " bytes, " << checkpoints << " checkpoints)\n"
            << "resume from complete journal: "
            << analysis::fmt(restore_seconds, 2) << " s to restore "
            << restored << "/" << num_jobs << " nets (no re-solving)\n";
  // -- ECO: incremental re-solve on a VPR-style net -------------------------
  // Session-oriented solve of a switch-block net, then a single-sink move.
  // The warm re-solve touches only the edited root path; everything else is
  // adopted from the slab cache. solve_cold runs the same edited tree with
  // the cache bypassed, making the speedup and the bit-identity claims
  // measurable in one run.
  {
    tree::vpr_net_options vo;
    vo.num_sinks = bench::full_mode() ? 100'000 : 10'000;
    vo.seed = 77;
    auto eco_net = tree::make_vpr_style_net(vo);

    layout::bbox die = eco_net.bounding_box();
    die.expand({die.lo.x - 1.0, die.lo.y - 1.0});
    die.expand({die.hi.x + 1.0, die.hi.y + 1.0});
    layout::process_model model{
        die, bench::make_model_config(cfg, layout::wid_mode(),
                                      layout::spatial_profile::heterogeneous)};
    core::stat_options so =
        bench::make_stat_options(cfg, core::pruning_kind::two_param);
    so.wire = {vo.wire_res_per_um, vo.wire_cap_per_um};

    core::solve_session session{model};
    const auto first = session.solve(eco_net, so);

    const auto sinks = eco_net.sinks();
    const tree::node_id moved = sinks[sinks.size() / 2];
    const layout::point at = eco_net.node(moved).location;
    eco_net.apply_edit(
        tree::tree_edit::move_sink(moved, {at.x + 40.0, at.y - 25.0}));

    const auto warm = session.solve(eco_net, so);
    const auto cold = session.solve_cold(eco_net, so);

    std::cout << "\n=== ECO: single-sink move on a VPR-style net ("
              << eco_net.num_nodes() << " nodes, " << eco_net.num_sinks()
              << " sinks, 2P WID) ===\n";
    if (first.ok() && warm.ok() && cold.ok()) {
      const double warm_s = warm->stats.wall_seconds;
      const double cold_s = cold->stats.wall_seconds;
      const std::uint64_t warm_hash = core::form_hash(warm->root_rat);
      const std::uint64_t cold_hash = core::form_hash(cold->root_rat);
      const bool bit_identical = warm_hash == cold_hash;
      char warm_hex[24];
      char cold_hex[24];
      std::snprintf(warm_hex, sizeof warm_hex, "%016llx",
                    static_cast<unsigned long long>(warm_hash));
      std::snprintf(cold_hex, sizeof cold_hex, "%016llx",
                    static_cast<unsigned long long>(cold_hash));
      std::cout << "initial solve: " << analysis::fmt(first->stats.wall_seconds, 3)
                << " s; warm re-solve: " << analysis::fmt(warm_s, 3)
                << " s vs cold " << analysis::fmt(cold_s, 3) << " s ("
                << analysis::fmt(cold_s / std::max(warm_s, 1e-9), 1)
                << "x), " << warm->stats.cache_hits << " hits / "
                << warm->stats.cache_misses << " re-solved / "
                << warm->stats.nodes_reused << " nodes reused\n"
                << "root RAT form hash warm " << warm_hex << " cold "
                << cold_hex
                << (bit_identical ? " (bit-identical)" : " (MISMATCH)")
                << "\n";
      status.begin()
          .str("section", "eco")
          .num("nodes", static_cast<std::uint64_t>(eco_net.num_nodes()))
          .num("sinks", static_cast<std::uint64_t>(eco_net.num_sinks()))
          .num("initial_seconds", first->stats.wall_seconds)
          .num("warm_seconds", warm_s)
          .num("cold_seconds", cold_s)
          .num("speedup", cold_s / std::max(warm_s, 1e-9))
          .num("cache_hits",
               static_cast<std::uint64_t>(warm->stats.cache_hits))
          .num("cache_misses",
               static_cast<std::uint64_t>(warm->stats.cache_misses))
          .num("nodes_reused",
               static_cast<std::uint64_t>(warm->stats.nodes_reused))
          .str("root_hash_warm", warm_hex)
          .str("root_hash_cold", cold_hex)
          .boolean("bit_identical", bit_identical);
    } else {
      const auto code = !first.ok() ? first.code()
                                    : (!warm.ok() ? warm.code() : cold.code());
      std::cout << "eco section failed: " << core::to_string(code) << "\n";
      status.begin().str("section", "eco").str("status",
                                               core::to_string(code));
    }
  }

  status.begin()
      .str("status", "journal_summary")
      .num("plain_seconds", batch_seconds)
      .num("journaled_seconds", journaled_seconds)
      .num("journal_overhead_pct", overhead_pct)
      .num("journal_bytes", journal_bytes)
      .num("checkpoints", static_cast<std::uint64_t>(checkpoints))
      .num("resume_restore_seconds", restore_seconds)
      .num("resume_restored", static_cast<std::uint64_t>(restored));
  if (status.write(json_path, "fig5_batch_status")) {
    std::cout << "(per-net status artifact: " << json_path << ")\n";
  }
  return 0;
}
