// Figure 5: runtime of the 2P-pruned variation-aware engine vs sink count.
//
// The paper's point: with the 2P rule both merging and pruning are linear, so
// the end-to-end runtime scales roughly linearly in the number of sinks. We
// sweep generated nets and report seconds per net plus the least-squares
// exponent of runtime ~ sinks^k (k near 1, far below the 4P blow-up).
#include <cmath>
#include <iostream>
#include <vector>

#include "harness.hpp"

int main() {
  using namespace vabi;
  bench::experiment_config cfg;

  std::vector<std::size_t> sizes{100, 200, 400, 800, 1600, 3200};
  if (bench::full_mode()) {
    sizes.push_back(6400);
    sizes.push_back(12800);
    sizes.push_back(25600);
  }

  std::cout << "=== Figure 5: 2P runtime vs number of sinks (WID model) ===\n";
  analysis::text_table t{
      {"Sinks", "Positions", "Runtime (s)", "Candidates", "Peak list"}};
  std::vector<std::pair<double, double>> loglog;
  for (const std::size_t sinks : sizes) {
    tree::benchmark_spec spec;
    spec.name = "gen" + std::to_string(sinks);
    spec.sinks = sinks;
    spec.die_side_um = 4000.0 * std::sqrt(static_cast<double>(sinks) / 250.0);
    spec.seed = 900 + sinks;
    const auto net = tree::build_benchmark(spec);
    const auto r = bench::optimize(net, spec, cfg, layout::wid_mode(),
                                   layout::spatial_profile::heterogeneous);
    t.add_row({std::to_string(sinks), std::to_string(net.num_buffer_positions()),
               analysis::fmt(r.stats.wall_seconds, 3),
               std::to_string(r.stats.candidates_created),
               std::to_string(r.stats.peak_list_size)});
    loglog.emplace_back(std::log(static_cast<double>(sinks)),
                        std::log(std::max(r.stats.wall_seconds, 1e-6)));
  }
  t.print(std::cout);

  // Least-squares slope of log(time) vs log(sinks).
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (const auto& [x, y] : loglog) {
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double n = static_cast<double>(loglog.size());
  const double slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
  std::cout << "runtime ~ sinks^" << analysis::fmt(slope, 2)
            << "  (paper: roughly linear scaling, Fig. 5)\n";
  return 0;
}
