// Section 5.3, final experiment: sensitivity of the optimized RAT to the 2P
// parameters pbar_L and pbar_T.
//
// The paper sweeps both from 0.5 to 0.95 and observes < 0.1% change in the
// optimal root RAT -- evidence that the cheap p = 0.5 mean rule loses nothing
// in practice.
#include <cmath>
#include <iostream>

#include "harness.hpp"

int main() {
  using namespace vabi;
  bench::experiment_config cfg;
  const auto profile = layout::spatial_profile::heterogeneous;

  std::cout << "=== 2P parameter sweep: pbar in [0.5, 0.95] ===\n";
  for (const auto& spec : {*tree::find_benchmark("p1"),
                           *tree::find_benchmark("r1")}) {
    const auto net = tree::build_benchmark(spec);
    analysis::text_table t{
        {"pbar", "root RAT mean (ps)", "delta vs 0.5", "peak list", "time (s)"}};
    double reference = 0.0;
    for (const double p : {0.5, 0.6, 0.7, 0.8, 0.9, 0.95}) {
      auto model = bench::make_model(spec, cfg, layout::wid_mode(), profile);
      core::stat_options o;
      o.wire = cfg.wire;
      o.library = cfg.library;
      o.driver_res_ohm = cfg.driver_res_ohm;
      o.two_param.p_load = p;
      o.two_param.p_rat = p;
      const auto r = core::run_statistical_insertion(net, model, o);
      if (p == 0.5) reference = r.root_rat.mean();
      const double delta =
          (r.root_rat.mean() - reference) / std::abs(reference);
      t.add_row({analysis::fmt(p, 2), analysis::fmt(r.root_rat.mean(), 2),
                 analysis::fmt_percent(delta, 3),
                 std::to_string(r.stats.peak_list_size),
                 analysis::fmt(r.stats.wall_seconds, 2)});
    }
    std::cout << "-- " << spec.name << " --\n";
    t.print(std::cout);
  }
  std::cout << "(paper: less than 0.1% difference across the sweep)\n";
  return 0;
}
