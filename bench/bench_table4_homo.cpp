// Table 4: RAT optimization under the homogeneous spatial variation model.
//
// Paper shape to reproduce: same qualitative ordering as Table 3 but with
// smaller RAT degradations (NOM avg -4.8%, D2D avg -4.0%), since a uniform
// spatial budget gives the blind optimizers less to get wrong.
#include <iostream>
#include <vector>

#include "rat_pipeline.hpp"

int main() {
  using namespace vabi;
  bench::experiment_config cfg;
  std::vector<bench::rat_row> rows;
  for (const auto& spec : bench::suite()) {
    rows.push_back(bench::run_rat_experiment(
        spec, cfg, layout::spatial_profile::homogeneous));
  }
  bench::print_rat_table(
      std::cout,
      "=== Table 4: RAT optimization, homogeneous spatial model ===", rows);
  std::cout << "(paper: NOM avg -4.8% / 45.0% yield, D2D avg -4.0% / 47.0% "
               "yield, WID 100%)\n";
  return 0;
}
