// Shared pipeline for the RAT-optimization experiments (Tables 3, 4, 5).
//
// For each benchmark: optimize with NOM (deterministic), D2D (random +
// inter-die) and WID (all variations including spatial correlation), then
// evaluate all three designs under the *same* full variation model -- the
// "ground truth" a manufactured die would impose -- and report:
//
//   - the 95% timing-yield RAT (5th percentile of the root RAT PDF),
//   - the timing yield at the paper's target (WID mean RAT relaxed by 10%),
//   - the buffer counts (Table 5).
#pragma once

#include "harness.hpp"

namespace vabi::bench {

struct rat_row {
  std::string name;
  double rat_nom = 0.0, rat_d2d = 0.0, rat_wid = 0.0;    // 95%-yield RATs
  double yield_nom = 0.0, yield_d2d = 0.0, yield_wid = 0.0;
  /// Yields at a *tight* target (the WID design's own 5th percentile): the
  /// paper's 10%-relaxed target leaves every design passing when, as on our
  /// synthetic nets, design spreads are small; the tight target exposes the
  /// same ordering at any spread.
  double tight_nom = 0.0, tight_d2d = 0.0, tight_wid = 0.0;
  std::size_t buf_nom = 0, buf_d2d = 0, buf_wid = 0;
};

inline rat_row run_rat_experiment(const tree::benchmark_spec& spec,
                                  const experiment_config& cfg,
                                  layout::spatial_profile profile) {
  const auto net = tree::build_benchmark(spec);

  const auto nom = optimize(net, spec, cfg, layout::nom_mode(), profile);
  const auto d2d = optimize(net, spec, cfg, layout::d2d_mode(), profile);
  const auto wid = optimize(net, spec, cfg, layout::wid_mode(), profile);

  // One evaluation model for all three designs: the full WID truth.
  auto eval_model = make_model(spec, cfg, layout::wid_mode(), profile);
  const auto rat_nom =
      evaluate_design(net, cfg, nom.assignment, eval_model);
  const auto rat_d2d =
      evaluate_design(net, cfg, d2d.assignment, eval_model);
  const auto rat_wid =
      evaluate_design(net, cfg, wid.assignment, eval_model);
  const auto& space = eval_model.space();

  rat_row row;
  row.name = spec.name;
  row.rat_nom = analysis::yield_rat(rat_nom, space);
  row.rat_d2d = analysis::yield_rat(rat_d2d, space);
  row.rat_wid = analysis::yield_rat(rat_wid, space);

  const double target = analysis::target_rat_from_mean(rat_wid.mean());
  row.yield_nom = analysis::timing_yield(rat_nom, space, target);
  row.yield_d2d = analysis::timing_yield(rat_d2d, space, target);
  row.yield_wid = analysis::timing_yield(rat_wid, space, target);

  const double tight = row.rat_wid;  // WID's 5th percentile
  row.tight_nom = analysis::timing_yield(rat_nom, space, tight);
  row.tight_d2d = analysis::timing_yield(rat_d2d, space, tight);
  row.tight_wid = analysis::timing_yield(rat_wid, space, tight);

  row.buf_nom = nom.num_buffers;
  row.buf_d2d = d2d.num_buffers;
  row.buf_wid = wid.num_buffers;
  return row;
}

inline void print_rat_table(std::ostream& os, const std::string& title,
                            const std::vector<rat_row>& rows) {
  os << title << '\n';
  analysis::text_table t{{"Bench", "NOM RAT (%)", "NOM yield", "D2D RAT (%)",
                          "D2D yield", "WID RAT", "WID yield"}};
  double sum_nom = 0.0, sum_d2d = 0.0;
  double ysum_nom = 0.0, ysum_d2d = 0.0, ysum_wid = 0.0;
  for (const auto& r : rows) {
    const auto pct = [&](double v) {
      // Relative degradation vs WID (RATs are negative; more negative =
      // worse), matching the parenthesized percentages of Table 3/4.
      return (v - r.rat_wid) / std::abs(r.rat_wid);
    };
    sum_nom += pct(r.rat_nom);
    sum_d2d += pct(r.rat_d2d);
    ysum_nom += r.yield_nom;
    ysum_d2d += r.yield_d2d;
    ysum_wid += r.yield_wid;
    t.add_row({r.name,
               analysis::fmt(r.rat_nom, 1) + " (" +
                   analysis::fmt_percent(pct(r.rat_nom), 1) + ")",
               analysis::fmt_percent(r.yield_nom, 1),
               analysis::fmt(r.rat_d2d, 1) + " (" +
                   analysis::fmt_percent(pct(r.rat_d2d), 1) + ")",
               analysis::fmt_percent(r.yield_d2d, 1),
               analysis::fmt(r.rat_wid, 1),
               analysis::fmt_percent(r.yield_wid, 1)});
  }
  const double n = static_cast<double>(rows.size());
  t.add_row({"Avg", analysis::fmt_percent(sum_nom / n, 1),
             analysis::fmt_percent(ysum_nom / n, 1),
             analysis::fmt_percent(sum_d2d / n, 1),
             analysis::fmt_percent(ysum_d2d / n, 1), "-",
             analysis::fmt_percent(ysum_wid / n, 1)});
  t.print(os);

  os << "-- yields at the tight target (WID design's 5th percentile) --\n";
  analysis::text_table t2{{"Bench", "NOM", "D2D", "WID"}};
  for (const auto& r : rows) {
    t2.add_row({r.name, analysis::fmt_percent(r.tight_nom, 1),
                analysis::fmt_percent(r.tight_d2d, 1),
                analysis::fmt_percent(r.tight_wid, 1)});
  }
  t2.print(os);
}

}  // namespace vabi::bench
