// Table 2: runtime comparison between the 4P baseline [7] and the 2P rule.
//
// Reproduces the paper's experiment: both engines run RAT optimization under
// the full WID variation model; 4P's partial order forces O(n*m) merging and
// O(N^2) pruning, so it only finishes the smallest net (p1 in the paper) and
// blows past resource caps on everything larger. The caps here play the role
// of the paper's 2 GB / 4 hour limits, scaled down so the bench terminates
// quickly; set VABI_FULL=1 for the paper-scale run (all benchmarks, larger
// 4P budget).
//
// All (net, rule) jobs are independent, so they run through the batch solver
// (`--threads N`); results are deterministic and printed in table order
// regardless of the thread count.
//
// `--smoke` (or VABI_SMOKE=1) restricts the run to the small generated nets
// with tight caps -- the CI bench-smoke job uses it to produce the
// BENCH_table2.json artifact (`--json <path>`) in seconds.
#include <iostream>
#include <string>
#include <vector>

#include "core/parallel.hpp"
#include "harness.hpp"
#include "json_out.hpp"
#include "tree/generators.hpp"

namespace {

bool smoke_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") return true;
  }
  const char* v = std::getenv("VABI_SMOKE");
  return v != nullptr && std::string(v) != "0";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vabi;
  bench::experiment_config cfg;
  const auto profile = layout::spatial_profile::heterogeneous;
  const std::size_t threads = bench::parse_threads(argc, argv);
  const bool smoke = smoke_mode(argc, argv);

  std::cout << "=== Table 2: Runtime comparison (seconds, " << threads
            << (threads == 1 ? " thread" : " threads") << ") ===\n";
  analysis::text_table t{{"Bench", "4P (s)", "2P (s)", "Speedup",
                          "4P peak list", "2P peak list", "2P allocs",
                          "2P peak terms"}};

  // Small generated nets locate the 4P feasibility boundary (the paper's 4P
  // reimplementation completed its smallest net and died on the rest; our 4P
  // crossover sits lower, see EXPERIMENTS.md).
  std::vector<tree::benchmark_spec> specs;
  for (const std::size_t sinks : {16u, 32u, 64u}) {
    tree::benchmark_spec s;
    s.name = "s";
    s.name += std::to_string(sinks);
    s.sinks = sinks;
    s.die_side_um = 3000.0;
    s.seed = 500 + sinks;
    specs.push_back(s);
  }
  if (!smoke) {
    for (const auto& spec : bench::suite()) specs.push_back(spec);
  }

  std::vector<tree::routing_tree> nets;
  nets.reserve(specs.size());
  for (const auto& spec : specs) nets.push_back(tree::build_benchmark(spec));

  // 4P: capped; on everything beyond the smallest nets it aborts, which is
  // the paper's "-" entries (memory / time limit exceeded). 2P needs no caps;
  // it is the linear-complexity contribution.
  core::stat_options caps;
  caps.max_candidates = bench::full_mode() ? 50'000'000 : 3'000'000;
  caps.max_list_size = 200'000;
  caps.max_wall_seconds = bench::full_mode() ? 600.0 : (smoke ? 5.0 : 30.0);

  // Jobs 3i / 3i+1 / 3i+2 are net i under 4P / 2P / 2P at 90% confidence
  // with a three-width wire-sizing menu. The p90+sizing run exercises the
  // confidence-rule regime where the tiled dominance engine engages (the
  // mean rule is a total order and never tiles, and without sizing the 2P
  // lists on these nets stay below the k >= 32 tiling threshold); its JSON
  // record carries the tiled_* counters and its wall time is the end-to-end
  // figure the perf gate tracks for that path.
  std::vector<core::batch_job> jobs;
  jobs.reserve(3 * specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    core::batch_job j;
    j.tree = &nets[i];
    j.model = bench::make_model_config(cfg, layout::wid_mode(), profile);
    j.die = layout::square_die(specs[i].die_side_um);
    j.options =
        bench::make_stat_options(cfg, core::pruning_kind::four_param, &caps);
    jobs.push_back(j);
    j.options = bench::make_stat_options(cfg, core::pruning_kind::two_param);
    jobs.push_back(j);
    j.options = bench::make_stat_options(cfg, core::pruning_kind::two_param);
    j.options.two_param.p_load = 0.9;
    j.options.two_param.p_rat = 0.9;
    j.options.wire_width_multipliers = {0.7, 1.0, 1.4};
    jobs.push_back(j);
  }

  core::batch_solver::config solver_cfg;
  solver_cfg.num_threads = threads;
  core::batch_solver solver{solver_cfg};
  const auto results = solver.solve(jobs);

  bench::json_records json;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto& r4 = results[3 * i].result;
    const auto& r2 = results[3 * i + 1].result;
    const auto& r2p90 = results[3 * i + 2].result;
    const std::string t4 =
        r4.stats.aborted ? "-" : analysis::fmt(r4.stats.wall_seconds, 2);
    const std::string speedup =
        r4.stats.aborted
            ? "-"
            : analysis::fmt(r4.stats.wall_seconds /
                                std::max(r2.stats.wall_seconds, 1e-9),
                            1) +
                  "x";
    t.add_row({specs[i].name, t4, analysis::fmt(r2.stats.wall_seconds, 2),
               speedup,
               r4.stats.aborted
                   ? ("abort: " + r4.stats.abort_reason)
                   : std::to_string(r4.stats.peak_list_size),
               std::to_string(r2.stats.peak_list_size),
               std::to_string(r2.stats.allocations),
               std::to_string(r2.stats.peak_terms)});
    for (const auto* r : {&r4, &r2, &r2p90}) {
      json.begin()
          .str("bench", specs[i].name)
          .str("rule", r == &r4 ? "4P" : (r == &r2 ? "2P" : "2P_p90"))
          .boolean("aborted", r->stats.aborted)
          .num("seconds", r->stats.wall_seconds)
          .num("candidates",
               static_cast<std::uint64_t>(r->stats.candidates_created))
          .num("peak_list",
               static_cast<std::uint64_t>(r->stats.peak_list_size))
          .num("allocations",
               static_cast<std::uint64_t>(r->stats.allocations))
          .num("peak_terms", static_cast<std::uint64_t>(r->stats.peak_terms))
          .num("dense_forms",
               static_cast<std::uint64_t>(r->stats.dense_forms))
          .num("terms_merged",
               static_cast<std::uint64_t>(r->stats.terms_merged))
          .num("dominance_prefilter_hits",
               static_cast<std::uint64_t>(r->stats.dominance_prefilter_hits))
          .num("tiled_prunes",
               static_cast<std::uint64_t>(r->stats.tiled_prunes))
          .num("tile_prefilter_hits",
               static_cast<std::uint64_t>(r->stats.tile_prefilter_hits))
          .num("pairs_batched",
               static_cast<std::uint64_t>(r->stats.pairs_batched))
          .num("num_buffers", static_cast<std::uint64_t>(r->num_buffers));
    }
  }
  t.print(std::cout);

  // -- Library-size axis (Li-Shi) -------------------------------------------
  //
  // Runtime vs number of buffer types b, frontier (li_shi.hpp) against the
  // classic per-type scan, for the deterministic engine and the 2P mean
  // statistical engine. The scan is O(b^2 n^2); the frontier's near-linear
  // scaling in b is the Li-Shi claim this table checks (the CI perf gate
  // reads the JSON records).
  std::cout << "\n=== Library-size axis: Li-Shi frontier vs scan ===\n";
  analysis::text_table tb{{"b", "det scan (s)", "det li-shi (s)", "det speedup",
                           "2P scan (s)", "2P li-shi (s)", "2P speedup"}};
  const std::vector<std::size_t> lib_sizes =
      smoke ? std::vector<std::size_t>{8, 64}
            : std::vector<std::size_t>{8, 64, 128, 256};
  // A long repeater chain is the workload where the b^2 blow-up actually
  // bites: candidate fronts grow into the hundreds, so the scan pays
  // b * |front| at every position. Random geometric trees keep fronts short
  // (merges cap them) and understate the effect. The statistical net is a
  // shorter chain: its per-candidate cost is dominated by canonical-form
  // pooled ops, which the frontier does not touch -- expect the det column
  // to carry the headline speedup and the 2P column a modest one.
  tree::chain_options det_chain;
  det_chain.length_um = 40000.0;
  det_chain.segments = smoke ? 1000 : 4000;
  const auto det_net = tree::make_chain(det_chain);
  tree::chain_options stat_chain;
  stat_chain.length_um = 40000.0;
  stat_chain.segments = smoke ? 200 : 800;
  const auto stat_net = tree::make_chain(stat_chain);
  const auto stat_model_cfg =
      bench::make_model_config(cfg, layout::wid_mode(), profile);

  for (const std::size_t b : lib_sizes) {
    const auto lib = timing::make_parameterized_library(b);
    double det_s[2];  // [scan, frontier]
    double stat_s[2];
    std::uint64_t stat_nodes[2];
    for (const int fr : {0, 1}) {
      core::det_options det;
      det.wire = cfg.wire;
      det.library = lib;
      det.driver_res_ohm = cfg.driver_res_ohm;
      det.li_shi = fr ? core::li_shi_mode::always : core::li_shi_mode::never;
      // Best of two: back-to-back runs share allocator and arena state, and
      // the second run of a pair is occasionally penalized by the first
      // one's footprint; the min is the stable figure for the CI perf gate.
      auto rd = core::run_van_ginneken(det_net, det);
      const auto rd2 = core::run_van_ginneken(det_net, det);
      if (rd2.stats.wall_seconds < rd.stats.wall_seconds) rd = rd2;
      det_s[fr] = rd.stats.wall_seconds;

      core::stat_options so =
          bench::make_stat_options(cfg, core::pruning_kind::two_param);
      so.library = lib;
      // Mean selection: the total-order regime the frontier engages in (the
      // yield-driven 0.05 selection takes the general scan path either way).
      so.selection_percentile = 0.5;
      so.li_shi = fr ? core::li_shi_mode::always : core::li_shi_mode::never;
      layout::process_model model{layout::square_die(det_chain.length_um),
                                  stat_model_cfg};
      const auto rs = core::run_statistical_insertion(stat_net, model, so);
      stat_s[fr] = rs.stats.wall_seconds;
      stat_nodes[fr] = rs.stats.li_shi_nodes;

      json.begin()
          .str("section", "b_axis")
          .num("b", static_cast<std::uint64_t>(b))
          .str("li_shi", fr ? "always" : "never")
          .num("det_segments",
               static_cast<std::uint64_t>(det_chain.segments))
          .num("stat_segments",
               static_cast<std::uint64_t>(stat_chain.segments))
          .num("det_seconds", rd.stats.wall_seconds)
          .num("stat_seconds", rs.stats.wall_seconds)
          .num("det_candidates",
               static_cast<std::uint64_t>(rd.stats.candidates_created))
          .num("stat_candidates",
               static_cast<std::uint64_t>(rs.stats.candidates_created))
          .num("det_peak_list",
               static_cast<std::uint64_t>(rd.stats.peak_list_size))
          .num("li_shi_nodes", stat_nodes[fr])
          .num("num_buffers", static_cast<std::uint64_t>(rd.num_buffers));
    }
    tb.add_row({std::to_string(b), analysis::fmt(det_s[0], 3),
                analysis::fmt(det_s[1], 3),
                analysis::fmt(det_s[0] / std::max(det_s[1], 1e-9), 1) + "x",
                analysis::fmt(stat_s[0], 3), analysis::fmt(stat_s[1], 3),
                analysis::fmt(stat_s[0] / std::max(stat_s[1], 1e-9), 1) +
                    "x"});
  }
  tb.print(std::cout);

  const std::string json_path = bench::parse_json_path(argc, argv);
  if (json.write(json_path, "table2_runtime")) {
    std::cout << "(json artifact: " << json_path << ")\n";
  }
  std::cout << "(paper: 4P finishes only p1 at 25.4s vs 2P 1.5s = 17.3x; "
               "all larger nets exceed 2GB/4h for 4P, while 2P completes "
               "r5 in under 16 minutes)\n";
  return 0;
}
