// Figure 3: normal-distribution approximation of the buffer intrinsic delay.
//
// The paper extracts T_b from SPICE under 10%-sigma L_eff variation and shows
// that the first-order (least-squares) normal approximation tracks the true
// PDF closely. Here the SPICE stand-in is the analytic nonlinear transistor
// model; the flow (sample -> extract -> fit -> compare PDFs) is identical.
#include <iostream>

#include "analysis/reporting.hpp"
#include "device/characterize.hpp"
#include "stats/normal.hpp"
#include "timing/buffer_library.hpp"

int main() {
  using namespace vabi;
  const device::transistor_model model{device::transistor_model_config{},
                                       timing::standard_library()[0]};
  device::characterization_config cfg;
  cfg.samples = 20000;
  cfg.leff_sigma_frac = 0.10;  // the paper's setting

  const auto r = device::characterize_buffer(model, cfg);

  std::cout << "=== Figure 3: normal approximation of T_b (L_eff sigma = 10%) "
               "===\n";
  analysis::text_table t{{"Quantity", "Nonlinear MC", "First-order fit"}};
  t.add_row({"mean (ps)", analysis::fmt(r.delay_moments.mean, 3),
             analysis::fmt(r.delay_nominal_ps, 3)});
  t.add_row({"sigma (ps)", analysis::fmt(r.delay_moments.stddev, 3),
             analysis::fmt(r.delay_sigma_ps, 3)});
  t.add_row({"skewness", analysis::fmt(r.delay_moments.skewness, 3), "0 (normal)"});
  t.add_row({"excess kurtosis", analysis::fmt(r.delay_moments.kurtosis_excess, 3),
             "0 (normal)"});
  t.print(std::cout);
  std::cout << "fit R^2 (delay) = " << analysis::fmt(r.delay_fit.r_squared, 4)
            << ", KS distance to fitted normal = "
            << analysis::fmt(r.delay_ks_to_fitted_normal, 4) << "\n\n";

  std::cout << "-- extracted T_b PDF (#) vs fitted normal (o) --\n";
  stats::empirical_distribution dist{r.delay_samples};
  const auto bins = dist.density_histogram(30);
  double peak = 0.0;
  for (const auto& [x, d] : bins) peak = std::max(peak, d);
  for (const auto& [x, d] : bins) {
    const double fitted =
        stats::normal_pdf((x - r.delay_nominal_ps) / r.delay_sigma_ps) /
        r.delay_sigma_ps;
    const int bar = static_cast<int>(d / peak * 50 + 0.5);
    const int dot = static_cast<int>(fitted / peak * 50 + 0.5);
    std::string line(std::max(bar, dot) + 1, ' ');
    for (int i = 0; i < bar; ++i) line[i] = '#';
    if (dot >= 0 && dot < static_cast<int>(line.size())) line[dot] = 'o';
    std::cout << analysis::fmt(x, 2) << " | " << line << "\n";
  }
  std::cout << "(paper: the two PDFs are nearly indistinguishable)\n";
  return 0;
}
