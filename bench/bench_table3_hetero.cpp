// Table 3: RAT optimization under the heterogeneous spatial variation model.
//
// Paper shape to reproduce: NOM degrades the 95%-yield RAT vs WID (up to
// ~23%, ~10% average), D2D is only marginally better than NOM, and both lose
// most of their timing yield at the target RAT while WID keeps ~100%.
#include <iostream>
#include <vector>

#include "rat_pipeline.hpp"

int main() {
  using namespace vabi;
  bench::experiment_config cfg;
  std::vector<bench::rat_row> rows;
  for (const auto& spec : bench::suite()) {
    rows.push_back(bench::run_rat_experiment(
        spec, cfg, layout::spatial_profile::heterogeneous));
  }
  bench::print_rat_table(
      std::cout,
      "=== Table 3: RAT optimization, heterogeneous spatial model ===", rows);
  std::cout << "(paper: NOM avg -9.7% / 45.0% yield, D2D avg -8.4% / 47.0% "
               "yield, WID 100%)\n";
  return 0;
}
