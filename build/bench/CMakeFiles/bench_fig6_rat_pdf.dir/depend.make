# Empty dependencies file for bench_fig6_rat_pdf.
# This may be replaced when dependencies are built.
