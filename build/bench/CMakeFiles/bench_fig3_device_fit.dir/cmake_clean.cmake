file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_device_fit.dir/bench_fig3_device_fit.cpp.o"
  "CMakeFiles/bench_fig3_device_fit.dir/bench_fig3_device_fit.cpp.o.d"
  "bench_fig3_device_fit"
  "bench_fig3_device_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_device_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
