# Empty compiler generated dependencies file for bench_fig3_device_fit.
# This may be replaced when dependencies are built.
