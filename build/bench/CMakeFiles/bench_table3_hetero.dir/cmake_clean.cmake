file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_hetero.dir/bench_table3_hetero.cpp.o"
  "CMakeFiles/bench_table3_hetero.dir/bench_table3_hetero.cpp.o.d"
  "bench_table3_hetero"
  "bench_table3_hetero.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_hetero.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
