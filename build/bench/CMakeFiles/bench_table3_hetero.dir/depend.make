# Empty dependencies file for bench_table3_hetero.
# This may be replaced when dependencies are built.
