# Empty dependencies file for bench_table4_homo.
# This may be replaced when dependencies are built.
