file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_homo.dir/bench_table4_homo.cpp.o"
  "CMakeFiles/bench_table4_homo.dir/bench_table4_homo.cpp.o.d"
  "bench_table4_homo"
  "bench_table4_homo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_homo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
