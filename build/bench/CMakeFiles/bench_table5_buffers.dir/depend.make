# Empty dependencies file for bench_table5_buffers.
# This may be replaced when dependencies are built.
