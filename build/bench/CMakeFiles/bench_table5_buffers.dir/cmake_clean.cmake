file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_buffers.dir/bench_table5_buffers.cpp.o"
  "CMakeFiles/bench_table5_buffers.dir/bench_table5_buffers.cpp.o.d"
  "bench_table5_buffers"
  "bench_table5_buffers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_buffers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
