# Empty compiler generated dependencies file for bench_sweep_2p_params.
# This may be replaced when dependencies are built.
