file(REMOVE_RECURSE
  "CMakeFiles/bench_sweep_2p_params.dir/bench_sweep_2p_params.cpp.o"
  "CMakeFiles/bench_sweep_2p_params.dir/bench_sweep_2p_params.cpp.o.d"
  "bench_sweep_2p_params"
  "bench_sweep_2p_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sweep_2p_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
