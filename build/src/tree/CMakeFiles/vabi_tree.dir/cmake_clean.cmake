file(REMOVE_RECURSE
  "CMakeFiles/vabi_tree.dir/benchmarks.cpp.o"
  "CMakeFiles/vabi_tree.dir/benchmarks.cpp.o.d"
  "CMakeFiles/vabi_tree.dir/generators.cpp.o"
  "CMakeFiles/vabi_tree.dir/generators.cpp.o.d"
  "CMakeFiles/vabi_tree.dir/routing_tree.cpp.o"
  "CMakeFiles/vabi_tree.dir/routing_tree.cpp.o.d"
  "CMakeFiles/vabi_tree.dir/tree_io.cpp.o"
  "CMakeFiles/vabi_tree.dir/tree_io.cpp.o.d"
  "libvabi_tree.a"
  "libvabi_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vabi_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
