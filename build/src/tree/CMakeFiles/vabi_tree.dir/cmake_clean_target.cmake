file(REMOVE_RECURSE
  "libvabi_tree.a"
)
