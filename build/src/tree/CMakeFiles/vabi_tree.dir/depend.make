# Empty dependencies file for vabi_tree.
# This may be replaced when dependencies are built.
