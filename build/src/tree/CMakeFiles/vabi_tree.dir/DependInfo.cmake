
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tree/benchmarks.cpp" "src/tree/CMakeFiles/vabi_tree.dir/benchmarks.cpp.o" "gcc" "src/tree/CMakeFiles/vabi_tree.dir/benchmarks.cpp.o.d"
  "/root/repo/src/tree/generators.cpp" "src/tree/CMakeFiles/vabi_tree.dir/generators.cpp.o" "gcc" "src/tree/CMakeFiles/vabi_tree.dir/generators.cpp.o.d"
  "/root/repo/src/tree/routing_tree.cpp" "src/tree/CMakeFiles/vabi_tree.dir/routing_tree.cpp.o" "gcc" "src/tree/CMakeFiles/vabi_tree.dir/routing_tree.cpp.o.d"
  "/root/repo/src/tree/tree_io.cpp" "src/tree/CMakeFiles/vabi_tree.dir/tree_io.cpp.o" "gcc" "src/tree/CMakeFiles/vabi_tree.dir/tree_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/vabi_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/vabi_layout.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
