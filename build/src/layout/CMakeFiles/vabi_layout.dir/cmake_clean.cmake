file(REMOVE_RECURSE
  "CMakeFiles/vabi_layout.dir/grid.cpp.o"
  "CMakeFiles/vabi_layout.dir/grid.cpp.o.d"
  "CMakeFiles/vabi_layout.dir/process_model.cpp.o"
  "CMakeFiles/vabi_layout.dir/process_model.cpp.o.d"
  "CMakeFiles/vabi_layout.dir/spatial_model.cpp.o"
  "CMakeFiles/vabi_layout.dir/spatial_model.cpp.o.d"
  "libvabi_layout.a"
  "libvabi_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vabi_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
