
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/layout/grid.cpp" "src/layout/CMakeFiles/vabi_layout.dir/grid.cpp.o" "gcc" "src/layout/CMakeFiles/vabi_layout.dir/grid.cpp.o.d"
  "/root/repo/src/layout/process_model.cpp" "src/layout/CMakeFiles/vabi_layout.dir/process_model.cpp.o" "gcc" "src/layout/CMakeFiles/vabi_layout.dir/process_model.cpp.o.d"
  "/root/repo/src/layout/spatial_model.cpp" "src/layout/CMakeFiles/vabi_layout.dir/spatial_model.cpp.o" "gcc" "src/layout/CMakeFiles/vabi_layout.dir/spatial_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/vabi_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
