# Empty dependencies file for vabi_layout.
# This may be replaced when dependencies are built.
