file(REMOVE_RECURSE
  "libvabi_layout.a"
)
