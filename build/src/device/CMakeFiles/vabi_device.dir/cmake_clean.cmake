file(REMOVE_RECURSE
  "CMakeFiles/vabi_device.dir/characterize.cpp.o"
  "CMakeFiles/vabi_device.dir/characterize.cpp.o.d"
  "CMakeFiles/vabi_device.dir/transistor_model.cpp.o"
  "CMakeFiles/vabi_device.dir/transistor_model.cpp.o.d"
  "libvabi_device.a"
  "libvabi_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vabi_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
