# Empty compiler generated dependencies file for vabi_device.
# This may be replaced when dependencies are built.
