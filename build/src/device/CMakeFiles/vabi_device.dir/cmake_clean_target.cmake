file(REMOVE_RECURSE
  "libvabi_device.a"
)
