file(REMOVE_RECURSE
  "libvabi_timing.a"
)
