file(REMOVE_RECURSE
  "CMakeFiles/vabi_timing.dir/buffer_library.cpp.o"
  "CMakeFiles/vabi_timing.dir/buffer_library.cpp.o.d"
  "CMakeFiles/vabi_timing.dir/elmore.cpp.o"
  "CMakeFiles/vabi_timing.dir/elmore.cpp.o.d"
  "CMakeFiles/vabi_timing.dir/wire_sizing.cpp.o"
  "CMakeFiles/vabi_timing.dir/wire_sizing.cpp.o.d"
  "libvabi_timing.a"
  "libvabi_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vabi_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
