# Empty compiler generated dependencies file for vabi_timing.
# This may be replaced when dependencies are built.
