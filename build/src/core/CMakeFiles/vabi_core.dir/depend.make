# Empty dependencies file for vabi_core.
# This may be replaced when dependencies are built.
