
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/brute_force.cpp" "src/core/CMakeFiles/vabi_core.dir/brute_force.cpp.o" "gcc" "src/core/CMakeFiles/vabi_core.dir/brute_force.cpp.o.d"
  "/root/repo/src/core/cost_bounded.cpp" "src/core/CMakeFiles/vabi_core.dir/cost_bounded.cpp.o" "gcc" "src/core/CMakeFiles/vabi_core.dir/cost_bounded.cpp.o.d"
  "/root/repo/src/core/pruning.cpp" "src/core/CMakeFiles/vabi_core.dir/pruning.cpp.o" "gcc" "src/core/CMakeFiles/vabi_core.dir/pruning.cpp.o.d"
  "/root/repo/src/core/solution.cpp" "src/core/CMakeFiles/vabi_core.dir/solution.cpp.o" "gcc" "src/core/CMakeFiles/vabi_core.dir/solution.cpp.o.d"
  "/root/repo/src/core/statistical_dp.cpp" "src/core/CMakeFiles/vabi_core.dir/statistical_dp.cpp.o" "gcc" "src/core/CMakeFiles/vabi_core.dir/statistical_dp.cpp.o.d"
  "/root/repo/src/core/van_ginneken.cpp" "src/core/CMakeFiles/vabi_core.dir/van_ginneken.cpp.o" "gcc" "src/core/CMakeFiles/vabi_core.dir/van_ginneken.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/vabi_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/vabi_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/vabi_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/vabi_timing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
