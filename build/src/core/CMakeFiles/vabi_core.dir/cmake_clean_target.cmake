file(REMOVE_RECURSE
  "libvabi_core.a"
)
