file(REMOVE_RECURSE
  "CMakeFiles/vabi_core.dir/brute_force.cpp.o"
  "CMakeFiles/vabi_core.dir/brute_force.cpp.o.d"
  "CMakeFiles/vabi_core.dir/cost_bounded.cpp.o"
  "CMakeFiles/vabi_core.dir/cost_bounded.cpp.o.d"
  "CMakeFiles/vabi_core.dir/pruning.cpp.o"
  "CMakeFiles/vabi_core.dir/pruning.cpp.o.d"
  "CMakeFiles/vabi_core.dir/solution.cpp.o"
  "CMakeFiles/vabi_core.dir/solution.cpp.o.d"
  "CMakeFiles/vabi_core.dir/statistical_dp.cpp.o"
  "CMakeFiles/vabi_core.dir/statistical_dp.cpp.o.d"
  "CMakeFiles/vabi_core.dir/van_ginneken.cpp.o"
  "CMakeFiles/vabi_core.dir/van_ginneken.cpp.o.d"
  "libvabi_core.a"
  "libvabi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vabi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
