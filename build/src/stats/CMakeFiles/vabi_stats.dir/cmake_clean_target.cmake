file(REMOVE_RECURSE
  "libvabi_stats.a"
)
