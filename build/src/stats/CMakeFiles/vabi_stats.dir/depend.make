# Empty dependencies file for vabi_stats.
# This may be replaced when dependencies are built.
