
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/empirical.cpp" "src/stats/CMakeFiles/vabi_stats.dir/empirical.cpp.o" "gcc" "src/stats/CMakeFiles/vabi_stats.dir/empirical.cpp.o.d"
  "/root/repo/src/stats/least_squares.cpp" "src/stats/CMakeFiles/vabi_stats.dir/least_squares.cpp.o" "gcc" "src/stats/CMakeFiles/vabi_stats.dir/least_squares.cpp.o.d"
  "/root/repo/src/stats/linear_form.cpp" "src/stats/CMakeFiles/vabi_stats.dir/linear_form.cpp.o" "gcc" "src/stats/CMakeFiles/vabi_stats.dir/linear_form.cpp.o.d"
  "/root/repo/src/stats/monte_carlo.cpp" "src/stats/CMakeFiles/vabi_stats.dir/monte_carlo.cpp.o" "gcc" "src/stats/CMakeFiles/vabi_stats.dir/monte_carlo.cpp.o.d"
  "/root/repo/src/stats/normal.cpp" "src/stats/CMakeFiles/vabi_stats.dir/normal.cpp.o" "gcc" "src/stats/CMakeFiles/vabi_stats.dir/normal.cpp.o.d"
  "/root/repo/src/stats/variation_space.cpp" "src/stats/CMakeFiles/vabi_stats.dir/variation_space.cpp.o" "gcc" "src/stats/CMakeFiles/vabi_stats.dir/variation_space.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
