file(REMOVE_RECURSE
  "CMakeFiles/vabi_stats.dir/empirical.cpp.o"
  "CMakeFiles/vabi_stats.dir/empirical.cpp.o.d"
  "CMakeFiles/vabi_stats.dir/least_squares.cpp.o"
  "CMakeFiles/vabi_stats.dir/least_squares.cpp.o.d"
  "CMakeFiles/vabi_stats.dir/linear_form.cpp.o"
  "CMakeFiles/vabi_stats.dir/linear_form.cpp.o.d"
  "CMakeFiles/vabi_stats.dir/monte_carlo.cpp.o"
  "CMakeFiles/vabi_stats.dir/monte_carlo.cpp.o.d"
  "CMakeFiles/vabi_stats.dir/normal.cpp.o"
  "CMakeFiles/vabi_stats.dir/normal.cpp.o.d"
  "CMakeFiles/vabi_stats.dir/variation_space.cpp.o"
  "CMakeFiles/vabi_stats.dir/variation_space.cpp.o.d"
  "libvabi_stats.a"
  "libvabi_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vabi_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
