# Empty dependencies file for vabi_analysis.
# This may be replaced when dependencies are built.
