file(REMOVE_RECURSE
  "CMakeFiles/vabi_analysis.dir/buffered_tree_model.cpp.o"
  "CMakeFiles/vabi_analysis.dir/buffered_tree_model.cpp.o.d"
  "CMakeFiles/vabi_analysis.dir/clock_skew.cpp.o"
  "CMakeFiles/vabi_analysis.dir/clock_skew.cpp.o.d"
  "CMakeFiles/vabi_analysis.dir/monte_carlo_validation.cpp.o"
  "CMakeFiles/vabi_analysis.dir/monte_carlo_validation.cpp.o.d"
  "CMakeFiles/vabi_analysis.dir/reporting.cpp.o"
  "CMakeFiles/vabi_analysis.dir/reporting.cpp.o.d"
  "CMakeFiles/vabi_analysis.dir/variance_breakdown.cpp.o"
  "CMakeFiles/vabi_analysis.dir/variance_breakdown.cpp.o.d"
  "CMakeFiles/vabi_analysis.dir/yield.cpp.o"
  "CMakeFiles/vabi_analysis.dir/yield.cpp.o.d"
  "libvabi_analysis.a"
  "libvabi_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vabi_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
