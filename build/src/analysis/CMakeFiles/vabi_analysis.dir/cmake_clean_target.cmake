file(REMOVE_RECURSE
  "libvabi_analysis.a"
)
