
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/buffered_tree_model.cpp" "src/analysis/CMakeFiles/vabi_analysis.dir/buffered_tree_model.cpp.o" "gcc" "src/analysis/CMakeFiles/vabi_analysis.dir/buffered_tree_model.cpp.o.d"
  "/root/repo/src/analysis/clock_skew.cpp" "src/analysis/CMakeFiles/vabi_analysis.dir/clock_skew.cpp.o" "gcc" "src/analysis/CMakeFiles/vabi_analysis.dir/clock_skew.cpp.o.d"
  "/root/repo/src/analysis/monte_carlo_validation.cpp" "src/analysis/CMakeFiles/vabi_analysis.dir/monte_carlo_validation.cpp.o" "gcc" "src/analysis/CMakeFiles/vabi_analysis.dir/monte_carlo_validation.cpp.o.d"
  "/root/repo/src/analysis/reporting.cpp" "src/analysis/CMakeFiles/vabi_analysis.dir/reporting.cpp.o" "gcc" "src/analysis/CMakeFiles/vabi_analysis.dir/reporting.cpp.o.d"
  "/root/repo/src/analysis/variance_breakdown.cpp" "src/analysis/CMakeFiles/vabi_analysis.dir/variance_breakdown.cpp.o" "gcc" "src/analysis/CMakeFiles/vabi_analysis.dir/variance_breakdown.cpp.o.d"
  "/root/repo/src/analysis/yield.cpp" "src/analysis/CMakeFiles/vabi_analysis.dir/yield.cpp.o" "gcc" "src/analysis/CMakeFiles/vabi_analysis.dir/yield.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vabi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/vabi_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/vabi_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/vabi_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/vabi_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
