# Empty compiler generated dependencies file for yield_driven_design.
# This may be replaced when dependencies are built.
