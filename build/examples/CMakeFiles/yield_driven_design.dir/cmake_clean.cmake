file(REMOVE_RECURSE
  "CMakeFiles/yield_driven_design.dir/yield_driven_design.cpp.o"
  "CMakeFiles/yield_driven_design.dir/yield_driven_design.cpp.o.d"
  "yield_driven_design"
  "yield_driven_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yield_driven_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
