
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/vabi_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vabi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/vabi_device.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/vabi_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/vabi_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/vabi_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/vabi_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
