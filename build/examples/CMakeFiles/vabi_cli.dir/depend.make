# Empty dependencies file for vabi_cli.
# This may be replaced when dependencies are built.
