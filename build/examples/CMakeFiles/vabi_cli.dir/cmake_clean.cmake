file(REMOVE_RECURSE
  "CMakeFiles/vabi_cli.dir/vabi_cli.cpp.o"
  "CMakeFiles/vabi_cli.dir/vabi_cli.cpp.o.d"
  "vabi_cli"
  "vabi_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vabi_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
