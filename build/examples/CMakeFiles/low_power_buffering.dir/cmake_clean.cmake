file(REMOVE_RECURSE
  "CMakeFiles/low_power_buffering.dir/low_power_buffering.cpp.o"
  "CMakeFiles/low_power_buffering.dir/low_power_buffering.cpp.o.d"
  "low_power_buffering"
  "low_power_buffering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/low_power_buffering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
