# Empty compiler generated dependencies file for low_power_buffering.
# This may be replaced when dependencies are built.
