file(REMOVE_RECURSE
  "CMakeFiles/clock_htree.dir/clock_htree.cpp.o"
  "CMakeFiles/clock_htree.dir/clock_htree.cpp.o.d"
  "clock_htree"
  "clock_htree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clock_htree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
