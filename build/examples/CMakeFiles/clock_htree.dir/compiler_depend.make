# Empty compiler generated dependencies file for clock_htree.
# This may be replaced when dependencies are built.
