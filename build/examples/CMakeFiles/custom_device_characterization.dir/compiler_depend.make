# Empty compiler generated dependencies file for custom_device_characterization.
# This may be replaced when dependencies are built.
