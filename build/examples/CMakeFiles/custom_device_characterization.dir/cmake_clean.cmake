file(REMOVE_RECURSE
  "CMakeFiles/custom_device_characterization.dir/custom_device_characterization.cpp.o"
  "CMakeFiles/custom_device_characterization.dir/custom_device_characterization.cpp.o.d"
  "custom_device_characterization"
  "custom_device_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_device_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
