
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis/buffered_tree_model_test.cpp" "tests/CMakeFiles/vabi_tests.dir/analysis/buffered_tree_model_test.cpp.o" "gcc" "tests/CMakeFiles/vabi_tests.dir/analysis/buffered_tree_model_test.cpp.o.d"
  "/root/repo/tests/analysis/clock_skew_test.cpp" "tests/CMakeFiles/vabi_tests.dir/analysis/clock_skew_test.cpp.o" "gcc" "tests/CMakeFiles/vabi_tests.dir/analysis/clock_skew_test.cpp.o.d"
  "/root/repo/tests/analysis/validation_test.cpp" "tests/CMakeFiles/vabi_tests.dir/analysis/validation_test.cpp.o" "gcc" "tests/CMakeFiles/vabi_tests.dir/analysis/validation_test.cpp.o.d"
  "/root/repo/tests/analysis/variance_breakdown_test.cpp" "tests/CMakeFiles/vabi_tests.dir/analysis/variance_breakdown_test.cpp.o" "gcc" "tests/CMakeFiles/vabi_tests.dir/analysis/variance_breakdown_test.cpp.o.d"
  "/root/repo/tests/analysis/yield_test.cpp" "tests/CMakeFiles/vabi_tests.dir/analysis/yield_test.cpp.o" "gcc" "tests/CMakeFiles/vabi_tests.dir/analysis/yield_test.cpp.o.d"
  "/root/repo/tests/core/backtrace_test.cpp" "tests/CMakeFiles/vabi_tests.dir/core/backtrace_test.cpp.o" "gcc" "tests/CMakeFiles/vabi_tests.dir/core/backtrace_test.cpp.o.d"
  "/root/repo/tests/core/cost_bounded_test.cpp" "tests/CMakeFiles/vabi_tests.dir/core/cost_bounded_test.cpp.o" "gcc" "tests/CMakeFiles/vabi_tests.dir/core/cost_bounded_test.cpp.o.d"
  "/root/repo/tests/core/equivalence_test.cpp" "tests/CMakeFiles/vabi_tests.dir/core/equivalence_test.cpp.o" "gcc" "tests/CMakeFiles/vabi_tests.dir/core/equivalence_test.cpp.o.d"
  "/root/repo/tests/core/four_param_test.cpp" "tests/CMakeFiles/vabi_tests.dir/core/four_param_test.cpp.o" "gcc" "tests/CMakeFiles/vabi_tests.dir/core/four_param_test.cpp.o.d"
  "/root/repo/tests/core/ordering_property_test.cpp" "tests/CMakeFiles/vabi_tests.dir/core/ordering_property_test.cpp.o" "gcc" "tests/CMakeFiles/vabi_tests.dir/core/ordering_property_test.cpp.o.d"
  "/root/repo/tests/core/pruning_test.cpp" "tests/CMakeFiles/vabi_tests.dir/core/pruning_test.cpp.o" "gcc" "tests/CMakeFiles/vabi_tests.dir/core/pruning_test.cpp.o.d"
  "/root/repo/tests/core/statistical_dp_test.cpp" "tests/CMakeFiles/vabi_tests.dir/core/statistical_dp_test.cpp.o" "gcc" "tests/CMakeFiles/vabi_tests.dir/core/statistical_dp_test.cpp.o.d"
  "/root/repo/tests/core/van_ginneken_test.cpp" "tests/CMakeFiles/vabi_tests.dir/core/van_ginneken_test.cpp.o" "gcc" "tests/CMakeFiles/vabi_tests.dir/core/van_ginneken_test.cpp.o.d"
  "/root/repo/tests/core/wire_sizing_dp_test.cpp" "tests/CMakeFiles/vabi_tests.dir/core/wire_sizing_dp_test.cpp.o" "gcc" "tests/CMakeFiles/vabi_tests.dir/core/wire_sizing_dp_test.cpp.o.d"
  "/root/repo/tests/device/characterize_test.cpp" "tests/CMakeFiles/vabi_tests.dir/device/characterize_test.cpp.o" "gcc" "tests/CMakeFiles/vabi_tests.dir/device/characterize_test.cpp.o.d"
  "/root/repo/tests/device/transistor_model_test.cpp" "tests/CMakeFiles/vabi_tests.dir/device/transistor_model_test.cpp.o" "gcc" "tests/CMakeFiles/vabi_tests.dir/device/transistor_model_test.cpp.o.d"
  "/root/repo/tests/integration/determinism_test.cpp" "tests/CMakeFiles/vabi_tests.dir/integration/determinism_test.cpp.o" "gcc" "tests/CMakeFiles/vabi_tests.dir/integration/determinism_test.cpp.o.d"
  "/root/repo/tests/integration/end_to_end_test.cpp" "tests/CMakeFiles/vabi_tests.dir/integration/end_to_end_test.cpp.o" "gcc" "tests/CMakeFiles/vabi_tests.dir/integration/end_to_end_test.cpp.o.d"
  "/root/repo/tests/layout/geometry_test.cpp" "tests/CMakeFiles/vabi_tests.dir/layout/geometry_test.cpp.o" "gcc" "tests/CMakeFiles/vabi_tests.dir/layout/geometry_test.cpp.o.d"
  "/root/repo/tests/layout/grid_test.cpp" "tests/CMakeFiles/vabi_tests.dir/layout/grid_test.cpp.o" "gcc" "tests/CMakeFiles/vabi_tests.dir/layout/grid_test.cpp.o.d"
  "/root/repo/tests/layout/process_model_test.cpp" "tests/CMakeFiles/vabi_tests.dir/layout/process_model_test.cpp.o" "gcc" "tests/CMakeFiles/vabi_tests.dir/layout/process_model_test.cpp.o.d"
  "/root/repo/tests/layout/spatial_model_test.cpp" "tests/CMakeFiles/vabi_tests.dir/layout/spatial_model_test.cpp.o" "gcc" "tests/CMakeFiles/vabi_tests.dir/layout/spatial_model_test.cpp.o.d"
  "/root/repo/tests/stats/empirical_test.cpp" "tests/CMakeFiles/vabi_tests.dir/stats/empirical_test.cpp.o" "gcc" "tests/CMakeFiles/vabi_tests.dir/stats/empirical_test.cpp.o.d"
  "/root/repo/tests/stats/least_squares_test.cpp" "tests/CMakeFiles/vabi_tests.dir/stats/least_squares_test.cpp.o" "gcc" "tests/CMakeFiles/vabi_tests.dir/stats/least_squares_test.cpp.o.d"
  "/root/repo/tests/stats/linear_form_test.cpp" "tests/CMakeFiles/vabi_tests.dir/stats/linear_form_test.cpp.o" "gcc" "tests/CMakeFiles/vabi_tests.dir/stats/linear_form_test.cpp.o.d"
  "/root/repo/tests/stats/monte_carlo_test.cpp" "tests/CMakeFiles/vabi_tests.dir/stats/monte_carlo_test.cpp.o" "gcc" "tests/CMakeFiles/vabi_tests.dir/stats/monte_carlo_test.cpp.o.d"
  "/root/repo/tests/stats/normal_test.cpp" "tests/CMakeFiles/vabi_tests.dir/stats/normal_test.cpp.o" "gcc" "tests/CMakeFiles/vabi_tests.dir/stats/normal_test.cpp.o.d"
  "/root/repo/tests/stats/statistical_min_test.cpp" "tests/CMakeFiles/vabi_tests.dir/stats/statistical_min_test.cpp.o" "gcc" "tests/CMakeFiles/vabi_tests.dir/stats/statistical_min_test.cpp.o.d"
  "/root/repo/tests/stats/variation_space_test.cpp" "tests/CMakeFiles/vabi_tests.dir/stats/variation_space_test.cpp.o" "gcc" "tests/CMakeFiles/vabi_tests.dir/stats/variation_space_test.cpp.o.d"
  "/root/repo/tests/timing/buffer_library_test.cpp" "tests/CMakeFiles/vabi_tests.dir/timing/buffer_library_test.cpp.o" "gcc" "tests/CMakeFiles/vabi_tests.dir/timing/buffer_library_test.cpp.o.d"
  "/root/repo/tests/timing/elmore_test.cpp" "tests/CMakeFiles/vabi_tests.dir/timing/elmore_test.cpp.o" "gcc" "tests/CMakeFiles/vabi_tests.dir/timing/elmore_test.cpp.o.d"
  "/root/repo/tests/timing/wire_model_test.cpp" "tests/CMakeFiles/vabi_tests.dir/timing/wire_model_test.cpp.o" "gcc" "tests/CMakeFiles/vabi_tests.dir/timing/wire_model_test.cpp.o.d"
  "/root/repo/tests/timing/wire_sizing_test.cpp" "tests/CMakeFiles/vabi_tests.dir/timing/wire_sizing_test.cpp.o" "gcc" "tests/CMakeFiles/vabi_tests.dir/timing/wire_sizing_test.cpp.o.d"
  "/root/repo/tests/tree/benchmarks_test.cpp" "tests/CMakeFiles/vabi_tests.dir/tree/benchmarks_test.cpp.o" "gcc" "tests/CMakeFiles/vabi_tests.dir/tree/benchmarks_test.cpp.o.d"
  "/root/repo/tests/tree/generators_test.cpp" "tests/CMakeFiles/vabi_tests.dir/tree/generators_test.cpp.o" "gcc" "tests/CMakeFiles/vabi_tests.dir/tree/generators_test.cpp.o.d"
  "/root/repo/tests/tree/routing_tree_test.cpp" "tests/CMakeFiles/vabi_tests.dir/tree/routing_tree_test.cpp.o" "gcc" "tests/CMakeFiles/vabi_tests.dir/tree/routing_tree_test.cpp.o.d"
  "/root/repo/tests/tree/tree_io_test.cpp" "tests/CMakeFiles/vabi_tests.dir/tree/tree_io_test.cpp.o" "gcc" "tests/CMakeFiles/vabi_tests.dir/tree/tree_io_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/vabi_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vabi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/vabi_device.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/vabi_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/vabi_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/vabi_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/vabi_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
