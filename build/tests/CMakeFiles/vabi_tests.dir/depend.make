# Empty dependencies file for vabi_tests.
# This may be replaced when dependencies are built.
