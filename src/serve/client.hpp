// Client side of the vabi_serve wire protocol: connect/hello handshake,
// batch submission with streamed per-net results, and the reconnect story --
// exponential backoff with deterministic jitter and a bounded reconnect
// budget, resuming a torn batch from the server's session journal with zero
// completed jobs re-solved.
//
// Determinism: the backoff schedule is a pure function of retry_policy
// (jitter comes from a SplitMix64 stream over jitter_seed, never from wall
// time), so tests assert the exact delays (tests/serve/serve_client_test.cpp)
// and CI runs are reproducible.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "serve/wire.hpp"

namespace vabi::serve {

/// Reconnect/backoff policy. Attempt k (0-based) sleeps
/// delay(k) = min(max_delay_ms, base_delay_ms * multiplier^k) scaled by a
/// deterministic jitter factor in [0.5, 1.0] drawn from jitter_seed.
struct retry_policy {
  std::size_t max_attempts = 5;  ///< total connect attempts (>= 1)
  double base_delay_ms = 50.0;
  double max_delay_ms = 2000.0;
  double multiplier = 2.0;
  std::uint64_t jitter_seed = 1;
  /// Budget for retrying a typed `overloaded` reply. Admission-control
  /// rejection is not a connection failure: the session stays open and the
  /// server is healthy, just full, so these retries resubmit on the same
  /// connection after delay(k) from the schedule above and do NOT consume
  /// max_attempts (which bounds reconnects after real connection loss).
  /// 0 = return overloaded immediately, the pre-v9 behavior.
  std::size_t max_overload_retries = 3;
};

/// The delays (ms) before attempts 1..max_attempts-1 (attempt 0 is
/// immediate). Pure and deterministic; exposed for the backoff test.
std::vector<double> backoff_schedule(const retry_policy& policy);

struct client_options {
  /// Unix socket path takes precedence; otherwise 127.0.0.1:tcp_port.
  std::string unix_socket_path;
  int tcp_port = -1;
  retry_policy retry;
  /// Session token ("" = server-assigned, readable via token() after the
  /// handshake). Present the same token to resume after a crash.
  std::string token;
  /// Ask the server to restore journaled results on the first submit.
  bool resume = false;
  /// Poll timeout while waiting for a server frame.
  double io_timeout_seconds = 60.0;
};

/// What run_batch ultimately reports.
struct batch_summary {
  bool complete = false;    ///< batch_done received
  bool overloaded = false;  ///< admission-control rejection (typed)
  bool draining = false;    ///< daemon refused: drain in progress
  std::uint64_t solved = 0;
  std::uint64_t restored = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  std::size_t reconnects = 0;  ///< mid-batch reconnects that succeeded
  /// Typed-overload resubmissions used (same-connection, backoff-delayed).
  /// Counted separately from `reconnects`: an overloaded server is healthy,
  /// a torn connection is not, and each draws on its own budget.
  std::size_t overload_retries = 0;
  std::string error;           ///< "" unless the budget/session died
};

class serve_client {
 public:
  explicit serve_client(client_options opts);
  ~serve_client();

  serve_client(const serve_client&) = delete;
  serve_client& operator=(const serve_client&) = delete;

  /// Connect + hello with the full retry/backoff budget. False when the
  /// budget is exhausted (see last_error()).
  bool connect();
  /// One connection attempt, no retries (tests exercise the budget).
  bool connect_once();
  void close();
  bool connected() const { return fd_ >= 0; }

  /// Submits `submit` and streams results until batch_done. `on_result`
  /// fires once per job index, deduplicated across reconnects: when the
  /// connection tears mid-stream, the client reconnects (backoff budget),
  /// re-presents its token with resume, resubmits the identical batch, and
  /// the server restores journaled results -- re-delivered results are
  /// filtered here, so the callback sees each job exactly once.
  batch_summary run_batch(const submit_msg& submit,
                          const std::function<void(const result_msg&)>&
                              on_result = nullptr);

  /// In-band stats fetch ("" on failure; see last_error()).
  std::string fetch_stats();

  const std::string& token() const { return token_; }
  const std::string& last_error() const { return last_error_; }
  /// The raw socket, for tests that tear the connection mid-stream.
  int fd() const { return fd_; }

 private:
  bool send_message(const message& m);
  /// Blocks (bounded by io_timeout) for the next frame. False on timeout,
  /// EOF, torn read, or corrupt frame.
  bool read_message(message& out);
  bool handshake();
  void sleep_ms(double ms);

  client_options opts_;
  std::vector<double> schedule_;
  std::size_t attempts_used_ = 0;
  int fd_ = -1;
  frame_splitter in_;
  std::string token_;
  std::string last_error_;
};

}  // namespace vabi::serve
