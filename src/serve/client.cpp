#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

#include "stats/rng.hpp"
#include "testing/fault_injection.hpp"

namespace vabi::serve {

std::vector<double> backoff_schedule(const retry_policy& policy) {
  std::vector<double> delays;
  if (policy.max_attempts <= 1) return delays;
  delays.reserve(policy.max_attempts - 1);
  double base = policy.base_delay_ms;
  for (std::size_t k = 0; k + 1 < policy.max_attempts; ++k) {
    const double capped = std::min(policy.max_delay_ms, base);
    // Deterministic jitter in [0.5, 1.0): a SplitMix64 stream over the
    // seed, never wall time, so the schedule is a pure function.
    const std::uint64_t bits = stats::derive_seed(policy.jitter_seed, k);
    const double unit =
        static_cast<double>(bits >> 11) * (1.0 / 9007199254740992.0);
    delays.push_back(capped * (0.5 + 0.5 * unit));
    base *= policy.multiplier;
  }
  return delays;
}

serve_client::serve_client(client_options opts)
    : opts_(std::move(opts)),
      schedule_(backoff_schedule(opts_.retry)),
      token_(opts_.token) {}

serve_client::~serve_client() { close(); }

void serve_client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  in_ = frame_splitter{};
}

bool serve_client::connect_once() {
  close();
  int fd = -1;
  if (!opts_.unix_socket_path.empty()) {
    if (opts_.unix_socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      last_error_ = "unix socket path too long";
      return false;
    }
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      last_error_ = "socket(AF_UNIX) failed";
      return false;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, opts_.unix_socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      last_error_ = "cannot connect to " + opts_.unix_socket_path + ": " +
                    std::strerror(errno);
      ::close(fd);
      return false;
    }
  } else if (opts_.tcp_port > 0) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      last_error_ = "socket(AF_INET) failed";
      return false;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(opts_.tcp_port));
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      last_error_ = "cannot connect to 127.0.0.1:" +
                    std::to_string(opts_.tcp_port) + ": " +
                    std::strerror(errno);
      ::close(fd);
      return false;
    }
  } else {
    last_error_ = "no endpoint configured (unix_socket_path or tcp_port)";
    return false;
  }
  fd_ = fd;
  return handshake();
}

bool serve_client::handshake() {
  hello_msg hello;
  hello.token = token_;
  hello.resume = opts_.resume;
  if (!send_message(message{std::move(hello)})) return false;
  message reply;
  if (!read_message(reply)) return false;
  if (auto* ack = std::get_if<hello_ack_msg>(&reply)) {
    token_ = ack->token;
    return true;
  }
  if (auto* err = std::get_if<session_error_msg>(&reply)) {
    last_error_ = "handshake refused: " + err->detail;
  } else if (auto* over = std::get_if<overloaded_msg>(&reply)) {
    last_error_ = "server overloaded: " + over->detail;
  } else {
    last_error_ = "unexpected handshake reply";
  }
  close();
  return false;
}

void serve_client::sleep_ms(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

bool serve_client::connect() {
  // The retry budget spans the client's lifetime, not one connect() call: a
  // flapping server cannot be hammered forever by alternating
  // connect()/run_batch() reconnect loops.
  while (attempts_used_ < opts_.retry.max_attempts) {
    if (attempts_used_ > 0) sleep_ms(schedule_[attempts_used_ - 1]);
    ++attempts_used_;
    if (connect_once()) return true;
  }
  if (last_error_.empty()) last_error_ = "reconnect budget exhausted";
  return false;
}

bool serve_client::send_message(const message& m) {
  if (fd_ < 0) {
    last_error_ = "not connected";
    return false;
  }
  const std::vector<std::uint8_t> frame = encode_frame(m);
  if (!wire_write_all(fd_, frame.data(), frame.size())) {
    last_error_ = "write failed: connection lost";
    close();
    return false;
  }
  return true;
}

bool serve_client::read_message(message& out) {
  if (fd_ < 0) {
    last_error_ = "not connected";
    return false;
  }
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(opts_.io_timeout_seconds));
  for (;;) {
    std::string err;
    const decode_status st = in_.next(out, err);
    if (st == decode_status::ok) return true;
    if (st == decode_status::corrupt) {
      last_error_ = err;
      close();
      return false;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      last_error_ = "timed out waiting for server frame";
      close();
      return false;
    }
    if (testing::should_fire(testing::fault_point::wire_stall_client,
                             static_cast<std::uint64_t>(fd_))) {
      // A deliberately slow reader: let the server's backpressure build.
      sleep_ms(50.0);
    }
    pollfd p{fd_, POLLIN, 0};
    const int timeout_ms = static_cast<int>(std::min<std::int64_t>(
        1000,
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count()));
    const int rv = ::poll(&p, 1, std::max(timeout_ms, 1));
    if (rv < 0 && errno != EINTR) {
      last_error_ = "poll failed";
      close();
      return false;
    }
    if (rv <= 0) continue;
    std::uint8_t buf[65536];
    const ssize_t n = wire_read(fd_, buf, sizeof buf);
    if (n == 0) {
      last_error_ = "server closed the connection";
      close();
      return false;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;
      last_error_ = "read failed: connection lost";
      close();
      return false;
    }
    in_.feed(buf, static_cast<std::size_t>(n));
  }
}

batch_summary serve_client::run_batch(
    const submit_msg& submit,
    const std::function<void(const result_msg&)>& on_result) {
  batch_summary summary;
  std::set<std::uint64_t> seen;  // job indices already delivered

  bool first_attempt = true;
  for (;;) {
    if (!connected()) {
      const bool fresh = first_attempt && !opts_.resume && token_.empty();
      if (!fresh) opts_.resume = true;  // reconnects always resume
      if (!connect()) {
        summary.error = last_error_;
        return summary;
      }
      if (!first_attempt) ++summary.reconnects;
    }
    first_attempt = false;
    if (!send_message(message{submit})) {
      continue;  // torn on send: reconnect (budget-bounded)
    }
    bool torn = false;
    while (!torn) {
      message m;
      if (!read_message(m)) {
        torn = true;
        break;
      }
      if (auto* res = std::get_if<result_msg>(&m)) {
        if (seen.insert(res->record.job_index).second && on_result) {
          on_result(*res);
        }
      } else if (auto* done = std::get_if<batch_done_msg>(&m)) {
        summary.complete = true;
        summary.solved = done->solved;
        summary.restored = done->restored;
        summary.failed = done->failed;
        summary.cancelled = done->cancelled;
        return summary;
      } else if (auto* over = std::get_if<overloaded_msg>(&m)) {
        // A typed overload is retryable on the *same* connection: the server
        // keeps the session open after rejecting a submit, so after a
        // backoff delay the identical batch is resubmitted -- against the
        // overload budget, never the reconnect budget (the server is
        // healthy, just full).
        if (summary.overload_retries < opts_.retry.max_overload_retries) {
          const std::size_t k = summary.overload_retries++;
          const double capped = std::min(
              opts_.retry.max_delay_ms,
              opts_.retry.base_delay_ms * std::pow(opts_.retry.multiplier,
                                                   static_cast<double>(k)));
          const std::uint64_t bits =
              stats::derive_seed(opts_.retry.jitter_seed, k);
          const double unit =
              static_cast<double>(bits >> 11) * (1.0 / 9007199254740992.0);
          sleep_ms(capped * (0.5 + 0.5 * unit));
          break;  // not torn: fall out to the resubmit loop, still connected
        }
        summary.overloaded = true;
        summary.error = over->detail;
        return summary;
      } else if (auto* drain = std::get_if<draining_msg>(&m)) {
        summary.draining = true;
        summary.error = drain->detail;
        return summary;
      } else if (auto* err = std::get_if<session_error_msg>(&m)) {
        summary.error = err->detail;
        return summary;
      }
      // hello_ack / accepted / stats_reply: bookkeeping only.
    }
    // Torn mid-stream: loop back to reconnect + resume. The resubmitted
    // batch is identical, so the server's fingerprint checks admit it and
    // restore everything already journaled; `seen` filters re-deliveries.
  }
}

std::string serve_client::fetch_stats() {
  if (!connected() && !connect()) return "";
  if (!send_message(message{stats_request_msg{}})) return "";
  for (;;) {
    message m;
    if (!read_message(m)) return "";
    if (auto* reply = std::get_if<stats_reply_msg>(&m)) {
      return reply->json;
    }
    if (std::get_if<session_error_msg>(&m) != nullptr) return "";
  }
}

}  // namespace vabi::serve
