#include "serve/wire.hpp"

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "testing/fault_injection.hpp"

namespace vabi::serve {

namespace {

// Little-endian put/get helpers, same byte discipline as the journal codec.
void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back((v >> (8 * i)) & 0xffu);
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back((v >> (8 * i)) & 0xffu);
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

void put_str(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

/// Bounds-checked reader: any overrun latches fail() instead of reading out
/// of bounds, and the caller checks once at the end.
struct cursor {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t at = 0;
  bool failed = false;

  bool fail() {
    failed = true;
    return false;
  }
  bool need(std::size_t n) {
    if (failed || size - at < n) return fail();
    return true;
  }
  std::uint8_t get_u8() {
    if (!need(1)) return 0;
    return data[at++];
  }
  std::uint32_t get_u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{data[at++]} << (8 * i);
    return v;
  }
  std::uint64_t get_u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{data[at++]} << (8 * i);
    return v;
  }
  double get_f64() {
    const std::uint64_t bits = get_u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string get_str() {
    const std::uint32_t n = get_u32();
    // A string longer than the frame it lives in is garbage, not a string.
    if (!need(n)) return {};
    std::string s(reinterpret_cast<const char*>(data + at), n);
    at += n;
    return s;
  }
  bool done() const { return !failed && at == size; }
};

void put_options(std::vector<std::uint8_t>& out, const wire_options& o) {
  put_u8(out, o.rule);
  put_u8(out, o.mode);
  put_u8(out, o.profile);
  put_f64(out, o.pbar);
  put_f64(out, o.yield_percentile);
  put_f64(out, o.driver_res_ohm);
  put_f64(out, o.per_net_deadline_seconds);
  put_u8(out, o.degrade);
}

bool get_options(cursor& c, wire_options& o) {
  o.rule = c.get_u8();
  o.mode = c.get_u8();
  o.profile = c.get_u8();
  o.pbar = c.get_f64();
  o.yield_percentile = c.get_f64();
  o.driver_res_ohm = c.get_f64();
  o.per_net_deadline_seconds = c.get_f64();
  o.degrade = c.get_u8();
  return !c.failed;
}

std::vector<std::uint8_t> encode_payload(const message& m) {
  std::vector<std::uint8_t> p;
  put_u8(p, static_cast<std::uint8_t>(kind_of(m)));
  std::visit(
      [&p](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, hello_msg>) {
          put_u32(p, v.version);
          put_str(p, v.token);
          put_u8(p, v.resume ? 1 : 0);
        } else if constexpr (std::is_same_v<T, submit_msg>) {
          put_u64(p, v.batch_seed);
          put_u8(p, v.priority);
          put_u64(p, v.session_deadline_ms);
          put_options(p, v.options);
          put_u32(p, static_cast<std::uint32_t>(v.jobs.size()));
          for (const wire_job& j : v.jobs) {
            put_u8(p, j.has_tree ? 1 : 0);
            if (j.has_tree) {
              put_str(p, j.tree_text);
            } else {
              put_u64(p, j.num_sinks);
              put_f64(p, j.die_side_um);
              put_f64(p, j.criticality_balance);
            }
          }
        } else if constexpr (std::is_same_v<T, cancel_msg> ||
                             std::is_same_v<T, stats_request_msg> ||
                             std::is_same_v<T, bye_msg>) {
          // kind byte only
        } else if constexpr (std::is_same_v<T, hello_ack_msg>) {
          put_u32(p, v.version);
          put_str(p, v.token);
        } else if constexpr (std::is_same_v<T, accepted_msg>) {
          put_u64(p, v.num_jobs);
          put_u64(p, v.restored);
        } else if constexpr (std::is_same_v<T, overloaded_msg>) {
          put_u64(p, v.queued);
          put_u64(p, v.capacity);
          put_str(p, v.detail);
        } else if constexpr (std::is_same_v<T, result_msg>) {
          put_u8(p, v.resumed ? 1 : 0);
          put_u64(p, v.cache_hits);
          put_u64(p, v.cache_misses);
          put_u64(p, v.nodes_reused);
          const std::vector<std::uint8_t> rec =
              core::journal_detail::encode_record_payload(v.record);
          put_u32(p, static_cast<std::uint32_t>(rec.size()));
          p.insert(p.end(), rec.begin(), rec.end());
        } else if constexpr (std::is_same_v<T, batch_done_msg>) {
          put_u64(p, v.solved);
          put_u64(p, v.restored);
          put_u64(p, v.failed);
          put_u64(p, v.cancelled);
          put_f64(p, v.wall_seconds);
        } else if constexpr (std::is_same_v<T, stats_reply_msg>) {
          put_str(p, v.json);
        } else if constexpr (std::is_same_v<T, session_error_msg>) {
          put_u8(p, v.code);
          put_str(p, v.detail);
        } else if constexpr (std::is_same_v<T, draining_msg>) {
          put_str(p, v.detail);
        }
      },
      m);
  return p;
}

bool decode_payload(const std::uint8_t* data, std::size_t size, message& out,
                    std::string& error) {
  cursor c{data, size};
  const std::uint8_t kind = c.get_u8();
  switch (static_cast<msg_kind>(kind)) {
    case msg_kind::hello: {
      hello_msg v;
      v.version = c.get_u32();
      v.token = c.get_str();
      v.resume = c.get_u8() != 0;
      out = std::move(v);
      break;
    }
    case msg_kind::submit: {
      submit_msg v;
      v.batch_seed = c.get_u64();
      v.priority = c.get_u8();
      v.session_deadline_ms = c.get_u64();
      if (!get_options(c, v.options)) break;
      const std::uint32_t n = c.get_u32();
      // A job count that cannot fit in the remaining bytes (each job costs
      // at least its tag byte) is framing damage, not a huge batch.
      if (c.failed || n > size - c.at) {
        c.fail();
        break;
      }
      v.jobs.reserve(n);
      for (std::uint32_t i = 0; i < n && !c.failed; ++i) {
        wire_job j;
        j.has_tree = c.get_u8() != 0;
        if (j.has_tree) {
          j.tree_text = c.get_str();
        } else {
          j.num_sinks = c.get_u64();
          j.die_side_um = c.get_f64();
          j.criticality_balance = c.get_f64();
        }
        v.jobs.push_back(std::move(j));
      }
      out = std::move(v);
      break;
    }
    case msg_kind::cancel:
      out = cancel_msg{};
      break;
    case msg_kind::stats_request:
      out = stats_request_msg{};
      break;
    case msg_kind::bye:
      out = bye_msg{};
      break;
    case msg_kind::hello_ack: {
      hello_ack_msg v;
      v.version = c.get_u32();
      v.token = c.get_str();
      out = std::move(v);
      break;
    }
    case msg_kind::accepted: {
      accepted_msg v;
      v.num_jobs = c.get_u64();
      v.restored = c.get_u64();
      out = v;
      break;
    }
    case msg_kind::overloaded: {
      overloaded_msg v;
      v.queued = c.get_u64();
      v.capacity = c.get_u64();
      v.detail = c.get_str();
      out = std::move(v);
      break;
    }
    case msg_kind::result: {
      result_msg v;
      v.resumed = c.get_u8() != 0;
      v.cache_hits = c.get_u64();
      v.cache_misses = c.get_u64();
      v.nodes_reused = c.get_u64();
      const std::uint32_t rec_len = c.get_u32();
      if (!c.need(rec_len)) break;
      if (!core::journal_detail::decode_record_payload(data + c.at, rec_len,
                                                       v.record)) {
        error = "wire: undecodable journal record in result message";
        c.fail();
        break;
      }
      c.at += rec_len;
      out = std::move(v);
      break;
    }
    case msg_kind::batch_done: {
      batch_done_msg v;
      v.solved = c.get_u64();
      v.restored = c.get_u64();
      v.failed = c.get_u64();
      v.cancelled = c.get_u64();
      v.wall_seconds = c.get_f64();
      out = v;
      break;
    }
    case msg_kind::stats_reply: {
      stats_reply_msg v;
      v.json = c.get_str();
      out = std::move(v);
      break;
    }
    case msg_kind::session_error: {
      session_error_msg v;
      v.code = c.get_u8();
      v.detail = c.get_str();
      out = std::move(v);
      break;
    }
    case msg_kind::draining: {
      draining_msg v;
      v.detail = c.get_str();
      out = std::move(v);
      break;
    }
    default:
      error = "wire: unknown message kind 0x" + [kind] {
        char buf[8];
        std::snprintf(buf, sizeof buf, "%02x", kind);
        return std::string(buf);
      }();
      return false;
  }
  if (c.failed || !c.done()) {
    if (error.empty()) {
      error = std::string("wire: truncated or oversized payload for ") +
              to_string(static_cast<msg_kind>(kind)) + " message";
    }
    return false;
  }
  return true;
}

}  // namespace

const char* to_string(msg_kind kind) {
  switch (kind) {
    case msg_kind::hello:
      return "hello";
    case msg_kind::submit:
      return "submit";
    case msg_kind::cancel:
      return "cancel";
    case msg_kind::stats_request:
      return "stats_request";
    case msg_kind::bye:
      return "bye";
    case msg_kind::hello_ack:
      return "hello_ack";
    case msg_kind::accepted:
      return "accepted";
    case msg_kind::overloaded:
      return "overloaded";
    case msg_kind::result:
      return "result";
    case msg_kind::batch_done:
      return "batch_done";
    case msg_kind::stats_reply:
      return "stats_reply";
    case msg_kind::session_error:
      return "session_error";
    case msg_kind::draining:
      return "draining";
  }
  return "?";
}

msg_kind kind_of(const message& m) {
  return std::visit(
      [](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, hello_msg>) return msg_kind::hello;
        if constexpr (std::is_same_v<T, submit_msg>) return msg_kind::submit;
        if constexpr (std::is_same_v<T, cancel_msg>) return msg_kind::cancel;
        if constexpr (std::is_same_v<T, stats_request_msg>)
          return msg_kind::stats_request;
        if constexpr (std::is_same_v<T, bye_msg>) return msg_kind::bye;
        if constexpr (std::is_same_v<T, hello_ack_msg>)
          return msg_kind::hello_ack;
        if constexpr (std::is_same_v<T, accepted_msg>)
          return msg_kind::accepted;
        if constexpr (std::is_same_v<T, overloaded_msg>)
          return msg_kind::overloaded;
        if constexpr (std::is_same_v<T, result_msg>) return msg_kind::result;
        if constexpr (std::is_same_v<T, batch_done_msg>)
          return msg_kind::batch_done;
        if constexpr (std::is_same_v<T, stats_reply_msg>)
          return msg_kind::stats_reply;
        if constexpr (std::is_same_v<T, session_error_msg>)
          return msg_kind::session_error;
        if constexpr (std::is_same_v<T, draining_msg>)
          return msg_kind::draining;
      },
      m);
}

std::vector<std::uint8_t> encode_frame(const message& m) {
  std::vector<std::uint8_t> payload = encode_payload(m);
  std::vector<std::uint8_t> frame;
  frame.reserve(k_frame_header_bytes + payload.size());
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  put_u32(frame, core::crc32(payload.data(), payload.size()));
  if (testing::should_fire(testing::fault_point::wire_crc_flip,
                           static_cast<std::uint64_t>(kind_of(m)))) {
    if (!payload.empty()) payload.back() ^= 0x01;
  }
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

decode_result decode_frame(const std::uint8_t* data, std::size_t size) {
  decode_result r;
  if (size < k_frame_header_bytes) {
    r.status = decode_status::need_more;
    return r;
  }
  std::uint32_t len = 0;
  std::uint32_t crc = 0;
  for (int i = 0; i < 4; ++i) len |= std::uint32_t{data[i]} << (8 * i);
  for (int i = 0; i < 4; ++i) crc |= std::uint32_t{data[4 + i]} << (8 * i);
  if (len > k_max_frame_bytes) {
    r.status = decode_status::corrupt;
    r.error = "wire: frame length " + std::to_string(len) +
              " exceeds limit " + std::to_string(k_max_frame_bytes);
    dump_rejected_frame(data, size, "oversized");
    return r;
  }
  if (size < k_frame_header_bytes + len) {
    r.status = decode_status::need_more;
    return r;
  }
  const std::uint8_t* payload = data + k_frame_header_bytes;
  if (core::crc32(payload, len) != crc) {
    r.status = decode_status::corrupt;
    r.error = "wire: frame CRC mismatch";
    dump_rejected_frame(data, k_frame_header_bytes + len, "crc");
    return r;
  }
  if (len == 0) {
    r.status = decode_status::corrupt;
    r.error = "wire: empty frame has no message kind";
    dump_rejected_frame(data, k_frame_header_bytes, "empty");
    return r;
  }
  if (!decode_payload(payload, len, r.msg, r.error)) {
    r.status = decode_status::corrupt;
    dump_rejected_frame(data, k_frame_header_bytes + len, "payload");
    return r;
  }
  r.status = decode_status::ok;
  r.consumed = k_frame_header_bytes + len;
  return r;
}

void frame_splitter::feed(const void* data, std::size_t n) {
  // Compact once the consumed prefix dominates, so a long-lived session
  // does not grow its buffer without bound.
  if (at_ > 0 && at_ >= buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(at_));
    at_ = 0;
  }
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), bytes, bytes + n);
}

decode_status frame_splitter::next(message& out, std::string& error) {
  decode_result r = decode_frame(buf_.data() + at_, buf_.size() - at_);
  if (r.status == decode_status::ok) {
    out = std::move(r.msg);
    at_ += r.consumed;
  } else if (r.status == decode_status::corrupt) {
    error = std::move(r.error);
  }
  return r.status;
}

void dump_rejected_frame(const void* data, std::size_t size,
                         const char* reason) {
  const char* dir = std::getenv("VABI_FRAME_DUMP_DIR");
  if (dir == nullptr || dir[0] == '\0') return;
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
  const std::string path = std::string(dir) + "/frame-" + std::to_string(n) +
                           "-" + reason + ".bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return;
  if (size > 0) (void)std::fwrite(data, 1, size, f);
  (void)std::fclose(f);
}

ssize_t wire_read(int fd, void* buf, std::size_t n) {
  ssize_t got;
  do {
    got = ::read(fd, buf, n);
  } while (got < 0 && errno == EINTR);
  if (got > 1 &&
      testing::should_fire(testing::fault_point::wire_short_read,
                           static_cast<std::uint64_t>(fd))) {
    got /= 2;  // the rest of the bytes never arrive: a torn read
  }
  return got;
}

bool wire_write_all(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  std::size_t left = n;
  if (n > 1 &&
      testing::should_fire(testing::fault_point::wire_short_write,
                           static_cast<std::uint64_t>(fd))) {
    // Deliver half the bytes, then behave like the peer vanished.
    std::size_t half = n / 2;
    while (half > 0) {
      const ssize_t put = ::write(fd, p, half);
      if (put < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      p += put;
      half -= static_cast<std::size_t>(put);
    }
    return false;
  }
  while (left > 0) {
    const ssize_t put = ::write(fd, p, left);
    if (put < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += put;
    left -= static_cast<std::size_t>(put);
  }
  return true;
}

}  // namespace vabi::serve
