#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

#include "analysis/yield.hpp"
#include "core/journal.hpp"
#include "core/parallel.hpp"
#include "serve/wire.hpp"
#include "stats/rng.hpp"
#include "testing/fault_injection.hpp"
#include "timing/buffer_library.hpp"
#include "tree/tree_io.hpp"

namespace vabi::serve {

namespace {

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point t0) {
  return std::chrono::duration<double>(clock_type::now() - t0).count();
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Tokens become journal filenames; anything outside this alphabet is
/// rejected at hello (no path traversal through a session token).
bool valid_token(const std::string& token) {
  if (token.empty() || token.size() > 64) return false;
  for (char c : token) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

std::string map_wire_options(const wire_options& w, core::stat_options& out,
                             layout::process_model_config& model) {
  if (w.rule > 2) return "unknown pruning rule " + std::to_string(w.rule);
  if (w.mode > 2) return "unknown variation mode " + std::to_string(w.mode);
  if (w.profile > 1) {
    return "unknown spatial profile " + std::to_string(w.profile);
  }
  if (w.degrade > 2) {
    return "unknown degrade policy " + std::to_string(w.degrade);
  }
  out = core::stat_options{};
  out.library = timing::standard_library();
  out.driver_res_ohm = w.driver_res_ohm;
  out.rule = static_cast<core::pruning_kind>(w.rule);
  out.two_param.p_load = w.pbar;
  out.two_param.p_rat = w.pbar;
  out.root_percentile = w.yield_percentile;
  out.selection_percentile = w.yield_percentile;
  if (out.rule == core::pruning_kind::four_param) {
    out.max_list_size = 200000;
    out.max_wall_seconds = 300.0;
  }
  if (w.per_net_deadline_seconds > 0.0) {
    out.max_wall_seconds = w.per_net_deadline_seconds;
  }
  out.degrade = static_cast<core::degrade_policy>(w.degrade);
  model = layout::process_model_config{};
  model.mode = w.mode == 0   ? layout::nom_mode()
               : w.mode == 1 ? layout::d2d_mode()
                             : layout::wid_mode();
  model.spatial.profile = w.profile == 0
                              ? layout::spatial_profile::homogeneous
                              : layout::spatial_profile::heterogeneous;
  return "";
}

// ---------------------------------------------------------------------------
// impl
// ---------------------------------------------------------------------------

struct solver_daemon::impl {
  /// One admitted batch. Outlives its connection: a torn session leaves the
  /// batch draining (cancelled) with its journal intact, which is what a
  /// reconnect resumes from.
  struct session_batch {
    std::string token;
    std::uint8_t priority = 1;
    std::optional<std::uint64_t> batch_seed;
    std::vector<core::batch_job> jobs;
    /// Owns the trees of explicit-tree wire jobs (batch_job borrows).
    std::vector<std::unique_ptr<tree::routing_tree>> owned_trees;
    std::vector<std::uint64_t> fingerprints;
    std::unique_ptr<core::journal_writer> writer;
    core::cancel_token cancel;
    clock_type::time_point started;
    // All guarded by the daemon mutex.
    std::size_t remaining = 0;
    std::uint64_t solved = 0;
    std::uint64_t restored = 0;
    std::uint64_t failed = 0;
    std::uint64_t cancelled = 0;
  };

  struct session {
    std::uint64_t sid = 0;
    int fd = -1;
    bool greeted = false;
    bool resume_requested = false;
    std::string token;
    frame_splitter in;
    // Output: bounded buffer + parked overflow (backpressure).
    std::deque<std::vector<std::uint8_t>> out;
    std::size_t out_off = 0;    ///< bytes of out.front() already written
    std::size_t out_bytes = 0;  ///< total bytes queued in `out`
    std::deque<std::vector<std::uint8_t>> parked;
    bool stalled = false;
    clock_type::time_point stall_since;
    bool closing = false;  ///< flush `out`, then close
    bool deadline_reported = false;
    bool has_deadline = false;
    clock_type::time_point deadline;
    std::shared_ptr<session_batch> batch;
    /// A resubmit waiting for this token's previous batch to drain.
    std::optional<submit_msg> pending_submit;
  };

  struct pending_job {
    std::uint8_t priority = 1;
    std::uint64_t seq = 0;
    std::shared_ptr<session_batch> batch;
    std::size_t index = 0;
  };
  struct pending_cmp {
    bool operator()(const pending_job& a, const pending_job& b) const {
      if (a.priority != b.priority) return a.priority < b.priority;
      return a.seq > b.seq;  // FIFO within a priority level
    }
  };

  explicit impl(serve_options o) : opts(std::move(o)), pool(opts.num_threads) {}

  serve_options opts;
  stats_store stats;

  mutable std::mutex mu;
  std::condition_variable drain_cv;
  bool draining = false;
  bool stopping = false;
  bool started = false;

  int wake_r = -1;
  int wake_w = -1;
  int unix_fd = -1;
  int tcp_fd = -1;
  int tcp_port = -1;

  std::map<std::uint64_t, std::unique_ptr<session>> sessions;
  std::unordered_map<std::string, std::uint64_t> token_to_sid;
  std::unordered_map<std::string, std::shared_ptr<session_batch>> batches;
  std::priority_queue<pending_job, std::vector<pending_job>, pending_cmp>
      pending;
  std::size_t inflight = 0;
  std::uint64_t next_sid = 1;
  std::uint64_t next_seq = 1;
  std::uint64_t token_counter = 0;

  std::thread io;
  /// Declared after everything its tasks touch: destroyed first, so queued
  /// tasks drain while the rest of the impl is still alive.
  core::thread_pool pool;

  // -- plumbing -------------------------------------------------------------

  void wake() {
    if (wake_w < 0) return;
    const char b = 1;
    ssize_t ignored = ::write(wake_w, &b, 1);  // EAGAIN = already signaled
    (void)ignored;
  }

  void enqueue_frame_locked(session& s, std::vector<std::uint8_t> frame) {
    if (s.fd < 0) return;
    // An empty queue always admits one frame even past the cap: a single
    // frame can legitimately exceed max_output_buffer_bytes (a big canonical
    // form), and parking it with nothing in flight would deadlock the
    // session into a stall-shed.
    if (!s.stalled &&
        (s.out.empty() ||
         s.out_bytes + frame.size() <= opts.max_output_buffer_bytes)) {
      s.out_bytes += frame.size();
      s.out.push_back(std::move(frame));
    } else {
      if (!s.stalled) {
        s.stalled = true;
        s.stall_since = clock_type::now();
      }
      s.parked.push_back(std::move(frame));
    }
    wake();
  }

  void send_locked(session& s, const message& m) {
    enqueue_frame_locked(s, encode_frame(m));
  }

  session* session_for_token_locked(const std::string& token) {
    auto it = token_to_sid.find(token);
    if (it == token_to_sid.end()) return nullptr;
    auto sit = sessions.find(it->second);
    return sit == sessions.end() ? nullptr : sit->second.get();
  }

  enum class close_reason { normal, shed, torn };

  void close_session_locked(std::uint64_t sid, close_reason reason) {
    auto it = sessions.find(sid);
    if (it == sessions.end()) return;
    session& s = *it->second;
    if (s.fd >= 0) {
      ::close(s.fd);
      s.fd = -1;
    }
    if (!s.token.empty()) {
      auto tit = token_to_sid.find(s.token);
      if (tit != token_to_sid.end() && tit->second == sid) {
        token_to_sid.erase(tit);
      }
      if (reason == close_reason::shed) {
        stats.on_session_shed(s.token);
      } else if (s.greeted) {
        stats.on_session_closed(s.token);
      }
    }
    // A gone client gets no more results: cancel what its batch has not
    // finished. Completed jobs are already journaled; cancelled ones are
    // not, so a reconnect restores the former and re-solves only the rest.
    if (s.batch != nullptr && s.batch->remaining > 0) {
      s.batch->cancel.request_stop();
    }
    sessions.erase(it);
  }

  // -- result flow ----------------------------------------------------------

  void deliver_result_locked(const std::shared_ptr<session_batch>& b,
                             const core::journal_record& rec, bool resumed,
                             std::uint64_t cache_hits,
                             std::uint64_t cache_misses,
                             std::uint64_t nodes_reused) {
    session* s = session_for_token_locked(b->token);
    if (s == nullptr || s->batch != b) return;
    result_msg m;
    m.resumed = resumed;
    m.record = rec;
    m.cache_hits = cache_hits;
    m.cache_misses = cache_misses;
    m.nodes_reused = nodes_reused;
    send_locked(*s, message{std::move(m)});
    if (testing::should_fire(testing::fault_point::wire_drop_session,
                             rec.job_index)) {
      close_session_locked(s->sid, close_reason::torn);
    }
  }

  void finish_batch_locked(const std::shared_ptr<session_batch>& b) {
    if (b->writer != nullptr) b->writer->flush();
    if (session* s = session_for_token_locked(b->token);
        s != nullptr && s->batch == b) {
      batch_done_msg done;
      done.solved = b->solved;
      done.restored = b->restored;
      done.failed = b->failed;
      done.cancelled = b->cancelled;
      done.wall_seconds = seconds_since(b->started);
      send_locked(*s, message{done});
    }
    auto it = batches.find(b->token);
    if (it != batches.end() && it->second == b) batches.erase(it);
    drain_cv.notify_all();
  }

  void dispatch_locked() {
    while (inflight < pool.size() && !pending.empty()) {
      pending_job pj = pending.top();
      pending.pop();
      if (pj.batch->cancel.stop_requested()) {
        // Never started: complete inline as cancelled (not journaled, so a
        // resume re-solves it).
        core::journal_record rec;
        rec.job_index = pj.index;
        rec.fingerprint = pj.batch->fingerprints[pj.index];
        rec.ok = false;
        rec.code = core::solve_code::cancelled;
        rec.detail = "cancelled before start";
        ++pj.batch->cancelled;
        deliver_result_locked(pj.batch, rec, false, 0, 0, 0);
        if (--pj.batch->remaining == 0) finish_batch_locked(pj.batch);
        continue;
      }
      ++inflight;
      pool.submit([this, b = pj.batch, i = pj.index] { run_job(b, i); });
    }
    stats.set_queue_depth(pending.size() + inflight);
  }

  /// Pool-worker body: solve job i of batch b and hand the outcome back.
  /// Mirrors batch_solver::solve_outcomes' isolation guarantees -- nothing
  /// the job does escapes the worker.
  void run_job(const std::shared_ptr<session_batch>& b, std::size_t i) {
    const clock_type::time_point t0 = clock_type::now();
    core::journal_record rec;
    rec.job_index = i;
    rec.fingerprint = b->fingerprints[i];
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t nodes_reused = 0;
    double yield = -1.0;  // < 0: no yield figure (failed/cancelled jobs)
    try {
      if (b->cancel.stop_requested()) {
        rec.ok = false;
        rec.code = core::solve_code::cancelled;
        rec.detail = "cancelled before start";
      } else {
        core::prepared_job setup =
            core::prepare_batch_job(b->jobs[i], i, b->batch_seed);
        auto solved = core::solve_statistical_insertion(
            *setup.net, *setup.model, b->jobs[i].options, &b->cancel);
        if (solved.ok()) {
          cache_hits = solved->stats.cache_hits;
          cache_misses = solved->stats.cache_misses;
          nodes_reused = solved->stats.nodes_reused;
          rec.ok = true;
          rec.num_sources = setup.model->space().size();
          rec.result = std::move(*solved);
          rec.result.root_rat.own_terms();
          // Paper Section-5.3 yield convention, self-contained per job: the
          // probability the root RAT clears its own mean relaxed by 10%.
          yield = analysis::timing_yield(
              rec.result.root_rat, setup.model->space(),
              analysis::target_rat_from_mean(rec.result.root_rat.nominal()));
        } else {
          rec.ok = false;
          rec.code = solved.error().code;
          rec.error_node = solved.error().node;
          rec.detail = solved.error().detail;
        }
      }
    } catch (const std::bad_alloc&) {
      rec.ok = false;
      rec.code = core::solve_code::memory_cap;
      rec.detail = "allocation failed preparing job";
    } catch (const std::exception& e) {
      rec.ok = false;
      rec.code = core::solve_code::internal;
      rec.detail = e.what();
    } catch (...) {
      rec.ok = false;
      rec.code = core::solve_code::internal;
      rec.detail = "unknown exception";
    }
    const double latency_ms = seconds_since(t0) * 1e3;

    std::lock_guard lk(mu);
    --inflight;
    const bool was_cancelled =
        !rec.ok && rec.code == core::solve_code::cancelled;
    if (!was_cancelled && b->writer != nullptr) b->writer->append(rec);
    if (rec.ok) {
      ++b->solved;
    } else if (was_cancelled) {
      ++b->cancelled;
    } else {
      ++b->failed;
    }
    stats.on_job_done(b->token, rec.ok, latency_ms, cache_hits, cache_misses,
                      nodes_reused, yield);
    deliver_result_locked(b, rec, false, cache_hits, cache_misses,
                          nodes_reused);
    if (--b->remaining == 0) finish_batch_locked(b);
    dispatch_locked();
    wake();
    drain_cv.notify_all();
  }

  // -- admission ------------------------------------------------------------

  std::string journal_path_for(const std::string& token) const {
    if (opts.journal_dir.empty()) return "";
    return opts.journal_dir + "/" + token + ".vjl";
  }

  void reply_error_locked(session& s, core::solve_code code,
                          std::string detail) {
    session_error_msg e;
    e.code = static_cast<std::uint8_t>(code);
    e.detail = std::move(detail);
    send_locked(s, message{std::move(e)});
  }

  void handle_submit_locked(session& s, submit_msg m) {
    if (draining) {
      send_locked(s, message{draining_msg{"daemon is draining"}});
      return;
    }
    if (s.batch != nullptr && s.batch->remaining > 0) {
      reply_error_locked(s, core::solve_code::invalid_options,
                         "session already has a batch in flight");
      return;
    }
    if (m.jobs.empty()) {
      reply_error_locked(s, core::solve_code::invalid_options,
                         "submit carries no jobs");
      return;
    }
    // A reconnect whose previous incarnation still has jobs in flight:
    // cancel the orphan and park the submit until it drains, so the journal
    // is quiescent before we read it back.
    if (auto it = batches.find(s.token);
        it != batches.end() && it->second->remaining > 0) {
      it->second->cancel.request_stop();
      s.pending_submit = std::move(m);
      dispatch_locked();  // skim already-cancelled pending entries
      return;
    }
    if (opts.max_queued_jobs > 0 &&
        pending.size() + inflight + m.jobs.size() > opts.max_queued_jobs) {
      stats.on_overload_rejection();
      overloaded_msg o;
      o.queued = pending.size() + inflight;
      o.capacity = opts.max_queued_jobs;
      o.detail = "job queue full; retry with backoff";
      send_locked(s, message{std::move(o)});
      return;
    }

    auto b = std::make_shared<session_batch>();
    b->token = s.token;
    b->priority = m.priority;
    b->batch_seed = m.batch_seed;
    b->started = clock_type::now();

    core::stat_options options;
    layout::process_model_config model_config;
    if (std::string err = map_wire_options(m.options, options, model_config);
        !err.empty()) {
      reply_error_locked(s, core::solve_code::invalid_options, std::move(err));
      return;
    }
    b->jobs.reserve(m.jobs.size());
    for (std::size_t i = 0; i < m.jobs.size(); ++i) {
      const wire_job& wj = m.jobs[i];
      core::batch_job job;
      job.options = options;
      job.model = model_config;
      if (wj.has_tree) {
        try {
          b->owned_trees.push_back(std::make_unique<tree::routing_tree>(
              tree::read_tree_from_string(wj.tree_text)));
        } catch (const std::exception& e) {
          reply_error_locked(s, core::solve_code::invalid_tree,
                             "job " + std::to_string(i) + ": " + e.what());
          return;
        }
        job.tree = b->owned_trees.back().get();
      } else {
        tree::random_tree_options g;
        g.num_sinks = static_cast<std::size_t>(wj.num_sinks);
        g.die_side_um = wj.die_side_um;
        g.criticality_balance = wj.criticality_balance;
        g.seed = 0;  // re-derived from batch_seed at prepare/fingerprint time
        job.generate = g;
      }
      b->jobs.push_back(std::move(job));
    }

    b->fingerprints.resize(b->jobs.size());
    std::uint64_t jobs_fp = core::fnv1a_u64(b->jobs.size(), core::fnv1a_seed);
    jobs_fp = core::fnv1a_u64(*b->batch_seed, jobs_fp);
    for (std::size_t i = 0; i < b->jobs.size(); ++i) {
      b->fingerprints[i] =
          core::fingerprint_job(b->jobs[i], i, b->batch_seed);
      jobs_fp = core::fnv1a_u64(b->fingerprints[i], jobs_fp);
    }
    core::journal_header header;
    header.has_batch_seed = true;
    header.batch_seed = *b->batch_seed;
    header.num_jobs = b->jobs.size();
    header.jobs_fingerprint = jobs_fp;

    // -- resume: recover journaled results, validation mirroring
    // batch_solver::solve_journaled's --
    std::vector<std::optional<core::journal_record>> recovered(b->jobs.size());
    std::vector<core::journal_record> recovered_order;
    const std::string jpath = journal_path_for(s.token);
    if (s.resume_requested && !jpath.empty()) {
      auto read = core::read_journal(jpath);
      if (!read.ok()) {
        reply_error_locked(s, read.error().code, read.error().detail);
        return;
      }
      if (read->has_header) {
        const core::journal_header& jh = read->header;
        std::string err;
        if (jh.num_jobs != b->jobs.size()) {
          err = "journal has " + std::to_string(jh.num_jobs) +
                " jobs, resume batch has " + std::to_string(b->jobs.size());
        } else if (!jh.has_batch_seed || jh.batch_seed != *b->batch_seed) {
          err = "journal batch_seed differs from resume batch";
        } else if (jh.jobs_fingerprint != jobs_fp) {
          err =
              "journal jobs fingerprint differs: the journal was written by "
              "a run with different jobs or options";
        }
        for (auto& rec : read->records) {
          if (!err.empty()) break;
          if (rec.job_index >= b->jobs.size()) {
            err = "journal record for out-of-range job " +
                  std::to_string(rec.job_index);
          } else if (rec.fingerprint != b->fingerprints[rec.job_index]) {
            err = "journal record for job " + std::to_string(rec.job_index) +
                  " does not fingerprint-match the job being resumed";
          } else if (rec.ok || rec.code != core::solve_code::cancelled) {
            recovered[rec.job_index] = rec;
            recovered_order.push_back(std::move(rec));
          }
        }
        if (!err.empty()) {
          reply_error_locked(s, core::solve_code::journal_mismatch,
                             std::move(err));
          return;
        }
      }
    }
    if (!jpath.empty()) {
      b->writer = std::make_unique<core::journal_writer>(
          jpath, header, opts.checkpoint_every_jobs);
      for (const auto& rec : recovered_order) b->writer->restore(rec);
    }

    // -- admit --------------------------------------------------------------
    s.batch = b;
    batches[s.token] = b;
    if (m.session_deadline_ms > 0) {
      s.has_deadline = true;
      s.deadline_reported = false;
      s.deadline = clock_type::now() +
                   std::chrono::milliseconds(m.session_deadline_ms);
    } else {
      s.has_deadline = false;
    }
    stats.on_jobs_admitted(s.token, b->jobs.size());

    accepted_msg acc;
    acc.num_jobs = b->jobs.size();
    acc.restored = recovered_order.size();
    send_locked(s, message{acc});

    // Stream restored results first (in original journal append order --
    // the bytes are the journal's, verbatim), then queue the remainder.
    b->restored = recovered_order.size();
    if (!recovered_order.empty()) {
      stats.on_resume(s.token, recovered_order.size());
      for (const auto& rec : recovered_order) {
        deliver_result_locked(b, rec, true, 0, 0, 0);
      }
    }
    b->remaining = 0;
    for (std::size_t i = 0; i < b->jobs.size(); ++i) {
      if (recovered[i].has_value()) continue;
      ++b->remaining;
      pending.push(pending_job{b->priority, next_seq++, b, i});
    }
    if (b->remaining == 0) {
      finish_batch_locked(b);
    } else {
      dispatch_locked();
    }
  }

  void handle_message_locked(session& s, message&& m) {
    if (auto* hello = std::get_if<hello_msg>(&m)) {
      if (hello->version != k_protocol_version) {
        reply_error_locked(s, core::solve_code::invalid_options,
                           "protocol version mismatch");
        s.closing = true;
        return;
      }
      std::string token = hello->token;
      if (token.empty()) token = "s" + std::to_string(++token_counter);
      if (!valid_token(token)) {
        reply_error_locked(s, core::solve_code::invalid_options,
                           "invalid session token");
        s.closing = true;
        return;
      }
      // A reconnect takes the token over from its (dead) predecessor.
      if (session* old = session_for_token_locked(token);
          old != nullptr && old->sid != s.sid) {
        close_session_locked(old->sid, close_reason::torn);
      }
      s.token = token;
      s.greeted = true;
      s.resume_requested = hello->resume;
      token_to_sid[token] = s.sid;
      stats.on_session_opened(token);
      hello_ack_msg ack;
      ack.token = token;
      send_locked(s, message{std::move(ack)});
      return;
    }
    if (!s.greeted) {
      reply_error_locked(s, core::solve_code::invalid_options,
                         "first message must be hello");
      s.closing = true;
      return;
    }
    if (auto* submit = std::get_if<submit_msg>(&m)) {
      handle_submit_locked(s, std::move(*submit));
    } else if (std::get_if<cancel_msg>(&m) != nullptr) {
      if (s.batch != nullptr && s.batch->remaining > 0) {
        s.batch->cancel.request_stop();
      }
    } else if (std::get_if<stats_request_msg>(&m) != nullptr) {
      send_locked(s, message{stats_reply_msg{stats.to_json()}});
    } else if (std::get_if<bye_msg>(&m) != nullptr) {
      s.closing = true;
    } else {
      reply_error_locked(s, core::solve_code::invalid_options,
                         "unexpected server-side message from client");
      s.closing = true;
    }
  }

  // -- IO thread ------------------------------------------------------------

  void handle_readable_locked(session& s) {
    std::uint8_t buf[65536];
    for (;;) {
      const ssize_t n = wire_read(s.fd, buf, sizeof buf);
      if (n > 0) {
        s.in.feed(buf, static_cast<std::size_t>(n));
        if (static_cast<std::size_t>(n) < sizeof buf) break;
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      close_session_locked(s.sid, close_reason::torn);  // EOF or error
      return;
    }
    for (;;) {
      message m;
      std::string err;
      const decode_status st = s.in.next(m, err);
      if (st == decode_status::need_more) break;
      if (st == decode_status::corrupt) {
        reply_error_locked(s, core::solve_code::internal, err);
        s.closing = true;
        break;
      }
      const std::uint64_t sid = s.sid;
      handle_message_locked(s, std::move(m));
      if (sessions.find(sid) == sessions.end()) return;  // closed itself
    }
  }

  void flush_writable_locked(session& s) {
    while (!s.out.empty()) {
      const std::vector<std::uint8_t>& front = s.out.front();
      if (testing::should_fire(testing::fault_point::wire_short_write,
                               s.sid)) {
        close_session_locked(s.sid, close_reason::torn);
        return;
      }
      const ssize_t n = ::send(s.fd, front.data() + s.out_off,
                               front.size() - s.out_off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        close_session_locked(s.sid, close_reason::torn);
        return;
      }
      s.out_off += static_cast<std::size_t>(n);
      s.out_bytes -= static_cast<std::size_t>(n);
      if (s.out_off == front.size()) {
        s.out.pop_front();
        s.out_off = 0;
      }
    }
    // Un-park overflow as room frees up (an empty queue always takes one
    // frame, mirroring enqueue_frame_locked).
    while (!s.parked.empty() &&
           (s.out.empty() ||
            s.out_bytes + s.parked.front().size() <=
                opts.max_output_buffer_bytes)) {
      s.out_bytes += s.parked.front().size();
      s.out.push_back(std::move(s.parked.front()));
      s.parked.pop_front();
    }
    if (s.stalled && s.parked.empty() &&
        s.out_bytes <= opts.max_output_buffer_bytes) {
      s.stalled = false;
    }
    if (s.closing && s.out.empty() && s.parked.empty()) {
      close_session_locked(s.sid, close_reason::normal);
    }
  }

  void accept_connections_locked(int listen_fd) {
    for (;;) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;  // EAGAIN or transient error: try again next wakeup
      }
      if (testing::should_fire(testing::fault_point::wire_accept_fail,
                               static_cast<std::uint64_t>(listen_fd))) {
        ::close(fd);
        continue;
      }
      if (!set_nonblocking(fd) || sessions.size() >= opts.max_sessions) {
        if (sessions.size() >= opts.max_sessions) {
          stats.on_overload_rejection();
          overloaded_msg o;
          o.queued = sessions.size();
          o.capacity = opts.max_sessions;
          o.detail = "session limit reached";
          const std::vector<std::uint8_t> frame =
              encode_frame(message{std::move(o)});
          (void)::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
        }
        ::close(fd);
        continue;
      }
      auto s = std::make_unique<session>();
      s->sid = next_sid++;
      s->fd = fd;
      const std::uint64_t sid = s->sid;
      sessions.emplace(sid, std::move(s));
    }
  }

  void tick_locked() {
    const clock_type::time_point now = clock_type::now();
    std::vector<std::uint64_t> to_shed;
    for (auto& [sid, sp] : sessions) {
      session& s = *sp;
      if (s.has_deadline && !s.deadline_reported && now >= s.deadline &&
          s.batch != nullptr && s.batch->remaining > 0) {
        s.deadline_reported = true;
        s.batch->cancel.request_stop();
        reply_error_locked(s, core::solve_code::deadline_exceeded,
                           "session deadline expired");
        dispatch_locked();  // complete never-started pending jobs now
      }
      if (s.stalled &&
          std::chrono::duration<double>(now - s.stall_since).count() >
              opts.stall_timeout_seconds) {
        to_shed.push_back(sid);
      }
    }
    for (const std::uint64_t sid : to_shed) {
      close_session_locked(sid, close_reason::shed);
    }
    // Retry submits parked behind a draining predecessor batch.
    for (auto& [sid, sp] : sessions) {
      session& s = *sp;
      if (!s.pending_submit.has_value()) continue;
      auto it = batches.find(s.token);
      if (it != batches.end() && it->second->remaining > 0) continue;
      submit_msg m = std::move(*s.pending_submit);
      s.pending_submit.reset();
      handle_submit_locked(s, std::move(m));
    }
  }

  void io_loop() {
    std::vector<pollfd> fds;
    std::vector<std::uint64_t> fd_sids;
    for (;;) {
      fds.clear();
      fd_sids.clear();
      {
        std::lock_guard lk(mu);
        if (stopping) break;
        fds.push_back(pollfd{wake_r, POLLIN, 0});
        fd_sids.push_back(0);
        if (!draining) {
          if (unix_fd >= 0) {
            fds.push_back(pollfd{unix_fd, POLLIN, 0});
            fd_sids.push_back(0);
          }
          if (tcp_fd >= 0) {
            fds.push_back(pollfd{tcp_fd, POLLIN, 0});
            fd_sids.push_back(0);
          }
        }
        for (auto& [sid, sp] : sessions) {
          short events = POLLIN;
          if (!sp->out.empty()) events |= POLLOUT;
          fds.push_back(pollfd{sp->fd, events, 0});
          fd_sids.push_back(sid);
        }
      }
      (void)::poll(fds.data(), fds.size(), 20);
      {
        std::lock_guard lk(mu);
        if (stopping) break;
        if ((fds[0].revents & POLLIN) != 0) {
          std::uint8_t drainbuf[256];
          while (::read(wake_r, drainbuf, sizeof drainbuf) > 0) {
          }
        }
        for (std::size_t i = 1; i < fds.size(); ++i) {
          const pollfd& p = fds[i];
          if (fd_sids[i] == 0) {
            if ((p.revents & POLLIN) != 0) accept_connections_locked(p.fd);
            continue;
          }
          auto it = sessions.find(fd_sids[i]);
          if (it == sessions.end()) continue;
          session& s = *it->second;
          if ((p.revents & (POLLOUT | POLLERR | POLLHUP)) != 0) {
            if ((p.revents & (POLLERR)) != 0) {
              close_session_locked(s.sid, close_reason::torn);
              continue;
            }
            flush_writable_locked(s);
            if (sessions.find(fd_sids[i]) == sessions.end()) continue;
          }
          if ((p.revents & POLLIN) != 0) handle_readable_locked(s);
        }
        tick_locked();
        // Opportunistic flush: results enqueued by pool workers since the
        // last poll go out without waiting for POLLOUT.
        std::vector<std::uint64_t> flushable;
        for (auto& [sid, sp] : sessions) {
          if (!sp->out.empty() || sp->closing) flushable.push_back(sid);
        }
        for (const std::uint64_t sid : flushable) {
          auto it = sessions.find(sid);
          if (it != sessions.end()) flush_writable_locked(*it->second);
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// public surface
// ---------------------------------------------------------------------------

solver_daemon::solver_daemon(serve_options opts)
    : impl_(std::make_unique<impl>(std::move(opts))) {}

solver_daemon::~solver_daemon() { stop(); }

std::string solver_daemon::start() {
  impl& d = *impl_;
  if (d.started) return "daemon already started";
  int pipefd[2];
  if (::pipe(pipefd) != 0) return "pipe() failed";
  d.wake_r = pipefd[0];
  d.wake_w = pipefd[1];
  set_nonblocking(d.wake_r);
  set_nonblocking(d.wake_w);

  if (!d.opts.unix_socket_path.empty()) {
    if (d.opts.unix_socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      return "unix socket path too long";
    }
    d.unix_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (d.unix_fd < 0) return "socket(AF_UNIX) failed";
    ::unlink(d.opts.unix_socket_path.c_str());
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, d.opts.unix_socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(d.unix_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
            0 ||
        ::listen(d.unix_fd, 64) != 0) {
      return "cannot bind/listen on " + d.opts.unix_socket_path + ": " +
             std::strerror(errno);
    }
    set_nonblocking(d.unix_fd);
  }
  if (d.opts.tcp_port >= 0) {
    d.tcp_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (d.tcp_fd < 0) return "socket(AF_INET) failed";
    const int one = 1;
    ::setsockopt(d.tcp_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(d.opts.tcp_port));
    if (::bind(d.tcp_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
            0 ||
        ::listen(d.tcp_fd, 64) != 0) {
      return "cannot bind/listen on tcp port " +
             std::to_string(d.opts.tcp_port) + ": " + std::strerror(errno);
    }
    sockaddr_in bound{};
    socklen_t blen = sizeof bound;
    ::getsockname(d.tcp_fd, reinterpret_cast<sockaddr*>(&bound), &blen);
    d.tcp_port = static_cast<int>(ntohs(bound.sin_port));
    set_nonblocking(d.tcp_fd);
  }
  d.started = true;
  d.io = std::thread([this] { impl_->io_loop(); });
  return "";
}

void solver_daemon::request_drain() {
  impl& d = *impl_;
  {
    std::lock_guard lk(d.mu);
    d.draining = true;
  }
  d.wake();
  d.drain_cv.notify_all();
}

void solver_daemon::stop() {
  impl& d = *impl_;
  if (!d.started) return;
  request_drain();
  {
    std::unique_lock lk(d.mu);
    const auto drained = [&d] {
      return d.batches.empty() && d.pending.empty() && d.inflight == 0;
    };
    d.drain_cv.wait_for(
        lk, std::chrono::duration<double>(d.opts.drain_timeout_seconds),
        drained);
    if (!drained()) {
      for (auto& [token, b] : d.batches) b->cancel.request_stop();
      d.drain_cv.wait_for(lk, std::chrono::seconds(10), drained);
    }
    for (auto& [token, b] : d.batches) {
      if (b->writer != nullptr) b->writer->flush();
    }
    d.stopping = true;
  }
  d.wake();
  if (d.io.joinable()) d.io.join();
  {
    std::lock_guard lk(d.mu);
    for (auto& [sid, sp] : d.sessions) {
      if (sp->fd >= 0) ::close(sp->fd);
      sp->fd = -1;
    }
    d.sessions.clear();
    d.token_to_sid.clear();
    if (d.unix_fd >= 0) ::close(d.unix_fd);
    if (d.tcp_fd >= 0) ::close(d.tcp_fd);
    d.unix_fd = d.tcp_fd = -1;
    if (!d.opts.unix_socket_path.empty()) {
      ::unlink(d.opts.unix_socket_path.c_str());
    }
    if (d.wake_r >= 0) ::close(d.wake_r);
    if (d.wake_w >= 0) ::close(d.wake_w);
    d.wake_r = d.wake_w = -1;
    d.started = false;
  }
}

bool solver_daemon::draining() const {
  std::lock_guard lk(impl_->mu);
  return impl_->draining;
}

int solver_daemon::tcp_port() const {
  std::lock_guard lk(impl_->mu);
  return impl_->tcp_port;
}

const std::string& solver_daemon::unix_socket_path() const {
  return impl_->opts.unix_socket_path;
}

std::string solver_daemon::stats_json() const {
  return impl_->stats.to_json();
}

stats_store& solver_daemon::stats() { return impl_->stats; }

std::size_t solver_daemon::active_sessions() const {
  std::lock_guard lk(impl_->mu);
  return impl_->sessions.size();
}

std::size_t solver_daemon::queue_depth() const {
  std::lock_guard lk(impl_->mu);
  return impl_->pending.size() + impl_->inflight;
}

}  // namespace vabi::serve
