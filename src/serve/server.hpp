// vabi_serve: a long-running, fault-tolerant streaming solver daemon.
//
// The daemon accepts concurrent sessions over a unix-domain socket and/or
// TCP, runs their batches on one shared work-stealing thread_pool, and
// streams each per-net result the moment it completes -- a thin, robust
// service layer over the exact batch machinery vabi_cli uses
// (prepare_batch_job + solve_statistical_insertion + the journal codec), so
// a remotely solved job is bit-identical to a local one.
//
// Robustness model (the reason this module exists):
//
//  * Admission control -- the pending-job queue is bounded
//    (serve_options::max_queued_jobs). A submit that would overflow it gets
//    a typed `overloaded` reply carrying the current depth and capacity;
//    nothing is partially admitted.
//  * Deadlines -- each session may carry a wall deadline. Expiry arms the
//    session's cancel_token: running jobs wind down as solve_code::cancelled
//    at the next node boundary, pending ones never start. Deadlines are
//    deliberately NOT implemented by mutating stat_options::max_wall_seconds
//    (that field is fingerprinted into the journal; changing it would brick
//    reconnect/resume).
//  * Priority -- sessions submit with a priority; the daemon keeps its own
//    ordered pending queue (priority desc, admission order asc) and feeds
//    the pool at most pool-width jobs at a time, so a high-priority session
//    overtakes queued work without preemption.
//  * Backpressure -- results for a slow reader accumulate in a bounded
//    per-session output buffer. When it overflows, the overflow parks and a
//    stall clock starts; a session stalled past stall_timeout_seconds is
//    *shed* (connection closed, batch cancelled, stats.sheds++) without
//    disturbing any other session. Shed work is not lost: completed jobs
//    are already in the session journal, so the client reconnects and
//    resumes.
//  * Graceful drain -- request_drain() (wired to SIGINT/SIGTERM in
//    examples/vabi_serve.cpp) stops admitting (new submits get a typed
//    `draining` reply), lets in-flight jobs finish, flushes every session
//    journal, then stops.
//  * Crash-safe reconnect -- every session with a journal_dir is backed by
//    a journal (journal_dir/<token>.vjl) in the exact solve_journaled
//    format. A client that reconnects with its token and resubmits the same
//    batch gets journaled results restored -- fingerprint-validated, zero
//    jobs re-solved, bit-identical bytes -- and only the remainder solved.
//
// Threading: one IO thread owns every socket (poll + self-pipe wakeup);
// pool workers solve jobs and hand results back under the daemon mutex. All
// session/queue state is guarded by that one mutex -- small critical
// sections, no lock ordering, TSan-clean by construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "core/statistical_dp.hpp"
#include "layout/process_model.hpp"
#include "serve/stats_store.hpp"
#include "serve/wire.hpp"

namespace vabi::serve {

/// Deterministic wire_options -> solver-config mapping, mirroring
/// examples/vabi_cli.cpp's make_stat_options so a daemon-solved net matches
/// a CLI-solved one option-for-option -- and, because the journal
/// fingerprints cover the mapped options, journal-for-journal. Returns ""
/// on success or a description of the invalid field.
std::string map_wire_options(const wire_options& w, core::stat_options& out,
                             layout::process_model_config& model);

struct serve_options {
  /// Unix-domain listener path ("" = none). An existing socket file at this
  /// path is unlinked at start (stale from a previous run).
  std::string unix_socket_path;
  /// TCP listener on 127.0.0.1 (-1 = none, 0 = ephemeral; see tcp_port()).
  int tcp_port = -1;
  /// Worker threads of the shared pool (0 = default_thread_count()).
  std::size_t num_threads = 0;
  /// Concurrent sessions; further connections are accepted and immediately
  /// refused with a typed overloaded message.
  std::size_t max_sessions = 64;
  /// Admission bound on pending + running jobs across all sessions.
  std::size_t max_queued_jobs = 1024;
  /// Per-session output buffer cap before backpressure parking begins.
  std::size_t max_output_buffer_bytes = std::size_t{4} << 20;
  /// A session continuously stalled (output parked, nothing drained) longer
  /// than this is shed.
  double stall_timeout_seconds = 10.0;
  /// stop() waits this long for in-flight jobs before cancelling them.
  double drain_timeout_seconds = 30.0;
  /// Session-journal directory ("" = sessions are not journal-backed and
  /// reconnect/resume re-solves everything).
  std::string journal_dir;
  /// Journal checkpoint cadence (journal_writer's count trigger).
  std::size_t checkpoint_every_jobs = 8;
};

class solver_daemon {
 public:
  explicit solver_daemon(serve_options opts);
  ~solver_daemon();

  solver_daemon(const solver_daemon&) = delete;
  solver_daemon& operator=(const solver_daemon&) = delete;

  /// Binds the listeners and starts the IO thread. Returns "" on success or
  /// a description of the bind/listen failure.
  std::string start();

  /// Stops admitting work (submits are answered with `draining`); in-flight
  /// jobs keep running. Idempotent, callable from a signal-forwarding
  /// thread.
  void request_drain();

  /// request_drain + wait (bounded by drain_timeout_seconds, then cancel) +
  /// flush journals + join the IO thread. Idempotent.
  void stop();

  bool draining() const;

  /// The TCP port actually bound (meaningful after start(); resolves an
  /// ephemeral tcp_port = 0 request).
  int tcp_port() const;
  const std::string& unix_socket_path() const;

  /// Aggregated service statistics (also served in-band via stats_request).
  std::string stats_json() const;
  stats_store& stats();

  // Observability for tests.
  std::size_t active_sessions() const;
  std::size_t queue_depth() const;

 private:
  struct impl;
  std::unique_ptr<impl> impl_;
};

}  // namespace vabi::serve
