// In-service aggregating statistics for the vabi_serve daemon.
//
// The daemon records one observation per admitted job, per completed solve,
// per shed session and per admission rejection; the store aggregates them
// into global and per-session views -- counts, queue depth (current and
// peak), and p50/p99 solve latency over a bounded reservoir -- and renders
// the whole thing as one JSON document in the same style as the repo's other
// --stats-json emitters (flat keys, machine-diffable, schema-tagged).
//
// Thread safety: every method takes the store's own mutex. The store is
// deliberately independent of the daemon's session mutex so stats_json() can
// be served while a solve completion is being recorded.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace vabi::serve {

/// Latency reservoir: keeps the most recent k_capacity samples (ring) and
/// reports percentiles over what it holds. Bounded memory for a daemon that
/// serves forever.
class latency_ring {
 public:
  static constexpr std::size_t k_capacity = 4096;

  void add(double ms);
  std::size_t count() const { return total_; }
  /// Percentile by nearest-rank over a sorted copy of the ring; 0 when empty.
  double percentile(double p) const;

 private:
  std::vector<double> samples_;
  std::size_t next_ = 0;
  std::size_t total_ = 0;
};

/// Fixed-bucket histogram of per-job timing yield (schema v2 field). Twenty
/// buckets of width 0.05 over [0, 1]; out-of-range samples clamp into the
/// edge buckets. Bounded memory forever, like latency_ring.
class yield_histogram {
 public:
  static constexpr std::size_t k_buckets = 20;

  void add(double yield);
  std::uint64_t count() const { return count_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  const std::array<std::uint64_t, k_buckets>& buckets() const {
    return buckets_;
  }

 private:
  std::array<std::uint64_t, k_buckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// Per-session aggregates, keyed by session token.
struct session_stats {
  std::uint64_t jobs_admitted = 0;
  std::uint64_t jobs_completed = 0;  ///< ok results
  std::uint64_t jobs_failed = 0;     ///< typed non-ok results (incl cancelled)
  std::uint64_t jobs_restored = 0;   ///< recovered from the session journal
  // PR-7 incremental-session counters summed over the session's solves, so
  // cache effectiveness is observable through the service.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t nodes_reused = 0;
  latency_ring latency;
  yield_histogram yield;
};

class stats_store {
 public:
  void on_session_opened(const std::string& token);
  void on_session_closed(const std::string& token);
  void on_session_shed(const std::string& token);
  void on_resume(const std::string& token, std::uint64_t restored_jobs);
  void on_overload_rejection();
  void on_jobs_admitted(const std::string& token, std::uint64_t jobs);
  /// One solve finished: latency + outcome + the PR-7 session counters.
  /// `yield` is the job's timing yield in [0, 1] (histogrammed globally and
  /// per session); pass a negative value when no yield applies (failed jobs).
  void on_job_done(const std::string& token, bool ok, double latency_ms,
                   std::uint64_t cache_hits, std::uint64_t cache_misses,
                   std::uint64_t nodes_reused, double yield = -1.0);
  void set_queue_depth(std::size_t depth);

  /// The whole store as JSON (schema "vabi_serve_stats v2"): global counters,
  /// global p50/p99 latency, yield histograms, and one record per session
  /// sorted by token. v2 is a backward-compatible superset of v1: every v1
  /// field is still emitted with identical semantics; v2 adds the "yield"
  /// objects (count, mean, 20 fixed buckets over [0, 1]).
  std::string to_json() const;

  // Point reads for tests / logs.
  std::uint64_t overload_rejections() const;
  std::uint64_t sheds() const;
  std::uint64_t resumes() const;
  std::uint64_t jobs_completed() const;

 private:
  mutable std::mutex mu_;
  std::uint64_t sessions_opened_ = 0;
  std::uint64_t sessions_active_ = 0;
  std::uint64_t sessions_shed_ = 0;
  std::uint64_t resumes_ = 0;
  std::uint64_t overload_rejections_ = 0;
  std::uint64_t jobs_admitted_ = 0;
  std::uint64_t jobs_completed_ = 0;
  std::uint64_t jobs_failed_ = 0;
  std::uint64_t jobs_restored_ = 0;
  std::size_t queue_depth_ = 0;
  std::size_t peak_queue_depth_ = 0;
  latency_ring global_latency_;
  yield_histogram global_yield_;
  std::unordered_map<std::string, session_stats> sessions_;
};

}  // namespace vabi::serve
