// In-service aggregating statistics for the vabi_serve daemon.
//
// The daemon records one observation per admitted job, per completed solve,
// per shed session and per admission rejection; the store aggregates them
// into global and per-session views -- counts, queue depth (current and
// peak), and p50/p99 solve latency over a bounded reservoir -- and renders
// the whole thing as one JSON document in the same style as the repo's other
// --stats-json emitters (flat keys, machine-diffable, schema-tagged).
//
// Thread safety: every method takes the store's own mutex. The store is
// deliberately independent of the daemon's session mutex so stats_json() can
// be served while a solve completion is being recorded.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace vabi::serve {

/// Latency reservoir: keeps the most recent k_capacity samples (ring) and
/// reports percentiles over what it holds. Bounded memory for a daemon that
/// serves forever.
class latency_ring {
 public:
  static constexpr std::size_t k_capacity = 4096;

  void add(double ms);
  std::size_t count() const { return total_; }
  /// Percentile by nearest-rank over a sorted copy of the ring; 0 when empty.
  double percentile(double p) const;

 private:
  std::vector<double> samples_;
  std::size_t next_ = 0;
  std::size_t total_ = 0;
};

/// Per-session aggregates, keyed by session token.
struct session_stats {
  std::uint64_t jobs_admitted = 0;
  std::uint64_t jobs_completed = 0;  ///< ok results
  std::uint64_t jobs_failed = 0;     ///< typed non-ok results (incl cancelled)
  std::uint64_t jobs_restored = 0;   ///< recovered from the session journal
  // PR-7 incremental-session counters summed over the session's solves, so
  // cache effectiveness is observable through the service.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t nodes_reused = 0;
  latency_ring latency;
};

class stats_store {
 public:
  void on_session_opened(const std::string& token);
  void on_session_closed(const std::string& token);
  void on_session_shed(const std::string& token);
  void on_resume(const std::string& token, std::uint64_t restored_jobs);
  void on_overload_rejection();
  void on_jobs_admitted(const std::string& token, std::uint64_t jobs);
  /// One solve finished: latency + outcome + the PR-7 session counters.
  void on_job_done(const std::string& token, bool ok, double latency_ms,
                   std::uint64_t cache_hits, std::uint64_t cache_misses,
                   std::uint64_t nodes_reused);
  void set_queue_depth(std::size_t depth);

  /// The whole store as JSON (schema "vabi_serve_stats v1"): global counters,
  /// global p50/p99 latency, and one record per session sorted by token.
  std::string to_json() const;

  // Point reads for tests / logs.
  std::uint64_t overload_rejections() const;
  std::uint64_t sheds() const;
  std::uint64_t resumes() const;
  std::uint64_t jobs_completed() const;

 private:
  mutable std::mutex mu_;
  std::uint64_t sessions_opened_ = 0;
  std::uint64_t sessions_active_ = 0;
  std::uint64_t sessions_shed_ = 0;
  std::uint64_t resumes_ = 0;
  std::uint64_t overload_rejections_ = 0;
  std::uint64_t jobs_admitted_ = 0;
  std::uint64_t jobs_completed_ = 0;
  std::uint64_t jobs_failed_ = 0;
  std::uint64_t jobs_restored_ = 0;
  std::size_t queue_depth_ = 0;
  std::size_t peak_queue_depth_ = 0;
  latency_ring global_latency_;
  std::unordered_map<std::string, session_stats> sessions_;
};

}  // namespace vabi::serve
