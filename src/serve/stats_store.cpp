#include "serve/stats_store.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace vabi::serve {

void latency_ring::add(double ms) {
  if (samples_.size() < k_capacity) {
    samples_.push_back(ms);
  } else {
    samples_[next_] = ms;
    next_ = (next_ + 1) % k_capacity;
  }
  ++total_;
}

double latency_ring::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto idx = static_cast<std::size_t>(std::llround(rank));
  return sorted[std::min(idx, sorted.size() - 1)];
}

void yield_histogram::add(double yield) {
  const double clamped = std::clamp(yield, 0.0, 1.0);
  auto idx = static_cast<std::size_t>(clamped * static_cast<double>(k_buckets));
  if (idx >= k_buckets) idx = k_buckets - 1;  // yield == 1.0
  ++buckets_[idx];
  ++count_;
  sum_ += clamped;
}

void stats_store::on_session_opened(const std::string& token) {
  std::lock_guard lk(mu_);
  ++sessions_opened_;
  ++sessions_active_;
  sessions_.try_emplace(token);
}

void stats_store::on_session_closed(const std::string& token) {
  std::lock_guard lk(mu_);
  if (sessions_active_ > 0) --sessions_active_;
  sessions_.try_emplace(token);
}

void stats_store::on_session_shed(const std::string& token) {
  std::lock_guard lk(mu_);
  ++sessions_shed_;
  if (sessions_active_ > 0) --sessions_active_;
  sessions_.try_emplace(token);
}

void stats_store::on_resume(const std::string& token,
                            std::uint64_t restored_jobs) {
  std::lock_guard lk(mu_);
  ++resumes_;
  jobs_restored_ += restored_jobs;
  sessions_[token].jobs_restored += restored_jobs;
}

void stats_store::on_overload_rejection() {
  std::lock_guard lk(mu_);
  ++overload_rejections_;
}

void stats_store::on_jobs_admitted(const std::string& token,
                                   std::uint64_t jobs) {
  std::lock_guard lk(mu_);
  jobs_admitted_ += jobs;
  sessions_[token].jobs_admitted += jobs;
}

void stats_store::on_job_done(const std::string& token, bool ok,
                              double latency_ms, std::uint64_t cache_hits,
                              std::uint64_t cache_misses,
                              std::uint64_t nodes_reused, double yield) {
  std::lock_guard lk(mu_);
  session_stats& s = sessions_[token];
  if (ok) {
    ++jobs_completed_;
    ++s.jobs_completed;
  } else {
    ++jobs_failed_;
    ++s.jobs_failed;
  }
  s.cache_hits += cache_hits;
  s.cache_misses += cache_misses;
  s.nodes_reused += nodes_reused;
  s.latency.add(latency_ms);
  global_latency_.add(latency_ms);
  if (yield >= 0.0) {
    s.yield.add(yield);
    global_yield_.add(yield);
  }
}

void stats_store::set_queue_depth(std::size_t depth) {
  std::lock_guard lk(mu_);
  queue_depth_ = depth;
  peak_queue_depth_ = std::max(peak_queue_depth_, depth);
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string fmt_ms(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

std::string fmt_yield(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.4f", v);
  return buf;
}

std::string yield_json(const yield_histogram& h) {
  std::string out = "{\"count\": " + std::to_string(h.count()) +
                    ", \"mean\": " + fmt_yield(h.mean()) + ", \"buckets\": [";
  for (std::size_t i = 0; i < yield_histogram::k_buckets; ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(h.buckets()[i]);
  }
  out += "]}";
  return out;
}

}  // namespace

std::string stats_store::to_json() const {
  std::lock_guard lk(mu_);
  std::string out = "{\n";
  out += "  \"schema\": \"vabi_serve_stats v2\",\n";
  out += "  \"sessions_opened\": " + std::to_string(sessions_opened_) + ",\n";
  out += "  \"sessions_active\": " + std::to_string(sessions_active_) + ",\n";
  out += "  \"sessions_shed\": " + std::to_string(sessions_shed_) + ",\n";
  out += "  \"resumes\": " + std::to_string(resumes_) + ",\n";
  out += "  \"overload_rejections\": " + std::to_string(overload_rejections_) +
         ",\n";
  out += "  \"jobs_admitted\": " + std::to_string(jobs_admitted_) + ",\n";
  out += "  \"jobs_completed\": " + std::to_string(jobs_completed_) + ",\n";
  out += "  \"jobs_failed\": " + std::to_string(jobs_failed_) + ",\n";
  out += "  \"jobs_restored\": " + std::to_string(jobs_restored_) + ",\n";
  out += "  \"queue_depth\": " + std::to_string(queue_depth_) + ",\n";
  out +=
      "  \"peak_queue_depth\": " + std::to_string(peak_queue_depth_) + ",\n";
  out += "  \"solve_latency_ms\": {\"count\": " +
         std::to_string(global_latency_.count()) +
         ", \"p50\": " + fmt_ms(global_latency_.percentile(50.0)) +
         ", \"p99\": " + fmt_ms(global_latency_.percentile(99.0)) + "},\n";
  out += "  \"yield\": " + yield_json(global_yield_) + ",\n";
  out += "  \"sessions\": [";
  std::vector<const std::pair<const std::string, session_stats>*> rows;
  rows.reserve(sessions_.size());
  for (const auto& kv : sessions_) rows.push_back(&kv);
  std::sort(rows.begin(), rows.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  bool first = true;
  for (const auto* kv : rows) {
    const session_stats& s = kv->second;
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"token\": \"" + json_escape(kv->first) + "\"";
    out += ", \"jobs_admitted\": " + std::to_string(s.jobs_admitted);
    out += ", \"jobs_completed\": " + std::to_string(s.jobs_completed);
    out += ", \"jobs_failed\": " + std::to_string(s.jobs_failed);
    out += ", \"jobs_restored\": " + std::to_string(s.jobs_restored);
    out += ", \"cache_hits\": " + std::to_string(s.cache_hits);
    out += ", \"cache_misses\": " + std::to_string(s.cache_misses);
    out += ", \"nodes_reused\": " + std::to_string(s.nodes_reused);
    out += ", \"p50_ms\": " + fmt_ms(s.latency.percentile(50.0));
    out += ", \"p99_ms\": " + fmt_ms(s.latency.percentile(99.0));
    out += ", \"yield\": " + yield_json(s.yield);
    out += "}";
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

std::uint64_t stats_store::overload_rejections() const {
  std::lock_guard lk(mu_);
  return overload_rejections_;
}

std::uint64_t stats_store::sheds() const {
  std::lock_guard lk(mu_);
  return sessions_shed_;
}

std::uint64_t stats_store::resumes() const {
  std::lock_guard lk(mu_);
  return resumes_;
}

std::uint64_t stats_store::jobs_completed() const {
  std::lock_guard lk(mu_);
  return jobs_completed_;
}

}  // namespace vabi::serve
