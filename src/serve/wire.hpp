// Wire protocol of the vabi_serve solver daemon.
//
// Transport framing is the journal codec's, reused verbatim: every message is
// one length-prefixed CRC32-framed blob
//
//   +--------------+--------------------+--------------------------+
//   | u32 len      | u32 crc32(payload) | payload (len bytes)      |
//   +--------------+--------------------+--------------------------+
//
// whose payload starts with a one-byte message kind. All integers are
// little-endian; doubles travel as raw IEEE-754 bit patterns. Per-net results
// embed a *journal record payload* (core/journal.hpp) unchanged: the bytes a
// client receives for net i are the bytes the server's session journal holds
// for net i, which is what makes "stream now" and "restore after reconnect"
// bit-identical by construction.
//
// Robustness contract of the decoder (mirrors read_journal's):
//   - a frame longer than k_max_frame_bytes, a CRC mismatch, an unknown
//     message kind, or an undecodable payload are *corrupt* -- typed status,
//     never UB, never a throw, and never an out-of-bounds read;
//   - a prefix of a valid frame is need_more (on a stream that just means
//     the rest has not arrived yet);
//   - when VABI_FRAME_DUMP_DIR is set, every rejected frame is dumped there
//     as frame-<n>-<reason>.bin so CI can upload the exact bytes that broke
//     a session (see .github/workflows/nightly.yml).
//
// The fault-injection points wire_short_read / wire_short_write /
// wire_crc_flip (testing/fault_injection.hpp) are honored by the I/O helpers
// and the encoder, so torn connections and bit flips are deterministically
// reproducible in tests.
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "core/journal.hpp"

namespace vabi::serve {

inline constexpr std::uint32_t k_protocol_version = 1;
inline constexpr std::size_t k_frame_header_bytes = 8;  // u32 len + u32 crc
/// A length prefix beyond this is a corrupted frame, not a message (the
/// largest real message is a batch of tree texts or one canonical-form
/// result -- single-digit MB).
inline constexpr std::uint32_t k_max_frame_bytes = 1u << 24;

/// Message kinds. Low values flow client -> server, high values server ->
/// client; anything else is a corrupt frame.
enum class msg_kind : std::uint8_t {
  hello = 0x01,          ///< session handshake (token + resume intent)
  submit = 0x02,         ///< a batch of jobs to solve
  cancel = 0x03,         ///< abandon the session's in-flight batch
  stats_request = 0x04,  ///< ask for the daemon's aggregated stats JSON
  bye = 0x05,            ///< orderly goodbye

  hello_ack = 0x81,     ///< handshake reply carrying the (assigned) token
  accepted = 0x82,      ///< batch admitted; restored = journal-recovered jobs
  overloaded = 0x83,    ///< typed admission-control rejection
  result = 0x84,        ///< one per-net outcome, streamed as it completes
  batch_done = 0x85,    ///< the batch drained (counts + wall time)
  stats_reply = 0x86,   ///< stats JSON (vabi_serve_stats v2 schema)
  session_error = 0x87, ///< typed session failure (solve_code + detail)
  draining = 0x88,      ///< daemon is draining; submission refused
};

const char* to_string(msg_kind kind);

// ---------------------------------------------------------------------------
// Client -> server messages.
// ---------------------------------------------------------------------------

struct hello_msg {
  std::uint32_t version = k_protocol_version;
  /// Session token. Empty asks the server to assign one (returned in
  /// hello_ack); a client that reconnects presents its previous token.
  std::string token;
  /// Restore journaled results for `token` instead of re-solving them.
  bool resume = false;
};

/// Solver options of a batch, mapped deterministically onto stat_options by
/// the server (serve::make_batch_jobs). Deterministic mapping matters: the
/// journal fingerprints cover the mapped options, so the same submit_msg
/// resumes cleanly across reconnects and daemon restarts.
struct wire_options {
  std::uint8_t rule = 0;     ///< core::pruning_kind (0 2p / 1 4p / 2 corner)
  std::uint8_t mode = 2;     ///< 0 nom / 1 d2d / 2 wid
  std::uint8_t profile = 1;  ///< layout::spatial_profile (0 homo / 1 hetero)
  double pbar = 0.5;
  double yield_percentile = 0.05;
  double driver_res_ohm = 150.0;
  /// Per-net wall budget (stat_options::max_wall_seconds); 0 = unlimited.
  /// The *session* deadline is separate (submit_msg::session_deadline_ms)
  /// and enforced via cancel_token so it never perturbs fingerprints.
  double per_net_deadline_seconds = 0.0;
  std::uint8_t degrade = 0;  ///< core::degrade_policy
};

/// One net: either an explicit vabi-tree text or a generator spec (per-job
/// seeds derive from submit_msg::batch_seed exactly like batch_solver's).
struct wire_job {
  bool has_tree = false;
  std::string tree_text;  ///< vabi-tree v1, when has_tree
  std::uint64_t num_sinks = 0;
  double die_side_um = 8000.0;
  double criticality_balance = 0.8;
};

struct submit_msg {
  std::uint64_t batch_seed = 1;
  /// Scheduling priority of this session's jobs on the shared pool
  /// (higher runs first; ties run in admission order).
  std::uint8_t priority = 1;
  /// Wall deadline for the whole session, from admission; 0 = none. On
  /// expiry the session's cancel token is armed: running jobs wind down
  /// with solve_code::cancelled, pending ones never start.
  std::uint64_t session_deadline_ms = 0;
  wire_options options;
  std::vector<wire_job> jobs;
};

struct cancel_msg {};
struct stats_request_msg {};
struct bye_msg {};

// ---------------------------------------------------------------------------
// Server -> client messages.
// ---------------------------------------------------------------------------

struct hello_ack_msg {
  std::uint32_t version = k_protocol_version;
  std::string token;  ///< assigned (or echoed) session token
};

struct accepted_msg {
  std::uint64_t num_jobs = 0;
  std::uint64_t restored = 0;  ///< jobs recovered from the session journal
};

/// Typed admission-control rejection: the bounded job queue is full. The
/// session stays open; the client may retry with backoff.
struct overloaded_msg {
  std::uint64_t queued = 0;
  std::uint64_t capacity = 0;
  std::string detail;
};

/// One per-net outcome. `record` is the journal record, full precision --
/// including typed solve errors verbatim. The PR-7 session counters ride
/// alongside so ECO-style warm re-solves are observable through the service.
struct result_msg {
  bool resumed = false;  ///< restored from the session journal, not re-solved
  core::journal_record record;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t nodes_reused = 0;
};

struct batch_done_msg {
  std::uint64_t solved = 0;
  std::uint64_t restored = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  double wall_seconds = 0.0;
};

struct stats_reply_msg {
  std::string json;  ///< vabi_serve_stats v2 (see serve/stats_store.hpp)
};

struct session_error_msg {
  std::uint8_t code = 0;  ///< core::solve_code
  std::string detail;
};

struct draining_msg {
  std::string detail;
};

using message =
    std::variant<hello_msg, submit_msg, cancel_msg, stats_request_msg, bye_msg,
                 hello_ack_msg, accepted_msg, overloaded_msg, result_msg,
                 batch_done_msg, stats_reply_msg, session_error_msg,
                 draining_msg>;

msg_kind kind_of(const message& m);

// ---------------------------------------------------------------------------
// Codec.
// ---------------------------------------------------------------------------

/// Encodes one complete frame (len | crc | payload). The wire_crc_flip fault
/// point, when armed, flips one payload bit *after* the CRC was computed
/// over the clean bytes -- the receiver must reject the frame.
std::vector<std::uint8_t> encode_frame(const message& m);

enum class decode_status : std::uint8_t {
  ok,         ///< one message decoded; `consumed` bytes were eaten
  need_more,  ///< the buffer holds only a prefix of a frame
  corrupt,    ///< framing/CRC/kind/payload damage; `error` says what
};

struct decode_result {
  decode_status status = decode_status::need_more;
  message msg;
  std::size_t consumed = 0;
  std::string error;
};

/// Decodes the first frame of `data`. Never throws, never reads out of
/// bounds; rejected frames are dumped when VABI_FRAME_DUMP_DIR is set.
decode_result decode_frame(const std::uint8_t* data, std::size_t size);

/// Incremental deframer for a byte stream: feed() what the socket delivered,
/// next() until it returns need_more. Compacts its buffer as frames drain.
class frame_splitter {
 public:
  void feed(const void* data, std::size_t n);
  decode_status next(message& out, std::string& error);
  std::size_t buffered() const { return buf_.size() - at_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t at_ = 0;
};

/// Writes the raw bytes of a rejected frame to
/// $VABI_FRAME_DUMP_DIR/frame-<n>-<reason>.bin (no-op when the env var is
/// unset). Best effort; never throws.
void dump_rejected_frame(const void* data, std::size_t size,
                         const char* reason);

// ---------------------------------------------------------------------------
// Fault-injected socket I/O.
// ---------------------------------------------------------------------------

/// read(2) with the wire_short_read point applied: when armed, the returned
/// byte count is truncated and the connection subsequently reports EOF --
/// exactly what a peer dying mid-frame looks like.
ssize_t wire_read(int fd, void* buf, std::size_t n);

/// Writes all of [buf, buf+n) (EINTR-safe). False on error or when the
/// wire_short_write point fires (a truncated write followed by a dead peer).
bool wire_write_all(int fd, const void* buf, std::size_t n);

}  // namespace vabi::serve
