// First-order process-variation model (paper Section 3, eqs. 23-24).
//
// Assembles, for a device instance at a die location t, the canonical forms
//
//   C_b,t = C_b0 + alpha * X_t + sum_{i in I_t} gamma_i * Y_i + xi  * G
//   T_b,t = T_b0 + beta  * X_t + sum_{i in I_t} theta_i * Y_i + eta * G
//
// where X_t is the device's private random source, Y_i the spatial grid
// sources shared through the spatial_model, and G the global inter-die
// source. The experiments budget each class at 5% of the nominal value
// (Section 5.1); both characteristics of one device are driven by the *same*
// underlying sources (eqs. 19-20 share the X_i), so C and T of one buffer are
// fully correlated through X_t, Y_i and G with coefficients proportional to
// their nominals.
//
// The NOM / D2D / WID optimization modes of Section 5.3 are expressed by
// enabling subsets of the three variation classes.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "layout/spatial_model.hpp"
#include "stats/linear_form.hpp"
#include "stats/variation_space.hpp"

namespace vabi::layout {

/// Which variation classes an optimization run models.
struct variation_mode {
  bool random_device = false;
  bool inter_die = false;
  bool spatial = false;

  friend bool operator==(const variation_mode&, const variation_mode&) = default;
};

/// Deterministic: all design variables at nominal (paper's "NOM").
constexpr variation_mode nom_mode() { return {false, false, false}; }
/// Random device + die-to-die, no spatial correlation (paper's "D2D").
constexpr variation_mode d2d_mode() { return {true, true, false}; }
/// All classes including within-die spatial correlation (paper's "WID").
constexpr variation_mode wid_mode() { return {true, true, true}; }

const char* to_string(const variation_mode& mode);

/// Relative (fraction-of-nominal) one-sigma budget of one variation class.
/// The paper budgets each class at 5% of nominal at the *parameter* level
/// (Section 5.1); a device's capacitance and delay respond with different
/// sensitivities (eqs. 19-20: alpha_i vs beta_i), so the two fractions are
/// kept separately. The characterization flow (device/characterize.hpp)
/// measures them -- e.g. our 65nm-flavor model turns 5% L_eff sigma into
/// ~10.5% delay sigma but only 5% capacitance sigma.
struct class_budget {
  double cap = 0.05;    ///< sigma(C_b) / C_b0
  double delay = 0.05;  ///< sigma(T_b) / T_b0

  bool enabled() const { return cap > 0.0 || delay > 0.0; }
};

/// Budgets for the three variation classes of the model.
struct variation_budgets {
  class_budget random_device;
  class_budget inter_die;
  class_budget spatial;
};

struct process_model_config {
  variation_budgets budgets;
  variation_mode mode = wid_mode();
  spatial_model_config spatial;
};

/// The C/T canonical forms of one characterized device instance.
struct device_variation {
  stats::linear_form cap;    ///< C_b,t, in pF
  stats::linear_form delay;  ///< T_b,t, in ps
  /// The device's private random source (invalid if random variation is off).
  std::optional<stats::source_id> random_source;
};

/// Owns the variation space and the spatial model of one analysis and
/// manufactures device_variation forms on demand.
class process_model {
 public:
  process_model(bbox die, const process_model_config& config);

  const stats::variation_space& space() const { return space_; }
  stats::variation_space& space() { return space_; }
  const process_model_config& config() const { return config_; }
  const variation_mode& mode() const { return config_.mode; }
  const spatial_model& spatial() const { return *spatial_; }

  bool is_deterministic() const {
    return !config_.mode.random_device && !config_.mode.inter_die &&
           !config_.mode.spatial;
  }

  /// Builds the forms for a device with nominals (cap0 [pF], delay0 [ps]) at
  /// die location `loc`. Each call registers a fresh private random source
  /// (when random variation is enabled); callers that can re-instantiate the
  /// same physical device must cache the result.
  device_variation characterize(const point& loc, double cap0, double delay0);

  /// Global inter-die source (present even when disabled by mode; coefficient
  /// is simply not added in that case).
  stats::source_id inter_die_source() const { return inter_die_source_; }

 private:
  process_model_config config_;
  stats::variation_space space_;
  std::unique_ptr<spatial_model> spatial_;
  stats::source_id inter_die_source_ = 0;
};

}  // namespace vabi::layout
