// Intra-die spatially correlated variation model (paper Section 3.2, Fig. 4).
//
// One independent unit-variance source Y_i is registered per die-grid region.
// A device at location p is influenced by the regions within the correlation
// range; the contribution weights follow an isotropic stationary Gaussian
// taper (Section 5.1: grid side 500 um, taper ~2 mm). Weights are normalized
// so that the total spatial standard deviation seen by the device equals the
// *local* spatial budget sigma(p):
//
//   spatial part of V  =  sigma(p) * sum_i w_hat_i * Y_i,  sum_i w_hat_i^2 = 1.
//
// Two devices at distance d then have spatial correlation equal to the
// overlap of their normalized weight vectors, which decays smoothly from 1 at
// d = 0 to 0 beyond the correlation range -- exactly the qualitative picture
// of the paper's Fig. 4 (B1/B2 share regions, B1/B5 share none).
//
// The local budget sigma(p) realizes the two experimental profiles of
// Section 5.1:
//   - homogeneous:    sigma(p) = sigma_budget everywhere;
//   - heterogeneous:  sigma(p) grows linearly from the south-west corner to
//                     the north-east corner, averaging sigma_budget.
#pragma once

#include <vector>

#include "layout/grid.hpp"
#include "stats/linear_form.hpp"
#include "stats/variation_space.hpp"

namespace vabi::layout {

/// Spatial-budget profile across the die.
enum class spatial_profile {
  homogeneous,    ///< uniform budget
  heterogeneous,  ///< linear SW -> NE ramp, same die-average budget
};

const char* to_string(spatial_profile profile);

struct spatial_model_config {
  double cell_size_um = 500.0;   ///< region side (paper Section 5.1)
  double range_um = 2000.0;      ///< distance at which weights taper off
  spatial_profile profile = spatial_profile::homogeneous;
};

class spatial_model {
 public:
  /// Registers one unit-sigma spatial source per region of `die` in `space`.
  /// `space` must outlive the model.
  spatial_model(bbox die, const spatial_model_config& config,
                stats::variation_space& space);

  const die_grid& grid() const { return grid_; }
  const spatial_model_config& config() const { return config_; }

  /// Source id of region `c`'s variable Y_c.
  stats::source_id source_of(cell_index c) const { return sources_[c]; }

  /// The normalized weight vector of location `p`: pairs (source id, w_hat)
  /// with sum of squares == 1. Never empty (the containing cell always
  /// contributes).
  std::vector<stats::lf_term> normalized_weights(const point& p) const;

  /// Relative budget multiplier g(p) of the profile; die-average is 1.
  double profile_factor(const point& p) const;

  /// Adds the spatial contribution `sigma_local(p) * sum w_hat_i Y_i` to
  /// `form`, where sigma_local(p) = sigma_budget * profile_factor(p).
  void add_spatial_terms(stats::linear_form& form, const point& p,
                         double sigma_budget) const;

  /// Spatial correlation between two die locations: the inner product of
  /// their normalized weight vectors (in [0, 1] for this isotropic kernel).
  double location_correlation(const point& a, const point& b) const;

 private:
  die_grid grid_;
  spatial_model_config config_;
  std::vector<stats::source_id> sources_;  // per cell
  double gauss_scale_ = 0.0;               // kernel length scale
};

}  // namespace vabi::layout
