// Regular partition of the die into square regions.
//
// The intra-die spatial variation model (paper Section 3.2 / Fig. 4)
// associates one independent random variable Y_i with every region; devices
// are influenced by the regions near them. The paper's experiments use a
// 500 um region side (Section 5.1).
#pragma once

#include <cstddef>
#include <vector>

#include "layout/geometry.hpp"

namespace vabi::layout {

/// Index of one region of the die grid.
using cell_index = std::size_t;

class die_grid {
 public:
  /// Partitions `die` into square cells of side `cell_size_um` (the last
  /// row/column absorbs any remainder). Throws on degenerate input.
  die_grid(bbox die, double cell_size_um);

  const bbox& die() const { return die_; }
  double cell_size() const { return cell_size_; }
  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t num_cells() const { return rows_ * cols_; }

  /// Cell containing `p`; points outside the die are clamped onto it.
  cell_index cell_of(const point& p) const;

  /// Geometric center of a cell.
  point cell_center(cell_index c) const;

  /// All cells whose center lies within `radius_um` (euclidean) of `p`.
  std::vector<cell_index> cells_within(const point& p, double radius_um) const;

 private:
  bbox die_;
  double cell_size_ = 0.0;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
};

}  // namespace vabi::layout
