#include "layout/process_model.hpp"

namespace vabi::layout {

const char* to_string(const variation_mode& mode) {
  if (mode == nom_mode()) return "NOM";
  if (mode == d2d_mode()) return "D2D";
  if (mode == wid_mode()) return "WID";
  return "custom";
}

process_model::process_model(bbox die, const process_model_config& config)
    : config_(config) {
  inter_die_source_ =
      space_.add_source(stats::source_kind::inter_die, 1.0, "G");
  spatial_ = std::make_unique<spatial_model>(die, config_.spatial, space_);
}

device_variation process_model::characterize(const point& loc, double cap0,
                                             double delay0) {
  device_variation dv;
  dv.cap = stats::linear_form{cap0};
  dv.delay = stats::linear_form{delay0};

  const variation_budgets& b = config_.budgets;
  if (config_.mode.random_device && b.random_device.enabled()) {
    dv.random_source =
        space_.add_source(stats::source_kind::random_device, 1.0);
    // alpha / beta of eqs. (19)-(20): sensitivity proportional to nominal.
    dv.cap.add_term(*dv.random_source, b.random_device.cap * cap0);
    dv.delay.add_term(*dv.random_source, b.random_device.delay * delay0);
  }
  if (config_.mode.spatial && b.spatial.enabled()) {
    // gamma_i / theta_i of eqs. (21)-(22).
    spatial_->add_spatial_terms(dv.cap, loc, b.spatial.cap * cap0);
    spatial_->add_spatial_terms(dv.delay, loc, b.spatial.delay * delay0);
  }
  if (config_.mode.inter_die && b.inter_die.enabled()) {
    // xi / eta of eqs. (23)-(24).
    dv.cap.add_term(inter_die_source_, b.inter_die.cap * cap0);
    dv.delay.add_term(inter_die_source_, b.inter_die.delay * delay0);
  }
  return dv;
}

}  // namespace vabi::layout
