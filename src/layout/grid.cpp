#include "layout/grid.hpp"

#include <cmath>
#include <stdexcept>

namespace vabi::layout {

die_grid::die_grid(bbox die, double cell_size_um)
    : die_(die), cell_size_(cell_size_um) {
  if (cell_size_um <= 0.0 || die.width() <= 0.0 || die.height() <= 0.0) {
    throw std::invalid_argument("die_grid: degenerate die or cell size");
  }
  cols_ = static_cast<std::size_t>(std::ceil(die.width() / cell_size_um));
  rows_ = static_cast<std::size_t>(std::ceil(die.height() / cell_size_um));
}

cell_index die_grid::cell_of(const point& p) const {
  const point q = die_.clamp(p);
  auto col = static_cast<std::size_t>((q.x - die_.lo.x) / cell_size_);
  auto row = static_cast<std::size_t>((q.y - die_.lo.y) / cell_size_);
  if (col >= cols_) col = cols_ - 1;
  if (row >= rows_) row = rows_ - 1;
  return row * cols_ + col;
}

point die_grid::cell_center(cell_index c) const {
  const std::size_t row = c / cols_;
  const std::size_t col = c % cols_;
  return {die_.lo.x + (static_cast<double>(col) + 0.5) * cell_size_,
          die_.lo.y + (static_cast<double>(row) + 0.5) * cell_size_};
}

std::vector<cell_index> die_grid::cells_within(const point& p,
                                               double radius_um) const {
  std::vector<cell_index> out;
  if (radius_um < 0.0) return out;
  const point q = die_.clamp(p);
  // Only scan the rectangle of candidate cells around p.
  const auto lo_col = static_cast<std::ptrdiff_t>(
      std::floor((q.x - radius_um - die_.lo.x) / cell_size_));
  const auto hi_col = static_cast<std::ptrdiff_t>(
      std::floor((q.x + radius_um - die_.lo.x) / cell_size_));
  const auto lo_row = static_cast<std::ptrdiff_t>(
      std::floor((q.y - radius_um - die_.lo.y) / cell_size_));
  const auto hi_row = static_cast<std::ptrdiff_t>(
      std::floor((q.y + radius_um - die_.lo.y) / cell_size_));
  for (std::ptrdiff_t r = std::max<std::ptrdiff_t>(lo_row, 0);
       r <= hi_row && r < static_cast<std::ptrdiff_t>(rows_); ++r) {
    for (std::ptrdiff_t c = std::max<std::ptrdiff_t>(lo_col, 0);
         c <= hi_col && c < static_cast<std::ptrdiff_t>(cols_); ++c) {
      const cell_index cell =
          static_cast<cell_index>(r) * cols_ + static_cast<cell_index>(c);
      if (euclidean_distance(cell_center(cell), p) <= radius_um) {
        out.push_back(cell);
      }
    }
  }
  return out;
}

}  // namespace vabi::layout
