// Planar geometry primitives. All coordinates are micrometers.
#pragma once

#include <algorithm>
#include <cmath>

namespace vabi::layout {

/// A point on the die, in micrometers.
struct point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const point&, const point&) = default;
};

inline double manhattan_distance(const point& a, const point& b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

inline double euclidean_distance(const point& a, const point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// Axis-aligned bounding box, in micrometers.
struct bbox {
  point lo;  ///< south-west corner
  point hi;  ///< north-east corner

  double width() const { return hi.x - lo.x; }
  double height() const { return hi.y - lo.y; }
  double area() const { return width() * height(); }

  bool contains(const point& p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }

  point clamp(const point& p) const {
    return {std::clamp(p.x, lo.x, hi.x), std::clamp(p.y, lo.y, hi.y)};
  }

  point center() const { return {0.5 * (lo.x + hi.x), 0.5 * (lo.y + hi.y)}; }

  /// Grows the box to include `p`.
  void expand(const point& p) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
  }

  friend bool operator==(const bbox&, const bbox&) = default;
};

/// A square die of the given side length anchored at the origin.
inline bbox square_die(double side_um) {
  return bbox{{0.0, 0.0}, {side_um, side_um}};
}

}  // namespace vabi::layout
