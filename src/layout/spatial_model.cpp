#include "layout/spatial_model.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace vabi::layout {

const char* to_string(spatial_profile profile) {
  switch (profile) {
    case spatial_profile::homogeneous:
      return "homogeneous";
    case spatial_profile::heterogeneous:
      return "heterogeneous";
  }
  return "unknown";
}

spatial_model::spatial_model(bbox die, const spatial_model_config& config,
                             stats::variation_space& space)
    : grid_(die, config.cell_size_um), config_(config) {
  if (config.range_um <= 0.0) {
    throw std::invalid_argument("spatial_model: range must be > 0");
  }
  // Gaussian kernel length scale: weight falls to exp(-2) ~ 0.135 at the
  // configured taper range, matching "tapers off at a distance about 2 mm".
  gauss_scale_ = config.range_um / 2.0;
  sources_.reserve(grid_.num_cells());
  for (cell_index c = 0; c < grid_.num_cells(); ++c) {
    std::string label = "Y";
    label += std::to_string(c);
    sources_.push_back(
        space.add_source(stats::source_kind::spatial, 1.0, label));
  }
}

std::vector<stats::lf_term> spatial_model::normalized_weights(
    const point& p) const {
  std::vector<cell_index> cells = grid_.cells_within(p, config_.range_um);
  if (cells.empty()) cells.push_back(grid_.cell_of(p));
  std::vector<stats::lf_term> terms;
  terms.reserve(cells.size());
  double sum_sq = 0.0;
  for (cell_index c : cells) {
    const double d = euclidean_distance(grid_.cell_center(c), p);
    const double w = std::exp(-0.5 * (d / gauss_scale_) * (d / gauss_scale_));
    terms.push_back({sources_[c], w});
    sum_sq += w * w;
  }
  const double inv_norm = 1.0 / std::sqrt(sum_sq);
  for (auto& t : terms) t.coeff *= inv_norm;
  return terms;
}

double spatial_model::profile_factor(const point& p) const {
  if (config_.profile == spatial_profile::homogeneous) return 1.0;
  // Linear ramp along the SW->NE diagonal, zero at SW, 2 at NE; the
  // die-average multiplier is 1 so the total budget matches the homogeneous
  // case on average (paper Section 5.1).
  const bbox& die = grid_.die();
  const point q = die.clamp(p);
  const double u =
      ((q.x - die.lo.x) + (q.y - die.lo.y)) / (die.width() + die.height());
  return 2.0 * u;
}

void spatial_model::add_spatial_terms(stats::linear_form& form, const point& p,
                                      double sigma_budget) const {
  const double sigma_local = sigma_budget * profile_factor(p);
  if (sigma_local == 0.0) return;
  for (const auto& t : normalized_weights(p)) {
    form.add_term(t.id, sigma_local * t.coeff);
  }
}

double spatial_model::location_correlation(const point& a,
                                           const point& b) const {
  const auto wa = normalized_weights(a);
  const auto wb = normalized_weights(b);
  double dot = 0.0;
  std::size_t i = 0;
  std::size_t j = 0;
  // Both vectors are sorted by cell scan order from cells_within; sort-merge
  // on source id (ids are issued in cell order, hence ascending).
  while (i < wa.size() && j < wb.size()) {
    if (wa[i].id < wb[j].id) {
      ++i;
    } else if (wa[i].id > wb[j].id) {
      ++j;
    } else {
      dot += wa[i].coeff * wb[j].coeff;
      ++i;
      ++j;
    }
  }
  return dot;
}

}  // namespace vabi::layout
