#include "device/characterize.hpp"

#include <array>
#include <cmath>
#include <random>
#include <stdexcept>

#include "stats/rng.hpp"

namespace vabi::device {

characterization_result characterize_buffer(
    const transistor_model& model, const characterization_config& config) {
  if (config.samples < 16) {
    throw std::invalid_argument("characterize_buffer: too few samples");
  }
  auto rng = stats::make_rng(config.seed);
  std::normal_distribution<double> unit(0.0, 1.0);

  const process_point nominal = model.config().nominal;
  std::vector<std::vector<double>> deviations;  // rows: [dleff, dtox, dndop]
  std::vector<double> caps;
  std::vector<double> delays;
  deviations.reserve(config.samples);
  caps.reserve(config.samples);
  delays.reserve(config.samples);

  for (std::size_t i = 0; i < config.samples; ++i) {
    const double dl = config.leff_sigma_frac * unit(rng);
    const double dt = config.tox_sigma_frac * unit(rng);
    const double dn = config.ndop_sigma_frac * unit(rng);
    process_point p = nominal;
    p.leff_nm *= (1.0 + dl);
    p.tox_nm *= (1.0 + dt);
    p.ndop_rel *= (1.0 + dn);
    // Guard against extreme tail draws that leave the model's valid region;
    // resample by skipping (keeps the design matrix well conditioned).
    if (p.leff_nm <= 0.0 || p.tox_nm <= 0.0 || p.ndop_rel <= 0.0) {
      --i;
      continue;
    }
    extracted_device d;
    try {
      d = model.extract(p, config.buffer_size);
    } catch (const std::domain_error&) {
      --i;
      continue;
    }
    deviations.push_back({dl, dt, dn});
    caps.push_back(d.cap_pf);
    delays.push_back(d.delay_ps);
  }

  // Fit only the parameters that actually vary: a zero-sigma parameter
  // contributes a constant-zero column, which would make the normal
  // equations singular. Coefficients of frozen parameters are reported as 0.
  const std::array<double, 3> sigmas{config.leff_sigma_frac,
                                     config.tox_sigma_frac,
                                     config.ndop_sigma_frac};
  std::vector<std::size_t> active;
  for (std::size_t j = 0; j < sigmas.size(); ++j) {
    if (sigmas[j] > 0.0) active.push_back(j);
  }
  if (active.empty()) {
    throw std::invalid_argument(
        "characterize_buffer: at least one parameter must vary");
  }
  std::vector<std::vector<double>> design(deviations.size());
  for (std::size_t i = 0; i < deviations.size(); ++i) {
    design[i].reserve(active.size());
    for (std::size_t j : active) design[i].push_back(deviations[i][j]);
  }
  const auto expand = [&](stats::least_squares_fit fit) {
    std::vector<double> full(3, 0.0);
    for (std::size_t k = 0; k < active.size(); ++k) {
      full[active[k]] = fit.coeffs[k];
    }
    fit.coeffs = std::move(full);
    return fit;
  };

  characterization_result r;
  r.cap_fit = expand(stats::fit_linear(design, caps));
  r.delay_fit = expand(stats::fit_linear(design, delays));
  r.cap_nominal_pf = r.cap_fit.intercept;
  r.delay_nominal_ps = r.delay_fit.intercept;

  auto first_order_sigma = [&](const stats::least_squares_fit& fit) {
    const double sl = fit.coeffs[0] * config.leff_sigma_frac;
    const double st = fit.coeffs[1] * config.tox_sigma_frac;
    const double sn = fit.coeffs[2] * config.ndop_sigma_frac;
    return std::sqrt(sl * sl + st * st + sn * sn);
  };
  r.cap_sigma_pf = first_order_sigma(r.cap_fit);
  r.delay_sigma_ps = first_order_sigma(r.delay_fit);

  r.cap_moments = stats::compute_moments(caps);
  r.delay_moments = stats::compute_moments(delays);

  stats::empirical_distribution delay_dist{delays};
  r.delay_ks_to_fitted_normal =
      delay_dist.ks_distance_to_normal(r.delay_nominal_ps, r.delay_sigma_ps);
  r.delay_samples = std::move(delays);
  return r;
}

}  // namespace vabi::device
