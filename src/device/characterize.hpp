// First-order device characterization (paper Section 3.1, Fig. 3).
//
// Mirrors the paper's flow against our analytic SPICE stand-in:
//   1. sample the process parameters (the paper varies L_eff with a normal
//      sigma of 10% of its mean; T_ox and N_dop can be enabled too);
//   2. extract C_b and T_b from the nonlinear model at every sample;
//   3. least-squares fit the first-order forms of eqs. (19)-(20):
//        C_b = C_b0 + sum alpha_i X_i,   T_b = T_b0 + sum beta_i X_i;
//   4. quantify how normal the true (nonlinear) distribution is and how close
//      the fitted normal is to it -- the content of Fig. 3.
#pragma once

#include <cstdint>
#include <vector>

#include "device/transistor_model.hpp"
#include "stats/empirical.hpp"
#include "stats/least_squares.hpp"

namespace vabi::device {

struct characterization_config {
  std::size_t samples = 5000;
  std::uint64_t seed = 42;
  /// Relative one-sigma of each parameter (fraction of nominal). The paper's
  /// Fig. 3 experiment varies only L_eff at 10%.
  double leff_sigma_frac = 0.10;
  double tox_sigma_frac = 0.0;
  double ndop_sigma_frac = 0.0;
  double buffer_size = 1.0;
};

/// Output of characterizing one buffer size against the nonlinear model.
struct characterization_result {
  /// Fits in the *relative deviation* basis: X = (param - nominal)/nominal.
  /// coeffs order: [leff, tox, ndop] (only varied parameters meaningful).
  stats::least_squares_fit cap_fit;
  stats::least_squares_fit delay_fit;

  /// Nominal values predicted by the fit at zero deviation (C_b0, T_b0).
  double cap_nominal_pf = 0.0;
  double delay_nominal_ps = 0.0;

  /// Total first-order sigma implied by the fit coefficients.
  double cap_sigma_pf = 0.0;
  double delay_sigma_ps = 0.0;

  /// Moments of the true (nonlinear) extracted samples.
  stats::sample_moments cap_moments;
  stats::sample_moments delay_moments;

  /// Kolmogorov-Smirnov distance between the extracted delay samples and the
  /// fitted normal N(delay_nominal, delay_sigma) -- Fig. 3's "the two PDFs
  /// are very close" measured as a number.
  double delay_ks_to_fitted_normal = 0.0;

  /// The raw delay samples (for histogram rendering in the Fig. 3 bench).
  std::vector<double> delay_samples;
};

characterization_result characterize_buffer(
    const transistor_model& model, const characterization_config& config);

}  // namespace vabi::device
