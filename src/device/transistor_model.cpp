#include "device/transistor_model.hpp"

#include <cmath>
#include <stdexcept>

namespace vabi::device {

transistor_model::transistor_model(const transistor_model_config& config,
                                   timing::buffer_type reference)
    : config_(config), reference_(std::move(reference)) {
  const double vth = threshold_voltage(config_.nominal);
  if (config_.vdd <= vth) {
    throw std::invalid_argument(
        "transistor_model: nominal device not in saturation");
  }
  nominal_drive_ = std::pow(config_.vdd - vth, config_.alpha);
}

double transistor_model::threshold_voltage(const process_point& p) const {
  const process_point& n = config_.nominal;
  return config_.vth0 + config_.k_dop * std::log(p.ndop_rel / n.ndop_rel) -
         config_.k_dibl * (n.leff_nm / p.leff_nm - 1.0);
}

extracted_device transistor_model::extract(const process_point& p,
                                           double size) const {
  if (size <= 0.0) {
    throw std::invalid_argument("transistor_model: size must be > 0");
  }
  const process_point& n = config_.nominal;
  const double vth = threshold_voltage(p);
  if (config_.vdd <= vth) {
    throw std::domain_error("transistor_model: device out of saturation");
  }

  // All characteristics as ratios to their value at the nominal point, scaled
  // by the calibrated reference buffer.
  const double cap_ratio = (p.leff_nm / n.leff_nm) * (n.tox_nm / p.tox_nm);
  const double drive_ratio = (n.leff_nm / p.leff_nm) * (n.tox_nm / p.tox_nm) *
                             std::pow(config_.vdd - vth, config_.alpha) /
                             nominal_drive_;

  extracted_device d;
  d.cap_pf = reference_.cap_pf * size * cap_ratio;
  d.res_ohm = reference_.res_ohm / (size * drive_ratio);
  // Intrinsic delay ~ R_out * C_par with C_par tracking the gate cap; the
  // size dependence cancels (bigger device: lower R, higher C).
  d.delay_ps = reference_.delay_ps * cap_ratio / drive_ratio;
  return d;
}

}  // namespace vabi::device
