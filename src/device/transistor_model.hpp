// Analytic nonlinear buffer model -- the SPICE stand-in.
//
// The paper characterizes buffers with 65nm BSIM SPICE runs (Section 3.1);
// SPICE and foundry models are not available here, so this module provides a
// smooth *nonlinear* analytic substitute built from standard compact-model
// physics (alpha-power-law drain current, short-channel V_th roll-off,
// parallel-plate gate capacitance):
//
//   C_gate  ~  eps_ox / t_ox * W * L_eff
//   V_th    =  V_th0 + k_dop * ln(N_dop / N_dop0) - k_dibl * (L_eff0/L_eff - 1)
//   I_dsat  ~  (W / L_eff) * (1 / t_ox) * (V_dd - V_th)^alpha
//   R_out   ~  V_dd / I_dsat
//   T_b     ~  R_out * C_par,   C_par ~ C_gate
//
// What matters for the reproduction is not the constants but the *shape*: the
// device response is a smooth nonlinear function of the process parameters,
// so its distribution under parameter variation is not exactly normal, and
// the first-order fit of Section 3.1 (Fig. 3) has something real to
// approximate. The characterization flow (characterize.hpp) treats this model
// exactly as the paper treats SPICE: sample, extract, least-squares fit.
#pragma once

#include "timing/buffer_library.hpp"

namespace vabi::device {

/// One point in process space. Values are physical, not deviations.
struct process_point {
  double leff_nm = 65.0;    ///< effective channel length
  double tox_nm = 1.2;      ///< gate oxide thickness
  double ndop_rel = 1.0;    ///< channel doping relative to nominal
};

/// Electrical characteristics extracted at one process point.
struct extracted_device {
  double cap_pf = 0.0;    ///< input (gate) capacitance
  double delay_ps = 0.0;  ///< intrinsic delay
  double res_ohm = 0.0;   ///< output resistance
};

struct transistor_model_config {
  double vdd = 1.1;
  double vth0 = 0.35;
  double alpha = 1.3;      ///< velocity-saturation exponent
  double k_dibl = 0.06;    ///< V_th roll-off strength vs channel length
  double k_dop = 0.08;     ///< V_th sensitivity to doping (per ln N)
  process_point nominal;   ///< process point the calibration targets
};

/// Smooth nonlinear map process point -> device characteristics, calibrated
/// so that a width multiplier of `size` at the nominal process point
/// reproduces `reference` (a buffer_library entry).
class transistor_model {
 public:
  transistor_model(const transistor_model_config& config,
                   timing::buffer_type reference);

  /// Characteristics of a buffer of relative size `size` (W multiplier) at
  /// process point `p`. Throws std::domain_error if the point drives the
  /// device out of saturation (V_dd <= V_th).
  extracted_device extract(const process_point& p, double size = 1.0) const;

  /// Threshold voltage at a process point (exposed for tests).
  double threshold_voltage(const process_point& p) const;

  const transistor_model_config& config() const { return config_; }
  const timing::buffer_type& reference() const { return reference_; }

 private:
  transistor_model_config config_;
  timing::buffer_type reference_;
  double nominal_drive_ = 0.0;  ///< (V_dd - V_th)^alpha at nominal
};

}  // namespace vabi::device
