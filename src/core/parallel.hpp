// Parallel execution engine: a work-stealing thread pool, a batch solver
// that fans independent nets across threads, and an intra-tree parallel
// driver of the variation-aware DP.
//
// Buffer insertion in a real flow runs over thousands of nets per design
// (Li & Shi; PAPERS.md), which makes multi-net batching the dominant axis of
// parallelism: every job is independent, so throughput scales with cores.
// Inside one large tree there is a second axis: sibling subtrees are
// independent sub-problems joined only at the statistical merge, which is a
// pure function of the two child candidate lists. run_parallel_insertion
// schedules one task per tree node (a node runs when all of its children
// have finished) on the same pool.
//
// Determinism contract: for runs that complete (no resource-cap abort), the
// parallel drivers produce *bit-identical* results to
// run_statistical_insertion -- same canonical root RAT form, same buffer and
// wire assignments, same dp_stats counters -- for any thread count. This
// holds because (a) child lists are merged in tree child order, never
// completion order; (b) device forms are pre-characterized in the serial
// engine's exact lazy order (device_cache), so variation-source ids match;
// (c) per-worker state reduces commutatively. tests/core/parallel_dp_test.cpp
// asserts this for the 2P / 4P / corner rules across 1, 2 and 8 threads.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/statistical_dp.hpp"
#include "layout/process_model.hpp"
#include "tree/generators.hpp"
#include "tree/routing_tree.hpp"

namespace vabi::core {

// ---------------------------------------------------------------------------
// Work-stealing thread pool.
// ---------------------------------------------------------------------------

/// Fixed-size pool of workers, each with its own task deque. A worker pops
/// its own deque LIFO (cache-warm, depth-first on task DAGs) and steals FIFO
/// from victims when empty (oldest tasks first -- the big untouched
/// subtrees). External submissions land on a shared injection queue.
///
/// The pool has no shutdown barrier of its own: callers that need to join a
/// wave of tasks block on a std::latch counted down by the tasks (see
/// parallel.cpp). The destructor is nonetheless safe at any time: it drains
/// every queued task and joins only once nothing is queued or running, so a
/// cancelled/abandoned wave cannot leave a worker exiting under a task that
/// is still submitting children.
class thread_pool {
 public:
  /// `num_threads == 0` picks default_thread_count().
  explicit thread_pool(std::size_t num_threads = 0);
  ~thread_pool();

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  std::size_t size() const;

  /// Enqueues a task. Callable from any thread, including from inside a
  /// running task (the common case for DAG scheduling: a finishing child
  /// submits its ready parent onto its own deque).
  void submit(std::function<void()> task);

  /// Index of the calling pool worker in [0, size()), or -1 when called from
  /// a thread that does not belong to a pool.
  static int current_worker() noexcept;

  /// VABI_THREADS env var if set, otherwise std::thread::hardware_concurrency
  /// (at least 1).
  static std::size_t default_thread_count();

 private:
  struct impl;
  std::unique_ptr<impl> impl_;
};

// ---------------------------------------------------------------------------
// Intra-tree parallel DP.
// ---------------------------------------------------------------------------

/// Pre-characterized device forms for every (node, buffer type) pair of one
/// tree. Building the cache walks the tree in postorder and characterizes in
/// exactly the order the serial engine's lazy calls would, so the variation
/// sources registered in the model's space carry identical ids and sigmas --
/// the keystone of the bit-identical guarantee. After construction the cache
/// is immutable and safe to read from any thread.
class device_cache {
 public:
  device_cache(const tree::routing_tree& tree, layout::process_model& model,
               const timing::buffer_library& library);

  const layout::device_variation& get(tree::node_id id,
                                      timing::buffer_index b) const {
    return devices_[static_cast<std::size_t>(id) * lib_size_ + b];
  }

 private:
  std::size_t lib_size_;
  std::vector<layout::device_variation> devices_;
};

/// Variation-aware insertion on one tree with sibling subtrees solved
/// concurrently on `pool`. Same contract as run_statistical_insertion, and
/// bit-identical to it for completed runs (see the determinism contract
/// above). Resource caps are honored, but *which* node trips a cap first is
/// scheduling-dependent, so aborted runs may differ from serial in their
/// abort_reason and partial counters.
stat_result run_parallel_insertion(const tree::routing_tree& tree,
                                   layout::process_model& model,
                                   const stat_options& options,
                                   thread_pool& pool);

/// Typed entry point of the intra-tree parallel DP: same contract as
/// solve_statistical_insertion (structured validation, typed resource trips,
/// degradation policy), with `cancel` polled at node boundaries by every
/// worker so sibling tasks stop promptly. Degraded retries run on the serial
/// engine, keeping fallback results thread-count-invariant.
solve_outcome<stat_result> solve_parallel_insertion(
    const tree::routing_tree& tree, layout::process_model& model,
    const stat_options& options, thread_pool& pool,
    const cancel_token* cancel = nullptr);

// ---------------------------------------------------------------------------
// Batch solver.
// ---------------------------------------------------------------------------

/// One net-optimization job of a batch. The net is either borrowed (`tree`)
/// or generated on a worker thread from `generate` when `tree` is null --
/// generation draws from a per-job deterministic RNG stream, so a batch is
/// reproducible regardless of thread count or scheduling.
struct batch_job {
  const tree::routing_tree* tree = nullptr;
  std::optional<tree::random_tree_options> generate;

  stat_options options;
  layout::process_model_config model;
  /// Die of the process model. Width 0 (the default) derives the die from
  /// the net's bounding box padded by 1 um, like examples/vabi_cli.cpp.
  layout::bbox die;
};

/// Result of one batch job. The model owns the variation space the result's
/// canonical forms refer to (needed for sigma / yield evaluation).
struct batch_result {
  stat_result result;
  layout::process_model model;
  /// The generated net, when the job asked for generation.
  std::optional<tree::routing_tree> generated;
};

/// How batch_solver::solve_journaled uses its journal.
struct batch_journal_options {
  std::string path;  ///< journal file, e.g. "run.vjl"
  /// Checkpoint (atomic whole-image rewrite) every N newly solved jobs
  /// (0 = no count trigger) / every B newly appended bytes (0 = no byte
  /// trigger). A final checkpoint always happens when the batch drains.
  std::size_t checkpoint_every_jobs = 16;
  std::uint64_t checkpoint_every_bytes = 1u << 22;
  /// Restore already-journaled jobs instead of re-solving them. A missing
  /// journal file is a valid empty journal (a run killed before its first
  /// checkpoint leaves none).
  bool resume = false;
  /// Paranoia knob: re-solve every restored job anyway and require the
  /// restored record to be bit-identical (root RAT form, assignment, wires,
  /// deterministic counters). Divergence -- which the determinism contract
  /// rules out short of journal tampering or a build mismatch -- is a typed
  /// journal_mismatch. This is the resume invariant, executable.
  bool verify_restored = false;
};

/// What solve_journaled returns alongside the per-job slots.
struct journaled_batch {
  std::vector<solve_outcome<batch_result>> slots;  ///< slot i <-> job i
  std::size_t restored = 0;  ///< jobs recovered from the journal
  std::size_t solved = 0;    ///< jobs actually solved this run
  std::size_t checkpoints = 0;
  std::uint64_t journal_bytes = 0;
  std::uint64_t dropped_tail_bytes = 0;  ///< torn tail discarded on resume
  std::uint64_t duplicates_dropped = 0;
  /// First journal I/O failure ("" when healthy). Never fatal to the batch.
  std::string journal_warning;
};

/// The resolved net + process model of one batch job: the generated tree
/// (when the job asked for generation), a pointer to the net to solve, and
/// the process model built over the job's die (or the net's padded bounding
/// box). This is *the* canonical job setup: batch_solver, the journal resume
/// path and the serve daemon (src/serve) all go through it, which is what
/// makes a remotely solved job bit-identical to a local one.
struct prepared_job {
  std::optional<tree::routing_tree> generated;
  const tree::routing_tree* net = nullptr;
  std::optional<layout::process_model> model;
};

/// Resolves job `index`'s net (generating from the derived per-job seed when
/// asked) and builds its process model. Throws on an unusable job spec.
prepared_job prepare_batch_job(const batch_job& job, std::size_t index,
                               const std::optional<std::uint64_t>& batch_seed);

/// The fingerprint of one job's solve-relevant inputs, as journaled with
/// every record: stat_options, model config, die, and the net (tree bytes,
/// or generator options with the effective derive_seed(batch_seed, index)
/// seed). Resume refuses records whose fingerprint does not match the job
/// being resumed (solve_code::journal_mismatch).
std::uint64_t fingerprint_job(const batch_job& job, std::size_t index,
                              const std::optional<std::uint64_t>& batch_seed);

/// Fans a vector of independent jobs across a work-stealing pool: multi-net
/// throughput, the paper's thousands-of-nets-per-design regime. Job i's
/// result lands in slot i; each job gets its own process model (and hence
/// its own variation space), so results are identical to solving each job
/// alone with run_statistical_insertion.
class batch_solver {
 public:
  struct config {
    /// 0 picks thread_pool::default_thread_count().
    std::size_t num_threads = 0;
    /// When set, job i's generator seed is re-derived as
    /// stats::derive_seed(*batch_seed, i): one master seed reproducibly
    /// fans out into independent per-job streams.
    std::optional<std::uint64_t> batch_seed;
  };

  batch_solver() : batch_solver(config{}) {}
  explicit batch_solver(config cfg);

  /// Solves all jobs; blocks until the batch completes. Throws (after the
  /// batch drains) if any job threw, with the first error's message.
  /// Legacy shim -- new code should call solve_outcomes, which never loses
  /// the rest of the batch to one bad net.
  std::vector<batch_result> solve(const std::vector<batch_job>& jobs);

  /// Per-net fault isolation: solves all jobs, capturing every failure --
  /// typed guard trips and escaped exceptions alike -- into that job's
  /// solve_outcome slot. Nothing a job does can take down the batch or
  /// escape a pool worker. Outcome codes are thread-count-invariant: each
  /// job is solved serially and independently, so slot i's outcome depends
  /// only on job i (and the derived per-job seed), never on scheduling.
  /// `cancel` lets a caller abandon the remainder of a batch; jobs already
  /// started still complete.
  std::vector<solve_outcome<batch_result>> solve_outcomes(
      const std::vector<batch_job>& jobs, const cancel_token* cancel = nullptr);

  /// Crash-recoverable batch solving: solve_outcomes plus a durable result
  /// journal (core/journal.hpp). Every finished job is appended to the
  /// journal and checkpointed at the configured interval; with `resume` set,
  /// jobs already in the journal are *restored* instead of re-solved --
  /// bit-identically, because job i's inputs (tree bytes or generator spec +
  /// derive_seed(batch_seed, i)) are fingerprinted into each record and
  /// verified on restore, and the solver itself is deterministic per job.
  ///
  /// The outer outcome is an error only when the journal cannot be used at
  /// all: journal_corrupt (mid-log damage; detail names the record) or
  /// journal_mismatch (journal from different jobs/options/seed). Journal
  /// *write* trouble mid-run never fails the batch -- results stay in
  /// memory and journaled_batch::journal_warning reports the I/O error.
  solve_outcome<journaled_batch> solve_journaled(
      const std::vector<batch_job>& jobs, const batch_journal_options& journal,
      const cancel_token* cancel = nullptr);

  std::size_t num_threads() const;
  thread_pool& pool() { return pool_; }

 private:
  config config_;
  thread_pool pool_;
};

}  // namespace vabi::core
