// Deterministic van Ginneken buffer insertion (paper Section 2.1; [4], [10]).
//
// Bottom-up DP over the routing tree: candidate (L, T) lists are propagated
// through wires (eqs. 25-26), merged at branches with the classic linear
// merge (Fig. 1), pruned with the dominance rule, and extended with one
// buffered candidate per library type (eqs. 27-28). With the Li-Shi
// per-type frontier (li_shi.hpp, on by default for B > 2) the buffered step
// probes only the per-type best, for O(B * N^2) overall; the classic scan
// path (li_shi_mode::never) is the O(B^2 * N^2) reference. This is the
// paper's "NOM" optimizer and the structural template the statistical
// engine follows.
#pragma once

#include <vector>

#include "core/li_shi.hpp"
#include "core/solution.hpp"
#include "core/solve_status.hpp"
#include "timing/buffer_library.hpp"
#include "timing/elmore.hpp"
#include "timing/wire_model.hpp"
#include "tree/routing_tree.hpp"

namespace vabi::core {

struct det_options {
  timing::wire_model wire;
  timing::buffer_library library;
  /// Output resistance of the source driver; its delay r_d * L_root is
  /// charged when selecting the winning root candidate.
  double driver_res_ohm = 100.0;
  /// Wire-width menu for simultaneous buffer insertion and wire sizing (the
  /// extension of [8]): every edge picks one multiplier (r/m, c*m). A single
  /// entry disables sizing and adds no overhead.
  std::vector<double> wire_width_multipliers = {1.0};

  /// Li-Shi per-type frontier for the buffered-candidate step (li_shi.hpp):
  /// O(|list| + b log b) per position instead of the classic O(b * |list|)
  /// scan. `automatic` engages it for libraries of more than 2 types;
  /// results match the scan path candidate for candidate either way.
  li_shi_mode li_shi = li_shi_mode::automatic;
};

struct det_result {
  double root_rat_ps = 0.0;  ///< RAT at the source of the winning solution
  timing::buffer_assignment assignment;
  timing::wire_assignment wires;  ///< meaningful when sizing is enabled
  std::size_t num_buffers = 0;
  dp_stats stats;
};

/// Legacy shim: throws std::invalid_argument on bad options and
/// std::logic_error on structural failures. New code should call
/// solve_van_ginneken.
det_result run_van_ginneken(const tree::routing_tree& tree,
                            const det_options& options);

/// Typed entry point: validates the tree and options and maps every failure
/// into the solve_code taxonomy instead of throwing.
solve_outcome<det_result> solve_van_ginneken(const tree::routing_tree& tree,
                                             const det_options& options);

}  // namespace vabi::core
