// Internal engine of the variation-aware DP (shared by the serial and the
// parallel drivers -- see statistical_dp.cpp and parallel.cpp).
//
// The per-node computation of run_statistical_insertion lives here as
// dp_worker::solve_node: given the (already solved) candidate lists of a
// node's children it produces the node's own pruned candidate list. The
// serial driver calls it in postorder on one thread; the parallel driver
// schedules one task per node on a work-stealing pool, which is sound
// because a node's list depends only on its children's lists and the
// statistical merge is a pure function of the two inputs.
//
// Bit-identical parallelism rests on three invariants kept here:
//   1. child lists are merged in the tree's child order (never in completion
//      order), so the floating-point operation sequence per node is fixed;
//   2. device forms come from a device_fn whose source-id allocation order
//      matches the serial engine's lazy characterization order (see
//      device_cache in parallel.hpp);
//   3. all mutable state (decision arena, dp_stats, list recycling) is owned
//      per worker and only reduced commutatively (sums / maxes) at the join.
//
// Memory architecture (see also DESIGN.md). Every canonical form built while
// solving one node lives in the worker's scratch term_pool; candidates only
// *borrow* those terms. When the node's final list is known it is *sealed*:
// the surviving forms' terms are copied (verbatim, so bit-identity is
// trivial) into one exactly-sized term_block owned by the returned node_list,
// and the scratch pool rewinds. Child lists consumed mid-node retire their
// blocks into the worker arena, which recycles them only at end_node() --
// candidates legitimately borrow child storage until then (e.g. a propagated
// candidate's load form). Net effect: steady-state node solving performs no
// heap allocation, lists can migrate across threads (a block is a plain
// heap slab with single ownership), and live memory stays proportional to
// the surviving lists exactly as in the pre-arena engine.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <functional>
#include <limits>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/solution.hpp"
#include "core/solve_status.hpp"
#include "core/statistical_dp.hpp"
#include "testing/fault_injection.hpp"

namespace vabi::core::detail {

using cand_list = std::vector<stat_candidate>;
using dp_clock = std::chrono::steady_clock;

/// A solved node's candidate list: the candidates plus the sealed slab that
/// owns the terms of their wider-than-inline forms. Self-contained (moves,
/// including across threads, never invalidate the borrowed spans).
struct node_list {
  cand_list cands;
  stats::term_block slab;
};

/// Per-worker memory arena of the DP: recycled candidate-list buffers, the
/// scratch term_pool all per-node form math writes into, and recycled sealed
/// slabs. Never shared across threads; blocks may *arrive* from other
/// workers' arenas (a parent consumes a child list solved elsewhere), which
/// is safe because a term_block is a plain heap slab with single ownership.
class worker_arena {
 public:
  /// Scratch storage for every form built while solving the current node.
  /// Rewound by end_node(); see linear_form's pooled operations.
  stats::term_pool& scratch() { return scratch_; }

  /// Per-worker scratch for the tiled dominance engine (gathered candidate
  /// planes + batch buffers). Like the term pool it is never shared across
  /// threads and keeps its high-water storage across nodes and runs.
  prune_scratch& pruning_scratch() { return prune_scratch_; }

  cand_list acquire() {
    if (free_lists_.empty()) return {};
    cand_list list = std::move(free_lists_.back());
    free_lists_.pop_back();
    list.clear();
    return list;
  }

  void release(cand_list&& list) {
    if (list.capacity() > 0 && free_lists_.size() < max_pooled) {
      free_lists_.push_back(std::move(list));
    }
  }

  /// Parks a consumed child list's slab until end_node(): candidates of the
  /// node in flight may still borrow its terms (e.g. their load forms).
  void retire_block(stats::term_block&& block) {
    if (!block.empty()) retired_.push_back(std::move(block));
  }

  /// Seals `working` into a self-contained node_list: every form still
  /// borrowing scratch or a child slab re-homes its terms (inline when they
  /// fit, else into one exactly-sized recycled block). Pure byte copies --
  /// the forms' values are untouched.
  node_list seal(cand_list&& working) {
    std::size_t total = 0;
    for (const auto& c : working) {
      if (!c.load.owns_terms() &&
          c.load.num_terms() > stats::linear_form::inline_capacity) {
        total += c.load.num_terms();
      }
      if (!c.rat.owns_terms() &&
          c.rat.num_terms() > stats::linear_form::inline_capacity) {
        total += c.rat.num_terms();
      }
    }
    node_list out;
    stats::lf_term* cursor = nullptr;
    if (total != 0) {
      if (!free_blocks_.empty()) {
        out.slab = std::move(free_blocks_.back());
        free_blocks_.pop_back();
      }
      cursor = out.slab.ensure(total, &block_allocs_);
    }
    for (auto& c : working) {
      cursor += c.load.relocate_terms(cursor);
      cursor += c.rat.relocate_terms(cursor);
    }
    out.cands = std::move(working);
    return out;
  }

  /// Ends the current node's storage epoch: rewinds the scratch pool and
  /// makes the slabs retired during the node reusable.
  void end_node() {
    scratch_.reset();
    for (auto& b : retired_) {
      if (free_blocks_.size() < max_pooled) {
        free_blocks_.push_back(std::move(b));
      }
    }
    retired_.clear();
  }

  /// Term-storage heap allocations made through this arena (scratch chunk
  /// growth + sealed-slab growth).
  std::size_t allocations() const {
    return scratch_.allocations() + block_allocs_;
  }

  /// Bytes of term storage this arena currently holds (scratch chunks plus
  /// recycled and parked sealed slabs). What stat_options::max_arena_bytes
  /// caps; sealed slabs that migrated out with their node_list are the
  /// consumer's, not the arena's.
  std::size_t term_bytes() const {
    std::size_t terms = scratch_.capacity();
    for (const auto& b : free_blocks_) terms += b.capacity();
    for (const auto& b : retired_) terms += b.capacity();
    return terms * sizeof(stats::lf_term);
  }

  /// Prepares the arena for a new run while keeping all recycled storage --
  /// this is what makes batch_solver's per-thread reuse across nets free.
  void begin_run() {
    end_node();
    scratch_.reset_statistics();
    block_allocs_ = 0;
  }

 private:
  static constexpr std::size_t max_pooled = 64;
  stats::term_pool scratch_;
  prune_scratch prune_scratch_;
  std::vector<cand_list> free_lists_;
  std::vector<stats::term_block> free_blocks_;
  std::vector<stats::term_block> retired_;
  std::size_t block_allocs_ = 0;
};

/// Supplies the characterized device forms for buffering at (node, type).
/// The serial engine characterizes lazily through the process model; the
/// parallel engine reads a pre-built device_cache. Either way the function is
/// called exactly once per (node, type) evaluated.
using device_fn =
    std::function<layout::device_variation(tree::node_id, timing::buffer_index)>;

/// Li-Shi per-type frontier state of one worker (li_shi.hpp). The frontier
/// itself is built once per run by the driver and is read-only (shareable
/// across a parallel run's workers); the scratch vectors are per worker.
/// A null frontier -- or a rule whose order is not total -- keeps the
/// worker on the classic scan path.
struct li_shi_state {
  const buffer_frontier* frontier = nullptr;
  std::vector<layout::device_variation> devices;  ///< gathered per node
  std::vector<std::size_t> best;                  ///< per-type argmax output
  std::vector<double> loads;   ///< packed mean loads (D&C eval keys)
  std::vector<double> rats;    ///< packed mean RATs
  std::vector<double> delays;  ///< packed mean device delays per type
  std::vector<double> res;     ///< packed library resistances (per run)
};

/// Resource-cap state shared by all workers of one parallel run. Counters are
/// published at node granularity, so cap enforcement is as prompt as the
/// serial engine's up to one in-flight node per worker. Which node trips a
/// cap first is scheduling-dependent; aborted runs carry no design, so this
/// does not weaken the bit-identical guarantee for completed runs.
struct shared_budget {
  dp_clock::time_point t_start;
  std::atomic<std::size_t> candidates{0};
  std::atomic<bool> aborted{false};
};

/// Unified budget enforcement of one DP worker: the candidate caps, the
/// wall-clock deadline, the arena-bytes cap, cooperative cancellation, and
/// the cross-worker abort broadcast of a parallel run. Every trip lands in
/// dp_stats as the (aborted, abort_code, abort_node, abort_reason) tuple the
/// typed entry points translate into a solve_error. List-size/candidate caps
/// are checked after every merge step (over_budget); the deadline,
/// cancellation and memory checks happen at node boundaries (begin_node) --
/// monotonic clock, one check per node.
struct resource_guard {
  const stat_options& options;
  dp_stats& dps;
  /// Per-worker count of candidates already flushed to `shared`. Lives in
  /// the worker's persistent state (a dp_worker is rebuilt per node task, the
  /// flush watermark must survive across tasks).
  std::size_t& published;
  shared_budget* shared = nullptr;       ///< non-null in parallel mode
  const cancel_token* cancel = nullptr;  ///< optional caller-owned stop flag
  dp_clock::time_point t_start{};        ///< serial wall-cap reference
  tree::node_id current_node = tree::invalid_node;

  void publish() {
    if (shared == nullptr) return;
    shared->candidates.fetch_add(dps.candidates_created - published,
                                 std::memory_order_relaxed);
    published = dps.candidates_created;
    if (dps.aborted) shared->aborted.store(true, std::memory_order_release);
  }

  /// Records a typed abort at the current node and broadcasts it. Always
  /// returns true so call sites read `return trip(...)`.
  bool trip(solve_code code, const char* reason) {
    dps.aborted = true;
    dps.abort_code = code;
    dps.abort_node = current_node;
    dps.abort_reason = reason;
    publish();
    return true;
  }

  /// Node-boundary checks: sibling abort, cancellation, deadline, arena
  /// bytes (and their injected equivalents). True => skip this node.
  bool begin_node(tree::node_id id, const worker_arena& arena) {
    current_node = id;
    if (dps.aborted) return true;
    if (shared != nullptr && shared->aborted.load(std::memory_order_acquire)) {
      dps.aborted = true;
      dps.abort_code = solve_code::cancelled;
      dps.abort_node = id;
      dps.abort_reason = "aborted by another worker";
      return true;
    }
    if (cancel != nullptr && cancel->stop_requested()) {
      return trip(solve_code::cancelled, "cancelled by caller");
    }
    if (testing::should_fire(testing::fault_point::cancel_wave, id)) {
      return trip(solve_code::cancelled, "injected mid-wave cancellation");
    }
    if (testing::should_fire(testing::fault_point::deadline_at_node, id)) {
      return trip(solve_code::deadline_exceeded, "injected deadline expiry");
    }
    if (options.max_wall_seconds > 0.0 && wall_expired()) {
      return trip(solve_code::deadline_exceeded,
                  "wall clock exceeded max_wall_seconds");
    }
    if (options.max_arena_bytes != 0 &&
        arena.term_bytes() > options.max_arena_bytes) {
      return trip(solve_code::memory_cap,
                  "worker arena exceeded max_arena_bytes");
    }
    return false;
  }

  bool over_budget(std::size_t list_size) {
    if (shared != nullptr &&
        shared->aborted.load(std::memory_order_acquire) && !dps.aborted) {
      dps.aborted = true;
      dps.abort_code = solve_code::cancelled;
      dps.abort_node = current_node;
      dps.abort_reason = "aborted by another worker";
      return true;
    }
    if (options.max_list_size != 0 && list_size > options.max_list_size) {
      return trip(solve_code::candidate_cap,
                  "candidate list exceeded max_list_size");
    }
    if (options.max_candidates != 0) {
      std::size_t total = dps.candidates_created;
      if (shared != nullptr) {
        // Candidates published by every worker, minus our own published share
        // (already inside dps.candidates_created).
        total += shared->candidates.load(std::memory_order_relaxed) - published;
      }
      if (total > options.max_candidates) {
        return trip(solve_code::candidate_cap,
                    "total candidates exceeded max_candidates");
      }
    }
    if (options.max_wall_seconds > 0.0 && wall_expired()) {
      return trip(solve_code::deadline_exceeded,
                  "wall clock exceeded max_wall_seconds");
    }
    return false;
  }

 private:
  bool wall_expired() const {
    const auto start = shared != nullptr ? shared->t_start : t_start;
    const double elapsed =
        std::chrono::duration<double>(dp_clock::now() - start).count();
    return elapsed > options.max_wall_seconds;
  }
};

/// One worker of the DP: the key operations (wire propagation, buffering,
/// statistical merge), pruning dispatch, and the per-node solve. Holds only
/// references; cheap to construct per task.
struct dp_worker {
  const tree::routing_tree& tree;
  const stats::variation_space& space;
  const stat_options& options;
  const timing::wire_menu& menu;
  device_fn devices;
  decision_arena& arena;
  worker_arena& pool;
  dp_stats& dps;
  resource_guard guard;
  /// Non-null only when the driver enabled the Li-Shi frontier for this run
  /// (2P mean rule with mean selection; see stat_options::li_shi). Defaulted
  /// so the existing aggregate-initialization sites stay valid.
  li_shi_state* li_shi = nullptr;

  bool over_budget(std::size_t list_size) { return guard.over_budget(list_size); }

  // -- key operations -------------------------------------------------------

  /// eqs. 33-34: wires are deterministic, so the nominal shifts and the RAT
  /// coefficients pick up -r*l*alpha_i via the load form. With a multi-width
  /// menu each candidate fans out into one variant per width (recorded as a
  /// wire decision); the caller's prune collapses the dominated ones.
  void propagate_wire(cand_list& list, tree::node_id child, double um) {
    if (um == 0.0) return;
    if (!menu.sizing_enabled()) {
      const double rl = menu[0].res_per_um * um;
      const double cl = menu[0].cap_per_um * um;
      const double half_rcl2 = 0.5 * rl * cl;
      for (auto& c : list) {
        // -r*l*L_n (both nominal and coefficients), fused into one merge.
        c.rat = stats::pooled_sub_scaled(c.rat, rl, c.load, pool.scratch());
        c.invalidate_rat_moments();
        // Nominal-only shifts: Var(rat) changed above, Var(load) survives.
        c.rat -= half_rcl2;     // -r*c*l^2/2
        c.load += cl;
      }
      return;
    }
    cand_list out = pool.acquire();
    out.reserve(list.size() * menu.size());
    for (const auto& c : list) {
      for (timing::width_index w = 0; w < menu.size(); ++w) {
        const double rl = menu[w].res_per_um * um;
        const double cl = menu[w].cap_per_um * um;
        stat_candidate v;
        v.rat = stats::pooled_sub_scaled(c.rat, rl, c.load, pool.scratch());
        v.rat -= 0.5 * rl * cl;
        v.load = c.load;
        v.load += cl;              // nominal-only: c's cached Var(load) holds
        v.var_load = c.var_load;
        v.why = arena.wire_sized(child, w, c.why);
        out.push_back(std::move(v));
        ++dps.candidates_created;
      }
    }
    pool.release(std::move(list));
    list = std::move(out);
  }

  /// eqs. 35-36 for one candidate and one characterized device. `cap` is the
  /// device's C_b form already pinned into the current scratch epoch (see
  /// add_buffered_candidates), shared by every candidate buffered here.
  stat_candidate buffered(const stat_candidate& c, tree::node_id node,
                          timing::buffer_index b,
                          const layout::device_variation& dv,
                          const stats::linear_form& cap) {
    stat_candidate out;
    out.rat = stats::pooled_sub(c.rat, dv.delay, pool.scratch());  // -T_b
    out.rat = stats::pooled_sub_scaled(out.rat, options.library[b].res_ohm,
                                       c.load, pool.scratch());  // -R_b * L_n
    out.load = cap;                                              // C_b
    out.why = arena.buffered(node, b, c.why);
    ++dps.candidates_created;
    return out;
  }

  /// eqs. 37-38 for one pair.
  stat_candidate merged_pair(const stat_candidate& a, const stat_candidate& b) {
    stat_candidate out;
    out.load = stats::pooled_add(a.load, b.load, pool.scratch());
    out.rat = stats::statistical_min(a.rat, b.rat, space, pool.scratch(),
                                     options.term_prune_rel_eps);
    out.why = arena.merged(a.why, b.why);
    ++dps.candidates_created;
    ++dps.merge_pairs;
    return out;
  }

  // -- pruning / sorting dispatch -------------------------------------------

  void prune(cand_list& list) {
    switch (options.rule) {
      case pruning_kind::two_param:
        prune_two_param(options.two_param, list, space, dps,
                        &pool.pruning_scratch());
        break;
      case pruning_kind::four_param:
        // Bound the quadratic prune so resource caps can fire between nodes
        // instead of being starved by one multi-minute pairwise pass.
        prune_four_param(options.four_param, list, space, dps,
                         options.max_list_size == 0
                             ? 0
                             : 50 * options.max_list_size,
                         &pool.pruning_scratch());
        break;
      case pruning_kind::corner:
        prune_corner(options.corner, list, space, dps);
        break;
    }
  }

  bool ordered_rule() const { return options.rule != pruning_kind::four_param; }

  /// Linear merge on the rule's scalar RAT key (mean for 2P; the corner
  /// projection would require re-deriving percentiles per pair, and the mean
  /// is the consistent total-order key for both ordered rules).
  cand_list merge_ordered(const cand_list& a, const cand_list& b) {
    cand_list out = pool.acquire();
    out.reserve(a.size() + b.size());
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < a.size() && j < b.size()) {
      out.push_back(merged_pair(a[i], b[j]));
      const double ta = a[i].rat.mean();
      const double tb = b[j].rat.mean();
      if (ta < tb) {
        ++i;
      } else if (ta > tb) {
        ++j;
      } else {
        ++i;
        ++j;
      }
    }
    return out;
  }

  /// Full cross product -- the price of a partial order (Section 2.2).
  cand_list merge_cross(const cand_list& a, const cand_list& b) {
    cand_list out = pool.acquire();
    // Reserving n*m up front can be gigabytes on exploded lists; grow
    // geometrically instead and let the caps stop the blow-up.
    out.reserve(std::min(a.size() * b.size(),
                         a.size() + b.size() + 1024));
    for (const auto& ca : a) {
      for (const auto& cb : b) {
        out.push_back(merged_pair(ca, cb));
      }
      if (over_budget(out.size())) break;
    }
    return out;
  }

  cand_list merge_lists(const cand_list& a, const cand_list& b) {
    return ordered_rule() ? merge_ordered(a, b) : merge_cross(a, b);
  }

  // -- per-node processing --------------------------------------------------

  /// Scalar figure of merit the active rule uses to pick the single buffered
  /// candidate per type (all buffered versions share the load form C_b, so
  /// only the RAT distinguishes them; keeping one per type is the classic
  /// van Ginneken convention and what keeps every rule's lists from
  /// multiplying at each position).
  double rat_selection_key(const stats::linear_form& rat) const {
    if (options.selection_percentile != 0.5) {
      return stats::percentile(rat, space, options.selection_percentile);
    }
    switch (options.rule) {
      case pruning_kind::two_param:
        return rat.mean();  // Lemma 4: P-ordering == mean ordering
      case pruning_kind::four_param:
        // The baseline's conservative corner pi_{beta_l} (eq. 3).
        return stats::percentile(rat, space, options.four_param.beta_lo);
      case pruning_kind::corner:
        return stats::percentile(rat, space,
                                 1.0 - options.corner.percentile);
    }
    return rat.mean();
  }

  /// Returns true when the Li-Shi frontier path ran (the caller then prunes
  /// with the presorted variant instead of the full re-sort).
  bool add_buffered_candidates(cand_list& list, tree::node_id id) {
    const std::size_t base = list.size();
    if (base == 0) return false;
    const bool mean_rule = options.rule == pruning_kind::two_param &&
                           options.two_param.is_mean_rule() &&
                           options.selection_percentile == 0.5;
    if (mean_rule && li_shi != nullptr) {
      // Li-Shi frontier (li_shi.hpp): one monotone divide-and-conquer pass
      // over the mean keys replaces the per-type scans. Devices are gathered
      // b-ascending first (the characterization order allocates source ids,
      // so it is part of the bit-identity contract), then the winners are
      // located without touching the pools, then the buffered candidates are
      // emitted b-ascending -- the scan path's exact pooled-op sequence per
      // type (cap copy, RAT subs) with the identical selections.
      auto& devs = li_shi->devices;
      devs.clear();
      li_shi->delays.clear();
      for (timing::buffer_index b = 0; b < options.library.size(); ++b) {
        devs.push_back(devices(id, b));
        li_shi->delays.push_back(devs.back().delay.mean());
      }
      // Pack the per-candidate mean keys contiguously: the divide-and-conquer
      // revisits rows many times and the packed reads keep it out of the
      // canonical forms entirely.
      li_shi->loads.resize(base);
      li_shi->rats.resize(base);
      for (std::size_t k = 0; k < base; ++k) {
        li_shi->loads[k] = list[k].load.mean();
        li_shi->rats[k] = list[k].rat.mean();
      }
      if (li_shi->res.size() != options.library.size()) {
        li_shi->res.clear();
        for (timing::buffer_index b = 0; b < options.library.size(); ++b) {
          li_shi->res.push_back(options.library[b].res_ohm);
        }
      }
      li_shi->frontier->best_per_type(base, li_shi->loads.data(),
                                      li_shi->rats.data(),
                                      li_shi->delays.data(),
                                      li_shi->res.data(), li_shi->best);
      for (timing::buffer_index b = 0; b < options.library.size(); ++b) {
        // npos (a NaN-poisoned device makes every key NaN) falls back to
        // candidate 0 -- the scan path's best_k = 0 start -- so the poison
        // survives to check_finite instead of an out-of-range read.
        const std::size_t k =
            li_shi->best[b] == li_shi_npos ? 0 : li_shi->best[b];
        const stats::linear_form cap =
            stats::pooled_copy(devs[b].cap, pool.scratch());
        list.push_back(buffered(list[k], id, b, devs[b], cap));
      }
      ++dps.li_shi_nodes;
      return true;
    }
    for (timing::buffer_index b = 0; b < options.library.size(); ++b) {
      const auto& type = options.library[b];
      // One physical device per (node, type): every candidate buffered here
      // shares the same characterized forms (and random source).
      const layout::device_variation dv = devices(id, b);
      // Pin C_b into the scratch epoch once; every buffered candidate's load
      // then borrows it instead of copying the device form per candidate.
      const stats::linear_form cap = stats::pooled_copy(dv.cap, pool.scratch());
      if (mean_rule) {
        // Mean-rule fast path: the selection key is linear in means, so the
        // winner is found without materializing any candidate form.
        // best_k starts at 0 (not sentinel): with finite means some k always
        // beats -inf so selection is unchanged, and a NaN-poisoned device
        // (all comparisons false) yields candidate 0 -- which then carries
        // the NaN forward for check_finite to catch -- instead of an
        // out-of-range read.
        double best_mean = -std::numeric_limits<double>::infinity();
        std::size_t best_k = 0;
        for (std::size_t k = 0; k < base; ++k) {
          const double mean = list[k].rat.mean() - dv.delay.mean() -
                              type.res_ohm * list[k].load.mean();
          if (mean > best_mean) {
            best_mean = mean;
            best_k = k;
          }
        }
        list.push_back(buffered(list[best_k], id, b, dv, cap));
      } else {
        // General rules: the key needs each resulting form's sigma, so
        // materialize candidates one at a time and keep the best.
        std::optional<stat_candidate> best;
        double best_key = -std::numeric_limits<double>::infinity();
        for (std::size_t k = 0; k < base; ++k) {
          stat_candidate cand = buffered(list[k], id, b, dv, cap);
          const double key = rat_selection_key(cand.rat);
          // `!best` keeps the first candidate even when its key is NaN (all
          // comparisons false); finite keys always beat -inf, so selection is
          // unchanged and poisoned forms survive to check_finite.
          if (!best.has_value() || key > best_key) {
            best_key = key;
            best = std::move(cand);
          }
        }
        if (best.has_value()) list.push_back(std::move(*best));
      }
    }
    return false;
  }

  /// Computes the candidate list of `id` from its children's lists (which are
  /// consumed). On a resource-cap abort dps.aborted is set and the returned
  /// list is meaningless. Wraps one scratch epoch: all form math hits the
  /// worker's scratch pool, the surviving list is sealed, the pool rewinds.
  node_list solve_node(tree::node_id id, std::span<node_list> lists) {
    if (guard.begin_node(id, pool)) return {};
    const std::size_t alloc0 =
        pool.allocations() + stats::term_heap_allocations();
    const std::size_t dense0 = stats::dense_forms_produced();
    const std::size_t terms0 = stats::pooled_terms_merged();
    cand_list here = pool.acquire();
    solve_node_impl(id, lists, here);
    if (!dps.aborted && options.check_nonfinite) check_finite(here);
    node_list out;
    if (!dps.aborted) {
      out = pool.seal(std::move(here));
    } else {
      // Aborted lists are meaningless; drop the borrowed forms before the
      // epoch ends and recycle the buffer.
      here.clear();
      pool.release(std::move(here));
    }
    pool.end_node();
    dps.allocations +=
        pool.allocations() + stats::term_heap_allocations() - alloc0;
    dps.peak_terms = std::max(dps.peak_terms, pool.scratch().peak_terms());
    dps.dense_forms += stats::dense_forms_produced() - dense0;
    dps.terms_merged += stats::pooled_terms_merged() - terms0;
    return out;
  }

  void solve_node_impl(tree::node_id id, std::span<node_list> lists,
                       cand_list& here) {
    const auto& n = tree.node(id);
    if (n.is_sink()) {
      here.push_back({stats::linear_form{n.sink_cap_pf},
                      stats::linear_form{n.sink_rat_ps}, arena.leaf()});
      ++dps.candidates_created;
    } else {
      for (tree::node_id child : n.children) {
        cand_list up = std::move(lists[child].cands);
        // The child's slab must outlive this node: `up`'s forms (and copies
        // of them) borrow it until the seal.
        pool.retire_block(std::move(lists[child].slab));
        lists[child] = node_list{};
        propagate_wire(up, child, tree.node(child).parent_wire_um);
        if (li_shi != nullptr && !menu.sizing_enabled() &&
            options.rule == pruning_kind::two_param &&
            options.two_param.is_mean_rule()) {
          // Li-Shi path, single-width wires: the propagation shifts every
          // mean load by the same wire cap, so the child's pruned (sorted)
          // list is still sorted -- only the window-1 sweep is needed.
          prune_two_param_mean_sorted(up, dps);
        } else {
          prune(up);
        }
        if (here.empty()) {
          pool.release(std::move(here));
          here = std::move(up);
        } else {
          cand_list merged = merge_lists(here, up);
          pool.release(std::move(here));
          pool.release(std::move(up));
          here = std::move(merged);
          // Caps must fire *before* the (possibly quadratic) prune touches
          // an exploded list -- this is what turns the 4P blow-up into the
          // paper's clean "exceeded memory/time limit" failure.
          if (over_budget(here.size())) break;
          prune(here);
        }
        if (over_budget(here.size())) break;
      }
    }
    if (dps.aborted) return;
    if (!n.is_source()) {
      const std::size_t base = here.size();
      const bool frontier = add_buffered_candidates(here, id);
      if (over_budget(here.size())) return;
      if (frontier) {
        // Li-Shi path: the base is already pruned (sorted by mean load);
        // place only the appended buffered candidates instead of re-sorting.
        prune_two_param_mean_presorted(here, base, dps);
      } else {
        prune(here);
      }
    }
    dps.peak_list_size = std::max(dps.peak_list_size, here.size());
    over_budget(here.size());
    guard.publish();
  }

  /// Debug-mode guardrail (stat_options::check_nonfinite): scan the node's
  /// final candidates for NaN/inf before sealing. Read-only; a hit trips the
  /// guard with solve_code::nonfinite_value instead of letting the poison
  /// propagate silently to the root selection.
  void check_finite(const cand_list& list) {
    for (const auto& c : list) {
      if (!c.load.is_finite() || !c.rat.is_finite()) {
        guard.trip(solve_code::nonfinite_value,
                   "non-finite canonical form at seal point");
        return;
      }
    }
  }

  /// Picks the winning root candidate and backtracks it into a design.
  /// Requires a completed (non-aborted) run; throws on an empty root list.
  stat_result select_root(const node_list& root) {
    const cand_list& root_list = root.cands;
    if (root_list.empty()) {
      throw std::logic_error("run_statistical_insertion: empty root list");
    }
    stat_result result;
    const stat_candidate* best = nullptr;
    stats::linear_form best_rat;
    double best_key = -std::numeric_limits<double>::infinity();
    for (const auto& c : root_list) {
      stats::linear_form root_rat = c.rat;
      root_rat -= options.driver_res_ohm * c.load;
      const double key =
          stats::percentile(root_rat, space, options.root_percentile);
      if (key > best_key) {
        best_key = key;
        best = &c;
        best_rat = std::move(root_rat);
      }
    }
    // The winner may still borrow the root list's slab (e.g. when the driver
    // load is deterministic); the caller's result must outlive it.
    best_rat.own_terms();
    result.root_rat = std::move(best_rat);
    design_choice design = extract_design(best->why, tree.num_nodes());
    result.assignment = std::move(design.buffers);
    result.wires = std::move(design.wires);
    result.num_buffers = result.assignment.count();
    return result;
  }
};

/// Shared option validation of the legacy (throwing) serial and parallel
/// entry points.
void validate_stat_options(const stat_options& options);

/// Structured option validation of the typed entry points: nullopt when the
/// options are valid, otherwise an invalid_options error whose detail names
/// the offending field.
std::optional<solve_error> check_stat_options(const stat_options& options);

/// Translates an aborted run's dp_stats into its typed solve_error.
solve_error error_from_stats(const dp_stats& stats);

/// The serial DP without entry validation: shared core of the legacy shim
/// and the typed entry point.
stat_result run_statistical_impl(const tree::routing_tree& tree,
                                 layout::process_model& model,
                                 const stat_options& options,
                                 const cancel_token* cancel);

/// Last-resort evaluation of the tree with no buffers inserted
/// (degrade_policy::best_partial): one value-semantics postorder pass over
/// the statistical wire/merge operations. Never trips a cap and never
/// throws for taxonomy failures.
stat_result evaluate_unbuffered(const tree::routing_tree& tree,
                                layout::process_model& model,
                                const stat_options& options);

/// Applies options.degrade to a failed solve: retries with the deterministic
/// corner rule (serial engine, fresh wall budget), then -- for best_partial
/// -- falls back to evaluate_unbuffered. Returns `err` unchanged when the
/// policy is none, the code is not degradable (only candidate_cap,
/// memory_cap and deadline_exceeded are), or every fallback failed too.
solve_outcome<stat_result> degrade_or_error(const tree::routing_tree& tree,
                                            layout::process_model& model,
                                            const stat_options& options,
                                            const cancel_token* cancel,
                                            solve_error&& err);

/// Builds the width menu implied by the options (single width disables
/// sizing).
timing::wire_menu make_wire_menu(const stat_options& options);

}  // namespace vabi::core::detail
