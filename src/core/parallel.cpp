#include "core/parallel.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <latch>
#include <limits>
#include <mutex>
#include <new>
#include <stdexcept>
#include <thread>

#include "core/dp_engine.hpp"
#include "core/journal.hpp"
#include "core/slab_cache_impl.hpp"
#include "stats/rng.hpp"
#include "testing/fault_injection.hpp"

namespace vabi::core {

// ---------------------------------------------------------------------------
// Work-stealing thread pool.
// ---------------------------------------------------------------------------

namespace {

/// Which pool (and worker slot) the current thread belongs to.
thread_local void* tl_pool = nullptr;
thread_local int tl_worker = -1;

}  // namespace

struct thread_pool::impl {
  struct worker_queue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  // unique_ptr: worker_queue holds a mutex and must not relocate.
  std::vector<std::unique_ptr<worker_queue>> queues;
  std::mutex inject_mu;
  std::deque<std::function<void()>> injected;
  std::condition_variable cv;
  /// Tasks submitted but not yet claimed by a worker. Sleepers poll this with
  /// a short timed wait, so a notify racing a sleeper going down cannot stall
  /// the pool.
  std::atomic<std::size_t> ready{0};
  /// Tasks claimed and currently executing. The shutdown condition requires
  /// both counters to be zero: a running task may still submit children (DAG
  /// scheduling), so "no queued tasks" alone is not "drained" -- this is what
  /// makes destroying the pool safe even when a wave was cancelled and its
  /// tail of tasks is still winding down.
  std::atomic<std::size_t> active{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;

  bool pop_local(int idx, std::function<void()>& task) {
    auto& q = *queues[idx];
    std::lock_guard lk(q.mu);
    if (q.tasks.empty()) return false;
    task = std::move(q.tasks.back());  // LIFO: depth-first, cache-warm
    q.tasks.pop_back();
    return true;
  }

  bool pop_injected(std::function<void()>& task) {
    std::lock_guard lk(inject_mu);
    if (injected.empty()) return false;
    task = std::move(injected.front());
    injected.pop_front();
    return true;
  }

  bool steal(int idx, std::function<void()>& task) {
    const std::size_t n = queues.size();
    for (std::size_t off = 1; off < n; ++off) {
      auto& q = *queues[(static_cast<std::size_t>(idx) + off) % n];
      std::lock_guard lk(q.mu);
      if (q.tasks.empty()) continue;
      task = std::move(q.tasks.front());  // FIFO: the victim's oldest task
      q.tasks.pop_front();
      return true;
    }
    return false;
  }

  void worker_main(int idx) {
    tl_pool = this;
    tl_worker = idx;
    std::function<void()> task;
    for (;;) {
      if (pop_local(idx, task) || pop_injected(task) || steal(idx, task)) {
        // active must rise before ready falls: a shutdown check between the
        // two RMWs must never observe "nothing queued, nothing running"
        // while this task is in flight.
        active.fetch_add(1, std::memory_order_relaxed);
        ready.fetch_sub(1, std::memory_order_relaxed);
        task();
        task = nullptr;
        active.fetch_sub(1, std::memory_order_release);
        continue;
      }
      std::unique_lock lk(inject_mu);
      if (stop.load(std::memory_order_relaxed) &&
          ready.load(std::memory_order_relaxed) == 0 &&
          active.load(std::memory_order_acquire) == 0) {
        return;
      }
      // While stop is set but a task is still active the predicate stays
      // false: the worker naps instead of spinning, and wakes on either new
      // work (the running task submitted children) or the 1ms poll seeing
      // the drain complete.
      cv.wait_for(lk, std::chrono::milliseconds(1), [&] {
        return ready.load(std::memory_order_relaxed) > 0 ||
               (stop.load(std::memory_order_relaxed) &&
                active.load(std::memory_order_relaxed) == 0);
      });
    }
  }
};

thread_pool::thread_pool(std::size_t num_threads) : impl_(new impl) {
  const std::size_t n =
      num_threads == 0 ? default_thread_count() : num_threads;
  impl_->queues.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    impl_->queues.push_back(std::make_unique<impl::worker_queue>());
  }
  impl_->threads.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    impl_->threads.emplace_back(
        [im = impl_.get(), i] { im->worker_main(static_cast<int>(i)); });
  }
}

thread_pool::~thread_pool() {
  // Workers keep claiming tasks until the queues are empty AND nothing is
  // running (a running task may submit more work), so join() below is a full
  // drain regardless of how the last wave ended.
  impl_->stop.store(true, std::memory_order_relaxed);
  impl_->cv.notify_all();
  for (auto& t : impl_->threads) t.join();
}

std::size_t thread_pool::size() const { return impl_->queues.size(); }

void thread_pool::submit(std::function<void()> task) {
  impl* im = impl_.get();
  if (tl_pool == im && tl_worker >= 0) {
    auto& q = *im->queues[tl_worker];
    std::lock_guard lk(q.mu);
    q.tasks.push_back(std::move(task));
  } else {
    std::lock_guard lk(im->inject_mu);
    im->injected.push_back(std::move(task));
  }
  im->ready.fetch_add(1, std::memory_order_relaxed);
  im->cv.notify_one();
}

int thread_pool::current_worker() noexcept {
  return tl_pool != nullptr ? tl_worker : -1;
}

std::size_t thread_pool::default_thread_count() {
  if (const char* v = std::getenv("VABI_THREADS")) {
    const unsigned long n = std::strtoul(v, nullptr, 10);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

// ---------------------------------------------------------------------------
// Intra-tree parallel DP.
// ---------------------------------------------------------------------------

device_cache::device_cache(const tree::routing_tree& tree,
                           layout::process_model& model,
                           const timing::buffer_library& library)
    : lib_size_(library.size()) {
  devices_.resize(tree.num_nodes() * lib_size_);
  // Postorder, skipping the source: exactly the order in which the serial
  // engine's add_buffered_candidates lazily characterizes, so the model
  // registers the same private random sources with the same ids.
  for (tree::node_id id : tree.postorder()) {
    const auto& n = tree.node(id);
    if (n.is_source()) continue;
    for (timing::buffer_index b = 0; b < lib_size_; ++b) {
      const auto& type = library[b];
      layout::device_variation dv =
          model.characterize(n.location, type.cap_pf, type.delay_ps);
      // Same injection point as the serial engine's lazy device_fn, so a
      // poisoned (node, type) poisons both engines identically.
      if (testing::should_fire(testing::fault_point::device_nan, id)) {
        dv.delay += std::numeric_limits<double>::quiet_NaN();
      }
      devices_[static_cast<std::size_t>(id) * lib_size_ + b] = std::move(dv);
    }
  }
}

namespace {

struct parallel_run {
  struct worker_state {
    decision_arena arena;
    detail::worker_arena mem;
    dp_stats dps;
    std::size_t published = 0;
    detail::li_shi_state li_shi;  ///< scratch is per worker; frontier shared
  };

  const tree::routing_tree& tree;
  const stat_options& options;
  const stats::variation_space& space;
  const timing::wire_menu& menu;
  const device_cache* cache;  ///< one-shot mode; null in session mode
  thread_pool& pool;
  const cancel_token* cancel;

  /// Session (ECO) mode: devices come from the session memo, decisions and
  /// term storage from the session-owned worker arenas (they must outlive
  /// this run -- cached candidates keep borrowing them), and only nodes with
  /// marked[id] != 0 are scheduled (the rest were adopted from the slab
  /// cache; their lists are pre-filled). With store set, every solved node's
  /// sealed list is cloned into the cache.
  detail::session_state* session = nullptr;
  const std::vector<std::uint8_t>* marked = nullptr;
  bool store_entries = false;

  std::vector<worker_state> states;
  std::vector<detail::node_list> lists;
  std::vector<std::atomic<std::uint32_t>> pending;
  detail::shared_budget budget;
  /// Li-Shi type frontier, built once and read-only afterwards -- safe to
  /// share across workers. frontier_on mirrors the serial driver's gate.
  buffer_frontier frontier;
  bool frontier_on = false;
  std::latch done{1};

  stat_result root_result;
  bool root_ok = false;
  std::mutex error_mu;
  std::exception_ptr error;

  parallel_run(const tree::routing_tree& t, const stat_options& o,
               const stats::variation_space& sp, const timing::wire_menu& m,
               const device_cache* c, thread_pool& p,
               const cancel_token* ct)
      : tree(t),
        options(o),
        space(sp),
        menu(m),
        cache(c),
        pool(p),
        cancel(ct),
        states(p.size()),
        lists(t.num_nodes()),
        pending(t.num_nodes()) {
    for (tree::node_id id = 0; id < tree.num_nodes(); ++id) {
      pending[id].store(
          static_cast<std::uint32_t>(tree.node(id).children.size()),
          std::memory_order_relaxed);
    }
    budget.t_start = detail::dp_clock::now();
    if (li_shi_enabled(options.li_shi, options.library.size()) &&
        options.rule == pruning_kind::two_param &&
        options.two_param.is_mean_rule() &&
        options.selection_percentile == 0.5) {
      frontier = buffer_frontier{options.library};
      frontier_on = true;
      for (auto& st : states) st.li_shi.frontier = &frontier;
    }
  }

  /// Switches the run into session mode. Must be called before run(): lists
  /// for adopted subtree roots are expected pre-filled, and the pending
  /// counters are re-derived to count *marked* children only (an adopted
  /// child never runs a task, so it must not hold its parent's counter).
  void setup_session(detail::session_state& ss,
                     const std::vector<std::uint8_t>& marks, bool store,
                     detail::dp_clock::time_point t_start) {
    session = &ss;
    marked = &marks;
    store_entries = store;
    budget.t_start = t_start;
    for (tree::node_id id = 0; id < tree.num_nodes(); ++id) {
      std::uint32_t n = 0;
      for (const tree::node_id c : tree.node(id).children) {
        n += marks[c] != 0 ? 1u : 0u;
      }
      pending[id].store(n, std::memory_order_relaxed);
    }
  }

  detail::dp_worker make_worker(int w) {
    worker_state& st = states[w];
    decision_arena& arena =
        session != nullptr ? session->workers[w]->arena : st.arena;
    detail::worker_arena& mem =
        session != nullptr ? session->workers[w]->mem : st.mem;
    return detail::dp_worker{
        tree,
        space,
        options,
        menu,
        [this](tree::node_id id, timing::buffer_index b) {
          return session != nullptr ? session->device(id, b)
                                    : cache->get(id, b);
        },
        arena,
        mem,
        st.dps,
        detail::resource_guard{options, st.dps, st.published, &budget, cancel,
                               {}},
        frontier_on ? &st.li_shi : nullptr};
  }

  void fail(std::exception_ptr e) {
    std::lock_guard lk(error_mu);
    if (!error) error = std::move(e);
    budget.aborted.store(true, std::memory_order_release);
  }

  /// One task: solve node `id`, then release whichever of {parent task, the
  /// joining caller} is now unblocked. The pending counter's acq_rel RMW is
  /// the happens-before edge that makes every child's list (and any abort
  /// flag it set) visible to the parent's task.
  void run_node(tree::node_id id) {
    const int w = thread_pool::current_worker();
    try {
      if (!budget.aborted.load(std::memory_order_acquire)) {
        detail::dp_worker worker = make_worker(w);
        detail::node_list here = worker.solve_node(id, lists);
        if (!states[w].dps.aborted) {
          if (session != nullptr) {
            ++states[w].dps.cache_misses;
            // Clone into the cache before the parent consumes the list; a
            // tripped node (or its never-solved ancestors) stores nothing.
            if (store_entries) {
              session->store(id, tree.subtree_hash(id), here);
            }
          }
          lists[id] = std::move(here);
        } else {
          worker.guard.publish();
        }
      }
      if (tree.node(id).is_source() &&
          !budget.aborted.load(std::memory_order_acquire)) {
        // The root task transitively depends on every node, so at this point
        // all lists are visible and final.
        detail::dp_worker worker = make_worker(w);
        root_result = worker.select_root(lists[id]);
        root_ok = true;
      }
    } catch (...) {
      fail(std::current_exception());
    }
    const auto& n = tree.node(id);
    if (n.is_source()) {
      // Last action of the whole DAG: after this the joining thread may
      // tear the run down, so nothing below may touch *this.
      done.count_down();
    } else if (pending[n.parent].fetch_sub(1, std::memory_order_acq_rel) ==
               1) {
      const tree::node_id parent = n.parent;
      pool.submit([this, parent] { run_node(parent); });
    }
  }

  stat_result run() {
    // Seed the DAG with the structural leaves only. Testing the live pending
    // counters here instead would race the cascade: a worker can drain a
    // parent's counter to zero (and submit it) while this loop is still
    // walking, and a second submission of the same node corrupts the run.
    for (tree::node_id id : tree.postorder()) {
      if (marked != nullptr && (*marked)[id] == 0) continue;
      // Structural leaves of the scheduled DAG: no children in one-shot
      // mode, no *marked* children in session mode (adopted children are
      // data, not tasks). Static info only -- testing the live pending
      // counters here would race the cascade.
      bool has_marked_child = false;
      for (const tree::node_id c : tree.node(id).children) {
        if (marked == nullptr || (*marked)[c] != 0) {
          has_marked_child = true;
          break;
        }
      }
      if (!has_marked_child) {
        pool.submit([this, id] { run_node(id); });
      }
    }
    done.wait();
    if (error) std::rethrow_exception(error);

    stat_result result;
    if (root_ok) result = std::move(root_result);

    dp_stats total;
    for (const auto& st : states) {
      total.candidates_created += st.dps.candidates_created;
      total.candidates_pruned += st.dps.candidates_pruned;
      total.merge_pairs += st.dps.merge_pairs;
      total.peak_list_size = std::max(total.peak_list_size,
                                      st.dps.peak_list_size);
      total.allocations += st.dps.allocations;
      total.peak_terms = std::max(total.peak_terms, st.dps.peak_terms);
      total.dense_forms += st.dps.dense_forms;
      total.terms_merged += st.dps.terms_merged;
      total.dominance_prefilter_hits += st.dps.dominance_prefilter_hits;
      total.li_shi_nodes += st.dps.li_shi_nodes;
      total.cache_hits += st.dps.cache_hits;
      total.cache_misses += st.dps.cache_misses;
      total.nodes_reused += st.dps.nodes_reused;
      total.tiled_prunes += st.dps.tiled_prunes;
      total.tile_prefilter_hits += st.dps.tile_prefilter_hits;
      total.pairs_batched += st.dps.pairs_batched;
      // Prefer the worker that tripped a *primary* cause over workers that
      // merely observed the broadcast abort (code cancelled, reason
      // "aborted by another worker").
      if (st.dps.aborted && (!total.aborted ||
                             total.abort_reason == "aborted by another worker")) {
        total.aborted = true;
        total.abort_reason = st.dps.abort_reason;
        total.abort_code = st.dps.abort_code;
        total.abort_node = st.dps.abort_node;
      }
    }
    if (total.aborted) {
      result = stat_result{};
      result.assignment = timing::buffer_assignment(tree.num_nodes());
    }
    total.wall_seconds =
        std::chrono::duration<double>(detail::dp_clock::now() - budget.t_start)
            .count();
    result.stats = std::move(total);
    return result;
  }
};

}  // namespace

namespace {

stat_result run_parallel_impl(const tree::routing_tree& tree,
                              layout::process_model& model,
                              const stat_options& options, thread_pool& pool,
                              const cancel_token* cancel) {
  const timing::wire_menu menu = detail::make_wire_menu(options);
  const device_cache cache(tree, model, options.library);
  parallel_run run{tree, options, model.space(), menu, &cache, pool, cancel};
  return run.run();
}

}  // namespace

namespace detail {

stat_result session_solve_parallel(session_state& ss,
                                   const tree::routing_tree& tree,
                                   const stat_options& options,
                                   thread_pool& pool,
                                   const cancel_token* cancel,
                                   bool use_cache) {
  const timing::wire_menu menu = make_wire_menu(options);
  const dp_clock::time_point t_start = dp_clock::now();

  ss.prepare(tree, options);
  std::vector<node_list> lists(tree.num_nodes());
  const auto marks = ss.mark(tree, lists, use_cache);

  while (ss.workers.size() < pool.size()) {
    ss.workers.push_back(std::make_unique<session_worker>());
  }
  for (auto& w : ss.workers) w->mem.begin_run();

  stat_result result;
  dp_stats total;
  if (marks.marked[tree.root()] == 0) {
    // Full hit: the whole tree (root included) was adopted; nothing to
    // schedule, only the root selection runs -- serially, like the one-task
    // DAG it replaces.
    ss.mem.begin_run();
    std::size_t published = 0;
    dp_worker worker{tree,
                     ss.model->space(),
                     options,
                     menu,
                     [&ss](tree::node_id id, timing::buffer_index b) {
                       return ss.device(id, b);
                     },
                     ss.arena,
                     ss.mem,
                     total,
                     resource_guard{options, total, published, nullptr, cancel,
                                    t_start}};
    result = worker.select_root(lists[tree.root()]);
  } else {
    parallel_run run{tree,  options, ss.model->space(), menu,
                     nullptr, pool,  cancel};
    run.setup_session(ss, marks.marked, use_cache, t_start);
    // Hand the run the adopted clones mark() filled in (it sized its own
    // empty list vector in the constructor).
    run.lists = std::move(lists);
    result = run.run();
    total = result.stats;
  }
  total.cache_hits = marks.hits;
  total.nodes_reused = marks.reused;
  total.wall_seconds =
      std::chrono::duration<double>(dp_clock::now() - t_start).count();
  result.stats = std::move(total);
  return result;
}

}  // namespace detail

stat_result run_parallel_insertion(const tree::routing_tree& tree,
                                   layout::process_model& model,
                                   const stat_options& options,
                                   thread_pool& pool) {
  detail::validate_stat_options(options);
  return run_parallel_impl(tree, model, options, pool, nullptr);
}

solve_outcome<stat_result> solve_parallel_insertion(
    const tree::routing_tree& tree, layout::process_model& model,
    const stat_options& options, thread_pool& pool,
    const cancel_token* cancel) {
  if (auto bad = detail::check_stat_options(options)) return std::move(*bad);
  try {
    tree.validate();
  } catch (const std::exception& e) {
    return solve_error{solve_code::invalid_tree, tree::invalid_node, e.what()};
  }

  solve_error err;
  try {
    stat_result r = run_parallel_impl(tree, model, options, pool, cancel);
    if (!r.stats.aborted) return r;
    err = detail::error_from_stats(r.stats);
  } catch (const std::bad_alloc&) {
    err = solve_error{solve_code::memory_cap, tree::invalid_node,
                      "term storage allocation failed"};
  } catch (const std::exception& e) {
    err = solve_error{solve_code::internal, tree::invalid_node, e.what()};
  }
  // Degraded retries run serially (corner rule / unbuffered evaluation), so
  // a fallback result is identical for any thread count.
  return detail::degrade_or_error(tree, model, options, cancel,
                                  std::move(err));
}

// ---------------------------------------------------------------------------
// Batch solver.
// ---------------------------------------------------------------------------

batch_solver::batch_solver(config cfg)
    : config_(cfg),
      pool_(cfg.num_threads == 0 ? thread_pool::default_thread_count()
                                 : cfg.num_threads) {}

std::size_t batch_solver::num_threads() const { return pool_.size(); }

/// Shared by every batch path -- and by the serve daemon: resolves job i's
/// net (generating from the derived per-job seed when asked) and builds its
/// process model. Throws on an unusable job spec -- solve() forwards that,
/// solve_outcomes captures it.
prepared_job prepare_batch_job(const batch_job& job, std::size_t i,
                               const std::optional<std::uint64_t>& batch_seed) {
  if (testing::should_fire(testing::fault_point::batch_job_throw, i)) {
    throw std::runtime_error("injected batch job failure");
  }
  prepared_job setup;
  setup.net = job.tree;
  if (setup.net == nullptr) {
    if (!job.generate.has_value()) {
      throw std::invalid_argument(
          "batch_job: neither tree nor generate is set");
    }
    tree::random_tree_options g = *job.generate;
    if (batch_seed.has_value()) {
      g.seed = stats::derive_seed(*batch_seed, i);
    }
    setup.generated.emplace(tree::make_random_tree(g));
    setup.net = &*setup.generated;
  }
  layout::bbox die = job.die;
  if (die.width() <= 0.0 || die.height() <= 0.0) {
    die = setup.net->bounding_box();
    die.expand({die.lo.x - 1.0, die.lo.y - 1.0});
    die.expand({die.hi.x + 1.0, die.hi.y + 1.0});
  }
  setup.model.emplace(die, job.model);
  return setup;
}

std::vector<batch_result> batch_solver::solve(
    const std::vector<batch_job>& jobs) {
  std::vector<std::optional<batch_result>> slots(jobs.size());
  std::latch done{static_cast<std::ptrdiff_t>(jobs.size())};
  std::mutex error_mu;
  std::exception_ptr error;

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    pool_.submit([&, i] {
      try {
        prepared_job setup = prepare_batch_job(jobs[i], i, config_.batch_seed);
        stat_result r =
            run_statistical_insertion(*setup.net, *setup.model,
                                      jobs[i].options);
        slots[i].emplace(batch_result{std::move(r), std::move(*setup.model),
                                      std::move(setup.generated)});
      } catch (...) {
        std::lock_guard lk(error_mu);
        if (!error) error = std::current_exception();
      }
      done.count_down();
    });
  }
  done.wait();
  if (error) std::rethrow_exception(error);

  std::vector<batch_result> out;
  out.reserve(jobs.size());
  for (auto& slot : slots) out.push_back(std::move(*slot));
  return out;
}

std::vector<solve_outcome<batch_result>> batch_solver::solve_outcomes(
    const std::vector<batch_job>& jobs, const cancel_token* cancel) {
  std::vector<std::optional<solve_outcome<batch_result>>> slots(jobs.size());
  std::latch done{static_cast<std::ptrdiff_t>(jobs.size())};

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    pool_.submit([&, i] {
      // Everything a job can do wrong lands in its own slot: a typed error
      // from the solver, a thrown exception from generation/model setup, or
      // an injected fault. Nothing propagates out of the pool worker.
      try {
        if (cancel != nullptr && cancel->stop_requested()) {
          slots[i].emplace(solve_error{solve_code::cancelled,
                                       tree::invalid_node,
                                       "cancelled before start"});
        } else {
          prepared_job setup = prepare_batch_job(jobs[i], i, config_.batch_seed);
          solve_outcome<batch_result> out = [&]() -> solve_outcome<batch_result> {
            auto solved = solve_statistical_insertion(
                *setup.net, *setup.model, jobs[i].options, cancel);
            if (!solved.ok()) return std::move(solved.error());
            return batch_result{std::move(*solved), std::move(*setup.model),
                                std::move(setup.generated)};
          }();
          slots[i].emplace(std::move(out));
        }
      } catch (const std::bad_alloc&) {
        slots[i].emplace(solve_error{solve_code::memory_cap,
                                     tree::invalid_node,
                                     "allocation failed preparing job"});
      } catch (const std::exception& e) {
        slots[i].emplace(solve_error{solve_code::internal, tree::invalid_node,
                                     e.what()});
      } catch (...) {
        slots[i].emplace(solve_error{solve_code::internal, tree::invalid_node,
                                     "unknown exception"});
      }
      done.count_down();
    });
  }
  done.wait();

  std::vector<solve_outcome<batch_result>> out;
  out.reserve(jobs.size());
  for (auto& slot : slots) out.push_back(std::move(*slot));
  return out;
}

// ---------------------------------------------------------------------------
// Journaled (crash-recoverable) batch solving.
// ---------------------------------------------------------------------------

namespace {

std::uint64_t hash_stat_options(const stat_options& o, std::uint64_t h) {
  h = fnv1a_f64(o.wire.res_per_um, h);
  h = fnv1a_f64(o.wire.cap_per_um, h);
  h = fnv1a_u64(o.library.size(), h);
  for (const auto& b : o.library.types()) {
    h = fnv1a_str(b.name, h);
    h = fnv1a_f64(b.cap_pf, h);
    h = fnv1a_f64(b.delay_ps, h);
    h = fnv1a_f64(b.res_ohm, h);
  }
  h = fnv1a_f64(o.driver_res_ohm, h);
  h = fnv1a_u64(o.wire_width_multipliers.size(), h);
  for (const double m : o.wire_width_multipliers) h = fnv1a_f64(m, h);
  h = fnv1a_u64(static_cast<std::uint64_t>(o.rule), h);
  h = fnv1a_f64(o.two_param.p_load, h);
  h = fnv1a_f64(o.two_param.p_rat, h);
  h = fnv1a_u64(o.two_param.sweep_window, h);
  h = fnv1a_f64(o.four_param.alpha_lo, h);
  h = fnv1a_f64(o.four_param.alpha_hi, h);
  h = fnv1a_f64(o.four_param.beta_lo, h);
  h = fnv1a_f64(o.four_param.beta_hi, h);
  h = fnv1a_f64(o.corner.percentile, h);
  h = fnv1a_f64(o.root_percentile, h);
  h = fnv1a_f64(o.selection_percentile, h);
  h = fnv1a_f64(o.term_prune_rel_eps, h);
  h = fnv1a_u64(o.max_list_size, h);
  h = fnv1a_u64(o.max_candidates, h);
  h = fnv1a_f64(o.max_wall_seconds, h);
  h = fnv1a_u64(o.max_arena_bytes, h);
  h = fnv1a_u64(o.check_nonfinite ? 1 : 0, h);
  h = fnv1a_u64(static_cast<std::uint64_t>(o.degrade), h);
  return h;
}

std::uint64_t hash_model_config(const layout::process_model_config& c,
                                std::uint64_t h) {
  const auto budget = [&](const layout::class_budget& b, std::uint64_t hh) {
    hh = fnv1a_f64(b.cap, hh);
    return fnv1a_f64(b.delay, hh);
  };
  h = budget(c.budgets.random_device, h);
  h = budget(c.budgets.inter_die, h);
  h = budget(c.budgets.spatial, h);
  h = fnv1a_u64((c.mode.random_device ? 1u : 0u) |
                    (c.mode.inter_die ? 2u : 0u) | (c.mode.spatial ? 4u : 0u),
                h);
  h = fnv1a_f64(c.spatial.cell_size_um, h);
  h = fnv1a_f64(c.spatial.range_um, h);
  h = fnv1a_u64(static_cast<std::uint64_t>(c.spatial.profile), h);
  return h;
}

std::uint64_t hash_tree(const tree::routing_tree& t, std::uint64_t h) {
  h = fnv1a_u64(t.num_nodes(), h);
  for (const auto& n : t.nodes()) {
    h = fnv1a_u64(static_cast<std::uint64_t>(n.kind), h);
    h = fnv1a_f64(n.location.x, h);
    h = fnv1a_f64(n.location.y, h);
    h = fnv1a_u64(n.parent, h);
    h = fnv1a_f64(n.parent_wire_um, h);
    h = fnv1a_f64(n.sink_cap_pf, h);
    h = fnv1a_f64(n.sink_rat_ps, h);
  }
  return h;
}

/// Builds the journal_record for slot i of a finished job.
journal_record make_record(std::size_t i, std::uint64_t fingerprint,
                           const solve_outcome<batch_result>& slot) {
  journal_record rec;
  rec.job_index = i;
  rec.fingerprint = fingerprint;
  rec.ok = slot.ok();
  if (slot.ok()) {
    rec.num_sources = slot->model.space().size();
    rec.result = slot->result;
    rec.result.root_rat.own_terms();
  } else {
    rec.code = slot.error().code;
    rec.error_node = slot.error().node;
    rec.detail = slot.error().detail;
  }
  return rec;
}

/// True when two results are bit-identical on every field of the determinism
/// contract (allocations/peak_terms/wall_seconds are scheduling- or
/// time-dependent and excluded, as documented on dp_stats).
bool results_identical(const stat_result& a, const stat_result& b) {
  if (!(a.root_rat == b.root_rat)) return false;
  if (a.num_buffers != b.num_buffers || a.path != b.path) return false;
  if (a.assignment.num_nodes() != b.assignment.num_nodes()) return false;
  for (tree::node_id n = 0; n < a.assignment.num_nodes(); ++n) {
    const bool ha = a.assignment.has_buffer(n);
    if (ha != b.assignment.has_buffer(n)) return false;
    if (ha && a.assignment.buffer(n) != b.assignment.buffer(n)) return false;
  }
  if (a.wires.num_nodes() != b.wires.num_nodes()) return false;
  for (tree::node_id n = 0; n < a.wires.num_nodes(); ++n) {
    if (a.wires.width(n) != b.wires.width(n)) return false;
  }
  return a.stats.candidates_created == b.stats.candidates_created &&
         a.stats.candidates_pruned == b.stats.candidates_pruned &&
         a.stats.merge_pairs == b.stats.merge_pairs &&
         a.stats.peak_list_size == b.stats.peak_list_size;
}

solve_error mismatch(std::string detail) {
  return solve_error{solve_code::journal_mismatch, tree::invalid_node,
                     std::move(detail)};
}

}  // namespace

std::uint64_t fingerprint_job(const batch_job& job, std::size_t index,
                              const std::optional<std::uint64_t>& batch_seed) {
  std::uint64_t h = fnv1a_seed;
  h = hash_stat_options(job.options, h);
  h = hash_model_config(job.model, h);
  h = fnv1a_f64(job.die.lo.x, h);
  h = fnv1a_f64(job.die.lo.y, h);
  h = fnv1a_f64(job.die.hi.x, h);
  h = fnv1a_f64(job.die.hi.y, h);
  if (job.tree != nullptr) {
    h = fnv1a_u64(1, h);
    h = hash_tree(*job.tree, h);
  } else if (job.generate.has_value()) {
    tree::random_tree_options g = *job.generate;
    if (batch_seed.has_value()) {
      g.seed = stats::derive_seed(*batch_seed, index);
    }
    h = fnv1a_u64(2, h);
    h = fnv1a_u64(g.num_sinks, h);
    h = fnv1a_f64(g.die_side_um, h);
    h = fnv1a_u64(g.seed, h);
    h = fnv1a_f64(g.sink_cap_min_pf, h);
    h = fnv1a_f64(g.sink_cap_max_pf, h);
    h = fnv1a_f64(g.sink_rat_ps, h);
    h = fnv1a_f64(g.criticality_balance, h);
    h = fnv1a_f64(g.balance_delay_per_um, h);
  } else {
    h = fnv1a_u64(0, h);  // unusable job; solving it yields a typed error
  }
  return h;
}

solve_outcome<journaled_batch> batch_solver::solve_journaled(
    const std::vector<batch_job>& jobs, const batch_journal_options& journal,
    const cancel_token* cancel) {
  journaled_batch out;

  std::vector<std::uint64_t> fingerprints(jobs.size());
  std::uint64_t jobs_fp = fnv1a_u64(jobs.size(), fnv1a_seed);
  if (config_.batch_seed.has_value()) {
    jobs_fp = fnv1a_u64(*config_.batch_seed, jobs_fp);
  }
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    fingerprints[i] = fingerprint_job(jobs[i], i, config_.batch_seed);
    jobs_fp = fnv1a_u64(fingerprints[i], jobs_fp);
  }

  journal_header header;
  header.has_batch_seed = config_.batch_seed.has_value();
  header.batch_seed = config_.batch_seed.value_or(0);
  header.num_jobs = jobs.size();
  header.jobs_fingerprint = jobs_fp;

  // -- resume: recover and validate already-journaled records ---------------
  std::vector<std::optional<journal_record>> recovered(jobs.size());
  std::vector<journal_record> recovered_order;  // original append order
  if (journal.resume) {
    auto read = read_journal(journal.path);
    if (!read.ok()) return std::move(read.error());
    out.dropped_tail_bytes = read->dropped_tail_bytes;
    out.duplicates_dropped = read->duplicates_dropped;
    if (read->has_header) {
      const journal_header& jh = read->header;
      if (jh.num_jobs != jobs.size()) {
        return mismatch("journal has " + std::to_string(jh.num_jobs) +
                        " jobs, resume batch has " +
                        std::to_string(jobs.size()));
      }
      if (jh.has_batch_seed != header.has_batch_seed ||
          jh.batch_seed != header.batch_seed) {
        return mismatch("journal batch_seed differs from resume batch");
      }
      if (jh.jobs_fingerprint != jobs_fp) {
        return mismatch(
            "journal jobs fingerprint differs: the journal was written by a "
            "run with different jobs or stat_options");
      }
      for (auto& rec : read->records) {
        if (rec.job_index >= jobs.size()) {
          return mismatch("journal record for out-of-range job " +
                          std::to_string(rec.job_index));
        }
        if (rec.fingerprint != fingerprints[rec.job_index]) {
          return mismatch("journal record for job " +
                          std::to_string(rec.job_index) +
                          " does not fingerprint-match the job being resumed");
        }
        if (!rec.ok && rec.code == solve_code::cancelled) {
          continue;  // cancellation is not a result; re-solve the job
        }
        recovered[rec.job_index] = rec;
        recovered_order.push_back(std::move(rec));
      }
    }
  }

  journal_writer writer{journal.path, header, journal.checkpoint_every_jobs,
                        journal.checkpoint_every_bytes};
  for (const auto& rec : recovered_order) writer.restore(rec);

  // -- restore recovered records into their slots ---------------------------
  std::vector<std::optional<solve_outcome<batch_result>>> slots(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (!recovered[i].has_value()) continue;
    journal_record& rec = *recovered[i];
    if (!rec.ok) {
      slots[i].emplace(solve_error{rec.code, rec.error_node, rec.detail});
      ++out.restored;
      continue;
    }
    try {
      prepared_job setup = prepare_batch_job(jobs[i], i, config_.batch_seed);
      if (rec.result.assignment.num_nodes() != 0 &&
          rec.result.assignment.num_nodes() != setup.net->num_nodes()) {
        return mismatch("journal record for job " + std::to_string(i) +
                        " has an assignment over " +
                        std::to_string(rec.result.assignment.num_nodes()) +
                        " nodes; the job's tree has " +
                        std::to_string(setup.net->num_nodes()));
      }
      layout::process_model& model = *setup.model;
      if (rec.num_sources < model.space().size()) {
        return mismatch("journal record for job " + std::to_string(i) +
                        " claims fewer variation sources than the model's "
                        "deterministic prefix");
      }
      // The producing run's variation space was the deterministic prefix
      // (inter-die + spatial grid) plus one unit-sigma private source per
      // characterized device, in characterization order. Re-padding with
      // unit random sources rebuilds a space in which the journaled forms
      // mean exactly what they meant originally.
      while (model.space().size() < rec.num_sources) {
        model.space().add_source(stats::source_kind::random_device, 1.0);
      }
      slots[i].emplace(batch_result{std::move(rec.result), std::move(model),
                                    std::move(setup.generated)});
      ++out.restored;
    } catch (const std::exception& e) {
      // prepare_job failing for a job the journal says *succeeded* is an
      // input mismatch by definition (the fingerprint cannot see a caller's
      // dangling tree pointer, say).
      return mismatch("job " + std::to_string(i) +
                      " cannot be re-prepared for restore: " + e.what());
    }
  }

  // -- solve what the journal did not cover ---------------------------------
  std::mutex journal_mu;
  std::size_t to_solve = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (!slots[i].has_value()) ++to_solve;
  }
  std::latch done{static_cast<std::ptrdiff_t>(to_solve)};
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (slots[i].has_value()) continue;
    pool_.submit([&, i] {
      try {
        if (cancel != nullptr && cancel->stop_requested()) {
          slots[i].emplace(solve_error{solve_code::cancelled,
                                       tree::invalid_node,
                                       "cancelled before start"});
        } else {
          prepared_job setup = prepare_batch_job(jobs[i], i, config_.batch_seed);
          solve_outcome<batch_result> o = [&]() -> solve_outcome<batch_result> {
            auto solved = solve_statistical_insertion(
                *setup.net, *setup.model, jobs[i].options, cancel);
            if (!solved.ok()) return std::move(solved.error());
            return batch_result{std::move(*solved), std::move(*setup.model),
                                std::move(setup.generated)};
          }();
          slots[i].emplace(std::move(o));
        }
      } catch (const std::bad_alloc&) {
        slots[i].emplace(solve_error{solve_code::memory_cap,
                                     tree::invalid_node,
                                     "allocation failed preparing job"});
      } catch (const std::exception& e) {
        slots[i].emplace(solve_error{solve_code::internal, tree::invalid_node,
                                     e.what()});
      } catch (...) {
        slots[i].emplace(solve_error{solve_code::internal, tree::invalid_node,
                                     "unknown exception"});
      }
      // Journal the outcome -- except cancellations, which are not results:
      // a resumed run must re-solve those jobs.
      if (slots[i]->code() != solve_code::cancelled) {
        std::lock_guard lk(journal_mu);
        writer.append(make_record(i, fingerprints[i], *slots[i]));
        if (testing::should_fire(testing::fault_point::crash_after_job, i)) {
          // Simulate the process dying the instant job i committed: no
          // drain, no final flush, no destructors. Exactly what SIGKILL
          // leaves behind, but at a deterministic point.
          std::_Exit(42);
        }
      }
      done.count_down();
    });
  }
  done.wait();
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (!recovered[i].has_value() &&
        slots[i]->code() != solve_code::cancelled) {
      ++out.solved;
    }
  }
  writer.flush();

  // -- optional paranoid re-verification of every restored record -----------
  if (journal.verify_restored && out.restored > 0) {
    std::vector<std::size_t> restored_jobs;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (recovered[i].has_value() && slots[i]->ok()) restored_jobs.push_back(i);
    }
    std::vector<std::optional<solve_outcome<batch_result>>> check(
        restored_jobs.size());
    std::latch verified{static_cast<std::ptrdiff_t>(restored_jobs.size())};
    for (std::size_t k = 0; k < restored_jobs.size(); ++k) {
      pool_.submit([&, k] {
        const std::size_t i = restored_jobs[k];
        try {
          prepared_job setup = prepare_batch_job(jobs[i], i, config_.batch_seed);
          auto solved = solve_statistical_insertion(*setup.net, *setup.model,
                                                    jobs[i].options, nullptr);
          if (solved.ok()) {
            check[k].emplace(batch_result{std::move(*solved),
                                          std::move(*setup.model),
                                          std::nullopt});
          } else {
            check[k].emplace(std::move(solved.error()));
          }
        } catch (const std::exception& e) {
          check[k].emplace(solve_error{solve_code::internal,
                                       tree::invalid_node, e.what()});
        }
        verified.count_down();
      });
    }
    verified.wait();
    for (std::size_t k = 0; k < restored_jobs.size(); ++k) {
      const std::size_t i = restored_jobs[k];
      if (!check[k]->ok() ||
          !results_identical((*check[k])->result, (**slots[i]).result)) {
        return mismatch("restored record for job " + std::to_string(i) +
                        " is not bit-identical to a fresh solve");
      }
    }
  }

  out.checkpoints = writer.checkpoints();
  out.journal_bytes = writer.bytes();
  out.journal_warning = writer.io_error();
  out.slots.reserve(jobs.size());
  for (auto& slot : slots) out.slots.push_back(std::move(*slot));
  return out;
}

}  // namespace vabi::core
