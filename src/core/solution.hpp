// Candidate solutions of the buffer-insertion DP, and the decision arena
// used to backtrack the chosen optimum into a concrete buffer assignment.
//
// A candidate at node t is the pair (L_t, T_t) of paper Section 2.1:
// deterministic doubles for van Ginneken, canonical linear forms for the
// variation-aware engines. Every candidate carries an immutable pointer into
// a decision DAG recording how it was built (buffer inserted here / merge of
// two subtree candidates); wires do not create decisions since they are
// implied by the tree structure.
#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/solve_status.hpp"
#include "stats/linear_form.hpp"
#include "timing/buffer_library.hpp"
#include "timing/elmore.hpp"
#include "timing/wire_sizing.hpp"
#include "tree/routing_tree.hpp"

namespace vabi::core {

/// One construction step of a candidate. Nodes form a DAG (shared subtrees
/// are common after merging), allocated from a decision_arena.
struct decision {
  enum class kind : std::uint8_t { leaf, buffer, merge, wire };

  kind what = kind::leaf;
  tree::node_id node = tree::invalid_node;      ///< buffer/wire: which node/edge
  timing::buffer_index buffer = 0;              ///< buffer: type; wire: width
  const decision* left = nullptr;               ///< buffer/wire: prior; merge: a
  const decision* right = nullptr;              ///< merge: b
};

/// Stable-address arena for decisions: chunked slabs bumped in order, the
/// same scheme as stats::term_pool. reset() rewinds in O(1) keeping the
/// slabs, so one arena amortizes to zero allocations when reused across runs
/// (the serial driver keeps one per thread; see statistical_dp.cpp).
class decision_arena {
 public:
  decision_arena() = default;
  decision_arena(const decision_arena&) = delete;
  decision_arena& operator=(const decision_arena&) = delete;

  const decision* leaf() {
    return push(decision{decision::kind::leaf, tree::invalid_node, 0, nullptr,
                         nullptr});
  }
  const decision* buffered(tree::node_id node, timing::buffer_index b,
                           const decision* prior) {
    return push(decision{decision::kind::buffer, node, b, prior, nullptr});
  }
  const decision* merged(const decision* a, const decision* b) {
    return push(decision{decision::kind::merge, tree::invalid_node, 0, a, b});
  }
  /// Width choice for the edge above `node` (only recorded when wire sizing
  /// is enabled; width is stored in the `buffer` slot).
  const decision* wire_sized(tree::node_id node, timing::width_index width,
                             const decision* prior) {
    return push(decision{decision::kind::wire, node,
                         static_cast<timing::buffer_index>(width), prior,
                         nullptr});
  }

  std::size_t size() const { return size_; }

  /// Rewinds the arena to empty, keeping the slabs. Every decision pointer
  /// handed out becomes invalid; callers must have extracted their designs.
  void reset() {
    chunk_idx_ = 0;
    used_ = 0;
    size_ = 0;
  }

 private:
  static constexpr std::size_t chunk_cap = 1024;

  const decision* push(const decision& d) {
    if (chunk_idx_ < chunks_.size() && used_ == chunk_cap) {
      ++chunk_idx_;
      used_ = 0;
    }
    if (chunk_idx_ == chunks_.size()) {
      chunks_.push_back(std::make_unique<decision[]>(chunk_cap));
      used_ = 0;
    }
    decision* slot = chunks_[chunk_idx_].get() + used_;
    *slot = d;
    ++used_;
    ++size_;
    return slot;
  }

  std::vector<std::unique_ptr<decision[]>> chunks_;
  std::size_t chunk_idx_ = 0;
  std::size_t used_ = 0;
  std::size_t size_ = 0;
};

/// Walks a decision DAG and records every buffer placement into an
/// assignment sized for `num_nodes` tree nodes.
timing::buffer_assignment extract_assignment(const decision* root,
                                             std::size_t num_nodes);

/// Buffers and wire widths of one complete solution.
struct design_choice {
  timing::buffer_assignment buffers;
  timing::wire_assignment wires;
};

/// Like extract_assignment, but also recovers per-edge wire widths (edges
/// without a wire decision keep width index 0).
design_choice extract_design(const decision* root, std::size_t num_nodes);

/// Deterministic candidate (van Ginneken).
struct det_candidate {
  double load_pf = 0.0;
  double rat_ps = 0.0;
  const decision* why = nullptr;
};

/// Variation-aware candidate: L and T as canonical forms over the shared
/// variation space (paper eqs. 31-32).
///
/// Carries lazily cached second moments (Var(L), Var(T)) so the dominance
/// rules stop recomputing per-pair variances: the 2P interval prefilter and
/// the 4P/corner percentile projections all read the cache. The cache is
/// keyed by nothing -- a candidate's forms live against one variation space
/// for their whole life -- and uses -1 as the "unset" sentinel (variances are
/// never negative). Engines must call invalidate_rat_moments() /
/// invalidate_load_moments() when they reassign a form's stochastic part;
/// nominal-only shifts (`form += constant`) preserve the variance and keep
/// the cache valid.
struct stat_candidate {
  stats::linear_form load;  ///< pF
  stats::linear_form rat;   ///< ps
  const decision* why = nullptr;

  mutable double var_load = -1.0;  ///< cached Var(load); -1 = unset
  mutable double var_rat = -1.0;   ///< cached Var(rat); -1 = unset

  double load_variance(const stats::variation_space& space) const {
    if (var_load < 0.0) var_load = load.variance(space);
    return var_load;
  }
  double rat_variance(const stats::variation_space& space) const {
    if (var_rat < 0.0) var_rat = rat.variance(space);
    return var_rat;
  }
  /// Bit-identical to load.stddev(space): same sqrt over the same variance.
  double load_stddev(const stats::variation_space& space) const {
    return std::sqrt(load_variance(space));
  }
  double rat_stddev(const stats::variation_space& space) const {
    return std::sqrt(rat_variance(space));
  }
  void invalidate_load_moments() const { var_load = -1.0; }
  void invalidate_rat_moments() const { var_rat = -1.0; }
};

/// Instrumentation accumulated by the DP engines. The runtime / capacity
/// comparison of Table 2 and the scalability study of Fig. 5 read these.
struct dp_stats {
  std::size_t candidates_created = 0;  ///< all candidates ever materialized
  std::size_t candidates_pruned = 0;   ///< discarded by the dominance rule
  std::size_t merge_pairs = 0;         ///< pair combinations evaluated
  std::size_t peak_list_size = 0;      ///< largest per-node candidate list
  /// Heap allocations attributable to form/term storage while solving nodes:
  /// scratch-pool chunk growth + sealed-slab growth + owning linear_form
  /// spills. Steady state (recycled arenas) is ~0 per node. Scheduling-
  /// dependent in parallel runs (chunk growth depends on which worker solves
  /// which node), so it is excluded from the bit-identity guarantee.
  std::size_t allocations = 0;
  /// High-water mark of live scratch-pool terms over any single node solve.
  std::size_t peak_terms = 0;
  /// Pooled canonical-op results produced in the dense (coefficient-plane)
  /// representation. Depends on the adaptive switch policy / VABI_FORCE_DENSE,
  /// never on results (the representations are bit-identical).
  std::size_t dense_forms = 0;
  /// Terms that flowed through pooled merge/blend kernels (a dense merge
  /// counts its full plane extent).
  std::size_t terms_merged = 0;
  /// 2P dominance tests decided by the cached-moment interval prefilter,
  /// skipping the exact per-pair sigma-of-difference pass.
  std::size_t dominance_prefilter_hits = 0;
  /// Buffer positions whose buffered-candidate step used the Li-Shi
  /// per-type frontier (li_shi.hpp) instead of the per-type full scan.
  /// A representation/organization counter like dense_forms: never part of
  /// the bit-identity contract (the selected candidates are identical).
  std::size_t li_shi_nodes = 0;
  /// Slab-cache traffic (session-oriented solves only; the one-shot entry
  /// points never consult the cache and leave all three at 0). Hits count
  /// subtree roots adopted wholesale from the cache, misses count nodes the
  /// session actually re-solved, and nodes_reused counts every node under an
  /// adopted root (the work the cache saved). Like dense_forms these are
  /// organization counters: the selected candidates are bit-identical with
  /// or without the cache.
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t nodes_reused = 0;
  /// Tiled dominance engine traffic (core/pruning.cpp). tiled_prunes counts
  /// prune calls that took the tiled sweep (or, for 4P, the tiled moment
  /// fill); tile_prefilter_hits counts pair conditions the batched interval
  /// prefilter decided without an exact sigma pass; pairs_batched counts rows
  /// that flowed through the one-vs-many kernels (variance fills, prefilter
  /// rows, exact fallbacks). Organization counters like dense_forms: they
  /// depend on the VABI_FORCE_PRUNE policy and thresholds, never on results
  /// (the surviving candidates are bit-identical; candidates_pruned matches
  /// across modes).
  std::size_t tiled_prunes = 0;
  std::size_t tile_prefilter_hits = 0;
  std::size_t pairs_batched = 0;
  double wall_seconds = 0.0;
  bool aborted = false;                ///< a resource cap fired (4P runs)
  std::string abort_reason;
  /// Typed classification of the abort (solve_code::ok when !aborted) and
  /// the node boundary where the guard fired (invalid_node when unknown).
  solve_code abort_code = solve_code::ok;
  tree::node_id abort_node = tree::invalid_node;
};

}  // namespace vabi::core
