// Internal state of a solve_session, shared between slab_cache.cpp (serial
// solves, cache bookkeeping) and parallel.cpp (the pool-scheduled solve,
// which must reuse the file-local parallel runner there). Not installed; not
// part of the public surface.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/dp_engine.hpp"
#include "core/slab_cache.hpp"

namespace vabi::core::detail {

/// Byte-clones a sealed node_list: the candidate vector is copied (borrowed
/// spans stay shallow), the slab's sealed prefix is memcpy'd, and every
/// borrowed form is re-based onto the copy. Decision backpointers and cached
/// moments copy through. Bit-identical by construction.
node_list clone_node_list(const node_list& src);

/// Fingerprint over every solver-relevant stat_options field (rule params,
/// caps, percentiles, library, wire, li_shi, check_nonfinite, degrade...).
/// Any change flushes the slab cache: caps shape the prune/abort behaviour
/// and everything else shapes the candidates themselves, so only an
/// identical fingerprint may serve cached lists.
std::uint64_t fingerprint_stat_options(const stat_options& options);

/// Fingerprint of the buffer library alone; a change additionally flushes
/// the device memo (entries are indexed by buffer type).
std::uint64_t fingerprint_library(const timing::buffer_library& lib);

struct cache_entry {
  std::uint64_t hash = 0;
  bool valid = false;
  node_list list;
};

/// Arenas of one parallel-session worker; owned by the session (never reset
/// while cached `why` chains point into them), lent to the pool's workers
/// for the duration of one solve.
struct session_worker {
  decision_arena arena;
  worker_arena mem;
};

struct session_state {
  layout::process_model* model = nullptr;

  // Content-addressed survivor-slab cache, indexed by node id.
  std::vector<cache_entry> entries;
  std::uint64_t options_fp = 0;
  bool has_options_fp = false;
  std::uint64_t library_fp = 0;
  bool has_library_fp = false;

  // Device memo: characterized forms per (node, type), guarded by the
  // node's location. Pre-filled in serial lazy postorder order so the
  // session's source-id allocation matches the one-shot serial engine's.
  struct device_entry {
    layout::device_variation dv;
    layout::point loc;
    bool valid = false;
  };
  std::vector<device_entry> devices;
  std::size_t memo_lib = 0;

  // Session-owned storage backing cached candidates' decision chains.
  decision_arena arena;  ///< serial solves
  worker_arena mem;      ///< serial solves
  std::vector<std::unique_ptr<session_worker>> workers;  ///< parallel solves

  /// Refreshes fingerprints (flushing on change), sizes the entry table,
  /// warms the tree's subtree hashes, and fills the device memo for every
  /// attached non-source node whose entry is missing or whose location
  /// moved. Serial; call before mark().
  void prepare(const tree::routing_tree& tree, const stat_options& options);

  struct mark_result {
    std::vector<std::uint8_t> marked;  ///< nodes the solve must visit
    std::size_t hits = 0;              ///< adopted subtree roots
    std::size_t reused = 0;            ///< nodes under adopted roots
  };

  /// Top-down pass from the root: subtrees whose hash matches their cached
  /// entry are adopted (cloned into `lists`) and not descended into;
  /// everything else is marked for re-solving. With use_cache false every
  /// attached node is marked.
  mark_result mark(const tree::routing_tree& tree,
                   std::vector<node_list>& lists, bool use_cache) const;

  /// Stores a freshly sealed list for `id` (clones it; the original moves on
  /// into the solve). Safe to call concurrently for distinct ids once
  /// `entries` is sized and the tree's hashes are warm.
  void store(tree::node_id id, std::uint64_t hash, const node_list& solved);

  const layout::device_variation& device(tree::node_id id,
                                         timing::buffer_index b) const {
    return devices[static_cast<std::size_t>(id) * memo_lib + b].dv;
  }

  void flush_entries();
  void reset_all();
};

/// Serial session solve (slab_cache.cpp). With use_cache false: adopts and
/// stores nothing (the solve_cold reference path).
stat_result session_solve_serial(session_state& ss,
                                 const tree::routing_tree& tree,
                                 const stat_options& options,
                                 const cancel_token* cancel, bool use_cache);

/// Pool-scheduled session solve (parallel.cpp); bit-identical to the serial
/// session solve.
stat_result session_solve_parallel(session_state& ss,
                                   const tree::routing_tree& tree,
                                   const stat_options& options,
                                   thread_pool& pool,
                                   const cancel_token* cancel, bool use_cache);

}  // namespace vabi::core::detail
