// Variation-aware buffer insertion (paper Sections 2.3, 4).
//
// The same bottom-up DP as van Ginneken, with candidates carried as canonical
// first-order forms (eqs. 31-32) and the three key operations replaced by
// their variation-aware versions:
//
//   add wire   (eqs. 33-34)   deterministic shift + coefficient update
//   add buffer (eqs. 35-36)   device forms from the process model
//   merge      (eqs. 37-38)   statistical min via tightness probability
//
// The pruning rule is pluggable (pruning.hpp). Under the 2P rule candidates
// are kept sorted by mean load and merged/pruned linearly -- the paper's
// linear-complexity claim (Theorem 1). Under the 4P rule merging is the full
// O(n*m) cross product and pruning pairwise O(N^2), reproducing the baseline
// [7] this paper measures against; resource caps make its blow-ups fail fast
// like the paper's 2 GB / 4 h limits instead of hanging.
//
// The engine *optimizes under* the variation classes enabled in the supplied
// process model; this realizes the paper's NOM / D2D / WID comparison
// (Section 5.3) by handing engines differently configured models.
#pragma once

#include <cstdint>
#include <vector>

#include "core/li_shi.hpp"
#include "core/pruning.hpp"
#include "core/solution.hpp"
#include "core/solve_status.hpp"
#include "layout/process_model.hpp"
#include "stats/linear_form.hpp"
#include "timing/buffer_library.hpp"
#include "timing/elmore.hpp"
#include "timing/wire_model.hpp"
#include "tree/routing_tree.hpp"

namespace vabi::core {

/// Which dominance rule drives pruning (and the matching merge strategy).
enum class pruning_kind : std::uint8_t {
  two_param,   ///< the paper's 2P rule: linear merge + sweep prune
  four_param,  ///< the DATE'05 baseline 4P rule: O(n*m) merge + O(N^2) prune
  corner,      ///< 1P corner projection [8]: linear, correlation-blind
};

const char* to_string(pruning_kind kind);

/// What to do when a statistical run trips a resource cap or deadline.
enum class degrade_policy : std::uint8_t {
  none,                ///< report the typed error, no fallback
  retry_deterministic, ///< retry the net once with the linear corner rule
  best_partial,        ///< retry_deterministic, then an unbuffered evaluation
                       ///< of the tree as the last resort (never fails)
};

/// Which path produced a stat_result (reported so callers can tell a clean
/// solve from a degraded one).
enum class solve_path : std::uint8_t {
  primary,             ///< the requested rule completed
  corner_fallback,     ///< degraded retry with the corner rule
  unbuffered_fallback, ///< best_partial: tree evaluated with no buffers
};

const char* to_string(degrade_policy policy);
const char* to_string(solve_path path);

struct stat_options {
  timing::wire_model wire;
  timing::buffer_library library;
  double driver_res_ohm = 100.0;

  /// Wire-width menu for simultaneous buffer insertion and wire sizing (the
  /// statistical counterpart of [8]): every edge picks one multiplier
  /// (r/m, c*m). A single entry disables sizing and adds no overhead.
  std::vector<double> wire_width_multipliers = {1.0};

  pruning_kind rule = pruning_kind::two_param;
  two_param_rule two_param;
  four_param_rule four_param;
  corner_rule corner;

  /// Winning root candidate maximizes this percentile of the root RAT
  /// (0.5 = mean). 0.05 targets the paper's 95% timing yield figure of merit.
  double root_percentile = 0.05;

  /// Percentile of the post-buffer RAT used to pick the single buffered
  /// candidate per library type at each position (0.5 = mean, the classic
  /// van Ginneken choice). Setting it to the yield target (e.g. 0.05)
  /// makes the optimizer *yield-driven*: a buffer whose instance sits in a
  /// high-variation region, or whose marginal nominal gain is smaller than
  /// the sigma it adds, loses the selection. Pruning itself is still
  /// governed by `rule`, so the complexity guarantees are unchanged (the
  /// percentile of a canonical form costs one sparse sigma evaluation).
  double selection_percentile = 0.5;

  /// Li-Shi per-type frontier for the buffered-candidate step (li_shi.hpp).
  /// Engages on the 2P mean rule with mean selection (the total-order regime
  /// where Lemma 4 makes mean order the P-order): the per-position cost
  /// drops from O(b * |list|) scalar probes to O(|list| + b log b).
  /// `automatic` turns it on for libraries of more than 2 types; selected
  /// candidates -- and results -- match the scan path either way. Other
  /// rules / selection percentiles always use the scan path.
  li_shi_mode li_shi = li_shi_mode::automatic;

  /// Relative epsilon for dropping near-zero canonical-form terms at the
  /// statistical-merge sites: after each tightness-probability blend
  /// (eq. 38), terms with |coeff| <= eps * max|coeff| are discarded. The
  /// blend multiplies every coefficient by t or (1-t) but never removes one,
  /// so without this deep trees accumulate the union of every source id ever
  /// seen -- superlinear term growth for a vanishing variance contribution
  /// (a dropped term changes sigma by at most eps * sqrt(num_terms)
  /// relative). 0 (the default) disables dropping and keeps results
  /// bit-identical to the historical engines; ~1e-9 is a safe production
  /// setting.
  double term_prune_rel_eps = 0.0;

  /// Resource caps; exceeded => result.stats.aborted (0 = unlimited).
  std::size_t max_list_size = 0;
  std::size_t max_candidates = 0;
  double max_wall_seconds = 0.0;
  /// Cap on one worker's recycled term storage (scratch pool + pooled sealed
  /// slabs), checked at node boundaries. Per *worker*, not per run: a
  /// parallel run may hold up to num_threads times this. 0 = unlimited.
  std::size_t max_arena_bytes = 0;

  /// Scan every sealed candidate list for NaN/inf (nominals and
  /// coefficients); a hit aborts with solve_code::nonfinite_value instead of
  /// silently propagating garbage to the root. Reads only -- results are
  /// bit-identical either way. On by default in debug builds.
#ifdef NDEBUG
  bool check_nonfinite = false;
#else
  bool check_nonfinite = true;
#endif

  /// Fallback behavior when a cap/deadline/memory trip aborts the run (only
  /// consulted by the solve_* entry points; the legacy run_* shims always
  /// report the abort as-is).
  degrade_policy degrade = degrade_policy::none;
};

struct stat_result {
  /// Canonical form of the winning root RAT, driver delay included.
  stats::linear_form root_rat;
  timing::buffer_assignment assignment;
  timing::wire_assignment wires;  ///< meaningful when sizing is enabled
  std::size_t num_buffers = 0;
  dp_stats stats;
  /// Which path produced this result (primary unless a degrade policy fired).
  solve_path path = solve_path::primary;

  bool ok() const { return !stats.aborted; }
};

/// Runs the variation-aware DP. `model` supplies (and accumulates) the
/// variation sources: one private random source is registered per evaluated
/// (node, buffer type) device, shared by every candidate that buffers there.
///
/// Legacy shim: throws std::invalid_argument / std::logic_error on bad
/// inputs and reports resource trips only through result.stats.aborted.
/// New code should call solve_statistical_insertion.
stat_result run_statistical_insertion(const tree::routing_tree& tree,
                                      layout::process_model& model,
                                      const stat_options& options);

/// Typed entry point: never throws for failures in the solve_code taxonomy.
/// Validates options (naming the offending field) and the tree, classifies
/// resource trips, honors `cancel` at node boundaries, and applies
/// options.degrade on cap/deadline/memory failures (the returned result's
/// `path` says which engine produced it).
solve_outcome<stat_result> solve_statistical_insertion(
    const tree::routing_tree& tree, layout::process_model& model,
    const stat_options& options, const cancel_token* cancel = nullptr);

}  // namespace vabi::core
