#include "core/pruning.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <limits>

#include "stats/kernels.hpp"
#include "stats/linear_form.hpp"
#include "stats/normal.hpp"

namespace vabi::core {

namespace {

// -- Pairwise/tiled sweep policy --------------------------------------------

constexpr int k_force_prune_unset = std::numeric_limits<int>::min();
std::atomic<int> g_force_prune{k_force_prune_unset};

// -1 always pairwise, +1 always tiled, 0 adaptive. First read consults
// VABI_FORCE_PRUNE; set_force_prune overrides. Same lazy-env pattern as
// stats::set_force_dense.
int force_prune_state() {
  int mode = g_force_prune.load(std::memory_order_relaxed);
  if (mode == k_force_prune_unset) {
    mode = 0;
    if (const char* env = std::getenv("VABI_FORCE_PRUNE")) {
      if (std::strcmp(env, "tiled") == 0) mode = 1;
      if (std::strcmp(env, "pairwise") == 0) mode = -1;
    }
    g_force_prune.store(mode, std::memory_order_relaxed);
  }
  return mode;
}

/// Adaptive engagement thresholds (see DESIGN.md for the measurement). The
/// gather costs O(k * sources) up front; it pays off once the batched moment
/// fill replaces enough per-pair sparse reductions, which needs both a list
/// long enough to amortize the pass and enough sources per form for the
/// interleaved dense chains to beat the branchy sparse walks. Below either
/// threshold the pairwise sweep's lazy evaluation wins.
constexpr std::size_t k_tiled_min_list = 32;
constexpr std::size_t k_tiled_min_sources = 16;

prune_scratch& fallback_prune_scratch() {
  static thread_local prune_scratch scratch;
  return scratch;
}

/// Safety slack (in z-score units) for the interval prefilter below. The
/// exact path evaluates Phi(mu_d / sigma_d) >= p with ~1e-15 accumulated
/// rounding; the prefilter only asserts a verdict when the decision margin
/// exceeds kappa, nine orders of magnitude wider, so it can never disagree
/// with the exact pass.
constexpr double k_prefilter_slack = 1e-6;

/// P(x < y) >= p with the identical-form tie convention (see file comment of
/// pruning.hpp), for p > 0.5 strictly.
///
/// `sigma_x` / `sigma_y` are the callers' cached stddevs of x and y. The
/// stddev of the difference d = y - x is bracketed by
///
///   |sigma_x - sigma_y|  <=  sigma_d  <=  sigma_x + sigma_y
///
/// (perfect positive / negative correlation), which decides clearly ordered
/// pairs from the cached moments alone:
///
///   - mu_d > (z_p + kappa)(sigma_x + sigma_y): then mu_d / sigma_d > z_p
///     for every admissible sigma_d (and mu_d > 0 covers sigma_d == 0, where
///     the exact path's exceedance degenerates to 1) -- definitely true.
///   - mu_d < 0: Phi(mu_d / sigma_d) < 0.5 < p (and the degenerate
///     sigma_d == 0 exceedance is 0) -- definitely false.
///   - 0 <= mu_d < (z_p - kappa)|sigma_x - sigma_y|: then sigma_d > 0 and
///     mu_d / sigma_d < z_p -- definitely false.
///
/// Only when the interval straddles the threshold does the exact single-pass
/// sigma_of_difference (the per-pair covariance walk) run. NaN moments fail
/// every comparison and fall through to the exact path. Prefilter verdicts
/// are counted into *prefilter_hits when given.
bool prob_less_at_least(const stats::linear_form& x,
                        const stats::linear_form& y, double p, double sigma_x,
                        double sigma_y, const stats::variation_space& space,
                        sigma_diff_cache* sigmas,
                        std::size_t* prefilter_hits) {
  if (x == y) return true;
  const double mu_d = y.mean() - x.mean();
  const double z_p = stats::normal_quantile(p);  // > 0 since p > 0.5
  if (mu_d > (z_p + k_prefilter_slack) * (sigma_x + sigma_y)) {
    if (prefilter_hits != nullptr) ++*prefilter_hits;
    return true;
  }
  if (mu_d < 0.0 || mu_d < (z_p - k_prefilter_slack) *
                               std::abs(sigma_x - sigma_y)) {
    if (prefilter_hits != nullptr) ++*prefilter_hits;
    return false;
  }
  // Exact pass: same bits as stats::prob_greater(y, x, space), with the
  // sigma_of_difference optionally served from the sweep's symmetric memo.
  const double sigma = sigmas != nullptr
                           ? sigmas->get(y, x, space)
                           : stats::sigma_of_difference(y, x, space);
  return stats::normal_exceedance(mu_d, sigma, 0.0) >= p;
}

/// dominates(two_param_rule) with prefilter-hit accounting and an optional
/// sigma memo for the sweep.
bool dominates_2p(const two_param_rule& rule, const stat_candidate& a,
                  const stat_candidate& b, const stats::variation_space& space,
                  sigma_diff_cache* sigmas, std::size_t* prefilter_hits) {
  if (rule.is_mean_rule()) {
    // Lemma 4: P(. > .) >= 0.5 is exactly a comparison of means (also for
    // degenerate zero-variance differences, per the tie convention).
    return a.load.mean() <= b.load.mean() && a.rat.mean() >= b.rat.mean();
  }
  return prob_less_at_least(a.load, b.load, rule.p_load,
                            a.load_stddev(space), b.load_stddev(space), space,
                            sigmas, prefilter_hits) &&
         prob_less_at_least(b.rat, a.rat, rule.p_rat, b.rat_stddev(space),
                            a.rat_stddev(space), space, sigmas,
                            prefilter_hits);
}

}  // namespace

void set_force_prune(int mode) {
  g_force_prune.store(mode == 0 ? 0 : (mode > 0 ? 1 : -1),
                      std::memory_order_relaxed);
}

void reset_force_prune_from_env() {
  g_force_prune.store(k_force_prune_unset, std::memory_order_relaxed);
}

bool use_tiled_prune(std::size_t k, std::size_t sources) {
  const int mode = force_prune_state();
  if (mode > 0) return true;
  if (mode < 0) return false;
  return k >= k_tiled_min_list && sources >= k_tiled_min_sources;
}

// ---------------------------------------------------------------------------
// Deterministic.
// ---------------------------------------------------------------------------

bool det_dominates(const det_candidate& a, const det_candidate& b) {
  return a.load_pf <= b.load_pf && a.rat_ps >= b.rat_ps;
}

namespace {

bool det_key_less(const det_candidate& a, const det_candidate& b) {
  if (a.load_pf != b.load_pf) return a.load_pf < b.load_pf;
  return a.rat_ps > b.rat_ps;
}

/// The shared sweep of the deterministic prunes: `list` sorted by
/// (load asc, rat desc-on-ties) in, non-dominated subset out. In-place
/// compaction: the write cursor never passes the read cursor, so no
/// allocation and no second pass.
void det_sweep(std::vector<det_candidate>& list, dp_stats& stats) {
  std::size_t w = 0;
  for (std::size_t r = 0; r < list.size(); ++r) {
    if (w > 0 && list[w - 1].rat_ps >= list[r].rat_ps) {
      ++stats.candidates_pruned;  // dominated by the last kept candidate
      continue;
    }
    if (w != r) list[w] = list[r];
    ++w;
  }
  list.resize(w);
}

}  // namespace

void prune_deterministic(std::vector<det_candidate>& list, dp_stats& stats) {
  if (list.size() <= 1) return;
  std::sort(list.begin(), list.end(), det_key_less);
  det_sweep(list, stats);
}

void prune_deterministic_presorted(std::vector<det_candidate>& list,
                                   std::size_t sorted_prefix,
                                   dp_stats& stats) {
  if (list.size() <= 1) return;
  const auto mid = list.begin() + static_cast<std::ptrdiff_t>(sorted_prefix);
  std::sort(mid, list.end(), det_key_less);
  // Fused stable merge + sweep: one pass, no inplace_merge temp buffer. On
  // equal keys the base side goes first (stable-merge order), matching
  // std::sort only up to bitwise key ties -- see the header contract.
  std::vector<det_candidate> kept;
  kept.reserve(list.size());
  const auto take = [&kept, &stats](det_candidate& c) {
    if (!kept.empty() && kept.back().rat_ps >= c.rat_ps) {
      ++stats.candidates_pruned;
      return;
    }
    kept.push_back(std::move(c));
  };
  std::size_t i = 0;
  std::size_t j = sorted_prefix;
  while (i < sorted_prefix && j < list.size()) {
    if (det_key_less(list[j], list[i])) {
      take(list[j++]);
    } else {
      take(list[i++]);
    }
  }
  while (i < sorted_prefix) take(list[i++]);
  while (j < list.size()) take(list[j++]);
  list = std::move(kept);
}

void prune_deterministic_sorted(std::vector<det_candidate>& list,
                                dp_stats& stats) {
  if (list.size() <= 1) return;
  det_sweep(list, stats);
}

// ---------------------------------------------------------------------------
// Two-parameter rule.
// ---------------------------------------------------------------------------

bool dominates(const two_param_rule& rule, const stat_candidate& a,
               const stat_candidate& b, const stats::variation_space& space) {
  return dominates_2p(rule, a, b, space, nullptr, nullptr);
}

std::size_t sigma_diff_cache::key_hash::operator()(const key& k) const {
  const std::size_t h1 = std::hash<const void*>{}(k.lo);
  const std::size_t h2 = std::hash<const void*>{}(k.hi);
  return h1 ^ (h2 * std::size_t{0x9e3779b97f4a7c15ULL});
}

double sigma_diff_cache::get(const stats::linear_form& x,
                             const stats::linear_form& y,
                             const stats::variation_space& space) {
  const void* px = &x;
  const void* py = &y;
  // std::less gives the total pointer order the raw <= would not guarantee
  // for unrelated objects.
  const key k =
      std::less<const void*>{}(py, px) ? key{py, px} : key{px, py};
  const auto it = map_.find(k);
  if (it != map_.end()) return it->second;
  const double sigma = stats::sigma_of_difference(x, y, space);
  map_.emplace(k, sigma);
  return sigma;
}

double sigma_diff_cache::get_stddev(const stats::linear_form& f,
                                    const stats::variation_space& space) {
  const void* pf = &f;
  const auto it = stddev_.find(pf);
  if (it != stddev_.end()) return it->second;
  const double sigma = f.stddev(space);
  stddev_.emplace(pf, sigma);
  return sigma;
}

bool dominates(const two_param_rule& rule, const stat_candidate& a,
               const stat_candidate& b, const stats::variation_space& space,
               sigma_diff_cache& sigmas) {
  return dominates_2p(rule, a, b, space, &sigmas, nullptr);
}

namespace {

/// Batch-fills the unset Var caches of `list` from gathered rows: one
/// variance_rows pass over the missing entries, each row's chain bit-equal
/// to the lazy form.variance(space) it replaces. `get_var` selects var_load /
/// var_rat. Returns the number of rows batched.
template <typename GetVar>
std::size_t batch_fill_variances(std::vector<stat_candidate>& list,
                                 const stats::candidate_plane& planes,
                                 const stats::variation_space& space,
                                 prune_scratch& scr, GetVar get_var) {
  scr.rows.clear();
  scr.row_index.clear();
  for (std::size_t i = 0; i < list.size(); ++i) {
    if (get_var(list[i]) < 0.0) {
      scr.rows.push_back(planes.row(i));
      scr.row_index.push_back(i);
    }
  }
  if (scr.rows.empty()) return 0;
  scr.out.resize(scr.rows.size());
  stats::kernels::active().variance_rows(scr.rows.data(), scr.rows.size(),
                                         space.sigma2_data(), planes.extent(),
                                         scr.out.data());
  for (std::size_t j = 0; j < scr.rows.size(); ++j) {
    get_var(list[scr.row_index[j]]) = scr.out[j];
  }
  return scr.rows.size();
}

/// The 4P moment fill: gathers ONLY the candidates whose Var cache is unset
/// into `plane` and batch-fills them. Unlike the 2P sweep there is no
/// downstream reuse of the gathered rows (the corner loop compares cached
/// doubles), so the gather would have to pay for itself in the variance pass
/// alone -- and measurement says it never does: the lazy walk is O(nnz) for
/// sparse forms and already a single vectorized plane pass for dense ones,
/// while the gather adds a full O(extent) copy per row (see the
/// BM_DominanceSweep4P baseline). Automatic mode therefore always keeps the
/// lazy walk; only forced tiled mode batches, which keeps the whole tiled 4P
/// path alive under the differential suite and the VABI_FORCE_PRUNE=tiled CI
/// lanes. Returns rows batched (0 = fall back to the lazy walk).
template <typename GetForm, typename GetVar>
std::size_t tiled_fill_4p_side(std::vector<stat_candidate>& list,
                               stats::candidate_plane& plane,
                               const stats::variation_space& space,
                               prune_scratch& scr, bool forced,
                               GetForm get_form, GetVar get_var) {
  if (!forced) return 0;
  scr.row_index.clear();
  for (std::size_t i = 0; i < list.size(); ++i) {
    if (get_var(list[i]) < 0.0) scr.row_index.push_back(i);
  }
  if (scr.row_index.empty()) return 0;
  plane.reset(space.size());
  for (const std::size_t i : scr.row_index) plane.add_row(get_form(list[i]));
  // Pointers only after the gather completes: add_row may grow the plane.
  scr.rows.clear();
  for (std::size_t j = 0; j < scr.row_index.size(); ++j) {
    scr.rows.push_back(plane.row(j));
  }
  scr.out.resize(scr.rows.size());
  stats::kernels::active().variance_rows(scr.rows.data(), scr.rows.size(),
                                         space.sigma2_data(), plane.extent(),
                                         scr.out.data());
  for (std::size_t j = 0; j < scr.rows.size(); ++j) {
    get_var(list[scr.row_index[j]]) = scr.out[j];
  }
  return scr.rows.size();
}

/// The tiled 2P sweep body (p > 0.5; `list` already mean-sorted). Produces
/// exactly the pairwise sweep's surviving subsequence: per candidate the
/// sweep-window verdict is the OR over the window of (load condition AND rat
/// condition), each condition evaluated with the identical tie convention,
/// the identical prefilter thresholds, and -- for undecided pairs -- a
/// batched sigma-of-difference pass whose per-pair chain is bit-equal to the
/// scalar sigma_of_difference (dominates_2p is pure, so the pairwise early
/// exits change only which comparisons run, never the verdict).
void sweep_two_param_tiled(const two_param_rule& rule,
                           std::vector<stat_candidate>& list,
                           const stats::variation_space& space,
                           dp_stats& stats, prune_scratch& scr) {
  const std::size_t n = list.size();
  const std::size_t ext = space.size();
  const double* s2 = space.sigma2_data();
  const auto& kt = stats::kernels::active();
  ++stats.tiled_prunes;

  // Gather once per prune call: the planes copy every coefficient, so
  // nothing after this point can dangle into the candidate forms.
  scr.load_planes.reset(ext);
  scr.rat_planes.reset(ext);
  for (const auto& c : list) {
    scr.load_planes.add_row(c.load);
    scr.rat_planes.add_row(c.rat);
  }
  stats.pairs_batched += batch_fill_variances(
      list, scr.load_planes, space, scr,
      [](stat_candidate& c) -> double& { return c.var_load; });
  stats.pairs_batched += batch_fill_variances(
      list, scr.rat_planes, space, scr,
      [](stat_candidate& c) -> double& { return c.var_rat; });

  // z thresholds are resolved lazily, exactly when the pairwise path would
  // first call normal_quantile (it throws for p == 1, and only ever runs for
  // a non-identical pair).
  bool z_load_ready = false;
  bool z_rat_ready = false;
  double z_load_hi = 0.0, z_load_lo = 0.0;
  double z_rat_hi = 0.0, z_rat_lo = 0.0;

  const std::size_t window = std::max<std::size_t>(1, rule.sweep_window);
  std::vector<stat_candidate> kept;
  kept.reserve(n);
  scr.kept_rows.clear();

  for (std::size_t r = 0; r < n; ++r) {
    stat_candidate& c = list[r];
    const std::size_t scan = std::min(window, kept.size());
    // cond_ok[j]: 0 undecided/false, 1 = load condition holds for the pair
    // (kept[kept.size() - 1 - j], c); later narrowed to the full verdict.
    scr.cond_ok.assign(scan, 0);

    // -- Load condition over the window tile: P(a.load < c.load) >= p_L.
    scr.mu_d.clear();
    scr.sigma_x.clear();
    scr.sigma_y.clear();
    scr.pair_idx.clear();
    for (std::size_t j = 0; j < scan; ++j) {
      const stat_candidate& a = kept[kept.size() - 1 - j];
      if (a.load == c.load) {
        scr.cond_ok[j] = 1;  // identical-form tie: condition holds
        continue;
      }
      scr.mu_d.push_back(c.load.mean() - a.load.mean());
      scr.sigma_x.push_back(a.load_stddev(space));
      scr.sigma_y.push_back(c.load_stddev(space));
      scr.pair_idx.push_back(j);
    }
    if (!scr.mu_d.empty()) {
      if (!z_load_ready) {
        const double z = stats::normal_quantile(rule.p_load);
        z_load_hi = z + k_prefilter_slack;
        z_load_lo = z - k_prefilter_slack;
        z_load_ready = true;
      }
      const std::size_t m = scr.mu_d.size();
      scr.verdict.resize(m);
      kt.prefilter_row_tile(scr.mu_d.data(), scr.sigma_x.data(),
                            scr.sigma_y.data(), m, z_load_hi, z_load_lo,
                            scr.verdict.data());
      stats.pairs_batched += m;
      // Exact pass for the undecided pairs, batched over the tile.
      scr.rows.clear();
      scr.row_index.clear();  // batch position -> packed pair position
      for (std::size_t b = 0; b < m; ++b) {
        if (scr.verdict[b] != 2) {
          ++stats.tile_prefilter_hits;
          scr.cond_ok[scr.pair_idx[b]] = scr.verdict[b];
        } else {
          scr.rows.push_back(
              scr.load_planes.row(scr.kept_rows[kept.size() - 1 -
                                                scr.pair_idx[b]]));
          scr.row_index.push_back(b);
        }
      }
      if (!scr.rows.empty()) {
        scr.out.resize(scr.rows.size());
        kt.sigma_diff_sq_row_tile(scr.load_planes.row(r), scr.rows.data(),
                                  scr.rows.size(), s2, ext, scr.out.data());
        stats.pairs_batched += scr.rows.size();
        for (std::size_t e = 0; e < scr.rows.size(); ++e) {
          const std::size_t b = scr.row_index[e];
          const double sigma = std::sqrt(std::max(scr.out[e], 0.0));
          scr.cond_ok[scr.pair_idx[b]] =
              stats::normal_exceedance(scr.mu_d[b], sigma, 0.0) >= rule.p_load
                  ? 1
                  : 0;
        }
      }
    }

    // -- RAT condition, only where the load condition held:
    //    P(c.rat < a.rat) >= p_T.
    bool pruned = false;
    scr.mu_d.clear();
    scr.sigma_x.clear();
    scr.sigma_y.clear();
    scr.pair_idx.clear();
    for (std::size_t j = 0; j < scan && !pruned; ++j) {
      if (scr.cond_ok[j] == 0) continue;
      const stat_candidate& a = kept[kept.size() - 1 - j];
      if (a.rat == c.rat) {
        pruned = true;  // tie: both conditions hold
        break;
      }
      scr.mu_d.push_back(a.rat.mean() - c.rat.mean());
      scr.sigma_x.push_back(c.rat_stddev(space));
      scr.sigma_y.push_back(a.rat_stddev(space));
      scr.pair_idx.push_back(j);
    }
    if (!pruned && !scr.mu_d.empty()) {
      if (!z_rat_ready) {
        const double z = stats::normal_quantile(rule.p_rat);
        z_rat_hi = z + k_prefilter_slack;
        z_rat_lo = z - k_prefilter_slack;
        z_rat_ready = true;
      }
      const std::size_t m = scr.mu_d.size();
      scr.verdict.resize(m);
      kt.prefilter_row_tile(scr.mu_d.data(), scr.sigma_x.data(),
                            scr.sigma_y.data(), m, z_rat_hi, z_rat_lo,
                            scr.verdict.data());
      stats.pairs_batched += m;
      scr.rows.clear();
      scr.row_index.clear();
      for (std::size_t b = 0; b < m; ++b) {
        if (scr.verdict[b] != 2) {
          ++stats.tile_prefilter_hits;
          if (scr.verdict[b] == 1) pruned = true;
        } else {
          scr.rows.push_back(
              scr.rat_planes.row(scr.kept_rows[kept.size() - 1 -
                                               scr.pair_idx[b]]));
          scr.row_index.push_back(b);
        }
      }
      if (!pruned && !scr.rows.empty()) {
        scr.out.resize(scr.rows.size());
        kt.sigma_diff_sq_row_tile(scr.rat_planes.row(r), scr.rows.data(),
                                  scr.rows.size(), s2, ext, scr.out.data());
        stats.pairs_batched += scr.rows.size();
        for (std::size_t e = 0; e < scr.rows.size() && !pruned; ++e) {
          const std::size_t b = scr.row_index[e];
          const double sigma = std::sqrt(std::max(scr.out[e], 0.0));
          pruned =
              stats::normal_exceedance(scr.mu_d[b], sigma, 0.0) >= rule.p_rat;
        }
      }
    }

    if (pruned) {
      ++stats.candidates_pruned;
      continue;
    }
    scr.kept_rows.push_back(r);
    kept.push_back(std::move(c));
  }
  list = std::move(kept);
}

}  // namespace

void prune_two_param(const two_param_rule& rule,
                     std::vector<stat_candidate>& list,
                     const stats::variation_space& space, dp_stats& stats,
                     prune_scratch* scratch) {
  if (list.size() <= 1) return;
  std::sort(list.begin(), list.end(),
            [](const stat_candidate& a, const stat_candidate& b) {
              if (a.load.mean() != b.load.mean()) {
                return a.load.mean() < b.load.mean();
              }
              return a.rat.mean() > b.rat.mean();
            });
  // The mean rule compares means only (no second moments anywhere), so there
  // is nothing for the tiled engine to batch -- it stays on the direct sweep
  // under every policy.
  if (!rule.is_mean_rule() && use_tiled_prune(list.size(), space.size())) {
    sweep_two_param_tiled(rule, list, space, stats,
                          scratch != nullptr ? *scratch
                                             : fallback_prune_scratch());
    return;
  }
  std::vector<stat_candidate> kept;
  kept.reserve(list.size());
  const std::size_t window = std::max<std::size_t>(1, rule.sweep_window);
  for (auto& c : list) {
    bool pruned = false;
    // Under the mean rule the order is total and transitive, so comparing
    // against the last kept candidate alone is exact; for p > 0.5 we scan a
    // small window of recent survivors (the paper's practical linearization).
    const std::size_t scan =
        std::min(rule.is_mean_rule() ? std::size_t{1} : window, kept.size());
    for (std::size_t k = 1; k <= scan && !pruned; ++k) {
      pruned = dominates_2p(rule, kept[kept.size() - k], c, space, nullptr,
                            &stats.dominance_prefilter_hits);
    }
    if (pruned) {
      ++stats.candidates_pruned;
      continue;
    }
    kept.push_back(std::move(c));
  }
  list = std::move(kept);
}

void prune_two_param_mean_presorted(std::vector<stat_candidate>& list,
                                    std::size_t sorted_prefix,
                                    dp_stats& stats) {
  if (list.size() <= 1) return;
  const auto mean_less = [](const stat_candidate& a, const stat_candidate& b) {
    if (a.load.mean() != b.load.mean()) {
      return a.load.mean() < b.load.mean();
    }
    return a.rat.mean() > b.rat.mean();
  };
  const auto mid = list.begin() + static_cast<std::ptrdiff_t>(sorted_prefix);
  std::sort(mid, list.end(), mean_less);
  // Fused stable merge + the mean rule's window-1 sweep of prune_two_param
  // (Lemma 4: the order is total, so the last survivor decides). One pass,
  // no inplace_merge temp buffer.
  std::vector<stat_candidate> kept;
  kept.reserve(list.size());
  const auto take = [&kept, &stats](stat_candidate& c) {
    if (!kept.empty() && kept.back().load.mean() <= c.load.mean() &&
        kept.back().rat.mean() >= c.rat.mean()) {
      ++stats.candidates_pruned;
      return;
    }
    kept.push_back(std::move(c));
  };
  std::size_t i = 0;
  std::size_t j = sorted_prefix;
  while (i < sorted_prefix && j < list.size()) {
    if (mean_less(list[j], list[i])) {
      take(list[j++]);
    } else {
      take(list[i++]);
    }
  }
  while (i < sorted_prefix) take(list[i++]);
  while (j < list.size()) take(list[j++]);
  list = std::move(kept);
}

void prune_two_param_mean_sorted(std::vector<stat_candidate>& list,
                                 dp_stats& stats) {
  if (list.size() <= 1) return;
  // The mean rule's window-1 sweep, in-place: the write cursor never passes
  // the read cursor, so no allocation.
  std::size_t w = 0;
  for (std::size_t r = 0; r < list.size(); ++r) {
    if (w > 0 && list[w - 1].load.mean() <= list[r].load.mean() &&
        list[w - 1].rat.mean() >= list[r].rat.mean()) {
      ++stats.candidates_pruned;
      continue;
    }
    if (w != r) list[w] = std::move(list[r]);
    ++w;
  }
  list.resize(w);
}

// ---------------------------------------------------------------------------
// Four-parameter rule.
// ---------------------------------------------------------------------------

bool dominates(const four_param_rule& rule, const stat_candidate& a,
               const stat_candidate& b, const stats::variation_space& space) {
  // Load condition (eq. 2): pi_{alpha_u}(L_a) < pi_{alpha_l}(L_b), with the
  // identical-form tie convention.
  bool load_ok = false;
  if (a.load == b.load) {
    load_ok = true;
  } else {
    const double a_hi =
        stats::percentile(a.load, space, rule.alpha_hi);
    const double b_lo =
        stats::percentile(b.load, space, rule.alpha_lo);
    load_ok = a_hi < b_lo;
  }
  if (!load_ok) return false;

  // RAT condition (eq. 3): pi_{beta_l}(T_a) > pi_{beta_u}(T_b).
  if (a.rat == b.rat) return true;
  const double a_lo = stats::percentile(a.rat, space, rule.beta_lo);
  const double b_hi = stats::percentile(b.rat, space, rule.beta_hi);
  return a_lo > b_hi;
}

bool dominates(const four_param_rule& rule, const stat_candidate& a,
               const stat_candidate& b, const stats::variation_space& space,
               sigma_diff_cache& sigmas) {
  // Same branch structure as the uncached overload; stats::percentile(f,
  // space, p) is exactly normal_percentile(f.mean(), f.stddev(space), p), so
  // reading the stddev through the memo changes no bits.
  bool load_ok = false;
  if (a.load == b.load) {
    load_ok = true;
  } else {
    const double a_hi = stats::normal_percentile(
        a.load.mean(), sigmas.get_stddev(a.load, space), rule.alpha_hi);
    const double b_lo = stats::normal_percentile(
        b.load.mean(), sigmas.get_stddev(b.load, space), rule.alpha_lo);
    load_ok = a_hi < b_lo;
  }
  if (!load_ok) return false;

  if (a.rat == b.rat) return true;
  const double a_lo = stats::normal_percentile(
      a.rat.mean(), sigmas.get_stddev(a.rat, space), rule.beta_lo);
  const double b_hi = stats::normal_percentile(
      b.rat.mean(), sigmas.get_stddev(b.rat, space), rule.beta_hi);
  return a_lo > b_hi;
}

void prune_four_param(const four_param_rule& rule,
                      std::vector<stat_candidate>& list,
                      const stats::variation_space& space, dp_stats& stats,
                      std::size_t max_comparisons, prune_scratch* scratch) {
  const std::size_t n = list.size();
  if (n <= 1) return;
  std::size_t comparisons = 0;
  // Tiled moment fill: batch the missing Var caches through the one-vs-many
  // variance kernel before the corner pass walks them lazily. The corner
  // values (and therefore the kept set and its order-dependent tie behavior)
  // are bit-identical either way -- only who computes the variances changes.
  if (use_tiled_prune(n, space.size())) {
    prune_scratch& scr =
        scratch != nullptr ? *scratch : fallback_prune_scratch();
    const bool forced = force_prune_state() > 0;
    std::size_t batched = 0;
    batched += tiled_fill_4p_side(
        list, scr.load_planes, space, scr, forced,
        [](stat_candidate& cand) -> const stats::linear_form& {
          return cand.load;
        },
        [](stat_candidate& cand) -> double& { return cand.var_load; });
    batched += tiled_fill_4p_side(
        list, scr.rat_planes, space, scr, forced,
        [](stat_candidate& cand) -> const stats::linear_form& {
          return cand.rat;
        },
        [](stat_candidate& cand) -> double& { return cand.var_rat; });
    if (batched != 0) {
      ++stats.tiled_prunes;
      stats.pairs_batched += batched;
    }
  }
  // Cache the percentile corners; the pairwise pass then costs O(n^2)
  // comparisons of doubles rather than O(n^2) sigma evaluations.
  struct corners {
    double load_lo, load_hi, rat_lo, rat_hi;
  };
  std::vector<corners> c(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double lm = list[i].load.mean();
    const double ls = list[i].load_stddev(space);
    const double rm = list[i].rat.mean();
    const double rs = list[i].rat_stddev(space);
    c[i] = {stats::normal_percentile(lm, ls, rule.alpha_lo),
            stats::normal_percentile(lm, ls, rule.alpha_hi),
            stats::normal_percentile(rm, rs, rule.beta_lo),
            stats::normal_percentile(rm, rs, rule.beta_hi)};
  }
  std::vector<bool> dead(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    if (dead[i]) continue;
    if (max_comparisons != 0 && comparisons > max_comparisons) break;
    comparisons += n;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j || dead[j]) continue;
      const bool load_ok =
          (list[i].load == list[j].load) || (c[i].load_hi < c[j].load_lo);
      if (!load_ok) continue;
      const bool rat_ok =
          (list[i].rat == list[j].rat) || (c[i].rat_lo > c[j].rat_hi);
      if (rat_ok) dead[j] = true;
    }
  }
  std::vector<stat_candidate> kept;
  kept.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (dead[i]) {
      ++stats.candidates_pruned;
    } else {
      kept.push_back(std::move(list[i]));
    }
  }
  list = std::move(kept);
}

// ---------------------------------------------------------------------------
// Corner rule.
// ---------------------------------------------------------------------------

bool dominates(const corner_rule& rule, const stat_candidate& a,
               const stat_candidate& b, const stats::variation_space& space) {
  const double la = stats::percentile(a.load, space, rule.percentile);
  const double lb = stats::percentile(b.load, space, rule.percentile);
  const double ta = stats::percentile(a.rat, space, 1.0 - rule.percentile);
  const double tb = stats::percentile(b.rat, space, 1.0 - rule.percentile);
  return la <= lb && ta >= tb;
}

void prune_corner(const corner_rule& rule, std::vector<stat_candidate>& list,
                  const stats::variation_space& space, dp_stats& stats) {
  if (list.size() <= 1) return;
  struct projected {
    double load_q, rat_q;
    stat_candidate c;
  };
  std::vector<projected> proj;
  proj.reserve(list.size());
  for (auto& c : list) {
    // Same bits as stats::percentile(form, space, p): normal_percentile over
    // the identical (mean, stddev) pair, with the stddev read from the cache.
    proj.push_back({stats::normal_percentile(c.load.mean(),
                                             c.load_stddev(space),
                                             rule.percentile),
                    stats::normal_percentile(c.rat.mean(), c.rat_stddev(space),
                                             1.0 - rule.percentile),
                    std::move(c)});
  }
  std::sort(proj.begin(), proj.end(), [](const projected& a, const projected& b) {
    if (a.load_q != b.load_q) return a.load_q < b.load_q;
    return a.rat_q > b.rat_q;
  });
  std::vector<stat_candidate> kept;
  kept.reserve(proj.size());
  double best_rat = -std::numeric_limits<double>::infinity();
  for (auto& p : proj) {
    if (p.rat_q <= best_rat) {
      ++stats.candidates_pruned;
      continue;
    }
    best_rat = p.rat_q;
    kept.push_back(std::move(p.c));
  }
  list = std::move(kept);
}

}  // namespace vabi::core
