#include "core/pruning.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "stats/linear_form.hpp"
#include "stats/normal.hpp"

namespace vabi::core {

namespace {

/// Safety slack (in z-score units) for the interval prefilter below. The
/// exact path evaluates Phi(mu_d / sigma_d) >= p with ~1e-15 accumulated
/// rounding; the prefilter only asserts a verdict when the decision margin
/// exceeds kappa, nine orders of magnitude wider, so it can never disagree
/// with the exact pass.
constexpr double k_prefilter_slack = 1e-6;

/// P(x < y) >= p with the identical-form tie convention (see file comment of
/// pruning.hpp), for p > 0.5 strictly.
///
/// `sigma_x` / `sigma_y` are the callers' cached stddevs of x and y. The
/// stddev of the difference d = y - x is bracketed by
///
///   |sigma_x - sigma_y|  <=  sigma_d  <=  sigma_x + sigma_y
///
/// (perfect positive / negative correlation), which decides clearly ordered
/// pairs from the cached moments alone:
///
///   - mu_d > (z_p + kappa)(sigma_x + sigma_y): then mu_d / sigma_d > z_p
///     for every admissible sigma_d (and mu_d > 0 covers sigma_d == 0, where
///     the exact path's exceedance degenerates to 1) -- definitely true.
///   - mu_d < 0: Phi(mu_d / sigma_d) < 0.5 < p (and the degenerate
///     sigma_d == 0 exceedance is 0) -- definitely false.
///   - 0 <= mu_d < (z_p - kappa)|sigma_x - sigma_y|: then sigma_d > 0 and
///     mu_d / sigma_d < z_p -- definitely false.
///
/// Only when the interval straddles the threshold does the exact single-pass
/// sigma_of_difference (the per-pair covariance walk) run. NaN moments fail
/// every comparison and fall through to the exact path. Prefilter verdicts
/// are counted into *prefilter_hits when given.
bool prob_less_at_least(const stats::linear_form& x,
                        const stats::linear_form& y, double p, double sigma_x,
                        double sigma_y, const stats::variation_space& space,
                        sigma_diff_cache* sigmas,
                        std::size_t* prefilter_hits) {
  if (x == y) return true;
  const double mu_d = y.mean() - x.mean();
  const double z_p = stats::normal_quantile(p);  // > 0 since p > 0.5
  if (mu_d > (z_p + k_prefilter_slack) * (sigma_x + sigma_y)) {
    if (prefilter_hits != nullptr) ++*prefilter_hits;
    return true;
  }
  if (mu_d < 0.0 || mu_d < (z_p - k_prefilter_slack) *
                               std::abs(sigma_x - sigma_y)) {
    if (prefilter_hits != nullptr) ++*prefilter_hits;
    return false;
  }
  // Exact pass: same bits as stats::prob_greater(y, x, space), with the
  // sigma_of_difference optionally served from the sweep's symmetric memo.
  const double sigma = sigmas != nullptr
                           ? sigmas->get(y, x, space)
                           : stats::sigma_of_difference(y, x, space);
  return stats::normal_exceedance(mu_d, sigma, 0.0) >= p;
}

/// dominates(two_param_rule) with prefilter-hit accounting and an optional
/// sigma memo for the sweep.
bool dominates_2p(const two_param_rule& rule, const stat_candidate& a,
                  const stat_candidate& b, const stats::variation_space& space,
                  sigma_diff_cache* sigmas, std::size_t* prefilter_hits) {
  if (rule.is_mean_rule()) {
    // Lemma 4: P(. > .) >= 0.5 is exactly a comparison of means (also for
    // degenerate zero-variance differences, per the tie convention).
    return a.load.mean() <= b.load.mean() && a.rat.mean() >= b.rat.mean();
  }
  return prob_less_at_least(a.load, b.load, rule.p_load,
                            a.load_stddev(space), b.load_stddev(space), space,
                            sigmas, prefilter_hits) &&
         prob_less_at_least(b.rat, a.rat, rule.p_rat, b.rat_stddev(space),
                            a.rat_stddev(space), space, sigmas,
                            prefilter_hits);
}

}  // namespace

// ---------------------------------------------------------------------------
// Deterministic.
// ---------------------------------------------------------------------------

bool det_dominates(const det_candidate& a, const det_candidate& b) {
  return a.load_pf <= b.load_pf && a.rat_ps >= b.rat_ps;
}

namespace {

bool det_key_less(const det_candidate& a, const det_candidate& b) {
  if (a.load_pf != b.load_pf) return a.load_pf < b.load_pf;
  return a.rat_ps > b.rat_ps;
}

/// The shared sweep of the deterministic prunes: `list` sorted by
/// (load asc, rat desc-on-ties) in, non-dominated subset out. In-place
/// compaction: the write cursor never passes the read cursor, so no
/// allocation and no second pass.
void det_sweep(std::vector<det_candidate>& list, dp_stats& stats) {
  std::size_t w = 0;
  for (std::size_t r = 0; r < list.size(); ++r) {
    if (w > 0 && list[w - 1].rat_ps >= list[r].rat_ps) {
      ++stats.candidates_pruned;  // dominated by the last kept candidate
      continue;
    }
    if (w != r) list[w] = list[r];
    ++w;
  }
  list.resize(w);
}

}  // namespace

void prune_deterministic(std::vector<det_candidate>& list, dp_stats& stats) {
  if (list.size() <= 1) return;
  std::sort(list.begin(), list.end(), det_key_less);
  det_sweep(list, stats);
}

void prune_deterministic_presorted(std::vector<det_candidate>& list,
                                   std::size_t sorted_prefix,
                                   dp_stats& stats) {
  if (list.size() <= 1) return;
  const auto mid = list.begin() + static_cast<std::ptrdiff_t>(sorted_prefix);
  std::sort(mid, list.end(), det_key_less);
  // Fused stable merge + sweep: one pass, no inplace_merge temp buffer. On
  // equal keys the base side goes first (stable-merge order), matching
  // std::sort only up to bitwise key ties -- see the header contract.
  std::vector<det_candidate> kept;
  kept.reserve(list.size());
  const auto take = [&kept, &stats](det_candidate& c) {
    if (!kept.empty() && kept.back().rat_ps >= c.rat_ps) {
      ++stats.candidates_pruned;
      return;
    }
    kept.push_back(std::move(c));
  };
  std::size_t i = 0;
  std::size_t j = sorted_prefix;
  while (i < sorted_prefix && j < list.size()) {
    if (det_key_less(list[j], list[i])) {
      take(list[j++]);
    } else {
      take(list[i++]);
    }
  }
  while (i < sorted_prefix) take(list[i++]);
  while (j < list.size()) take(list[j++]);
  list = std::move(kept);
}

void prune_deterministic_sorted(std::vector<det_candidate>& list,
                                dp_stats& stats) {
  if (list.size() <= 1) return;
  det_sweep(list, stats);
}

// ---------------------------------------------------------------------------
// Two-parameter rule.
// ---------------------------------------------------------------------------

bool dominates(const two_param_rule& rule, const stat_candidate& a,
               const stat_candidate& b, const stats::variation_space& space) {
  return dominates_2p(rule, a, b, space, nullptr, nullptr);
}

std::size_t sigma_diff_cache::key_hash::operator()(const key& k) const {
  const std::size_t h1 = std::hash<const void*>{}(k.lo);
  const std::size_t h2 = std::hash<const void*>{}(k.hi);
  return h1 ^ (h2 * std::size_t{0x9e3779b97f4a7c15ULL});
}

double sigma_diff_cache::get(const stats::linear_form& x,
                             const stats::linear_form& y,
                             const stats::variation_space& space) {
  const void* px = &x;
  const void* py = &y;
  // std::less gives the total pointer order the raw <= would not guarantee
  // for unrelated objects.
  const key k =
      std::less<const void*>{}(py, px) ? key{py, px} : key{px, py};
  const auto it = map_.find(k);
  if (it != map_.end()) return it->second;
  const double sigma = stats::sigma_of_difference(x, y, space);
  map_.emplace(k, sigma);
  return sigma;
}

bool dominates(const two_param_rule& rule, const stat_candidate& a,
               const stat_candidate& b, const stats::variation_space& space,
               sigma_diff_cache& sigmas) {
  return dominates_2p(rule, a, b, space, &sigmas, nullptr);
}

void prune_two_param(const two_param_rule& rule,
                     std::vector<stat_candidate>& list,
                     const stats::variation_space& space, dp_stats& stats) {
  if (list.size() <= 1) return;
  std::sort(list.begin(), list.end(),
            [](const stat_candidate& a, const stat_candidate& b) {
              if (a.load.mean() != b.load.mean()) {
                return a.load.mean() < b.load.mean();
              }
              return a.rat.mean() > b.rat.mean();
            });
  std::vector<stat_candidate> kept;
  kept.reserve(list.size());
  const std::size_t window = std::max<std::size_t>(1, rule.sweep_window);
  for (auto& c : list) {
    bool pruned = false;
    // Under the mean rule the order is total and transitive, so comparing
    // against the last kept candidate alone is exact; for p > 0.5 we scan a
    // small window of recent survivors (the paper's practical linearization).
    const std::size_t scan =
        std::min(rule.is_mean_rule() ? std::size_t{1} : window, kept.size());
    for (std::size_t k = 1; k <= scan && !pruned; ++k) {
      pruned = dominates_2p(rule, kept[kept.size() - k], c, space, nullptr,
                            &stats.dominance_prefilter_hits);
    }
    if (pruned) {
      ++stats.candidates_pruned;
      continue;
    }
    kept.push_back(std::move(c));
  }
  list = std::move(kept);
}

void prune_two_param_mean_presorted(std::vector<stat_candidate>& list,
                                    std::size_t sorted_prefix,
                                    dp_stats& stats) {
  if (list.size() <= 1) return;
  const auto mean_less = [](const stat_candidate& a, const stat_candidate& b) {
    if (a.load.mean() != b.load.mean()) {
      return a.load.mean() < b.load.mean();
    }
    return a.rat.mean() > b.rat.mean();
  };
  const auto mid = list.begin() + static_cast<std::ptrdiff_t>(sorted_prefix);
  std::sort(mid, list.end(), mean_less);
  // Fused stable merge + the mean rule's window-1 sweep of prune_two_param
  // (Lemma 4: the order is total, so the last survivor decides). One pass,
  // no inplace_merge temp buffer.
  std::vector<stat_candidate> kept;
  kept.reserve(list.size());
  const auto take = [&kept, &stats](stat_candidate& c) {
    if (!kept.empty() && kept.back().load.mean() <= c.load.mean() &&
        kept.back().rat.mean() >= c.rat.mean()) {
      ++stats.candidates_pruned;
      return;
    }
    kept.push_back(std::move(c));
  };
  std::size_t i = 0;
  std::size_t j = sorted_prefix;
  while (i < sorted_prefix && j < list.size()) {
    if (mean_less(list[j], list[i])) {
      take(list[j++]);
    } else {
      take(list[i++]);
    }
  }
  while (i < sorted_prefix) take(list[i++]);
  while (j < list.size()) take(list[j++]);
  list = std::move(kept);
}

void prune_two_param_mean_sorted(std::vector<stat_candidate>& list,
                                 dp_stats& stats) {
  if (list.size() <= 1) return;
  // The mean rule's window-1 sweep, in-place: the write cursor never passes
  // the read cursor, so no allocation.
  std::size_t w = 0;
  for (std::size_t r = 0; r < list.size(); ++r) {
    if (w > 0 && list[w - 1].load.mean() <= list[r].load.mean() &&
        list[w - 1].rat.mean() >= list[r].rat.mean()) {
      ++stats.candidates_pruned;
      continue;
    }
    if (w != r) list[w] = std::move(list[r]);
    ++w;
  }
  list.resize(w);
}

// ---------------------------------------------------------------------------
// Four-parameter rule.
// ---------------------------------------------------------------------------

bool dominates(const four_param_rule& rule, const stat_candidate& a,
               const stat_candidate& b, const stats::variation_space& space) {
  // Load condition (eq. 2): pi_{alpha_u}(L_a) < pi_{alpha_l}(L_b), with the
  // identical-form tie convention.
  bool load_ok = false;
  if (a.load == b.load) {
    load_ok = true;
  } else {
    const double a_hi =
        stats::percentile(a.load, space, rule.alpha_hi);
    const double b_lo =
        stats::percentile(b.load, space, rule.alpha_lo);
    load_ok = a_hi < b_lo;
  }
  if (!load_ok) return false;

  // RAT condition (eq. 3): pi_{beta_l}(T_a) > pi_{beta_u}(T_b).
  if (a.rat == b.rat) return true;
  const double a_lo = stats::percentile(a.rat, space, rule.beta_lo);
  const double b_hi = stats::percentile(b.rat, space, rule.beta_hi);
  return a_lo > b_hi;
}

void prune_four_param(const four_param_rule& rule,
                      std::vector<stat_candidate>& list,
                      const stats::variation_space& space, dp_stats& stats,
                      std::size_t max_comparisons) {
  const std::size_t n = list.size();
  if (n <= 1) return;
  std::size_t comparisons = 0;
  // Cache the percentile corners; the pairwise pass then costs O(n^2)
  // comparisons of doubles rather than O(n^2) sigma evaluations.
  struct corners {
    double load_lo, load_hi, rat_lo, rat_hi;
  };
  std::vector<corners> c(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double lm = list[i].load.mean();
    const double ls = list[i].load_stddev(space);
    const double rm = list[i].rat.mean();
    const double rs = list[i].rat_stddev(space);
    c[i] = {stats::normal_percentile(lm, ls, rule.alpha_lo),
            stats::normal_percentile(lm, ls, rule.alpha_hi),
            stats::normal_percentile(rm, rs, rule.beta_lo),
            stats::normal_percentile(rm, rs, rule.beta_hi)};
  }
  std::vector<bool> dead(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    if (dead[i]) continue;
    if (max_comparisons != 0 && comparisons > max_comparisons) break;
    comparisons += n;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j || dead[j]) continue;
      const bool load_ok =
          (list[i].load == list[j].load) || (c[i].load_hi < c[j].load_lo);
      if (!load_ok) continue;
      const bool rat_ok =
          (list[i].rat == list[j].rat) || (c[i].rat_lo > c[j].rat_hi);
      if (rat_ok) dead[j] = true;
    }
  }
  std::vector<stat_candidate> kept;
  kept.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (dead[i]) {
      ++stats.candidates_pruned;
    } else {
      kept.push_back(std::move(list[i]));
    }
  }
  list = std::move(kept);
}

// ---------------------------------------------------------------------------
// Corner rule.
// ---------------------------------------------------------------------------

bool dominates(const corner_rule& rule, const stat_candidate& a,
               const stat_candidate& b, const stats::variation_space& space) {
  const double la = stats::percentile(a.load, space, rule.percentile);
  const double lb = stats::percentile(b.load, space, rule.percentile);
  const double ta = stats::percentile(a.rat, space, 1.0 - rule.percentile);
  const double tb = stats::percentile(b.rat, space, 1.0 - rule.percentile);
  return la <= lb && ta >= tb;
}

void prune_corner(const corner_rule& rule, std::vector<stat_candidate>& list,
                  const stats::variation_space& space, dp_stats& stats) {
  if (list.size() <= 1) return;
  struct projected {
    double load_q, rat_q;
    stat_candidate c;
  };
  std::vector<projected> proj;
  proj.reserve(list.size());
  for (auto& c : list) {
    // Same bits as stats::percentile(form, space, p): normal_percentile over
    // the identical (mean, stddev) pair, with the stddev read from the cache.
    proj.push_back({stats::normal_percentile(c.load.mean(),
                                             c.load_stddev(space),
                                             rule.percentile),
                    stats::normal_percentile(c.rat.mean(), c.rat_stddev(space),
                                             1.0 - rule.percentile),
                    std::move(c)});
  }
  std::sort(proj.begin(), proj.end(), [](const projected& a, const projected& b) {
    if (a.load_q != b.load_q) return a.load_q < b.load_q;
    return a.rat_q > b.rat_q;
  });
  std::vector<stat_candidate> kept;
  kept.reserve(proj.size());
  double best_rat = -std::numeric_limits<double>::infinity();
  for (auto& p : proj) {
    if (p.rat_q <= best_rat) {
      ++stats.candidates_pruned;
      continue;
    }
    best_rat = p.rat_q;
    kept.push_back(std::move(p.c));
  }
  list = std::move(kept);
}

}  // namespace vabi::core
