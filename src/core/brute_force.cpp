#include "core/brute_force.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace vabi::core {

det_result brute_force_insertion(const tree::routing_tree& tree,
                                 const det_options& options) {
  const std::size_t positions = tree.num_buffer_positions();
  const std::size_t choices = options.library.size() + 1;
  if (positions > brute_force_max_positions ||
      std::pow(static_cast<double>(choices), static_cast<double>(positions)) >
          2e7) {
    throw std::invalid_argument("brute_force_insertion: tree too large");
  }

  // Positions are all nodes except the source (node 0).
  std::vector<tree::node_id> pos;
  pos.reserve(positions);
  for (tree::node_id id = 1; id < tree.num_nodes(); ++id) pos.push_back(id);

  std::vector<std::size_t> choice(positions, 0);  // 0 = none, k = type k-1
  det_result best;
  best.root_rat_ps = -std::numeric_limits<double>::infinity();
  best.assignment = timing::buffer_assignment(tree.num_nodes());

  // One assignment reused across the whole enumeration: every odometer step
  // rewrites exactly the changed positions (below we clear all, cheap and
  // branch-free, still allocation-free).
  timing::buffer_assignment assignment(tree.num_nodes());
  while (true) {
    for (std::size_t i = 0; i < positions; ++i) {
      if (choice[i] != 0) {
        assignment.place(pos[i],
                         static_cast<timing::buffer_index>(choice[i] - 1));
      } else {
        assignment.remove(pos[i]);
      }
    }
    const auto eval = timing::evaluate_buffered_tree(
        tree, options.wire, options.library, assignment,
        options.driver_res_ohm);
    ++best.stats.candidates_created;
    if (eval.root_rat_ps > best.root_rat_ps) {
      best.root_rat_ps = eval.root_rat_ps;
      best.assignment = assignment;
    }

    // Odometer increment over the mixed-radix choice vector.
    std::size_t i = 0;
    while (i < positions && ++choice[i] == choices) {
      choice[i] = 0;
      ++i;
    }
    if (i == positions) break;
  }
  best.num_buffers = best.assignment.count();
  return best;
}

}  // namespace vabi::core
