// Exhaustive buffer insertion -- the test oracle.
//
// Enumerates every assignment of {no buffer, type 0, ..., type B-1} to every
// legal position and evaluates each with the Elmore engine. Exponential
// ((B+1)^positions), so only usable on tiny trees; the unit tests use it to
// certify that the DP engines are exactly optimal in the deterministic
// setting and near-optimal in the statistical one.
#pragma once

#include "core/van_ginneken.hpp"

namespace vabi::core {

/// Maximum positions the oracle accepts ((B+1)^positions assignments).
inline constexpr std::size_t brute_force_max_positions = 16;

/// Finds the RAT-optimal assignment by exhaustive search. Throws
/// std::invalid_argument when the tree is too large to enumerate.
det_result brute_force_insertion(const tree::routing_tree& tree,
                                 const det_options& options);

}  // namespace vabi::core
