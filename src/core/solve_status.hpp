// Structured error taxonomy for the solver stack.
//
// Historically each driver reported failure its own way: validation threw
// std::invalid_argument, resource caps set a boolean dp_stats::aborted with a
// free-text reason, and a throwing batch job took the whole batch down. For a
// service solving thousands of nets per design, every failure mode needs a
// *typed* result with a bounded blast radius instead. This header defines:
//
//   - solve_code / solve_error: the closed taxonomy of solver failures, with
//     the tree node where the failure was detected (when one is known) and a
//     human-readable detail string.
//   - solve_outcome<T>: an expected-style sum of a result and a solve_error.
//     The `solve_*` entry points of every driver (statistical_dp,
//     van_ginneken, cost_bounded, parallel, batch_solver) return one of these
//     and never throw; the legacy throwing/flag-setting `run_*` entry points
//     remain as thin shims for existing callers.
//   - cancel_token: a cooperative cancellation flag callers can pass into the
//     drivers; workers poll it at node boundaries.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <variant>

#include <atomic>

#include "tree/routing_tree.hpp"

namespace vabi::core {

/// Why a solve failed. Codes are stable across threads and runs: the same
/// input with the same caps yields the same code regardless of scheduling.
enum class solve_code : std::uint8_t {
  ok,                 ///< not an error (never stored in a solve_error)
  candidate_cap,      ///< max_list_size / max_candidates exceeded
  deadline_exceeded,  ///< wall-clock deadline passed at a node boundary
  memory_cap,         ///< arena-bytes cap exceeded or allocation failed
  nonfinite_value,    ///< NaN/inf detected in a canonical form at a seal point
  invalid_options,    ///< option validation failed (detail names the field)
  invalid_tree,       ///< the routing tree failed structural validation
  cancelled,          ///< a cancel_token was triggered (or a sibling aborted)
  internal,           ///< unexpected exception escaping the engine
  journal_corrupt,    ///< a result journal failed CRC/framing mid-log
  journal_mismatch,   ///< a journal does not match the jobs being resumed
  shard_mismatch,     ///< shard journals disagree/overlap/missing at merge
};

inline const char* to_string(solve_code code) {
  switch (code) {
    case solve_code::ok:
      return "ok";
    case solve_code::candidate_cap:
      return "candidate_cap";
    case solve_code::deadline_exceeded:
      return "deadline_exceeded";
    case solve_code::memory_cap:
      return "memory_cap";
    case solve_code::nonfinite_value:
      return "nonfinite_value";
    case solve_code::invalid_options:
      return "invalid_options";
    case solve_code::invalid_tree:
      return "invalid_tree";
    case solve_code::cancelled:
      return "cancelled";
    case solve_code::internal:
      return "internal";
    case solve_code::journal_corrupt:
      return "journal_corrupt";
    case solve_code::journal_mismatch:
      return "journal_mismatch";
    case solve_code::shard_mismatch:
      return "shard_mismatch";
  }
  return "?";
}

/// One typed solver failure: what went wrong, where (when a node is known),
/// and a detail string for humans/logs. `node` is the tree node at which the
/// failure was *detected* — for deadline/cap trips that is the node boundary
/// where the guard fired, not necessarily where the budget was consumed.
struct solve_error {
  solve_code code = solve_code::internal;
  tree::node_id node = tree::invalid_node;
  std::string detail;

  /// "deadline_exceeded at node 17: wall clock exceeded max_wall_seconds"
  std::string message() const {
    std::string out = to_string(code);
    if (node != tree::invalid_node) {
      out += " at node ";
      out += std::to_string(node);
    }
    if (!detail.empty()) {
      out += ": ";
      out += detail;
    }
    return out;
  }
};

/// Expected-style result: either a T or a solve_error. Drivers returning a
/// solve_outcome never throw for failures in the taxonomy above.
template <class T>
class solve_outcome {
 public:
  solve_outcome(T value) : state_(std::move(value)) {}             // NOLINT
  solve_outcome(solve_error error) : state_(std::move(error)) {}   // NOLINT

  bool ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return ok(); }

  /// The error code; solve_code::ok when the outcome holds a value.
  solve_code code() const {
    return ok() ? solve_code::ok : std::get<solve_error>(state_).code;
  }

  T& value() & { return std::get<T>(state_); }
  const T& value() const& { return std::get<T>(state_); }
  T&& value() && { return std::get<T>(std::move(state_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  solve_error& error() & { return std::get<solve_error>(state_); }
  const solve_error& error() const& { return std::get<solve_error>(state_); }

 private:
  std::variant<T, solve_error> state_;
};

/// Cooperative cancellation flag. A caller arms it (request_stop) from any
/// thread; workers poll stop_requested() at node boundaries and wind down
/// with solve_code::cancelled. Reusable after reset().
class cancel_token {
 public:
  cancel_token() = default;
  cancel_token(const cancel_token&) = delete;
  cancel_token& operator=(const cancel_token&) = delete;

  void request_stop() noexcept { stop_.store(true, std::memory_order_relaxed); }
  bool stop_requested() const noexcept {
    return stop_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { stop_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> stop_{false};
};

}  // namespace vabi::core
