// Dominance (pruning) rules between candidate solutions.
//
// Deterministic van Ginneken prunes (L2, T2) when L1 <= L2 and T1 >= T2 (not
// both equal-worse). Under process variation L and T are correlated random
// variables and "dominates" must be re-defined. This module implements the
// rules compared by the paper:
//
//   - two_param_rule (2P; the contribution, Section 2.3):
//       P(L1 < L2) >= p_L  and  P(T1 > T2) >= p_T,    0.5 <= p <= 1.
//     Probabilities are exact under the joint-normal canonical-form model
//     (eq. 8). At p = 0.5 the rule degenerates to comparing *means*
//     (Lemma 4), which is a total, transitive order (Lemmas 2-3, Theorem 2):
//     candidate lists can be kept sorted, merged and pruned in linear time,
//     giving the deterministic O(B N^2) overall complexity (Theorem 1).
//
//   - four_param_rule (4P; the DATE 2005 baseline [7], Section 2.2):
//       pi_{a_u}(L1) < pi_{a_l}(L2)  and  pi_{b_l}(T1) > pi_{b_u}(T2)
//     with pi_p the p-quantile (eq. 1). Only a partial order: merge is
//     O(n*m) and pruning O(N^2), with no bound on surviving candidates.
//
//   - corner_rule (1P; the simplification of [8]): projects every candidate
//     onto single conservative corner values L_hat = pi_q(L), T_hat =
//     pi_{1-q}(T) and applies the deterministic rule to the projections.
//     Total order (hence fast) but ignores correlation between solutions.
//
// Tie semantics: identical canonical forms satisfy either side of a
// condition. This mirrors the deterministic "not both equal" convention and
// matters in practice: all buffered candidates generated at one node with one
// buffer type share the *same* load form (same physical device), and without
// the tie rule no statistical rule could ever prune among them.
#pragma once

#include <unordered_map>
#include <vector>

#include "core/solution.hpp"
#include "stats/candidate_plane.hpp"
#include "stats/variation_space.hpp"

namespace vabi::core {

// ---------------------------------------------------------------------------
// Sweep-implementation policy (pairwise vs tiled).
// ---------------------------------------------------------------------------
//
// The statistical prunes have two implementations producing bit-identical
// surviving lists:
//
//   - pairwise: the seed's per-pair sweep; every dominance test runs its own
//     sparse/dense one-vs-one moment reductions on demand.
//   - tiled: gathers the candidate list's forms once into SoA coefficient
//     planes (stats/candidate_plane.hpp), batch-fills the Var(L)/Var(T)
//     moment caches with the one-vs-many kernels, and answers each
//     candidate-vs-sweep-window tile with a batched interval prefilter plus
//     a batched sigma-of-difference pass for the undecided pairs.
//
// Selection is automatic (engage tiled when the list size and the source
// count clear the measured thresholds below) and overridable with
// VABI_FORCE_PRUNE=pairwise|tiled or set_force_prune(). The 2P mean rule
// (p = 0.5) never tiles: it compares means only and touches no second
// moments. Which implementation ran is an *organization* property -- like
// VABI_FORCE_DENSE it can change counters (tile_prefilter_hits vs
// dominance_prefilter_hits) but never the surviving set, its order, or any
// form bit.

/// -1 always pairwise, +1 always tiled, 0 adaptive (the thresholds decide).
/// Overrides VABI_FORCE_PRUNE for tests/benches.
void set_force_prune(int mode);

/// Restores the lazy VABI_FORCE_PRUNE read (tests that set the env var).
void reset_force_prune_from_env();

/// True when a statistical prune over `k` candidates and `sources` variation
/// sources resolves to the tiled sweep under the current policy.
bool use_tiled_prune(std::size_t k, std::size_t sources);

/// Per-worker scratch of the tiled dominance engine: the gathered candidate
/// planes plus the batching arrays of the sweep. Re-gathered on every prune
/// call (so sealed-slab adoption or any form relocation between prunes can
/// never leave a stale plane behind); storage is retained across calls, so
/// steady state allocates nothing. Owned by the DP workers (one per worker,
/// never shared across threads); a null scratch argument falls back to a
/// thread-local instance.
struct prune_scratch {
  stats::candidate_plane load_planes;
  stats::candidate_plane rat_planes;
  std::vector<const double*> rows;      ///< row-pointer batch for the kernels
  std::vector<std::size_t> row_index;   ///< list index per batched row
  std::vector<std::size_t> pair_idx;    ///< window position per batched pair
  std::vector<double> out;              ///< batched reduction results
  std::vector<double> mu_d;             ///< per-pair mean differences
  std::vector<double> sigma_x;          ///< per-pair cached stddevs
  std::vector<double> sigma_y;
  std::vector<std::uint8_t> verdict;    ///< prefilter verdicts (1/0/2)
  std::vector<std::uint8_t> cond_ok;    ///< per-pair condition results
  std::vector<std::size_t> kept_rows;   ///< plane row of each kept candidate
};

// ---------------------------------------------------------------------------
// Deterministic rule.
// ---------------------------------------------------------------------------

/// True when `a` dominates `b` (b is redundant).
bool det_dominates(const det_candidate& a, const det_candidate& b);

/// Prunes `list` to its non-dominated subset. On return the list is sorted by
/// (load asc, rat asc). Linear after the sort. `stats` accrues prune counts.
void prune_deterministic(std::vector<det_candidate>& list, dp_stats& stats);

/// prune_deterministic for a list whose first `sorted_prefix` candidates are
/// already pruned (strictly increasing loads) and whose tail is arbitrary --
/// the shape the Li-Shi buffered step produces (sorted base + b appended
/// buffered candidates). Sorts only the tail and merges: O((n - prefix) log
/// (n - prefix) + n) instead of O(n log n), which is where the classic path's
/// per-node re-sort cost goes. Same comparator and same sweep as
/// prune_deterministic, so the surviving set is identical (the orders can
/// differ only for candidates with bitwise-equal (load, rat) keys, where
/// survival is value-equivalent either way; the Li-Shi differential suite
/// pins actual equality).
void prune_deterministic_presorted(std::vector<det_candidate>& list,
                                   std::size_t sorted_prefix, dp_stats& stats);

/// prune_deterministic for a list that is *entirely* sorted already (strictly
/// increasing loads -- the post-prune invariant, which single-width in-place
/// wire propagation preserves: every load shifts by the same wire cap).
/// Skips the sort and runs the shared sweep in place: O(n), no allocation.
/// Used by the Li-Shi path on the per-child re-prune after wire propagation,
/// where the classic path's per-node sort is pure overhead. Same tie caveat
/// as the presorted variant (a bitwise load tie manufactured by the constant
/// shift is ordered as-is rather than re-sorted by rat).
void prune_deterministic_sorted(std::vector<det_candidate>& list,
                                dp_stats& stats);

// ---------------------------------------------------------------------------
// Two-parameter rule (2P).
// ---------------------------------------------------------------------------

struct two_param_rule {
  double p_load = 0.5;  ///< \bar{p_L} of eq. (6), in [0.5, 1]
  double p_rat = 0.5;   ///< \bar{p_T} of eq. (7), in [0.5, 1]

  /// How many most-recent kept candidates a sweep compares against when
  /// p > 0.5 (where the order is no longer total). 1 reproduces the strictly
  /// linear sweep; small values >1 prune slightly more at negligible cost.
  std::size_t sweep_window = 4;

  bool is_mean_rule() const { return p_load == 0.5 && p_rat == 0.5; }
};

bool dominates(const two_param_rule& rule, const stat_candidate& a,
               const stat_candidate& b, const stats::variation_space& space);

/// Memo of sigma_of_difference results keyed by the *unordered* pair of form
/// addresses. sigma(a - b) == sigma(b - a) to the bit (IEEE negation is
/// exact and the squared differences are identical), so one entry serves the
/// symmetric a/b and b/a covariance passes a both-directions sweep would
/// otherwise compute twice. Entries are bound to form addresses: only valid
/// while the candidate list is neither reallocated nor mutated.
class sigma_diff_cache {
 public:
  /// sigma_of_difference(x, y, space), computed once per unordered pair.
  double get(const stats::linear_form& x, const stats::linear_form& y,
             const stats::variation_space& space);

  /// f.stddev(space), computed once per form (address-keyed like the pair
  /// memo, same lifetime caveat). One entry serves both directions of every
  /// pair the form appears in -- the 4P percentile projections read it.
  double get_stddev(const stats::linear_form& f,
                    const stats::variation_space& space);

 private:
  struct key {
    const void* lo;
    const void* hi;
    bool operator==(const key&) const = default;
  };
  struct key_hash {
    std::size_t operator()(const key& k) const;
  };
  std::unordered_map<key, double, key_hash> map_;
  std::unordered_map<const void*, double> stddev_;
};

/// dominates() sharing one sigma memo across both directions of a pair (and
/// across pairs) within a sweep over a stable candidate list.
bool dominates(const two_param_rule& rule, const stat_candidate& a,
               const stat_candidate& b, const stats::variation_space& space,
               sigma_diff_cache& sigmas);

/// Sorts by (mean load asc, mean rat desc) and sweeps once. Exact (keeps
/// precisely the non-dominated set) when p_load == p_rat == 0.5; for larger
/// parameters it is the paper's practical linear approximation. For p > 0.5
/// the sweep body is chosen by the pairwise/tiled policy above (same
/// survivors either way); `scratch` hosts the tiled gather (null = a
/// thread-local fallback).
void prune_two_param(const two_param_rule& rule,
                     std::vector<stat_candidate>& list,
                     const stats::variation_space& space, dp_stats& stats,
                     prune_scratch* scratch = nullptr);

/// prune_two_param for the *mean rule only*, on a list whose first
/// `sorted_prefix` candidates are already pruned (strictly increasing mean
/// loads): tail sort + linear merge + the same window-1 sweep. The mean-rule
/// counterpart of prune_deterministic_presorted, used by the Li-Shi buffered
/// step. Precondition: rule.is_mean_rule().
void prune_two_param_mean_presorted(std::vector<stat_candidate>& list,
                                    std::size_t sorted_prefix,
                                    dp_stats& stats);

/// The mean-rule counterpart of prune_deterministic_sorted: the list is
/// already sorted by (mean load asc, mean rat desc) -- strictly increasing
/// mean loads by the post-prune invariant, preserved by single-width wire
/// propagation's constant mean shift -- so only the window-1 sweep runs,
/// in place. Precondition: the caller is in the 2P mean-rule regime.
void prune_two_param_mean_sorted(std::vector<stat_candidate>& list,
                                 dp_stats& stats);

// ---------------------------------------------------------------------------
// Four-parameter rule (4P) -- the DATE 2005 baseline.
// ---------------------------------------------------------------------------

struct four_param_rule {
  double alpha_lo = 0.05;  ///< \pi_{\alpha_l} percentile for the load
  double alpha_hi = 0.95;  ///< \pi_{\alpha_u}
  double beta_lo = 0.05;   ///< \pi_{\beta_l} percentile for the RAT
  double beta_hi = 0.95;   ///< \pi_{\beta_u}
};

bool dominates(const four_param_rule& rule, const stat_candidate& a,
               const stat_candidate& b, const stats::variation_space& space);

/// dominates(four_param_rule) sharing one per-form stddev memo across both
/// directions of a pair (and across pairs) within a sweep over a stable
/// candidate list -- the 4P counterpart of the cached 2P overload. Bitwise
/// identical to the uncached overload: the percentile corners expand to
/// normal_percentile(mean, stddev, p) over the exact same (mean, stddev)
/// pair stats::percentile computes.
bool dominates(const four_param_rule& rule, const stat_candidate& a,
               const stat_candidate& b, const stats::variation_space& space,
               sigma_diff_cache& sigmas);

/// Pairwise O(N^2) pruning -- the best one can do under a partial order.
/// `max_comparisons` bounds the quadratic work (0 = unlimited): when the
/// budget runs out the remaining candidates are kept unpruned (safe --
/// pruning less never loses solutions) and `stats.aborted` is left untouched
/// so the caller's resource caps decide the run's fate. Under *forced* tiled
/// mode the percentile-corner moment precompute batches the missing Var
/// caches through the one-vs-many variance kernel; automatic mode keeps the
/// lazy per-form walk, which measures faster at every shape (no downstream
/// reuse of a 4P gather -- see BM_DominanceSweep4P and the rationale in
/// pruning.cpp). The comparison loop itself is kept in list order -- the 4P
/// partial order's tie behavior is order-dependent, so it is shared verbatim
/// between both modes.
void prune_four_param(const four_param_rule& rule,
                      std::vector<stat_candidate>& list,
                      const stats::variation_space& space, dp_stats& stats,
                      std::size_t max_comparisons = 0,
                      prune_scratch* scratch = nullptr);

// ---------------------------------------------------------------------------
// Corner rule (1P).
// ---------------------------------------------------------------------------

struct corner_rule {
  double percentile = 0.95;  ///< q; load corner at q, RAT corner at 1-q
};

bool dominates(const corner_rule& rule, const stat_candidate& a,
               const stat_candidate& b, const stats::variation_space& space);

/// Linear sweep on the corner projections (total order).
void prune_corner(const corner_rule& rule, std::vector<stat_candidate>& list,
                  const stats::variation_space& space, dp_stats& stats);

// ---------------------------------------------------------------------------
// Test support.
// ---------------------------------------------------------------------------

/// True if no candidate in `list` dominates another (used by property tests).
template <typename Rule>
bool is_mutually_non_dominated(const Rule& rule,
                               const std::vector<stat_candidate>& list,
                               const stats::variation_space& space) {
  for (std::size_t i = 0; i < list.size(); ++i) {
    for (std::size_t j = 0; j < list.size(); ++j) {
      if (i != j && dominates(rule, list[i], list[j], space)) return false;
    }
  }
  return true;
}

/// 2P overload: the both-directions sweep evaluates every pair (i, j) and
/// (j, i); a shared sigma memo deduplicates the symmetric covariance passes.
inline bool is_mutually_non_dominated(const two_param_rule& rule,
                                      const std::vector<stat_candidate>& list,
                                      const stats::variation_space& space) {
  sigma_diff_cache sigmas;
  for (std::size_t i = 0; i < list.size(); ++i) {
    for (std::size_t j = 0; j < list.size(); ++j) {
      if (i != j && dominates(rule, list[i], list[j], space, sigmas)) {
        return false;
      }
    }
  }
  return true;
}

/// 4P overload: the per-form stddev memo computes each candidate's
/// percentile corners once instead of 2(n-1) times.
inline bool is_mutually_non_dominated(const four_param_rule& rule,
                                      const std::vector<stat_candidate>& list,
                                      const stats::variation_space& space) {
  sigma_diff_cache sigmas;
  for (std::size_t i = 0; i < list.size(); ++i) {
    for (std::size_t j = 0; j < list.size(); ++j) {
      if (i != j && dominates(rule, list[i], list[j], space, sigmas)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace vabi::core
