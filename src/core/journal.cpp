#include "core/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <bit>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#include "testing/fault_injection.hpp"

namespace vabi::core {

namespace {

constexpr char k_magic[8] = {'V', 'A', 'B', 'I', 'J', 'R', 'N', 'L'};
constexpr std::size_t k_magic_size = sizeof(k_magic);
constexpr std::size_t k_frame_head = 8;  // u32 len + u32 crc
/// A frame longer than this is taken as a corrupted length field, not a
/// record (the largest real record is a few MB of canonical-form terms).
constexpr std::uint32_t k_max_frame = 1u << 30;

constexpr std::uint8_t k_kind_header = 1;
constexpr std::uint8_t k_kind_record = 2;
constexpr std::uint8_t k_kind_shard = 3;

// -- little-endian primitives (endian-independent encode/decode) -----------

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_str(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

/// Bounds-checked sequential reader over a payload. Every get_* returns a
/// zero value once `fail` is set; callers check `fail` at the end so a
/// truncated payload can never read out of bounds.
struct cursor {
  const std::uint8_t* p;
  std::size_t n;
  std::size_t at = 0;
  bool fail = false;

  bool need(std::size_t k) {
    if (n - at < k) {
      fail = true;
      return false;
    }
    return true;
  }
  std::uint8_t get_u8() {
    if (!need(1)) return 0;
    return p[at++];
  }
  std::uint32_t get_u32() {
    if (!need(4)) return 0;
    std::uint32_t v = static_cast<std::uint32_t>(p[at]) |
                      static_cast<std::uint32_t>(p[at + 1]) << 8 |
                      static_cast<std::uint32_t>(p[at + 2]) << 16 |
                      static_cast<std::uint32_t>(p[at + 3]) << 24;
    at += 4;
    return v;
  }
  std::uint64_t get_u64() {
    const std::uint64_t lo = get_u32();
    const std::uint64_t hi = get_u32();
    return lo | hi << 32;
  }
  double get_f64() { return std::bit_cast<double>(get_u64()); }
  std::string get_str() {
    const std::uint32_t len = get_u32();
    if (!need(len)) return {};
    std::string s(reinterpret_cast<const char*>(p + at), len);
    at += len;
    return s;
  }
  bool done() const { return !fail && at == n; }
};

// -- payload codecs ---------------------------------------------------------

std::vector<std::uint8_t> encode_header_payload(const journal_header& h) {
  std::vector<std::uint8_t> out;
  put_u8(out, k_kind_header);
  put_u32(out, h.version);
  put_u8(out, h.has_batch_seed ? 1 : 0);
  put_u64(out, h.batch_seed);
  put_u64(out, h.num_jobs);
  put_u64(out, h.jobs_fingerprint);
  return out;
}

bool decode_header_payload(cursor& c, journal_header& h) {
  h.version = c.get_u32();
  h.has_batch_seed = c.get_u8() != 0;
  h.batch_seed = c.get_u64();
  h.num_jobs = c.get_u64();
  h.jobs_fingerprint = c.get_u64();
  return c.done();
}

std::vector<std::uint8_t> encode_shard_payload(const shard_info& s) {
  std::vector<std::uint8_t> out;
  put_u8(out, k_kind_shard);
  put_u32(out, s.shard_index);
  put_u32(out, s.shard_count);
  put_u64(out, s.parent_fingerprint);
  return out;
}

bool decode_shard_payload(cursor& c, shard_info& s) {
  s.shard_index = c.get_u32();
  s.shard_count = c.get_u32();
  s.parent_fingerprint = c.get_u64();
  return c.done();
}

std::vector<std::uint8_t> record_payload_bytes(const journal_record& r) {
  std::vector<std::uint8_t> out;
  put_u8(out, k_kind_record);
  put_u64(out, r.job_index);
  put_u64(out, r.fingerprint);
  put_u8(out, r.ok ? 1 : 0);
  if (!r.ok) {
    put_u8(out, static_cast<std::uint8_t>(r.code));
    put_u32(out, r.error_node);
    put_str(out, r.detail);
    return out;
  }
  const stat_result& res = r.result;
  put_u8(out, static_cast<std::uint8_t>(res.path));
  put_u64(out, r.num_sources);
  put_u64(out, res.num_buffers);

  const dp_stats& st = res.stats;
  put_u64(out, st.candidates_created);
  put_u64(out, st.candidates_pruned);
  put_u64(out, st.merge_pairs);
  put_u64(out, st.peak_list_size);
  put_u64(out, st.allocations);
  put_u64(out, st.peak_terms);
  put_f64(out, st.wall_seconds);
  put_u8(out, st.aborted ? 1 : 0);
  put_u8(out, static_cast<std::uint8_t>(st.abort_code));
  put_u32(out, st.abort_node);
  put_str(out, st.abort_reason);

  put_f64(out, res.root_rat.nominal());
  const auto terms = res.root_rat.terms();
  put_u32(out, static_cast<std::uint32_t>(terms.size()));
  for (const auto& t : terms) {
    put_u32(out, t.id);
    put_f64(out, t.coeff);
  }

  put_u32(out, static_cast<std::uint32_t>(res.assignment.num_nodes()));
  for (tree::node_id n = 0; n < res.assignment.num_nodes(); ++n) {
    const std::int32_t b = res.assignment.has_buffer(n)
                               ? static_cast<std::int32_t>(res.assignment.buffer(n))
                               : timing::buffer_assignment::no_buffer;
    put_u32(out, static_cast<std::uint32_t>(b));
  }

  put_u32(out, static_cast<std::uint32_t>(res.wires.num_nodes()));
  for (tree::node_id n = 0; n < res.wires.num_nodes(); ++n) {
    put_u32(out, res.wires.width(n));
  }
  return out;
}

bool record_payload_decode(cursor& c, journal_record& r) {
  r.job_index = c.get_u64();
  r.fingerprint = c.get_u64();
  r.ok = c.get_u8() != 0;
  if (!r.ok) {
    r.code = static_cast<solve_code>(c.get_u8());
    r.error_node = c.get_u32();
    r.detail = c.get_str();
    return c.done();
  }
  stat_result& res = r.result;
  res.path = static_cast<solve_path>(c.get_u8());
  r.num_sources = c.get_u64();
  res.num_buffers = c.get_u64();

  dp_stats& st = res.stats;
  st.candidates_created = c.get_u64();
  st.candidates_pruned = c.get_u64();
  st.merge_pairs = c.get_u64();
  st.peak_list_size = c.get_u64();
  st.allocations = c.get_u64();
  st.peak_terms = c.get_u64();
  st.wall_seconds = c.get_f64();
  st.aborted = c.get_u8() != 0;
  st.abort_code = static_cast<solve_code>(c.get_u8());
  st.abort_node = c.get_u32();
  st.abort_reason = c.get_str();

  const double nominal = c.get_f64();
  const std::uint32_t nterms = c.get_u32();
  if (!c.need(static_cast<std::size_t>(nterms) * 12)) return false;
  std::vector<stats::lf_term> terms(nterms);
  for (auto& t : terms) {
    t.id = c.get_u32();
    t.coeff = c.get_f64();
  }
  res.root_rat = stats::linear_form(nominal, std::move(terms));

  const std::uint32_t anodes = c.get_u32();
  if (!c.need(static_cast<std::size_t>(anodes) * 4)) return false;
  res.assignment = timing::buffer_assignment(anodes);
  for (std::uint32_t n = 0; n < anodes; ++n) {
    const auto b = static_cast<std::int32_t>(c.get_u32());
    if (b != timing::buffer_assignment::no_buffer) {
      res.assignment.place(n, static_cast<timing::buffer_index>(b));
    }
  }

  const std::uint32_t wnodes = c.get_u32();
  if (!c.need(static_cast<std::size_t>(wnodes) * 4)) return false;
  res.wires = timing::wire_assignment(wnodes);
  for (std::uint32_t n = 0; n < wnodes; ++n) {
    res.wires.set(n, c.get_u32());
  }
  return c.done();
}

void append_frame(std::vector<std::uint8_t>& image,
                  std::vector<std::uint8_t> payload, bool allow_faults) {
  if (allow_faults &&
      testing::should_fire(testing::fault_point::journal_crc_flip)) {
    // Flip one payload bit *after* the CRC would have been computed over the
    // clean bytes -- i.e. corrupt the stored payload, keep the stored CRC.
    // (Flipping before would just journal a different, self-consistent
    // record.) The reader must detect this as a CRC mismatch.
    put_u32(image, static_cast<std::uint32_t>(payload.size()));
    put_u32(image, crc32(payload.data(), payload.size()));
    payload[payload.size() / 2] ^= 0x10;
    image.insert(image.end(), payload.begin(), payload.end());
    return;
  }
  put_u32(image, static_cast<std::uint32_t>(payload.size()));
  put_u32(image, crc32(payload.data(), payload.size()));
  image.insert(image.end(), payload.begin(), payload.end());
}

solve_error corrupt(std::string detail) {
  return solve_error{solve_code::journal_corrupt, tree::invalid_node,
                     std::move(detail)};
}

}  // namespace

// ---------------------------------------------------------------------------
// Hashes.
// ---------------------------------------------------------------------------

std::uint64_t fnv1a(const void* data, std::size_t size, std::uint64_t h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t fnv1a_u64(std::uint64_t v, std::uint64_t h) {
  return fnv1a(&v, sizeof(v), h);
}

std::uint64_t fnv1a_f64(double v, std::uint64_t h) {
  return fnv1a_u64(std::bit_cast<std::uint64_t>(v), h);
}

std::uint64_t fnv1a_str(const std::string& s, std::uint64_t h) {
  h = fnv1a_u64(s.size(), h);
  return fnv1a(s.data(), s.size(), h);
}

std::uint32_t crc32(const void* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t c = 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

// ---------------------------------------------------------------------------
// Reader.
// ---------------------------------------------------------------------------

solve_outcome<journal_contents> read_journal(const std::string& path) {
  journal_contents out;

  std::ifstream in(path, std::ios::binary);
  if (!in) return out;  // no file yet: nothing was checkpointed before dying
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};
  if (bytes.empty()) return out;

  if (bytes.size() < k_magic_size) {
    // Shorter than the magic: can only be a torn first write.
    out.dropped_tail_bytes = bytes.size();
    return out;
  }
  if (std::memcmp(bytes.data(), k_magic, k_magic_size) != 0) {
    return corrupt("bad magic: '" + path + "' is not a vabi journal");
  }

  std::vector<bool> seen;  // indexed by job_index once the header is known
  std::size_t offset = k_magic_size;
  std::size_t frame_index = 0;
  while (offset < bytes.size()) {
    const std::size_t remaining = bytes.size() - offset;
    if (remaining < k_frame_head) {
      out.dropped_tail_bytes = remaining;  // torn frame header
      break;
    }
    cursor head{bytes.data() + offset, k_frame_head};
    const std::uint32_t len = head.get_u32();
    const std::uint32_t stored_crc = head.get_u32();
    if (len > k_max_frame || k_frame_head + len > remaining) {
      // Length field implausible or frame runs past EOF: a torn tail. (A
      // bit-flipped length mid-log desynchronizes framing; the very next
      // "frame" then fails its CRC with bytes after it and is reported as
      // mid-log corruption below.)
      out.dropped_tail_bytes = remaining;
      break;
    }
    const std::uint8_t* payload = bytes.data() + offset + k_frame_head;
    const std::size_t frame_end = offset + k_frame_head + len;
    if (crc32(payload, len) != stored_crc) {
      if (frame_end == bytes.size()) {
        out.dropped_tail_bytes = remaining;  // bit flip in the last frame
        break;
      }
      return corrupt("CRC mismatch at record " + std::to_string(frame_index) +
                     " (offset " + std::to_string(offset) + ")");
    }
    cursor c{payload, len};
    const std::uint8_t kind = c.get_u8();
    if (frame_index == 0) {
      if (kind != k_kind_header || !decode_header_payload(c, out.header)) {
        return corrupt("first frame is not a valid journal header");
      }
      if (out.header.version != 1) {
        return corrupt("unsupported journal version " +
                       std::to_string(out.header.version));
      }
      out.has_header = true;
      seen.assign(out.header.num_jobs, false);
    } else if (frame_index == 1 && kind == k_kind_shard) {
      // Optional shard frame (sharded batches, src/shard). Only valid in
      // slot 1; a shard frame anywhere else falls through to the record
      // branch and is rejected as an undecodable record.
      if (!decode_shard_payload(c, out.shard)) {
        return corrupt("undecodable shard frame");
      }
      out.has_shard = true;
    } else {
      journal_record rec;
      if (kind != k_kind_record || !record_payload_decode(c, rec)) {
        // The CRC passed, so this is not line noise: reject loudly.
        return corrupt("undecodable record " + std::to_string(frame_index));
      }
      if (rec.job_index < seen.size() && seen[rec.job_index]) {
        ++out.duplicates_dropped;  // keep the first (checkpointed) copy
      } else {
        if (rec.job_index < seen.size()) seen[rec.job_index] = true;
        out.records.push_back(std::move(rec));
      }
    }
    offset = frame_end;
    ++frame_index;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

namespace journal_detail {

std::vector<std::uint8_t> encode_record_frame(const journal_record& record) {
  std::vector<std::uint8_t> frame;
  append_frame(frame, record_payload_bytes(record), /*allow_faults=*/false);
  return frame;
}

std::vector<std::uint8_t> encode_header_frame(const journal_header& header) {
  std::vector<std::uint8_t> frame;
  append_frame(frame, encode_header_payload(header), /*allow_faults=*/false);
  return frame;
}

std::vector<std::uint8_t> encode_shard_frame(const shard_info& shard) {
  std::vector<std::uint8_t> frame;
  append_frame(frame, encode_shard_payload(shard), /*allow_faults=*/false);
  return frame;
}

std::vector<std::uint8_t> encode_record_payload(const journal_record& record) {
  return record_payload_bytes(record);
}

bool decode_record_payload(const std::uint8_t* data, std::size_t size,
                           journal_record& out) {
  cursor c{data, size};
  if (c.get_u8() != k_kind_record) return false;
  return record_payload_decode(c, out);
}

}  // namespace journal_detail

journal_writer::journal_writer(std::string path, const journal_header& header,
                               std::size_t checkpoint_every_jobs,
                               std::uint64_t checkpoint_every_bytes)
    : path_(std::move(path)),
      checkpoint_every_jobs_(checkpoint_every_jobs),
      checkpoint_every_bytes_(checkpoint_every_bytes) {
  image_.insert(image_.end(), k_magic, k_magic + k_magic_size);
  append_frame(image_, encode_header_payload(header), /*allow_faults=*/false);
  bytes_at_checkpoint_ = image_.size();
}

journal_writer::journal_writer(std::string path, const journal_header& header,
                               const shard_info& shard,
                               std::size_t checkpoint_every_jobs,
                               std::uint64_t checkpoint_every_bytes)
    : journal_writer(std::move(path), header, checkpoint_every_jobs,
                     checkpoint_every_bytes) {
  has_shard_ = true;
  shard_index_ = shard.shard_index;
  append_frame(image_, encode_shard_payload(shard), /*allow_faults=*/false);
  bytes_at_checkpoint_ = image_.size();
}

void journal_writer::restore(const journal_record& record) {
  append_frame(image_, record_payload_bytes(record), /*allow_faults=*/false);
  ++records_;
  records_at_checkpoint_ = records_;
  bytes_at_checkpoint_ = image_.size();
}

void journal_writer::append(const journal_record& record) {
  append_frame(image_, record_payload_bytes(record), /*allow_faults=*/true);
  ++records_;
  maybe_checkpoint();
}

void journal_writer::maybe_checkpoint() {
  const bool jobs_due =
      checkpoint_every_jobs_ != 0 &&
      records_ - records_at_checkpoint_ >= checkpoint_every_jobs_;
  const bool bytes_due =
      checkpoint_every_bytes_ != 0 &&
      image_.size() - bytes_at_checkpoint_ >= checkpoint_every_bytes_;
  if (jobs_due || bytes_due) flush();
}

void journal_writer::flush() {
  records_at_checkpoint_ = records_;
  bytes_at_checkpoint_ = image_.size();

  const auto fail = [&](const char* what) {
    if (io_error_.empty()) {
      io_error_ = std::string(what) + " '" + path_ + "': " +
                  std::strerror(errno);
    }
  };

  const std::string tmp = path_ + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    fail("journal: cannot open");
    return;
  }
  std::size_t to_write = image_.size();
  // shard_write_short is queried with the shard's index so a test can tear
  // one specific shard's checkpoints (spec clause `node=<shard_index>`).
  if (testing::should_fire(testing::fault_point::journal_write_short) ||
      (has_shard_ && testing::should_fire(
                         testing::fault_point::shard_write_short,
                         shard_index_))) {
    // Simulate a crash mid-write: persist a truncated image (and still
    // rename it into place, as if power died between rename and the next
    // checkpoint). The reader must recover everything up to the torn frame.
    to_write = to_write > 13 ? to_write - 13 : to_write / 2;
  }
  std::size_t written = 0;
  while (written < to_write) {
    const ssize_t n =
        ::write(fd, image_.data() + written, to_write - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("journal: write failed on");
      ::close(fd);
      return;
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) fail("journal: fsync failed on");
  ::close(fd);
  if (::rename(tmp.c_str(), path_.c_str()) != 0) {
    fail("journal: rename failed for");
    return;
  }
  // fsync the directory so the rename itself is durable.
  std::string dir = path_;
  const std::size_t slash = dir.find_last_of('/');
  dir = slash == std::string::npos ? std::string(".") : dir.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  ++checkpoints_;
}

}  // namespace vabi::core
