// Cost-bounded buffer insertion (paper reference [9], Lillis/Cheng/Lin).
//
// Van Ginneken maximizes the root RAT regardless of how many buffers it
// spends; the low-power formulation of [9] instead asks for the *cheapest*
// buffering that still meets a required arrival time. Candidates carry a
// third coordinate -- the buffer cost spent in their subtree -- and the
// dominance rule becomes three-dimensional: (L1, T1, W1) prunes (L2, T2, W2)
// iff L1 <= L2, T1 >= T2 and W1 <= W2. The DP keeps, per cost level, the 2-D
// Pareto front; complexity grows by the number of distinct reachable cost
// levels (<= total buffer count), as in [9].
//
// The cost of a buffer type defaults to 1 (count), but can be set to area or
// leakage units via buffer_costs.
#pragma once

#include <optional>
#include <vector>

#include "core/van_ginneken.hpp"

namespace vabi::core {

struct cost_bounded_options {
  det_options base;
  /// Cost per library type; empty = every buffer costs 1.
  std::vector<double> buffer_costs;
  /// Candidates with cost beyond this bound are pruned outright
  /// (0 = unbounded). Tightening it speeds the run when a target is known to
  /// be achievable cheaply.
  double max_cost = 0.0;
};

/// One point of the root cost/RAT trade-off curve.
struct cost_rat_point {
  double cost = 0.0;
  double root_rat_ps = 0.0;
  timing::buffer_assignment assignment;
  timing::wire_assignment wires;
};

struct cost_bounded_result {
  /// Strictly increasing in cost, strictly increasing in RAT: the Pareto
  /// frontier of achievable (cost, root RAT) pairs.
  std::vector<cost_rat_point> frontier;
  dp_stats stats;

  /// The cheapest frontier point meeting `target_rat_ps` (nullopt if even
  /// the RAT-optimal solution misses the target).
  std::optional<cost_rat_point> cheapest_meeting(double target_rat_ps) const;
};

/// Computes the full cost/RAT frontier at the root. Legacy shim: throws
/// std::invalid_argument on bad options; new code should call
/// solve_cost_bounded_insertion.
cost_bounded_result run_cost_bounded_insertion(
    const tree::routing_tree& tree, const cost_bounded_options& options);

/// Typed entry point: validates the tree and options and maps every failure
/// into the solve_code taxonomy instead of throwing.
solve_outcome<cost_bounded_result> solve_cost_bounded_insertion(
    const tree::routing_tree& tree, const cost_bounded_options& options);

}  // namespace vabi::core
