#include "core/statistical_dp.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <optional>
#include <limits>
#include <stdexcept>
#include <vector>

#include "core/dp_engine.hpp"
#include "stats/normal.hpp"

namespace vabi::core {

const char* to_string(pruning_kind kind) {
  switch (kind) {
    case pruning_kind::two_param:
      return "2P";
    case pruning_kind::four_param:
      return "4P";
    case pruning_kind::corner:
      return "1P";
  }
  return "?";
}

namespace detail {

void validate_stat_options(const stat_options& options) {
  if (options.library.empty()) {
    throw std::invalid_argument(
        "run_statistical_insertion: empty buffer library");
  }
  options.wire.validate();
  if (options.root_percentile <= 0.0 || options.root_percentile >= 1.0) {
    throw std::invalid_argument(
        "run_statistical_insertion: root_percentile must be in (0, 1)");
  }
  if (options.selection_percentile <= 0.0 ||
      options.selection_percentile >= 1.0) {
    throw std::invalid_argument(
        "run_statistical_insertion: selection_percentile must be in (0, 1)");
  }
  if (options.term_prune_rel_eps < 0.0 || options.term_prune_rel_eps >= 1.0) {
    throw std::invalid_argument(
        "run_statistical_insertion: term_prune_rel_eps must be in [0, 1)");
  }
}

timing::wire_menu make_wire_menu(const stat_options& options) {
  return options.wire_width_multipliers.size() <= 1
             ? timing::wire_menu{options.wire}
             : timing::wire_menu{options.wire, options.wire_width_multipliers};
}

}  // namespace detail

stat_result run_statistical_insertion(const tree::routing_tree& tree,
                                      layout::process_model& model,
                                      const stat_options& options) {
  detail::validate_stat_options(options);
  const timing::wire_menu menu = detail::make_wire_menu(options);

  // Lazy characterization through the model, one call per (node, type), in
  // postorder -- the source-id allocation order device_cache reproduces.
  detail::device_fn devices = [&model, &options, &tree](
                                  tree::node_id id, timing::buffer_index b) {
    const auto& type = options.library[b];
    return model.characterize(tree.node(id).location, type.cap_pf,
                              type.delay_ps);
  };

  // One arena set per thread, reused across runs: batch_solver fans nets
  // across its pool threads, and each thread's scratch pool / decision slabs
  // / recycled lists reach steady state after the first net (zero
  // allocations per node from then on). reset()/begin_run() invalidate the
  // previous run's storage, which is sound because results are materialized
  // (own_terms, extract_design) before run_statistical_insertion returns.
  static thread_local decision_arena t_arena;
  static thread_local detail::worker_arena t_pool;
  t_arena.reset();
  t_pool.begin_run();

  dp_stats dps;
  std::size_t published = 0;
  detail::dp_worker worker{tree, model.space(), options,   menu,
                           std::move(devices), t_arena,   t_pool,
                           dps,  published,    {},        nullptr};
  worker.t_start = detail::dp_clock::now();

  std::vector<detail::node_list> lists(tree.num_nodes());
  for (tree::node_id id : tree.postorder()) {
    if (dps.aborted) break;
    detail::node_list here = worker.solve_node(id, lists);
    if (dps.aborted) break;
    lists[id] = std::move(here);
  }

  stat_result result;
  if (!dps.aborted) {
    result = worker.select_root(lists[tree.root()]);
  } else {
    result.assignment = timing::buffer_assignment(tree.num_nodes());
  }
  dps.wall_seconds =
      std::chrono::duration<double>(detail::dp_clock::now() - worker.t_start)
          .count();
  result.stats = dps;
  return result;
}

}  // namespace vabi::core
