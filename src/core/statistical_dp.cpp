#include "core/statistical_dp.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <limits>
#include <stdexcept>
#include <vector>

#include "stats/normal.hpp"

namespace vabi::core {

const char* to_string(pruning_kind kind) {
  switch (kind) {
    case pruning_kind::two_param:
      return "2P";
    case pruning_kind::four_param:
      return "4P";
    case pruning_kind::corner:
      return "1P";
  }
  return "?";
}

namespace {

using cand_list = std::vector<stat_candidate>;
using clock = std::chrono::steady_clock;

struct engine {
  const tree::routing_tree& tree;
  layout::process_model& model;
  const stat_options& options;
  const timing::wire_menu menu;
  decision_arena arena;
  dp_stats dps;
  clock::time_point t_start;

  const stats::variation_space& space() const { return model.space(); }

  // -- resource caps ------------------------------------------------------

  bool over_budget(std::size_t list_size) {
    if (options.max_list_size != 0 && list_size > options.max_list_size) {
      dps.aborted = true;
      dps.abort_reason = "candidate list exceeded max_list_size";
      return true;
    }
    if (options.max_candidates != 0 &&
        dps.candidates_created > options.max_candidates) {
      dps.aborted = true;
      dps.abort_reason = "total candidates exceeded max_candidates";
      return true;
    }
    if (options.max_wall_seconds > 0.0) {
      const double elapsed =
          std::chrono::duration<double>(clock::now() - t_start).count();
      if (elapsed > options.max_wall_seconds) {
        dps.aborted = true;
        dps.abort_reason = "wall clock exceeded max_wall_seconds";
        return true;
      }
    }
    return false;
  }

  // -- key operations ------------------------------------------------------

  /// eqs. 33-34: wires are deterministic, so the nominal shifts and the RAT
  /// coefficients pick up -r*l*alpha_i via the load form. With a multi-width
  /// menu each candidate fans out into one variant per width (recorded as a
  /// wire decision); the caller's prune collapses the dominated ones.
  void propagate_wire(cand_list& list, tree::node_id child, double um) {
    if (um == 0.0) return;
    if (!menu.sizing_enabled()) {
      const double rl = menu[0].res_per_um * um;
      const double cl = menu[0].cap_per_um * um;
      const double half_rcl2 = 0.5 * rl * cl;
      for (auto& c : list) {
        c.rat -= rl * c.load;   // -r*l*L_n (both nominal and coefficients)
        c.rat -= half_rcl2;     // -r*c*l^2/2
        c.load += cl;
      }
      return;
    }
    cand_list out;
    out.reserve(list.size() * menu.size());
    for (const auto& c : list) {
      for (timing::width_index w = 0; w < menu.size(); ++w) {
        const double rl = menu[w].res_per_um * um;
        const double cl = menu[w].cap_per_um * um;
        stat_candidate v;
        v.rat = c.rat;
        v.rat -= rl * c.load;
        v.rat -= 0.5 * rl * cl;
        v.load = c.load;
        v.load += cl;
        v.why = arena.wire_sized(child, w, c.why);
        out.push_back(std::move(v));
        ++dps.candidates_created;
      }
    }
    list = std::move(out);
  }

  /// eqs. 35-36 for one candidate and one characterized device.
  stat_candidate buffered(const stat_candidate& c, tree::node_id node,
                          timing::buffer_index b,
                          const layout::device_variation& dv) {
    stat_candidate out;
    out.rat = c.rat;
    out.rat -= dv.delay;                             // -T_b (canonical form)
    out.rat -= options.library[b].res_ohm * c.load;  // -R_b * L_n
    out.load = dv.cap;                               // C_b
    out.why = arena.buffered(node, b, c.why);
    ++dps.candidates_created;
    return out;
  }

  /// eqs. 37-38 for one pair.
  stat_candidate merged_pair(const stat_candidate& a, const stat_candidate& b) {
    stat_candidate out;
    out.load = a.load + b.load;
    out.rat = stats::statistical_min(a.rat, b.rat, space());
    out.why = arena.merged(a.why, b.why);
    ++dps.candidates_created;
    ++dps.merge_pairs;
    return out;
  }

  // -- pruning / sorting dispatch ------------------------------------------

  void prune(cand_list& list) {
    switch (options.rule) {
      case pruning_kind::two_param:
        prune_two_param(options.two_param, list, space(), dps);
        break;
      case pruning_kind::four_param:
        // Bound the quadratic prune so resource caps can fire between nodes
        // instead of being starved by one multi-minute pairwise pass.
        prune_four_param(options.four_param, list, space(), dps,
                         options.max_list_size == 0
                             ? 0
                             : 50 * options.max_list_size);
        break;
      case pruning_kind::corner:
        prune_corner(options.corner, list, space(), dps);
        break;
    }
  }

  bool ordered_rule() const { return options.rule != pruning_kind::four_param; }

  /// Linear merge on the rule's scalar RAT key (mean for 2P; the corner
  /// projection would require re-deriving percentiles per pair, and the mean
  /// is the consistent total-order key for both ordered rules).
  cand_list merge_ordered(const cand_list& a, const cand_list& b) {
    cand_list out;
    out.reserve(a.size() + b.size());
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < a.size() && j < b.size()) {
      out.push_back(merged_pair(a[i], b[j]));
      const double ta = a[i].rat.mean();
      const double tb = b[j].rat.mean();
      if (ta < tb) {
        ++i;
      } else if (ta > tb) {
        ++j;
      } else {
        ++i;
        ++j;
      }
    }
    return out;
  }

  /// Full cross product -- the price of a partial order (Section 2.2).
  cand_list merge_cross(const cand_list& a, const cand_list& b) {
    cand_list out;
    // Reserving n*m up front can be gigabytes on exploded lists; grow
    // geometrically instead and let the caps stop the blow-up.
    out.reserve(std::min(a.size() * b.size(),
                         a.size() + b.size() + 1024));
    for (const auto& ca : a) {
      for (const auto& cb : b) {
        out.push_back(merged_pair(ca, cb));
      }
      if (over_budget(out.size())) break;
    }
    return out;
  }

  cand_list merge_lists(const cand_list& a, const cand_list& b) {
    return ordered_rule() ? merge_ordered(a, b) : merge_cross(a, b);
  }

  // -- per-node processing ---------------------------------------------------

  /// Scalar figure of merit the active rule uses to pick the single buffered
  /// candidate per type (all buffered versions share the load form C_b, so
  /// only the RAT distinguishes them; keeping one per type is the classic
  /// van Ginneken convention and what keeps every rule's lists from
  /// multiplying at each position).
  double rat_selection_key(const stats::linear_form& rat) const {
    if (options.selection_percentile != 0.5) {
      return stats::percentile(rat, space(), options.selection_percentile);
    }
    switch (options.rule) {
      case pruning_kind::two_param:
        return rat.mean();  // Lemma 4: P-ordering == mean ordering
      case pruning_kind::four_param:
        // The baseline's conservative corner pi_{beta_l} (eq. 3).
        return stats::percentile(rat, space(), options.four_param.beta_lo);
      case pruning_kind::corner:
        return stats::percentile(rat, space(),
                                 1.0 - options.corner.percentile);
    }
    return rat.mean();
  }

  void add_buffered_candidates(cand_list& list, tree::node_id id) {
    const std::size_t base = list.size();
    if (base == 0) return;
    const auto& loc = tree.node(id).location;
    for (timing::buffer_index b = 0; b < options.library.size(); ++b) {
      const auto& type = options.library[b];
      // One physical device per (node, type): every candidate buffered here
      // shares the same characterized forms (and random source).
      const layout::device_variation dv =
          model.characterize(loc, type.cap_pf, type.delay_ps);
      if (options.rule == pruning_kind::two_param &&
          options.two_param.is_mean_rule() &&
          options.selection_percentile == 0.5) {
        // Mean-rule fast path: the selection key is linear in means, so the
        // winner is found without materializing any candidate form.
        double best_mean = -std::numeric_limits<double>::infinity();
        std::size_t best_k = base;
        for (std::size_t k = 0; k < base; ++k) {
          const double mean = list[k].rat.mean() - dv.delay.mean() -
                              type.res_ohm * list[k].load.mean();
          if (mean > best_mean) {
            best_mean = mean;
            best_k = k;
          }
        }
        list.push_back(buffered(list[best_k], id, b, dv));
      } else {
        // General rules: the key needs each resulting form's sigma, so
        // materialize candidates one at a time and keep the best.
        std::optional<stat_candidate> best;
        double best_key = -std::numeric_limits<double>::infinity();
        for (std::size_t k = 0; k < base; ++k) {
          stat_candidate cand = buffered(list[k], id, b, dv);
          const double key = rat_selection_key(cand.rat);
          if (key > best_key) {
            best_key = key;
            best = std::move(cand);
          }
        }
        if (best.has_value()) list.push_back(std::move(*best));
      }
    }
  }

  stat_result run() {
    t_start = clock::now();
    std::vector<cand_list> lists(tree.num_nodes());

    for (tree::node_id id : tree.postorder()) {
      if (dps.aborted) break;
      const auto& n = tree.node(id);
      cand_list here;
      if (n.is_sink()) {
        here.push_back({stats::linear_form{n.sink_cap_pf},
                        stats::linear_form{n.sink_rat_ps}, arena.leaf()});
        ++dps.candidates_created;
      } else {
        for (tree::node_id child : n.children) {
          cand_list up = std::move(lists[child]);
          lists[child].clear();
          lists[child].shrink_to_fit();
          propagate_wire(up, child, tree.node(child).parent_wire_um);
          prune(up);
          if (here.empty()) {
            here = std::move(up);
          } else {
            here = merge_lists(here, up);
            // Caps must fire *before* the (possibly quadratic) prune touches
            // an exploded list -- this is what turns the 4P blow-up into the
            // paper's clean "exceeded memory/time limit" failure.
            if (over_budget(here.size())) break;
            prune(here);
          }
          if (over_budget(here.size())) break;
        }
      }
      if (dps.aborted) break;
      if (!n.is_source()) {
        add_buffered_candidates(here, id);
        if (over_budget(here.size())) break;
        prune(here);
      }
      dps.peak_list_size = std::max(dps.peak_list_size, here.size());
      if (over_budget(here.size())) break;
      lists[id] = std::move(here);
    }

    stat_result result;
    if (!dps.aborted) {
      const cand_list& root_list = lists[tree.root()];
      if (root_list.empty()) {
        throw std::logic_error("run_statistical_insertion: empty root list");
      }
      const stat_candidate* best = nullptr;
      stats::linear_form best_rat;
      double best_key = -std::numeric_limits<double>::infinity();
      for (const auto& c : root_list) {
        stats::linear_form root_rat = c.rat;
        root_rat -= options.driver_res_ohm * c.load;
        const double key =
            stats::percentile(root_rat, space(), options.root_percentile);
        if (key > best_key) {
          best_key = key;
          best = &c;
          best_rat = std::move(root_rat);
        }
      }
      result.root_rat = std::move(best_rat);
      design_choice design = extract_design(best->why, tree.num_nodes());
      result.assignment = std::move(design.buffers);
      result.wires = std::move(design.wires);
      result.num_buffers = result.assignment.count();
    } else {
      result.assignment = timing::buffer_assignment(tree.num_nodes());
    }
    dps.wall_seconds =
        std::chrono::duration<double>(clock::now() - t_start).count();
    result.stats = dps;
    return result;
  }
};

}  // namespace

stat_result run_statistical_insertion(const tree::routing_tree& tree,
                                      layout::process_model& model,
                                      const stat_options& options) {
  if (options.library.empty()) {
    throw std::invalid_argument(
        "run_statistical_insertion: empty buffer library");
  }
  options.wire.validate();
  if (options.root_percentile <= 0.0 || options.root_percentile >= 1.0) {
    throw std::invalid_argument(
        "run_statistical_insertion: root_percentile must be in (0, 1)");
  }
  if (options.selection_percentile <= 0.0 ||
      options.selection_percentile >= 1.0) {
    throw std::invalid_argument(
        "run_statistical_insertion: selection_percentile must be in (0, 1)");
  }
  const timing::wire_menu menu =
      options.wire_width_multipliers.size() <= 1
          ? timing::wire_menu{options.wire}
          : timing::wire_menu{options.wire, options.wire_width_multipliers};
  engine e{tree, model, options, menu, {}, {}, {}};
  return e.run();
}

}  // namespace vabi::core
