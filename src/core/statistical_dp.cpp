#include "core/statistical_dp.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <new>
#include <optional>
#include <stdexcept>
#include <vector>

#include "core/dp_engine.hpp"
#include "stats/normal.hpp"
#include "testing/fault_injection.hpp"

namespace vabi::core {

const char* to_string(pruning_kind kind) {
  switch (kind) {
    case pruning_kind::two_param:
      return "2P";
    case pruning_kind::four_param:
      return "4P";
    case pruning_kind::corner:
      return "1P";
  }
  return "?";
}

const char* to_string(degrade_policy policy) {
  switch (policy) {
    case degrade_policy::none:
      return "none";
    case degrade_policy::retry_deterministic:
      return "retry_deterministic";
    case degrade_policy::best_partial:
      return "best_partial";
  }
  return "?";
}

const char* to_string(solve_path path) {
  switch (path) {
    case solve_path::primary:
      return "primary";
    case solve_path::corner_fallback:
      return "corner_fallback";
    case solve_path::unbuffered_fallback:
      return "unbuffered_fallback";
  }
  return "?";
}

namespace detail {

void validate_stat_options(const stat_options& options) {
  if (options.library.empty()) {
    throw std::invalid_argument(
        "run_statistical_insertion: empty buffer library");
  }
  options.wire.validate();
  if (options.root_percentile <= 0.0 || options.root_percentile >= 1.0) {
    throw std::invalid_argument(
        "run_statistical_insertion: root_percentile must be in (0, 1)");
  }
  if (options.selection_percentile <= 0.0 ||
      options.selection_percentile >= 1.0) {
    throw std::invalid_argument(
        "run_statistical_insertion: selection_percentile must be in (0, 1)");
  }
  if (options.term_prune_rel_eps < 0.0 || options.term_prune_rel_eps >= 1.0) {
    throw std::invalid_argument(
        "run_statistical_insertion: term_prune_rel_eps must be in [0, 1)");
  }
}

std::optional<solve_error> check_stat_options(const stat_options& options) {
  const auto bad = [](std::string detail) {
    return solve_error{solve_code::invalid_options, tree::invalid_node,
                       std::move(detail)};
  };
  const auto open01 = [](double p) { return p > 0.0 && p < 1.0; };

  if (options.library.empty()) return bad("library: empty buffer library");
  try {
    options.wire.validate();
  } catch (const std::exception& e) {
    return bad(std::string("wire: ") + e.what());
  }
  if (!std::isfinite(options.driver_res_ohm) || options.driver_res_ohm < 0.0) {
    return bad("driver_res_ohm: must be finite and >= 0");
  }
  if (options.wire_width_multipliers.empty()) {
    return bad("wire_width_multipliers: must not be empty");
  }
  for (const double m : options.wire_width_multipliers) {
    if (!std::isfinite(m) || m <= 0.0) {
      return bad("wire_width_multipliers: every multiplier must be > 0");
    }
  }
  if (!open01(options.root_percentile)) {
    return bad("root_percentile: must be in (0, 1)");
  }
  if (!open01(options.selection_percentile)) {
    return bad("selection_percentile: must be in (0, 1)");
  }
  if (!(options.term_prune_rel_eps >= 0.0 &&
        options.term_prune_rel_eps < 1.0)) {
    return bad("term_prune_rel_eps: must be in [0, 1)");
  }
  switch (options.rule) {
    case pruning_kind::two_param: {
      const auto& r = options.two_param;
      if (!(r.p_load >= 0.5 && r.p_load <= 1.0)) {
        return bad("two_param.p_load: must be in [0.5, 1]");
      }
      if (!(r.p_rat >= 0.5 && r.p_rat <= 1.0)) {
        return bad("two_param.p_rat: must be in [0.5, 1]");
      }
      if (r.sweep_window == 0) {
        return bad("two_param.sweep_window: must be >= 1");
      }
      break;
    }
    case pruning_kind::four_param: {
      const auto& r = options.four_param;
      if (!open01(r.alpha_lo)) return bad("four_param.alpha_lo: must be in (0, 1)");
      if (!open01(r.alpha_hi)) return bad("four_param.alpha_hi: must be in (0, 1)");
      if (!open01(r.beta_lo)) return bad("four_param.beta_lo: must be in (0, 1)");
      if (!open01(r.beta_hi)) return bad("four_param.beta_hi: must be in (0, 1)");
      break;
    }
    case pruning_kind::corner:
      if (!open01(options.corner.percentile)) {
        return bad("corner.percentile: must be in (0, 1)");
      }
      break;
  }
  if (!(options.max_wall_seconds >= 0.0)) {
    return bad("max_wall_seconds: must be >= 0");
  }
  return std::nullopt;
}

solve_error error_from_stats(const dp_stats& stats) {
  solve_error err;
  err.code = stats.abort_code == solve_code::ok ? solve_code::internal
                                                : stats.abort_code;
  err.node = stats.abort_node;
  err.detail = stats.abort_reason;
  return err;
}

timing::wire_menu make_wire_menu(const stat_options& options) {
  return options.wire_width_multipliers.size() <= 1
             ? timing::wire_menu{options.wire}
             : timing::wire_menu{options.wire, options.wire_width_multipliers};
}

stat_result run_statistical_impl(const tree::routing_tree& tree,
                                 layout::process_model& model,
                                 const stat_options& options,
                                 const cancel_token* cancel) {
  const timing::wire_menu menu = make_wire_menu(options);

  // Lazy characterization through the model, one call per (node, type), in
  // postorder -- the source-id allocation order device_cache reproduces.
  device_fn devices = [&model, &options, &tree](tree::node_id id,
                                                timing::buffer_index b) {
    const auto& type = options.library[b];
    layout::device_variation dv = model.characterize(
        tree.node(id).location, type.cap_pf, type.delay_ps);
    if (testing::should_fire(testing::fault_point::device_nan, id)) {
      dv.delay += std::numeric_limits<double>::quiet_NaN();
    }
    return dv;
  };

  // One arena set per thread, reused across runs: batch_solver fans nets
  // across its pool threads, and each thread's scratch pool / decision slabs
  // / recycled lists reach steady state after the first net (zero
  // allocations per node from then on). reset()/begin_run() invalidate the
  // previous run's storage, which is sound because results are materialized
  // (own_terms, extract_design) before run_statistical_impl returns.
  static thread_local decision_arena t_arena;
  static thread_local worker_arena t_pool;
  t_arena.reset();
  t_pool.begin_run();

  dp_stats dps;
  std::size_t published = 0;
  const dp_clock::time_point t_start = dp_clock::now();
  dp_worker worker{tree,
                   model.space(),
                   options,
                   menu,
                   std::move(devices),
                   t_arena,
                   t_pool,
                   dps,
                   resource_guard{options, dps, published, nullptr, cancel,
                                  t_start}};

  // Li-Shi per-type frontier (li_shi.hpp): engages only in the total-order
  // regime the worker's mean fast path already recognizes; other rules /
  // selection percentiles keep li_shi null and take the scan path.
  buffer_frontier frontier;
  li_shi_state li_state;
  if (li_shi_enabled(options.li_shi, options.library.size()) &&
      options.rule == pruning_kind::two_param &&
      options.two_param.is_mean_rule() &&
      options.selection_percentile == 0.5) {
    frontier = buffer_frontier{options.library};
    li_state.frontier = &frontier;
    worker.li_shi = &li_state;
  }

  std::vector<node_list> lists(tree.num_nodes());
  for (tree::node_id id : tree.postorder()) {
    if (dps.aborted) break;
    node_list here = worker.solve_node(id, lists);
    if (dps.aborted) break;
    lists[id] = std::move(here);
  }

  stat_result result;
  if (!dps.aborted) {
    result = worker.select_root(lists[tree.root()]);
  } else {
    result.assignment = timing::buffer_assignment(tree.num_nodes());
  }
  dps.wall_seconds =
      std::chrono::duration<double>(dp_clock::now() - t_start).count();
  result.stats = dps;
  return result;
}

stat_result evaluate_unbuffered(const tree::routing_tree& tree,
                                layout::process_model& model,
                                const stat_options& options) {
  const stats::variation_space& space = model.space();
  const timing::wire_model wire = make_wire_menu(options)[0];

  // Value-semantics postorder pass over the statistical wire and merge
  // operations only (eqs. 33-34, 37-38): no candidates, no arenas, no caps.
  std::vector<stats::linear_form> loads(tree.num_nodes());
  std::vector<stats::linear_form> rats(tree.num_nodes());
  for (tree::node_id id : tree.postorder()) {
    const auto& n = tree.node(id);
    if (n.is_sink()) {
      loads[id] = stats::linear_form{n.sink_cap_pf};
      rats[id] = stats::linear_form{n.sink_rat_ps};
      continue;
    }
    bool first = true;
    for (tree::node_id child : n.children) {
      stats::linear_form load = std::move(loads[child]);
      stats::linear_form rat = std::move(rats[child]);
      const double um = tree.node(child).parent_wire_um;
      if (um != 0.0) {
        const double rl = wire.res_per_um * um;
        const double cl = wire.cap_per_um * um;
        rat -= rl * load;
        rat -= 0.5 * rl * cl;
        load += cl;
      }
      if (first) {
        loads[id] = std::move(load);
        rats[id] = std::move(rat);
        first = false;
      } else {
        loads[id] += load;
        rats[id] = stats::statistical_min(rats[id], rat, space);
      }
    }
  }

  stat_result result;
  stats::linear_form root_rat = std::move(rats[tree.root()]);
  root_rat -= options.driver_res_ohm * loads[tree.root()];
  result.root_rat = std::move(root_rat);
  result.assignment = timing::buffer_assignment(tree.num_nodes());
  result.num_buffers = 0;
  return result;
}

solve_outcome<stat_result> degrade_or_error(const tree::routing_tree& tree,
                                            layout::process_model& model,
                                            const stat_options& options,
                                            const cancel_token* cancel,
                                            solve_error&& err) {
  const bool degradable = err.code == solve_code::candidate_cap ||
                          err.code == solve_code::memory_cap ||
                          err.code == solve_code::deadline_exceeded;
  if (options.degrade == degrade_policy::none || !degradable) {
    return std::move(err);
  }

  // Retry with the deterministic-complexity corner rule on the serial engine
  // (deterministic and thread-invariant by construction). The retry gets a
  // fresh wall budget; re-characterization registers fresh variation-source
  // ids in `model`, with values identical to the first attempt's.
  stat_options retry = options;
  retry.rule = pruning_kind::corner;
  retry.degrade = degrade_policy::none;
  try {
    stat_result r = run_statistical_impl(tree, model, retry, cancel);
    if (!r.stats.aborted) {
      r.path = solve_path::corner_fallback;
      return r;
    }
  } catch (const std::exception&) {
    // The fallback failed too; fall through to best_partial or the original
    // error.
  }

  if (options.degrade == degrade_policy::best_partial) {
    stat_result r = evaluate_unbuffered(tree, model, options);
    r.path = solve_path::unbuffered_fallback;
    return r;
  }
  return std::move(err);
}

}  // namespace detail

stat_result run_statistical_insertion(const tree::routing_tree& tree,
                                      layout::process_model& model,
                                      const stat_options& options) {
  detail::validate_stat_options(options);
  return detail::run_statistical_impl(tree, model, options, nullptr);
}

solve_outcome<stat_result> solve_statistical_insertion(
    const tree::routing_tree& tree, layout::process_model& model,
    const stat_options& options, const cancel_token* cancel) {
  if (auto bad = detail::check_stat_options(options)) return std::move(*bad);
  try {
    tree.validate();
  } catch (const std::exception& e) {
    return solve_error{solve_code::invalid_tree, tree::invalid_node, e.what()};
  }

  solve_error err;
  try {
    stat_result r = detail::run_statistical_impl(tree, model, options, cancel);
    if (!r.stats.aborted) return r;
    err = detail::error_from_stats(r.stats);
  } catch (const std::bad_alloc&) {
    err = solve_error{solve_code::memory_cap, tree::invalid_node,
                      "term storage allocation failed"};
  } catch (const std::exception& e) {
    err = solve_error{solve_code::internal, tree::invalid_node, e.what()};
  }
  return detail::degrade_or_error(tree, model, options, cancel,
                                  std::move(err));
}

}  // namespace vabi::core
