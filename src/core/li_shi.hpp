// Li-Shi O(bn^2) candidate organization for multi-type buffer libraries
// (Li & Shi, "An O(bn^2) Time Algorithm for Optimal Buffer Insertion with b
// Buffer Types", arXiv:0710.4691; PAPERS.md entry 1).
//
// Van Ginneken-style DP pays O(b * |list|) at every buffer position: each of
// the b library types scans the whole candidate list for the candidate that
// maximizes the post-buffer RAT  q_k - T_b - R_b * L_k.  With per-position
// lists of size Theta(b * n) that is the O(b^2 n^2) blow-up which caps
// realistic libraries at a handful of repeaters.
//
// Li-Shi remove the b^2 factor by organizing candidates per buffer type and
// probing only the per-type best. This module implements that organization
// for the total-order regimes of this repo (deterministic rule; 2P mean
// rule, whose P-order equals mean order by Lemma 4 of the source paper):
//
//   * the candidate list is kept sorted by (load asc, rat asc) -- exactly
//     the post-prune invariant of prune_deterministic / prune_two_param, so
//     the per-type sorted lists are interleaved views of one totally
//     ordered list rather than separate containers;
//   * buffer types are pre-sorted once per run by driving resistance
//     descending (the per-type frontier order);
//   * the per-type best candidates are found together by monotone
//     divide-and-conquer over that type order.
//
// The divide-and-conquer rests on a decreasing-differences argument: for
// loads L_0 < L_1 < ... and resistances R_i >= R_j, the *leftmost* argmax of
// q_k - T_b - R_b * L_k is non-decreasing as R decreases (exchange argument;
// equal-R types differ by the constant T_b only and share the argmax). Each
// row is still evaluated with the bitwise-identical scan expression and the
// seed engines' strictly-greater / leftmost tie rule, so the selected
// candidate -- and therefore the emitted buffered candidate -- matches the
// O(b * |list|) reference scan exactly. (The monotonicity proof is in real
// arithmetic; an adversarial sub-ulp rounding tie could in principle select
// a same-valued different candidate, which the differential suite in
// tests/core/li_shi_test.cpp watches across engines, library sizes and
// thread counts.)
//
// Cost per position: O(|list| + b log b) instead of O(b * |list|), which is
// the paper's b-factor removal -- O(bn^2) overall for both the deterministic
// engine and the 2P statistical engine.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "timing/buffer_library.hpp"

namespace vabi::stats::kernels {
struct kernel_table;
}

namespace vabi::core {

/// Whether an engine uses the Li-Shi per-type frontier.
enum class li_shi_mode : std::uint8_t {
  automatic,  ///< on when the library has more than 2 types (see below)
  always,     ///< frontier whenever the active rule's order is total
  never,      ///< seed scan path (the O(b^2 n^2) reference)
};

const char* to_string(li_shi_mode mode);

/// automatic keeps the historical scan for b <= 2: tiny libraries gain
/// nothing from the frontier, and the seed-era golden hashes are pinned on
/// that path byte for byte.
bool li_shi_enabled(li_shi_mode mode, std::size_t num_types);

/// "No candidate selected" sentinel of buffer_frontier::best_per_type (every
/// key in the probed range was NaN or -inf -- the degenerate case the seed
/// scans also fail to select in).
inline constexpr std::size_t li_shi_npos =
    std::numeric_limits<std::size_t>::max();

/// Buffer types sorted by output resistance descending (ties keep library
/// order, so the result is deterministic for any library).
std::vector<timing::buffer_index> type_order_by_resistance(
    const timing::buffer_library& library);

/// The per-type frontier: the type order plus the monotone divide-and-conquer
/// that locates every type's best candidate. Built once per run (O(b log b)),
/// read-only afterwards -- safe to share across the parallel engine's
/// workers.
class buffer_frontier {
 public:
  buffer_frontier() = default;
  explicit buffer_frontier(const timing::buffer_library& library)
      : order_(type_order_by_resistance(library)) {}

  std::size_t num_types() const { return order_.size(); }
  const std::vector<timing::buffer_index>& type_order() const {
    return order_;
  }

  /// Fills best[b] with the index of the candidate maximizing
  /// eval(b, k) over k in [0, num_cands), for every type b, evaluating each
  /// probed (type, candidate) pair with the caller's exact scan expression
  /// and the leftmost / strictly-greater tie rule. best[b] is li_shi_npos
  /// when no key compares greater than -infinity (all NaN / -inf).
  ///
  /// Precondition: candidates are sorted by strictly increasing load (the
  /// post-prune invariant of the total-order rules).
  template <typename RowEval>
  void best_per_type(std::size_t num_cands, RowEval&& eval,
                     std::vector<std::size_t>& best) const {
    best.assign(order_.size(), li_shi_npos);
    if (num_cands == 0 || order_.empty()) return;
    solve_rows(0, order_.size(), 0, num_cands, eval, best);
  }

  /// Packed-key form used by the engines' hot paths: the key of (type b,
  /// candidate k) is  rats[k] - delays[b] - res[b] * loads[k],  with all four
  /// arrays contiguous (loads/rats have num_cands entries; delays/res are
  /// indexed by the *original* type index). Each row scan runs through the
  /// SIMD-dispatched argmax_buffered_row kernel (stats/kernels.hpp), whose
  /// per-lane evaluation and (max value, min index) reduction reproduce the
  /// lambda form's leftmost / strictly-greater rule bit for bit.
  void best_per_type(std::size_t num_cands, const double* loads,
                     const double* rats, const double* delays,
                     const double* res, std::vector<std::size_t>& best) const;

 private:
  void solve_rows_packed(std::size_t rlo, std::size_t rhi, std::size_t klo,
                         std::size_t khi, const double* loads,
                         const double* rats, const double* delays,
                         const double* res,
                         const stats::kernels::kernel_table& kt,
                         std::vector<std::size_t>& best) const;

  /// Rows are positions in order_ (resistance descending); columns are
  /// candidate indices. Solves rows [rlo, rhi) knowing every leftmost argmax
  /// lies in [klo, khi).
  template <typename RowEval>
  void solve_rows(std::size_t rlo, std::size_t rhi, std::size_t klo,
                  std::size_t khi, RowEval& eval,
                  std::vector<std::size_t>& best) const {
    if (rlo >= rhi) return;
    const std::size_t rmid = rlo + (rhi - rlo) / 2;
    const timing::buffer_index b = order_[rmid];
    double best_val = -std::numeric_limits<double>::infinity();
    std::size_t best_k = li_shi_npos;
    for (std::size_t k = klo; k < khi; ++k) {
      const double v = eval(b, k);
      if (v > best_val) {
        best_val = v;
        best_k = k;
      }
    }
    best[b] = best_k;
    if (best_k == li_shi_npos) {
      // Degenerate row (a NaN-poisoned device makes the whole row NaN): no
      // ordering information; both halves keep the parent's full range.
      // NaN-poisoned *candidates* poison whole columns instead, which every
      // row skips identically, so range restriction stays sound for them.
      solve_rows(rlo, rmid, klo, khi, eval, best);
      solve_rows(rmid + 1, rhi, klo, khi, eval, best);
      return;
    }
    solve_rows(rlo, rmid, klo, best_k + 1, eval, best);
    solve_rows(rmid + 1, rhi, best_k, khi, eval, best);
  }

  std::vector<timing::buffer_index> order_;
};

}  // namespace vabi::core
