#include "core/slab_cache.hpp"

#include <chrono>
#include <cstring>
#include <limits>
#include <new>
#include <stdexcept>
#include <utility>

#include "core/journal.hpp"
#include "core/slab_cache_impl.hpp"
#include "testing/fault_injection.hpp"

namespace vabi::core {

std::uint64_t form_hash(const stats::linear_form& f) {
  std::uint64_t h = fnv1a_f64(f.nominal(), fnv1a_seed);
  for (const auto& t : f.terms()) {
    h = fnv1a_u64(t.id, h);
    h = fnv1a_f64(t.coeff, h);
  }
  return h;
}

namespace detail {

node_list clone_node_list(const node_list& src) {
  node_list out;
  // Shallow candidate copy: borrowed forms still point into src's slab,
  // owned/inline forms and why/moment caches copy through.
  out.cands = src.cands;
  // The sealed-prefix size: exactly the `total` seal() computed, because
  // after relocation every non-owned form of a sealed list borrows this slab
  // and every borrowed-but-small form went inline.
  std::size_t used = 0;
  for (const auto& c : src.cands) {
    if (!c.load.owns_terms() &&
        c.load.num_terms() > stats::linear_form::inline_capacity) {
      used += c.load.num_terms();
    }
    if (!c.rat.owns_terms() &&
        c.rat.num_terms() > stats::linear_form::inline_capacity) {
      used += c.rat.num_terms();
    }
  }
  if (used == 0) return out;
  const stats::lf_term* old_base = src.slab.data();
  stats::lf_term* new_base = out.slab.ensure(used);
  std::memcpy(new_base, old_base, used * sizeof(stats::lf_term));
  for (auto& c : out.cands) {
    c.load.rebase_terms(old_base, used, new_base);
    c.rat.rebase_terms(old_base, used, new_base);
  }
  return out;
}

std::uint64_t fingerprint_stat_options(const stat_options& o) {
  std::uint64_t h = fnv1a_seed;
  h = fnv1a_f64(o.wire.res_per_um, h);
  h = fnv1a_f64(o.wire.cap_per_um, h);
  h = fnv1a_u64(o.library.size(), h);
  for (const auto& b : o.library.types()) {
    h = fnv1a_str(b.name, h);
    h = fnv1a_f64(b.cap_pf, h);
    h = fnv1a_f64(b.delay_ps, h);
    h = fnv1a_f64(b.res_ohm, h);
  }
  h = fnv1a_f64(o.driver_res_ohm, h);
  h = fnv1a_u64(o.wire_width_multipliers.size(), h);
  for (const double m : o.wire_width_multipliers) h = fnv1a_f64(m, h);
  h = fnv1a_u64(static_cast<std::uint64_t>(o.rule), h);
  h = fnv1a_f64(o.two_param.p_load, h);
  h = fnv1a_f64(o.two_param.p_rat, h);
  h = fnv1a_u64(o.two_param.sweep_window, h);
  h = fnv1a_f64(o.four_param.alpha_lo, h);
  h = fnv1a_f64(o.four_param.alpha_hi, h);
  h = fnv1a_f64(o.four_param.beta_lo, h);
  h = fnv1a_f64(o.four_param.beta_hi, h);
  h = fnv1a_f64(o.corner.percentile, h);
  h = fnv1a_f64(o.root_percentile, h);
  h = fnv1a_f64(o.selection_percentile, h);
  h = fnv1a_f64(o.term_prune_rel_eps, h);
  h = fnv1a_u64(o.max_list_size, h);
  h = fnv1a_u64(o.max_candidates, h);
  h = fnv1a_f64(o.max_wall_seconds, h);
  h = fnv1a_u64(o.max_arena_bytes, h);
  h = fnv1a_u64(o.check_nonfinite ? 1 : 0, h);
  h = fnv1a_u64(static_cast<std::uint64_t>(o.degrade), h);
  // li_shi changes neither the candidates nor the result, but it changes the
  // per-node operation organization; fingerprint it too so a cached run is
  // reproducible under exactly one configuration (conservative flush).
  h = fnv1a_u64(static_cast<std::uint64_t>(o.li_shi), h);
  return h;
}

std::uint64_t fingerprint_library(const timing::buffer_library& lib) {
  std::uint64_t h = fnv1a_u64(lib.size(), fnv1a_seed);
  for (const auto& b : lib.types()) {
    h = fnv1a_str(b.name, h);
    h = fnv1a_f64(b.cap_pf, h);
    h = fnv1a_f64(b.delay_ps, h);
    h = fnv1a_f64(b.res_ohm, h);
  }
  return h;
}

void session_state::flush_entries() {
  for (auto& e : entries) e.valid = false;
}

void session_state::reset_all() {
  entries.clear();
  entries.shrink_to_fit();
  has_options_fp = false;
  has_library_fp = false;
  devices.clear();
  devices.shrink_to_fit();
  memo_lib = 0;
  arena.reset();
  mem.begin_run();
  workers.clear();
}

void session_state::prepare(const tree::routing_tree& tree,
                            const stat_options& options) {
  if (entries.size() < tree.num_nodes()) entries.resize(tree.num_nodes());

  const std::uint64_t ofp = fingerprint_stat_options(options);
  if (has_options_fp && ofp != options_fp) flush_entries();
  options_fp = ofp;
  has_options_fp = true;

  const std::uint64_t lfp = fingerprint_library(options.library);
  if (has_library_fp && lfp != library_fp) {
    devices.clear();
    memo_lib = 0;
  }
  library_fp = lfp;
  has_library_fp = true;

  // Warm the subtree hashes now: mark() and concurrent store() calls then
  // only read them.
  tree.ensure_subtree_hashes();

  const std::size_t lib = options.library.size();
  if (memo_lib != lib) {
    devices.clear();
    memo_lib = lib;
  }
  if (devices.size() < tree.num_nodes() * lib) {
    devices.resize(tree.num_nodes() * lib);
  }
  // Fill missing/moved entries in the serial engine's lazy order (postorder,
  // types ascending): on a fresh session the source-id allocation therefore
  // matches run_statistical_insertion on a fresh model exactly, and every
  // later solve -- serial, parallel, warm or cold -- reads the same memo.
  for (const tree::node_id id : tree.postorder()) {
    const auto& n = tree.node(id);
    if (n.is_source()) continue;
    bool fresh = false;
    for (std::size_t b = 0; b < lib; ++b) {
      const auto& e = devices[static_cast<std::size_t>(id) * lib + b];
      if (!e.valid || e.loc != n.location) {
        fresh = true;
        break;
      }
    }
    if (!fresh) continue;
    for (timing::buffer_index b = 0; b < lib; ++b) {
      const auto& type = options.library[b];
      layout::device_variation dv =
          model->characterize(n.location, type.cap_pf, type.delay_ps);
      if (testing::should_fire(testing::fault_point::device_nan, id)) {
        dv.delay += std::numeric_limits<double>::quiet_NaN();
      }
      auto& e = devices[static_cast<std::size_t>(id) * lib + b];
      e.dv = std::move(dv);
      e.loc = n.location;
      e.valid = true;
    }
  }
}

session_state::mark_result session_state::mark(const tree::routing_tree& tree,
                                               std::vector<node_list>& lists,
                                               bool use_cache) const {
  mark_result r;
  r.marked.assign(tree.num_nodes(), 0);
  std::vector<tree::node_id> stack{tree.root()};
  while (!stack.empty()) {
    const tree::node_id id = stack.back();
    stack.pop_back();
    if (use_cache && id < entries.size() && entries[id].valid &&
        entries[id].hash == tree.subtree_hash(id)) {
      lists[id] = clone_node_list(entries[id].list);
      ++r.hits;
      r.reused += tree.subtree_size(id);
      continue;
    }
    r.marked[id] = 1;
    for (const tree::node_id c : tree.node(id).children) stack.push_back(c);
  }
  return r;
}

void session_state::store(tree::node_id id, std::uint64_t hash,
                          const node_list& solved) {
  cache_entry& e = entries[id];
  e.list = clone_node_list(solved);
  e.hash = hash;
  e.valid = true;
}

stat_result session_solve_serial(session_state& ss,
                                 const tree::routing_tree& tree,
                                 const stat_options& options,
                                 const cancel_token* cancel, bool use_cache) {
  const timing::wire_menu menu = make_wire_menu(options);
  const dp_clock::time_point t_start = dp_clock::now();

  ss.prepare(tree, options);
  std::vector<node_list> lists(tree.num_nodes());
  const auto marks = ss.mark(tree, lists, use_cache);

  // The session arena is never reset (cached `why` chains live there); the
  // worker memory only recycles its scratch, which no sealed list borrows.
  ss.mem.begin_run();

  device_fn devices = [&ss](tree::node_id id, timing::buffer_index b) {
    return ss.device(id, b);
  };

  dp_stats dps;
  std::size_t published = 0;
  dp_worker worker{tree,
                   ss.model->space(),
                   options,
                   menu,
                   std::move(devices),
                   ss.arena,
                   ss.mem,
                   dps,
                   resource_guard{options, dps, published, nullptr, cancel,
                                  t_start}};

  buffer_frontier frontier;
  li_shi_state li_state;
  if (li_shi_enabled(options.li_shi, options.library.size()) &&
      options.rule == pruning_kind::two_param &&
      options.two_param.is_mean_rule() &&
      options.selection_percentile == 0.5) {
    frontier = buffer_frontier{options.library};
    li_state.frontier = &frontier;
    worker.li_shi = &li_state;
  }

  for (const tree::node_id id : tree.postorder()) {
    if (!marks.marked[id]) continue;  // adopted boundary or under one
    if (dps.aborted) break;
    node_list here = worker.solve_node(id, lists);
    if (dps.aborted) break;
    ++dps.cache_misses;
    // Store before the parent consumes the list. An aborted node (and its
    // never-solved ancestors) stores nothing -- the trip invalidates exactly
    // the affected path while earlier sealed entries stay valid.
    if (use_cache) ss.store(id, tree.subtree_hash(id), here);
    lists[id] = std::move(here);
  }

  stat_result result;
  if (!dps.aborted) {
    result = worker.select_root(lists[tree.root()]);
  } else {
    result.assignment = timing::buffer_assignment(tree.num_nodes());
  }
  dps.cache_hits = marks.hits;
  dps.nodes_reused = marks.reused;
  dps.wall_seconds =
      std::chrono::duration<double>(dp_clock::now() - t_start).count();
  result.stats = dps;
  return result;
}

}  // namespace detail

namespace {

solve_outcome<stat_result> session_entry(detail::session_state& ss,
                                         const tree::routing_tree& tree,
                                         const stat_options& options,
                                         const cancel_token* cancel,
                                         thread_pool* pool, bool use_cache) {
  if (auto bad = detail::check_stat_options(options)) return std::move(*bad);
  try {
    tree.validate();
  } catch (const std::exception& e) {
    return solve_error{solve_code::invalid_tree, tree::invalid_node, e.what()};
  }

  solve_error err;
  try {
    stat_result r =
        pool != nullptr
            ? detail::session_solve_parallel(ss, tree, options, *pool, cancel,
                                             use_cache)
            : detail::session_solve_serial(ss, tree, options, cancel,
                                           use_cache);
    if (!r.stats.aborted) return r;
    err = detail::error_from_stats(r.stats);
  } catch (const std::bad_alloc&) {
    err = solve_error{solve_code::memory_cap, tree::invalid_node,
                      "term storage allocation failed"};
  } catch (const std::exception& e) {
    err = solve_error{solve_code::internal, tree::invalid_node, e.what()};
  }
  // The degraded retry runs the corner rule through the one-shot serial
  // engine: it registers its own fresh variation sources in the model and
  // never touches the cache, so the session's entries stay valid for the
  // primary options.
  return detail::degrade_or_error(tree, *ss.model, options, cancel,
                                  std::move(err));
}

}  // namespace

solve_session::solve_session(layout::process_model& model)
    : state_(std::make_unique<detail::session_state>()) {
  state_->model = &model;
}

solve_session::~solve_session() = default;
solve_session::solve_session(solve_session&&) noexcept = default;
solve_session& solve_session::operator=(solve_session&&) noexcept = default;

solve_outcome<stat_result> solve_session::solve(const tree::routing_tree& tree,
                                                const stat_options& options,
                                                const cancel_token* cancel) {
  return session_entry(*state_, tree, options, cancel, nullptr, true);
}

solve_outcome<stat_result> solve_session::solve_parallel(
    const tree::routing_tree& tree, const stat_options& options,
    thread_pool& pool, const cancel_token* cancel) {
  return session_entry(*state_, tree, options, cancel, &pool, true);
}

solve_outcome<stat_result> solve_session::solve_cold(
    const tree::routing_tree& tree, const stat_options& options,
    const cancel_token* cancel) {
  return session_entry(*state_, tree, options, cancel, nullptr, false);
}

void solve_session::reset() { state_->reset_all(); }

std::size_t solve_session::cached_nodes() const {
  std::size_t n = 0;
  for (const auto& e : state_->entries) n += e.valid ? 1 : 0;
  return n;
}

layout::process_model& solve_session::model() { return *state_->model; }

}  // namespace vabi::core
