// Durable result journal for crash-recoverable batch solving.
//
// A batch run that dies hours in -- OOM kill, preemption, SIGKILL -- must not
// lose the nets it already solved. This module provides the storage layer:
// an append-only log of per-net solve outcomes with enough fidelity that a
// resumed run is *bit-identical* to one that was never interrupted (see
// batch_solver::solve_journaled in core/parallel.hpp, which owns the resume
// semantics).
//
// File format ("vabi journal v1", default extension .vjl):
//
//   +--------------------------------------------------------------+
//   | magic "VABIJRNL" (8 bytes)                                   |
//   +--------------+--------------------+--------------------------+
//   | u32 len      | u32 crc32(payload) | payload (len bytes)      |  frame 0
//   +--------------+--------------------+--------------------------+
//   | u32 len      | u32 crc32(payload) | payload                  |  frame 1
//   +--------------+--------------------+--------------------------+
//   | ...                                                          |
//
// Frame 0's payload is the batch header (format version, batch seed, job
// count, fingerprint over every job's solve-relevant inputs); every later
// frame is one per-net record. All integers are little-endian; doubles are
// serialized as their raw IEEE-754 bit patterns, so a round-trip through the
// journal is exact to the bit -- canonical-form coefficients included.
//
// Durability protocol: the writer keeps the full serialized image in memory
// and *checkpoints* it -- write to `<path>.tmp`, fsync, atomic rename over
// `<path>`, fsync the directory -- every N records / B bytes and at close.
// The visible file is therefore always a complete prefix of the log: a crash
// mid-checkpoint leaves either the previous image or the new one, never a
// mix.
//
// Corruption policy on open (read_journal):
//   - missing or empty file          -> empty contents (a crash before the
//                                       first checkpoint leaves no file)
//   - truncated or bit-flipped tail  -> tail dropped, not fatal (the jobs it
//                                       covered are simply re-solved)
//   - corruption mid-log             -> typed solve_error{journal_corrupt}
//                                       naming the record index
//   - a decodable file that is not a journal -> journal_corrupt
// "Tail" means the damaged frame is the last thing in the file; damage with
// intact frames after it cannot be skipped soundly and is reported instead.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/solve_status.hpp"
#include "core/statistical_dp.hpp"

namespace vabi::core {

// ---------------------------------------------------------------------------
// Hashes.
// ---------------------------------------------------------------------------

inline constexpr std::uint64_t fnv1a_seed = 14695981039346656037ull;

/// FNV-1a over a byte range (chainable via `h`).
std::uint64_t fnv1a(const void* data, std::size_t size,
                    std::uint64_t h = fnv1a_seed);

std::uint64_t fnv1a_u64(std::uint64_t v, std::uint64_t h);
std::uint64_t fnv1a_f64(double v, std::uint64_t h);  // raw bit pattern
std::uint64_t fnv1a_str(const std::string& s, std::uint64_t h);

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of a byte range.
std::uint32_t crc32(const void* data, std::size_t size);

// ---------------------------------------------------------------------------
// Journal contents.
// ---------------------------------------------------------------------------

struct journal_header {
  std::uint32_t version = 1;
  bool has_batch_seed = false;
  std::uint64_t batch_seed = 0;
  std::uint64_t num_jobs = 0;
  /// FNV-1a over every job's solve-relevant inputs (options, model config,
  /// die, tree bytes or generator spec + derived seed). A journal written
  /// under different stat_options fingerprints differently and is rejected
  /// at resume with solve_code::journal_mismatch.
  std::uint64_t jobs_fingerprint = 0;
};

/// One journaled per-net outcome: either a full-precision stat_result (plus
/// the size of the variation space the producing run ended with, which is
/// what a resume needs to rebuild an identical process_model) or a typed
/// solve_error.
struct journal_record {
  std::uint64_t job_index = 0;
  std::uint64_t fingerprint = 0;  ///< this job's input fingerprint

  bool ok = false;

  // when !ok: the typed error, verbatim.
  solve_code code = solve_code::internal;
  tree::node_id error_node = tree::invalid_node;
  std::string detail;

  // when ok: the winning solution, full precision.
  std::uint64_t num_sources = 0;  ///< producing run's variation-space size
  stat_result result;
};

/// Shard identity for journals written as one slice of a sharded batch
/// (src/shard). Stored as an optional frame directly after the header, so a
/// shard journal is a strict superset of "vabi journal v1" -- every existing
/// reader/corruption rule applies unchanged.
struct shard_info {
  std::uint32_t shard_index = 0;  ///< monotonic per coordinator run
  /// Worker-slot count the coordinator was configured with when this shard
  /// was opened. Restarted workers open *new* shards, so the number of shard
  /// files can exceed shard_count; merge validates agreement across headers,
  /// not an exact file census.
  std::uint32_t shard_count = 0;
  /// The parent batch's jobs fingerprint (journal_header::jobs_fingerprint of
  /// the equivalent single-process run). A shard from a different batch fails
  /// merge with solve_code::shard_mismatch.
  std::uint64_t parent_fingerprint = 0;
};

struct journal_contents {
  journal_header header;
  bool has_header = false;  ///< false for a missing/empty/truncated-at-0 file
  bool has_shard = false;   ///< true when a shard frame follows the header
  shard_info shard;
  std::vector<journal_record> records;
  std::uint64_t dropped_tail_bytes = 0;  ///< torn tail discarded on open
  std::uint64_t duplicates_dropped = 0;  ///< repeated job_index frames ignored
};

/// Reads and verifies a journal. See the corruption policy above; every
/// failure is a typed solve_error (journal_corrupt), never UB or a throw.
solve_outcome<journal_contents> read_journal(const std::string& path);

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

/// Append-only journal writer with atomic checkpointing. Not thread-safe;
/// the batch solver serializes appends under its own mutex.
///
/// I/O failures never abort the batch: the first failure is latched into
/// io_error() and later checkpoints are still attempted (a full disk that
/// drains later loses nothing but intermediate durability).
class journal_writer {
 public:
  /// `checkpoint_every_jobs` = 0 disables the count trigger,
  /// `checkpoint_every_bytes` = 0 the byte trigger; flush() always writes.
  journal_writer(std::string path, const journal_header& header,
                 std::size_t checkpoint_every_jobs = 16,
                 std::uint64_t checkpoint_every_bytes = 1u << 22);

  /// Shard-journal writer: identical layout plus a shard frame directly
  /// after the header. Shard checkpoints honor the `shard_write_short`
  /// fault point (plain journals keep `journal_write_short`).
  journal_writer(std::string path, const journal_header& header,
                 const shard_info& shard,
                 std::size_t checkpoint_every_jobs = 16,
                 std::uint64_t checkpoint_every_bytes = 1u << 22);

  /// Re-appends a record recovered from a prior run. Never checkpoints on
  /// its own (resume would otherwise rewrite the file once per restored
  /// record before solving anything).
  void restore(const journal_record& record);

  /// Appends a new record and checkpoints when an interval trigger fires.
  void append(const journal_record& record);

  /// Forces a checkpoint: temp file + fsync + rename + directory fsync.
  void flush();

  std::size_t records() const { return records_; }
  std::size_t checkpoints() const { return checkpoints_; }
  std::uint64_t bytes() const { return image_.size(); }
  /// First I/O failure, empty while healthy.
  const std::string& io_error() const { return io_error_; }

 private:
  void maybe_checkpoint();

  std::string path_;
  bool has_shard_ = false;
  std::uint32_t shard_index_ = 0;  ///< fault-selector id for shard_write_short
  std::vector<std::uint8_t> image_;  ///< magic + header frame + record frames
  std::size_t checkpoint_every_jobs_;
  std::uint64_t checkpoint_every_bytes_;
  std::size_t records_ = 0;
  std::size_t records_at_checkpoint_ = 0;
  std::uint64_t bytes_at_checkpoint_ = 0;
  std::size_t checkpoints_ = 0;
  std::string io_error_;
};

namespace journal_detail {
/// One complete frame (len | crc | payload) for `record`. Exposed so the
/// corruption-corpus test can splice frames into crafted files.
std::vector<std::uint8_t> encode_record_frame(const journal_record& record);
std::vector<std::uint8_t> encode_header_frame(const journal_header& header);
std::vector<std::uint8_t> encode_shard_frame(const shard_info& shard);

/// Bare record payload (no len/crc framing) and its inverse. The serve wire
/// protocol (src/serve/wire.hpp) embeds journal records verbatim in its
/// result messages: the journal codec is the one full-precision serialization
/// of a solve outcome, so a streamed result and a journaled one are the same
/// bytes -- which is what makes reconnect/resume bit-identical by
/// construction. decode returns false on any truncation/garbage without
/// reading out of bounds.
std::vector<std::uint8_t> encode_record_payload(const journal_record& record);
bool decode_record_payload(const std::uint8_t* data, std::size_t size,
                           journal_record& out);
}  // namespace journal_detail

}  // namespace vabi::core
