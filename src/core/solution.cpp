#include "core/solution.hpp"

#include <vector>

namespace vabi::core {

design_choice extract_design(const decision* root, std::size_t num_nodes) {
  design_choice out{timing::buffer_assignment(num_nodes),
                    timing::wire_assignment(num_nodes)};
  std::vector<const decision*> stack;
  if (root != nullptr) stack.push_back(root);
  while (!stack.empty()) {
    const decision* d = stack.back();
    stack.pop_back();
    switch (d->what) {
      case decision::kind::leaf:
        break;
      case decision::kind::buffer:
        out.buffers.place(d->node, d->buffer);
        if (d->left != nullptr) stack.push_back(d->left);
        break;
      case decision::kind::wire:
        out.wires.set(d->node, static_cast<timing::width_index>(d->buffer));
        if (d->left != nullptr) stack.push_back(d->left);
        break;
      case decision::kind::merge:
        if (d->left != nullptr) stack.push_back(d->left);
        if (d->right != nullptr) stack.push_back(d->right);
        break;
    }
  }
  return out;
}

timing::buffer_assignment extract_assignment(const decision* root,
                                             std::size_t num_nodes) {
  return extract_design(root, num_nodes).buffers;
}

}  // namespace vabi::core
