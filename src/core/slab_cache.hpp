// Session-oriented incremental re-solve (ECO mode).
//
// The one-shot entry points (run_statistical_insertion, run_van_ginneken,
// solve_parallel_insertion) re-solve every node of the tree on every call.
// Production buffering is iterative: an ECO moves one sink or resizes one
// wire, and only the edited node's root path actually changes. A
// solve_session keeps, across solves:
//
//   - a *slab cache*: every solved node's sealed survivor list (candidates +
//     the term slab their canonical forms borrow), keyed by the node's
//     subtree content hash (tree/routing_tree.hpp) and guarded by a
//     fingerprint over every solver-relevant option;
//   - a *device memo*: the characterized device forms per (node, type),
//     guarded by the node's location, so re-solves reuse the same variation
//     source ids (the precondition for bit-identical re-solves);
//   - the decision arenas backing the cached candidates' `why` chains
//     (never reset while the session lives, so cached backpointers stay
//     valid).
//
// A warm solve adopts every subtree whose hash is unchanged (cloning the
// cached list -- one memcpy per slab) and re-solves only the rest: after a
// single-sink edit that is the root path. Because the cached lists are the
// sealed outputs of the very same DP, and device forms come from the shared
// memo, a warm solve is bit-identical to solve_cold() (same session, cache
// bypassed) by construction -- the differential tests and the nightly
// edit-script fuzzer pin this across 2P/4P/corner x threads x li_shi_mode.
//
// Interplay with the rest of the engine:
//   - resource_guard trips: an aborted solve stores no entry for the tripped
//     node or its ancestors (they were never sealed), so a trip invalidates
//     exactly the affected path; entries stored before the trip are complete
//     lists and stay valid.
//   - degrade policies: a degraded retry runs the corner rule through the
//     non-cached serial engine; the cache keeps serving the primary rule.
//   - any option change (rule parameters, caps, li_shi, percentiles, ...)
//     changes the fingerprint and flushes the cache; a library change also
//     flushes the device memo.
#pragma once

#include <cstdint>
#include <memory>

#include "core/solve_status.hpp"
#include "core/statistical_dp.hpp"
#include "core/van_ginneken.hpp"

namespace vabi::core {

class thread_pool;

namespace detail {
struct session_state;
struct det_session_state;
}  // namespace detail

/// FNV-1a hash over a sparse canonical form: the nominal value plus every
/// (source id, coefficient) term in order. Two forms hash equal iff they are
/// bit-identical, which is what the ECO bench and the incremental-consistency
/// fuzzer assert about warm vs cold root RATs. Must not be called on a
/// dense-representation form (root RATs never are).
std::uint64_t form_hash(const stats::linear_form& f);

/// A statistical-solver session: solve -> edit the tree -> solve again, with
/// unchanged subtrees adopted from the cache. One session per net and per
/// process_model; the model must outlive the session. Not thread-safe --
/// solves are issued one at a time (solve_parallel fans one solve across a
/// caller-owned pool internally).
class solve_session {
 public:
  explicit solve_session(layout::process_model& model);
  ~solve_session();
  solve_session(solve_session&&) noexcept;
  solve_session& operator=(solve_session&&) noexcept;
  solve_session(const solve_session&) = delete;
  solve_session& operator=(const solve_session&) = delete;

  /// Incremental serial solve: consults and updates the slab cache.
  solve_outcome<stat_result> solve(const tree::routing_tree& tree,
                                   const stat_options& options,
                                   const cancel_token* cancel = nullptr);

  /// Incremental solve with per-node tasks on `pool` (bit-identical to the
  /// serial solve, like solve_parallel_insertion is to the serial engine).
  solve_outcome<stat_result> solve_parallel(const tree::routing_tree& tree,
                                            const stat_options& options,
                                            thread_pool& pool,
                                            const cancel_token* cancel =
                                                nullptr);

  /// Reference solve: bypasses the cache entirely (adopts nothing, stores
  /// nothing) but shares the session's device memo, so its result is
  /// bit-identical to what a warm solve of the same tree must produce.
  solve_outcome<stat_result> solve_cold(const tree::routing_tree& tree,
                                        const stat_options& options,
                                        const cancel_token* cancel = nullptr);

  /// Drops every cached entry, the device memo, and the decision arenas.
  void reset();

  /// Number of nodes with a valid cached survivor list.
  std::size_t cached_nodes() const;

  layout::process_model& model();

 private:
  std::unique_ptr<detail::session_state> state_;
};

/// The deterministic (van Ginneken) counterpart of solve_session: candidate
/// lists are plain (load, RAT) doubles, so entries are cached by value with
/// no slab machinery, keyed by the same subtree hashes.
class det_session {
 public:
  det_session();
  ~det_session();
  det_session(det_session&&) noexcept;
  det_session& operator=(det_session&&) noexcept;
  det_session(const det_session&) = delete;
  det_session& operator=(const det_session&) = delete;

  /// Incremental solve: consults and updates the cache.
  solve_outcome<det_result> solve(const tree::routing_tree& tree,
                                  const det_options& options);

  /// Cache-bypassing reference solve inside this session.
  solve_outcome<det_result> solve_cold(const tree::routing_tree& tree,
                                       const det_options& options);

  void reset();
  std::size_t cached_nodes() const;

 private:
  std::unique_ptr<detail::det_session_state> state_;
};

}  // namespace vabi::core
