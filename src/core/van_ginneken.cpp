#include "core/van_ginneken.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <limits>
#include <new>
#include <stdexcept>
#include <vector>

#include "core/journal.hpp"
#include "core/pruning.hpp"
#include "core/slab_cache.hpp"

namespace vabi::core {

namespace detail {

/// State of a det_session (slab_cache.hpp). Deterministic candidates are
/// plain (load, RAT, why) triples, so cached lists are stored by value; the
/// session-owned decision arena is never reset while the session lives
/// because cached `why` chains point into it.
struct det_session_state {
  struct entry {
    std::uint64_t hash = 0;
    bool valid = false;
    std::vector<det_candidate> list;
  };
  std::vector<entry> entries;
  std::uint64_t options_fp = 0;
  bool has_options_fp = false;
  decision_arena arena;
};

}  // namespace detail

namespace {

using cand_list = std::vector<det_candidate>;

/// Propagates every candidate through the edge above `child` (eqs. 25-26).
/// Without sizing this is in-place; with a multi-width menu each candidate
/// fans out into one variant per width (recorded as a wire decision) and the
/// caller's prune collapses the dominated ones. Load order is preserved in
/// the single-width case; RAT order may change, so callers re-prune.
void propagate_wire(cand_list& list, const timing::wire_menu& menu,
                    tree::node_id child, double um, decision_arena& arena,
                    dp_stats& stats) {
  if (um == 0.0) return;
  if (!menu.sizing_enabled()) {
    const timing::wire_model& wire = menu[0];
    for (auto& c : list) {
      c.rat_ps -= wire.wire_delay(um, c.load_pf);
      c.load_pf += wire.wire_cap(um);
    }
    return;
  }
  cand_list out;
  out.reserve(list.size() * menu.size());
  for (const auto& c : list) {
    for (timing::width_index w = 0; w < menu.size(); ++w) {
      const timing::wire_model& wire = menu[w];
      det_candidate v;
      v.rat_ps = c.rat_ps - wire.wire_delay(um, c.load_pf);
      v.load_pf = c.load_pf + wire.wire_cap(um);
      v.why = arena.wire_sized(child, w, c.why);
      out.push_back(v);
      ++stats.candidates_created;
    }
  }
  list = std::move(out);
}

/// Classic linear merge of two pruned lists (both sorted by load asc, rat
/// asc): at most n + m - 1 combinations are materialized (Fig. 1).
cand_list merge_lists(const cand_list& a, const cand_list& b,
                      decision_arena& arena, dp_stats& stats) {
  cand_list out;
  out.reserve(a.size() + b.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    det_candidate c;
    c.load_pf = a[i].load_pf + b[j].load_pf;
    c.rat_ps = std::min(a[i].rat_ps, b[j].rat_ps);
    c.why = arena.merged(a[i].why, b[j].why);
    out.push_back(c);
    ++stats.merge_pairs;
    // Advance the side that limits the RAT: pairing it with any larger load
    // from the other side could only add load without improving min(T).
    if (a[i].rat_ps < b[j].rat_ps) {
      ++i;
    } else if (a[i].rat_ps > b[j].rat_ps) {
      ++j;
    } else {
      ++i;
      ++j;
    }
  }
  stats.candidates_created += out.size();
  return out;
}

/// Fingerprint over every solver-relevant det_options field; a change
/// flushes the det_session cache (mirrors detail::fingerprint_stat_options).
std::uint64_t fingerprint_det_options(const det_options& o) {
  std::uint64_t h = fnv1a_seed;
  h = fnv1a_f64(o.wire.res_per_um, h);
  h = fnv1a_f64(o.wire.cap_per_um, h);
  h = fnv1a_u64(o.library.size(), h);
  for (const auto& b : o.library.types()) {
    h = fnv1a_str(b.name, h);
    h = fnv1a_f64(b.cap_pf, h);
    h = fnv1a_f64(b.delay_ps, h);
    h = fnv1a_f64(b.res_ohm, h);
  }
  h = fnv1a_f64(o.driver_res_ohm, h);
  h = fnv1a_u64(o.wire_width_multipliers.size(), h);
  for (const double m : o.wire_width_multipliers) h = fnv1a_f64(m, h);
  h = fnv1a_u64(static_cast<std::uint64_t>(o.li_shi), h);
  return h;
}

/// The shared postorder DP. With a session: subtrees whose content hash
/// matches their cached entry are adopted (list copied, subtree skipped) and
/// every freshly solved node's list is stored back; decisions go to the
/// session arena. Without: the classic one-shot behavior on `arena`.
det_result run_vg_impl(const tree::routing_tree& tree,
                       const det_options& options, decision_arena& arena,
                       detail::det_session_state* session, bool use_cache) {
  if (options.library.empty()) {
    throw std::invalid_argument("run_van_ginneken: empty buffer library");
  }
  options.wire.validate();
  const timing::wire_menu menu =
      options.wire_width_multipliers.size() <= 1
          ? timing::wire_menu{options.wire}
          : timing::wire_menu{options.wire, options.wire_width_multipliers};
  const auto t_start = std::chrono::steady_clock::now();

  // Li-Shi per-type frontier (li_shi.hpp): type order built once per run,
  // per-type argmax found by monotone divide-and-conquer at every position.
  const bool use_frontier =
      li_shi_enabled(options.li_shi, options.library.size());
  buffer_frontier frontier;
  std::vector<std::size_t> best_per_type;
  std::vector<double> key_load;
  std::vector<double> key_rat;
  std::vector<double> type_delay;
  std::vector<double> type_res;
  if (use_frontier) {
    frontier = buffer_frontier{options.library};
    for (timing::buffer_index b = 0; b < options.library.size(); ++b) {
      type_delay.push_back(options.library[b].delay_ps);
      type_res.push_back(options.library[b].res_ohm);
    }
  }

  det_result result;
  std::vector<cand_list> lists(tree.num_nodes());

  // Session mode: adopt every subtree whose content hash matches its cached
  // entry -- top-down, so a hit skips the whole subtree below it.
  std::vector<std::uint8_t> marked;
  if (session != nullptr) {
    tree.ensure_subtree_hashes();
    if (session->entries.size() < tree.num_nodes()) {
      session->entries.resize(tree.num_nodes());
    }
    marked.assign(tree.num_nodes(), 0);
    std::vector<tree::node_id> stack{tree.root()};
    while (!stack.empty()) {
      const tree::node_id id = stack.back();
      stack.pop_back();
      const auto& e = session->entries[id];
      if (use_cache && e.valid && e.hash == tree.subtree_hash(id)) {
        lists[id] = e.list;
        ++result.stats.cache_hits;
        result.stats.nodes_reused += tree.subtree_size(id);
        continue;
      }
      marked[id] = 1;
      for (const tree::node_id c : tree.node(id).children) {
        stack.push_back(c);
      }
    }
  }

  for (tree::node_id id : tree.postorder()) {
    if (session != nullptr && marked[id] == 0) continue;
    const auto& n = tree.node(id);
    cand_list here;
    if (n.is_sink()) {
      here.push_back({n.sink_cap_pf, n.sink_rat_ps, arena.leaf()});
      ++result.stats.candidates_created;
    } else {
      for (tree::node_id child : n.children) {
        cand_list up = std::move(lists[child]);
        lists[child].clear();
        propagate_wire(up, menu, child, tree.node(child).parent_wire_um, arena,
                       result.stats);
        if (use_frontier && !menu.sizing_enabled()) {
          // Single-width wire propagation shifts every load by the same wire
          // cap, so the child's pruned (sorted) list is still sorted: only
          // the dominance sweep is needed. With sizing the fan-out is
          // arbitrary and the full prune stays.
          prune_deterministic_sorted(up, result.stats);
        } else {
          prune_deterministic(up, result.stats);
        }
        if (here.empty()) {
          here = std::move(up);
        } else {
          here = merge_lists(here, up, arena, result.stats);
          prune_deterministic(here, result.stats);
        }
      }
    }
    if (!n.is_source()) {
      // One buffered candidate per type: load becomes C_b, so only the best
      // post-buffer RAT matters (eqs. 27-28).
      const std::size_t base = here.size();
      if (use_frontier && base > 0) {
        // Li-Shi: one monotone pass finds every type's best candidate; the
        // key expression and the leftmost / strictly-greater tie rule are
        // the scan path's, so the emitted candidates are identical.
        // Packed key copies: the divide-and-conquer revisits rows many
        // times, and contiguous doubles scan faster than the 24-byte
        // candidate stride.
        key_load.resize(base);
        key_rat.resize(base);
        for (std::size_t k = 0; k < base; ++k) {
          key_load[k] = here[k].load_pf;
          key_rat[k] = here[k].rat_ps;
        }
        frontier.best_per_type(base, key_load.data(), key_rat.data(),
                               type_delay.data(), type_res.data(),
                               best_per_type);
        for (timing::buffer_index b = 0; b < options.library.size(); ++b) {
          const std::size_t k = best_per_type[b];
          if (k == li_shi_npos) continue;  // all keys NaN: the scan skips too
          const auto& type = options.library[b];
          const double best_rat =
              here[k].rat_ps - type.delay_ps - type.res_ohm * here[k].load_pf;
          here.push_back(
              {type.cap_pf, best_rat, arena.buffered(id, b, here[k].why)});
          ++result.stats.candidates_created;
        }
        ++result.stats.li_shi_nodes;
        // The base is already pruned (sorted); only the b appended buffered
        // candidates need placing. Re-sorting everything -- the classic
        // path's per-node O(n log n) -- is the other half of the b-factor
        // Li-Shi's organization removes.
        prune_deterministic_presorted(here, base, result.stats);
      } else {
        for (timing::buffer_index b = 0; b < options.library.size(); ++b) {
          const auto& type = options.library[b];
          double best_rat = -std::numeric_limits<double>::infinity();
          const decision* best_why = nullptr;
          for (std::size_t k = 0; k < base; ++k) {
            const double rat =
                here[k].rat_ps - type.delay_ps - type.res_ohm * here[k].load_pf;
            if (rat > best_rat) {
              best_rat = rat;
              best_why = here[k].why;
            }
          }
          if (best_why != nullptr) {
            here.push_back(
                {type.cap_pf, best_rat, arena.buffered(id, b, best_why)});
            ++result.stats.candidates_created;
          }
        }
        prune_deterministic(here, result.stats);
      }
    }
    result.stats.peak_list_size =
        std::max(result.stats.peak_list_size, here.size());
    if (session != nullptr) {
      ++result.stats.cache_misses;
      if (use_cache) {
        auto& e = session->entries[id];
        e.list = here;  // copy: `here` moves on into the solve
        e.hash = tree.subtree_hash(id);
        e.valid = true;
      }
    }
    lists[id] = std::move(here);
  }

  const cand_list& root_list = lists[tree.root()];
  if (root_list.empty()) {
    throw std::logic_error("run_van_ginneken: no candidate at root");
  }
  const det_candidate* best = nullptr;
  double best_rat = -std::numeric_limits<double>::infinity();
  for (const auto& c : root_list) {
    const double rat = c.rat_ps - options.driver_res_ohm * c.load_pf;
    if (rat > best_rat) {
      best_rat = rat;
      best = &c;
    }
  }
  result.root_rat_ps = best_rat;
  design_choice design = extract_design(best->why, tree.num_nodes());
  result.assignment = std::move(design.buffers);
  result.wires = std::move(design.wires);
  result.num_buffers = result.assignment.count();
  result.stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_start)
          .count();
  return result;
}

/// Shared typed-error wrapper of the deterministic entry points.
template <typename Solve>
solve_outcome<det_result> det_entry(const tree::routing_tree& tree,
                                    Solve&& solve) {
  try {
    tree.validate();
  } catch (const std::exception& e) {
    return solve_error{solve_code::invalid_tree, tree::invalid_node, e.what()};
  }
  try {
    return solve();
  } catch (const std::invalid_argument& e) {
    return solve_error{solve_code::invalid_options, tree::invalid_node,
                       e.what()};
  } catch (const std::bad_alloc&) {
    return solve_error{solve_code::memory_cap, tree::invalid_node,
                       "allocation failed"};
  } catch (const std::exception& e) {
    return solve_error{solve_code::internal, tree::invalid_node, e.what()};
  }
}

}  // namespace

det_result run_van_ginneken(const tree::routing_tree& tree,
                            const det_options& options) {
  // Reused across runs on this thread (batch_solver fans nets across pool
  // threads): the chunked slabs reach steady state after the first net. Safe
  // because the result is materialized (extract_design) before returning.
  static thread_local decision_arena t_arena;
  t_arena.reset();
  return run_vg_impl(tree, options, t_arena, nullptr, false);
}

solve_outcome<det_result> solve_van_ginneken(const tree::routing_tree& tree,
                                             const det_options& options) {
  return det_entry(tree,
                   [&] { return run_van_ginneken(tree, options); });
}

det_session::det_session()
    : state_(std::make_unique<detail::det_session_state>()) {}
det_session::~det_session() = default;
det_session::det_session(det_session&&) noexcept = default;
det_session& det_session::operator=(det_session&&) noexcept = default;

namespace {

solve_outcome<det_result> det_session_entry(detail::det_session_state& ss,
                                            const tree::routing_tree& tree,
                                            const det_options& options,
                                            bool use_cache) {
  const std::uint64_t fp = fingerprint_det_options(options);
  if (ss.has_options_fp && fp != ss.options_fp) {
    for (auto& e : ss.entries) e.valid = false;
  }
  ss.options_fp = fp;
  ss.has_options_fp = true;
  return det_entry(tree, [&] {
    return run_vg_impl(tree, options, ss.arena, &ss, use_cache);
  });
}

}  // namespace

solve_outcome<det_result> det_session::solve(const tree::routing_tree& tree,
                                             const det_options& options) {
  return det_session_entry(*state_, tree, options, true);
}

solve_outcome<det_result> det_session::solve_cold(
    const tree::routing_tree& tree, const det_options& options) {
  return det_session_entry(*state_, tree, options, false);
}

void det_session::reset() {
  state_->entries.clear();
  state_->entries.shrink_to_fit();
  state_->has_options_fp = false;
  state_->arena.reset();
}

std::size_t det_session::cached_nodes() const {
  std::size_t n = 0;
  for (const auto& e : state_->entries) n += e.valid ? 1 : 0;
  return n;
}

}  // namespace vabi::core
