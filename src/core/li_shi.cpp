#include "core/li_shi.hpp"

#include <algorithm>
#include <numeric>

#include "stats/kernels.hpp"

namespace vabi::core {

const char* to_string(li_shi_mode mode) {
  switch (mode) {
    case li_shi_mode::automatic:
      return "auto";
    case li_shi_mode::always:
      return "always";
    case li_shi_mode::never:
      return "never";
  }
  return "?";
}

bool li_shi_enabled(li_shi_mode mode, std::size_t num_types) {
  switch (mode) {
    case li_shi_mode::always:
      return true;
    case li_shi_mode::never:
      return false;
    case li_shi_mode::automatic:
      break;
  }
  return num_types > 2;
}

std::vector<timing::buffer_index> type_order_by_resistance(
    const timing::buffer_library& library) {
  std::vector<timing::buffer_index> order(library.size());
  std::iota(order.begin(), order.end(), timing::buffer_index{0});
  std::stable_sort(order.begin(), order.end(),
                   [&library](timing::buffer_index a, timing::buffer_index b) {
                     return library[a].res_ohm > library[b].res_ohm;
                   });
  return order;
}

void buffer_frontier::best_per_type(std::size_t num_cands, const double* loads,
                                    const double* rats, const double* delays,
                                    const double* res,
                                    std::vector<std::size_t>& best) const {
  best.assign(order_.size(), li_shi_npos);
  if (num_cands == 0 || order_.empty()) return;
  solve_rows_packed(0, order_.size(), 0, num_cands, loads, rats, delays, res,
                    stats::kernels::active(), best);
}

void buffer_frontier::solve_rows_packed(
    std::size_t rlo, std::size_t rhi, std::size_t klo, std::size_t khi,
    const double* loads, const double* rats, const double* delays,
    const double* res, const stats::kernels::kernel_table& kt,
    std::vector<std::size_t>& best) const {
  if (rlo >= rhi) return;
  const std::size_t rmid = rlo + (rhi - rlo) / 2;
  const timing::buffer_index b = order_[rmid];
  const std::size_t rel = kt.argmax_buffered_row(rats + klo, loads + klo,
                                                 delays[b], res[b], khi - klo);
  const std::size_t best_k =
      rel == static_cast<std::size_t>(-1) ? li_shi_npos : klo + rel;
  best[b] = best_k;
  if (best_k == li_shi_npos) {
    // Degenerate row (all keys NaN): no ordering information; both halves
    // keep the parent's full range (see the lambda form above).
    solve_rows_packed(rlo, rmid, klo, khi, loads, rats, delays, res, kt, best);
    solve_rows_packed(rmid + 1, rhi, klo, khi, loads, rats, delays, res, kt,
                      best);
    return;
  }
  solve_rows_packed(rlo, rmid, klo, best_k + 1, loads, rats, delays, res, kt,
                    best);
  solve_rows_packed(rmid + 1, rhi, best_k, khi, loads, rats, delays, res, kt,
                    best);
}

}  // namespace vabi::core
