#include "core/cost_bounded.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <new>
#include <map>
#include <stdexcept>

namespace vabi::core {

namespace {

struct cost_candidate {
  double load_pf = 0.0;
  double rat_ps = 0.0;
  double cost = 0.0;
  const decision* why = nullptr;
};

using cand_list = std::vector<cost_candidate>;

/// 2-D (load -> best rat) Pareto front with cheap dominance queries, used to
/// accumulate "anything achievable at cost <= current level".
class load_rat_front {
 public:
  /// True if some entry has load <= `load` and rat >= `rat`.
  bool dominates(double load, double rat) const {
    auto it = entries_.upper_bound(load);
    if (it == entries_.begin()) return false;
    return std::prev(it)->second >= rat;
  }

  void insert(double load, double rat) {
    if (dominates(load, rat)) return;
    auto it = entries_.insert_or_assign(load, rat).first;
    // Entries at larger load with smaller-or-equal rat are now dominated.
    auto next = std::next(it);
    while (next != entries_.end() && next->second <= rat) {
      next = entries_.erase(next);
    }
    // If a smaller-load entry already had rat >= ours, `dominates` above
    // would have fired, so the map invariant (rat strictly increasing with
    // load) holds.
  }

 private:
  std::map<double, double> entries_;
};

/// Exact 3-D Pareto prune: keep (L, T, W) unless some candidate with
/// cost <= W has load <= L and rat >= T. Sorting by cost groups lets one
/// accumulated 2-D front answer every dominance query.
void prune_3d(cand_list& list, dp_stats& stats) {
  if (list.size() <= 1) return;
  std::sort(list.begin(), list.end(),
            [](const cost_candidate& a, const cost_candidate& b) {
              if (a.cost != b.cost) return a.cost < b.cost;
              if (a.load_pf != b.load_pf) return a.load_pf < b.load_pf;
              return a.rat_ps > b.rat_ps;
            });
  load_rat_front front;
  cand_list kept;
  kept.reserve(list.size());
  for (auto& c : list) {
    if (front.dominates(c.load_pf, c.rat_ps)) {
      ++stats.candidates_pruned;
      continue;
    }
    front.insert(c.load_pf, c.rat_ps);
    kept.push_back(std::move(c));
  }
  list = std::move(kept);
}

}  // namespace

std::optional<cost_rat_point> cost_bounded_result::cheapest_meeting(
    double target_rat_ps) const {
  for (const auto& p : frontier) {
    if (p.root_rat_ps >= target_rat_ps) return p;
  }
  return std::nullopt;
}

cost_bounded_result run_cost_bounded_insertion(
    const tree::routing_tree& tree, const cost_bounded_options& options) {
  const det_options& base = options.base;
  if (base.library.empty()) {
    throw std::invalid_argument("run_cost_bounded_insertion: empty library");
  }
  base.wire.validate();
  if (!options.buffer_costs.empty() &&
      options.buffer_costs.size() != base.library.size()) {
    throw std::invalid_argument(
        "run_cost_bounded_insertion: buffer_costs size mismatch");
  }
  const auto cost_of = [&](timing::buffer_index b) {
    return options.buffer_costs.empty() ? 1.0 : options.buffer_costs[b];
  };
  const timing::wire_menu menu =
      base.wire_width_multipliers.size() <= 1
          ? timing::wire_menu{base.wire}
          : timing::wire_menu{base.wire, base.wire_width_multipliers};

  const auto t_start = std::chrono::steady_clock::now();
  cost_bounded_result result;
  // Reused across runs on this thread; see van_ginneken.cpp. Frontier designs
  // are materialized (extract_design) before the arena can be reset again.
  static thread_local decision_arena t_arena;
  t_arena.reset();
  decision_arena& arena = t_arena;
  std::vector<cand_list> lists(tree.num_nodes());

  for (tree::node_id id : tree.postorder()) {
    const auto& n = tree.node(id);
    cand_list here;
    if (n.is_sink()) {
      here.push_back({n.sink_cap_pf, n.sink_rat_ps, 0.0, arena.leaf()});
      ++result.stats.candidates_created;
    } else {
      for (tree::node_id child : n.children) {
        cand_list up = std::move(lists[child]);
        lists[child].clear();
        // Wire propagation (possibly sized).
        const double um = tree.node(child).parent_wire_um;
        if (um > 0.0) {
          if (!menu.sizing_enabled()) {
            for (auto& c : up) {
              c.rat_ps -= menu[0].wire_delay(um, c.load_pf);
              c.load_pf += menu[0].wire_cap(um);
            }
          } else {
            cand_list sized;
            sized.reserve(up.size() * menu.size());
            for (const auto& c : up) {
              for (timing::width_index w = 0; w < menu.size(); ++w) {
                sized.push_back({c.load_pf + menu[w].wire_cap(um),
                                 c.rat_ps - menu[w].wire_delay(um, c.load_pf),
                                 c.cost, arena.wire_sized(child, w, c.why)});
                ++result.stats.candidates_created;
              }
            }
            up = std::move(sized);
          }
        }
        prune_3d(up, result.stats);
        if (here.empty()) {
          here = std::move(up);
        } else {
          // Cross-product merge: costs add, so the sorted-linear trick of
          // the 2-D engine does not apply ([9] pays the same price).
          cand_list merged;
          merged.reserve(here.size() * up.size());
          for (const auto& a : here) {
            for (const auto& b : up) {
              const double cost = a.cost + b.cost;
              if (options.max_cost > 0.0 && cost > options.max_cost) continue;
              merged.push_back({a.load_pf + b.load_pf,
                                std::min(a.rat_ps, b.rat_ps), cost,
                                arena.merged(a.why, b.why)});
              ++result.stats.merge_pairs;
              ++result.stats.candidates_created;
            }
          }
          here = std::move(merged);
          prune_3d(here, result.stats);
        }
      }
    }
    if (!n.is_source()) {
      const std::size_t basecount = here.size();
      for (timing::buffer_index b = 0; b < base.library.size(); ++b) {
        const auto& type = base.library[b];
        for (std::size_t k = 0; k < basecount; ++k) {
          const double cost = here[k].cost + cost_of(b);
          if (options.max_cost > 0.0 && cost > options.max_cost) continue;
          here.push_back({type.cap_pf,
                          here[k].rat_ps - type.delay_ps -
                              type.res_ohm * here[k].load_pf,
                          cost, arena.buffered(id, b, here[k].why)});
          ++result.stats.candidates_created;
        }
      }
      prune_3d(here, result.stats);
    }
    result.stats.peak_list_size =
        std::max(result.stats.peak_list_size, here.size());
    lists[id] = std::move(here);
  }

  // Root frontier: apply the driver, then keep the (cost, rat) Pareto curve.
  cand_list& root = lists[tree.root()];
  if (root.empty()) {
    throw std::logic_error("run_cost_bounded_insertion: empty root list");
  }
  std::sort(root.begin(), root.end(),
            [&](const cost_candidate& a, const cost_candidate& b) {
              if (a.cost != b.cost) return a.cost < b.cost;
              return (a.rat_ps - base.driver_res_ohm * a.load_pf) >
                     (b.rat_ps - base.driver_res_ohm * b.load_pf);
            });
  double best_rat = -std::numeric_limits<double>::infinity();
  double last_cost = -1.0;
  for (const auto& c : root) {
    const double rat = c.rat_ps - base.driver_res_ohm * c.load_pf;
    if (c.cost == last_cost) continue;  // only the best per cost level
    if (rat <= best_rat) continue;      // must strictly improve the RAT
    best_rat = rat;
    last_cost = c.cost;
    design_choice design = extract_design(c.why, tree.num_nodes());
    result.frontier.push_back(
        {c.cost, rat, std::move(design.buffers), std::move(design.wires)});
  }
  result.stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_start)
          .count();
  return result;
}

solve_outcome<cost_bounded_result> solve_cost_bounded_insertion(
    const tree::routing_tree& tree, const cost_bounded_options& options) {
  try {
    tree.validate();
  } catch (const std::exception& e) {
    return solve_error{solve_code::invalid_tree, tree::invalid_node, e.what()};
  }
  try {
    return run_cost_bounded_insertion(tree, options);
  } catch (const std::invalid_argument& e) {
    return solve_error{solve_code::invalid_options, tree::invalid_node,
                       e.what()};
  } catch (const std::bad_alloc&) {
    return solve_error{solve_code::memory_cap, tree::invalid_node,
                       "allocation failed"};
  } catch (const std::exception& e) {
    return solve_error{solve_code::internal, tree::invalid_node, e.what()};
  }
}

}  // namespace vabi::core
