#include "timing/buffer_library.hpp"

#include <cmath>
#include <stdexcept>

namespace vabi::timing {

buffer_library::buffer_library(std::vector<buffer_type> types)
    : types_(std::move(types)) {
  for (const auto& t : types_) check(t);
}

void buffer_library::check(const buffer_type& type) const {
  if (type.cap_pf <= 0.0 || type.res_ohm <= 0.0 || type.delay_ps < 0.0) {
    throw std::invalid_argument("buffer_library: invalid characteristics for '" +
                                type.name + "'");
  }
}

buffer_index buffer_library::add(buffer_type type) {
  check(type);
  types_.push_back(std::move(type));
  return static_cast<buffer_index>(types_.size() - 1);
}

buffer_library standard_library() {
  // 65nm-flavor repeaters. With the default wire (0.2 ohm/um, 0.2 fF/um)
  // the x1 optimal repeater spacing sqrt(2(T_b + R_b C_b)/(r c)) is ~1.5 mm,
  // so multi-millimeter nets want buffers -- the regime the paper studies.
  return buffer_library{{
      {"buf_x1", 0.020, 40.0, 400.0},
      {"buf_x2", 0.040, 36.0, 200.0},
      {"buf_x4", 0.080, 33.0, 100.0},
  }};
}

buffer_library single_buffer_library() {
  return buffer_library{{{"buf_x1", 0.020, 40.0, 400.0}}};
}

buffer_library make_parameterized_library(std::size_t size,
                                          std::uint32_t seed) {
  if (size == 0 || size > 1024) {
    throw std::invalid_argument(
        "make_parameterized_library: size must be in [1, 1024]");
  }
  // splitmix64-style mixer: cheap, deterministic across platforms, and good
  // enough to decorrelate the per-type percent-level jitter.
  auto mix = [](std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  };
  // Uniform in [-1, 1), from the top 53 bits.
  auto jitter = [&mix](std::uint64_t key) {
    return 2.0 * static_cast<double>(mix(key) >> 11) * 0x1p-53 - 1.0;
  };

  std::vector<buffer_type> types;
  types.reserve(size);
  const std::size_t drive_steps = size < 4 ? size : (size + 3) / 4 * 4 / 4;
  for (std::size_t i = 0; i < size; ++i) {
    // Drive index walks x1 -> x64 geometrically; variants (skewed, inverting)
    // reuse the drive of their base cell so res_ohm values genuinely repeat.
    const std::size_t drive_idx = size < 4 ? i : i / 4;
    const std::size_t variant = size < 4 ? 0 : i % 4;
    const double t = drive_steps <= 1
                         ? 0.0
                         : static_cast<double>(drive_idx) /
                               static_cast<double>(drive_steps - 1);
    const double drive = std::pow(64.0, t);  // x1 .. x64
    const std::uint64_t key =
        (static_cast<std::uint64_t>(seed) << 32) ^ drive_idx;

    buffer_type b;
    b.cap_pf = 0.020 * drive * (1.0 + 0.03 * jitter(key ^ 0x11));
    b.res_ohm = 400.0 / drive * (1.0 + 0.03 * jitter(key ^ 0x22));
    b.delay_ps = (40.0 - 7.0 * t) * (1.0 + 0.03 * jitter(key ^ 0x33));
    std::string tag = "buf";
    if (variant == 1 || variant == 3) {
      // Skewed cell: same drive (resistance tie with the base cell), more
      // intrinsic delay, a touch less input cap.
      b.delay_ps *= variant == 1 ? 1.15 : 1.30;
      b.cap_pf *= 0.95;
      tag = variant == 1 ? "bufskw" : "bufskw2";
    } else if (variant == 2) {
      // Inverting cell: one extra stage of intrinsic delay.
      b.delay_ps += 12.0;
      tag = "inv";
    }
    b.name = tag + "_d" + std::to_string(drive_idx) + "_s" +
             std::to_string(seed);
    types.push_back(std::move(b));
  }
  return buffer_library{std::move(types)};
}

}  // namespace vabi::timing
