#include "timing/buffer_library.hpp"

#include <stdexcept>

namespace vabi::timing {

buffer_library::buffer_library(std::vector<buffer_type> types)
    : types_(std::move(types)) {
  for (const auto& t : types_) check(t);
}

void buffer_library::check(const buffer_type& type) const {
  if (type.cap_pf <= 0.0 || type.res_ohm <= 0.0 || type.delay_ps < 0.0) {
    throw std::invalid_argument("buffer_library: invalid characteristics for '" +
                                type.name + "'");
  }
}

buffer_index buffer_library::add(buffer_type type) {
  check(type);
  types_.push_back(std::move(type));
  return static_cast<buffer_index>(types_.size() - 1);
}

buffer_library standard_library() {
  // 65nm-flavor repeaters. With the default wire (0.2 ohm/um, 0.2 fF/um)
  // the x1 optimal repeater spacing sqrt(2(T_b + R_b C_b)/(r c)) is ~1.5 mm,
  // so multi-millimeter nets want buffers -- the regime the paper studies.
  return buffer_library{{
      {"buf_x1", 0.020, 40.0, 400.0},
      {"buf_x2", 0.040, 36.0, 200.0},
      {"buf_x4", 0.080, 33.0, 100.0},
  }};
}

buffer_library single_buffer_library() {
  return buffer_library{{{"buf_x1", 0.020, 40.0, 400.0}}};
}

}  // namespace vabi::timing
