// Distributed-RC wire model.
//
// Wires are modeled per the paper (Section 4.1) as pi segments under the
// Elmore delay metric. Units throughout the library: ohm, pF, ps, um --
// note 1 ohm * 1 pF = 1 ps, so delays come out in picoseconds directly.
//
// For a wire of length l driven into downstream load L:
//   added capacitance:  c * l                          (eq. 25)
//   Elmore delay:       r*l*L + r*c*l^2 / 2            (eq. 26)
#pragma once

#include <stdexcept>

namespace vabi::timing {

struct wire_model {
  double res_per_um = 0.2;      ///< sheet resistance r, ohm/um
  double cap_per_um = 0.2e-3;   ///< unit capacitance c, pF/um

  /// Total capacitance of a wire of length `um`.
  double wire_cap(double um) const { return cap_per_um * um; }

  /// Elmore delay of a wire of length `um` into downstream load `load_pf`.
  double wire_delay(double um, double load_pf) const {
    return res_per_um * um * load_pf +
           0.5 * res_per_um * cap_per_um * um * um;
  }

  void validate() const {
    if (res_per_um < 0.0 || cap_per_um < 0.0) {
      throw std::invalid_argument("wire_model: negative unit R or C");
    }
  }
};

}  // namespace vabi::timing
