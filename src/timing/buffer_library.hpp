// Buffer (repeater) library.
//
// Each buffer type is characterized by its nominal input capacitance C_b,
// intrinsic delay T_b and output resistance R_b (paper Section 3.1). Process
// variation lumps into C_b and T_b; R_b stays nominal for a given size, as in
// the paper. Delay of a buffer driving load L: T_b + R_b * L (eq. 28).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vabi::timing {

/// Index of a buffer type within a buffer_library.
using buffer_index = std::uint32_t;

struct buffer_type {
  std::string name;
  double cap_pf = 0.0;    ///< nominal input capacitance C_b0
  double delay_ps = 0.0;  ///< nominal intrinsic delay T_b0
  double res_ohm = 0.0;   ///< output resistance R_b (kept nominal)
};

class buffer_library {
 public:
  buffer_library() = default;
  explicit buffer_library(std::vector<buffer_type> types);

  buffer_index add(buffer_type type);

  std::size_t size() const { return types_.size(); }
  bool empty() const { return types_.empty(); }
  const buffer_type& operator[](buffer_index i) const { return types_[i]; }
  const std::vector<buffer_type>& types() const { return types_; }

 private:
  void check(const buffer_type& type) const;
  std::vector<buffer_type> types_;
};

/// The default 65nm-flavor library used by the experiments: three inverter
/// sizes (1x / 2x / 4x). Larger sizes trade input capacitance for drive
/// strength.
buffer_library standard_library();

/// A single-buffer library (the classic van Ginneken setting); handy for
/// tests with hand-computed optima.
buffer_library single_buffer_library();

/// Parameterized large library for the multi-type (Li-Shi) studies: `size`
/// repeaters spanning the x1..x64 drive range on a geometric grid, with the
/// usual cap-for-resistance trade (cap up, res and delay down as drive
/// grows). Every fourth entry is a skewed variant (same drive, higher
/// intrinsic delay, slightly lower cap -- the rise/fall-skewed cells of a
/// real library) and every eighth an "inverting" variant with an extra
/// stage's delay, so resistances repeat across variants and the type order
/// has genuine ties. Deterministic in (size, seed); seed perturbs the
/// characteristics a few percent so different seeds give distinct libraries.
/// size must be in [1, 1024].
buffer_library make_parameterized_library(std::size_t size,
                                          std::uint32_t seed = 1);

}  // namespace vabi::timing
