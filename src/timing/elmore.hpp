// Elmore evaluation of a *fixed* buffered tree.
//
// This is the ground-truth engine: given a routing tree, a concrete buffer
// assignment, and (optionally) per-instance device values -- e.g. one
// Monte-Carlo draw of every buffer's C_b / T_b -- it computes the exact
// Elmore required arrival time at the root by one bottom-up pass, applying
// the same recurrences as the DP key operations (eqs. 25-30).
//
// The variation-aware experiments use it two ways:
//   - with nominal device values, to verify the DP's bookkeeping;
//   - with sampled device values, to validate the canonical-form RAT PDF
//     against Monte Carlo (paper Fig. 6) and to measure timing yield of a
//     design under the full variation model.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "timing/buffer_library.hpp"
#include "timing/wire_model.hpp"
#include "timing/wire_sizing.hpp"
#include "tree/routing_tree.hpp"

namespace vabi::timing {

/// Which buffer (if any) is placed at each tree node. A buffer at node t
/// drives t's subtree and presents its input capacitance upstream.
class buffer_assignment {
 public:
  buffer_assignment() = default;
  explicit buffer_assignment(std::size_t num_nodes)
      : buffer_at_(num_nodes, no_buffer) {}

  static constexpr std::int32_t no_buffer = -1;

  bool has_buffer(tree::node_id n) const {
    return buffer_at_[n] != no_buffer;
  }
  buffer_index buffer(tree::node_id n) const {
    return static_cast<buffer_index>(buffer_at_[n]);
  }
  void place(tree::node_id n, buffer_index b) {
    buffer_at_[n] = static_cast<std::int32_t>(b);
  }
  void remove(tree::node_id n) { buffer_at_[n] = no_buffer; }

  std::size_t num_nodes() const { return buffer_at_.size(); }
  std::size_t count() const;

  /// Buffer count per library type (indexed by buffer_index).
  std::vector<std::size_t> histogram(std::size_t num_types) const;

 private:
  std::vector<std::int32_t> buffer_at_;
};

/// Concrete characteristics of one buffer instance (one MC draw or nominal).
struct device_values {
  double cap_pf = 0.0;
  double delay_ps = 0.0;
  double res_ohm = 0.0;
};

/// Callback supplying the instance values of the buffer at node `n` of type
/// `b`. Used to inject Monte-Carlo draws.
using device_value_fn =
    std::function<device_values(tree::node_id n, buffer_index b)>;

struct elmore_result {
  double root_rat_ps = 0.0;   ///< RAT at the source, after the driver
  double root_load_pf = 0.0;  ///< load presented to the driver
};

/// Evaluates the buffered tree bottom-up. `driver_res_ohm` is the source
/// driver's output resistance (its delay r_d * load is charged against the
/// root RAT). If `devices` is null, nominal library values are used.
elmore_result evaluate_buffered_tree(const tree::routing_tree& tree,
                                     const wire_model& wire,
                                     const buffer_library& library,
                                     const buffer_assignment& assignment,
                                     double driver_res_ohm,
                                     const device_value_fn& devices = nullptr);

/// Wire-sizing-aware evaluation: each edge uses the wire variant selected by
/// `widths` from `menu` (edges beyond widths.num_nodes() use variant 0).
elmore_result evaluate_buffered_tree(const tree::routing_tree& tree,
                                     const wire_menu& menu,
                                     const wire_assignment& widths,
                                     const buffer_library& library,
                                     const buffer_assignment& assignment,
                                     double driver_res_ohm,
                                     const device_value_fn& devices = nullptr);

}  // namespace vabi::timing
