#include "timing/elmore.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace vabi::timing {

std::size_t buffer_assignment::count() const {
  return static_cast<std::size_t>(
      std::count_if(buffer_at_.begin(), buffer_at_.end(),
                    [](std::int32_t b) { return b != no_buffer; }));
}

std::vector<std::size_t> buffer_assignment::histogram(
    std::size_t num_types) const {
  std::vector<std::size_t> h(num_types, 0);
  for (std::int32_t b : buffer_at_) {
    if (b != no_buffer) ++h.at(static_cast<std::size_t>(b));
  }
  return h;
}

elmore_result evaluate_buffered_tree(const tree::routing_tree& tree,
                                     const wire_model& wire,
                                     const buffer_library& library,
                                     const buffer_assignment& assignment,
                                     double driver_res_ohm,
                                     const device_value_fn& devices) {
  return evaluate_buffered_tree(tree, wire_menu{wire}, wire_assignment{},
                                library, assignment, driver_res_ohm, devices);
}

elmore_result evaluate_buffered_tree(const tree::routing_tree& tree,
                                     const wire_menu& menu,
                                     const wire_assignment& widths,
                                     const buffer_library& library,
                                     const buffer_assignment& assignment,
                                     double driver_res_ohm,
                                     const device_value_fn& devices) {
  if (assignment.num_nodes() != tree.num_nodes()) {
    throw std::invalid_argument(
        "evaluate_buffered_tree: assignment size mismatch");
  }
  std::vector<double> load(tree.num_nodes(), 0.0);
  std::vector<double> rat(tree.num_nodes(),
                          std::numeric_limits<double>::infinity());

  for (tree::node_id id : tree.postorder()) {
    const auto& n = tree.node(id);
    if (n.is_sink()) {
      load[id] = n.sink_cap_pf;
      rat[id] = n.sink_rat_ps;
    } else {
      double l = 0.0;
      double t = std::numeric_limits<double>::infinity();
      for (tree::node_id c : n.children) {
        const double wl = tree.node(c).parent_wire_um;
        const wire_model& wire = menu[widths.width(c)];
        l += load[c] + wire.wire_cap(wl);                 // eq. 25 / 29
        t = std::min(t, rat[c] - wire.wire_delay(wl, load[c]));  // eq. 26 / 30
      }
      load[id] = l;
      rat[id] = t;
    }
    if (assignment.has_buffer(id)) {
      if (n.is_source()) {
        throw std::invalid_argument(
            "evaluate_buffered_tree: buffer at the source is not legal");
      }
      const buffer_index b = assignment.buffer(id);
      if (b >= library.size()) {
        throw std::out_of_range("evaluate_buffered_tree: bad buffer index");
      }
      device_values dv;
      if (devices) {
        dv = devices(id, b);
      } else {
        dv = {library[b].cap_pf, library[b].delay_ps, library[b].res_ohm};
      }
      rat[id] = rat[id] - dv.delay_ps - dv.res_ohm * load[id];  // eq. 28
      load[id] = dv.cap_pf;                                     // eq. 27
    }
  }

  const tree::node_id root = tree.root();
  return {rat[root] - driver_res_ohm * load[root], load[root]};
}

}  // namespace vabi::timing
