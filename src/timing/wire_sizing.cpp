#include "timing/wire_sizing.hpp"

#include <stdexcept>

namespace vabi::timing {

wire_menu::wire_menu(const wire_model& base)
    : variants_{base}, multipliers_{1.0} {
  base.validate();
}

wire_menu::wire_menu(const wire_model& base,
                     const std::vector<double>& multipliers,
                     double fringe_cap_per_um)
    : multipliers_(multipliers) {
  base.validate();
  if (multipliers.empty()) {
    throw std::invalid_argument("wire_menu: empty multiplier list");
  }
  if (fringe_cap_per_um < 0.0) {
    throw std::invalid_argument("wire_menu: negative fringe capacitance");
  }
  variants_.reserve(multipliers.size());
  for (const double m : multipliers) {
    if (m <= 0.0) {
      throw std::invalid_argument("wire_menu: width multiplier must be > 0");
    }
    variants_.push_back(wire_model{base.res_per_um / m,
                                   base.cap_per_um * m + fringe_cap_per_um});
  }
}

std::size_t wire_assignment::count_nondefault() const {
  std::size_t n = 0;
  for (const width_index w : width_at_) {
    if (w != 0) ++n;
  }
  return n;
}

std::vector<std::size_t> wire_assignment::histogram(
    std::size_t menu_size) const {
  std::vector<std::size_t> h(menu_size, 0);
  for (const width_index w : width_at_) ++h.at(w);
  return h;
}

}  // namespace vabi::timing
