// Wire sizing support.
//
// Reference [8] of the paper (He, Kahng, Tam, Xiong, ISPD'05) extends the
// same DP to *simultaneous buffer insertion and wire sizing*: every wire may
// pick a width from a discrete menu, trading resistance (narrower = more R)
// against capacitance (wider = more C). This module provides the width menu
// and the per-edge width assignment; the DP engines enumerate widths during
// wire propagation exactly as they enumerate buffer types at positions.
//
// Width w scales the base wire as r/w and c*w (plus an optional constant
// fringe term that does not scale), which is the standard first-order model.
#pragma once

#include <cstdint>
#include <vector>

#include "timing/wire_model.hpp"
#include "tree/routing_tree.hpp"

namespace vabi::timing {

/// Index into a wire-width menu.
using width_index = std::uint32_t;

/// Discrete menu of wire variants derived from a base wire model.
class wire_menu {
 public:
  /// Single-width menu (no sizing): just the base wire.
  explicit wire_menu(const wire_model& base);

  /// Menu with one variant per width multiplier. Multipliers must be > 0;
  /// `fringe_cap_per_um` is added to every variant unscaled.
  wire_menu(const wire_model& base, const std::vector<double>& multipliers,
            double fringe_cap_per_um = 0.0);

  std::size_t size() const { return variants_.size(); }
  bool sizing_enabled() const { return variants_.size() > 1; }
  const wire_model& operator[](width_index w) const { return variants_[w]; }
  double multiplier(width_index w) const { return multipliers_[w]; }

 private:
  std::vector<wire_model> variants_;
  std::vector<double> multipliers_;
};

/// Chosen width per tree edge (indexed by the edge's child node id).
class wire_assignment {
 public:
  wire_assignment() = default;
  explicit wire_assignment(std::size_t num_nodes) : width_at_(num_nodes, 0) {}

  width_index width(tree::node_id n) const {
    return n < width_at_.size() ? width_at_[n] : 0;
  }
  void set(tree::node_id n, width_index w) { width_at_[n] = w; }
  std::size_t num_nodes() const { return width_at_.size(); }

  /// Number of edges assigned a non-default (non-zero-index) width.
  std::size_t count_nondefault() const;

  /// Histogram over width indices (size `menu_size`).
  std::vector<std::size_t> histogram(std::size_t menu_size) const;

 private:
  std::vector<width_index> width_at_;
};

}  // namespace vabi::timing
