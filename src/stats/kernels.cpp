#include "stats/kernels.hpp"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <cstring>
#include <new>
#include <string>
#include <utility>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define VABI_X86 1
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#define VABI_NEON 1
#endif

namespace vabi::stats::kernels {

namespace {

// Canonical mask bytes: 0x00 absent, 0xFF present. SIMD compare results can
// be stored back verbatim and sign-extension turns a byte into a full
// 64-bit lane mask.
constexpr std::uint8_t k_present = 0xFF;

// ---------------------------------------------------------------------------
// Scalar kernels -- the reference semantics every ISA must reproduce.
// ---------------------------------------------------------------------------

void s_blend_planes(double sa, const double* a, const std::uint8_t* ma,
                    double sb, const double* b, const std::uint8_t* mb,
                    double* c, std::uint8_t* mc, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const bool pa = ma[i] != 0;
    const bool pb = mb[i] != 0;
    double ci = 0.0;
    if (pa && pb) {
      // Exactly the sparse both-present expression (sa*a_i) + (sb*b_i).
      ci = sa * a[i] + sb * b[i];
    } else if (pa) {
      ci = sa * a[i];
    } else if (pb) {
      ci = sb * b[i];
    }
    c[i] = ci;
    mc[i] = (pa || pb) ? k_present : 0;
  }
}

void s_scale_plane(double s, const double* a, const std::uint8_t* ma,
                   double* c, std::uint8_t* mc, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const bool pa = ma[i] != 0;
    c[i] = pa ? s * a[i] : 0.0;
    mc[i] = pa ? k_present : 0;
  }
}

double s_max_abs_plane(const double* c, std::size_t n) {
  double m = 0.0;
  for (std::size_t i = 0; i < n; ++i) m = std::max(m, std::abs(c[i]));
  return m;
}

void s_drop_small_plane(double* c, std::uint8_t* mc, double thr,
                        std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (!(std::abs(c[i]) > thr)) {
      c[i] = 0.0;
      mc[i] = 0;
    }
  }
}

double s_variance_plane(const double* a, const double* s2, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * a[i] * s2[i];
  return acc;
}

pair_result s_moments2_planes(const double* a, const double* b,
                              const double* s2, std::size_t n) {
  double va = 0.0;
  double vb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    va += a[i] * a[i] * s2[i];
    vb += b[i] * b[i] * s2[i];
  }
  return {va, vb};
}

double s_covariance_planes(const double* a, const double* b, const double* s2,
                           std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i] * s2[i];
  return acc;
}

double s_sigma_diff_sq_planes(const double* a, const double* b,
                              const double* s2, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    acc += d * d * s2[i];
  }
  return acc;
}

bool s_planes_equal(const double* a, const std::uint8_t* ma, const double* b,
                    const std::uint8_t* mb, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if ((ma[i] != 0) != (mb[i] != 0)) return false;
    // Absent slots are canonical 0.0 on both sides, so the numeric compare
    // (IEEE ==, -0.0 equal to +0.0 like the sparse path) covers every slot.
    if (a[i] != b[i]) return false;
  }
  return true;
}

std::size_t s_popcount_mask(const std::uint8_t* m, std::size_t n) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) count += m[i] != 0 ? 1 : 0;
  return count;
}

std::size_t s_argmax_buffered_row(const double* rats, const double* loads,
                                  double d, double R, std::size_t n) {
  double best = -std::numeric_limits<double>::infinity();
  std::size_t bk = static_cast<std::size_t>(-1);
  for (std::size_t k = 0; k < n; ++k) {
    const double v = rats[k] - d - R * loads[k];
    if (v > best) {
      best = v;
      bk = k;
    }
  }
  return bk;
}

// One-vs-many reference forms: per row, exactly the one-plane reduction
// above (same single left-to-right chain).

void s_variance_rows(const double* const* rows, std::size_t m,
                     const double* s2, std::size_t n, double* out) {
  for (std::size_t j = 0; j < m; ++j) out[j] = s_variance_plane(rows[j], s2, n);
}

void s_covariance_row_tile(const double* x, const double* const* rows,
                           std::size_t m, const double* s2, std::size_t n,
                           double* out) {
  for (std::size_t j = 0; j < m; ++j) {
    out[j] = s_covariance_planes(x, rows[j], s2, n);
  }
}

void s_sigma_diff_sq_row_tile(const double* x, const double* const* rows,
                              std::size_t m, const double* s2, std::size_t n,
                              double* out) {
  for (std::size_t j = 0; j < m; ++j) {
    out[j] = s_sigma_diff_sq_planes(x, rows[j], s2, n);
  }
}

// The exact branch ladder of prob_less_at_least (core/pruning.cpp): a NaN in
// any operand fails every comparison and yields 2 (exact pass), like the
// scalar prefilter's fall-through.
void s_prefilter_row_tile(const double* mu_d, const double* sigma_x,
                          const double* sigma_y, std::size_t m, double z_hi,
                          double z_lo, std::uint8_t* verdict) {
  for (std::size_t j = 0; j < m; ++j) {
    if (mu_d[j] > z_hi * (sigma_x[j] + sigma_y[j])) {
      verdict[j] = 1;
    } else if (mu_d[j] < 0.0 ||
               mu_d[j] < z_lo * std::abs(sigma_x[j] - sigma_y[j])) {
      verdict[j] = 0;
    } else {
      verdict[j] = 2;
    }
  }
}

constexpr kernel_table k_scalar_table = {
    kernel_isa::scalar,     s_blend_planes,       s_scale_plane,
    s_max_abs_plane,        s_drop_small_plane,   s_variance_plane,
    s_moments2_planes,      s_covariance_planes,  s_sigma_diff_sq_planes,
    s_planes_equal,         s_popcount_mask,      s_argmax_buffered_row,
    s_variance_rows,        s_covariance_row_tile,
    s_sigma_diff_sq_row_tile,                     s_prefilter_row_tile,
};

// ---------------------------------------------------------------------------
// x86-64: SSE2 (baseline) and AVX2 (runtime-detected, per-function target
// attributes so the rest of the binary keeps the portable baseline).
// ---------------------------------------------------------------------------

#ifdef VABI_X86

// Loads `w` mask bytes (w = 2 or 4) as a packed integer without aliasing UB.
inline std::uint32_t load_mask_u32(const std::uint8_t* m) {
  std::uint32_t v;
  std::memcpy(&v, m, sizeof v);
  return v;
}
inline std::uint16_t load_mask_u16(const std::uint8_t* m) {
  std::uint16_t v;
  std::memcpy(&v, m, sizeof v);
  return v;
}

void sse2_blend_planes(double sa, const double* a, const std::uint8_t* ma,
                       double sb, const double* b, const std::uint8_t* mb,
                       double* c, std::uint8_t* mc, std::size_t n) {
  const __m128d vsa = _mm_set1_pd(sa);
  const __m128d vsb = _mm_set1_pd(sb);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    // Sign-extend two canonical mask bytes into two 64-bit lane masks.
    const __m128i mba = _mm_set_epi64x(ma[i + 1] ? -1 : 0, ma[i] ? -1 : 0);
    const __m128i mbb = _mm_set_epi64x(mb[i + 1] ? -1 : 0, mb[i] ? -1 : 0);
    const __m128d vma = _mm_castsi128_pd(mba);
    const __m128d vmb = _mm_castsi128_pd(mbb);
    const __m128d pa = _mm_mul_pd(vsa, _mm_loadu_pd(a + i));
    const __m128d pb = _mm_mul_pd(vsb, _mm_loadu_pd(b + i));
    const __m128d sum = _mm_add_pd(pa, pb);
    const __m128d both = _mm_and_pd(vma, vmb);
    const __m128d only_a = _mm_andnot_pd(vmb, vma);
    const __m128d only_b = _mm_andnot_pd(vma, vmb);
    const __m128d out = _mm_or_pd(
        _mm_and_pd(both, sum),
        _mm_or_pd(_mm_and_pd(only_a, pa), _mm_and_pd(only_b, pb)));
    _mm_storeu_pd(c + i, out);
    const std::uint16_t mu = load_mask_u16(ma + i) | load_mask_u16(mb + i);
    std::memcpy(mc + i, &mu, sizeof mu);
  }
  if (i < n) s_blend_planes(sa, a + i, ma + i, sb, b + i, mb + i, c + i,
                            mc + i, n - i);
}

void sse2_scale_plane(double s, const double* a, const std::uint8_t* ma,
                      double* c, std::uint8_t* mc, std::size_t n) {
  const __m128d vs = _mm_set1_pd(s);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i mba = _mm_set_epi64x(ma[i + 1] ? -1 : 0, ma[i] ? -1 : 0);
    const __m128d vma = _mm_castsi128_pd(mba);
    const __m128d out =
        _mm_and_pd(vma, _mm_mul_pd(vs, _mm_loadu_pd(a + i)));
    _mm_storeu_pd(c + i, out);
    const std::uint16_t mu = load_mask_u16(ma + i);
    std::memcpy(mc + i, &mu, sizeof mu);
  }
  if (i < n) s_scale_plane(s, a + i, ma + i, c + i, mc + i, n - i);
}

double sse2_max_abs_plane(const double* c, std::size_t n) {
  const __m128d sign = _mm_set1_pd(-0.0);
  __m128d vm = _mm_setzero_pd();
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vm = _mm_max_pd(vm, _mm_andnot_pd(sign, _mm_loadu_pd(c + i)));
  }
  double lanes[2];
  _mm_storeu_pd(lanes, vm);
  double m = std::max(lanes[0], lanes[1]);
  for (; i < n; ++i) m = std::max(m, std::abs(c[i]));
  return m;
}

void sse2_drop_small_plane(double* c, std::uint8_t* mc, double thr,
                           std::size_t n) {
  const __m128d sign = _mm_set1_pd(-0.0);
  const __m128d vthr = _mm_set1_pd(thr);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d vc = _mm_loadu_pd(c + i);
    const __m128d keep = _mm_cmpgt_pd(_mm_andnot_pd(sign, vc), vthr);
    _mm_storeu_pd(c + i, _mm_and_pd(keep, vc));
    const int bits = _mm_movemask_pd(keep);
    mc[i] = (bits & 1) ? mc[i] : 0;
    mc[i + 1] = (bits & 2) ? mc[i + 1] : 0;
  }
  if (i < n) s_drop_small_plane(c + i, mc + i, thr, n - i);
}

bool sse2_planes_equal(const double* a, const std::uint8_t* ma,
                       const double* b, const std::uint8_t* mb,
                       std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    if (load_mask_u16(ma + i) != load_mask_u16(mb + i)) return false;
    const __m128d eq = _mm_cmpeq_pd(_mm_loadu_pd(a + i), _mm_loadu_pd(b + i));
    if (_mm_movemask_pd(eq) != 0x3) return false;
  }
  return i >= n || s_planes_equal(a + i, ma + i, b + i, mb + i, n - i);
}

const kernel_table k_sse2_table = {
    kernel_isa::sse2,       sse2_blend_planes,    sse2_scale_plane,
    sse2_max_abs_plane,     sse2_drop_small_plane, s_variance_plane,
    s_moments2_planes,      s_covariance_planes,  s_sigma_diff_sq_planes,
    sse2_planes_equal,      s_popcount_mask,      s_argmax_buffered_row,
    s_variance_rows,        s_covariance_row_tile,
    s_sigma_diff_sq_row_tile,                     s_prefilter_row_tile,
};

__attribute__((target("avx2"))) void avx2_blend_planes(
    double sa, const double* a, const std::uint8_t* ma, double sb,
    const double* b, const std::uint8_t* mb, double* c, std::uint8_t* mc,
    std::size_t n) {
  const __m256d vsa = _mm256_set1_pd(sa);
  const __m256d vsb = _mm256_set1_pd(sb);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // Four canonical mask bytes -> four sign-extended 64-bit lane masks.
    const __m128i ba =
        _mm_cvtsi32_si128(static_cast<int>(load_mask_u32(ma + i)));
    const __m128i bb =
        _mm_cvtsi32_si128(static_cast<int>(load_mask_u32(mb + i)));
    const __m256d vma = _mm256_castsi256_pd(_mm256_cvtepi8_epi64(ba));
    const __m256d vmb = _mm256_castsi256_pd(_mm256_cvtepi8_epi64(bb));
    const __m256d pa = _mm256_mul_pd(vsa, _mm256_loadu_pd(a + i));
    const __m256d pb = _mm256_mul_pd(vsb, _mm256_loadu_pd(b + i));
    const __m256d sum = _mm256_add_pd(pa, pb);
    const __m256d both = _mm256_and_pd(vma, vmb);
    const __m256d only_a = _mm256_andnot_pd(vmb, vma);
    const __m256d only_b = _mm256_andnot_pd(vma, vmb);
    const __m256d out = _mm256_or_pd(
        _mm256_and_pd(both, sum),
        _mm256_or_pd(_mm256_and_pd(only_a, pa), _mm256_and_pd(only_b, pb)));
    _mm256_storeu_pd(c + i, out);
    const std::uint32_t mu = load_mask_u32(ma + i) | load_mask_u32(mb + i);
    std::memcpy(mc + i, &mu, sizeof mu);
  }
  if (i < n) s_blend_planes(sa, a + i, ma + i, sb, b + i, mb + i, c + i,
                            mc + i, n - i);
}

__attribute__((target("avx2"))) void avx2_scale_plane(
    double s, const double* a, const std::uint8_t* ma, double* c,
    std::uint8_t* mc, std::size_t n) {
  const __m256d vs = _mm256_set1_pd(s);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i ba =
        _mm_cvtsi32_si128(static_cast<int>(load_mask_u32(ma + i)));
    const __m256d vma = _mm256_castsi256_pd(_mm256_cvtepi8_epi64(ba));
    const __m256d out =
        _mm256_and_pd(vma, _mm256_mul_pd(vs, _mm256_loadu_pd(a + i)));
    _mm256_storeu_pd(c + i, out);
    const std::uint32_t mu = load_mask_u32(ma + i);
    std::memcpy(mc + i, &mu, sizeof mu);
  }
  if (i < n) s_scale_plane(s, a + i, ma + i, c + i, mc + i, n - i);
}

__attribute__((target("avx2"))) double avx2_max_abs_plane(const double* c,
                                                          std::size_t n) {
  const __m256d sign = _mm256_set1_pd(-0.0);
  __m256d vm = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vm = _mm256_max_pd(vm, _mm256_andnot_pd(sign, _mm256_loadu_pd(c + i)));
  }
  double lanes[4];
  _mm256_storeu_pd(lanes, vm);
  double m = std::max(std::max(lanes[0], lanes[1]),
                      std::max(lanes[2], lanes[3]));
  for (; i < n; ++i) m = std::max(m, std::abs(c[i]));
  return m;
}

__attribute__((target("avx2"))) void avx2_drop_small_plane(double* c,
                                                           std::uint8_t* mc,
                                                           double thr,
                                                           std::size_t n) {
  const __m256d sign = _mm256_set1_pd(-0.0);
  const __m256d vthr = _mm256_set1_pd(thr);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vc = _mm256_loadu_pd(c + i);
    const __m256d keep =
        _mm256_cmp_pd(_mm256_andnot_pd(sign, vc), vthr, _CMP_GT_OQ);
    _mm256_storeu_pd(c + i, _mm256_and_pd(keep, vc));
    const int bits = _mm256_movemask_pd(keep);
    for (int k = 0; k < 4; ++k) {
      if ((bits & (1 << k)) == 0) mc[i + static_cast<std::size_t>(k)] = 0;
    }
  }
  if (i < n) s_drop_small_plane(c + i, mc + i, thr, n - i);
}

// Reductions keep the bit-identity contract by vectorizing only the
// *products* (_mm256_mul_pd rounds each lane exactly like the scalar `*`)
// and feeding them through the same single left-to-right add chain as the
// scalar kernels. The chain is the latency floor either way; lifting the
// multiplies off it is what the vector forms buy.
__attribute__((target("avx2"))) double avx2_variance_plane(const double* a,
                                                           const double* s2,
                                                           std::size_t n) {
  double acc = 0.0;
  alignas(32) double t[8];
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d va0 = _mm256_loadu_pd(a + i);
    const __m256d va1 = _mm256_loadu_pd(a + i + 4);
    _mm256_store_pd(t, _mm256_mul_pd(_mm256_mul_pd(va0, va0),
                                     _mm256_loadu_pd(s2 + i)));
    _mm256_store_pd(t + 4, _mm256_mul_pd(_mm256_mul_pd(va1, va1),
                                         _mm256_loadu_pd(s2 + i + 4)));
    for (int k = 0; k < 8; ++k) acc += t[k];
  }
  for (; i < n; ++i) acc += a[i] * a[i] * s2[i];
  return acc;
}

__attribute__((target("avx2"))) pair_result avx2_moments2_planes(
    const double* a, const double* b, const double* s2, std::size_t n) {
  double va = 0.0;
  double vb = 0.0;
  alignas(32) double ta[4];
  alignas(32) double tb[4];
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vs2 = _mm256_loadu_pd(s2 + i);
    const __m256d xa = _mm256_loadu_pd(a + i);
    const __m256d xb = _mm256_loadu_pd(b + i);
    _mm256_store_pd(ta, _mm256_mul_pd(_mm256_mul_pd(xa, xa), vs2));
    _mm256_store_pd(tb, _mm256_mul_pd(_mm256_mul_pd(xb, xb), vs2));
    for (int k = 0; k < 4; ++k) {
      va += ta[k];
      vb += tb[k];
    }
  }
  for (; i < n; ++i) {
    va += a[i] * a[i] * s2[i];
    vb += b[i] * b[i] * s2[i];
  }
  return {va, vb};
}

__attribute__((target("avx2"))) double avx2_covariance_planes(
    const double* a, const double* b, const double* s2, std::size_t n) {
  double acc = 0.0;
  alignas(32) double t[4];
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d p =
        _mm256_mul_pd(_mm256_mul_pd(_mm256_loadu_pd(a + i),
                                    _mm256_loadu_pd(b + i)),
                      _mm256_loadu_pd(s2 + i));
    _mm256_store_pd(t, p);
    acc += t[0];
    acc += t[1];
    acc += t[2];
    acc += t[3];
  }
  for (; i < n; ++i) acc += a[i] * b[i] * s2[i];
  return acc;
}

__attribute__((target("avx2"))) double avx2_sigma_diff_sq_planes(
    const double* a, const double* b, const double* s2, std::size_t n) {
  double acc = 0.0;
  alignas(32) double t[4];
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    const __m256d p =
        _mm256_mul_pd(_mm256_mul_pd(d, d), _mm256_loadu_pd(s2 + i));
    _mm256_store_pd(t, p);
    acc += t[0];
    acc += t[1];
    acc += t[2];
    acc += t[3];
  }
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    acc += d * d * s2[i];
  }
  return acc;
}

__attribute__((target("avx2"))) bool avx2_planes_equal(
    const double* a, const std::uint8_t* ma, const double* b,
    const std::uint8_t* mb, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if (load_mask_u32(ma + i) != load_mask_u32(mb + i)) return false;
    const __m256d eq = _mm256_cmp_pd(_mm256_loadu_pd(a + i),
                                     _mm256_loadu_pd(b + i), _CMP_EQ_OQ);
    if (_mm256_movemask_pd(eq) != 0xF) return false;
  }
  return i >= n || s_planes_equal(a + i, ma + i, b + i, mb + i, n - i);
}

// The argmax update keeps per-lane state: lane l holds the max over indices
// congruent to l (mod 4) together with the *smallest* index attaining it
// (strictly-greater never replaces on ties). The final reduction takes the
// lexicographic (max value, min index) over lanes plus the scalar tail,
// which is exactly the scalar leftmost rule. GT is the ordered quiet
// compare, so NaN keys never win -- also exactly the scalar `>`.
__attribute__((target("avx2"))) std::size_t avx2_argmax_buffered_row(
    const double* rats, const double* loads, double d, double R,
    std::size_t n) {
  double best = -std::numeric_limits<double>::infinity();
  std::size_t bk = static_cast<std::size_t>(-1);
  std::size_t i = 0;
  if (n >= 8) {
    const __m256d vd = _mm256_set1_pd(d);
    const __m256d vr = _mm256_set1_pd(R);
    __m256d vbest = _mm256_set1_pd(-std::numeric_limits<double>::infinity());
    __m256i vidx = _mm256_set1_epi64x(-1);
    __m256i cur = _mm256_setr_epi64x(0, 1, 2, 3);
    const __m256i step = _mm256_set1_epi64x(4);
    for (; i + 4 <= n; i += 4) {
      const __m256d v = _mm256_sub_pd(
          _mm256_sub_pd(_mm256_loadu_pd(rats + i), vd),
          _mm256_mul_pd(vr, _mm256_loadu_pd(loads + i)));
      const __m256d gt = _mm256_cmp_pd(v, vbest, _CMP_GT_OQ);
      vbest = _mm256_blendv_pd(vbest, v, gt);
      vidx = _mm256_castpd_si256(_mm256_blendv_pd(
          _mm256_castsi256_pd(vidx), _mm256_castsi256_pd(cur), gt));
      cur = _mm256_add_epi64(cur, step);
    }
    alignas(32) double lane_val[4];
    alignas(32) std::int64_t lane_idx[4];
    _mm256_store_pd(lane_val, vbest);
    _mm256_store_si256(reinterpret_cast<__m256i*>(lane_idx), vidx);
    for (int l = 0; l < 4; ++l) {
      if (lane_idx[l] < 0) continue;  // lane never saw a key > -inf
      const std::size_t k = static_cast<std::size_t>(lane_idx[l]);
      if (lane_val[l] > best || (lane_val[l] == best && k < bk)) {
        best = lane_val[l];
        bk = k;
      }
    }
  }
  for (; i < n; ++i) {
    const double v = rats[i] - d - R * loads[i];
    if (v > best) {
      best = v;
      bk = i;
    }
  }
  return bk;
}

// The one-vs-many reductions process four rows per pass: four independent
// accumulator chains (one per row, each in seed id order -- nothing is
// reassociated) hide the FP-add latency a single chain is bound by, and the
// sigma^2 vector is loaded once per column block instead of once per row.
// Leftover rows fall back to the one-plane kernels, whose chains are
// identical.
__attribute__((target("avx2"))) void avx2_variance_rows(
    const double* const* rows, std::size_t m, const double* s2, std::size_t n,
    double* out) {
  std::size_t j = 0;
  for (; j + 4 <= m; j += 4) {
    const double* r0 = rows[j];
    const double* r1 = rows[j + 1];
    const double* r2 = rows[j + 2];
    const double* r3 = rows[j + 3];
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    alignas(32) double t0[4], t1[4], t2[4], t3[4];
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const __m256d vs2 = _mm256_loadu_pd(s2 + i);
      const __m256d x0 = _mm256_loadu_pd(r0 + i);
      const __m256d x1 = _mm256_loadu_pd(r1 + i);
      const __m256d x2 = _mm256_loadu_pd(r2 + i);
      const __m256d x3 = _mm256_loadu_pd(r3 + i);
      _mm256_store_pd(t0, _mm256_mul_pd(_mm256_mul_pd(x0, x0), vs2));
      _mm256_store_pd(t1, _mm256_mul_pd(_mm256_mul_pd(x1, x1), vs2));
      _mm256_store_pd(t2, _mm256_mul_pd(_mm256_mul_pd(x2, x2), vs2));
      _mm256_store_pd(t3, _mm256_mul_pd(_mm256_mul_pd(x3, x3), vs2));
      for (int k = 0; k < 4; ++k) {
        a0 += t0[k];
        a1 += t1[k];
        a2 += t2[k];
        a3 += t3[k];
      }
    }
    for (; i < n; ++i) {
      a0 += r0[i] * r0[i] * s2[i];
      a1 += r1[i] * r1[i] * s2[i];
      a2 += r2[i] * r2[i] * s2[i];
      a3 += r3[i] * r3[i] * s2[i];
    }
    out[j] = a0;
    out[j + 1] = a1;
    out[j + 2] = a2;
    out[j + 3] = a3;
  }
  for (; j < m; ++j) out[j] = avx2_variance_plane(rows[j], s2, n);
}

__attribute__((target("avx2"))) void avx2_covariance_row_tile(
    const double* x, const double* const* rows, std::size_t m,
    const double* s2, std::size_t n, double* out) {
  std::size_t j = 0;
  for (; j + 4 <= m; j += 4) {
    const double* r0 = rows[j];
    const double* r1 = rows[j + 1];
    const double* r2 = rows[j + 2];
    const double* r3 = rows[j + 3];
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    alignas(32) double t0[4], t1[4], t2[4], t3[4];
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const __m256d vx = _mm256_loadu_pd(x + i);
      const __m256d vs2 = _mm256_loadu_pd(s2 + i);
      // (x_i * r_i) * s2_i in the scalar association; hoisting x_i * s2_i
      // would round differently.
      _mm256_store_pd(
          t0, _mm256_mul_pd(_mm256_mul_pd(vx, _mm256_loadu_pd(r0 + i)), vs2));
      _mm256_store_pd(
          t1, _mm256_mul_pd(_mm256_mul_pd(vx, _mm256_loadu_pd(r1 + i)), vs2));
      _mm256_store_pd(
          t2, _mm256_mul_pd(_mm256_mul_pd(vx, _mm256_loadu_pd(r2 + i)), vs2));
      _mm256_store_pd(
          t3, _mm256_mul_pd(_mm256_mul_pd(vx, _mm256_loadu_pd(r3 + i)), vs2));
      for (int k = 0; k < 4; ++k) {
        a0 += t0[k];
        a1 += t1[k];
        a2 += t2[k];
        a3 += t3[k];
      }
    }
    for (; i < n; ++i) {
      a0 += x[i] * r0[i] * s2[i];
      a1 += x[i] * r1[i] * s2[i];
      a2 += x[i] * r2[i] * s2[i];
      a3 += x[i] * r3[i] * s2[i];
    }
    out[j] = a0;
    out[j + 1] = a1;
    out[j + 2] = a2;
    out[j + 3] = a3;
  }
  for (; j < m; ++j) out[j] = avx2_covariance_planes(x, rows[j], s2, n);
}

__attribute__((target("avx2"))) void avx2_sigma_diff_sq_row_tile(
    const double* x, const double* const* rows, std::size_t m,
    const double* s2, std::size_t n, double* out) {
  std::size_t j = 0;
  for (; j + 4 <= m; j += 4) {
    const double* r0 = rows[j];
    const double* r1 = rows[j + 1];
    const double* r2 = rows[j + 2];
    const double* r3 = rows[j + 3];
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    alignas(32) double t0[4], t1[4], t2[4], t3[4];
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const __m256d vx = _mm256_loadu_pd(x + i);
      const __m256d vs2 = _mm256_loadu_pd(s2 + i);
      const __m256d d0 = _mm256_sub_pd(vx, _mm256_loadu_pd(r0 + i));
      const __m256d d1 = _mm256_sub_pd(vx, _mm256_loadu_pd(r1 + i));
      const __m256d d2 = _mm256_sub_pd(vx, _mm256_loadu_pd(r2 + i));
      const __m256d d3 = _mm256_sub_pd(vx, _mm256_loadu_pd(r3 + i));
      _mm256_store_pd(t0, _mm256_mul_pd(_mm256_mul_pd(d0, d0), vs2));
      _mm256_store_pd(t1, _mm256_mul_pd(_mm256_mul_pd(d1, d1), vs2));
      _mm256_store_pd(t2, _mm256_mul_pd(_mm256_mul_pd(d2, d2), vs2));
      _mm256_store_pd(t3, _mm256_mul_pd(_mm256_mul_pd(d3, d3), vs2));
      for (int k = 0; k < 4; ++k) {
        a0 += t0[k];
        a1 += t1[k];
        a2 += t2[k];
        a3 += t3[k];
      }
    }
    for (; i < n; ++i) {
      const double e0 = x[i] - r0[i];
      const double e1 = x[i] - r1[i];
      const double e2 = x[i] - r2[i];
      const double e3 = x[i] - r3[i];
      a0 += e0 * e0 * s2[i];
      a1 += e1 * e1 * s2[i];
      a2 += e2 * e2 * s2[i];
      a3 += e3 * e3 * s2[i];
    }
    out[j] = a0;
    out[j + 1] = a1;
    out[j + 2] = a2;
    out[j + 3] = a3;
  }
  for (; j < m; ++j) out[j] = avx2_sigma_diff_sq_planes(x, rows[j], s2, n);
}

const kernel_table k_avx2_table = {
    kernel_isa::avx2,       avx2_blend_planes,    avx2_scale_plane,
    avx2_max_abs_plane,     avx2_drop_small_plane, avx2_variance_plane,
    avx2_moments2_planes,   avx2_covariance_planes,
    avx2_sigma_diff_sq_planes,
    avx2_planes_equal,      s_popcount_mask,      avx2_argmax_buffered_row,
    avx2_variance_rows,     avx2_covariance_row_tile,
    avx2_sigma_diff_sq_row_tile,
    // The prefilter is branch logic over a handful of doubles (tile width =
    // the sweep window); the scalar ladder is already optimal and keeps the
    // verdict order trivially identical.
    s_prefilter_row_tile,
};

#endif  // VABI_X86

// ---------------------------------------------------------------------------
// aarch64 NEON (baseline on that target).
// ---------------------------------------------------------------------------

#ifdef VABI_NEON

inline uint64x2_t neon_mask2(const std::uint8_t* m) {
  return vcombine_u64(vcreate_u64(m[0] ? ~0ull : 0ull),
                      vcreate_u64(m[1] ? ~0ull : 0ull));
}

void neon_blend_planes(double sa, const double* a, const std::uint8_t* ma,
                       double sb, const double* b, const std::uint8_t* mb,
                       double* c, std::uint8_t* mc, std::size_t n) {
  const float64x2_t vsa = vdupq_n_f64(sa);
  const float64x2_t vsb = vdupq_n_f64(sb);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t vma = neon_mask2(ma + i);
    const uint64x2_t vmb = neon_mask2(mb + i);
    const float64x2_t pa = vmulq_f64(vsa, vld1q_f64(a + i));
    const float64x2_t pb = vmulq_f64(vsb, vld1q_f64(b + i));
    const float64x2_t sum = vaddq_f64(pa, pb);
    // bsl(both, sum, bsl(ma, pa, pb)) then clear absent slots to 0.0.
    const uint64x2_t both = vandq_u64(vma, vmb);
    const uint64x2_t any = vorrq_u64(vma, vmb);
    float64x2_t out = vbslq_f64(vma, pa, pb);
    out = vbslq_f64(both, sum, out);
    out = vreinterpretq_f64_u64(
        vandq_u64(any, vreinterpretq_u64_f64(out)));
    vst1q_f64(c + i, out);
    mc[i] = (ma[i] | mb[i]) ? 0xFF : 0;
    mc[i + 1] = (ma[i + 1] | mb[i + 1]) ? 0xFF : 0;
  }
  if (i < n) s_blend_planes(sa, a + i, ma + i, sb, b + i, mb + i, c + i,
                            mc + i, n - i);
}

void neon_scale_plane(double s, const double* a, const std::uint8_t* ma,
                      double* c, std::uint8_t* mc, std::size_t n) {
  const float64x2_t vs = vdupq_n_f64(s);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t vma = neon_mask2(ma + i);
    const float64x2_t out = vreinterpretq_f64_u64(vandq_u64(
        vma, vreinterpretq_u64_f64(vmulq_f64(vs, vld1q_f64(a + i)))));
    vst1q_f64(c + i, out);
    mc[i] = ma[i] ? 0xFF : 0;
    mc[i + 1] = ma[i + 1] ? 0xFF : 0;
  }
  if (i < n) s_scale_plane(s, a + i, ma + i, c + i, mc + i, n - i);
}

double neon_max_abs_plane(const double* c, std::size_t n) {
  float64x2_t vm = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vm = vmaxq_f64(vm, vabsq_f64(vld1q_f64(c + i)));
  }
  double m = std::max(vgetq_lane_f64(vm, 0), vgetq_lane_f64(vm, 1));
  for (; i < n; ++i) m = std::max(m, std::abs(c[i]));
  return m;
}

const kernel_table k_neon_table = {
    kernel_isa::neon,       neon_blend_planes,    neon_scale_plane,
    neon_max_abs_plane,     s_drop_small_plane,   s_variance_plane,
    s_moments2_planes,      s_covariance_planes,  s_sigma_diff_sq_planes,
    s_planes_equal,         s_popcount_mask,      s_argmax_buffered_row,
    s_variance_rows,        s_covariance_row_tile,
    s_sigma_diff_sq_row_tile,                     s_prefilter_row_tile,
};

#endif  // VABI_NEON

kernel_isa best_available() {
#ifdef VABI_X86
  if (__builtin_cpu_supports("avx2")) return kernel_isa::avx2;
  return kernel_isa::sse2;
#elif defined(VABI_NEON)
  return kernel_isa::neon;
#else
  return kernel_isa::scalar;
#endif
}

std::atomic<const kernel_table*> g_active{nullptr};

const kernel_table* resolve(kernel_isa isa) {
  switch (isa) {
    case kernel_isa::scalar:
      return &k_scalar_table;
#ifdef VABI_X86
    case kernel_isa::sse2:
      return &k_sse2_table;
    case kernel_isa::avx2:
      if (__builtin_cpu_supports("avx2")) return &k_avx2_table;
      return &k_sse2_table;
#endif
#ifdef VABI_NEON
    case kernel_isa::neon:
      return &k_neon_table;
#endif
    default:
      return &k_scalar_table;
  }
}

kernel_isa parse_isa(const std::string& name, kernel_isa fallback) {
  if (name == "scalar") return kernel_isa::scalar;
  if (name == "sse2") return kernel_isa::sse2;
  if (name == "avx2") return kernel_isa::avx2;
  if (name == "neon") return kernel_isa::neon;
  return fallback;
}

const kernel_table* init_from_env() {
  kernel_isa isa = best_available();
  if (const char* env = std::getenv("VABI_FORCE_KERNEL")) {
    isa = parse_isa(env, isa);
  }
  return resolve(isa);
}

}  // namespace

const char* to_string(kernel_isa isa) {
  switch (isa) {
    case kernel_isa::scalar:
      return "scalar";
    case kernel_isa::sse2:
      return "sse2";
    case kernel_isa::avx2:
      return "avx2";
    case kernel_isa::neon:
      return "neon";
  }
  return "?";
}

const kernel_table& active() {
  const kernel_table* t = g_active.load(std::memory_order_acquire);
  if (t == nullptr) {
    t = init_from_env();
    const kernel_table* expected = nullptr;
    // First resolver wins; racing threads resolve to the same table anyway.
    if (!g_active.compare_exchange_strong(expected, t,
                                          std::memory_order_acq_rel)) {
      t = expected;
    }
  }
  return *t;
}

kernel_isa active_isa() { return active().isa; }

kernel_isa set_forced_isa(const char* name) {
  const kernel_table* t =
      (name == nullptr || *name == '\0')
          ? init_from_env()
          : resolve(parse_isa(name, best_available()));
  g_active.store(t, std::memory_order_release);
  return t->isa;
}

const kernel_table& table_for(kernel_isa isa) { return *resolve(isa); }

bool isa_available(kernel_isa isa) { return resolve(isa)->isa == isa; }

// ---------------------------------------------------------------------------
// aligned_doubles
// ---------------------------------------------------------------------------

aligned_doubles::aligned_doubles(const aligned_doubles& other) {
  if (other.size_ != 0) {
    data_ = static_cast<double*>(
        ::operator new(other.size_ * sizeof(double), std::align_val_t{64}));
    std::memcpy(data_, other.data_, other.size_ * sizeof(double));
    size_ = other.size_;
    cap_ = other.size_;
  }
}

aligned_doubles& aligned_doubles::operator=(const aligned_doubles& other) {
  if (this != &other) {
    aligned_doubles copy{other};
    *this = std::move(copy);
  }
  return *this;
}

aligned_doubles::aligned_doubles(aligned_doubles&& other) noexcept
    : data_{other.data_}, size_{other.size_}, cap_{other.cap_} {
  other.data_ = nullptr;
  other.size_ = 0;
  other.cap_ = 0;
}

aligned_doubles& aligned_doubles::operator=(aligned_doubles&& other) noexcept {
  if (this != &other) {
    release();
    data_ = other.data_;
    size_ = other.size_;
    cap_ = other.cap_;
    other.data_ = nullptr;
    other.size_ = 0;
    other.cap_ = 0;
  }
  return *this;
}

void aligned_doubles::push_back(double v) {
  if (size_ == cap_) {
    const std::size_t cap = cap_ == 0 ? 64 : cap_ * 2;
    double* p = static_cast<double*>(
        ::operator new(cap * sizeof(double), std::align_val_t{64}));
    if (size_ != 0) std::memcpy(p, data_, size_ * sizeof(double));
    release();
    data_ = p;
    cap_ = cap;
  }
  data_[size_++] = v;
}

double* aligned_doubles::grow(std::size_t count) {
  const std::size_t need = size_ + count;
  if (need > cap_) {
    std::size_t cap = cap_ == 0 ? 64 : cap_ * 2;
    if (cap < need) cap = need;
    double* p = static_cast<double*>(
        ::operator new(cap * sizeof(double), std::align_val_t{64}));
    if (size_ != 0) std::memcpy(p, data_, size_ * sizeof(double));
    release();
    data_ = p;
    cap_ = cap;
  }
  double* out = data_ + size_;
  size_ = need;
  return out;
}

void aligned_doubles::release() {
  if (data_ != nullptr) {
    ::operator delete(data_, std::align_val_t{64});
    data_ = nullptr;
  }
}

}  // namespace vabi::stats::kernels
