// Pooled storage for canonical-form terms.
//
// The DP engines create and drop millions of short-lived linear forms; giving
// each form its own heap vector makes malloc/free the dominant cost of the
// key operations (bench_micro_ops). This module provides the two arena
// building blocks the engines use instead:
//
//   - term_pool: a chunked bump allocator of lf_term slabs. Chunks are
//     stable-address (never relocated or freed before the pool dies);
//     reset() rewinds the pool to empty in O(1) while keeping the chunks for
//     the next epoch, so steady-state allocation is pointer arithmetic.
//     Epoch discipline: every span handed out by allocate() is invalidated
//     by reset(); holders must copy terms they want to keep (see
//     linear_form::own_terms) before the epoch ends.
//
//   - term_block: a single owned slab used to "seal" the survivors of an
//     epoch. A DP node's final candidate list copies its forms' terms into
//     one exactly-sized block, after which the scratch pool can be rewound.
//     Blocks recycle their capacity, so a steady-state DP run allocates no
//     new memory per node.
//
// Neither type is thread-safe; the engines keep one pool per worker. Blocks
// may migrate between threads (a parent task consumes a child's sealed list)
// because they are plain heap allocations with single ownership.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

namespace vabi::stats {

struct lf_term;  // linear_form.hpp

/// Chunked bump allocator for term arrays. Addresses are stable until
/// reset(); reset() keeps the chunks, so one pool amortizes to zero
/// allocations across epochs (nodes, nets).
class term_pool {
 public:
  term_pool() = default;
  term_pool(const term_pool&) = delete;
  term_pool& operator=(const term_pool&) = delete;

  /// Returns an uninitialized span of `n` terms, stable until reset().
  lf_term* allocate(std::size_t n);

  /// One dense coefficient plane (extent doubles, indexed by source id)
  /// followed by its presence mask (extent bytes). See linear_form.hpp's
  /// dense representation.
  struct plane_span {
    double* coeff = nullptr;
    std::uint8_t* mask = nullptr;
  };

  /// Returns an uninitialized dense plane of `extent` slots carved from the
  /// pool (stable until reset(), accounted in term units alongside
  /// allocate()).
  plane_span allocate_plane(std::size_t extent);

  /// Returns the unused tail of the *most recent* allocation to the pool:
  /// after `p = allocate(max)` wrote only `used` terms, trim(p, max, used)
  /// rewinds the cursor. A no-op when `p` is not the latest allocation.
  void trim(lf_term* p, std::size_t allocated, std::size_t used);

  /// Rewinds the pool to empty, keeping chunks and statistics. All spans
  /// handed out in this epoch are invalidated.
  void reset();

  /// Zeroes the high-water mark and the allocation counter (call at the
  /// start of a run when the pool is reused across nets).
  void reset_statistics();

  std::size_t live_terms() const { return live_; }
  /// High-water mark of live terms across epochs since reset_statistics().
  std::size_t peak_terms() const { return peak_; }
  /// Number of slab (chunk) heap allocations since reset_statistics().
  std::size_t allocations() const { return allocs_; }
  /// Total terms the chunks can hold.
  std::size_t capacity() const { return capacity_; }

 private:
  struct chunk {
    std::unique_ptr<lf_term[]> data;
    std::size_t cap = 0;
  };

  static constexpr std::size_t min_chunk_terms = 1024;

  std::vector<chunk> chunks_;
  std::size_t chunk_idx_ = 0;  ///< chunk currently bumped into
  std::size_t used_ = 0;       ///< terms used in chunks_[chunk_idx_]
  std::size_t live_ = 0;
  std::size_t peak_ = 0;
  std::size_t allocs_ = 0;
  std::size_t capacity_ = 0;
};

/// One owned, exactly-sized slab of terms: the storage of a sealed candidate
/// list. Recycles its capacity across uses.
class term_block {
 public:
  term_block() = default;
  // Moves must zero the source's capacity along with the pointer: a
  // moved-from block reporting stale capacity would hand out nullptr from a
  // later ensure() that thinks the slab is still there.
  term_block(term_block&& other) noexcept
      : data_(std::move(other.data_)), cap_(std::exchange(other.cap_, 0)) {}
  term_block& operator=(term_block&& other) noexcept {
    data_ = std::move(other.data_);
    cap_ = std::exchange(other.cap_, 0);
    return *this;
  }
  term_block(const term_block&) = delete;
  term_block& operator=(const term_block&) = delete;

  /// Makes room for `n` terms and returns the base pointer. Grows (a heap
  /// allocation, counted into *alloc_counter when given) only when the
  /// recycled capacity is too small. Contents are uninitialized.
  lf_term* ensure(std::size_t n, std::size_t* alloc_counter = nullptr);

  std::size_t capacity() const { return cap_; }
  bool empty() const { return cap_ == 0; }

  /// Base pointer of the slab (nullptr when empty). The slab-cache clone
  /// path memcpys the sealed prefix and rebases borrowed forms onto the
  /// copy; lf_term is trivially copyable so a byte copy is exact.
  const lf_term* data() const { return data_.get(); }
  lf_term* data() { return data_.get(); }

 private:
  std::unique_ptr<lf_term[]> data_;
  std::size_t cap_ = 0;
};

/// Thread-local count of heap allocations made by owning linear_form storage
/// (the value-semantics fallback path). Together with term_pool::allocations
/// this is what dp_stats::allocations aggregates.
std::size_t term_heap_allocations() noexcept;

namespace detail {
/// Bumps the thread-local owning-storage allocation counter (linear_form
/// internal).
void count_term_heap_allocation() noexcept;
}  // namespace detail

}  // namespace vabi::stats
