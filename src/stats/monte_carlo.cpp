#include "stats/monte_carlo.hpp"

namespace vabi::stats {

monte_carlo_sampler::monte_carlo_sampler(const variation_space& space,
                                         std::uint64_t seed)
    : space_(space), rng_(make_rng(seed)) {}

void monte_carlo_sampler::draw(std::vector<double>& out) {
  const auto& sigmas = space_.sigmas();
  out.resize(sigmas.size());
  for (std::size_t i = 0; i < sigmas.size(); ++i) {
    out[i] = sigmas[i] == 0.0 ? 0.0 : sigmas[i] * unit_normal_(rng_);
  }
}

std::vector<std::vector<double>> monte_carlo_sampler::draw_many(
    std::size_t n) {
  std::vector<std::vector<double>> samples(n);
  for (auto& s : samples) draw(s);
  return samples;
}

}  // namespace vabi::stats
