#include "stats/linear_form.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <ostream>

#include "stats/normal.hpp"

namespace vabi::stats {

linear_form::linear_form(double nominal, std::vector<lf_term> terms)
    : nominal_(nominal), terms_(std::move(terms)) {
  normalize();
}

void linear_form::normalize() {
  std::sort(terms_.begin(), terms_.end(),
            [](const lf_term& a, const lf_term& b) { return a.id < b.id; });
  // Coalesce duplicate ids.
  std::size_t out = 0;
  for (std::size_t i = 0; i < terms_.size();) {
    lf_term merged = terms_[i];
    std::size_t j = i + 1;
    while (j < terms_.size() && terms_[j].id == merged.id) {
      merged.coeff += terms_[j].coeff;
      ++j;
    }
    terms_[out++] = merged;
    i = j;
  }
  terms_.resize(out);
}

double linear_form::coefficient(source_id id) const {
  const auto it = std::lower_bound(
      terms_.begin(), terms_.end(), id,
      [](const lf_term& t, source_id v) { return t.id < v; });
  if (it != terms_.end() && it->id == id) return it->coeff;
  return 0.0;
}

void linear_form::add_term(source_id id, double coeff) {
  if (coeff == 0.0) return;
  const auto it = std::lower_bound(
      terms_.begin(), terms_.end(), id,
      [](const lf_term& t, source_id v) { return t.id < v; });
  if (it != terms_.end() && it->id == id) {
    it->coeff += coeff;
  } else {
    terms_.insert(it, lf_term{id, coeff});
  }
}

namespace {

// Merges the sparse term vectors of lhs and rhs with rhs scaled by `sign`.
std::vector<lf_term> merge_terms(const std::vector<lf_term>& a,
                                 const std::vector<lf_term>& b, double sign) {
  std::vector<lf_term> out;
  out.reserve(a.size() + b.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].id < b[j].id) {
      out.push_back(a[i++]);
    } else if (a[i].id > b[j].id) {
      out.push_back(lf_term{b[j].id, sign * b[j].coeff});
      ++j;
    } else {
      out.push_back(lf_term{a[i].id, a[i].coeff + sign * b[j].coeff});
      ++i;
      ++j;
    }
  }
  for (; i < a.size(); ++i) out.push_back(a[i]);
  for (; j < b.size(); ++j) out.push_back(lf_term{b[j].id, sign * b[j].coeff});
  return out;
}

}  // namespace

linear_form& linear_form::operator+=(const linear_form& rhs) {
  nominal_ += rhs.nominal_;
  if (!rhs.terms_.empty()) {
    if (terms_.empty()) {
      terms_ = rhs.terms_;
    } else {
      terms_ = merge_terms(terms_, rhs.terms_, +1.0);
    }
  }
  return *this;
}

linear_form& linear_form::operator-=(const linear_form& rhs) {
  nominal_ -= rhs.nominal_;
  if (!rhs.terms_.empty()) {
    terms_ = merge_terms(terms_, rhs.terms_, -1.0);
  }
  return *this;
}

linear_form& linear_form::operator+=(double constant) {
  nominal_ += constant;
  return *this;
}

linear_form& linear_form::operator-=(double constant) {
  nominal_ -= constant;
  return *this;
}

linear_form& linear_form::operator*=(double scale) {
  nominal_ *= scale;
  if (scale == 0.0) {
    terms_.clear();
  } else {
    for (auto& t : terms_) t.coeff *= scale;
  }
  return *this;
}

double linear_form::variance(const variation_space& space) const {
  double var = 0.0;
  for (const auto& t : terms_) var += t.coeff * t.coeff * space.variance(t.id);
  return var;
}

double linear_form::stddev(const variation_space& space) const {
  return std::sqrt(variance(space));
}

double linear_form::evaluate(std::span<const double> sample) const {
  double v = nominal_;
  for (const auto& t : terms_) {
    assert(t.id < sample.size());
    v += t.coeff * sample[t.id];
  }
  return v;
}

void linear_form::prune_zero_terms(double eps) {
  std::erase_if(terms_,
                [eps](const lf_term& t) { return std::abs(t.coeff) <= eps; });
}

double covariance(const linear_form& a, const linear_form& b,
                  const variation_space& space) {
  const auto& ta = a.terms();
  const auto& tb = b.terms();
  double cov = 0.0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < ta.size() && j < tb.size()) {
    if (ta[i].id < tb[j].id) {
      ++i;
    } else if (ta[i].id > tb[j].id) {
      ++j;
    } else {
      cov += ta[i].coeff * tb[j].coeff * space.variance(ta[i].id);
      ++i;
      ++j;
    }
  }
  return cov;
}

double correlation(const linear_form& a, const linear_form& b,
                   const variation_space& space) {
  const double sa = a.stddev(space);
  const double sb = b.stddev(space);
  if (sa == 0.0 || sb == 0.0) return 0.0;
  return covariance(a, b, space) / (sa * sb);
}

double sigma_of_difference(const linear_form& a, const linear_form& b,
                           const variation_space& space) {
  // One sparse pass over the union of term ids: Var(a-b) = sum (a_i-b_i)^2 s_i^2.
  const auto& ta = a.terms();
  const auto& tb = b.terms();
  double var = 0.0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < ta.size() || j < tb.size()) {
    double d = 0.0;
    source_id id = 0;
    if (j >= tb.size() || (i < ta.size() && ta[i].id < tb[j].id)) {
      d = ta[i].coeff;
      id = ta[i].id;
      ++i;
    } else if (i >= ta.size() || tb[j].id < ta[i].id) {
      d = -tb[j].coeff;
      id = tb[j].id;
      ++j;
    } else {
      d = ta[i].coeff - tb[j].coeff;
      id = ta[i].id;
      ++i;
      ++j;
    }
    var += d * d * space.variance(id);
  }
  return std::sqrt(std::max(var, 0.0));
}

double prob_greater(const linear_form& a, const linear_form& b,
                    const variation_space& space) {
  const double sigma = sigma_of_difference(a, b, space);
  return normal_exceedance(a.mean() - b.mean(), sigma, 0.0);
}

double tightness_probability(const linear_form& a, const linear_form& b,
                             const variation_space& space) {
  return prob_greater(b, a, space);
}

linear_form statistical_min(const linear_form& a, const linear_form& b,
                            const variation_space& space) {
  const double sigma = sigma_of_difference(a, b, space);
  if (sigma == 0.0) {
    // Perfectly correlated (or both deterministic): exact min by mean.
    return (a.mean() <= b.mean()) ? a : b;
  }
  // t = P(a < b), the tightness probability of eq. (39).
  const double z = (b.mean() - a.mean()) / sigma;
  const double t = normal_cdf(z);
  // Mean correction term of eq. (38): -sigma * phi(z). This makes the mean
  // exact: E[min] = t*mu_a + (1-t)*mu_b - sigma*phi(z) (Cain 1994).
  linear_form out = t * a + (1.0 - t) * b;
  out -= sigma * normal_pdf(z);
  return out;
}

linear_form statistical_max(const linear_form& a, const linear_form& b,
                            const variation_space& space) {
  linear_form na = -1.0 * a;
  linear_form nb = -1.0 * b;
  linear_form m = statistical_min(na, nb, space);
  m *= -1.0;
  return m;
}

double percentile(const linear_form& f, const variation_space& space,
                  double p) {
  return normal_percentile(f.mean(), f.stddev(space), p);
}

std::ostream& operator<<(std::ostream& os, const linear_form& f) {
  os << f.nominal();
  for (const auto& t : f.terms()) {
    os << (t.coeff >= 0.0 ? " + " : " - ") << std::abs(t.coeff) << "*X"
       << t.id;
  }
  return os;
}

}  // namespace vabi::stats
