#include "stats/linear_form.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <ostream>

#include "stats/kernels.hpp"
#include "stats/normal.hpp"

namespace vabi::stats {

namespace {

// -- Dense-representation policy and telemetry ------------------------------

thread_local std::size_t t_dense_forms = 0;
thread_local std::size_t t_terms_merged = 0;

constexpr int k_force_dense_unset = std::numeric_limits<int>::min();
std::atomic<int> g_force_dense{k_force_dense_unset};

// -1 never dense, +1 always dense, 0 adaptive. First read consults
// VABI_FORCE_DENSE; set_force_dense overrides.
int force_dense_mode() {
  int mode = g_force_dense.load(std::memory_order_relaxed);
  if (mode == k_force_dense_unset) {
    mode = 0;
    if (const char* env = std::getenv("VABI_FORCE_DENSE")) {
      if (env[0] == '1') mode = 1;
      if (env[0] == '-' || std::strcmp(env, "never") == 0) mode = -1;
    }
    g_force_dense.store(mode, std::memory_order_relaxed);
  }
  return mode;
}

/// Plane length a form needs: its dense extent, or max sparse id + 1.
std::size_t form_extent(const linear_form& f) {
  if (f.is_dense()) return f.dense_extent();
  const auto ts = f.terms();
  return ts.empty() ? 0 : static_cast<std::size_t>(ts.back().id) + 1;
}

/// The adaptive representation switch: dense pays off once the operands'
/// combined term count is comparable to the plane they would span (the
/// elementwise loop then does no more work than the sparse merge, without
/// its branches), and planes below a cache line of slots aren't worth the
/// scatter. Results are bit-identical either way; only speed changes.
constexpr std::size_t k_dense_min_extent = 16;

bool want_dense(std::size_t total_terms, std::size_t ext) {
  const int mode = force_dense_mode();
  if (mode > 0) return ext > 0;
  if (mode < 0) return false;
  return ext >= k_dense_min_extent && total_terms >= ext;
}

/// Rebinds `f` to a sparse view: returns `f` itself when already sparse,
/// otherwise sparsifies a copy into `store`. Used by the sparse fallback
/// paths when an operand arrived dense.
const linear_form& sparse_ref(const linear_form& f, linear_form& store) {
  if (!f.is_dense()) return f;
  store = f;
  store.own_terms();
  return store;
}

// -- Dense operand views ----------------------------------------------------

struct dense_view {
  const double* coeff = nullptr;
  const std::uint8_t* mask = nullptr;
};

// Scratch planes for widening an operand to the result extent (slot 0 / 1 =
// first / second operand). One pair of live views per thread; every consumer
// finishes with its views before the next operation starts.
thread_local std::vector<double> t_view_coeff[2];
thread_local std::vector<std::uint8_t> t_view_mask[2];

/// Views `f` as a dense plane of length `ext` (>= f's extent). Dense forms
/// of exactly that extent are viewed in place; everything else is scattered
/// into the thread-local scratch plane (absent slots exactly 0.0).
dense_view as_dense_view(const linear_form& f, std::size_t ext, int slot) {
  if (f.is_dense() && f.dense_extent() == ext) {
    return {f.dense_coeffs(), f.dense_mask()};
  }
  auto& vc = t_view_coeff[slot];
  auto& vm = t_view_mask[slot];
  vc.assign(ext, 0.0);
  vm.assign(ext, 0);
  if (f.is_dense()) {
    const std::size_t e = f.dense_extent();
    std::copy(f.dense_coeffs(), f.dense_coeffs() + e, vc.data());
    std::copy(f.dense_mask(), f.dense_mask() + e, vm.data());
  } else {
    for (const auto& t : f.terms()) {
      vc[t.id] = t.coeff;
      vm[t.id] = 0xFF;
    }
  }
  return {vc.data(), vm.data()};
}

}  // namespace

std::size_t dense_forms_produced() noexcept { return t_dense_forms; }

std::size_t pooled_terms_merged() noexcept { return t_terms_merged; }

void set_force_dense(int mode) {
  g_force_dense.store(mode == 0 ? 0 : (mode > 0 ? 1 : -1),
                      std::memory_order_relaxed);
}

void reset_force_dense_from_env() {
  g_force_dense.store(k_force_dense_unset, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Storage management
// ---------------------------------------------------------------------------

linear_form::linear_form(const linear_form& other)
    : nominal_(other.nominal_), size_(other.size_), extent_(other.extent_) {
  if (other.capacity_ == 0) {
    // Copy of a borrowed form (sparse span or dense plane) is shallow: same
    // external storage.
    data_ = other.data_;
    capacity_ = 0;
  } else if (size_ <= inline_capacity) {
    data_ = sbo_;
    capacity_ = inline_capacity;
    std::copy(other.data_, other.data_ + size_, data_);
  } else {
    data_ = new lf_term[size_];
    capacity_ = size_;
    detail::count_term_heap_allocation();
    std::copy(other.data_, other.data_ + size_, data_);
  }
}

linear_form::linear_form(linear_form&& other) noexcept
    : nominal_(other.nominal_), size_(other.size_), extent_(other.extent_) {
  if (other.owns_heap()) {
    data_ = other.data_;
    capacity_ = other.capacity_;
    other.data_ = other.sbo_;
    other.capacity_ = inline_capacity;
    other.size_ = 0;
  } else if (other.capacity_ == 0) {
    data_ = other.data_;
    capacity_ = 0;
  } else {
    data_ = sbo_;
    capacity_ = inline_capacity;
    std::copy(other.sbo_, other.sbo_ + size_, sbo_);
  }
}

linear_form& linear_form::operator=(const linear_form& other) {
  if (this == &other) return *this;
  nominal_ = other.nominal_;
  if (other.capacity_ == 0) {
    release_heap();
    data_ = other.data_;
    size_ = other.size_;
    capacity_ = 0;
    extent_ = other.extent_;
  } else {
    assign_terms(other.data_, other.size_);
  }
  return *this;
}

linear_form& linear_form::operator=(linear_form&& other) noexcept {
  if (this == &other) return *this;
  nominal_ = other.nominal_;
  if (other.owns_heap()) {
    release_heap();
    data_ = other.data_;
    size_ = other.size_;
    capacity_ = other.capacity_;
    extent_ = 0;
    other.data_ = other.sbo_;
    other.capacity_ = inline_capacity;
    other.size_ = 0;
  } else if (other.capacity_ == 0) {
    release_heap();
    data_ = other.data_;
    size_ = other.size_;
    capacity_ = 0;
    extent_ = other.extent_;
  } else {
    assign_terms(other.data_, other.size_);
  }
  return *this;
}

void linear_form::assign_terms(const lf_term* src, std::size_t n) {
  if (n <= inline_capacity) {
    release_heap();
    data_ = sbo_;
    capacity_ = inline_capacity;
  } else if (capacity_ < n) {
    lf_term* p = new lf_term[n];
    detail::count_term_heap_allocation();
    release_heap();
    data_ = p;
    capacity_ = static_cast<std::uint32_t>(n);
  }
  std::copy(src, src + n, data_);
  size_ = static_cast<std::uint32_t>(n);
  extent_ = 0;
}

void linear_form::sparsify(std::size_t min_capacity) {
  const double* coeff = dense_coeffs();
  const std::uint8_t* mask = dense_mask();
  const std::uint32_t ext = extent_;
  lf_term* dst = sbo_;
  std::uint32_t cap = inline_capacity;
  if (min_capacity > inline_capacity || size_ > inline_capacity) {
    cap = static_cast<std::uint32_t>(
        std::max(min_capacity, static_cast<std::size_t>(size_)));
    dst = new lf_term[cap];
    detail::count_term_heap_allocation();
  }
  std::size_t n = 0;
  for (std::uint32_t id = 0; id < ext; ++id) {
    if (mask[id] != 0) dst[n++] = lf_term{id, coeff[id]};
  }
  assert(n == size_);
  data_ = dst;
  capacity_ = cap;
  size_ = static_cast<std::uint32_t>(n);
  extent_ = 0;
}

void linear_form::ensure_mutable(std::size_t min_capacity) {
  if (extent_ != 0) {
    sparsify(std::max(min_capacity, static_cast<std::size_t>(size_)));
    return;
  }
  if (capacity_ == 0) {
    // Borrowed: materialize the current terms into owned storage.
    const lf_term* src = data_;
    if (min_capacity <= inline_capacity) {
      data_ = sbo_;
      capacity_ = inline_capacity;
    } else {
      data_ = new lf_term[min_capacity];
      capacity_ = static_cast<std::uint32_t>(min_capacity);
      detail::count_term_heap_allocation();
    }
    std::copy(src, src + size_, data_);
    return;
  }
  if (capacity_ >= min_capacity) return;
  const std::size_t cap =
      std::max(min_capacity, static_cast<std::size_t>(capacity_) * 2);
  lf_term* p = new lf_term[cap];
  detail::count_term_heap_allocation();
  std::copy(data_, data_ + size_, p);
  release_heap();
  data_ = p;
  capacity_ = static_cast<std::uint32_t>(cap);
}

void linear_form::own_terms() {
  if (owns_terms()) return;
  ensure_mutable(size_);
}

std::size_t linear_form::relocate_terms(lf_term* dst) {
  if (owns_terms()) return 0;
  if (size_ <= inline_capacity) {
    ensure_mutable(size_);
    return 0;
  }
  if (extent_ != 0) {
    // Dense planes never outlive their scratch epoch: sealing re-sparsifies
    // the form into the destination block (num_terms() == mask popcount, so
    // the caller's size accounting already fits).
    const double* coeff = dense_coeffs();
    const std::uint8_t* mask = dense_mask();
    std::size_t n = 0;
    for (std::uint32_t id = 0; id < extent_; ++id) {
      if (mask[id] != 0) dst[n++] = lf_term{id, coeff[id]};
    }
    assert(n == size_);
    data_ = dst;
    extent_ = 0;
    return size_;
  }
  std::copy(data_, data_ + size_, dst);
  data_ = dst;
  return size_;
}

linear_form linear_form::from_pooled(double nominal,
                                     std::span<const lf_term> terms) {
  if (terms.empty()) return linear_form(nominal);
  return linear_form(nominal, terms.data(), terms.size());
}

linear_form::linear_form(double nominal, std::vector<lf_term> terms)
    : nominal_(nominal), data_(sbo_) {
  std::sort(terms.begin(), terms.end(),
            [](const lf_term& a, const lf_term& b) { return a.id < b.id; });
  // Coalesce duplicate ids.
  std::size_t out = 0;
  for (std::size_t i = 0; i < terms.size();) {
    lf_term merged = terms[i];
    std::size_t j = i + 1;
    while (j < terms.size() && terms[j].id == merged.id) {
      merged.coeff += terms[j].coeff;
      ++j;
    }
    terms[out++] = merged;
    i = j;
  }
  assign_terms(terms.data(), out);
}

// ---------------------------------------------------------------------------
// Value-semantics operations
// ---------------------------------------------------------------------------

double linear_form::coefficient(source_id id) const {
  if (extent_ != 0) {
    if (id >= extent_ || dense_mask()[id] == 0) return 0.0;
    return dense_coeffs()[id];
  }
  const auto* it = std::lower_bound(
      data_, data_ + size_, id,
      [](const lf_term& t, source_id v) { return t.id < v; });
  if (it != data_ + size_ && it->id == id) return it->coeff;
  return 0.0;
}

void linear_form::add_term(source_id id, double coeff) {
  if (coeff == 0.0) return;
  if (extent_ != 0) ensure_mutable(size_);
  const std::size_t lo = static_cast<std::size_t>(
      std::lower_bound(data_, data_ + size_, id,
                       [](const lf_term& t, source_id v) { return t.id < v; }) -
      data_);
  if (lo < size_ && data_[lo].id == id) {
    ensure_mutable(size_);
    data_[lo].coeff += coeff;
    return;
  }
  ensure_mutable(size_ + std::size_t{1});
  for (std::size_t k = size_; k > lo; --k) data_[k] = data_[k - 1];
  data_[lo] = lf_term{id, coeff};
  ++size_;
}

namespace {

// Merges two sorted sparse term arrays into `out` (sized for a.size() +
// b.size()) as sa*a + sb*b. Exact coefficient expressions:
//   both present: (sa * a_i) + (sb * b_i)
//   a only:        sa * a_i
//   b only:        sb * b_i
// With sa == 1.0 this is bit-identical to the historical merge_terms(a, b,
// sign) (1.0 * x == x for every x), which the golden bit-identity tests rely
// on. When `max_abs` is given it receives max |coeff| of the output.
std::size_t merge_scaled(std::span<const lf_term> a, double sa,
                         std::span<const lf_term> b, double sb, lf_term* out,
                         double* max_abs) {
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t n = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].id < b[j].id) {
      out[n++] = lf_term{a[i].id, sa * a[i].coeff};
      ++i;
    } else if (a[i].id > b[j].id) {
      out[n++] = lf_term{b[j].id, sb * b[j].coeff};
      ++j;
    } else {
      const double pa = sa * a[i].coeff;
      const double pb = sb * b[j].coeff;
      out[n++] = lf_term{a[i].id, pa + pb};
      ++i;
      ++j;
    }
  }
  for (; i < a.size(); ++i) out[n++] = lf_term{a[i].id, sa * a[i].coeff};
  for (; j < b.size(); ++j) out[n++] = lf_term{b[j].id, sb * b[j].coeff};
  if (max_abs != nullptr) {
    double m = 0.0;
    for (std::size_t k = 0; k < n; ++k) m = std::max(m, std::abs(out[k].coeff));
    *max_abs = m;
  }
  return n;
}

// Reused merge destination for the value-semantics += / -=. One live buffer
// per thread; since every value op copies the result out before returning,
// re-entrancy is impossible.
thread_local std::vector<lf_term> t_merge_scratch;

}  // namespace

linear_form& linear_form::operator+=(const linear_form& rhs) {
  nominal_ += rhs.nominal_;
  if (rhs.size_ == 0) return *this;
  if (extent_ != 0) ensure_mutable(size_);
  linear_form rhs_store;
  const linear_form& r = sparse_ref(rhs, rhs_store);
  if (size_ == 0) {
    assign_terms(r.data_, r.size_);
    return *this;
  }
  const std::size_t need = std::size_t{size_} + r.size_;
  if (t_merge_scratch.size() < need) t_merge_scratch.resize(need);
  const std::size_t n = merge_scaled(terms(), 1.0, r.terms(), 1.0,
                                     t_merge_scratch.data(), nullptr);
  assign_terms(t_merge_scratch.data(), n);
  return *this;
}

linear_form& linear_form::operator-=(const linear_form& rhs) {
  nominal_ -= rhs.nominal_;
  if (rhs.size_ == 0) return *this;
  if (extent_ != 0) ensure_mutable(size_);
  linear_form rhs_store;
  const linear_form& r = sparse_ref(rhs, rhs_store);
  const std::size_t need = std::size_t{size_} + r.size_;
  if (t_merge_scratch.size() < need) t_merge_scratch.resize(need);
  const std::size_t n = merge_scaled(terms(), 1.0, r.terms(), -1.0,
                                     t_merge_scratch.data(), nullptr);
  assign_terms(t_merge_scratch.data(), n);
  return *this;
}

linear_form& linear_form::operator+=(double constant) {
  nominal_ += constant;
  return *this;
}

linear_form& linear_form::operator-=(double constant) {
  nominal_ -= constant;
  return *this;
}

linear_form& linear_form::operator*=(double scale) {
  nominal_ *= scale;
  if (size_ == 0) return *this;
  if (scale == 0.0) {
    size_ = 0;
    extent_ = 0;
    if (capacity_ == 0) {
      data_ = sbo_;
      capacity_ = inline_capacity;
    }
    return *this;
  }
  ensure_mutable(size_);
  for (std::uint32_t i = 0; i < size_; ++i) data_[i].coeff *= scale;
  return *this;
}

double linear_form::variance(const variation_space& space) const {
  if (extent_ != 0) {
    // Dense dot product against the space's aligned sigma^2 table. Absent
    // slots hold exactly 0.0 and contribute +0.0 to a non-negative chain, so
    // this is bit-identical to the sparse pass below.
    return kernels::active().variance_plane(dense_coeffs(),
                                            space.sigma2_data(), extent_);
  }
  double var = 0.0;
  for (const auto& t : terms()) var += t.coeff * t.coeff * space.variance(t.id);
  return var;
}

double linear_form::stddev(const variation_space& space) const {
  return std::sqrt(variance(space));
}

double linear_form::evaluate(std::span<const double> sample) const {
  if (extent_ != 0) {
    assert(extent_ <= sample.size());
    double v = nominal_;
    const double* coeff = dense_coeffs();
    const std::uint8_t* mask = dense_mask();
    for (std::uint32_t id = 0; id < extent_; ++id) {
      if (mask[id] != 0) v += coeff[id] * sample[id];
    }
    return v;
  }
  double v = nominal_;
  for (const auto& t : terms()) {
    assert(t.id < sample.size());
    v += t.coeff * sample[t.id];
  }
  return v;
}

void linear_form::prune_zero_terms(double eps) {
  if (size_ == 0) return;
  if (extent_ != 0) ensure_mutable(size_);
  bool any = false;
  for (std::uint32_t i = 0; i < size_ && !any; ++i) {
    any = std::abs(data_[i].coeff) <= eps;
  }
  if (!any) return;
  ensure_mutable(size_);
  std::uint32_t out = 0;
  for (std::uint32_t i = 0; i < size_; ++i) {
    if (std::abs(data_[i].coeff) > eps) data_[out++] = data_[i];
  }
  size_ = out;
}

bool linear_form::is_finite() const {
  if (!std::isfinite(nominal_)) return false;
  if (extent_ != 0) {
    const double* coeff = dense_coeffs();
    const std::uint8_t* mask = dense_mask();
    for (std::uint32_t id = 0; id < extent_; ++id) {
      if (mask[id] != 0 && !std::isfinite(coeff[id])) return false;
    }
    return true;
  }
  for (std::uint32_t i = 0; i < size_; ++i) {
    if (!std::isfinite(data_[i].coeff)) return false;
  }
  return true;
}

bool linear_form::equal_slow(const linear_form& a, const linear_form& b) {
  const auto& kern = kernels::active();
  if (a.extent_ != 0 && b.extent_ != 0) {
    const std::uint32_t common = std::min(a.extent_, b.extent_);
    if (!kern.planes_equal(a.dense_coeffs(), a.dense_mask(), b.dense_coeffs(),
                           b.dense_mask(), common)) {
      return false;
    }
    const linear_form& longer = a.extent_ >= b.extent_ ? a : b;
    return kern.popcount_mask(longer.dense_mask() + common,
                              longer.extent_ - common) == 0;
  }
  // Mixed representation: both have the same term count (checked by the
  // caller), so every sparse term matching a present dense slot implies
  // identical supports. Coefficients compare numerically (-0.0 == +0.0),
  // like the sparse fast path.
  const linear_form& dense = a.extent_ != 0 ? a : b;
  const linear_form& sparse = a.extent_ != 0 ? b : a;
  const double* coeff = dense.dense_coeffs();
  const std::uint8_t* mask = dense.dense_mask();
  for (const auto& t : sparse.terms()) {
    if (t.id >= dense.extent_ || mask[t.id] == 0 || t.coeff != coeff[t.id]) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Free functions over forms
// ---------------------------------------------------------------------------

double covariance(const linear_form& a, const linear_form& b,
                  const variation_space& space) {
  if (a.is_dense() || b.is_dense()) {
    const std::size_t ext = std::max(form_extent(a), form_extent(b));
    if (ext == 0) return 0.0;
    const dense_view va = as_dense_view(a, ext, 0);
    const dense_view vb = as_dense_view(b, ext, 1);
    return kernels::active().covariance_planes(va.coeff, vb.coeff,
                                               space.sigma2_data(), ext);
  }
  const auto ta = a.terms();
  const auto tb = b.terms();
  double cov = 0.0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < ta.size() && j < tb.size()) {
    if (ta[i].id < tb[j].id) {
      ++i;
    } else if (ta[i].id > tb[j].id) {
      ++j;
    } else {
      cov += ta[i].coeff * tb[j].coeff * space.variance(ta[i].id);
      ++i;
      ++j;
    }
  }
  return cov;
}

double correlation(const linear_form& a, const linear_form& b,
                   const variation_space& space) {
  const double sa = a.stddev(space);
  const double sb = b.stddev(space);
  if (sa == 0.0 || sb == 0.0) return 0.0;
  return covariance(a, b, space) / (sa * sb);
}

double sigma_of_difference(const linear_form& a, const linear_form& b,
                           const variation_space& space) {
  if (a.is_dense() || b.is_dense()) {
    // Dense union pass: slots absent on both sides contribute an exact
    // (0.0 - 0.0)^2 * s2 = +0.0 into a non-negative chain, one-sided slots
    // read an exact 0.0 for the missing operand, so the accumulation is
    // bit-identical to the sparse union pass below.
    const std::size_t ext = std::max(form_extent(a), form_extent(b));
    if (ext == 0) return 0.0;
    const dense_view va = as_dense_view(a, ext, 0);
    const dense_view vb = as_dense_view(b, ext, 1);
    const double var = kernels::active().sigma_diff_sq_planes(
        va.coeff, vb.coeff, space.sigma2_data(), ext);
    return std::sqrt(std::max(var, 0.0));
  }
  // One sparse pass over the union of term ids: Var(a-b) = sum (a_i-b_i)^2 s_i^2.
  const auto ta = a.terms();
  const auto tb = b.terms();
  double var = 0.0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < ta.size() || j < tb.size()) {
    double d = 0.0;
    source_id id = 0;
    if (j >= tb.size() || (i < ta.size() && ta[i].id < tb[j].id)) {
      d = ta[i].coeff;
      id = ta[i].id;
      ++i;
    } else if (i >= ta.size() || tb[j].id < ta[i].id) {
      d = -tb[j].coeff;
      id = tb[j].id;
      ++j;
    } else {
      d = ta[i].coeff - tb[j].coeff;
      id = ta[i].id;
      ++i;
      ++j;
    }
    var += d * d * space.variance(id);
  }
  return std::sqrt(std::max(var, 0.0));
}

double prob_greater(const linear_form& a, const linear_form& b,
                    const variation_space& space) {
  const double sigma = sigma_of_difference(a, b, space);
  return normal_exceedance(a.mean() - b.mean(), sigma, 0.0);
}

double tightness_probability(const linear_form& a, const linear_form& b,
                             const variation_space& space) {
  return prob_greater(b, a, space);
}

linear_form statistical_min(const linear_form& a, const linear_form& b,
                            const variation_space& space) {
  const double sigma = sigma_of_difference(a, b, space);
  if (sigma == 0.0) {
    // Perfectly correlated (or both deterministic): exact min by mean.
    return (a.mean() <= b.mean()) ? a : b;
  }
  // t = P(a < b), the tightness probability of eq. (39).
  const double z = (b.mean() - a.mean()) / sigma;
  const double t = normal_cdf(z);
  // Mean correction term of eq. (38): -sigma * phi(z). This makes the mean
  // exact: E[min] = t*mu_a + (1-t)*mu_b - sigma*phi(z) (Cain 1994).
  linear_form out = t * a + (1.0 - t) * b;
  out -= sigma * normal_pdf(z);
  return out;
}

linear_form statistical_max(const linear_form& a, const linear_form& b,
                            const variation_space& space) {
  linear_form na = -1.0 * a;
  linear_form nb = -1.0 * b;
  linear_form m = statistical_min(na, nb, space);
  m *= -1.0;
  return m;
}

double percentile(const linear_form& f, const variation_space& space,
                  double p) {
  return normal_percentile(f.mean(), f.stddev(space), p);
}

std::ostream& operator<<(std::ostream& os, const linear_form& f) {
  os << f.nominal();
  if (f.is_dense()) {
    const double* coeff = f.dense_coeffs();
    const std::uint8_t* mask = f.dense_mask();
    for (std::size_t id = 0; id < f.dense_extent(); ++id) {
      if (mask[id] == 0) continue;
      os << (coeff[id] >= 0.0 ? " + " : " - ") << std::abs(coeff[id]) << "*X"
         << id;
    }
    return os;
  }
  for (const auto& t : f.terms()) {
    os << (t.coeff >= 0.0 ? " + " : " - ") << std::abs(t.coeff) << "*X"
       << t.id;
  }
  return os;
}

// ---------------------------------------------------------------------------
// Pooled operations
// ---------------------------------------------------------------------------

namespace detail {

linear_form adopt_pool_result(double nominal, term_pool& pool, lf_term* buf,
                              std::size_t allocated, std::size_t used) {
  if (used <= linear_form::inline_capacity) {
    // Small result: inline, and the whole pool allocation is returned.
    linear_form out(nominal, nullptr, 0);
    std::copy(buf, buf + used, out.sbo_);
    out.size_ = static_cast<std::uint32_t>(used);
    pool.trim(buf, allocated, 0);
    return out;
  }
  pool.trim(buf, allocated, used);
  return linear_form(nominal, buf, used);
}

linear_form adopt_dense_result(double nominal, double* coeff,
                               std::size_t extent, std::size_t present) {
  linear_form out(nominal, reinterpret_cast<const lf_term*>(coeff), present);
  out.extent_ = static_cast<std::uint32_t>(extent);
  return out;
}

}  // namespace detail

namespace {

/// The dense counterpart of merge_scaled + adopt_pool_result: blends two
/// operands (viewed at extent `ext`) through the active SIMD kernel into a
/// fresh pool plane, with the optional relative-epsilon drop. A zero scale
/// blends against an all-absent view, so the zero-weighted side's ids vanish
/// exactly like in the sparse pooled_blend.
linear_form dense_merge(double nominal, double sa, const linear_form& a,
                        double sb, const linear_form& b, std::size_t ext,
                        term_pool& pool, double drop_rel_eps) {
  static const linear_form k_empty_form{};
  const auto& kern = kernels::active();
  const dense_view va = as_dense_view(sa == 0.0 ? k_empty_form : a, ext, 0);
  const dense_view vb = as_dense_view(sb == 0.0 ? k_empty_form : b, ext, 1);
  const term_pool::plane_span plane = pool.allocate_plane(ext);
  kern.blend_planes(sa, va.coeff, va.mask, sb, vb.coeff, vb.mask, plane.coeff,
                    plane.mask, ext);
  if (drop_rel_eps > 0.0) {
    // Same threshold as the sparse drop: absent slots are 0.0 and cannot
    // raise the max, so max over the whole plane equals max over the merged
    // terms.
    const double thr = drop_rel_eps * kern.max_abs_plane(plane.coeff, ext);
    kern.drop_small_plane(plane.coeff, plane.mask, thr, ext);
  }
  const std::size_t present = kern.popcount_mask(plane.mask, ext);
  ++t_dense_forms;
  t_terms_merged += ext;
  return detail::adopt_dense_result(nominal, plane.coeff, ext, present);
}

}  // namespace

linear_form pooled_copy(const linear_form& f, term_pool& pool) {
  if (!f.owns_terms()) {
    // Borrowed copies (sparse spans and dense planes) stay shallow: their
    // storage already has caller-managed lifetime.
    return f;
  }
  const auto ts = f.terms();
  if (ts.size() <= linear_form::inline_capacity) {
    // Inline copies are self-contained.
    return f;
  }
  lf_term* buf = pool.allocate(ts.size());
  std::copy(ts.begin(), ts.end(), buf);
  return detail::adopt_pool_result(f.nominal(), pool, buf, ts.size(),
                                   ts.size());
}

namespace {

/// Shared body of the four fixed-scale pooled merges: sa*a + sb*b with
/// `nominal` already combined by the caller. Picks the representation
/// adaptively; results are bit-identical either way.
linear_form pooled_merge(double nominal, double sa, const linear_form& a,
                         double sb, const linear_form& b, term_pool& pool) {
  const std::size_t ext = std::max(form_extent(a), form_extent(b));
  if (want_dense(a.num_terms() + b.num_terms(), ext)) {
    return dense_merge(nominal, sa, a, sb, b, ext, pool, 0.0);
  }
  linear_form a_store;
  linear_form b_store;
  const linear_form& as = sparse_ref(a, a_store);
  const linear_form& bs = sparse_ref(b, b_store);
  const std::size_t cap = as.num_terms() + bs.num_terms();
  lf_term* buf = pool.allocate(cap);
  const std::size_t n = merge_scaled(as.terms(), sa, bs.terms(), sb, buf,
                                     nullptr);
  t_terms_merged += n;
  return detail::adopt_pool_result(nominal, pool, buf, cap, n);
}

}  // namespace

linear_form pooled_add(const linear_form& a, const linear_form& b,
                       term_pool& pool) {
  return pooled_merge(a.nominal() + b.nominal(), 1.0, a, 1.0, b, pool);
}

linear_form pooled_sub(const linear_form& a, const linear_form& b,
                       term_pool& pool) {
  return pooled_merge(a.nominal() - b.nominal(), 1.0, a, -1.0, b, pool);
}

linear_form pooled_sub_scaled(const linear_form& a, double s,
                              const linear_form& b, term_pool& pool) {
  // a - s*b in one pass: (-s)*b_i == -(s*b_i) exactly (IEEE negation commutes
  // with rounding), so this matches the two-step `a -= s * b` bit for bit.
  // s == 0 scaled the temporary to an empty form historically (operator*=
  // clears on zero), making the subtraction a terms no-op.
  if (s == 0.0) {
    linear_form out = pooled_copy(a, pool);
    out -= s * b.nominal();
    return out;
  }
  return pooled_merge(a.nominal() - s * b.nominal(), 1.0, a, -s, b, pool);
}

linear_form pooled_add_scaled(const linear_form& a, double s,
                              const linear_form& b, term_pool& pool) {
  // a + s*b; the s == 0 guard mirrors pooled_sub_scaled.
  if (s == 0.0) {
    linear_form out = pooled_copy(a, pool);
    out += s * b.nominal();
    return out;
  }
  return pooled_merge(a.nominal() + s * b.nominal(), 1.0, a, s, b, pool);
}

linear_form pooled_blend(double sa, const linear_form& a, double sb,
                         const linear_form& b, term_pool& pool) {
  // A zero scale eliminates that side's term ids entirely (operator*= clears
  // the vector on scale == 0, and the historical blends were built on it) --
  // they must not survive as explicit zero-coefficient terms, because form
  // equality drives the pruning tie conventions.
  const std::size_t na = sa == 0.0 ? 0 : a.num_terms();
  const std::size_t nb = sb == 0.0 ? 0 : b.num_terms();
  const std::size_t ext = std::max(sa == 0.0 ? 0 : form_extent(a),
                                   sb == 0.0 ? 0 : form_extent(b));
  const double pa = sa * a.nominal();
  const double pb = sb * b.nominal();
  if (want_dense(na + nb, ext)) {
    return dense_merge(pa + pb, sa, a, sb, b, ext, pool, 0.0);
  }
  linear_form a_store;
  linear_form b_store;
  const linear_form& as = sparse_ref(a, a_store);
  const linear_form& bs = sparse_ref(b, b_store);
  const std::span<const lf_term> ta =
      sa == 0.0 ? std::span<const lf_term>{} : as.terms();
  const std::span<const lf_term> tb =
      sb == 0.0 ? std::span<const lf_term>{} : bs.terms();
  const std::size_t cap = ta.size() + tb.size();
  lf_term* buf = pool.allocate(cap);
  const std::size_t n = merge_scaled(ta, sa, tb, sb, buf, nullptr);
  t_terms_merged += n;
  return detail::adopt_pool_result(pa + pb, pool, buf, cap, n);
}

namespace {

// Shared tail of the pooled statistical min/max: the tightness blend
// sa*a + sb*b with an optional relative-epsilon drop of near-zero
// coefficients (satellite fix for term-count bloat: the blend's tiny
// coefficients otherwise survive forever and deep trees accumulate the union
// of every source id they ever saw).
linear_form blend_with_drop(double sa, const linear_form& a, double sb,
                            const linear_form& b, double nominal_correction,
                            term_pool& pool, double drop_rel_eps) {
  // Saturated tightness (t exactly 0 or 1, routine when near-identical
  // candidates meet in a cross merge and |z| is huge) zero-weights one side.
  // The historical t*a + (1-t)*b computed through operator*= *cleared* that
  // side's terms, so its ids must vanish here too (see pooled_blend) -- the
  // 4P prune's identical-form shortcut depends on it. The dense path blends
  // a zero-weighted side against an all-absent view for the same effect.
  const std::size_t na = sa == 0.0 ? 0 : a.num_terms();
  const std::size_t nb = sb == 0.0 ? 0 : b.num_terms();
  const std::size_t ext = std::max(sa == 0.0 ? 0 : form_extent(a),
                                   sb == 0.0 ? 0 : form_extent(b));
  const double pa = sa * a.nominal();
  const double pb = sb * b.nominal();
  const double nom = (pa + pb) + nominal_correction;
  if (want_dense(na + nb, ext)) {
    return dense_merge(nom, sa, a, sb, b, ext, pool, drop_rel_eps);
  }
  linear_form a_store;
  linear_form b_store;
  const linear_form& as = sparse_ref(a, a_store);
  const linear_form& bs = sparse_ref(b, b_store);
  const std::span<const lf_term> ta =
      sa == 0.0 ? std::span<const lf_term>{} : as.terms();
  const std::span<const lf_term> tb =
      sb == 0.0 ? std::span<const lf_term>{} : bs.terms();
  const std::size_t cap = ta.size() + tb.size();
  lf_term* buf = pool.allocate(cap);
  double max_abs = 0.0;
  std::size_t n = merge_scaled(ta, sa, tb, sb, buf,
                               drop_rel_eps > 0.0 ? &max_abs : nullptr);
  t_terms_merged += n;
  if (drop_rel_eps > 0.0) {
    const double thr = drop_rel_eps * max_abs;
    std::size_t out = 0;
    for (std::size_t k = 0; k < n; ++k) {
      if (std::abs(buf[k].coeff) > thr) buf[out++] = buf[k];
    }
    n = out;
  }
  return detail::adopt_pool_result(nom, pool, buf, cap, n);
}

}  // namespace

linear_form statistical_min(const linear_form& a, const linear_form& b,
                            const variation_space& space, term_pool& pool,
                            double drop_rel_eps) {
  const double sigma = sigma_of_difference(a, b, space);
  if (sigma == 0.0) return (a.mean() <= b.mean()) ? a : b;
  const double z = (b.mean() - a.mean()) / sigma;
  const double t = normal_cdf(z);
  return blend_with_drop(t, a, 1.0 - t, b, -(sigma * normal_pdf(z)), pool,
                         drop_rel_eps);
}

linear_form statistical_max(const linear_form& a, const linear_form& b,
                            const variation_space& space, term_pool& pool,
                            double drop_rel_eps) {
  // max(a,b) = -min(-a,-b); folding the negations through the linearization
  // gives the same blend with t = P(a > b) and a positive mean correction.
  // Every fold is an exact IEEE negation, so this matches the value-semantics
  // statistical_max bit for bit.
  const double sigma = sigma_of_difference(a, b, space);
  if (sigma == 0.0) return (a.mean() >= b.mean()) ? a : b;
  const double z = (a.mean() - b.mean()) / sigma;
  const double t = normal_cdf(z);
  return blend_with_drop(t, a, 1.0 - t, b, sigma * normal_pdf(z), pool,
                         drop_rel_eps);
}

}  // namespace vabi::stats
