#include "stats/term_pool.hpp"

#include <algorithm>
#include <new>

#include "stats/linear_form.hpp"
#include "testing/fault_injection.hpp"

namespace vabi::stats {

lf_term* term_pool::allocate(std::size_t n) {
  if (n == 0) return nullptr;
  if (testing::should_fire(testing::fault_point::term_pool_alloc)) {
    throw std::bad_alloc{};
  }
  // Bump semantics: a chunk whose tail is too small is skipped for the rest
  // of the epoch (reset() makes the space usable again).
  while (chunk_idx_ < chunks_.size() &&
         chunks_[chunk_idx_].cap - used_ < n) {
    ++chunk_idx_;
    used_ = 0;
  }
  if (chunk_idx_ == chunks_.size()) {
    const std::size_t cap = std::max(
        n, chunks_.empty() ? min_chunk_terms : chunks_.back().cap * 2);
    chunks_.push_back(chunk{std::make_unique<lf_term[]>(cap), cap});
    capacity_ += cap;
    ++allocs_;
    used_ = 0;
  }
  lf_term* p = chunks_[chunk_idx_].data.get() + used_;
  used_ += n;
  live_ += n;
  peak_ = std::max(peak_, live_);
  return p;
}

term_pool::plane_span term_pool::allocate_plane(std::size_t extent) {
  if (extent == 0) return {};
  // 8 coefficient bytes + 1 mask byte per slot, rounded up to whole terms.
  const std::size_t n =
      (extent * (sizeof(double) + 1) + sizeof(lf_term) - 1) / sizeof(lf_term);
  lf_term* p = allocate(n);
  auto* coeff = reinterpret_cast<double*>(p);
  return {coeff, reinterpret_cast<std::uint8_t*>(coeff + extent)};
}

void term_pool::trim(lf_term* p, std::size_t allocated, std::size_t used) {
  if (allocated == used) return;
  if (chunk_idx_ < chunks_.size() && used_ >= allocated &&
      chunks_[chunk_idx_].data.get() + (used_ - allocated) == p) {
    used_ -= allocated - used;
    live_ -= allocated - used;
  }
}

void term_pool::reset() {
  chunk_idx_ = 0;
  used_ = 0;
  live_ = 0;
}

void term_pool::reset_statistics() {
  peak_ = live_;
  allocs_ = 0;
}

lf_term* term_block::ensure(std::size_t n, std::size_t* alloc_counter) {
  if (n > cap_) {
    const std::size_t cap = std::max(n, cap_ * 2);
    data_ = std::make_unique<lf_term[]>(cap);
    cap_ = cap;
    if (alloc_counter != nullptr) ++*alloc_counter;
  }
  return data_.get();
}

namespace {
thread_local std::size_t t_term_heap_allocs = 0;
}  // namespace

std::size_t term_heap_allocations() noexcept { return t_term_heap_allocs; }

void detail::count_term_heap_allocation() noexcept { ++t_term_heap_allocs; }

}  // namespace vabi::stats
