// Standard normal distribution utilities.
//
// These are the probability primitives behind every statistical operation in
// the library: the pruning-rule probability P(T1 > T2) (paper eq. 8), the
// tightness probability used by the statistical min (eq. 39), and the
// percentile parameters of the four-parameter pruning rule (eq. 1).
#pragma once

namespace vabi::stats {

/// PDF of the standard normal distribution, phi(x) = exp(-x^2/2)/sqrt(2*pi).
double normal_pdf(double x);

/// CDF of the standard normal distribution, Phi(x).
///
/// Implemented with std::erfc for full double accuracy in both tails.
double normal_cdf(double x);

/// Inverse CDF (quantile function) of the standard normal distribution.
///
/// `p` must lie in the open interval (0, 1). Uses Acklam's rational
/// approximation refined by one step of Halley's method; the result is
/// accurate to ~1e-15 over the whole domain.
double normal_quantile(double p);

/// P(X > t) for X ~ N(mean, sigma^2).
///
/// `sigma` must be >= 0. A zero sigma degenerates to the deterministic
/// comparison: returns 1 for mean > t, 0 for mean < t, and 0.5 at equality
/// (the tie convention used by the pruning rules).
double normal_exceedance(double mean, double sigma, double t);

/// The p-quantile of N(mean, sigma^2): mean + sigma * Phi^-1(p).
double normal_percentile(double mean, double sigma, double p);

}  // namespace vabi::stats
