#include "stats/variation_space.hpp"

#include <algorithm>
#include <stdexcept>

namespace vabi::stats {

const char* to_string(source_kind kind) {
  switch (kind) {
    case source_kind::random_device:
      return "random_device";
    case source_kind::spatial:
      return "spatial";
    case source_kind::inter_die:
      return "inter_die";
    case source_kind::parametric:
      return "parametric";
  }
  return "unknown";
}

source_id variation_space::add_source(source_kind kind, double sigma,
                                      std::string name) {
  if (sigma < 0.0) {
    throw std::invalid_argument("variation_space: sigma must be >= 0");
  }
  const auto id = static_cast<source_id>(sigmas_.size());
  sigmas_.push_back(sigma);
  sigma2_.push_back(sigma * sigma);
  kinds_.push_back(kind);
  names_.push_back(std::move(name));
  return id;
}

std::size_t variation_space::count(source_kind kind) const {
  return static_cast<std::size_t>(
      std::count(kinds_.begin(), kinds_.end(), kind));
}

}  // namespace vabi::stats
