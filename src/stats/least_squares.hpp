// Dense linear least squares.
//
// The device-characterization flow (paper Section 3.1) extracts the
// first-order sensitivity coefficients of eqs. (19)-(20) by fitting sampled
// nonlinear device responses with a least-squares linear model:
//
//   y ~ x0 + sum_j c_j * p_j
//
// Systems here are tiny (a handful of process parameters), so a plain
// normal-equations solve with Cholesky factorization is both adequate and
// dependency-free.
#pragma once

#include <span>
#include <vector>

namespace vabi::stats {

/// Result of a linear least-squares fit y ~ intercept + coeffs . x.
struct least_squares_fit {
  double intercept = 0.0;
  std::vector<double> coeffs;
  double rms_residual = 0.0;  ///< root-mean-square of y - prediction
  double r_squared = 0.0;     ///< coefficient of determination
};

/// Fits y ~ intercept + sum_j coeffs[j] * rows[i][j].
///
/// `rows` is the design matrix (one row per observation, all rows the same
/// width), `y` the observations (same length as rows). Throws
/// std::invalid_argument on shape mismatch or an underdetermined/singular
/// system.
least_squares_fit fit_linear(const std::vector<std::vector<double>>& rows,
                             std::span<const double> y);

/// Solves the symmetric positive-definite system A x = b in place via
/// Cholesky factorization. `a` is row-major n x n. Throws on non-SPD input.
std::vector<double> solve_spd(std::vector<double> a, std::vector<double> b,
                              std::size_t n);

}  // namespace vabi::stats
