// Runtime-dispatched SIMD kernels for dense canonical-form planes.
//
// The sparse (id, coeff) representation of linear_form wins when forms touch
// a small fraction of the variation space, but on deep trees the RAT forms
// accumulate nearly every source and the sparse merge machinery pays branchy
// per-term overhead for no sparsity. The dense representation (see
// linear_form.hpp) stores a form as a contiguous coefficient plane indexed by
// source_id plus a byte-per-id presence mask; this module provides the
// element loops over those planes, dispatched once at startup to the best
// instruction set the CPU offers (AVX2 / SSE2 on x86-64, NEON on aarch64,
// portable scalar otherwise).
//
// Bit-identity contract. Every kernel is bit-identical to the seed sparse
// scalar path, on every ISA:
//
//   - the form-producing ops (blend_planes, drop-small epilogue) are purely
//     elementwise: each output slot is computed by the exact scalar
//     expression of the historical sparse merge (sa*a_i + sb*b_i for slots
//     present on both sides, sa*a_i / sb*b_i for one-sided slots -- a true
//     per-slot select, never "multiply by a zero slot and add", which would
//     perturb signed zeros). SIMD lanes evaluate independent slots, so
//     vectorization cannot reassociate anything. FMA contraction is off
//     globally (-ffp-contract=off) and the kernels use explicit mul/add
//     intrinsics, never fused ones.
//
//   - the reductions (variance, covariance, sigma-of-difference) keep the
//     seed's single left-to-right accumulation chain in id order on every
//     ISA. Absent slots hold exactly 0.0, so their contributions (0.0 *
//     sigma^2, 0.0 - 0.0 squared) are exact no-ops interleaved into the same
//     chain the sparse pass produces. What makes the dense reductions faster
//     is not reassociation but the removal of the branchy sparse merge and
//     the per-term sigma lookup (the space's aligned sigma^2 table streams
//     sequentially), plus the paired variants (moments2_planes,
//     sigma_diff2_planes) that interleave two *independent* chains -- each
//     chain keeps its own seed order, and two chains in flight hide the FP
//     add latency that bounds a single one.
//
//   - max-magnitude scans may vectorize freely: max is exact in any order.
//
// Dispatch is resolved once (first use) from CPUID / the target baseline and
// can be forced with VABI_FORCE_KERNEL={scalar,sse2,avx2,neon}; forcing an
// ISA the CPU lacks falls back to the best available one. Tests exercise
// every reachable ISA through set_forced_isa().
#pragma once

#include <cstddef>
#include <cstdint>

namespace vabi::stats::kernels {

/// Instruction sets a kernel table can be built for.
enum class kernel_isa : std::uint8_t { scalar, sse2, avx2, neon };

const char* to_string(kernel_isa isa);

/// The ISA whose kernels are active (detection happens on first call;
/// VABI_FORCE_KERNEL is honored here).
kernel_isa active_isa();

/// Forces the kernel table for tests ("" / nullptr restores autodetection).
/// Requesting an unavailable ISA clamps to the best available one; returns
/// the ISA actually installed.
kernel_isa set_forced_isa(const char* name);

/// Result pair of the two-chain reductions.
struct pair_result {
  double first = 0.0;
  double second = 0.0;
};

// ---------------------------------------------------------------------------
// Kernel table. All plane pointers refer to `n` doubles (coefficients) or
// `n` bytes (presence masks: 0 = absent, nonzero = present). Absent slots of
// a coefficient plane must hold exactly 0.0; every form-producing kernel
// re-establishes that invariant on its output.
// ---------------------------------------------------------------------------

struct kernel_table {
  kernel_isa isa = kernel_isa::scalar;

  /// c_i = select(ma_i && mb_i : sa*a_i + sb*b_i,
  ///              ma_i        : sa*a_i,
  ///              mb_i        : sb*b_i,
  ///              otherwise   : 0.0),  mc_i = ma_i | mb_i.
  /// The per-slot select reproduces the sparse merge_scaled coefficients
  /// exactly (one-sided slots are a single product, never a product plus a
  /// signed zero). `c`/`mc` may alias `a`/`ma` or `b`/`mb`.
  void (*blend_planes)(double sa, const double* a, const std::uint8_t* ma,
                       double sb, const double* b, const std::uint8_t* mb,
                       double* c, std::uint8_t* mc, std::size_t n);

  /// One-sided scale: c_i = s*a_i where present, 0.0 elsewhere; mc = ma.
  void (*scale_plane)(double s, const double* a, const std::uint8_t* ma,
                      double* c, std::uint8_t* mc, std::size_t n);

  /// max_i |c_i| (0.0 on an empty plane). Order-free exact.
  double (*max_abs_plane)(const double* c, std::size_t n);

  /// Drops present slots with |c_i| <= thr: their mask byte and coefficient
  /// are cleared. Mirrors the sparse blend's relative-epsilon term drop.
  void (*drop_small_plane)(double* c, std::uint8_t* mc, double thr,
                           std::size_t n);

  /// sum_i a_i^2 * s2_i, one left-to-right chain (seed variance order).
  double (*variance_plane)(const double* a, const double* s2, std::size_t n);

  /// {sum a_i^2 s2_i, sum b_i^2 s2_i} -- two independent seed-order chains
  /// interleaved (the per-candidate Var(L)/Var(T) moment pass).
  pair_result (*moments2_planes)(const double* a, const double* b,
                                 const double* s2, std::size_t n);

  /// sum_i a_i * b_i * s2_i, one left-to-right chain. Slots absent on either
  /// side contribute an exact-zero product.
  double (*covariance_planes)(const double* a, const double* b,
                              const double* s2, std::size_t n);

  /// sum_i (a_i - b_i)^2 * s2_i, one left-to-right chain (the seed
  /// sigma_of_difference union pass with absent slots reading 0.0).
  double (*sigma_diff_sq_planes)(const double* a, const double* b,
                                 const double* s2, std::size_t n);

  /// Numeric equality of two masked planes: same presence sets and a_i ==
  /// b_i (IEEE ==, so -0.0 equals +0.0 exactly like the sparse comparison)
  /// on every present slot.
  bool (*planes_equal)(const double* a, const std::uint8_t* ma,
                       const double* b, const std::uint8_t* mb, std::size_t n);

  /// Present-slot count of a mask plane.
  std::size_t (*popcount_mask)(const std::uint8_t* m, std::size_t n);

  /// Leftmost strictly-greater argmax of the buffered-step key
  /// r_k - d - R*l_k over k in [0, n): the smallest k achieving the maximum
  /// (the DP engines' scan rule), or SIZE_MAX when no key compares greater
  /// than -infinity (empty range, all-NaN row). Keys are evaluated with the
  /// exact scalar expression -- per-lane sub/mul, never FMA -- so the
  /// selected index is identical on every ISA; only the comparison schedule
  /// vectorizes, and a (max value, min index) lane reduction restores the
  /// scalar leftmost rule exactly. This is the Li-Shi frontier's inner row
  /// scan (core/li_shi.hpp).
  std::size_t (*argmax_buffered_row)(const double* rats, const double* loads,
                                     double d, double R, std::size_t n);

  // -- One-vs-many reductions over gathered candidate planes ----------------
  //
  // `rows` is an array of `m` row pointers, each a plane of `n` coefficients
  // (see stats/candidate_plane.hpp). Every output out[j] is the exact value
  // the corresponding one-plane reduction above produces for rows[j]: each
  // row keeps its *own* single left-to-right add chain in id order, so no
  // chain is ever reassociated. What the batched forms buy is inter-row
  // instruction-level parallelism -- several independent chains in flight
  // hide the FP-add latency that bounds one -- plus one streaming pass over
  // the shared sigma^2 table per row group.

  /// out[j] = variance_plane(rows[j], s2, n) for j in [0, m).
  void (*variance_rows)(const double* const* rows, std::size_t m,
                        const double* s2, std::size_t n, double* out);

  /// out[j] = covariance_planes(x, rows[j], s2, n) for j in [0, m).
  void (*covariance_row_tile)(const double* x, const double* const* rows,
                              std::size_t m, const double* s2, std::size_t n,
                              double* out);

  /// out[j] = sigma_diff_sq_planes(x, rows[j], s2, n) for j in [0, m).
  void (*sigma_diff_sq_row_tile)(const double* x, const double* const* rows,
                                 std::size_t m, const double* s2,
                                 std::size_t n, double* out);

  /// Batched mean +- k*sigma interval prefilter of the 2P dominance sweep
  /// (core/pruning.cpp, prob_less_at_least). For each pair j:
  ///
  ///   verdict[j] = 1 when mu_d[j] >  z_hi * (sigma_x[j] + sigma_y[j])
  ///   verdict[j] = 0 when mu_d[j] <  0.0
  ///                  or mu_d[j] <  z_lo * |sigma_x[j] - sigma_y[j]|
  ///   verdict[j] = 2 otherwise (exact sigma-of-difference pass required)
  ///
  /// evaluated in exactly that branch order with the exact scalar
  /// expressions (z_hi/z_lo are the caller's pre-widened z_p +- kappa
  /// thresholds), so NaN moments fail every comparison and land on 2 -- the
  /// same fall-through to the exact path the scalar prefilter takes.
  void (*prefilter_row_tile)(const double* mu_d, const double* sigma_x,
                             const double* sigma_y, std::size_t m, double z_hi,
                             double z_lo, std::uint8_t* verdict);
};

/// The active kernel table (dispatch happens on first use).
const kernel_table& active();

/// The table for one specific ISA (clamped to availability); used by the
/// differential tests to compare ISAs directly.
const kernel_table& table_for(kernel_isa isa);

/// True when the running CPU can execute `isa` kernels.
bool isa_available(kernel_isa isa);

// ---------------------------------------------------------------------------
// Aligned storage for the per-space sigma^2 table (and anything else that
// wants vector-friendly alignment).
// ---------------------------------------------------------------------------

/// Minimal 64-byte-aligned growable double buffer (alignment covers AVX-512
/// and keeps cache-line-sized streaming loads clean).
class aligned_doubles {
 public:
  aligned_doubles() = default;
  ~aligned_doubles() { release(); }
  aligned_doubles(const aligned_doubles& other);
  aligned_doubles& operator=(const aligned_doubles& other);
  aligned_doubles(aligned_doubles&& other) noexcept;
  aligned_doubles& operator=(aligned_doubles&& other) noexcept;

  /// Appends one value, growing geometrically (contents are preserved).
  void push_back(double v);

  /// Appends `count` *uninitialized* slots (contents before the append are
  /// preserved; growth is geometric) and returns a pointer to the first new
  /// slot. The candidate-plane gather scatters rows into the returned span.
  double* grow(std::size_t count);

  /// Rewinds to empty keeping the capacity (the per-prune-call scratch
  /// reset).
  void clear() { size_ = 0; }

  const double* data() const { return data_; }
  double* data() { return data_; }
  std::size_t size() const { return size_; }

 private:
  void release();

  double* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = 0;
};

}  // namespace vabi::stats::kernels
