// Structure-of-arrays gather of a candidate list's canonical forms.
//
// The tiled dominance engine (core/pruning.cpp) answers one-candidate-vs-a-
// whole-tile questions with the one-vs-many kernels (kernels.hpp). Those
// kernels want each form as a contiguous coefficient plane indexed by
// source id; this class packs the k forms of one per-node candidate list
// into a row-per-candidate matrix (row stride padded to a 64-byte boundary,
// so every row is vector-aligned) plus a byte presence mask per row, so
// sparse forms pack losslessly: a slot is distinguishable as "absent" vs
// "present with coefficient 0.0", exactly like the dense linear_form
// representation.
//
// Bit-identity: a gathered row holds exactly 0.0 in absent slots, so every
// reduction over it (variance, covariance, sigma-of-difference against
// another row) interleaves exact +0.0 no-op adds into the same left-to-right
// chain the sparse pass produces -- the dense-representation argument of
// linear_form.cpp, applied to scratch rows instead of owned planes.
//
// Lifetime: a candidate_plane is per-prune-call scratch. It copies
// coefficients out of the forms at gather time and holds no pointers into
// them, so sealed-slab adoption, term relocation, or list reallocation after
// the gather cannot invalidate it (and it must be re-gathered per call).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "stats/kernels.hpp"
#include "stats/linear_form.hpp"

namespace vabi::stats {

class candidate_plane {
 public:
  /// Rewinds to an empty matrix of rows over `extent` sources (the issuing
  /// variation_space's size, so rows line up with its sigma^2 table).
  /// Storage is retained across calls: steady state re-gathers allocate
  /// nothing once the high-water mark is reached.
  void reset(std::size_t extent);

  /// Scatters `f` into the next row (absent slots exactly 0.0, mask 0) and
  /// records its mean. Every term/dense slot of `f` must have id < extent.
  /// Returns the row index.
  std::size_t add_row(const linear_form& f);

  std::size_t rows() const { return rows_; }
  std::size_t extent() const { return extent_; }

  const double* row(std::size_t i) const { return coeffs_.data() + i * stride_; }
  const std::uint8_t* mask_row(std::size_t i) const {
    return masks_.data() + i * stride_;
  }
  double mean(std::size_t i) const { return means_[i]; }

 private:
  kernels::aligned_doubles coeffs_;
  std::vector<std::uint8_t> masks_;
  std::vector<double> means_;
  std::size_t extent_ = 0;
  std::size_t stride_ = 0;  ///< extent rounded up to 8 doubles (64 bytes)
  std::size_t rows_ = 0;
};

}  // namespace vabi::stats
