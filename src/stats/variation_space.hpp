// Registry of independent variation sources.
//
// The paper's first-order process-variation model (Section 3) expresses every
// device characteristic as a linear combination of *independent* zero-mean
// normal random variables:
//
//   - per-device random variation X_i       (eqs. 19-20)
//   - intra-die spatial grid variables Y_i  (eqs. 21-22)
//   - one global inter-die variable G       (eqs. 23-24)
//
// A variation_space owns the identity and the standard deviation of each
// source. Linear forms (see linear_form.hpp) refer to sources by id; all
// second-order statistics (variance, covariance, correlation) are computed
// against the space that issued those ids.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stats/kernels.hpp"

namespace vabi::stats {

/// Identifier of a variation source within a variation_space.
using source_id = std::uint32_t;

/// The three variation classes of the paper's model, plus a generic class for
/// sources that do not fit the taxonomy (e.g. raw parametric variables used
/// by the device-characterization flow).
enum class source_kind : std::uint8_t {
  random_device,  ///< independent per-device variation (X_i)
  spatial,        ///< intra-die spatially correlated grid variable (Y_i)
  inter_die,      ///< global die-to-die variable (G)
  parametric,     ///< raw process parameter (L_eff, T_ox, ...)
};

const char* to_string(source_kind kind);

/// Owns the set of independent normal variation sources of one analysis.
///
/// Sources are append-only: ids are dense indices and never invalidated.
class variation_space {
 public:
  /// Registers a new independent source ~ N(0, sigma^2). `sigma` must be >= 0.
  source_id add_source(source_kind kind, double sigma, std::string name = {});

  std::size_t size() const { return sigmas_.size(); }
  bool empty() const { return sigmas_.empty(); }

  double sigma(source_id id) const { return sigmas_[id]; }
  double variance(source_id id) const { return sigmas_[id] * sigmas_[id]; }
  source_kind kind(source_id id) const { return kinds_[id]; }
  const std::string& name(source_id id) const { return names_[id]; }

  /// All sigmas, indexed by source id (used by the Monte-Carlo sampler).
  const std::vector<double>& sigmas() const { return sigmas_; }

  /// 64-byte-aligned sigma^2 table indexed by source id -- the dense
  /// reduction kernels stream it sequentially. Each entry is the exact
  /// product sigma(id) * sigma(id), i.e. bit-identical to `variance(id)`.
  const double* sigma2_data() const { return sigma2_.data(); }
  double sigma2(source_id id) const { return sigma2_.data()[id]; }

  /// Number of registered sources of a given kind.
  std::size_t count(source_kind kind) const;

 private:
  std::vector<double> sigmas_;
  kernels::aligned_doubles sigma2_;
  std::vector<source_kind> kinds_;
  std::vector<std::string> names_;
};

}  // namespace vabi::stats
