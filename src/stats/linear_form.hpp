// First-order canonical form over a variation_space.
//
// Every statistical quantity in the library -- a buffer's capacitance or
// intrinsic delay, a candidate solution's downstream load L and required
// arrival time T -- is represented as
//
//   V = v0 + sum_i a_i * X_i                           (paper eqs. 31-32)
//
// where v0 is the nominal value and X_i are the independent zero-mean normal
// sources registered in a variation_space. The form is stored sparsely as an
// array of (source id, coefficient) terms sorted by id, so that addition,
// subtraction and covariance are single linear merges over the terms that are
// actually present.
//
// Because the X_i are independent normals, any linear form is normal, any set
// of linear forms over the same space is *jointly* normal, and the exact
// second-order statistics are:
//
//   Var(V)      = sum_i a_i^2 sigma_i^2                (eq. 41)
//   Cov(V, W)   = sum_i a_i b_i sigma_i^2              (numerator of eq. 43)
//
// This is what makes the paper's two-parameter pruning rule exact (Lemmas 2-4)
// and the statistical min (eq. 38) a closed-form operation.
//
// Storage model. A form's terms live in one of three places:
//
//   - inline: up to `inline_capacity` terms in the form itself (most device
//     forms and all deterministic forms fit here) -- no heap traffic at all;
//   - owned: a heap array, used by the value-semantics API when a form
//     outgrows the inline buffer (counted by term_heap_allocations());
//   - borrowed: a span inside a term_pool / term_block owned by the caller.
//     Copies of a borrowed form are shallow; the caller guarantees the
//     storage outlives every borrowing form (see term_pool.hpp for the epoch
//     rules). Any value-mutating operation first materializes the terms into
//     inline/owned storage, so borrowed spans are never written through.
//
// The hot path (the DP inner loops) uses the pooled_* free functions, which
// write results straight into a caller-provided term_pool and return
// borrowing forms: zero allocations per operation in steady state.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "stats/term_pool.hpp"
#include "stats/variation_space.hpp"

namespace vabi::stats {

/// One sparse term a_i * X_i of a canonical form.
struct lf_term {
  source_id id = 0;
  double coeff = 0.0;

  friend bool operator==(const lf_term&, const lf_term&) = default;
};

class linear_form;

namespace detail {
/// Finishes a pooled operation: returns `used` merged terms written at `buf`
/// (the head of a pool allocation of `allocated` terms) as a linear_form --
/// inline when small enough (the pool allocation is fully returned),
/// borrowing the pool otherwise (the unused tail is trimmed).
linear_form adopt_pool_result(double nominal, term_pool& pool, lf_term* buf,
                              std::size_t allocated, std::size_t used);

/// Wraps a pool-allocated dense plane (see term_pool::allocate_plane; the
/// mask must sit at coeff + extent) as a dense borrowing linear_form.
/// `present` must equal the mask's popcount.
linear_form adopt_dense_result(double nominal, double* coeff,
                               std::size_t extent, std::size_t present);
}  // namespace detail

/// Thread-local count of pooled results produced in the dense representation
/// (dp_stats::dense_forms aggregates this).
std::size_t dense_forms_produced() noexcept;

/// Thread-local count of term slots written by pooled merge/blend operations
/// (union size for sparse merges, plane extent for dense ones);
/// dp_stats::terms_merged aggregates this.
std::size_t pooled_terms_merged() noexcept;

/// Dense-representation policy override: mode > 0 forces every pooled result
/// with at least one term dense, mode < 0 disables the dense representation,
/// mode == 0 restores the adaptive rule (also the VABI_FORCE_DENSE=1|0
/// environment default). Test hook; results are bit-identical either way.
void set_force_dense(int mode);

/// Discards any set_force_dense override so the next pooled operation
/// re-reads VABI_FORCE_DENSE (test hook for the environment path).
void reset_force_dense_from_env();

/// Sparse first-order canonical form v0 + sum a_i X_i.
class linear_form {
 public:
  /// Terms up to this count are stored inline (no heap, no pool).
  static constexpr std::size_t inline_capacity = 4;

  linear_form() : data_(sbo_) {}
  /// A deterministic constant (no variation terms).
  explicit linear_form(double nominal) : nominal_(nominal), data_(sbo_) {}
  /// A form with explicit terms; `terms` need not be sorted or deduplicated.
  linear_form(double nominal, std::vector<lf_term> terms);

  linear_form(const linear_form& other);
  linear_form(linear_form&& other) noexcept;
  linear_form& operator=(const linear_form& other);
  linear_form& operator=(linear_form&& other) noexcept;
  ~linear_form() { release_heap(); }

  /// A form whose terms borrow external storage (a term_pool span or a
  /// sealed term_block). `terms` must be sorted by id with unique ids, and
  /// must outlive every form borrowing it; the form never writes through the
  /// span (mutation materializes an owned copy first).
  static linear_form from_pooled(double nominal, std::span<const lf_term> terms);

  double nominal() const { return nominal_; }
  /// Mean of the form; equals the nominal value since all sources are
  /// zero-mean.
  double mean() const { return nominal_; }

  /// Sparse term view. Must not be called on a dense form (see is_dense();
  /// mutation entry points and relocate_terms sparsify first).
  std::span<const lf_term> terms() const {
    assert(extent_ == 0);
    return {data_, size_};
  }
  std::size_t num_terms() const { return size_; }
  bool is_deterministic() const { return size_ == 0; }

  /// Dense representation: instead of sorted (id, coeff) terms, the form
  /// borrows a contiguous coefficient plane indexed by source id (absent
  /// slots hold exactly 0.0) plus a byte-per-id presence mask. Produced by
  /// the pooled operations when forms are dense relative to the variation
  /// space; always borrowed pool storage (the seal path re-sparsifies), and
  /// bit-identical to the sparse representation under every operation.
  bool is_dense() const { return extent_ != 0; }
  /// Plane length (max present id + 1); 0 for sparse forms.
  std::size_t dense_extent() const { return extent_; }
  const double* dense_coeffs() const {
    return reinterpret_cast<const double*>(data_);
  }
  const std::uint8_t* dense_mask() const {
    return reinterpret_cast<const std::uint8_t*>(dense_coeffs() + extent_);
  }

  /// True when the terms live in this object (inline) or on its own heap
  /// block; false when they borrow a pool/block span.
  bool owns_terms() const { return capacity_ != 0; }
  /// Materializes borrowed terms into owned storage; no-op when already
  /// owned. Call before the borrowed storage's epoch ends.
  void own_terms();
  /// Sealing primitive: moves borrowed terms out of their current storage
  /// before its epoch ends. Small borrowed forms become inline (returns 0);
  /// larger ones copy their terms to `dst` and borrow from there (returns
  /// the number of terms written). Owned forms are untouched (returns 0).
  std::size_t relocate_terms(lf_term* dst);

  /// Cache-cloning primitive: after a sealed slab of `extent` terms based at
  /// `old_base` has been byte-copied to `new_base`, re-points a borrowed
  /// sparse span at the same offset inside the copy. Owned, dense, empty,
  /// and out-of-slab forms are untouched, so it is safe to call on every
  /// form of a cloned candidate list.
  void rebase_terms(const lf_term* old_base, std::size_t extent,
                    lf_term* new_base) {
    if (capacity_ != 0 || extent_ != 0 || size_ == 0) return;
    if (data_ >= old_base && data_ + size_ <= old_base + extent) {
      data_ = new_base + (data_ - old_base);
    }
  }

  /// Coefficient on source `id` (0 if absent).
  double coefficient(source_id id) const;

  /// Adds `coeff * X_id` to this form.
  void add_term(source_id id, double coeff);

  linear_form& operator+=(const linear_form& rhs);
  linear_form& operator-=(const linear_form& rhs);
  linear_form& operator+=(double constant);
  linear_form& operator-=(double constant);
  linear_form& operator*=(double scale);

  friend linear_form operator+(linear_form lhs, const linear_form& rhs) {
    lhs += rhs;
    return lhs;
  }
  friend linear_form operator-(linear_form lhs, const linear_form& rhs) {
    lhs -= rhs;
    return lhs;
  }
  friend linear_form operator*(linear_form lhs, double scale) {
    lhs *= scale;
    return lhs;
  }
  friend linear_form operator*(double scale, linear_form rhs) {
    rhs *= scale;
    return rhs;
  }

  friend bool operator==(const linear_form& a, const linear_form& b) {
    if (a.nominal_ != b.nominal_ || a.size_ != b.size_) return false;
    if ((a.extent_ | b.extent_) != 0) return equal_slow(a, b);
    for (std::uint32_t i = 0; i < a.size_; ++i) {
      if (a.data_[i].id != b.data_[i].id ||
          a.data_[i].coeff != b.data_[i].coeff) {
        return false;
      }
    }
    return true;
  }

  /// Exact variance over `space` (eq. 41).
  double variance(const variation_space& space) const;
  double stddev(const variation_space& space) const;

  /// Evaluates the form at a concrete sample of every source. `sample[id]`
  /// must hold the drawn value of source `id` (see monte_carlo.hpp).
  double evaluate(std::span<const double> sample) const;

  /// Removes terms with |coeff| <= eps (absolute). Keeps the form canonical
  /// after cancellations.
  void prune_zero_terms(double eps = 0.0);

  /// True when the nominal and every present coefficient are finite. Works
  /// on both representations (the engines' seal-point NaN scan).
  bool is_finite() const;

 private:
  friend linear_form detail::adopt_pool_result(double, term_pool&, lf_term*,
                                               std::size_t, std::size_t);
  friend linear_form detail::adopt_dense_result(double, double*, std::size_t,
                                                std::size_t);

  /// Mixed/dense representation-aware tail of operator== (nominal and term
  /// counts already matched).
  static bool equal_slow(const linear_form& a, const linear_form& b);

  linear_form(double nominal, const lf_term* borrowed, std::size_t n)
      : nominal_(nominal),
        data_(borrowed != nullptr ? const_cast<lf_term*>(borrowed) : sbo_),
        size_(static_cast<std::uint32_t>(n)),
        capacity_(borrowed != nullptr ? 0 : inline_capacity) {}

  bool owns_heap() const { return capacity_ != 0 && data_ != sbo_; }
  void release_heap() {
    if (owns_heap()) delete[] data_;
  }
  /// Materializes a dense form into owned sparse storage (inline or heap
  /// sized for at least `min_capacity` terms).
  void sparsify(std::size_t min_capacity);
  /// Guarantees owned storage for at least `min_capacity` terms, preserving
  /// the current terms (materializes borrowed spans).
  void ensure_mutable(std::size_t min_capacity);
  /// Replaces this form's terms with a copy of src[0..n), reusing owned
  /// capacity when possible. `src` must not alias this form's storage.
  void assign_terms(const lf_term* src, std::size_t n);

  double nominal_ = 0.0;
  lf_term* data_ = nullptr;       // sbo_, owned heap, borrowed terms, or the
                                  // borrowed dense plane (extent_ != 0)
  std::uint32_t size_ = 0;        // terms in use (mask popcount when dense)
  std::uint32_t capacity_ = inline_capacity;  // 0 <=> borrowed (non-owning)
  std::uint32_t extent_ = 0;      // dense plane length; 0 <=> sparse
  lf_term sbo_[inline_capacity];  // small-buffer inline storage
};

/// Exact covariance of two forms over `space`.
double covariance(const linear_form& a, const linear_form& b,
                  const variation_space& space);

/// Correlation coefficient rho(a, b); returns 0 when either form is
/// deterministic.
double correlation(const linear_form& a, const linear_form& b,
                   const variation_space& space);

/// Standard deviation of the difference a - b (paper eq. 9 / eq. 40):
///   sigma_{a,b} = sqrt(Var(a) - 2 Cov(a,b) + Var(b))
/// computed in one sparse pass without materializing a - b.
double sigma_of_difference(const linear_form& a, const linear_form& b,
                           const variation_space& space);

/// P(a > b) for jointly normal forms (paper eq. 8):
///   Phi((mu_a - mu_b) / sigma_{a,b}).
/// When sigma_{a,b} == 0 the comparison degenerates to the deterministic one
/// (returns 1, 0, or 0.5 on a tie).
double prob_greater(const linear_form& a, const linear_form& b,
                    const variation_space& space);

/// Tightness probability P(a < b) (paper eq. 39).
double tightness_probability(const linear_form& a, const linear_form& b,
                             const variation_space& space);

/// Statistical min of two jointly normal forms, re-expressed as a canonical
/// form via the tightness-probability linearization of [Visweswariah et al.]
/// (paper eq. 38):
///
///   min(a,b) ~ t*a0 + (1-t)*b0 - sigma_{a,b} * phi((mu_b - mu_a)/sigma_{a,b})
///              + sum (t*a_i + (1-t)*b_i) X_i,   t = P(a < b).
///
/// The mean matches the exact mean of min(a,b) (Cain 1994); the linear terms
/// preserve covariance with the underlying sources to first order.
linear_form statistical_min(const linear_form& a, const linear_form& b,
                            const variation_space& space);

/// Statistical max, by the dual linearization: max(a,b) = -min(-a,-b).
linear_form statistical_max(const linear_form& a, const linear_form& b,
                            const variation_space& space);

/// The p-quantile of the (normal) form: mean + stddev * Phi^-1(p).
double percentile(const linear_form& f, const variation_space& space, double p);

std::ostream& operator<<(std::ostream& os, const linear_form& f);

// ---------------------------------------------------------------------------
// Pooled operations: results borrow `pool` storage (inline when <= 4 terms),
// so steady-state cost is the merge itself -- no allocation, no free. All of
// them are bit-identical to the equivalent value-semantics expression; the
// engines' golden tests depend on this.
// ---------------------------------------------------------------------------

/// A borrowing copy of `f` with its terms re-homed into `pool`. Used to pin
/// a short-lived owned form (e.g. a characterized device form) into the
/// current pool epoch so candidates can borrow it.
linear_form pooled_copy(const linear_form& f, term_pool& pool);

/// a + b. Bit-identical to `linear_form c = a; c += b;`.
linear_form pooled_add(const linear_form& a, const linear_form& b,
                       term_pool& pool);

/// a - b. Bit-identical to `linear_form c = a; c -= b;`.
linear_form pooled_sub(const linear_form& a, const linear_form& b,
                       term_pool& pool);

/// a - s*b in one merge. Bit-identical to `linear_form c = a; c -= s * b;`
/// (the add-wire / add-buffer updates of eqs. 33-36).
linear_form pooled_sub_scaled(const linear_form& a, double s,
                              const linear_form& b, term_pool& pool);

/// a + s*b in one merge. Bit-identical to `linear_form c = a; c += s * b;`
/// (the top-down arrival accumulation of the skew analysis).
linear_form pooled_add_scaled(const linear_form& a, double s,
                              const linear_form& b, term_pool& pool);

/// sa*a + sb*b in one merge. Bit-identical to `sa * a + sb * b` (the
/// tightness-probability blend of eq. 38).
linear_form pooled_blend(double sa, const linear_form& a, double sb,
                         const linear_form& b, term_pool& pool);

/// statistical_min with the result in `pool`. Bit-identical to the value
/// overload when `drop_rel_eps == 0`. A positive `drop_rel_eps` drops blend
/// terms with |coeff| <= drop_rel_eps * max|coeff| of the result -- the
/// tightness blend otherwise keeps every near-zero coefficient forever and
/// deep trees accumulate superlinear term counts (see
/// stat_options::term_prune_rel_eps).
linear_form statistical_min(const linear_form& a, const linear_form& b,
                            const variation_space& space, term_pool& pool,
                            double drop_rel_eps = 0.0);

/// statistical_max with the result in `pool`; dual of the pooled min.
linear_form statistical_max(const linear_form& a, const linear_form& b,
                            const variation_space& space, term_pool& pool,
                            double drop_rel_eps = 0.0);

}  // namespace vabi::stats
