// First-order canonical form over a variation_space.
//
// Every statistical quantity in the library -- a buffer's capacitance or
// intrinsic delay, a candidate solution's downstream load L and required
// arrival time T -- is represented as
//
//   V = v0 + sum_i a_i * X_i                           (paper eqs. 31-32)
//
// where v0 is the nominal value and X_i are the independent zero-mean normal
// sources registered in a variation_space. The form is stored sparsely as a
// vector of (source id, coefficient) terms sorted by id, so that addition,
// subtraction and covariance are single linear merges over the terms that are
// actually present.
//
// Because the X_i are independent normals, any linear form is normal, any set
// of linear forms over the same space is *jointly* normal, and the exact
// second-order statistics are:
//
//   Var(V)      = sum_i a_i^2 sigma_i^2                (eq. 41)
//   Cov(V, W)   = sum_i a_i b_i sigma_i^2              (numerator of eq. 43)
//
// This is what makes the paper's two-parameter pruning rule exact (Lemmas 2-4)
// and the statistical min (eq. 38) a closed-form operation.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "stats/variation_space.hpp"

namespace vabi::stats {

/// One sparse term a_i * X_i of a canonical form.
struct lf_term {
  source_id id = 0;
  double coeff = 0.0;

  friend bool operator==(const lf_term&, const lf_term&) = default;
};

/// Sparse first-order canonical form v0 + sum a_i X_i.
class linear_form {
 public:
  linear_form() = default;
  /// A deterministic constant (no variation terms).
  explicit linear_form(double nominal) : nominal_(nominal) {}
  /// A form with explicit terms; `terms` need not be sorted or deduplicated.
  linear_form(double nominal, std::vector<lf_term> terms);

  double nominal() const { return nominal_; }
  /// Mean of the form; equals the nominal value since all sources are
  /// zero-mean.
  double mean() const { return nominal_; }

  const std::vector<lf_term>& terms() const { return terms_; }
  std::size_t num_terms() const { return terms_.size(); }
  bool is_deterministic() const { return terms_.empty(); }

  /// Coefficient on source `id` (0 if absent).
  double coefficient(source_id id) const;

  /// Adds `coeff * X_id` to this form.
  void add_term(source_id id, double coeff);

  linear_form& operator+=(const linear_form& rhs);
  linear_form& operator-=(const linear_form& rhs);
  linear_form& operator+=(double constant);
  linear_form& operator-=(double constant);
  linear_form& operator*=(double scale);

  friend linear_form operator+(linear_form lhs, const linear_form& rhs) {
    lhs += rhs;
    return lhs;
  }
  friend linear_form operator-(linear_form lhs, const linear_form& rhs) {
    lhs -= rhs;
    return lhs;
  }
  friend linear_form operator*(linear_form lhs, double scale) {
    lhs *= scale;
    return lhs;
  }
  friend linear_form operator*(double scale, linear_form rhs) {
    rhs *= scale;
    return rhs;
  }

  friend bool operator==(const linear_form&, const linear_form&) = default;

  /// Exact variance over `space` (eq. 41).
  double variance(const variation_space& space) const;
  double stddev(const variation_space& space) const;

  /// Evaluates the form at a concrete sample of every source. `sample[id]`
  /// must hold the drawn value of source `id` (see monte_carlo.hpp).
  double evaluate(std::span<const double> sample) const;

  /// Removes terms with |coeff| <= eps (absolute). Keeps the form canonical
  /// after cancellations.
  void prune_zero_terms(double eps = 0.0);

 private:
  void normalize();

  double nominal_ = 0.0;
  std::vector<lf_term> terms_;  // sorted by id, unique ids
};

/// Exact covariance of two forms over `space`.
double covariance(const linear_form& a, const linear_form& b,
                  const variation_space& space);

/// Correlation coefficient rho(a, b); returns 0 when either form is
/// deterministic.
double correlation(const linear_form& a, const linear_form& b,
                   const variation_space& space);

/// Standard deviation of the difference a - b (paper eq. 9 / eq. 40):
///   sigma_{a,b} = sqrt(Var(a) - 2 Cov(a,b) + Var(b))
/// computed in one sparse pass without materializing a - b.
double sigma_of_difference(const linear_form& a, const linear_form& b,
                           const variation_space& space);

/// P(a > b) for jointly normal forms (paper eq. 8):
///   Phi((mu_a - mu_b) / sigma_{a,b}).
/// When sigma_{a,b} == 0 the comparison degenerates to the deterministic one
/// (returns 1, 0, or 0.5 on a tie).
double prob_greater(const linear_form& a, const linear_form& b,
                    const variation_space& space);

/// Tightness probability P(a < b) (paper eq. 39).
double tightness_probability(const linear_form& a, const linear_form& b,
                             const variation_space& space);

/// Statistical min of two jointly normal forms, re-expressed as a canonical
/// form via the tightness-probability linearization of [Visweswariah et al.]
/// (paper eq. 38):
///
///   min(a,b) ~ t*a0 + (1-t)*b0 - sigma_{a,b} * phi((mu_b - mu_a)/sigma_{a,b})
///              + sum (t*a_i + (1-t)*b_i) X_i,   t = P(a < b).
///
/// The mean matches the exact mean of min(a,b) (Cain 1994); the linear terms
/// preserve covariance with the underlying sources to first order.
linear_form statistical_min(const linear_form& a, const linear_form& b,
                            const variation_space& space);

/// Statistical max, by the dual linearization: max(a,b) = -min(-a,-b).
linear_form statistical_max(const linear_form& a, const linear_form& b,
                            const variation_space& space);

/// The p-quantile of the (normal) form: mean + stddev * Phi^-1(p).
double percentile(const linear_form& f, const variation_space& space, double p);

std::ostream& operator<<(std::ostream& os, const linear_form& f);

}  // namespace vabi::stats
