#include "stats/normal.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace vabi::stats {

namespace {

constexpr double k_inv_sqrt_2pi = 0.3989422804014326779399461;
constexpr double k_inv_sqrt_2 = 0.7071067811865475244008444;

// Coefficients of Acklam's rational approximation to the normal quantile.
constexpr double a1 = -3.969683028665376e+01;
constexpr double a2 = 2.209460984245205e+02;
constexpr double a3 = -2.759285104469687e+02;
constexpr double a4 = 1.383577518672690e+02;
constexpr double a5 = -3.066479806614716e+01;
constexpr double a6 = 2.506628277459239e+00;

constexpr double b1 = -5.447609879822406e+01;
constexpr double b2 = 1.615858368580409e+02;
constexpr double b3 = -1.556989798598866e+02;
constexpr double b4 = 6.680131188771972e+01;
constexpr double b5 = -1.328068155288572e+01;

constexpr double c1 = -7.784894002430293e-03;
constexpr double c2 = -3.223964580411365e-01;
constexpr double c3 = -2.400758277161838e+00;
constexpr double c4 = -2.549732539343734e+00;
constexpr double c5 = 4.374664141464968e+00;
constexpr double c6 = 2.938163982698783e+00;

constexpr double d1 = 7.784695709041462e-03;
constexpr double d2 = 3.224671290700398e-01;
constexpr double d3 = 2.445134137142996e+00;
constexpr double d4 = 3.754408661907416e+00;

double acklam_quantile(double p) {
  constexpr double p_low = 0.02425;
  constexpr double p_high = 1.0 - p_low;
  double q = 0.0;
  double r = 0.0;
  if (p < p_low) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c1 * q + c2) * q + c3) * q + c4) * q + c5) * q + c6) /
           ((((d1 * q + d2) * q + d3) * q + d4) * q + 1.0);
  }
  if (p <= p_high) {
    q = p - 0.5;
    r = q * q;
    return (((((a1 * r + a2) * r + a3) * r + a4) * r + a5) * r + a6) * q /
           (((((b1 * r + b2) * r + b3) * r + b4) * r + b5) * r + 1.0);
  }
  q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c1 * q + c2) * q + c3) * q + c4) * q + c5) * q + c6) /
         ((((d1 * q + d2) * q + d3) * q + d4) * q + 1.0);
}

}  // namespace

double normal_pdf(double x) { return k_inv_sqrt_2pi * std::exp(-0.5 * x * x); }

double normal_cdf(double x) { return 0.5 * std::erfc(-x * k_inv_sqrt_2); }

double normal_quantile(double p) {
  if (!(p > 0.0 && p < 1.0)) {
    throw std::domain_error("normal_quantile: p must be in (0, 1)");
  }
  double x = acklam_quantile(p);
  // One Halley refinement step pushes the approximation to near machine
  // precision: e = Phi(x) - p, x <- x - 2e / (2*phi(x) + e*x)... using the
  // standard update u = e * sqrt(2*pi) * exp(x^2/2); x <- x - u/(1 + x*u/2).
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(0.5 * x * x);
  x = x - u / (1.0 + 0.5 * x * u);
  return x;
}

double normal_exceedance(double mean, double sigma, double t) {
  assert(sigma >= 0.0);
  if (sigma == 0.0) {
    if (mean > t) return 1.0;
    if (mean < t) return 0.0;
    return 0.5;
  }
  return normal_cdf((mean - t) / sigma);
}

double normal_percentile(double mean, double sigma, double p) {
  assert(sigma >= 0.0);
  if (sigma == 0.0) return mean;
  return mean + sigma * normal_quantile(p);
}

}  // namespace vabi::stats
