// Empirical-distribution utilities for Monte-Carlo validation.
//
// Backs the paper's model-vs-Monte-Carlo comparisons: Fig. 3 (device delay
// PDF vs its first-order normal approximation) and Fig. 6 (root RAT PDF).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace vabi::stats {

/// Summary moments of a sample set.
struct sample_moments {
  double mean = 0.0;
  double stddev = 0.0;   ///< unbiased (n-1) estimator
  double skewness = 0.0;
  double kurtosis_excess = 0.0;
  std::size_t n = 0;
};

sample_moments compute_moments(std::span<const double> samples);

/// Holds a sorted copy of a sample set and answers distribution queries.
class empirical_distribution {
 public:
  explicit empirical_distribution(std::vector<double> samples);

  std::size_t size() const { return sorted_.size(); }
  double min() const { return sorted_.front(); }
  double max() const { return sorted_.back(); }

  const sample_moments& moments() const { return moments_; }
  double mean() const { return moments_.mean; }
  double stddev() const { return moments_.stddev; }

  /// p-quantile by linear interpolation of order statistics, p in [0, 1].
  double quantile(double p) const;

  /// Empirical CDF at x: fraction of samples <= x.
  double cdf(double x) const;

  /// Kolmogorov-Smirnov distance to N(mean, sigma^2) -- the figure of merit
  /// for "the normal approximation is close" claims.
  double ks_distance_to_normal(double mean, double sigma) const;

  /// Equal-width histogram over [min, max] with `bins` bins, normalized to a
  /// probability density (area 1). Returns {bin_center, density} pairs.
  std::vector<std::pair<double, double>> density_histogram(
      std::size_t bins) const;

  const std::vector<double>& sorted_samples() const { return sorted_; }

 private:
  std::vector<double> sorted_;
  sample_moments moments_;
};

}  // namespace vabi::stats
