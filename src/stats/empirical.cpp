#include "stats/empirical.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/normal.hpp"

namespace vabi::stats {

sample_moments compute_moments(std::span<const double> samples) {
  sample_moments m;
  m.n = samples.size();
  if (m.n == 0) return m;
  double sum = 0.0;
  for (double x : samples) sum += x;
  m.mean = sum / static_cast<double>(m.n);
  if (m.n < 2) return m;
  double m2 = 0.0;
  double m3 = 0.0;
  double m4 = 0.0;
  for (double x : samples) {
    const double d = x - m.mean;
    m2 += d * d;
    m3 += d * d * d;
    m4 += d * d * d * d;
  }
  const double n = static_cast<double>(m.n);
  m.stddev = std::sqrt(m2 / (n - 1.0));
  const double sigma = std::sqrt(m2 / n);  // population sigma for shape stats
  if (sigma > 0.0) {
    m.skewness = (m3 / n) / (sigma * sigma * sigma);
    m.kurtosis_excess = (m4 / n) / (sigma * sigma * sigma * sigma) - 3.0;
  }
  return m;
}

empirical_distribution::empirical_distribution(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  if (sorted_.empty()) {
    throw std::invalid_argument("empirical_distribution: empty sample set");
  }
  std::sort(sorted_.begin(), sorted_.end());
  moments_ = compute_moments(sorted_);
}

double empirical_distribution::quantile(double p) const {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::domain_error("empirical_distribution::quantile: p not in [0,1]");
  }
  if (sorted_.size() == 1) return sorted_.front();
  const double pos = p * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] + frac * (sorted_[lo + 1] - sorted_[lo]);
}

double empirical_distribution::cdf(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double empirical_distribution::ks_distance_to_normal(double mean,
                                                     double sigma) const {
  if (sigma <= 0.0) {
    throw std::domain_error("ks_distance_to_normal: sigma must be > 0");
  }
  const double n = static_cast<double>(sorted_.size());
  double d = 0.0;
  for (std::size_t i = 0; i < sorted_.size(); ++i) {
    const double f = normal_cdf((sorted_[i] - mean) / sigma);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max(d, std::max(std::abs(f - lo), std::abs(hi - f)));
  }
  return d;
}

std::vector<std::pair<double, double>> empirical_distribution::density_histogram(
    std::size_t bins) const {
  if (bins == 0) {
    throw std::invalid_argument("density_histogram: bins must be > 0");
  }
  const double lo = min();
  const double hi = max();
  const double width = (hi > lo) ? (hi - lo) / static_cast<double>(bins) : 1.0;
  std::vector<std::size_t> counts(bins, 0);
  for (double x : sorted_) {
    auto b = static_cast<std::size_t>((x - lo) / width);
    if (b >= bins) b = bins - 1;
    ++counts[b];
  }
  std::vector<std::pair<double, double>> out(bins);
  const double norm =
      1.0 / (static_cast<double>(sorted_.size()) * width);
  for (std::size_t b = 0; b < bins; ++b) {
    out[b] = {lo + (static_cast<double>(b) + 0.5) * width,
              static_cast<double>(counts[b]) * norm};
  }
  return out;
}

}  // namespace vabi::stats
