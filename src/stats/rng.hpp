// Deterministic random-number generation.
//
// All stochastic components of the library (benchmark generators, Monte-Carlo
// sampling, device characterization) draw from an explicitly seeded engine so
// that every experiment in EXPERIMENTS.md is bit-reproducible.
#pragma once

#include <cstdint>
#include <random>

namespace vabi::stats {

/// The library-wide random engine type.
using rng_engine = std::mt19937_64;

/// Creates an engine from a 64-bit seed. A convenience wrapper so call sites
/// never instantiate an unseeded engine by accident.
inline rng_engine make_rng(std::uint64_t seed) { return rng_engine{seed}; }

/// Derives an independent stream from (seed, stream) -- used to give each
/// benchmark / experiment its own reproducible stream.
inline rng_engine make_rng(std::uint64_t seed, std::uint64_t stream) {
  // SplitMix64 step decorrelates the pair before seeding.
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return rng_engine{z ^ (z >> 31)};
}

}  // namespace vabi::stats
