// Deterministic random-number generation.
//
// All stochastic components of the library (benchmark generators, Monte-Carlo
// sampling, device characterization) draw from an explicitly seeded engine so
// that every experiment in EXPERIMENTS.md is bit-reproducible.
#pragma once

#include <cstdint>
#include <random>

namespace vabi::stats {

/// The library-wide random engine type.
using rng_engine = std::mt19937_64;

/// Creates an engine from a 64-bit seed. A convenience wrapper so call sites
/// never instantiate an unseeded engine by accident.
inline rng_engine make_rng(std::uint64_t seed) { return rng_engine{seed}; }

/// Mixes (seed, stream) into an independent 64-bit seed via a SplitMix64
/// step. This is the seed-level counterpart of make_rng(seed, stream): batch
/// jobs use it to fan one master seed into per-job streams whose identity
/// does not depend on thread count or scheduling order.
inline std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t stream) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Derives an independent stream from (seed, stream) -- used to give each
/// benchmark / experiment its own reproducible stream.
inline rng_engine make_rng(std::uint64_t seed, std::uint64_t stream) {
  return rng_engine{derive_seed(seed, stream)};
}

}  // namespace vabi::stats
