#include "stats/least_squares.hpp"

#include <cmath>
#include <stdexcept>

namespace vabi::stats {

std::vector<double> solve_spd(std::vector<double> a, std::vector<double> b,
                              std::size_t n) {
  if (a.size() != n * n || b.size() != n) {
    throw std::invalid_argument("solve_spd: shape mismatch");
  }
  // In-place Cholesky: a becomes lower-triangular L with A = L L^T.
  for (std::size_t j = 0; j < n; ++j) {
    double d = a[j * n + j];
    for (std::size_t k = 0; k < j; ++k) d -= a[j * n + k] * a[j * n + k];
    if (d <= 0.0) {
      throw std::invalid_argument("solve_spd: matrix not positive definite");
    }
    const double ljj = std::sqrt(d);
    a[j * n + j] = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a[i * n + j];
      for (std::size_t k = 0; k < j; ++k) s -= a[i * n + k] * a[j * n + k];
      a[i * n + j] = s / ljj;
    }
  }
  // Forward substitution L y = b.
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= a[i * n + k] * b[k];
    b[i] = s / a[i * n + i];
  }
  // Back substitution L^T x = y.
  for (std::size_t ii = n; ii-- > 0;) {
    double s = b[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= a[k * n + ii] * b[k];
    b[ii] = s / a[ii * n + ii];
  }
  return b;
}

least_squares_fit fit_linear(const std::vector<std::vector<double>>& rows,
                             std::span<const double> y) {
  const std::size_t m = rows.size();
  if (m == 0 || y.size() != m) {
    throw std::invalid_argument("fit_linear: empty input or size mismatch");
  }
  const std::size_t p = rows.front().size();
  for (const auto& r : rows) {
    if (r.size() != p) {
      throw std::invalid_argument("fit_linear: ragged design matrix");
    }
  }
  const std::size_t n = p + 1;  // +1 for the intercept column
  if (m < n) {
    throw std::invalid_argument("fit_linear: underdetermined system");
  }

  // Normal equations (X^T X) beta = X^T y with X = [1 | rows].
  std::vector<double> xtx(n * n, 0.0);
  std::vector<double> xty(n, 0.0);
  std::vector<double> xi(n);
  for (std::size_t i = 0; i < m; ++i) {
    xi[0] = 1.0;
    for (std::size_t j = 0; j < p; ++j) xi[j + 1] = rows[i][j];
    for (std::size_t r = 0; r < n; ++r) {
      xty[r] += xi[r] * y[i];
      for (std::size_t c = 0; c < n; ++c) xtx[r * n + c] += xi[r] * xi[c];
    }
  }
  std::vector<double> beta = solve_spd(std::move(xtx), std::move(xty), n);

  least_squares_fit fit;
  fit.intercept = beta[0];
  fit.coeffs.assign(beta.begin() + 1, beta.end());

  double y_mean = 0.0;
  for (std::size_t i = 0; i < m; ++i) y_mean += y[i];
  y_mean /= static_cast<double>(m);

  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    double pred = fit.intercept;
    for (std::size_t j = 0; j < p; ++j) pred += fit.coeffs[j] * rows[i][j];
    ss_res += (y[i] - pred) * (y[i] - pred);
    ss_tot += (y[i] - y_mean) * (y[i] - y_mean);
  }
  fit.rms_residual = std::sqrt(ss_res / static_cast<double>(m));
  fit.r_squared = (ss_tot > 0.0) ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

}  // namespace vabi::stats
