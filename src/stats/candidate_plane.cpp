#include "stats/candidate_plane.hpp"

#include <cassert>
#include <cstring>

namespace vabi::stats {

void candidate_plane::reset(std::size_t extent) {
  extent_ = extent;
  stride_ = (extent + 7) & ~std::size_t{7};
  rows_ = 0;
  coeffs_.clear();
  masks_.clear();
  means_.clear();
}

std::size_t candidate_plane::add_row(const linear_form& f) {
  double* row = coeffs_.grow(stride_);
  masks_.resize(masks_.size() + stride_);
  std::uint8_t* mask = masks_.data() + rows_ * stride_;
  std::memset(row, 0, stride_ * sizeof(double));
  std::memset(mask, 0, stride_);
  if (f.is_dense()) {
    const std::size_t e = f.dense_extent();
    assert(e <= extent_);
    std::memcpy(row, f.dense_coeffs(), e * sizeof(double));
    std::memcpy(mask, f.dense_mask(), e);
  } else {
    for (const auto& t : f.terms()) {
      assert(t.id < extent_);
      row[t.id] = t.coeff;
      mask[t.id] = 0xFF;
    }
  }
  means_.push_back(f.mean());
  return rows_++;
}

}  // namespace vabi::stats
