// Monte-Carlo sampling over a variation_space.
//
// Used to (a) validate the canonical-form model against "ground truth"
// simulation (paper Fig. 6), and (b) characterize nonlinear device models
// (paper Fig. 3). A sample assigns one drawn value to every source id; linear
// forms are then evaluated against the sample vector.
#pragma once

#include <span>
#include <vector>

#include "stats/rng.hpp"
#include "stats/variation_space.hpp"

namespace vabi::stats {

/// Draws independent N(0, sigma_i^2) samples for every source of a space.
class monte_carlo_sampler {
 public:
  monte_carlo_sampler(const variation_space& space, std::uint64_t seed);

  /// Draws one sample of the whole space; `out` is resized to space.size()
  /// and out[id] holds the value of source id.
  void draw(std::vector<double>& out);

  /// Draws `n` samples; result is n vectors of space.size() values.
  std::vector<std::vector<double>> draw_many(std::size_t n);

  const variation_space& space() const { return space_; }

 private:
  const variation_space& space_;
  rng_engine rng_;
  std::normal_distribution<double> unit_normal_{0.0, 1.0};
};

}  // namespace vabi::stats
