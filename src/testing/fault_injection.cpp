#include "testing/fault_injection.hpp"

#include <array>
#include <cstdlib>
#include <mutex>
#include <stdexcept>

namespace vabi::testing {

namespace {

constexpr std::size_t num_points =
    static_cast<std::size_t>(fault_point::count_);

/// Armed specs plus counters. Specs are written under g_mu only while the
/// mask bit is clear (arm() publishes the bit last, disarm() clears it
/// first), so the lock-free readers in detail::fire never observe a spec
/// being rewritten.
struct point_state {
  fault_spec spec;
  std::atomic<std::uint64_t> queries{0};
  std::atomic<std::uint64_t> fired{0};
};

std::array<point_state, num_points>& states() {
  static std::array<point_state, num_points> s;
  return s;
}

std::mutex g_mu;

std::uint64_t parse_u64(std::string_view clause, std::string_view value) {
  std::uint64_t out = 0;
  if (value.empty()) {
    throw std::invalid_argument("fault_injection: empty value in clause '" +
                                std::string(clause) + "'");
  }
  for (char c : value) {
    if (c < '0' || c > '9') {
      throw std::invalid_argument("fault_injection: bad number in clause '" +
                                  std::string(clause) + "'");
    }
    out = out * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return out;
}

fault_point point_from_name(std::string_view name, std::string_view clause) {
  for (std::size_t i = 0; i < num_points; ++i) {
    if (name == to_string(static_cast<fault_point>(i))) {
      return static_cast<fault_point>(i);
    }
  }
  throw std::invalid_argument("fault_injection: unknown point in clause '" +
                              std::string(clause) + "'");
}

}  // namespace

const char* to_string(fault_point point) {
  switch (point) {
    case fault_point::term_pool_alloc:
      return "term_pool_alloc";
    case fault_point::device_nan:
      return "device_nan";
    case fault_point::deadline_at_node:
      return "deadline_at_node";
    case fault_point::cancel_wave:
      return "cancel_wave";
    case fault_point::batch_job_throw:
      return "batch_job_throw";
    case fault_point::journal_write_short:
      return "journal_write_short";
    case fault_point::journal_crc_flip:
      return "journal_crc_flip";
    case fault_point::crash_after_job:
      return "crash_after_job";
    case fault_point::wire_short_read:
      return "wire_short_read";
    case fault_point::wire_short_write:
      return "wire_short_write";
    case fault_point::wire_crc_flip:
      return "wire_crc_flip";
    case fault_point::wire_accept_fail:
      return "wire_accept_fail";
    case fault_point::wire_stall_client:
      return "wire_stall_client";
    case fault_point::wire_drop_session:
      return "wire_drop_session";
    case fault_point::worker_spawn_fail:
      return "worker_spawn_fail";
    case fault_point::worker_hang:
      return "worker_hang";
    case fault_point::shard_write_short:
      return "shard_write_short";
    case fault_point::heartbeat_drop:
      return "heartbeat_drop";
    case fault_point::count_:
      break;
  }
  return "?";
}

fault_config parse_fault_spec(std::string_view text) {
  fault_config config;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t end = std::min(text.find(';', pos), text.size());
    std::string_view clause = text.substr(pos, end - pos);
    pos = end + 1;
    if (clause.empty()) {
      if (end == text.size()) break;
      continue;
    }
    if (clause.substr(0, 5) == "seed=") {
      config.seed = parse_u64(clause, clause.substr(5));
      continue;
    }
    const std::size_t colon = clause.find(':');
    fault_spec spec;
    spec.point = point_from_name(clause.substr(0, colon), clause);
    if (colon != std::string_view::npos) {
      std::string_view args = clause.substr(colon + 1);
      std::size_t apos = 0;
      while (apos <= args.size()) {
        const std::size_t aend = std::min(args.find(',', apos), args.size());
        std::string_view kv = args.substr(apos, aend - apos);
        apos = aend + 1;
        if (kv.empty()) {
          if (aend == args.size()) break;
          continue;
        }
        if (kv.substr(0, 6) == "after=") {
          spec.after = parse_u64(clause, kv.substr(6));
        } else if (kv.substr(0, 5) == "node=" || kv.substr(0, 4) == "job=") {
          spec.id = parse_u64(clause, kv.substr(kv.find('=') + 1));
        } else {
          throw std::invalid_argument(
              "fault_injection: unknown key in clause '" + std::string(clause) +
              "'");
        }
        if (aend == args.size()) break;
      }
    }
    config.specs.push_back(spec);
    if (end == text.size()) break;
  }
  return config;
}

void arm(const fault_config& config) {
  std::lock_guard lk(g_mu);
  detail::g_armed_mask.store(0, std::memory_order_release);
  std::uint32_t mask = 0;
  for (auto& st : states()) {
    st.queries.store(0, std::memory_order_relaxed);
    st.fired.store(0, std::memory_order_relaxed);
  }
  for (const fault_spec& spec : config.specs) {
    if (spec.point >= fault_point::count_) continue;
    const auto idx = static_cast<std::size_t>(spec.point);
    states()[idx].spec = spec;
    mask |= 1u << idx;
  }
  detail::g_armed_mask.store(mask, std::memory_order_release);
}

void arm(std::string_view spec) { arm(parse_fault_spec(spec)); }

void disarm() {
  std::lock_guard lk(g_mu);
  detail::g_armed_mask.store(0, std::memory_order_release);
}

std::uint64_t query_count(fault_point point) {
  return states()[static_cast<std::size_t>(point)].queries.load(
      std::memory_order_relaxed);
}

std::uint64_t fired_count(fault_point point) {
  return states()[static_cast<std::size_t>(point)].fired.load(
      std::memory_order_relaxed);
}

std::uint64_t env_seed() {
  const char* env = std::getenv("VABI_FAULT_SPEC");
  if (env == nullptr) return 1;
  return parse_fault_spec(env).seed;
}

namespace detail {

std::atomic<std::uint32_t> g_armed_mask{0};

bool fire(fault_point point, std::uint64_t id) noexcept {
  point_state& st = states()[static_cast<std::size_t>(point)];
  const std::uint64_t ordinal =
      st.queries.fetch_add(1, std::memory_order_relaxed);
  const fault_spec& spec = st.spec;
  if (spec.id != any_id && id != spec.id) return false;
  if (ordinal < spec.after) return false;
  st.fired.fetch_add(1, std::memory_order_relaxed);
  return true;
}

}  // namespace detail

}  // namespace vabi::testing
