// Deterministic fault injection for the solver guardrail tests.
//
// The solver stack promises that every failure mode -- pool exhaustion, a
// NaN-poisoned device fit, a deadline, a cancelled wave, a throwing batch
// job -- comes back as a typed solve_error with a bounded blast radius
// (tests/core/fault_tolerance_test.cpp). Faults of that kind are hard to
// provoke organically, so the production code carries named *injection
// points*: cheap hooks that are compiled in always and do nothing until a
// test (or the VABI_FAULT_SPEC environment variable) arms them.
//
// Zero-cost when disarmed: every site guards its slow path behind one
// relaxed atomic load of a bitmask (`armed(point)`); with no spec armed the
// mask is zero and the branch is never taken.
//
// Determinism: firing is driven by per-point query counters and explicit
// node/job selectors, never by wall time or randomness. A spec string such
// as
//
//   term_pool_alloc:after=40;device_nan:node=7;seed=3
//
// arms the pool-exhaustion point from its 41st query onward and poisons the
// device characterized at node 7. The free-standing `seed=N` clause is not an
// injection point: it is a knob the fault-tolerance test reads (env_seed())
// to derive its own per-seed trigger counts, which is how CI runs the same
// test binary across a seed matrix with one env var.
//
// This header must stay dependency-free (vabi_testing sits below vabi_stats
// so term_pool can host an injection point).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace vabi::testing {

/// The named injection points wired into the solver stack.
enum class fault_point : std::uint8_t {
  term_pool_alloc,   ///< stats::term_pool::allocate throws std::bad_alloc
  device_nan,        ///< device forms are NaN-poisoned after characterization
  deadline_at_node,  ///< the resource guard reports deadline expiry at a node
  cancel_wave,       ///< cooperative cancellation trips at a node boundary
  batch_job_throw,   ///< a batch job throws before solving (isolation test)
  journal_write_short,  ///< a journal checkpoint writes a truncated image
  journal_crc_flip,     ///< a journal record's payload is bit-flipped on write
  crash_after_job,      ///< the batch process _Exits right after a job commits
  wire_short_read,      ///< a socket read returns a truncated byte count
  wire_short_write,     ///< a socket write truncates, then reports the peer gone
  wire_crc_flip,        ///< an outgoing wire frame's payload is bit-flipped
  wire_accept_fail,     ///< the daemon's accept() fails transiently
  wire_stall_client,    ///< the client library delays draining its socket
  wire_drop_session,    ///< the daemon force-closes a session mid-batch
  worker_spawn_fail,    ///< the shard coordinator's worker fork fails
  worker_hang,          ///< a shard worker wedges (stops heartbeating) forever
  shard_write_short,    ///< a shard journal checkpoint writes a torn image
  heartbeat_drop,       ///< a shard worker's heartbeats are silently dropped
  count_             ///< sentinel, not a point
};

const char* to_string(fault_point point);

/// Matches any node / job id in a fault_spec.
inline constexpr std::uint64_t any_id = ~std::uint64_t{0};

/// One armed injection point. The point fires on every query whose ordinal
/// is >= `after` (0 = from the first query) and whose site id matches `id`
/// (node id or batch job index; `any_id` matches everything).
struct fault_spec {
  fault_point point = fault_point::count_;
  std::uint64_t after = 0;
  std::uint64_t id = any_id;
};

/// A parsed VABI_FAULT_SPEC string: the armed points plus the free-standing
/// test seed.
struct fault_config {
  std::vector<fault_spec> specs;
  std::uint64_t seed = 1;
};

/// Parses a spec string (see the header comment for the grammar); throws
/// std::invalid_argument naming the offending clause.
fault_config parse_fault_spec(std::string_view text);

/// Arms the given configuration (replacing any previous one) / a spec string.
void arm(const fault_config& config);
void arm(std::string_view spec);
/// Disarms every point and zeroes the query/fired counters.
void disarm();

/// Queries of `point` so far (armed sessions only) and how many fired.
std::uint64_t query_count(fault_point point);
std::uint64_t fired_count(fault_point point);

/// The `seed=N` clause of VABI_FAULT_SPEC (1 when unset/absent): the
/// fault-tolerance test derives its per-seed trigger counts from this.
std::uint64_t env_seed();

namespace detail {
/// Bit i set <=> fault_point(i) is armed. Relaxed reads on the hot path.
extern std::atomic<std::uint32_t> g_armed_mask;
/// Slow path: counts the query and decides whether `point` fires for `id`.
bool fire(fault_point point, std::uint64_t id) noexcept;
}  // namespace detail

/// True when `point` is armed at all. One relaxed atomic load; this is the
/// only cost a disarmed injection site pays.
inline bool armed(fault_point point) noexcept {
  return (detail::g_armed_mask.load(std::memory_order_relaxed) &
          (1u << static_cast<unsigned>(point))) != 0;
}

/// The injection-site entry point: false immediately when disarmed,
/// otherwise counts the query and applies the armed spec.
inline bool should_fire(fault_point point, std::uint64_t id = any_id) noexcept {
  return armed(point) && detail::fire(point, id);
}

}  // namespace vabi::testing
