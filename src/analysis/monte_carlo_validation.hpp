// Monte-Carlo validation of the canonical-form RAT model (paper Fig. 6).
//
// Draws samples of every variation source, evaluates the buffered tree's
// exact Elmore RAT per draw, and compares the empirical distribution to the
// normal predicted by the canonical form. The paper's claim is that the two
// PDFs nearly coincide; we report the mean/sigma deltas and the KS distance.
#pragma once

#include <cstdint>

#include "analysis/buffered_tree_model.hpp"
#include "stats/empirical.hpp"

namespace vabi::analysis {

struct rat_validation {
  double model_mean_ps = 0.0;
  double model_sigma_ps = 0.0;
  stats::sample_moments mc_moments;
  double ks_distance = 0.0;  ///< empirical vs N(model_mean, model_sigma)
  stats::empirical_distribution samples{std::vector<double>{0.0}};
};

/// Runs `num_samples` Monte-Carlo draws against `model`'s process model.
rat_validation validate_rat_model(const buffered_tree_model& design,
                                  const layout::process_model& model,
                                  std::size_t num_samples, std::uint64_t seed);

}  // namespace vabi::analysis
