#include "analysis/monte_carlo_validation.hpp"

#include "stats/monte_carlo.hpp"

namespace vabi::analysis {

rat_validation validate_rat_model(const buffered_tree_model& design,
                                  const layout::process_model& model,
                                  std::size_t num_samples,
                                  std::uint64_t seed) {
  stats::monte_carlo_sampler sampler{model.space(), seed};
  std::vector<double> rats;
  rats.reserve(num_samples);
  std::vector<double> sample;
  for (std::size_t i = 0; i < num_samples; ++i) {
    sampler.draw(sample);
    rats.push_back(design.evaluate_sample(sample));
  }

  rat_validation v;
  v.model_mean_ps = design.root_rat().mean();
  v.model_sigma_ps = design.root_rat().stddev(model.space());
  v.mc_moments = stats::compute_moments(rats);
  v.samples = stats::empirical_distribution{std::move(rats)};
  if (v.model_sigma_ps > 0.0) {
    v.ks_distance =
        v.samples.ks_distance_to_normal(v.model_mean_ps, v.model_sigma_ps);
  }
  return v;
}

}  // namespace vabi::analysis
