// Independent witness audit of a solver result.
//
// The DP returns a winning buffer assignment *and* a claimed canonical form
// of the root RAT. Nothing in the solver re-checks that the two agree: a bug
// in pruning, arena sealing, or journal recovery could hand back a form that
// is not what the chosen assignment implies. This module closes that loop
// with an evaluator that shares none of the DP's machinery:
//
//   1. Straight-line re-derivation: walk the tree once in postorder -- no
//      candidate lists, no pruning, no worker arenas -- applying the paper's
//      key operations (eqs. 33-38) to exactly the design the solver chose
//      (its buffer assignment and wire widths). Devices are re-characterized
//      in a fresh process model in the canonical device_cache order, with
//      the variation space padded to the producing run's source count first
//      so every source id means what it meant originally. The re-derived
//      (L, T) root forms must match the DP's claimed root RAT *bit for bit*
//      (same ops, same order, -ffp-contract=off).
//
//   2. Monte-Carlo spot check: evaluate the same design at sample points
//      (64 by default) through the exact Elmore machinery of
//      monte_carlo_validation -- no canonical-form linearization at all --
//      and require the empirical distribution to agree with the claimed
//      form's normal (mean within a sampling-error budget, bounded KS
//      distance).
//
// Used by `vabi_cli --audit` and by resume-time verification of journaled
// records (every restored record can be audited against the regenerated
// net).
#pragma once

#include <cstdint>
#include <string>

#include "core/parallel.hpp"
#include "core/statistical_dp.hpp"
#include "layout/process_model.hpp"
#include "stats/linear_form.hpp"
#include "tree/routing_tree.hpp"

namespace vabi::analysis {

struct witness_options {
  /// Monte-Carlo spot check sample count (0 disables the MC stage).
  std::size_t mc_samples = 64;
  std::uint64_t mc_seed = 1;
  /// KS bound for the spot check. The 64-sample 1% critical value of the
  /// one-sample KS statistic is ~0.20; the default leaves headroom for the
  /// first-order min() linearization the canonical form itself makes.
  double max_ks_distance = 0.25;
  /// Mean agreement budget, in units of model_sigma / sqrt(mc_samples)
  /// (the standard error of the MC mean), plus a small absolute floor.
  double max_mean_error_se = 6.0;
};

struct witness_report {
  // -- straight-line form cross-check --------------------------------------
  bool checked = false;  ///< the re-derivation ran (see skip_reason if not)
  bool match = false;    ///< claimed root RAT reproduced bit-for-bit
  std::string mismatch;  ///< first difference, human-readable
  std::string skip_reason;
  stats::linear_form witness_rat;   ///< re-derived root RAT form (T)
  stats::linear_form witness_load;  ///< re-derived root load form (L)

  // -- Monte-Carlo spot check ----------------------------------------------
  bool mc_checked = false;
  bool mc_ok = false;
  double model_mean_ps = 0.0;
  double model_sigma_ps = 0.0;
  double mc_mean_ps = 0.0;
  double mc_sigma_ps = 0.0;
  double ks_distance = 0.0;
  std::string mc_detail;  ///< non-empty when mc_ok is false

  /// Audit verdict: the form check ran and matched, and the MC stage (when
  /// it ran) stayed within bounds.
  bool ok() const { return checked && match && (!mc_checked || mc_ok); }
};

/// Audits `result` against the tree it claims to solve. `num_sources` is the
/// size of the variation space the producing run ended with (for a live
/// batch_result: `model.space().size()`; for a journaled record: the stored
/// source count); the witness pads its fresh model to that size so source
/// ids line up even for corner_fallback results, whose winning pass was the
/// *second* characterization sweep. Never throws for audit findings -- a
/// result the witness cannot evaluate comes back with checked == false and a
/// skip_reason.
witness_report audit_solution(const tree::routing_tree& tree,
                              const core::stat_options& options,
                              const layout::process_model_config& model_config,
                              layout::bbox die, std::size_t num_sources,
                              const core::stat_result& result,
                              const witness_options& opts = {});

/// Convenience overload for one batch slot: derives the die exactly as the
/// batch solver's job preparation does (job.die, or the net's bounding box
/// padded by 1 um) and reads `num_sources` off the result's model.
witness_report audit_solution(const core::batch_job& job,
                              const core::batch_result& result,
                              const witness_options& opts = {});

}  // namespace vabi::analysis
