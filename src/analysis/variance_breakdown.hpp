// Variance decomposition of a canonical form by variation class.
//
// Because the X_i are independent, the variance of any canonical form splits
// exactly across the source classes (random device / spatial / inter-die /
// parametric). The breakdown answers the designer's question behind the
// paper's D2D-vs-WID comparison directly: *which* variation class dominates
// a design's RAT spread, and hence which mitigation (sizing, placement,
// binning) pays.
#pragma once

#include <array>

#include "stats/linear_form.hpp"
#include "stats/variation_space.hpp"

namespace vabi::analysis {

struct variance_breakdown {
  double random_device = 0.0;
  double spatial = 0.0;
  double inter_die = 0.0;
  double parametric = 0.0;

  double total() const {
    return random_device + spatial + inter_die + parametric;
  }
  /// Fraction contributed by one class (0 when the form is deterministic).
  double fraction(double part) const {
    const double t = total();
    return t > 0.0 ? part / t : 0.0;
  }
};

/// Exact per-class variance of `form` over `space`.
variance_breakdown decompose_variance(const stats::linear_form& form,
                                      const stats::variation_space& space);

}  // namespace vabi::analysis
