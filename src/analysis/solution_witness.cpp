#include "analysis/solution_witness.hpp"

#include <cmath>
#include <cstdio>
#include <utility>
#include <vector>

#include "analysis/buffered_tree_model.hpp"
#include "analysis/monte_carlo_validation.hpp"
#include "core/dp_engine.hpp"
#include "stats/term_pool.hpp"
#include "timing/wire_sizing.hpp"

namespace vabi::analysis {

namespace {

std::string fmt_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.17g (%a)", v, v);
  return buf;
}

/// Exact, field-by-field form comparison with a human-readable first-diff.
bool forms_identical(const stats::linear_form& claimed,
                     const stats::linear_form& witness, std::string& diff) {
  if (claimed.nominal() != witness.nominal()) {
    diff = "nominal differs: claimed " + fmt_double(claimed.nominal()) +
           ", witness " + fmt_double(witness.nominal());
    return false;
  }
  const auto ct = claimed.terms();
  const auto wt = witness.terms();
  if (ct.size() != wt.size()) {
    diff = "term count differs: claimed " + std::to_string(ct.size()) +
           ", witness " + std::to_string(wt.size());
    return false;
  }
  for (std::size_t k = 0; k < ct.size(); ++k) {
    if (ct[k].id != wt[k].id) {
      diff = "term " + std::to_string(k) + " source id differs: claimed " +
             std::to_string(ct[k].id) + ", witness " +
             std::to_string(wt[k].id);
      return false;
    }
    if (ct[k].coeff != wt[k].coeff) {
      diff = "term " + std::to_string(k) + " (source " +
             std::to_string(ct[k].id) + ") coefficient differs: claimed " +
             fmt_double(ct[k].coeff) + ", witness " + fmt_double(wt[k].coeff);
      return false;
    }
  }
  return true;
}

}  // namespace

witness_report audit_solution(const tree::routing_tree& tree,
                              const core::stat_options& options,
                              const layout::process_model_config& model_config,
                              layout::bbox die, std::size_t num_sources,
                              const core::stat_result& result,
                              const witness_options& opts) {
  witness_report report;

  if (result.stats.aborted) {
    report.skip_reason = "aborted results carry no winning solution to audit";
    return report;
  }
  if (options.library.empty()) {
    report.skip_reason = "empty buffer library";
    return report;
  }
  if (result.assignment.num_nodes() != 0 &&
      result.assignment.num_nodes() != tree.num_nodes()) {
    report.skip_reason = "assignment covers " +
                         std::to_string(result.assignment.num_nodes()) +
                         " nodes but the tree has " +
                         std::to_string(tree.num_nodes());
    return report;
  }

  // -- rebuild a variation space in which the claimed forms make sense ------
  layout::process_model model{die, model_config};
  const std::size_t prefix = model.space().size();
  if (num_sources < prefix) {
    report.skip_reason =
        "claimed source count is smaller than the model's deterministic "
        "prefix (wrong model config?)";
    return report;
  }

  const bool unbuffered = result.path == core::solve_path::unbuffered_fallback;
  const bool random_devices = model_config.mode.random_device &&
                              model_config.budgets.random_device.enabled();
  std::size_t position_count = 0;
  for (const auto& n : tree.nodes()) {
    if (!n.is_source()) ++position_count;
  }

  std::optional<core::device_cache> devices;
  if (!unbuffered) {
    if (random_devices) {
      const std::size_t sweep = position_count * options.library.size();
      if (num_sources < prefix + sweep) {
        report.skip_reason =
            "claimed source count cannot hold one characterization sweep";
        return report;
      }
      // The producing run's winning pass characterized *last* (a
      // corner_fallback retry re-sweeps after the aborted primary pass left
      // some sources behind). Pad up to the final sweep so the device ids
      // the witness registers coincide with the ids the winning forms use.
      const std::size_t pad = num_sources - prefix - sweep;
      for (std::size_t k = 0; k < pad; ++k) {
        model.space().add_source(stats::source_kind::random_device, 1.0);
      }
    }
    // Characterize every (node, type) in the canonical postorder x library
    // order -- the exact order of the serial engine's lazy calls.
    devices.emplace(tree, model, options.library);
    if (random_devices && model.space().size() != num_sources) {
      report.skip_reason = "source accounting mismatch after device sweep";
      return report;
    }
  }

  // -- straight-line evaluation of the chosen design ------------------------
  // The DP's own key-operation sequence (eqs. 33-38), applied once along the
  // winning design instead of over candidate lists: child forms propagate up
  // their wires, siblings fold left-to-right in child order, the assigned
  // buffer (if any) is applied at each node, the driver term at the root.
  // Same pooled kernels, same operand order, -ffp-contract=off: the result
  // must equal the DP's claimed form bit for bit.
  //
  // The unbuffered fallback path is evaluated the way evaluate_unbuffered
  // does it: base wire width only and no term dropping (the fallback ignores
  // term_prune_rel_eps).
  const double eps = unbuffered ? 0.0 : options.term_prune_rel_eps;
  const timing::wire_menu menu = core::detail::make_wire_menu(options);
  const stats::variation_space& space = model.space();
  stats::term_pool pool;

  std::vector<stats::linear_form> loads(tree.num_nodes());
  std::vector<stats::linear_form> rats(tree.num_nodes());
  const bool has_assignment = result.assignment.num_nodes() != 0 && !unbuffered;
  for (tree::node_id id : tree.postorder()) {
    const auto& n = tree.node(id);
    if (n.is_sink()) {
      loads[id] = stats::linear_form{n.sink_cap_pf};
      rats[id] = stats::linear_form{n.sink_rat_ps};
    } else {
      bool first = true;
      for (tree::node_id child : n.children) {
        stats::linear_form load = std::move(loads[child]);
        stats::linear_form rat = std::move(rats[child]);
        const double um = tree.node(child).parent_wire_um;
        if (um != 0.0) {
          const timing::width_index w =
              unbuffered ? 0 : result.wires.width(child);
          if (w >= menu.size()) {
            report.skip_reason = "wire width index out of menu range";
            return report;
          }
          const double rl = menu[w].res_per_um * um;
          const double cl = menu[w].cap_per_um * um;
          rat = stats::pooled_sub_scaled(rat, rl, load, pool);
          rat -= 0.5 * rl * cl;
          load += cl;
        }
        if (first) {
          loads[id] = std::move(load);
          rats[id] = std::move(rat);
          first = false;
        } else {
          loads[id] = stats::pooled_add(loads[id], load, pool);
          rats[id] = stats::statistical_min(rats[id], rat, space, pool, eps);
        }
      }
    }
    if (!n.is_source() && has_assignment && result.assignment.has_buffer(id)) {
      const timing::buffer_index b = result.assignment.buffer(id);
      if (b >= options.library.size()) {
        report.skip_reason = "buffer index out of library range";
        return report;
      }
      const layout::device_variation& dv = devices->get(id, b);
      rats[id] = stats::pooled_sub(rats[id], dv.delay, pool);
      rats[id] = stats::pooled_sub_scaled(
          rats[id], options.library[b].res_ohm, loads[id], pool);
      loads[id] = dv.cap;
    }
  }

  stats::linear_form witness_rat = rats[tree.root()];
  witness_rat -= options.driver_res_ohm * loads[tree.root()];
  witness_rat.own_terms();
  stats::linear_form witness_load = loads[tree.root()];
  witness_load.own_terms();

  report.checked = true;
  report.match = forms_identical(result.root_rat, witness_rat, report.mismatch);
  report.witness_rat = std::move(witness_rat);
  report.witness_load = std::move(witness_load);
  if (!report.match) return report;  // no point sampling a disowned claim

  // -- Monte-Carlo spot check ----------------------------------------------
  // Exact Elmore evaluation at sample points, no canonical-form algebra: the
  // claimed form's normal must agree with what the design actually does.
  // Skipped for deterministic spaces (nothing to sample).
  const double claimed_sigma = result.root_rat.stddev(space);
  if (opts.mc_samples == 0 || claimed_sigma <= 0.0) {
    return report;
  }
  buffered_tree_model design{tree,
                             menu,
                             result.wires,
                             options.library,
                             result.assignment,
                             model,
                             options.driver_res_ohm};
  const rat_validation mc =
      validate_rat_model(design, model, opts.mc_samples, opts.mc_seed);
  report.mc_checked = true;
  report.model_mean_ps = mc.model_mean_ps;
  report.model_sigma_ps = mc.model_sigma_ps;
  report.mc_mean_ps = mc.mc_moments.mean;
  report.mc_sigma_ps = mc.mc_moments.stddev;
  report.ks_distance = mc.ks_distance;

  const double se =
      mc.model_sigma_ps / std::sqrt(static_cast<double>(opts.mc_samples));
  const double mean_budget = opts.max_mean_error_se * se + 1e-6;
  const double mean_err = std::abs(mc.mc_moments.mean - mc.model_mean_ps);
  report.mc_ok = true;
  if (mean_err > mean_budget) {
    report.mc_ok = false;
    report.mc_detail = "MC mean " + fmt_double(mc.mc_moments.mean) +
                       " deviates from model mean " +
                       fmt_double(mc.model_mean_ps) + " by " +
                       fmt_double(mean_err) + " ps (budget " +
                       fmt_double(mean_budget) + ")";
  } else if (mc.ks_distance > opts.max_ks_distance) {
    report.mc_ok = false;
    report.mc_detail =
        "KS distance " + fmt_double(mc.ks_distance) + " exceeds bound " +
        fmt_double(opts.max_ks_distance);
  }
  return report;
}

witness_report audit_solution(const core::batch_job& job,
                              const core::batch_result& result,
                              const witness_options& opts) {
  const tree::routing_tree* net = job.tree;
  if (net == nullptr && result.generated.has_value()) {
    net = &*result.generated;
  }
  if (net == nullptr) {
    witness_report report;
    report.skip_reason = "no tree available for this job";
    return report;
  }
  layout::bbox die = job.die;
  if (die.width() <= 0.0 || die.height() <= 0.0) {
    die = net->bounding_box();
    die.expand({die.lo.x - 1.0, die.lo.y - 1.0});
    die.expand({die.hi.x + 1.0, die.hi.y + 1.0});
  }
  return audit_solution(*net, job.options, job.model, die,
                        result.model.space().size(), result.result, opts);
}

}  // namespace vabi::analysis
