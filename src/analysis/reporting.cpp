#include "analysis/reporting.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace vabi::analysis {

text_table::text_table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void text_table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("text_table: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

void text_table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
         << cells[c] << " |";
    }
    os << '\n';
  };
  auto print_rule = [&]() {
    os << "+";
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  print_rule();
  print_row(headers_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

std::string text_table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string fmt_percent(double fraction, int precision) {
  return fmt(fraction * 100.0, precision) + "%";
}

void print_histogram(std::ostream& os,
                     const std::vector<std::pair<double, double>>& bins,
                     int width) {
  double peak = 0.0;
  for (const auto& [x, d] : bins) peak = std::max(peak, d);
  if (peak <= 0.0) peak = 1.0;
  for (const auto& [x, d] : bins) {
    const int bar = static_cast<int>(d / peak * width + 0.5);
    os << std::setw(12) << fmt(x, 2) << " | " << std::string(bar, '#') << '\n';
  }
}

void print_series(std::ostream& os, const std::string& x_label,
                  const std::string& y_label,
                  const std::vector<std::pair<double, double>>& points,
                  int precision) {
  text_table t{{x_label, y_label}};
  for (const auto& [x, y] : points) {
    t.add_row({fmt(x, precision), fmt(y, precision)});
  }
  t.print(os);
}

}  // namespace vabi::analysis
