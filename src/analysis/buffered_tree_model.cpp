#include "analysis/buffered_tree_model.hpp"

#include <stdexcept>

namespace vabi::analysis {

buffered_tree_model::buffered_tree_model(
    const tree::routing_tree& tree, const timing::wire_model& wire,
    const timing::buffer_library& library,
    const timing::buffer_assignment& assignment, layout::process_model& model,
    double driver_res_ohm)
    : buffered_tree_model(tree, timing::wire_menu{wire},
                          timing::wire_assignment{}, library, assignment,
                          model, driver_res_ohm) {}

buffered_tree_model::buffered_tree_model(
    const tree::routing_tree& tree, const timing::wire_menu& menu,
    const timing::wire_assignment& wires,
    const timing::buffer_library& library,
    const timing::buffer_assignment& assignment, layout::process_model& model,
    double driver_res_ohm)
    : tree_(tree),
      menu_(menu),
      wires_(wires),
      library_(library),
      assignment_(assignment),
      driver_res_ohm_(driver_res_ohm),
      devices_(tree.num_nodes()) {
  if (assignment.num_nodes() != tree.num_nodes()) {
    throw std::invalid_argument("buffered_tree_model: assignment mismatch");
  }
  num_buffers_ = assignment_.count();

  // One bottom-up pass with the variation-aware key operations. All form
  // math writes into one pass-local term pool (forms in load/rat only borrow
  // it); the single surviving output is materialized before the pool dies.
  stats::term_pool pool;
  std::vector<stats::linear_form> load(tree.num_nodes());
  std::vector<stats::linear_form> rat(tree.num_nodes());

  for (tree::node_id id : tree.postorder()) {
    const auto& n = tree.node(id);
    if (n.is_sink()) {
      load[id] = stats::linear_form{n.sink_cap_pf};
      rat[id] = stats::linear_form{n.sink_rat_ps};
    } else {
      stats::linear_form l{0.0};
      stats::linear_form t;
      bool have_t = false;
      for (tree::node_id c : n.children) {
        const double um = tree.node(c).parent_wire_um;
        const timing::wire_model& wire = menu_[wires_.width(c)];
        // eqs. 33-34.
        stats::linear_form ct =
            stats::pooled_sub_scaled(rat[c], wire.res_per_um * um, load[c],
                                     pool);
        ct -= 0.5 * wire.res_per_um * wire.cap_per_um * um * um;
        stats::linear_form cl = stats::pooled_copy(load[c], pool);
        cl += wire.wire_cap(um);
        l = stats::pooled_add(l, cl, pool);
        if (!have_t) {
          t = std::move(ct);
          have_t = true;
        } else {
          t = stats::statistical_min(t, ct, model.space(), pool);  // eq. 38
        }
        load[c] = stats::linear_form{};  // drop the borrowed spans
        rat[c] = stats::linear_form{};
      }
      load[id] = std::move(l);
      rat[id] = std::move(t);
    }
    if (assignment_.has_buffer(id)) {
      if (n.is_source()) {
        throw std::invalid_argument(
            "buffered_tree_model: buffer at the source is not legal");
      }
      const timing::buffer_index b = assignment_.buffer(id);
      const auto& type = library_[b];
      devices_[id] = model.characterize(n.location, type.cap_pf, type.delay_ps);
      // eqs. 35-36.
      rat[id] = stats::pooled_sub(rat[id], devices_[id].delay, pool);
      rat[id] = stats::pooled_sub_scaled(rat[id], type.res_ohm, load[id], pool);
      load[id] = stats::pooled_copy(devices_[id].cap, pool);
    }
  }

  root_rat_ = stats::pooled_sub_scaled(rat[tree.root()], driver_res_ohm_,
                                       load[tree.root()], pool);
  root_rat_.own_terms();  // the pool dies with this constructor
}

double buffered_tree_model::evaluate_sample(
    std::span<const double> sample) const {
  const auto devices = [&](tree::node_id n,
                           timing::buffer_index b) -> timing::device_values {
    return {devices_[n].cap.evaluate(sample), devices_[n].delay.evaluate(sample),
            library_[b].res_ohm};
  };
  return timing::evaluate_buffered_tree(tree_, menu_, wires_, library_,
                                        assignment_, driver_res_ohm_, devices)
      .root_rat_ps;
}

}  // namespace vabi::analysis
