// Statistical model of a *fixed* buffered tree.
//
// Once an optimizer has produced a buffer assignment, the evaluation
// experiments (Tables 3-5, Fig. 6) need the root RAT of that design as a
// canonical form under a chosen variation model -- typically the full WID
// model, regardless of which (possibly blinder) model the optimizer used.
// This class walks the tree once with the variation-aware key operations
// (eqs. 33-38), characterizing every placed buffer in the supplied process
// model, and exposes:
//
//   - the root RAT canonical form (the "model prediction" of Fig. 6);
//   - per-sample ground-truth evaluation: one Monte-Carlo draw of all
//     sources -> concrete device values -> exact Elmore RAT (no tightness-
//     probability approximation, no normality assumption) for validation.
#pragma once

#include <span>
#include <vector>

#include "layout/process_model.hpp"
#include "stats/linear_form.hpp"
#include "timing/buffer_library.hpp"
#include "timing/elmore.hpp"
#include "timing/wire_model.hpp"
#include "timing/wire_sizing.hpp"
#include "tree/routing_tree.hpp"

namespace vabi::analysis {

class buffered_tree_model {
 public:
  buffered_tree_model(const tree::routing_tree& tree,
                      const timing::wire_model& wire,
                      const timing::buffer_library& library,
                      const timing::buffer_assignment& assignment,
                      layout::process_model& model, double driver_res_ohm);

  /// Wire-sizing-aware variant: edges use the widths chosen in `wires` from
  /// `menu` (the [8] extension).
  buffered_tree_model(const tree::routing_tree& tree,
                      const timing::wire_menu& menu,
                      const timing::wire_assignment& wires,
                      const timing::buffer_library& library,
                      const timing::buffer_assignment& assignment,
                      layout::process_model& model, double driver_res_ohm);

  /// Canonical form of the root RAT (driver delay included).
  const stats::linear_form& root_rat() const { return root_rat_; }

  /// Exact Elmore root RAT for one concrete draw of every variation source
  /// (`sample[id]` = value of source id, as produced by monte_carlo_sampler).
  double evaluate_sample(std::span<const double> sample) const;

  std::size_t num_buffers() const { return num_buffers_; }

 private:
  const tree::routing_tree& tree_;
  timing::wire_menu menu_;
  timing::wire_assignment wires_;
  const timing::buffer_library& library_;
  timing::buffer_assignment assignment_;
  double driver_res_ohm_ = 0.0;
  stats::linear_form root_rat_;
  std::size_t num_buffers_ = 0;
  /// Characterized forms of the buffer instance at each node (parallel to the
  /// tree's node ids; empty forms where no buffer is placed).
  std::vector<layout::device_variation> devices_;
};

}  // namespace vabi::analysis
