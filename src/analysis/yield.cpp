#include "analysis/yield.hpp"

#include <cmath>
#include <stdexcept>

#include "stats/normal.hpp"

namespace vabi::analysis {

double yield_rat(const stats::linear_form& rat,
                 const stats::variation_space& space, double yield) {
  if (!(yield > 0.0 && yield < 1.0)) {
    throw std::domain_error("yield_rat: yield must be in (0, 1)");
  }
  return stats::percentile(rat, space, 1.0 - yield);
}

double timing_yield(const stats::linear_form& rat,
                    const stats::variation_space& space, double target_ps) {
  return stats::normal_exceedance(rat.mean(), rat.stddev(space), target_ps);
}

double yield_rat_empirical(const stats::empirical_distribution& rat_samples,
                           double yield) {
  if (!(yield > 0.0 && yield < 1.0)) {
    throw std::domain_error("yield_rat_empirical: yield must be in (0, 1)");
  }
  return rat_samples.quantile(1.0 - yield);
}

double timing_yield_empirical(const stats::empirical_distribution& rat_samples,
                              double target_ps) {
  return 1.0 - rat_samples.cdf(target_ps);
}

double target_rat_from_mean(double wid_mean_rat_ps, double fraction) {
  // RATs in these experiments are negative (sink RATs are 0, so the root RAT
  // is minus the critical delay); "10% reduction" relaxes the requirement by
  // 10% of the magnitude.
  return wid_mean_rat_ps - fraction * std::abs(wid_mean_rat_ps);
}

}  // namespace vabi::analysis
