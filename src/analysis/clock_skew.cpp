#include "analysis/clock_skew.hpp"

#include <stdexcept>
#include <vector>

#include "stats/normal.hpp"

namespace vabi::analysis {

skew_analysis analyze_clock_skew(const tree::routing_tree& tree,
                                 const timing::wire_model& wire,
                                 const timing::buffer_library& library,
                                 const timing::buffer_assignment& assignment,
                                 layout::process_model& model,
                                 double driver_res_ohm) {
  if (assignment.num_nodes() != tree.num_nodes()) {
    throw std::invalid_argument("analyze_clock_skew: assignment mismatch");
  }

  // Pass 1 (bottom-up): downstream load at each node as a canonical form,
  // including the buffer substitution (eq. 35); remember each instance's
  // characterized forms for the delay pass. All three passes write their
  // forms into one analysis-local pool; the outputs are materialized before
  // it dies.
  stats::term_pool pool;
  std::vector<stats::linear_form> load(tree.num_nodes());
  std::vector<layout::device_variation> devices(tree.num_nodes());
  const auto order = tree.postorder();
  for (tree::node_id id : order) {
    const auto& n = tree.node(id);
    if (n.is_sink()) {
      load[id] = stats::linear_form{n.sink_cap_pf};
    } else {
      stats::linear_form l{0.0};
      for (tree::node_id c : n.children) {
        stats::linear_form cl = stats::pooled_copy(load[c], pool);
        cl += wire.wire_cap(tree.node(c).parent_wire_um);
        l = stats::pooled_add(l, cl, pool);
      }
      load[id] = std::move(l);
    }
    if (assignment.has_buffer(id)) {
      if (n.is_source()) {
        throw std::invalid_argument(
            "analyze_clock_skew: buffer at the source is not legal");
      }
      const auto& type = library[assignment.buffer(id)];
      devices[id] = model.characterize(n.location, type.cap_pf, type.delay_ps);
      load[id] = stats::pooled_copy(devices[id].cap, pool);
    }
  }

  // Pass 2 (top-down, reverse postorder): arrival time at each node's
  // *driving point*. A buffer at node t adds T_b + R_b * L(below t) before
  // the subtree; the wire p->c adds the Elmore delay r*l*(c*l/2 + L(c)).
  std::vector<stats::linear_form> arrival(tree.num_nodes());
  arrival[tree.root()] = driver_res_ohm * load[tree.root()];
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const tree::node_id id = *it;
    const auto& n = tree.node(id);
    if (!n.is_source()) {
      const double l = n.parent_wire_um;
      // Wire delay into this node's pre-buffer load... the load seen by the
      // wire is the node's presented load, which already reflects a buffer
      // here (its input cap) -- matching the Elmore engine's semantics where
      // the wire drives the buffer input.
      stats::linear_form at = stats::pooled_add_scaled(
          arrival[n.parent], wire.res_per_um * l, load[id], pool);
      at += 0.5 * wire.res_per_um * wire.cap_per_um * l * l;
      if (assignment.has_buffer(id)) {
        // Buffer delay uses the load *behind* the buffer: recompute it from
        // the children (or the sink cap), exactly as pass 1 did pre-override.
        stats::linear_form behind{0.0};
        if (n.is_sink()) {
          behind = stats::linear_form{n.sink_cap_pf};
        } else {
          for (tree::node_id c : n.children) {
            stats::linear_form cl = stats::pooled_copy(load[c], pool);
            cl += wire.wire_cap(tree.node(c).parent_wire_um);
            behind = stats::pooled_add(behind, cl, pool);
          }
        }
        at = stats::pooled_add(at, devices[id].delay, pool);
        at = stats::pooled_add_scaled(
            at, library[assignment.buffer(id)].res_ohm, behind, pool);
      }
      arrival[id] = std::move(at);
    }
  }

  // Pass 3: statistical max / min over sink arrivals. The nominal extremes
  // are tracked against the raw per-sink means (the running max's mean keeps
  // ratcheting upward, so comparing against it would freeze the argmax).
  skew_analysis out;
  bool first = true;
  double latest_mean = 0.0;
  double earliest_mean = 0.0;
  for (tree::node_id s : tree.sinks()) {
    if (first) {
      out.latest_arrival = arrival[s];
      out.earliest_arrival = arrival[s];
      out.latest_sink = s;
      out.earliest_sink = s;
      latest_mean = arrival[s].mean();
      earliest_mean = latest_mean;
      first = false;
      continue;
    }
    if (arrival[s].mean() > latest_mean) {
      latest_mean = arrival[s].mean();
      out.latest_sink = s;
    }
    if (arrival[s].mean() < earliest_mean) {
      earliest_mean = arrival[s].mean();
      out.earliest_sink = s;
    }
    out.latest_arrival = stats::statistical_max(out.latest_arrival, arrival[s],
                                                model.space(), pool);
    out.earliest_arrival = stats::statistical_min(
        out.earliest_arrival, arrival[s], model.space(), pool);
  }
  out.skew = out.latest_arrival - out.earliest_arrival;
  // The returned forms must outlive the analysis pool.
  out.latest_arrival.own_terms();
  out.earliest_arrival.own_terms();
  out.skew.own_terms();
  return out;
}

double skew_yield(const skew_analysis& analysis,
                  const stats::variation_space& space, double target_ps) {
  return 1.0 - stats::normal_exceedance(analysis.skew.mean(),
                                        analysis.skew.stddev(space), target_ps);
}

}  // namespace vabi::analysis
