// ASCII table / figure rendering for the benchmark harness.
//
// Every bench binary reproduces one table or figure of the paper and prints
// it in a stable fixed-width format so EXPERIMENTS.md can quote output
// verbatim. Also provides a crude text histogram for the PDF figures.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace vabi::analysis {

/// Fixed-width text table. Columns size themselves to the widest cell.
class text_table {
 public:
  explicit text_table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `precision` digits after the point.
std::string fmt(double value, int precision = 1);

/// Formats a fraction as a percentage ("97.3%").
std::string fmt_percent(double fraction, int precision = 1);

/// Renders (x, density) pairs as a text histogram, one bar per bin.
void print_histogram(std::ostream& os,
                     const std::vector<std::pair<double, double>>& bins,
                     int width = 60);

/// Renders an (x, y) series as aligned columns (our "figure" output).
void print_series(std::ostream& os, const std::string& x_label,
                  const std::string& y_label,
                  const std::vector<std::pair<double, double>>& points,
                  int precision = 3);

}  // namespace vabi::analysis
