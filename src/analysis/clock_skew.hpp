// Statistical clock-skew analysis of a buffered tree.
//
// The paper closes by proposing to apply the same 2P/canonical-form machinery
// to clock skew minimization (Section 6, future work). This module supplies
// the analysis half of that program: given a buffered clock tree under the
// first-order variation model, it computes every sink's *arrival time* as a
// canonical form (loads bottom-up, delays top-down), then the statistical
// max / min over all sinks via the tightness-probability linearization, and
// finally the skew
//
//   skew = max_i AT_i - min_j AT_j
//
// as a canonical form. Because the max, the min, and every arrival time share
// variation sources, the subtraction keeps their (strong) correlation -- the
// skew sigma is far smaller than the arrival-time sigmas when variation is
// shared (inter-die / nearby-spatial), which is exactly the effect a clock
// designer cares about.
#pragma once

#include "layout/process_model.hpp"
#include "stats/linear_form.hpp"
#include "timing/buffer_library.hpp"
#include "timing/elmore.hpp"
#include "timing/wire_model.hpp"
#include "tree/routing_tree.hpp"

namespace vabi::analysis {

/// NOTE on the skew variance: when many sinks are near-tied (a well-balanced
/// clock tree -- the interesting case), the linearized max/min forms average
/// their coefficients across the tied sinks, so `skew`'s canonical form can
/// report a much smaller sigma than Monte Carlo would. The *mean* skew is the
/// reliable figure of merit; treat the sigma as a lower bound and use
/// Monte-Carlo sampling of the per-sink arrivals when a calibrated skew
/// distribution is needed.
struct skew_analysis {
  stats::linear_form latest_arrival;    ///< statistical max over sinks (ps)
  stats::linear_form earliest_arrival;  ///< statistical min over sinks (ps)
  stats::linear_form skew;              ///< latest - earliest, correlated (ps)
  /// Sinks attaining the nominal extremes (useful for debugging a tree).
  tree::node_id latest_sink = tree::invalid_node;
  tree::node_id earliest_sink = tree::invalid_node;
};

/// Analyzes the skew of `tree` with buffers `assignment` under `model`.
/// Buffer instances are characterized at their tree locations (fresh sources
/// in `model`'s space). `driver_res_ohm` contributes the source driver delay,
/// which is common mode and cancels out of the skew.
skew_analysis analyze_clock_skew(const tree::routing_tree& tree,
                                 const timing::wire_model& wire,
                                 const timing::buffer_library& library,
                                 const timing::buffer_assignment& assignment,
                                 layout::process_model& model,
                                 double driver_res_ohm);

/// P(skew <= target) under the canonical-form model.
double skew_yield(const skew_analysis& analysis,
                  const stats::variation_space& space, double target_ps);

}  // namespace vabi::analysis
