#include "analysis/variance_breakdown.hpp"

namespace vabi::analysis {

variance_breakdown decompose_variance(const stats::linear_form& form,
                                      const stats::variation_space& space) {
  variance_breakdown out;
  for (const auto& term : form.terms()) {
    const double var = term.coeff * term.coeff * space.variance(term.id);
    switch (space.kind(term.id)) {
      case stats::source_kind::random_device:
        out.random_device += var;
        break;
      case stats::source_kind::spatial:
        out.spatial += var;
        break;
      case stats::source_kind::inter_die:
        out.inter_die += var;
        break;
      case stats::source_kind::parametric:
        out.parametric += var;
        break;
    }
  }
  return out;
}

}  // namespace vabi::analysis
