// Timing-yield figures of merit (paper Section 5.3).
//
// Two metrics compare the NOM / D2D / WID designs:
//   - the y-yield RAT: the (1-y) quantile of the root RAT distribution; the
//     paper reports the 95% timing-yield RAT, i.e. the 5th percentile, "such
//     that the final RAT has 95% chances of being larger";
//   - the timing yield at a target: P(RAT >= target). The paper sets the
//     target to the WID mean RAT degraded by 10% and reports the resulting
//     yield of every design.
#pragma once

#include <span>

#include "stats/empirical.hpp"
#include "stats/linear_form.hpp"
#include "stats/variation_space.hpp"

namespace vabi::analysis {

/// The y-yield RAT of a (normal) canonical-form RAT: its (1 - y) quantile.
double yield_rat(const stats::linear_form& rat,
                 const stats::variation_space& space, double yield = 0.95);

/// P(RAT >= target) under the canonical-form model.
double timing_yield(const stats::linear_form& rat,
                    const stats::variation_space& space, double target_ps);

/// Empirical counterparts from Monte-Carlo samples of the RAT.
double yield_rat_empirical(const stats::empirical_distribution& rat_samples,
                           double yield = 0.95);
double timing_yield_empirical(const stats::empirical_distribution& rat_samples,
                              double target_ps);

/// The paper's target-RAT convention: the WID design's mean RAT relaxed by
/// `fraction` of its magnitude (10% in Section 5.3).
double target_rat_from_mean(double wid_mean_rat_ps, double fraction = 0.10);

}  // namespace vabi::analysis
