// Exactly-once merge of shard journals into one batch result set.
//
// A sharded run (shard_coordinator) leaves a directory of `shard-*.vjl`
// journals, each a "vabi journal v1" file whose second frame is a shard
// header (core::shard_info): the shard's index, the worker-slot count the
// coordinator was configured with, and the parent batch's jobs fingerprint.
// merge_shards re-derives the batch fingerprint chain exactly as
// batch_solver::solve_journaled would, validates every shard against it, and
// restores each record into its job slot with the same model-rebuilding
// rules as a single-process resume -- so the merged slots are bit-identical
// to the slots of an uninterrupted solve_journaled run.
//
// Error taxonomy:
//   - journal_corrupt: a shard file failed CRC/framing mid-log (the detail
//     names the file); torn *tails* are tolerated, exactly like resume.
//   - shard_mismatch: shards disagree with the batch or each other -- a
//     journal without a shard header, a parent fingerprint from a different
//     batch, duplicate shard indices, a record for an out-of-range or
//     wrong-fingerprint job, the same job solved in two shards, or jobs no
//     shard covers. Legitimate coordinator runs never produce any of these;
//     each is a corruption/operator-error signal, reported typed.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/journal.hpp"
#include "core/parallel.hpp"
#include "core/solve_status.hpp"

namespace vabi::shard {

/// The batch fingerprint chain, shared verbatim with solve_journaled: the
/// per-job input fingerprints and the combined jobs fingerprint that shard
/// headers carry as parent_fingerprint.
struct batch_fingerprints {
  std::vector<std::uint64_t> per_job;
  std::uint64_t combined = 0;
};

batch_fingerprints fingerprint_batch(
    const std::vector<core::batch_job>& jobs,
    const std::optional<std::uint64_t>& batch_seed);

/// The `shard-*.vjl` files under `dir` (full paths, sorted; `.tmp` spill
/// files from a checkpoint in progress are ignored).
std::vector<std::string> list_shard_files(const std::string& dir);

/// The merged batch: slot i holds job i's outcome, restored bit-identically
/// to a single-process solve_journaled run.
struct merged_batch {
  std::vector<core::solve_outcome<core::batch_result>> slots;
  std::size_t shards_read = 0;
  std::size_t records_merged = 0;
  std::uint64_t dropped_tail_bytes = 0;  ///< torn shard tails tolerated
  std::uint64_t jobs_fingerprint = 0;
};

/// Validates and merges every shard journal under `journal_dir`. The outer
/// outcome is an error when the shards cannot be reconciled (see the
/// taxonomy above); per-job *solver* failures stay typed inside their slots,
/// exactly as in solve_journaled.
core::solve_outcome<merged_batch> merge_shards(
    const std::vector<core::batch_job>& jobs,
    const std::optional<std::uint64_t>& batch_seed,
    const std::string& journal_dir);

}  // namespace vabi::shard
