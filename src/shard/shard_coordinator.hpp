// Multi-process sharded batch solving with exactly-once resume.
//
// shard_coordinator scales a batch past one process: it partitions the
// batch's jobs-fingerprint space across N worker slots (job i starts on slot
// fingerprint(i) % N; idle slots steal from the longest queue), runs one
// worker process per slot, and supervises them:
//
//   - fork mode (run): each slot is a forked child talked to over two pipes
//     (9-byte command/event messages). The child writes its own journal
//     shard (`shard-<index>.vjl`, a "vabi journal v1" file with a
//     core::shard_info frame) and checkpoints every job, heartbeating on a
//     side thread. The coordinator itself stays single-threaded -- an
//     epoll-style poll loop over the event pipes -- so every fork happens
//     from a single-threaded process (the repo's fork-safety rule).
//   - remote mode (run_remote): each slot is a serve_client session against
//     a running vabi_serve daemon. The coordinator prepares every job's net
//     locally and ships it as an explicit tree text (tree text round-trips
//     doubles bit-exactly), then rewrites the returned record's job index
//     and fingerprint to the batch-global values before journaling it into
//     the slot's local shard -- so the on-disk shards are indistinguishable
//     from fork-mode ones and the same merge applies. Connection faults are
//     absorbed by the client's own reconnect/resume machinery.
//
// Failure model (fork mode): a worker that exits, is SIGKILLed, or stops
// heartbeating past the timeout is declared dead. Its shard journal is read
// back immediately -- every record already durable is *recovered*, never
// re-solved -- the in-flight job returns to its queue, and the slot restarts
// with exponential backoff under a per-slot restart budget. Each incarnation
// writes a fresh shard (monotonic index); dead shards are immutable. A slot
// whose budget is exhausted is retired and its remaining jobs flow to the
// survivors. If every slot retires, or a journaled-then-torn record left a
// job uncovered on disk (shard_write_short), the coordinator solves the
// remainder inline into a repair shard -- completion is guaranteed under any
// chaos the fault points can produce.
//
// On completion the coordinator runs merge_shards (shard_merge.hpp): the
// merged slots are bit-identical to a single-process solve_journaled run of
// the same jobs, asserted by hash in tests/shard and bench_fig5_scaling.
//
// Exactly-once accounting: worker_stats::jobs_completed counts the distinct
// jobs whose records ended up durable in that slot's shards; recovered +
// sum(jobs_completed) + inline == jobs_total, with zero jobs solved twice.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/parallel.hpp"
#include "core/solve_status.hpp"
#include "serve/wire.hpp"
#include "shard/shard_merge.hpp"

namespace vabi::shard {

struct coordinator_options {
  std::size_t num_workers = 2;  ///< worker slots (>= 1)
  std::string journal_dir;      ///< required; shards land here
  /// Per-job seeds derive from this exactly like batch_solver's.
  std::optional<std::uint64_t> batch_seed;
  /// Recover jobs from the shards a previous (killed) run left behind.
  bool resume = false;
  /// Worker-side journal checkpoint interval. 1 (the default) makes every
  /// job durable the moment it finishes -- the exactly-once sweet spot.
  std::size_t checkpoint_every_jobs = 1;
  /// Restarts each slot may consume before it is retired (--kill-budget).
  std::size_t restart_budget = 3;
  double heartbeat_interval_ms = 25.0;
  /// A worker silent for this long is declared hung and SIGKILLed.
  double heartbeat_timeout_ms = 2000.0;
  /// Restart k of a slot waits min(base * 2^k, max) before respawning.
  double restart_backoff_base_ms = 10.0;
  double restart_backoff_max_ms = 500.0;
};

/// Per-slot accounting, summed across the slot's incarnations.
struct worker_stats {
  std::uint64_t jobs_completed = 0;  ///< distinct jobs durably journaled
  std::uint64_t restarts = 0;        ///< respawns after death/hang/spawn-fail
  std::uint64_t shards_opened = 0;   ///< incarnations (one shard each)
  std::uint64_t heartbeats = 0;
};

/// One supervision event, delivered to the observer from the coordinator's
/// own thread (fork mode). `tick` fires every poll-loop iteration, which is
/// what the chaos test uses to SIGKILL workers at measured kill points
/// without a second thread racing the coordinator's forks.
struct coordinator_event {
  enum class kind : std::uint8_t {
    tick,       ///< one poll-loop iteration
    spawned,    ///< slot forked a worker (pid set)
    ready,      ///< worker opened its shard and reported in
    job_done,   ///< worker durably journaled job `job`
    died,       ///< worker exited / was killed / hung past the timeout
    restarted,  ///< slot respawned after backoff
    retired,    ///< slot exhausted its restart budget
  };
  kind what = kind::tick;
  std::size_t slot = 0;
  long pid = -1;
  std::uint64_t job = 0;
};

struct coordinator_report {
  std::size_t jobs_total = 0;
  std::size_t jobs_recovered = 0;          ///< from pre-existing shards (resume)
  std::size_t jobs_solved_by_workers = 0;  ///< durable in worker shards
  std::size_t jobs_solved_inline = 0;      ///< coordinator repair/fallback
  std::size_t restarts_total = 0;
  std::size_t workers_retired = 0;
  std::size_t shards_on_disk = 0;
  std::vector<worker_stats> workers;  ///< slot i; remote mode: session i
  merged_batch merged;                ///< the combined, bit-identical result
  double wall_seconds = 0.0;
};

class shard_coordinator {
 public:
  using observer = std::function<void(const coordinator_event&)>;

  explicit shard_coordinator(coordinator_options opts);

  /// Fork mode. Must be called from a single-threaded process (forks).
  /// The outer outcome is an error when the shards cannot be used at all
  /// (journal_corrupt / shard_mismatch / invalid_options); per-job solver
  /// failures stay typed inside merged.slots.
  core::solve_outcome<coordinator_report> run(
      const std::vector<core::batch_job>& jobs, const observer& obs = {});

  /// Remote mode: slots are vabi_serve sessions on `endpoint` (unix socket
  /// path, or "port:<n>" for loopback TCP). The submit's reduced wire
  /// options are mapped to full solver options exactly as the server maps
  /// them, so the local reference fingerprints match what merge validates.
  /// The observer is not called from remote mode (worker threads).
  core::solve_outcome<coordinator_report> run_remote(
      const serve::submit_msg& submit, const std::string& endpoint);

 private:
  coordinator_options opts_;
};

}  // namespace vabi::shard
