#include "shard/shard_merge.hpp"

#include <dirent.h>

#include <algorithm>
#include <set>
#include <utility>

namespace vabi::shard {

namespace {

core::solve_error shard_error(std::string detail) {
  return core::solve_error{core::solve_code::shard_mismatch,
                           tree::invalid_node, std::move(detail)};
}

}  // namespace

batch_fingerprints fingerprint_batch(
    const std::vector<core::batch_job>& jobs,
    const std::optional<std::uint64_t>& batch_seed) {
  batch_fingerprints out;
  out.per_job.resize(jobs.size());
  out.combined = core::fnv1a_u64(jobs.size(), core::fnv1a_seed);
  if (batch_seed.has_value()) {
    out.combined = core::fnv1a_u64(*batch_seed, out.combined);
  }
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    out.per_job[i] = core::fingerprint_job(jobs[i], i, batch_seed);
    out.combined = core::fnv1a_u64(out.per_job[i], out.combined);
  }
  return out;
}

std::vector<std::string> list_shard_files(const std::string& dir) {
  std::vector<std::string> out;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return out;
  while (dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name.size() < 10 || name.substr(0, 6) != "shard-") continue;
    if (name.substr(name.size() - 4) != ".vjl") continue;
    out.push_back(dir + "/" + name);
  }
  ::closedir(d);
  std::sort(out.begin(), out.end());
  return out;
}

core::solve_outcome<merged_batch> merge_shards(
    const std::vector<core::batch_job>& jobs,
    const std::optional<std::uint64_t>& batch_seed,
    const std::string& journal_dir) {
  merged_batch out;
  out.slots.reserve(jobs.size());

  const batch_fingerprints fps = fingerprint_batch(jobs, batch_seed);
  out.jobs_fingerprint = fps.combined;

  std::vector<std::optional<core::journal_record>> recovered(jobs.size());
  std::set<std::uint32_t> shard_indices;

  for (const std::string& path : list_shard_files(journal_dir)) {
    auto read = core::read_journal(path);
    if (!read.ok()) {
      read.error().detail = "shard '" + path + "': " + read.error().detail;
      return std::move(read.error());
    }
    out.dropped_tail_bytes += read->dropped_tail_bytes;
    if (!read->has_header) continue;  // torn before the first checkpoint
    if (!read->has_shard) {
      return shard_error("'" + path +
                         "' is a journal but carries no shard header");
    }
    const core::shard_info& si = read->shard;
    if (si.parent_fingerprint != fps.combined) {
      return shard_error("shard '" + path +
                         "' was written for a different batch (parent "
                         "fingerprint mismatch)");
    }
    const core::journal_header& jh = read->header;
    if (jh.num_jobs != jobs.size() || jh.jobs_fingerprint != fps.combined ||
        jh.has_batch_seed != batch_seed.has_value() ||
        jh.batch_seed != batch_seed.value_or(0)) {
      return shard_error("shard '" + path +
                         "' header disagrees with the batch being merged");
    }
    if (!shard_indices.insert(si.shard_index).second) {
      return shard_error("duplicate shard index " +
                         std::to_string(si.shard_index) + " at '" + path +
                         "'");
    }
    for (auto& rec : read->records) {
      if (rec.job_index >= jobs.size()) {
        return shard_error("shard '" + path +
                           "' has a record for out-of-range job " +
                           std::to_string(rec.job_index));
      }
      if (rec.fingerprint != fps.per_job[rec.job_index]) {
        return shard_error("shard '" + path + "' record for job " +
                           std::to_string(rec.job_index) +
                           " does not fingerprint-match the batch");
      }
      if (!rec.ok && rec.code == core::solve_code::cancelled) {
        continue;  // cancellation is not a result, exactly as in resume
      }
      if (recovered[rec.job_index].has_value()) {
        return shard_error("job " + std::to_string(rec.job_index) +
                           " appears in more than one shard ('" + path +
                           "' overlaps an earlier shard)");
      }
      recovered[rec.job_index] = std::move(rec);
      ++out.records_merged;
    }
    ++out.shards_read;
  }

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (!recovered[i].has_value()) {
      return shard_error("job " + std::to_string(i) +
                         " is covered by no shard under '" + journal_dir +
                         "'");
    }
  }

  // Restore every record into its slot with the single-process resume rules
  // (core/parallel.cpp), so the merged slots are bit-identical to an
  // uninterrupted solve_journaled run's.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    core::journal_record& rec = *recovered[i];
    if (!rec.ok) {
      out.slots.emplace_back(
          core::solve_error{rec.code, rec.error_node, rec.detail});
      continue;
    }
    try {
      core::prepared_job setup = core::prepare_batch_job(jobs[i], i, batch_seed);
      if (rec.result.assignment.num_nodes() != 0 &&
          rec.result.assignment.num_nodes() != setup.net->num_nodes()) {
        return shard_error("shard record for job " + std::to_string(i) +
                           " has an assignment over " +
                           std::to_string(rec.result.assignment.num_nodes()) +
                           " nodes; the job's tree has " +
                           std::to_string(setup.net->num_nodes()));
      }
      layout::process_model& model = *setup.model;
      if (rec.num_sources < model.space().size()) {
        return shard_error("shard record for job " + std::to_string(i) +
                           " claims fewer variation sources than the model's "
                           "deterministic prefix");
      }
      while (model.space().size() < rec.num_sources) {
        model.space().add_source(stats::source_kind::random_device, 1.0);
      }
      out.slots.emplace_back(core::batch_result{std::move(rec.result),
                                                std::move(model),
                                                std::move(setup.generated)});
    } catch (const std::exception& e) {
      return shard_error("job " + std::to_string(i) +
                         " cannot be re-prepared for merge: " + e.what());
    }
  }
  return out;
}

}  // namespace vabi::shard
