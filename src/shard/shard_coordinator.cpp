#include "shard/shard_coordinator.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/prctl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>

#include "serve/client.hpp"
#include "serve/server.hpp"
#include "testing/fault_injection.hpp"
#include "tree/tree_io.hpp"

namespace vabi::shard {

namespace {

using clock_type = std::chrono::steady_clock;

// 9-byte pipe messages: u8 kind | u64 arg (LE). Writes of 9 bytes are atomic
// on a pipe (PIPE_BUF), so the child's heartbeat thread and job loop can
// share one event pipe without framing locks.
constexpr std::uint8_t ev_ready = 1;
constexpr std::uint8_t ev_heartbeat = 2;
constexpr std::uint8_t ev_job_done = 3;
constexpr std::uint8_t cmd_solve = 1;
constexpr std::uint8_t cmd_shutdown = 2;
constexpr std::uint64_t k_no_job = ~std::uint64_t{0};
constexpr std::size_t k_msg_size = 9;

void encode_msg(std::uint8_t* buf, std::uint8_t kind, std::uint64_t arg) {
  buf[0] = kind;
  for (int i = 0; i < 8; ++i) {
    buf[1 + i] = static_cast<std::uint8_t>(arg >> (8 * i));
  }
}

std::uint64_t decode_arg(const std::uint8_t* buf) {
  std::uint64_t arg = 0;
  for (int i = 0; i < 8; ++i) {
    arg |= static_cast<std::uint64_t>(buf[1 + i]) << (8 * i);
  }
  return arg;
}

bool write_exact(int fd, const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, p + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

bool send_msg(int fd, std::uint8_t kind, std::uint64_t arg) {
  std::uint8_t buf[k_msg_size];
  encode_msg(buf, kind, arg);
  return write_exact(fd, buf, sizeof buf);
}

bool read_exact(int fd, void* data, std::size_t size) {
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, p + got, size - got);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;  // EOF or error: the peer is gone
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

std::string shard_path_for(const std::string& dir, std::uint32_t index) {
  char name[32];
  std::snprintf(name, sizeof name, "shard-%05u.vjl", index);
  return dir + "/" + name;
}

core::solve_error shard_error(std::string detail) {
  return core::solve_error{core::solve_code::shard_mismatch,
                           tree::invalid_node, std::move(detail)};
}

core::solve_error options_error(std::string detail) {
  return core::solve_error{core::solve_code::invalid_options,
                           tree::invalid_node, std::move(detail)};
}

/// journal_record for one finished job -- make_record's rules (parallel.cpp).
core::journal_record record_for(std::uint64_t job, std::uint64_t fingerprint,
                                core::solve_outcome<core::stat_result>&& solved,
                                const layout::process_model& model) {
  core::journal_record rec;
  rec.job_index = job;
  rec.fingerprint = fingerprint;
  rec.ok = solved.ok();
  if (solved.ok()) {
    rec.num_sources = model.space().size();
    rec.result = std::move(*solved);
    rec.result.root_rat.own_terms();
  } else {
    rec.code = solved.error().code;
    rec.error_node = solved.error().node;
    rec.detail = solved.error().detail;
  }
  return rec;
}

core::journal_record error_record(std::uint64_t job, std::uint64_t fingerprint,
                                  core::solve_code code, std::string detail) {
  core::journal_record rec;
  rec.job_index = job;
  rec.fingerprint = fingerprint;
  rec.ok = false;
  rec.code = code;
  rec.error_node = tree::invalid_node;
  rec.detail = std::move(detail);
  return rec;
}

/// Solves one job serially (workers parallelize across processes, not
/// threads) and returns its durable record. Never throws.
core::journal_record solve_one(const std::vector<core::batch_job>& jobs,
                               std::uint64_t job, std::uint64_t fingerprint,
                               const std::optional<std::uint64_t>& batch_seed) {
  const auto i = static_cast<std::size_t>(job);
  try {
    core::prepared_job setup = core::prepare_batch_job(jobs[i], i, batch_seed);
    auto solved = core::solve_statistical_insertion(
        *setup.net, *setup.model, jobs[i].options, nullptr);
    return record_for(job, fingerprint, std::move(solved), *setup.model);
  } catch (const std::bad_alloc&) {
    return error_record(job, fingerprint, core::solve_code::memory_cap,
                        "allocation failed preparing job");
  } catch (const std::exception& e) {
    return error_record(job, fingerprint, core::solve_code::internal,
                        e.what());
  }
}

// -- worker child body ------------------------------------------------------

struct worker_args {
  std::size_t slot = 0;
  int cmd_rd = -1;
  int ev_wr = -1;
  const std::vector<core::batch_job>* jobs = nullptr;
  std::optional<std::uint64_t> batch_seed;
  const std::vector<std::uint64_t>* fingerprints = nullptr;
  core::journal_header header;
  core::shard_info shard;
  std::string shard_path;
  std::size_t checkpoint_every_jobs = 1;
  double heartbeat_interval_ms = 25.0;
};

[[noreturn]] void run_worker(const worker_args& a) {
  // Die with the coordinator: a SIGKILLed coordinator must not leave orphan
  // solvers grinding on.
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);
  ::signal(SIGPIPE, SIG_IGN);

  core::journal_writer writer{a.shard_path, a.header, a.shard,
                              a.checkpoint_every_jobs};
  std::atomic<bool> stop_beats{false};
  send_msg(a.ev_wr, ev_ready, 0);

  // Heartbeats ride a side thread (created post-fork: fork-safe) so a long
  // solve never looks like a hang. heartbeat_drop silences them without
  // stopping the worker -- the supervisor-side view of a wedged process.
  std::thread beater([&] {
    const auto interval = std::chrono::duration<double, std::milli>(
        a.heartbeat_interval_ms);
    while (!stop_beats.load(std::memory_order_relaxed)) {
      if (!testing::should_fire(testing::fault_point::heartbeat_drop,
                                a.slot)) {
        if (!send_msg(a.ev_wr, ev_heartbeat, 0)) break;
      }
      std::this_thread::sleep_for(interval);
    }
  });

  for (;;) {
    std::uint8_t buf[k_msg_size];
    if (!read_exact(a.cmd_rd, buf, sizeof buf)) break;  // coordinator gone
    if (buf[0] == cmd_shutdown) break;
    if (buf[0] != cmd_solve) continue;
    const std::uint64_t job = decode_arg(buf);
    if (testing::should_fire(testing::fault_point::worker_hang, a.slot)) {
      // Wedge: stop heartbeating and never answer. The coordinator's
      // heartbeat timeout must detect and SIGKILL us.
      stop_beats.store(true, std::memory_order_relaxed);
      for (;;) ::pause();
    }
    core::journal_record rec =
        solve_one(*a.jobs, job, (*a.fingerprints)[job], a.batch_seed);
    writer.append(rec);
    send_msg(a.ev_wr, ev_job_done, job);
  }

  stop_beats.store(true, std::memory_order_relaxed);
  beater.join();
  writer.flush();
  std::_Exit(0);
}

// -- coordinator-side slot state -------------------------------------------

struct slot_state {
  enum class phase : std::uint8_t {
    unspawned,
    running,
    backoff,
    retired,
    finished,
  };
  phase ph = phase::unspawned;
  pid_t pid = -1;
  int cmd_wr = -1;
  int ev_rd = -1;
  bool ready = false;
  std::uint64_t in_flight = k_no_job;
  clock_type::time_point last_beat;
  clock_type::time_point backoff_until;
  std::deque<std::uint64_t> queue;
  std::string shard_path;  ///< current incarnation's shard
  worker_stats stats;
  std::vector<std::uint8_t> carry;  ///< partial event-pipe bytes
};

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

shard_coordinator::shard_coordinator(coordinator_options opts)
    : opts_(std::move(opts)) {
  if (opts_.num_workers == 0) opts_.num_workers = 1;
}

core::solve_outcome<coordinator_report> shard_coordinator::run(
    const std::vector<core::batch_job>& jobs, const observer& obs) {
  const auto t0 = clock_type::now();
  if (opts_.journal_dir.empty()) {
    return options_error("shard_coordinator: journal_dir is required");
  }

  coordinator_report report;
  report.jobs_total = jobs.size();
  report.workers.resize(opts_.num_workers);

  const batch_fingerprints fps = fingerprint_batch(jobs, opts_.batch_seed);
  core::journal_header header;
  header.has_batch_seed = opts_.batch_seed.has_value();
  header.batch_seed = opts_.batch_seed.value_or(0);
  header.num_jobs = jobs.size();
  header.jobs_fingerprint = fps.combined;

  std::vector<bool> done(jobs.size(), false);
  // Slot that claimed each job via a job_done event; repair un-claims jobs
  // whose records later turn out torn on disk.
  std::vector<int> claimed_by(jobs.size(), -1);
  std::uint32_t next_shard_index = 0;

  // -- resume: recover whatever shards a previous run left behind ----------
  if (opts_.resume) {
    for (const std::string& path : list_shard_files(opts_.journal_dir)) {
      auto read = core::read_journal(path);
      if (!read.ok()) {
        read.error().detail = "shard '" + path + "': " + read.error().detail;
        return std::move(read.error());
      }
      if (!read->has_header) continue;  // torn before the first checkpoint
      if (!read->has_shard) {
        return shard_error("'" + path +
                           "' is a journal but carries no shard header");
      }
      if (read->shard.parent_fingerprint != fps.combined) {
        return shard_error("shard '" + path +
                           "' was written for a different batch (parent "
                           "fingerprint mismatch)");
      }
      next_shard_index =
          std::max(next_shard_index, read->shard.shard_index + 1);
      for (const auto& rec : read->records) {
        if (rec.job_index >= jobs.size() ||
            rec.fingerprint != fps.per_job[rec.job_index]) {
          return shard_error("shard '" + path +
                             "' has a record that does not match the batch "
                             "being resumed");
        }
        if (!rec.ok && rec.code == core::solve_code::cancelled) continue;
        if (!done[rec.job_index]) {
          done[rec.job_index] = true;
          ++report.jobs_recovered;
        }
      }
    }
  }

  // -- partition the fingerprint space, pending jobs only ------------------
  std::vector<slot_state> slots(opts_.num_workers);
  std::deque<std::uint64_t> overflow;  // retired slots' unfinished jobs
  std::size_t jobs_pending = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (done[i]) continue;
    slots[fps.per_job[i] % opts_.num_workers].queue.push_back(i);
    ++jobs_pending;
  }

  // Writes into a dead worker's command pipe must come back as EPIPE, not a
  // process-killing signal.
  struct sigpipe_guard {
    sighandler_t prev = ::signal(SIGPIPE, SIG_IGN);
    ~sigpipe_guard() { ::signal(SIGPIPE, prev); }
  } sigpipe_ignored;

  // Whatever path leaves this scope, no child outlives it.
  struct child_reaper {
    std::vector<slot_state>* slots;
    ~child_reaper() {
      for (auto& s : *slots) {
        if (s.pid > 0) {
          ::kill(s.pid, SIGKILL);
          ::waitpid(s.pid, nullptr, 0);
          s.pid = -1;
        }
        close_fd(s.cmd_wr);
        close_fd(s.ev_rd);
      }
    }
  } reaper{&slots};

  const auto emit = [&](coordinator_event::kind what, std::size_t slot,
                        long pid, std::uint64_t job) {
    if (obs) obs(coordinator_event{what, slot, pid, job});
  };

  const auto backoff_delay = [&](std::uint64_t restarts) {
    const double ms = std::min(
        opts_.restart_backoff_max_ms,
        opts_.restart_backoff_base_ms *
            std::pow(2.0, static_cast<double>(restarts)));
    return std::chrono::duration_cast<clock_type::duration>(
        std::chrono::duration<double, std::milli>(ms));
  };

  // Declares slot w's worker dead: recover its shard posthumously, requeue
  // the in-flight job, and either schedule a backoff restart or retire the
  // slot. `restartable` is false for spawn failures that already consumed
  // the attempt.
  const auto handle_death = [&](std::size_t w) {
    slot_state& s = slots[w];
    close_fd(s.cmd_wr);
    close_fd(s.ev_rd);
    s.pid = -1;
    s.ready = false;
    s.carry.clear();
    // Posthumous recovery: everything the dead worker made durable counts,
    // exactly once. The shard file is immutable now (the process is gone).
    if (!s.shard_path.empty()) {
      auto read = core::read_journal(s.shard_path);
      if (read.ok() && read->has_shard) {
        for (const auto& rec : read->records) {
          if (rec.job_index >= done.size()) continue;
          if (!rec.ok && rec.code == core::solve_code::cancelled) continue;
          if (!done[rec.job_index]) {
            done[rec.job_index] = true;
            claimed_by[rec.job_index] = static_cast<int>(w);
            ++s.stats.jobs_completed;
            ++report.jobs_solved_by_workers;
          }
        }
      }
    }
    if (s.in_flight != k_no_job) {
      if (!done[s.in_flight]) s.queue.push_front(s.in_flight);
      s.in_flight = k_no_job;
    }
    if (s.stats.restarts < opts_.restart_budget) {
      s.ph = slot_state::phase::backoff;
      s.backoff_until = clock_type::now() + backoff_delay(s.stats.restarts);
      ++s.stats.restarts;
      ++report.restarts_total;
    } else {
      s.ph = slot_state::phase::retired;
      ++report.workers_retired;
      while (!s.queue.empty()) {
        overflow.push_back(s.queue.front());
        s.queue.pop_front();
      }
      emit(coordinator_event::kind::retired, w, -1, 0);
    }
  };

  const auto spawn = [&](std::size_t w, bool is_restart) -> void {
    slot_state& s = slots[w];
    if (testing::should_fire(testing::fault_point::worker_spawn_fail, w)) {
      handle_death(w);  // a failed fork consumes a restart attempt
      return;
    }
    int cmd[2] = {-1, -1};
    int ev[2] = {-1, -1};
    if (::pipe(cmd) != 0 || ::pipe(ev) != 0) {
      close_fd(cmd[0]);
      close_fd(cmd[1]);
      handle_death(w);
      return;
    }

    worker_args args;
    args.slot = w;
    args.cmd_rd = cmd[0];
    args.ev_wr = ev[1];
    args.jobs = &jobs;
    args.batch_seed = opts_.batch_seed;
    args.fingerprints = &fps.per_job;
    args.header = header;
    args.shard.shard_index = next_shard_index;
    args.shard.shard_count = static_cast<std::uint32_t>(opts_.num_workers);
    args.shard.parent_fingerprint = fps.combined;
    args.shard_path = shard_path_for(opts_.journal_dir, next_shard_index);
    args.checkpoint_every_jobs = opts_.checkpoint_every_jobs;
    args.heartbeat_interval_ms = opts_.heartbeat_interval_ms;

    const pid_t pid = ::fork();
    if (pid < 0) {
      close_fd(cmd[0]);
      close_fd(cmd[1]);
      close_fd(ev[0]);
      close_fd(ev[1]);
      handle_death(w);
      return;
    }
    if (pid == 0) {
      // Child: drop every coordinator-side fd, including other slots'.
      ::close(cmd[1]);
      ::close(ev[0]);
      for (auto& other : slots) {
        if (other.cmd_wr >= 0) ::close(other.cmd_wr);
        if (other.ev_rd >= 0) ::close(other.ev_rd);
      }
      run_worker(args);  // never returns
    }
    ::close(cmd[0]);
    ::close(ev[1]);
    s.pid = pid;
    s.cmd_wr = cmd[1];
    s.ev_rd = ev[0];
    const int fl = ::fcntl(s.ev_rd, F_GETFL, 0);
    ::fcntl(s.ev_rd, F_SETFL, fl | O_NONBLOCK);
    s.ph = slot_state::phase::running;
    s.ready = false;
    s.last_beat = clock_type::now();
    s.shard_path = args.shard_path;
    ++next_shard_index;
    ++s.stats.shards_opened;
    emit(is_restart ? coordinator_event::kind::restarted
                    : coordinator_event::kind::spawned,
         w, pid, 0);
  };

  // Pulls the next undone job for slot w: own queue first, then the longest
  // sibling queue (work stealing), then the retired-slot overflow.
  const auto next_job_for = [&](std::size_t w) -> std::uint64_t {
    slot_state& s = slots[w];
    while (!s.queue.empty()) {
      const std::uint64_t j = s.queue.front();
      s.queue.pop_front();
      if (!done[j]) return j;
    }
    for (;;) {
      std::size_t victim = slots.size();
      std::size_t best = 0;
      for (std::size_t v = 0; v < slots.size(); ++v) {
        if (v == w) continue;
        if (slots[v].queue.size() > best) {
          best = slots[v].queue.size();
          victim = v;
        }
      }
      if (victim == slots.size()) break;
      const std::uint64_t j = slots[victim].queue.back();
      slots[victim].queue.pop_back();
      if (!done[j]) return j;
    }
    while (!overflow.empty()) {
      const std::uint64_t j = overflow.front();
      overflow.pop_front();
      if (!done[j]) return j;
    }
    return k_no_job;
  };

  const auto dispatch = [&] {
    for (std::size_t w = 0; w < slots.size(); ++w) {
      slot_state& s = slots[w];
      if (s.ph != slot_state::phase::running || !s.ready) continue;
      if (s.in_flight != k_no_job) continue;
      const std::uint64_t j = next_job_for(w);
      if (j == k_no_job) continue;
      if (!send_msg(s.cmd_wr, cmd_solve, j)) {
        // EPIPE: the worker died between events; requeue and let the
        // waitpid sweep run the death protocol.
        s.queue.push_front(j);
        continue;
      }
      s.in_flight = j;
    }
  };

  if (jobs_pending > 0) {
    for (std::size_t w = 0; w < slots.size(); ++w) spawn(w, false);
  }

  // -- the supervision loop (single-threaded; forks stay safe) -------------
  const auto all_done = [&] {
    for (std::size_t i = 0; i < done.size(); ++i) {
      if (!done[i]) return false;
    }
    return true;
  };
  const auto heartbeat_timeout = std::chrono::duration_cast<
      clock_type::duration>(std::chrono::duration<double, std::milli>(
      opts_.heartbeat_timeout_ms));

  while (jobs_pending > 0) {
    if (all_done()) break;
    bool any_alive = false;
    for (const auto& s : slots) {
      if (s.ph == slot_state::phase::running ||
          s.ph == slot_state::phase::backoff) {
        any_alive = true;
        break;
      }
    }
    if (!any_alive) break;  // every slot retired: inline fallback below

    dispatch();
    emit(coordinator_event::kind::tick, 0, -1, 0);

    std::vector<pollfd> pfds;
    std::vector<std::size_t> pfd_slot;
    for (std::size_t w = 0; w < slots.size(); ++w) {
      if (slots[w].ph == slot_state::phase::running && slots[w].ev_rd >= 0) {
        pfds.push_back(pollfd{slots[w].ev_rd, POLLIN, 0});
        pfd_slot.push_back(w);
      }
    }
    const int rv = ::poll(pfds.data(), pfds.size(), 5);
    if (rv < 0 && errno != EINTR) break;

    // Drain events. Reads may coalesce several 9-byte messages (and split
    // one across reads); `carry` re-frames them.
    const auto now = clock_type::now();
    for (std::size_t k = 0; k < pfds.size(); ++k) {
      if ((pfds[k].revents & (POLLIN | POLLHUP)) == 0) continue;
      slot_state& s = slots[pfd_slot[k]];
      std::uint8_t buf[k_msg_size * 64];
      for (;;) {
        const ssize_t n = ::read(s.ev_rd, buf, sizeof buf);
        if (n <= 0) break;  // EAGAIN / EOF; deaths surface via waitpid
        s.carry.insert(s.carry.end(), buf, buf + n);
      }
      std::size_t at = 0;
      while (s.carry.size() - at >= k_msg_size) {
        const std::uint8_t kind = s.carry[at];
        const std::uint64_t arg = decode_arg(s.carry.data() + at);
        at += k_msg_size;
        s.last_beat = now;
        if (kind == ev_ready) {
          s.ready = true;
          emit(coordinator_event::kind::ready, pfd_slot[k], s.pid, 0);
        } else if (kind == ev_heartbeat) {
          ++s.stats.heartbeats;
        } else if (kind == ev_job_done) {
          if (arg < done.size() && !done[arg]) {
            done[arg] = true;
            claimed_by[arg] = static_cast<int>(pfd_slot[k]);
            ++s.stats.jobs_completed;
            ++report.jobs_solved_by_workers;
          }
          if (s.in_flight == arg) s.in_flight = k_no_job;
          emit(coordinator_event::kind::job_done, pfd_slot[k], s.pid, arg);
        }
      }
      s.carry.erase(s.carry.begin(),
                    s.carry.begin() + static_cast<std::ptrdiff_t>(at));
    }

    // Reap deaths (SIGKILLed by chaos, crashed, or killed below).
    for (std::size_t w = 0; w < slots.size(); ++w) {
      slot_state& s = slots[w];
      if (s.ph != slot_state::phase::running || s.pid <= 0) continue;
      int status = 0;
      const pid_t r = ::waitpid(s.pid, &status, WNOHANG);
      if (r == s.pid) {
        emit(coordinator_event::kind::died, w, r, 0);
        handle_death(w);
      }
    }

    // Hung workers: silent past the timeout -> SIGKILL; reaped next sweep.
    for (std::size_t w = 0; w < slots.size(); ++w) {
      slot_state& s = slots[w];
      if (s.ph != slot_state::phase::running || s.pid <= 0) continue;
      if (now - s.last_beat > heartbeat_timeout) {
        ::kill(s.pid, SIGKILL);
        s.last_beat = now;  // don't re-kill every tick while it reaps
      }
    }

    // Backoff expiry -> respawn.
    for (std::size_t w = 0; w < slots.size(); ++w) {
      if (slots[w].ph == slot_state::phase::backoff &&
          now >= slots[w].backoff_until) {
        spawn(w, true);
      }
    }
  }

  // Graceful shutdown of the survivors; stragglers get SIGKILL.
  for (auto& s : slots) {
    if (s.ph == slot_state::phase::running && s.cmd_wr >= 0) {
      send_msg(s.cmd_wr, cmd_shutdown, 0);
    }
  }
  const auto drain_deadline = clock_type::now() + std::chrono::seconds(10);
  for (std::size_t w = 0; w < slots.size(); ++w) {
    slot_state& s = slots[w];
    if (s.ph != slot_state::phase::running || s.pid <= 0) continue;
    int status = 0;
    for (;;) {
      const pid_t r = ::waitpid(s.pid, &status, WNOHANG);
      if (r == s.pid) break;
      if (clock_type::now() >= drain_deadline) {
        ::kill(s.pid, SIGKILL);
        ::waitpid(s.pid, &status, 0);
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    s.pid = -1;
    close_fd(s.cmd_wr);
    close_fd(s.ev_rd);
    s.ph = slot_state::phase::finished;
  }

  // -- repair pass: re-derive durable coverage from the shards themselves --
  // A job_done event proves the worker *appended* the record, not that the
  // checkpoint survived (shard_write_short tears the image after the event).
  // Completion is what's on disk; anything uncovered is re-solved inline
  // into a repair shard. This is also the terminal fallback when every slot
  // retired with jobs still pending.
  {
    std::vector<bool> covered(jobs.size(), false);
    for (const std::string& path : list_shard_files(opts_.journal_dir)) {
      auto read = core::read_journal(path);
      if (!read.ok()) {
        read.error().detail = "shard '" + path + "': " + read.error().detail;
        return std::move(read.error());
      }
      if (!read->has_header || !read->has_shard) continue;
      ++report.shards_on_disk;
      for (const auto& rec : read->records) {
        if (rec.job_index >= covered.size()) continue;
        if (!rec.ok && rec.code == core::solve_code::cancelled) continue;
        covered[rec.job_index] = true;
      }
    }
    std::optional<core::journal_writer> repair;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (covered[i]) continue;
      if (claimed_by[i] >= 0) {
        // The record the event promised never became durable: un-claim it.
        auto& ss = slots[static_cast<std::size_t>(claimed_by[i])].stats;
        if (ss.jobs_completed > 0) --ss.jobs_completed;
        if (report.jobs_solved_by_workers > 0) --report.jobs_solved_by_workers;
      }
      if (!repair.has_value()) {
        core::shard_info si;
        si.shard_index = next_shard_index;
        si.shard_count = static_cast<std::uint32_t>(opts_.num_workers);
        si.parent_fingerprint = fps.combined;
        repair.emplace(shard_path_for(opts_.journal_dir, next_shard_index),
                       header, si, opts_.checkpoint_every_jobs);
        ++next_shard_index;
        ++report.shards_on_disk;
      }
      repair->append(solve_one(jobs, i, fps.per_job[i], opts_.batch_seed));
      ++report.jobs_solved_inline;
    }
    if (repair.has_value()) repair->flush();
  }

  for (std::size_t w = 0; w < slots.size(); ++w) {
    report.workers[w] = slots[w].stats;
  }

  auto merged = merge_shards(jobs, opts_.batch_seed, opts_.journal_dir);
  if (!merged.ok()) return std::move(merged.error());
  report.merged = std::move(*merged);
  report.wall_seconds =
      std::chrono::duration<double>(clock_type::now() - t0).count();
  return report;
}

// ---------------------------------------------------------------------------
// Remote-worker mode.
// ---------------------------------------------------------------------------

core::solve_outcome<coordinator_report> shard_coordinator::run_remote(
    const serve::submit_msg& submit, const std::string& endpoint) {
  const auto t0 = clock_type::now();
  if (opts_.journal_dir.empty()) {
    return options_error("shard_coordinator: journal_dir is required");
  }

  coordinator_report report;
  report.jobs_total = submit.jobs.size();
  report.workers.resize(opts_.num_workers);

  // Rebuild the batch exactly as the server would admit it, so the local
  // fingerprints (and hence the shard headers and the merge) describe the
  // same solve the remote workers perform.
  core::stat_options options;
  layout::process_model_config model_config;
  if (std::string err =
          serve::map_wire_options(submit.options, options, model_config);
      !err.empty()) {
    return options_error(std::move(err));
  }
  std::deque<tree::routing_tree> owned_trees;
  std::vector<core::batch_job> jobs;
  jobs.reserve(submit.jobs.size());
  for (const serve::wire_job& wj : submit.jobs) {
    core::batch_job job;
    job.options = options;
    job.model = model_config;
    if (wj.has_tree) {
      try {
        owned_trees.push_back(tree::read_tree_from_string(wj.tree_text));
      } catch (const std::exception& e) {
        return core::solve_error{core::solve_code::invalid_tree,
                                 tree::invalid_node, e.what()};
      }
      job.tree = &owned_trees.back();
    } else {
      tree::random_tree_options g;
      g.num_sinks = static_cast<std::size_t>(wj.num_sinks);
      g.die_side_um = wj.die_side_um;
      g.criticality_balance = wj.criticality_balance;
      g.seed = 0;  // re-derived from batch_seed, like the server does
      job.generate = g;
    }
    jobs.push_back(std::move(job));
  }
  const std::optional<std::uint64_t> batch_seed = submit.batch_seed;
  const batch_fingerprints fps = fingerprint_batch(jobs, batch_seed);

  core::journal_header header;
  header.has_batch_seed = true;
  header.batch_seed = submit.batch_seed;
  header.num_jobs = jobs.size();
  header.jobs_fingerprint = fps.combined;

  std::vector<bool> done(jobs.size(), false);
  std::uint32_t next_shard_index = 0;
  if (opts_.resume) {
    for (const std::string& path : list_shard_files(opts_.journal_dir)) {
      auto read = core::read_journal(path);
      if (!read.ok()) {
        read.error().detail = "shard '" + path + "': " + read.error().detail;
        return std::move(read.error());
      }
      if (!read->has_header) continue;
      if (!read->has_shard ||
          read->shard.parent_fingerprint != fps.combined) {
        return shard_error("shard '" + path +
                           "' does not belong to the batch being resumed");
      }
      next_shard_index =
          std::max(next_shard_index, read->shard.shard_index + 1);
      for (const auto& rec : read->records) {
        if (rec.job_index >= jobs.size() ||
            rec.fingerprint != fps.per_job[rec.job_index]) {
          return shard_error("shard '" + path +
                             "' has a record that does not match the batch "
                             "being resumed");
        }
        if (!rec.ok && rec.code == core::solve_code::cancelled) continue;
        if (!done[rec.job_index]) {
          done[rec.job_index] = true;
          ++report.jobs_recovered;
        }
      }
    }
  }

  // Per-slot queues over the fingerprint space, stealing under one mutex.
  std::vector<std::deque<std::uint64_t>> queues(opts_.num_workers);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (!done[i]) queues[fps.per_job[i] % opts_.num_workers].push_back(i);
  }
  std::mutex mu;
  const auto take = [&](std::size_t w) -> std::uint64_t {
    std::lock_guard lk(mu);
    if (!queues[w].empty()) {
      const std::uint64_t j = queues[w].front();
      queues[w].pop_front();
      return j;
    }
    std::size_t victim = queues.size();
    std::size_t best = 0;
    for (std::size_t v = 0; v < queues.size(); ++v) {
      if (queues[v].size() > best) {
        best = queues[v].size();
        victim = v;
      }
    }
    if (victim == queues.size()) return k_no_job;
    const std::uint64_t j = queues[victim].back();
    queues[victim].pop_back();
    return j;
  };
  const auto give_back = [&](std::uint64_t j) {
    std::lock_guard lk(mu);
    queues[j % queues.size()].push_front(j);
  };

  serve::client_options copts;
  if (endpoint.rfind("port:", 0) == 0) {
    copts.tcp_port = std::atoi(endpoint.c_str() + 5);
  } else {
    copts.unix_socket_path = endpoint;
  }

  std::vector<std::thread> threads;
  threads.reserve(opts_.num_workers);
  for (std::size_t w = 0; w < opts_.num_workers; ++w) {
    const std::uint32_t shard_index = next_shard_index++;
    threads.emplace_back([&, w, shard_index] {
      core::shard_info si;
      si.shard_index = shard_index;
      si.shard_count = static_cast<std::uint32_t>(opts_.num_workers);
      si.parent_fingerprint = fps.combined;
      core::journal_writer writer{
          shard_path_for(opts_.journal_dir, shard_index), header, si,
          opts_.checkpoint_every_jobs};
      ++report.workers[w].shards_opened;
      serve::client_options wopts = copts;
      serve::serve_client client{wopts};
      for (;;) {
        const std::uint64_t j = take(w);
        if (j == k_no_job) break;
        const auto i = static_cast<std::size_t>(j);
        // Prepare locally and ship the explicit tree: the per-job seed is
        // derived *here*, so the remote single-job batch needs no seed
        // coordination, and tree text round-trips bit-exactly.
        serve::submit_msg one;
        one.batch_seed = 1;  // irrelevant: the shipped job is an explicit tree
        one.options = submit.options;
        serve::wire_job wj;
        wj.has_tree = true;
        try {
          core::prepared_job setup =
              core::prepare_batch_job(jobs[i], i, batch_seed);
          wj.tree_text = tree::write_tree_to_string(*setup.net);
        } catch (const std::exception& e) {
          core::journal_record rec;
          rec.job_index = j;
          rec.fingerprint = fps.per_job[i];
          rec.ok = false;
          rec.code = core::solve_code::internal;
          rec.detail = e.what();
          writer.append(rec);
          ++report.workers[w].jobs_completed;
          continue;
        }
        one.jobs.push_back(std::move(wj));
        std::optional<core::journal_record> got;
        const auto summary = client.run_batch(
            one, [&](const serve::result_msg& m) { got = m.record; });
        if (!summary.complete || !got.has_value()) {
          give_back(j);  // survivors (or the inline fallback) pick it up
          return;        // this slot's client budget is spent
        }
        // Rewrite to batch-global identity before journaling: the remote
        // solve was a single-job batch with its own indices.
        got->job_index = j;
        got->fingerprint = fps.per_job[i];
        writer.append(*got);
        ++report.workers[w].jobs_completed;
      }
      writer.flush();
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& wst : report.workers) {
    report.jobs_solved_by_workers += wst.jobs_completed;
  }

  // Coverage repair + inline fallback, shared semantics with fork mode.
  {
    std::vector<bool> covered(jobs.size(), false);
    for (const std::string& path : list_shard_files(opts_.journal_dir)) {
      auto read = core::read_journal(path);
      if (!read.ok()) {
        read.error().detail = "shard '" + path + "': " + read.error().detail;
        return std::move(read.error());
      }
      if (!read->has_header || !read->has_shard) continue;
      ++report.shards_on_disk;
      for (const auto& rec : read->records) {
        if (rec.job_index >= covered.size()) continue;
        if (!rec.ok && rec.code == core::solve_code::cancelled) continue;
        covered[rec.job_index] = true;
      }
    }
    std::optional<core::journal_writer> repair;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (covered[i]) continue;
      if (!repair.has_value()) {
        core::shard_info si;
        si.shard_index = next_shard_index;
        si.shard_count = static_cast<std::uint32_t>(opts_.num_workers);
        si.parent_fingerprint = fps.combined;
        repair.emplace(shard_path_for(opts_.journal_dir, next_shard_index),
                       header, si, opts_.checkpoint_every_jobs);
        ++next_shard_index;
        ++report.shards_on_disk;
      }
      repair->append(solve_one(jobs, i, fps.per_job[i], batch_seed));
      ++report.jobs_solved_inline;
    }
    if (repair.has_value()) repair->flush();
  }

  auto merged = merge_shards(jobs, batch_seed, opts_.journal_dir);
  if (!merged.ok()) return std::move(merged.error());
  report.merged = std::move(*merged);
  report.wall_seconds =
      std::chrono::duration<double>(clock_type::now() - t0).count();
  return report;
}

}  // namespace vabi::shard
