// Plain-text serialization of routing trees.
//
// Format (one node per line, parents before children):
//
//   vabi-tree v1
//   nodes <count>
//   <id> source  <x> <y>
//   <id> steiner <x> <y> <parent> <wire_um>
//   <id> sink    <x> <y> <parent> <wire_um> <cap_pf> <rat_ps>
//
// Lines starting with '#' are comments. The format round-trips exactly and is
// intended for exchanging benchmarks and for golden-file tests.
#pragma once

#include <iosfwd>
#include <string>

#include "tree/routing_tree.hpp"

namespace vabi::tree {

void write_tree(std::ostream& os, const routing_tree& tree);
std::string write_tree_to_string(const routing_tree& tree);

/// Parses a tree; throws std::runtime_error with a line-numbered message on
/// malformed input. The result is validate()d before returning.
routing_tree read_tree(std::istream& is);
routing_tree read_tree_from_string(const std::string& text);

void save_tree(const std::string& path, const routing_tree& tree);
routing_tree load_tree(const std::string& path);

}  // namespace vabi::tree
