// VPR-flavoured routing import.
//
// FPGA routers (VPR and its descendants, e.g. the mrfpga buffer-insertion
// pass) describe a routed net as a list of routing-resource nodes connected
// by two kinds of edges: plain RC wire segments and *switches* -- programmable
// connections with a lumped series resistance R and an intrinsic delay Tdel.
// This module imports that shape of netlist into a routing_tree so the DP
// engines (core/) can buffer FPGA-style nets, and provides a deterministic
// generator of such netlists for the large-fanout stress tiers.
//
// Text format ("vpr-rc v1"; '#' starts a comment, blank lines ignored,
// directives in any order, node ids arbitrary non-negative integers):
//
//   vpr-rc v1
//   wire <res_ohm_per_um> <cap_pf_per_um>
//   node <id> <x> <y>
//   edge <child> <parent> wire <length_um>
//   edge <child> <parent> switch <R_ohm> <Tdel_ps>
//   sink <id> <cap_pf> <rat_ps>
//   root <id>
//
// Switch lowering: routing_tree edges carry only a length, so a switch
// (R, Tdel) is replaced by the equivalent wire length under the file's wire
// model -- R/res_per_um for the resistance plus sqrt(2*Tdel/(res*cap)) for
// the intrinsic delay (the length whose Elmore delay res*cap*l^2/2 equals
// Tdel). This preserves the switch's series resistance exactly and its
// intrinsic delay to first order; the `wire` directive is therefore required
// whenever a switch edge appears.
//
// Import renumbers nodes into the dense parents-before-children id space
// routing_tree requires (breadth-first from the root, ties broken by
// original id), so a round-trip through tree_io is exact once imported.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "tree/routing_tree.hpp"

namespace vabi::tree {

/// Parses a vpr-rc v1 document; throws std::runtime_error with a
/// line-numbered message on malformed input. The result is validate()d.
routing_tree import_vpr_rc(std::istream& is);
routing_tree import_vpr_rc_from_string(const std::string& text);

/// Generator of VPR-style nets: a `fanout`-ary tree of switch blocks whose
/// hops are a switch (R, Tdel) followed by a wire segment, leaves are the
/// sinks. Deterministic in the seed. The generator emits the vpr-rc text
/// (with intentionally shuffled ids/directive order, exercising the
/// importer's renumbering); import_vpr_rc turns it into a tree.
struct vpr_net_options {
  std::size_t num_sinks = 16;
  std::size_t fanout = 4;           ///< switch-block fanout, >= 2
  double seg_length_um = 120.0;     ///< wire segment per hop
  double wire_res_per_um = 0.1;     ///< ohm/um of the wire model line
  double wire_cap_per_um = 0.0002;  ///< pF/um of the wire model line
  double switch_res_ohm = 200.0;
  double switch_tdel_ps = 5.0;
  double sink_cap_pf = 0.020;
  double sink_rat_ps = 0.0;
  double die_side_um = 8000.0;
  std::uint64_t seed = 1;
};

std::string make_vpr_style_net_text(const vpr_net_options& options);

/// Convenience: generate + import in one step.
routing_tree make_vpr_style_net(const vpr_net_options& options);

}  // namespace vabi::tree
