#include "tree/routing_tree.hpp"

#include <stdexcept>
#include <string>

namespace vabi::tree {

const char* to_string(node_kind kind) {
  switch (kind) {
    case node_kind::source:
      return "source";
    case node_kind::sink:
      return "sink";
    case node_kind::steiner:
      return "steiner";
  }
  return "unknown";
}

routing_tree::routing_tree(layout::point source_loc) {
  tree_node root;
  root.id = 0;
  root.kind = node_kind::source;
  root.location = source_loc;
  nodes_.push_back(root);
}

node_id routing_tree::add_node(node_kind kind, node_id parent,
                               layout::point loc, double wire_um) {
  if (parent >= nodes_.size()) {
    throw std::out_of_range("routing_tree: invalid parent id");
  }
  if (nodes_[parent].is_sink()) {
    throw std::logic_error("routing_tree: sinks must be leaves");
  }
  tree_node n;
  n.id = static_cast<node_id>(nodes_.size());
  n.kind = kind;
  n.location = loc;
  n.parent = parent;
  n.parent_wire_um =
      wire_um >= 0.0 ? wire_um
                     : layout::manhattan_distance(nodes_[parent].location, loc);
  nodes_[parent].children.push_back(n.id);
  nodes_.push_back(n);
  return n.id;
}

node_id routing_tree::add_sink(node_id parent, layout::point loc,
                               double cap_pf, double rat_ps, double wire_um) {
  if (cap_pf < 0.0) {
    throw std::invalid_argument("routing_tree: sink capacitance must be >= 0");
  }
  const node_id id = add_node(node_kind::sink, parent, loc, wire_um);
  nodes_[id].sink_cap_pf = cap_pf;
  nodes_[id].sink_rat_ps = rat_ps;
  ++num_sinks_;
  return id;
}

node_id routing_tree::add_steiner(node_id parent, layout::point loc,
                                  double wire_um) {
  return add_node(node_kind::steiner, parent, loc, wire_um);
}

std::vector<node_id> routing_tree::postorder() const {
  std::vector<node_id> order;
  order.reserve(nodes_.size());
  // Iterative two-stack postorder.
  std::vector<node_id> stack{root()};
  while (!stack.empty()) {
    const node_id id = stack.back();
    stack.pop_back();
    order.push_back(id);
    for (node_id c : nodes_[id].children) stack.push_back(c);
  }
  std::reverse(order.begin(), order.end());
  return order;
}

std::vector<node_id> routing_tree::sinks() const {
  std::vector<node_id> out;
  out.reserve(num_sinks_);
  for (const auto& n : nodes_) {
    if (n.is_sink()) out.push_back(n.id);
  }
  return out;
}

double routing_tree::total_wire_um() const {
  double total = 0.0;
  for (const auto& n : nodes_) total += n.parent_wire_um;
  return total;
}

layout::bbox routing_tree::bounding_box() const {
  layout::bbox box{nodes_.front().location, nodes_.front().location};
  for (const auto& n : nodes_) box.expand(n.location);
  return box;
}

void routing_tree::validate() const {
  if (nodes_.empty() || !nodes_.front().is_source()) {
    throw std::logic_error("routing_tree: missing source root");
  }
  std::size_t sink_count = 0;
  for (const auto& n : nodes_) {
    if (n.id != static_cast<node_id>(&n - nodes_.data())) {
      throw std::logic_error("routing_tree: node id mismatch");
    }
    if (n.is_source()) {
      if (n.id != 0 || n.parent != invalid_node) {
        throw std::logic_error("routing_tree: source must be the root");
      }
    } else {
      if (n.parent >= nodes_.size()) {
        throw std::logic_error("routing_tree: dangling parent");
      }
      // Children ids are strictly greater than parents by construction, which
      // also rules out cycles.
      if (n.parent >= n.id) {
        throw std::logic_error("routing_tree: parent id not less than child");
      }
      bool linked = false;
      for (node_id c : nodes_[n.parent].children) linked |= (c == n.id);
      if (!linked) {
        throw std::logic_error("routing_tree: parent does not list child");
      }
    }
    if (n.parent_wire_um < 0.0) {
      throw std::logic_error("routing_tree: negative wire length");
    }
    if (n.is_sink()) {
      ++sink_count;
      if (!n.children.empty()) {
        throw std::logic_error("routing_tree: sink with children");
      }
    }
  }
  if (sink_count != num_sinks_) {
    throw std::logic_error("routing_tree: sink count mismatch");
  }
  if (num_sinks_ == 0) {
    throw std::logic_error("routing_tree: tree has no sinks");
  }
}

}  // namespace vabi::tree
