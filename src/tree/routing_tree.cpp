#include "tree/routing_tree.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>

namespace vabi::tree {

namespace {

// Local FNV-1a primitives. src/tree sits below src/core in the layering, so
// the journal's helpers are off limits here; the constants are the standard
// 64-bit FNV ones and the recipes match core/journal.hpp bit for bit.
constexpr std::uint64_t k_fnv_seed = 14695981039346656037ull;
constexpr std::uint64_t k_fnv_prime = 1099511628211ull;

std::uint64_t fnv1a_bytes(const void* data, std::size_t n, std::uint64_t h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= k_fnv_prime;
  }
  return h;
}

std::uint64_t fnv1a_u64(std::uint64_t v, std::uint64_t h) {
  return fnv1a_bytes(&v, sizeof(v), h);
}

std::uint64_t fnv1a_f64(double v, std::uint64_t h) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return fnv1a_u64(bits, h);
}

}  // namespace

const char* to_string(node_kind kind) {
  switch (kind) {
    case node_kind::source:
      return "source";
    case node_kind::sink:
      return "sink";
    case node_kind::steiner:
      return "steiner";
  }
  return "unknown";
}

routing_tree::routing_tree(layout::point source_loc) {
  tree_node root;
  root.id = 0;
  root.kind = node_kind::source;
  root.location = source_loc;
  nodes_.push_back(root);
}

node_id routing_tree::add_node(node_kind kind, node_id parent,
                               layout::point loc, double wire_um) {
  if (parent >= nodes_.size()) {
    throw std::out_of_range("routing_tree: invalid parent id");
  }
  if (nodes_[parent].is_sink()) {
    throw std::logic_error("routing_tree: sinks must be leaves");
  }
  tree_node n;
  n.id = static_cast<node_id>(nodes_.size());
  n.kind = kind;
  n.location = loc;
  n.parent = parent;
  n.parent_wire_um =
      wire_um >= 0.0 ? wire_um
                     : layout::manhattan_distance(nodes_[parent].location, loc);
  n.detached = nodes_[parent].detached;
  if (n.detached) ++num_detached_;
  nodes_[parent].children.push_back(n.id);
  nodes_.push_back(n);
  hashes_valid_ = false;
  return n.id;
}

node_id routing_tree::add_sink(node_id parent, layout::point loc,
                               double cap_pf, double rat_ps, double wire_um) {
  if (cap_pf < 0.0) {
    throw std::invalid_argument("routing_tree: sink capacitance must be >= 0");
  }
  const node_id id = add_node(node_kind::sink, parent, loc, wire_um);
  nodes_[id].sink_cap_pf = cap_pf;
  nodes_[id].sink_rat_ps = rat_ps;
  if (!nodes_[id].detached) ++num_sinks_;
  return id;
}

node_id routing_tree::add_steiner(node_id parent, layout::point loc,
                                  double wire_um) {
  return add_node(node_kind::steiner, parent, loc, wire_um);
}

std::uint64_t routing_tree::compute_subtree_hash(node_id id) const {
  const tree_node& n = nodes_[id];
  std::uint64_t h = k_fnv_seed;
  h = fnv1a_u64(static_cast<std::uint64_t>(n.kind), h);
  h = fnv1a_f64(n.location.x, h);
  h = fnv1a_f64(n.location.y, h);
  h = fnv1a_f64(n.sink_cap_pf, h);
  h = fnv1a_f64(n.sink_rat_ps, h);
  // Each edge is hashed at the parent, not the child: resizing the wire
  // above X changes the hashes of X's ancestors but leaves subtree(X)
  // untouched, which is exactly the set of DP results the edit invalidates.
  for (const node_id c : n.children) {
    h = fnv1a_f64(nodes_[c].parent_wire_um, h);
    h = fnv1a_u64(hashes_[c], h);
  }
  return h;
}

void routing_tree::ensure_subtree_hashes() const {
  if (hashes_valid_ && hashes_.size() == nodes_.size()) return;
  hashes_.assign(nodes_.size(), 0);
  // Children always have larger ids than their parent (graft preserves the
  // invariant), so one descending-id pass is a valid bottom-up order and
  // covers detached subtrees too.
  for (std::size_t i = nodes_.size(); i-- > 0;) {
    hashes_[i] = compute_subtree_hash(static_cast<node_id>(i));
  }
  hashes_valid_ = true;
}

void routing_tree::rehash_upward(node_id id) const {
  while (id != invalid_node) {
    hashes_[id] = compute_subtree_hash(id);
    id = nodes_[id].parent;
  }
}

std::size_t routing_tree::subtree_size(node_id id) const {
  if (id >= nodes_.size()) {
    throw std::out_of_range("routing_tree: invalid node id");
  }
  std::size_t count = 0;
  std::vector<node_id> stack{id};
  while (!stack.empty()) {
    const node_id n = stack.back();
    stack.pop_back();
    ++count;
    for (const node_id c : nodes_[n].children) stack.push_back(c);
  }
  return count;
}

void routing_tree::apply_edit(const tree_edit& edit) {
  if (edit.node >= nodes_.size()) {
    throw std::out_of_range("apply_edit: invalid node id");
  }
  ensure_subtree_hashes();
  tree_node& n = nodes_[edit.node];
  switch (edit.op) {
    case tree_edit::op_kind::move_sink: {
      if (!n.is_sink()) {
        throw std::logic_error("apply_edit: move_sink target is not a sink");
      }
      n.location = edit.location;
      if (n.parent != invalid_node) {
        n.parent_wire_um =
            edit.wire_um >= 0.0
                ? edit.wire_um
                : layout::manhattan_distance(nodes_[n.parent].location,
                                             n.location);
      }
      rehash_upward(edit.node);
      return;
    }
    case tree_edit::op_kind::retarget_rat: {
      if (!n.is_sink()) {
        throw std::logic_error("apply_edit: retarget_rat target is not a sink");
      }
      n.sink_rat_ps = edit.value;
      rehash_upward(edit.node);
      return;
    }
    case tree_edit::op_kind::resize_wire: {
      if (n.is_source()) {
        throw std::logic_error("apply_edit: source has no parent wire");
      }
      if (n.parent == invalid_node) {
        throw std::logic_error("apply_edit: detached root has no parent wire");
      }
      if (edit.value < 0.0) {
        throw std::invalid_argument("apply_edit: negative wire length");
      }
      n.parent_wire_um = edit.value;
      // The edge is hashed at the parent; starting the walk at the child is
      // harmless (its own hash is unchanged) and keeps one code path.
      rehash_upward(edit.node);
      return;
    }
    case tree_edit::op_kind::prune_subtree: {
      if (n.is_source()) {
        throw std::logic_error("apply_edit: cannot prune the source");
      }
      if (n.detached) {
        throw std::logic_error("apply_edit: subtree is already detached");
      }
      const node_id old_parent = n.parent;
      auto& siblings = nodes_[old_parent].children;
      siblings.erase(std::find(siblings.begin(), siblings.end(), edit.node));
      n.parent = invalid_node;
      n.parent_wire_um = 0.0;
      std::vector<node_id> stack{edit.node};
      while (!stack.empty()) {
        tree_node& m = nodes_[stack.back()];
        stack.pop_back();
        m.detached = true;
        ++num_detached_;
        if (m.is_sink()) --num_sinks_;
        for (const node_id c : m.children) stack.push_back(c);
      }
      rehash_upward(old_parent);
      return;
    }
    case tree_edit::op_kind::graft_subtree: {
      if (!n.detached || n.parent != invalid_node) {
        throw std::logic_error("apply_edit: graft target is not a detached root");
      }
      if (edit.new_parent >= nodes_.size()) {
        throw std::out_of_range("apply_edit: invalid graft parent");
      }
      tree_node& p = nodes_[edit.new_parent];
      if (p.detached) {
        throw std::logic_error("apply_edit: graft parent is detached");
      }
      if (p.is_sink()) {
        throw std::logic_error("apply_edit: sinks must be leaves");
      }
      // Children must keep larger ids than their parents (the anti-cycle
      // invariant every traversal relies on), so a subtree can only be
      // grafted under a lower-numbered node.
      if (edit.new_parent >= edit.node) {
        throw std::logic_error("apply_edit: graft parent id must be less than node id");
      }
      n.parent = edit.new_parent;
      n.parent_wire_um =
          edit.wire_um >= 0.0
              ? edit.wire_um
              : layout::manhattan_distance(p.location, n.location);
      p.children.push_back(edit.node);
      std::vector<node_id> stack{edit.node};
      while (!stack.empty()) {
        tree_node& m = nodes_[stack.back()];
        stack.pop_back();
        m.detached = false;
        --num_detached_;
        if (m.is_sink()) ++num_sinks_;
        for (const node_id c : m.children) stack.push_back(c);
      }
      rehash_upward(edit.node);
      return;
    }
  }
  throw std::logic_error("apply_edit: unknown edit kind");
}

std::vector<node_id> routing_tree::postorder() const {
  std::vector<node_id> order;
  order.reserve(nodes_.size());
  // Iterative two-stack postorder.
  std::vector<node_id> stack{root()};
  while (!stack.empty()) {
    const node_id id = stack.back();
    stack.pop_back();
    order.push_back(id);
    for (node_id c : nodes_[id].children) stack.push_back(c);
  }
  std::reverse(order.begin(), order.end());
  return order;
}

std::vector<node_id> routing_tree::sinks() const {
  std::vector<node_id> out;
  out.reserve(num_sinks_);
  for (const auto& n : nodes_) {
    if (n.is_sink() && !n.detached) out.push_back(n.id);
  }
  return out;
}

double routing_tree::total_wire_um() const {
  double total = 0.0;
  for (const auto& n : nodes_) {
    if (!n.detached) total += n.parent_wire_um;
  }
  return total;
}

layout::bbox routing_tree::bounding_box() const {
  layout::bbox box{nodes_.front().location, nodes_.front().location};
  for (const auto& n : nodes_) {
    if (!n.detached) box.expand(n.location);
  }
  return box;
}

void routing_tree::validate() const {
  if (nodes_.empty() || !nodes_.front().is_source()) {
    throw std::logic_error("routing_tree: missing source root");
  }
  std::size_t sink_count = 0;
  std::size_t detached_count = 0;
  for (const auto& n : nodes_) {
    if (n.id != static_cast<node_id>(&n - nodes_.data())) {
      throw std::logic_error("routing_tree: node id mismatch");
    }
    if (n.detached) ++detached_count;
    if (n.is_source()) {
      if (n.id != 0 || n.parent != invalid_node || n.detached) {
        throw std::logic_error("routing_tree: source must be the root");
      }
    } else if (n.parent == invalid_node) {
      if (!n.detached) {
        throw std::logic_error("routing_tree: non-root node without a parent");
      }
    } else {
      if (n.parent >= nodes_.size()) {
        throw std::logic_error("routing_tree: dangling parent");
      }
      // Children ids are strictly greater than parents by construction (graft
      // re-checks it), which also rules out cycles.
      if (n.parent >= n.id) {
        throw std::logic_error("routing_tree: parent id not less than child");
      }
      // Detachment is a subtree property: a node hangs off a detached parent
      // iff it is detached itself.
      if (n.detached != nodes_[n.parent].detached) {
        throw std::logic_error("routing_tree: detachment not subtree-consistent");
      }
      bool linked = false;
      for (node_id c : nodes_[n.parent].children) linked |= (c == n.id);
      if (!linked) {
        throw std::logic_error("routing_tree: parent does not list child");
      }
    }
    if (n.parent_wire_um < 0.0) {
      throw std::logic_error("routing_tree: negative wire length");
    }
    if (n.is_sink()) {
      if (!n.detached) ++sink_count;
      if (!n.children.empty()) {
        throw std::logic_error("routing_tree: sink with children");
      }
    }
  }
  if (sink_count != num_sinks_) {
    throw std::logic_error("routing_tree: sink count mismatch");
  }
  if (detached_count != num_detached_) {
    throw std::logic_error("routing_tree: detached count mismatch");
  }
  if (num_sinks_ == 0) {
    throw std::logic_error("routing_tree: tree has no sinks");
  }
}

}  // namespace vabi::tree
