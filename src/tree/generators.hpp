// Synthetic routing-tree generators.
//
// The paper evaluates on public benchmarks p1, p2, r1-r5 (Table 1) and, for
// the capacity claim, an eight-level H-tree clock network with 64k sinks
// (footnote 4). Those nets are not redistributable, so this module generates
// deterministic synthetic equivalents:
//
//   - make_random_tree: sinks placed uniformly at random on the die, topology
//     built by recursive geometric bisection (median split along the wider
//     axis, internal nodes at subset centroids). This yields a full binary
//     topology -- num_buffer_positions = 2 * sinks - 1, matching Table 1 --
//     with a realistic geometric embedding for the spatial-correlation model.
//   - make_h_tree: classic recursive H clock tree with 4^levels sinks.
//   - make_chain: a two-pin line net with equally spaced candidate positions
//     (the textbook van Ginneken example; used heavily in tests).
//
// All generators are deterministic in their seed.
#pragma once

#include <cstdint>

#include "layout/geometry.hpp"
#include "tree/routing_tree.hpp"

namespace vabi::tree {

struct random_tree_options {
  std::size_t num_sinks = 100;
  double die_side_um = 4000.0;
  std::uint64_t seed = 1;
  double sink_cap_min_pf = 0.005;
  double sink_cap_max_pf = 0.050;
  double sink_rat_ps = 0.0;

  /// Criticality balancing, in [0, 1]. Real tapeout nets carry per-sink
  /// required times from timing budgeting, which leaves *many* sinks close
  /// to critical -- the regime where process variation hurts a nominally
  /// optimized design most (the min over many near-equal random paths).
  /// 0 keeps the flat `sink_rat_ps`; 1 tightens each sink's RAT by the full
  /// delay advantage of its shorter source distance, making all sinks
  /// roughly equally critical after buffering.
  double criticality_balance = 0.0;
  /// Delay-per-micron used by the balancing budget (~ the per-unit delay of
  /// an optimally repeatered line under the default wire/buffer models).
  double balance_delay_per_um = 0.1;
};

/// Random geometric net; see file comment. Throws on num_sinks == 0.
routing_tree make_random_tree(const random_tree_options& options);

struct h_tree_options {
  std::size_t levels = 4;  ///< sinks = 4^levels
  double die_side_um = 8000.0;
  double sink_cap_pf = 0.020;
  double sink_rat_ps = 0.0;
};

/// Recursive H-tree centered on the die. Throws on levels == 0.
routing_tree make_h_tree(const h_tree_options& options);

struct chain_options {
  double length_um = 4000.0;
  std::size_t segments = 10;  ///< candidate positions strictly inside
  double sink_cap_pf = 0.020;
  double sink_rat_ps = 0.0;
};

/// Source at (0,0), single sink at (length,0), `segments - 1` equally spaced
/// Steiner candidates between them. Throws on segments == 0.
routing_tree make_chain(const chain_options& options);

}  // namespace vabi::tree
