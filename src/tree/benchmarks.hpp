// The paper's benchmark suite (Table 1), rebuilt synthetically.
//
// The original p1/p2 and r1-r5 nets come from the public benchmarks of
// [Shi & Li, DAC'03] and are not redistributable here; we regenerate nets
// with exactly the same sink counts (and hence the same buffer-position
// counts, 2*sinks - 1) via the deterministic random-tree generator, embedded
// on dies sized so that average sink density is realistic for the net size.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "tree/generators.hpp"
#include "tree/routing_tree.hpp"

namespace vabi::tree {

struct benchmark_spec {
  std::string name;
  std::size_t sinks = 0;
  double die_side_um = 4000.0;
  std::uint64_t seed = 0;

  std::size_t buffer_positions() const { return 2 * sinks - 1; }
};

/// The seven benchmarks of Table 1: p1, p2, r1, r2, r3, r4, r5.
const std::vector<benchmark_spec>& paper_benchmarks();

/// Looks a benchmark up by name; std::nullopt if unknown.
std::optional<benchmark_spec> find_benchmark(const std::string& name);

/// Builds the routing tree of a spec (deterministic in the spec's seed).
routing_tree build_benchmark(const benchmark_spec& spec);

}  // namespace vabi::tree
