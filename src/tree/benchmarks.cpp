#include "tree/benchmarks.hpp"

namespace vabi::tree {

const std::vector<benchmark_spec>& paper_benchmarks() {
  // Sink counts from Table 1. Die sides grow with net size so that sink
  // density stays in a realistic band; seeds are fixed for reproducibility.
  // Die sides are sized like the originals' routing spans (the ISPD r-nets
  // route across 10+ mm): long enough that source-sink paths need several
  // buffers in series and that the ~2 mm spatial-correlation range covers
  // only a fraction of the die -- both prerequisites for the paper's
  // variation effects to be visible.
  static const std::vector<benchmark_spec> specs = {
      {"p1", 269, 8000.0, 101},  {"p2", 603, 10000.0, 102},
      {"r1", 267, 8000.0, 111},  {"r2", 598, 10000.0, 112},
      {"r3", 862, 12000.0, 113}, {"r4", 1903, 14000.0, 114},
      {"r5", 3101, 16000.0, 115},
  };
  return specs;
}

std::optional<benchmark_spec> find_benchmark(const std::string& name) {
  for (const auto& spec : paper_benchmarks()) {
    if (spec.name == name) return spec;
  }
  return std::nullopt;
}

routing_tree build_benchmark(const benchmark_spec& spec) {
  random_tree_options options;
  options.num_sinks = spec.sinks;
  options.die_side_um = spec.die_side_um;
  options.seed = spec.seed;
  // The original nets carry budgeted per-sink required times that leave many
  // sinks near-critical; emulate that (see random_tree_options).
  options.criticality_balance = 0.8;
  return make_random_tree(options);
}

}  // namespace vabi::tree
