#include "tree/vpr_import.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <deque>
#include <map>
#include <random>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "stats/rng.hpp"

namespace vabi::tree {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error("import_vpr_rc: line " + std::to_string(line) +
                           ": " + what);
}

struct raw_edge {
  std::uint64_t parent = 0;
  bool is_switch = false;
  double wire_um = 0.0;      ///< wire edge
  double res_ohm = 0.0;      ///< switch edge
  double tdel_ps = 0.0;      ///< switch edge
};

struct raw_node {
  layout::point loc;
  bool has_loc = false;
  bool has_edge = false;
  raw_edge edge;
  bool is_sink = false;
  double cap_pf = 0.0;
  double rat_ps = 0.0;
};

}  // namespace

routing_tree import_vpr_rc(std::istream& is) {
  // std::map keeps the children of each parent in original-id order for free,
  // which is what makes the renumbering deterministic.
  std::map<std::uint64_t, raw_node> nodes;
  bool has_wire = false;
  double res_per_um = 0.0;
  double cap_per_um = 0.0;
  bool has_root = false;
  std::uint64_t root_id = 0;
  bool has_header = false;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word)) continue;  // blank / comment-only line

    if (!has_header) {
      std::string version;
      if (word != "vpr-rc" || !(ls >> version) || version != "v1") {
        fail(line_no, "expected header 'vpr-rc v1'");
      }
      has_header = true;
      continue;
    }

    if (word == "wire") {
      if (!(ls >> res_per_um >> cap_per_um)) {
        fail(line_no, "malformed wire directive");
      }
      if (res_per_um <= 0.0 || cap_per_um <= 0.0) {
        fail(line_no, "wire model values must be > 0");
      }
      has_wire = true;
    } else if (word == "node") {
      std::uint64_t id = 0;
      layout::point loc;
      if (!(ls >> id >> loc.x >> loc.y)) {
        fail(line_no, "malformed node directive");
      }
      raw_node& n = nodes[id];
      if (n.has_loc) fail(line_no, "duplicate node " + std::to_string(id));
      n.loc = loc;
      n.has_loc = true;
    } else if (word == "edge") {
      std::uint64_t child = 0;
      std::uint64_t parent = 0;
      std::string kind;
      if (!(ls >> child >> parent >> kind)) {
        fail(line_no, "malformed edge directive");
      }
      if (child == parent) fail(line_no, "self-loop edge");
      raw_node& n = nodes[child];
      if (n.has_edge) {
        fail(line_no,
             "node " + std::to_string(child) + " already has a parent");
      }
      raw_edge e;
      e.parent = parent;
      if (kind == "wire") {
        if (!(ls >> e.wire_um)) fail(line_no, "malformed wire edge");
        if (e.wire_um < 0.0) fail(line_no, "negative wire length");
      } else if (kind == "switch") {
        if (!(ls >> e.res_ohm >> e.tdel_ps)) {
          fail(line_no, "malformed switch edge");
        }
        if (e.res_ohm < 0.0 || e.tdel_ps < 0.0) {
          fail(line_no, "negative switch parameters");
        }
        e.is_switch = true;
      } else {
        fail(line_no, "unknown edge kind '" + kind + "'");
      }
      n.has_edge = true;
      n.edge = e;
    } else if (word == "sink") {
      std::uint64_t id = 0;
      double cap = 0.0;
      double rat = 0.0;
      if (!(ls >> id >> cap >> rat)) fail(line_no, "malformed sink directive");
      raw_node& n = nodes[id];
      if (n.is_sink) fail(line_no, "duplicate sink " + std::to_string(id));
      n.is_sink = true;
      n.cap_pf = cap;
      n.rat_ps = rat;
    } else if (word == "root") {
      if (!(ls >> root_id)) fail(line_no, "malformed root directive");
      if (has_root) fail(line_no, "duplicate root directive");
      has_root = true;
    } else {
      fail(line_no, "unknown directive '" + word + "'");
    }
  }

  if (!has_header) fail(line_no, "empty document (missing 'vpr-rc v1')");
  if (!has_root) fail(line_no, "missing root directive");

  for (const auto& [id, n] : nodes) {
    if (!n.has_loc) {
      fail(line_no, "node " + std::to_string(id) +
                        " referenced but never declared");
    }
    if (id == root_id) {
      if (n.has_edge) fail(line_no, "root node has a parent edge");
      if (n.is_sink) fail(line_no, "root node declared as sink");
    } else if (!n.has_edge) {
      fail(line_no,
           "node " + std::to_string(id) + " is not connected to the root");
    }
  }
  if (nodes.find(root_id) == nodes.end()) {
    fail(line_no, "root node never declared");
  }

  // Children per parent, in original-id order (std::map iteration order).
  std::map<std::uint64_t, std::vector<std::uint64_t>> children;
  for (const auto& [id, n] : nodes) {
    if (id == root_id) continue;
    if (nodes.find(n.edge.parent) == nodes.end()) {
      fail(line_no, "edge references undeclared node " +
                        std::to_string(n.edge.parent));
    }
    children[n.edge.parent].push_back(id);
  }

  // Breadth-first renumbering from the root: parents get smaller dense ids
  // than children, exactly the order routing_tree's add_* API wants. Nodes
  // not reachable from the root (a cycle among themselves) are caught below.
  routing_tree tree(nodes.at(root_id).loc);
  std::map<std::uint64_t, node_id> dense;
  dense[root_id] = tree.root();
  std::deque<std::uint64_t> queue{root_id};
  std::size_t visited = 1;
  while (!queue.empty()) {
    const std::uint64_t here = queue.front();
    queue.pop_front();
    const auto kids = children.find(here);
    if (kids == children.end()) continue;
    for (const std::uint64_t child : kids->second) {
      const raw_node& n = nodes.at(child);
      double um = 0.0;
      if (n.edge.is_switch) {
        if (!has_wire) {
          fail(line_no, "switch edge requires a wire directive");
        }
        // Equivalent length: series resistance exactly, intrinsic delay via
        // the Elmore-matching length (see header).
        um = n.edge.res_ohm / res_per_um;
        if (n.edge.tdel_ps > 0.0) {
          um += std::sqrt(2.0 * n.edge.tdel_ps / (res_per_um * cap_per_um));
        }
      } else {
        um = n.edge.wire_um;
      }
      const node_id parent = dense.at(here);
      dense[child] = n.is_sink
                         ? tree.add_sink(parent, n.loc, n.cap_pf, n.rat_ps, um)
                         : tree.add_steiner(parent, n.loc, um);
      queue.push_back(child);
      ++visited;
    }
  }
  if (visited != nodes.size()) {
    fail(line_no, "netlist has nodes unreachable from the root (cycle?)");
  }

  tree.validate();
  return tree;
}

routing_tree import_vpr_rc_from_string(const std::string& text) {
  std::istringstream is(text);
  return import_vpr_rc(is);
}

std::string make_vpr_style_net_text(const vpr_net_options& options) {
  if (options.num_sinks == 0) {
    throw std::invalid_argument("make_vpr_style_net: num_sinks must be > 0");
  }
  if (options.fanout < 2) {
    throw std::invalid_argument("make_vpr_style_net: fanout must be >= 2");
  }
  if (options.die_side_um <= 0.0 || options.seg_length_um <= 0.0) {
    throw std::invalid_argument(
        "make_vpr_style_net: die side and segment length must be > 0");
  }

  // Build the fanout tree over the sinks bottom-up: each round groups up to
  // `fanout` open branches under a new switch block until one root remains.
  // Every hop into a block is one switch followed by one wire segment --
  // emitted as a switch edge child->block; the segment length rides in the
  // child's own wire edge when the child is a leaf (sinks hang off the
  // fabric by a plain wire), and in the switch's equivalent-length slot
  // implicitly otherwise. Positions spiral deterministically over the die.
  struct gen_node {
    layout::point loc;
    bool is_sink = false;
    double cap_pf = 0.0;
    double rat_ps = 0.0;
    std::uint64_t parent = 0;
    bool has_parent = false;
    bool switch_edge = false;
    double wire_um = 0.0;
  };

  auto rng = stats::make_rng(options.seed, /*stream=*/17);
  std::uniform_real_distribution<double> pos(0.0, options.die_side_um);

  std::vector<gen_node> gen;
  gen.reserve(2 * options.num_sinks);
  std::vector<std::size_t> open;  // indices of current-round branch roots
  for (std::size_t i = 0; i < options.num_sinks; ++i) {
    gen_node s;
    s.loc = {pos(rng), pos(rng)};
    s.is_sink = true;
    s.cap_pf = options.sink_cap_pf;
    s.rat_ps = options.sink_rat_ps;
    open.push_back(gen.size());
    gen.push_back(s);
  }
  while (open.size() > 1) {
    std::vector<std::size_t> next;
    for (std::size_t base = 0; base < open.size(); base += options.fanout) {
      const std::size_t end = std::min(base + options.fanout, open.size());
      if (end - base == 1) {
        next.push_back(open[base]);  // odd branch rides up a round
        continue;
      }
      gen_node block;
      layout::point c{0.0, 0.0};
      for (std::size_t k = base; k < end; ++k) {
        c.x += gen[open[k]].loc.x;
        c.y += gen[open[k]].loc.y;
      }
      block.loc = {c.x / static_cast<double>(end - base),
                   c.y / static_cast<double>(end - base)};
      const std::size_t block_idx = gen.size();
      gen.push_back(block);
      for (std::size_t k = base; k < end; ++k) {
        gen_node& child = gen[open[k]];
        child.parent = block_idx;
        child.has_parent = true;
        // Sinks hang off the switch block by a plain wire stub; internal
        // branches connect through the programmable fabric (a switch).
        child.switch_edge = !child.is_sink;
        child.wire_um = options.seg_length_um;
      }
      next.push_back(block_idx);
    }
    open = std::move(next);
  }

  // The last remaining branch root becomes the child of the source.
  gen_node source;
  source.loc = {options.die_side_um / 2.0, options.die_side_um / 2.0};
  const std::size_t source_idx = gen.size();
  gen.push_back(source);
  gen[open[0]].parent = source_idx;
  gen[open[0]].has_parent = true;
  gen[open[0]].switch_edge = true;

  // Emit with shuffled (non-dense, interleaved) ids: original index * 7 + 3,
  // declarations sink-before-node-before-edge -- deliberately not the
  // importer's output order, so importing exercises the renumbering.
  const auto ext_id = [](std::size_t idx) { return idx * 7 + 3; };
  std::ostringstream os;
  os << "vpr-rc v1\n";
  os << "# generated: vpr-style fanout net, " << options.num_sinks
     << " sinks, fanout " << options.fanout << ", seed " << options.seed
     << "\n";
  os << "wire " << options.wire_res_per_um << " " << options.wire_cap_per_um
     << "\n";
  os << "root " << ext_id(source_idx) << "\n";
  for (std::size_t i = 0; i < gen.size(); ++i) {
    if (gen[i].is_sink) {
      os << "sink " << ext_id(i) << " " << gen[i].cap_pf << " "
         << gen[i].rat_ps << "\n";
    }
  }
  for (std::size_t i = 0; i < gen.size(); ++i) {
    os << "node " << ext_id(i) << " " << gen[i].loc.x << " " << gen[i].loc.y
       << "\n";
  }
  for (std::size_t i = 0; i < gen.size(); ++i) {
    if (!gen[i].has_parent) continue;
    if (gen[i].switch_edge) {
      os << "edge " << ext_id(i) << " " << ext_id(gen[i].parent) << " switch "
         << options.switch_res_ohm << " " << options.switch_tdel_ps << "\n";
    } else {
      os << "edge " << ext_id(i) << " " << ext_id(gen[i].parent) << " wire "
         << gen[i].wire_um << "\n";
    }
  }
  return os.str();
}

routing_tree make_vpr_style_net(const vpr_net_options& options) {
  return import_vpr_rc_from_string(make_vpr_style_net_text(options));
}

}  // namespace vabi::tree
