#include "tree/tree_io.hpp"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>

namespace vabi::tree {

namespace {

[[noreturn]] void parse_error(std::size_t line, const std::string& what) {
  throw std::runtime_error("tree_io: line " + std::to_string(line) + ": " +
                           what);
}

/// Rejects inf/NaN in any numeric field at parse time: a single non-finite
/// wire length or sink cap would otherwise poison every canonical form it
/// touches and surface only as a nonfinite_value abort deep inside a solve.
void require_finite(std::size_t line, const char* field, double value) {
  if (!std::isfinite(value)) {
    parse_error(line, std::string("non-finite ") + field);
  }
}

/// Reads one double field. Stream extraction silently rejects "inf" / "nan"
/// tokens and overflow literals like 1e999 as generic parse failures; going
/// through std::stod instead lets require_finite reject them with the field's
/// name. False = no token / not a number (the caller picks the message).
bool read_double(std::istream& ls, double& out) {
  std::string tok;
  if (!(ls >> tok)) return false;
  try {
    std::size_t used = 0;
    out = std::stod(tok, &used);
    if (used != tok.size()) return false;
  } catch (const std::out_of_range&) {
    // Overflowed literal: surface it as the non-finite value it denotes.
    out = tok.front() == '-' ? -std::numeric_limits<double>::infinity()
                             : std::numeric_limits<double>::infinity();
  } catch (const std::invalid_argument&) {
    return false;
  }
  return true;
}

}  // namespace

void write_tree(std::ostream& os, const routing_tree& tree) {
  // The format has no way to express a node without a parent other than the
  // source, so a tree holding pruned-but-not-regrafted subtrees cannot round
  // trip; require the caller to resolve the ECO first.
  if (tree.has_detached()) {
    throw std::invalid_argument(
        "write_tree: tree has detached (pruned) subtrees");
  }
  os << "vabi-tree v1\n";
  os << "nodes " << tree.num_nodes() << "\n";
  // max_digits10: the shortest decimal precision guaranteed to round-trip
  // any double exactly, so save -> load -> solve is bit-identical to solving
  // the in-memory tree (tests/tree/tree_io_test.cpp pins this over the
  // Table-1 benchmarks).
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (const auto& n : tree.nodes()) {
    os << n.id << ' ' << to_string(n.kind) << ' ' << n.location.x << ' '
       << n.location.y;
    if (!n.is_source()) {
      os << ' ' << n.parent << ' ' << n.parent_wire_um;
    }
    if (n.is_sink()) {
      os << ' ' << n.sink_cap_pf << ' ' << n.sink_rat_ps;
    }
    os << '\n';
  }
}

std::string write_tree_to_string(const routing_tree& tree) {
  std::ostringstream os;
  write_tree(os, tree);
  return os.str();
}

routing_tree read_tree(std::istream& is) {
  std::string line;
  std::size_t line_no = 0;

  auto next_line = [&]() -> bool {
    while (std::getline(is, line)) {
      ++line_no;
      if (!line.empty() && line.front() != '#') return true;
    }
    return false;
  };

  if (!next_line() || line != "vabi-tree v1") {
    parse_error(line_no, "expected header 'vabi-tree v1'");
  }
  if (!next_line()) parse_error(line_no, "expected 'nodes <count>'");
  std::size_t count = 0;
  {
    std::istringstream ls(line);
    std::string kw;
    if (!(ls >> kw >> count) || kw != "nodes" || count == 0) {
      parse_error(line_no, "expected 'nodes <count>'");
    }
  }

  routing_tree tree;  // placeholder source; replaced below on first line
  bool seen_source = false;
  for (std::size_t i = 0; i < count; ++i) {
    if (!next_line()) parse_error(line_no, "unexpected end of file");
    std::istringstream ls(line);
    node_id id = 0;
    std::string kind;
    double x = 0.0;
    double y = 0.0;
    if (!(ls >> id >> kind) || !read_double(ls, x) || !read_double(ls, y)) {
      parse_error(line_no, "malformed node line");
    }
    require_finite(line_no, "x coordinate", x);
    require_finite(line_no, "y coordinate", y);
    if (id != i) parse_error(line_no, "node ids must be dense and in order");
    if (kind == "source") {
      if (i != 0) parse_error(line_no, "source must be node 0");
      tree = routing_tree{{x, y}};
      seen_source = true;
      continue;
    }
    if (!seen_source) parse_error(line_no, "first node must be the source");
    node_id parent = 0;
    double wire = 0.0;
    if (!(ls >> parent) || !read_double(ls, wire)) {
      parse_error(line_no, "missing parent / wire length");
    }
    require_finite(line_no, "wire length", wire);
    // Structural rejections from the tree builder (dangling parent, negative
    // wire, ...) become parse errors carrying the offending line.
    try {
      if (kind == "steiner") {
        tree.add_steiner(parent, {x, y}, wire);
      } else if (kind == "sink") {
        double cap = 0.0;
        double rat = 0.0;
        if (!read_double(ls, cap) || !read_double(ls, rat)) {
          parse_error(line_no, "missing sink cap / rat");
        }
        require_finite(line_no, "sink cap", cap);
        require_finite(line_no, "sink rat", rat);
        tree.add_sink(parent, {x, y}, cap, rat, wire);
      } else {
        parse_error(line_no, "unknown node kind '" + kind + "'");
      }
    } catch (const std::runtime_error&) {
      throw;  // already a parse_error with a line number
    } catch (const std::exception& e) {
      parse_error(line_no, e.what());
    }
  }
  try {
    tree.validate();
  } catch (const std::exception& e) {
    parse_error(line_no, e.what());
  }
  return tree;
}

routing_tree read_tree_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_tree(is);
}

void save_tree(const std::string& path, const routing_tree& tree) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("tree_io: cannot open " + path);
  write_tree(os, tree);
}

routing_tree load_tree(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("tree_io: cannot open " + path);
  return read_tree(is);
}

}  // namespace vabi::tree
