// Routing-tree data structure.
//
// The input of the buffer-insertion problem (paper Section 2.1): a tree
// rooted at the signal source, with capacitive sinks at the leaves carrying
// required arrival times, wires of known length on the edges, and a set of
// legal buffer positions. Following the benchmarks of Table 1 (where
// positions = 2 * sinks - 1), every node except the source is a legal buffer
// position: inserting a buffer "at node t" places it at t, driving t's
// subtree (eqs. 27-28).
//
// Nodes carry a die location so that the spatial variation model can
// correlate nearby buffers; wire lengths default to the Manhattan distance
// between the edge endpoints but may be set explicitly.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "layout/geometry.hpp"

namespace vabi::tree {

using node_id = std::uint32_t;
inline constexpr node_id invalid_node = std::numeric_limits<node_id>::max();

enum class node_kind : std::uint8_t {
  source,   ///< the root driver; exactly one per tree; not a buffer position
  sink,     ///< leaf with load capacitance and required arrival time
  steiner,  ///< internal branching / candidate point
};

const char* to_string(node_kind kind);

struct tree_node {
  node_id id = invalid_node;
  node_kind kind = node_kind::steiner;
  layout::point location;
  node_id parent = invalid_node;
  double parent_wire_um = 0.0;  ///< length of the wire to the parent
  std::vector<node_id> children;
  double sink_cap_pf = 0.0;  ///< sink only
  double sink_rat_ps = 0.0;  ///< sink only

  bool is_sink() const { return kind == node_kind::sink; }
  bool is_source() const { return kind == node_kind::source; }
};

class routing_tree {
 public:
  /// Creates the tree with its source (root) node at `loc`.
  explicit routing_tree(layout::point source_loc = {});

  node_id root() const { return 0; }

  /// Adds a sink under `parent`. Wire length defaults to Manhattan distance.
  node_id add_sink(node_id parent, layout::point loc, double cap_pf,
                   double rat_ps,
                   double wire_um = -1.0);

  /// Adds an internal (Steiner / candidate) node under `parent`.
  node_id add_steiner(node_id parent, layout::point loc, double wire_um = -1.0);

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_sinks() const { return num_sinks_; }
  /// Legal buffer positions = every node except the source.
  std::size_t num_buffer_positions() const { return nodes_.size() - 1; }

  const tree_node& node(node_id id) const { return nodes_[id]; }
  tree_node& node(node_id id) { return nodes_[id]; }
  const std::vector<tree_node>& nodes() const { return nodes_; }

  /// Node ids in postorder (children before parents; root last). Computed
  /// iteratively, so arbitrarily deep trees are safe.
  std::vector<node_id> postorder() const;

  /// All sink ids, in id order.
  std::vector<node_id> sinks() const;

  /// Sum of all wire lengths, um.
  double total_wire_um() const;

  /// Smallest bbox containing every node location.
  layout::bbox bounding_box() const;

  /// Checks structural invariants (single root, parent/child consistency,
  /// sinks are leaves, no cycles, wire lengths >= 0). Throws
  /// std::logic_error with a description on violation.
  void validate() const;

 private:
  node_id add_node(node_kind kind, node_id parent, layout::point loc,
                   double wire_um);

  std::vector<tree_node> nodes_;
  std::size_t num_sinks_ = 0;
};

}  // namespace vabi::tree
