// Routing-tree data structure.
//
// The input of the buffer-insertion problem (paper Section 2.1): a tree
// rooted at the signal source, with capacitive sinks at the leaves carrying
// required arrival times, wires of known length on the edges, and a set of
// legal buffer positions. Following the benchmarks of Table 1 (where
// positions = 2 * sinks - 1), every node except the source is a legal buffer
// position: inserting a buffer "at node t" places it at t, driving t's
// subtree (eqs. 27-28).
//
// Nodes carry a die location so that the spatial variation model can
// correlate nearby buffers; wire lengths default to the Manhattan distance
// between the edge endpoints but may be set explicitly.
//
// ECO support: every node carries a lazily maintained *subtree content hash*
// (FNV-1a over the node's kind, geometry and sink data, combined with each
// child's edge length and subtree hash in child order). `apply_edit` mutates
// the tree through a typed edit list and rehashes only the edited node's
// root path, so an incremental solver can cheaply identify the subtrees an
// edit left untouched. Pruned subtrees stay in the node array as *detached*
// nodes (ids are stable) until grafted back.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "layout/geometry.hpp"

namespace vabi::tree {

using node_id = std::uint32_t;
inline constexpr node_id invalid_node = std::numeric_limits<node_id>::max();

enum class node_kind : std::uint8_t {
  source,   ///< the root driver; exactly one per tree; not a buffer position
  sink,     ///< leaf with load capacitance and required arrival time
  steiner,  ///< internal branching / candidate point
};

const char* to_string(node_kind kind);

struct tree_node {
  node_id id = invalid_node;
  node_kind kind = node_kind::steiner;
  layout::point location;
  node_id parent = invalid_node;
  double parent_wire_um = 0.0;  ///< length of the wire to the parent
  std::vector<node_id> children;
  double sink_cap_pf = 0.0;  ///< sink only
  double sink_rat_ps = 0.0;  ///< sink only
  bool detached = false;     ///< member of a pruned (ECO-detached) subtree

  bool is_sink() const { return kind == node_kind::sink; }
  bool is_source() const { return kind == node_kind::source; }
};

/// One structural ECO edit. Build with the static factories; apply with
/// `routing_tree::apply_edit`, which validates, mutates, and incrementally
/// rehashes only the affected root path.
struct tree_edit {
  enum class op_kind : std::uint8_t {
    move_sink,      ///< relocate a sink; its parent wire follows
    retarget_rat,   ///< change a sink's required arrival time
    resize_wire,    ///< change the length of the wire above `node`
    prune_subtree,  ///< detach `node`'s subtree from its parent
    graft_subtree,  ///< re-attach a detached subtree under `new_parent`
  };

  op_kind op = op_kind::retarget_rat;
  node_id node = invalid_node;
  layout::point location;              ///< move_sink: new location
  double value = 0.0;                  ///< retarget_rat: ps; resize_wire: um
  node_id new_parent = invalid_node;   ///< graft_subtree
  double wire_um = -1.0;  ///< move_sink/graft_subtree: <0 means Manhattan

  static tree_edit move_sink(node_id sink, layout::point loc,
                             double wire_um = -1.0) {
    tree_edit e;
    e.op = op_kind::move_sink;
    e.node = sink;
    e.location = loc;
    e.wire_um = wire_um;
    return e;
  }
  static tree_edit retarget_rat(node_id sink, double rat_ps) {
    tree_edit e;
    e.op = op_kind::retarget_rat;
    e.node = sink;
    e.value = rat_ps;
    return e;
  }
  static tree_edit resize_wire(node_id node, double wire_um) {
    tree_edit e;
    e.op = op_kind::resize_wire;
    e.node = node;
    e.value = wire_um;
    return e;
  }
  static tree_edit prune_subtree(node_id node) {
    tree_edit e;
    e.op = op_kind::prune_subtree;
    e.node = node;
    return e;
  }
  static tree_edit graft_subtree(node_id node, node_id new_parent,
                                 double wire_um = -1.0) {
    tree_edit e;
    e.op = op_kind::graft_subtree;
    e.node = node;
    e.new_parent = new_parent;
    e.wire_um = wire_um;
    return e;
  }
};

class routing_tree {
 public:
  /// Creates the tree with its source (root) node at `loc`.
  explicit routing_tree(layout::point source_loc = {});

  node_id root() const { return 0; }

  /// Adds a sink under `parent`. Wire length defaults to Manhattan distance.
  node_id add_sink(node_id parent, layout::point loc, double cap_pf,
                   double rat_ps,
                   double wire_um = -1.0);

  /// Adds an internal (Steiner / candidate) node under `parent`.
  node_id add_steiner(node_id parent, layout::point loc, double wire_um = -1.0);

  std::size_t num_nodes() const { return nodes_.size(); }
  /// Attached sinks only; pruned sinks drop out until grafted back.
  std::size_t num_sinks() const { return num_sinks_; }
  /// Legal buffer positions = every attached node except the source.
  std::size_t num_buffer_positions() const {
    return nodes_.size() - 1 - num_detached_;
  }
  /// Number of nodes currently inside pruned (detached) subtrees.
  std::size_t num_detached() const { return num_detached_; }
  bool has_detached() const { return num_detached_ != 0; }

  const tree_node& node(node_id id) const { return nodes_[id]; }
  /// Mutable node access invalidates the cached subtree hashes (the caller
  /// may change anything); prefer `apply_edit` which rehashes incrementally.
  tree_node& node(node_id id) {
    hashes_valid_ = false;
    return nodes_[id];
  }
  const std::vector<tree_node>& nodes() const { return nodes_; }

  /// Applies one ECO edit. Validates the edit (throws std::logic_error /
  /// std::invalid_argument on a malformed one), mutates the tree, and
  /// incrementally recomputes subtree hashes along the affected root path
  /// only -- O(depth + subtree) instead of O(n).
  void apply_edit(const tree_edit& edit);

  /// Content hash of the subtree rooted at `id` (see file comment for the
  /// recipe). Lazily computed; O(1) when the cache is warm.
  std::uint64_t subtree_hash(node_id id) const {
    ensure_subtree_hashes();
    return hashes_[id];
  }

  /// Forces the full hash pass now. Call before reading `subtree_hash`
  /// concurrently: once warm, const reads race-free until the next mutation.
  void ensure_subtree_hashes() const;

  /// Number of nodes in the subtree rooted at `id` (including `id`).
  std::size_t subtree_size(node_id id) const;

  /// Node ids in postorder (children before parents; root last). Computed
  /// iteratively, so arbitrarily deep trees are safe. Detached subtrees are
  /// unreachable from the root and therefore excluded.
  std::vector<node_id> postorder() const;

  /// All attached sink ids, in id order.
  std::vector<node_id> sinks() const;

  /// Sum of all attached wire lengths, um.
  double total_wire_um() const;

  /// Smallest bbox containing every attached node location.
  layout::bbox bounding_box() const;

  /// Checks structural invariants (single root, parent/child consistency,
  /// sinks are leaves, no cycles, wire lengths >= 0, detached subtrees are
  /// internally consistent). Throws std::logic_error with a description on
  /// violation.
  void validate() const;

 private:
  node_id add_node(node_kind kind, node_id parent, layout::point loc,
                   double wire_um);
  std::uint64_t compute_subtree_hash(node_id id) const;
  void rehash_upward(node_id id) const;

  std::vector<tree_node> nodes_;
  std::size_t num_sinks_ = 0;
  std::size_t num_detached_ = 0;
  mutable std::vector<std::uint64_t> hashes_;
  mutable bool hashes_valid_ = false;
};

}  // namespace vabi::tree
