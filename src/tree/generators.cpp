#include "tree/generators.hpp"

#include <algorithm>
#include <random>
#include <span>
#include <stdexcept>

#include "stats/rng.hpp"

namespace vabi::tree {

namespace {

struct gen_sink {
  layout::point loc;
  double cap_pf;
  double rat_ps;
};

layout::point centroid(std::span<gen_sink> sinks) {
  layout::point c;
  for (const auto& s : sinks) {
    c.x += s.loc.x;
    c.y += s.loc.y;
  }
  c.x /= static_cast<double>(sinks.size());
  c.y /= static_cast<double>(sinks.size());
  return c;
}

// Recursive geometric bisection; attaches the subtree over `sinks` under
// `parent`. Median splits keep the recursion depth logarithmic.
void build_bisection(routing_tree& tree, node_id parent,
                     std::span<gen_sink> sinks) {
  if (sinks.size() == 1) {
    tree.add_sink(parent, sinks[0].loc, sinks[0].cap_pf, sinks[0].rat_ps);
    return;
  }
  layout::bbox box{sinks[0].loc, sinks[0].loc};
  for (const auto& s : sinks) box.expand(s.loc);
  const bool split_x = box.width() >= box.height();
  const auto mid = sinks.size() / 2;
  std::nth_element(sinks.begin(), sinks.begin() + static_cast<std::ptrdiff_t>(mid),
                   sinks.end(), [split_x](const gen_sink& a, const gen_sink& b) {
                     return split_x ? a.loc.x < b.loc.x : a.loc.y < b.loc.y;
                   });
  const node_id here = tree.add_steiner(parent, centroid(sinks));
  build_bisection(tree, here, sinks.subspan(0, mid));
  build_bisection(tree, here, sinks.subspan(mid));
}

}  // namespace

routing_tree make_random_tree(const random_tree_options& options) {
  if (options.num_sinks == 0) {
    throw std::invalid_argument("make_random_tree: num_sinks must be > 0");
  }
  if (options.die_side_um <= 0.0) {
    throw std::invalid_argument("make_random_tree: die side must be > 0");
  }
  auto rng = stats::make_rng(options.seed);
  std::uniform_real_distribution<double> coord(0.0, options.die_side_um);
  std::uniform_real_distribution<double> cap(options.sink_cap_min_pf,
                                             options.sink_cap_max_pf);
  std::vector<gen_sink> sinks(options.num_sinks);
  for (auto& s : sinks) {
    s.loc = {coord(rng), coord(rng)};
    s.cap_pf = cap(rng);
  }
  routing_tree tree{centroid(sinks)};
  // Criticality balancing: sinks nearer the source get proportionally
  // tighter required times, emulating budgeted industrial nets (see the
  // option's comment). The budget rate approximates the delay of an
  // optimally repeatered line, so post-buffering slacks come out similar.
  std::vector<double> rat(options.num_sinks, options.sink_rat_ps);
  if (options.criticality_balance > 0.0) {
    double max_dist = 0.0;
    for (const auto& s : sinks) {
      max_dist = std::max(
          max_dist, layout::manhattan_distance(tree.node(0).location, s.loc));
    }
    for (std::size_t i = 0; i < sinks.size(); ++i) {
      const double dist =
          layout::manhattan_distance(tree.node(0).location, sinks[i].loc);
      rat[i] = options.sink_rat_ps -
               options.criticality_balance * options.balance_delay_per_um *
                   (max_dist - dist);
    }
  }
  for (std::size_t i = 0; i < sinks.size(); ++i) sinks[i].rat_ps = rat[i];
  if (sinks.size() == 1) {
    tree.add_sink(tree.root(), sinks[0].loc, sinks[0].cap_pf,
                  sinks[0].rat_ps);
  } else {
    // The top bisection node coincides with the source so that every
    // non-source node is a legal buffer position and the position count is
    // exactly 2 * sinks - 1, matching Table 1.
    const auto mid = sinks.size() / 2;
    layout::bbox box{sinks[0].loc, sinks[0].loc};
    for (const auto& s : sinks) box.expand(s.loc);
    const bool split_x = box.width() >= box.height();
    std::nth_element(sinks.begin(),
                     sinks.begin() + static_cast<std::ptrdiff_t>(mid),
                     sinks.end(),
                     [split_x](const gen_sink& a, const gen_sink& b) {
                       return split_x ? a.loc.x < b.loc.x : a.loc.y < b.loc.y;
                     });
    const node_id top = tree.add_steiner(tree.root(), tree.node(0).location);
    build_bisection(tree, top, std::span<gen_sink>(sinks).subspan(0, mid));
    build_bisection(tree, top, std::span<gen_sink>(sinks).subspan(mid));
  }
  tree.validate();
  return tree;
}

namespace {

// One H at `center` spanning a box of half-width hw / half-height hh:
// horizontal bar to left/right arms, vertical half-bars to the four tips.
void build_h_level(routing_tree& tree, node_id parent, layout::point center,
                   double hw, double hh, std::size_t levels_left,
                   const h_tree_options& options) {
  const layout::point left{center.x - hw, center.y};
  const layout::point right{center.x + hw, center.y};
  const node_id ln = tree.add_steiner(parent, left);
  const node_id rn = tree.add_steiner(parent, right);
  for (const auto& [arm, arm_pt] : {std::pair{ln, left}, std::pair{rn, right}}) {
    for (const double dy : {-hh, +hh}) {
      const layout::point tip{arm_pt.x, arm_pt.y + dy};
      if (levels_left == 1) {
        tree.add_sink(arm, tip, options.sink_cap_pf, options.sink_rat_ps);
      } else {
        const node_id tn = tree.add_steiner(arm, tip);
        build_h_level(tree, tn, tip, hw / 2.0, hh / 2.0, levels_left - 1,
                      options);
      }
    }
  }
}

}  // namespace

routing_tree make_h_tree(const h_tree_options& options) {
  if (options.levels == 0) {
    throw std::invalid_argument("make_h_tree: levels must be > 0");
  }
  if (options.die_side_um <= 0.0) {
    throw std::invalid_argument("make_h_tree: die side must be > 0");
  }
  const double half = options.die_side_um / 2.0;
  routing_tree tree{{half, half}};
  build_h_level(tree, tree.root(), {half, half}, half / 2.0, half / 2.0,
                options.levels, options);
  tree.validate();
  return tree;
}

routing_tree make_chain(const chain_options& options) {
  if (options.segments == 0) {
    throw std::invalid_argument("make_chain: segments must be > 0");
  }
  if (options.length_um <= 0.0) {
    throw std::invalid_argument("make_chain: length must be > 0");
  }
  routing_tree tree{{0.0, 0.0}};
  const double step = options.length_um / static_cast<double>(options.segments);
  node_id prev = tree.root();
  for (std::size_t i = 1; i < options.segments; ++i) {
    prev = tree.add_steiner(prev, {step * static_cast<double>(i), 0.0});
  }
  tree.add_sink(prev, {options.length_um, 0.0}, options.sink_cap_pf,
                options.sink_rat_ps);
  tree.validate();
  return tree;
}

}  // namespace vabi::tree
