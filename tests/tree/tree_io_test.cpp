#include "tree/tree_io.hpp"

#include <gtest/gtest.h>

#include "tree/generators.hpp"

namespace vabi::tree {
namespace {

routing_tree small_tree() {
  routing_tree t{{0.0, 0.0}};
  const auto a = t.add_steiner(t.root(), {100.0, 0.0});
  t.add_sink(a, {200.0, 0.0}, 0.015, -3.0);
  t.add_sink(a, {100.0, 150.0}, 0.02, 0.0);
  return t;
}

TEST(TreeIo, RoundTripsSmallTree) {
  const routing_tree t = small_tree();
  const std::string text = write_tree_to_string(t);
  const routing_tree u = read_tree_from_string(text);
  ASSERT_EQ(u.num_nodes(), t.num_nodes());
  ASSERT_EQ(u.num_sinks(), t.num_sinks());
  for (node_id id = 0; id < t.num_nodes(); ++id) {
    EXPECT_EQ(u.node(id).kind, t.node(id).kind);
    EXPECT_EQ(u.node(id).parent, t.node(id).parent);
    EXPECT_DOUBLE_EQ(u.node(id).location.x, t.node(id).location.x);
    EXPECT_DOUBLE_EQ(u.node(id).location.y, t.node(id).location.y);
    EXPECT_DOUBLE_EQ(u.node(id).parent_wire_um, t.node(id).parent_wire_um);
    EXPECT_DOUBLE_EQ(u.node(id).sink_cap_pf, t.node(id).sink_cap_pf);
    EXPECT_DOUBLE_EQ(u.node(id).sink_rat_ps, t.node(id).sink_rat_ps);
  }
}

TEST(TreeIo, RoundTripsGeneratedTreeExactly) {
  random_tree_options o;
  o.num_sinks = 57;
  o.seed = 5;
  const routing_tree t = make_random_tree(o);
  const routing_tree u =
      read_tree_from_string(write_tree_to_string(t));
  EXPECT_EQ(write_tree_to_string(u), write_tree_to_string(t));
}

TEST(TreeIo, IgnoresComments) {
  const std::string text =
      "vabi-tree v1\n"
      "# a comment\n"
      "nodes 2\n"
      "0 source 0 0\n"
      "# another\n"
      "1 sink 10 0 0 10 0.01 0\n";
  const routing_tree t = read_tree_from_string(text);
  EXPECT_EQ(t.num_sinks(), 1u);
}

TEST(TreeIo, RejectsBadHeader) {
  EXPECT_THROW(read_tree_from_string("nope\n"), std::runtime_error);
  EXPECT_THROW(read_tree_from_string("vabi-tree v1\nnodes 0\n"),
               std::runtime_error);
}

TEST(TreeIo, RejectsOutOfOrderIds) {
  const std::string text =
      "vabi-tree v1\nnodes 2\n0 source 0 0\n2 sink 1 0 0 1 0.01 0\n";
  EXPECT_THROW(read_tree_from_string(text), std::runtime_error);
}

TEST(TreeIo, RejectsMissingSinkFields) {
  const std::string text =
      "vabi-tree v1\nnodes 2\n0 source 0 0\n1 sink 1 0 0 1\n";
  EXPECT_THROW(read_tree_from_string(text), std::runtime_error);
}

TEST(TreeIo, RejectsUnknownKind) {
  const std::string text =
      "vabi-tree v1\nnodes 2\n0 source 0 0\n1 widget 1 0 0 1\n";
  EXPECT_THROW(read_tree_from_string(text), std::runtime_error);
}

TEST(TreeIo, RejectsTruncatedFile) {
  const std::string text = "vabi-tree v1\nnodes 3\n0 source 0 0\n";
  EXPECT_THROW(read_tree_from_string(text), std::runtime_error);
}

TEST(TreeIo, SaveAndLoadFile) {
  const routing_tree t = small_tree();
  const std::string path = ::testing::TempDir() + "/vabi_tree_io_test.tree";
  save_tree(path, t);
  const routing_tree u = load_tree(path);
  EXPECT_EQ(write_tree_to_string(u), write_tree_to_string(t));
  EXPECT_THROW(load_tree("/nonexistent/dir/x.tree"), std::runtime_error);
}

}  // namespace
}  // namespace vabi::tree
