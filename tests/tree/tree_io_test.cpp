#include "tree/tree_io.hpp"

#include <gtest/gtest.h>

#include <bit>

#include "tree/benchmarks.hpp"
#include "tree/generators.hpp"

namespace vabi::tree {
namespace {

routing_tree small_tree() {
  routing_tree t{{0.0, 0.0}};
  const auto a = t.add_steiner(t.root(), {100.0, 0.0});
  t.add_sink(a, {200.0, 0.0}, 0.015, -3.0);
  t.add_sink(a, {100.0, 150.0}, 0.02, 0.0);
  return t;
}

TEST(TreeIo, RoundTripsSmallTree) {
  const routing_tree t = small_tree();
  const std::string text = write_tree_to_string(t);
  const routing_tree u = read_tree_from_string(text);
  ASSERT_EQ(u.num_nodes(), t.num_nodes());
  ASSERT_EQ(u.num_sinks(), t.num_sinks());
  for (node_id id = 0; id < t.num_nodes(); ++id) {
    EXPECT_EQ(u.node(id).kind, t.node(id).kind);
    EXPECT_EQ(u.node(id).parent, t.node(id).parent);
    EXPECT_DOUBLE_EQ(u.node(id).location.x, t.node(id).location.x);
    EXPECT_DOUBLE_EQ(u.node(id).location.y, t.node(id).location.y);
    EXPECT_DOUBLE_EQ(u.node(id).parent_wire_um, t.node(id).parent_wire_um);
    EXPECT_DOUBLE_EQ(u.node(id).sink_cap_pf, t.node(id).sink_cap_pf);
    EXPECT_DOUBLE_EQ(u.node(id).sink_rat_ps, t.node(id).sink_rat_ps);
  }
}

TEST(TreeIo, RoundTripsGeneratedTreeExactly) {
  random_tree_options o;
  o.num_sinks = 57;
  o.seed = 5;
  const routing_tree t = make_random_tree(o);
  const routing_tree u =
      read_tree_from_string(write_tree_to_string(t));
  EXPECT_EQ(write_tree_to_string(u), write_tree_to_string(t));
}

TEST(TreeIo, IgnoresComments) {
  const std::string text =
      "vabi-tree v1\n"
      "# a comment\n"
      "nodes 2\n"
      "0 source 0 0\n"
      "# another\n"
      "1 sink 10 0 0 10 0.01 0\n";
  const routing_tree t = read_tree_from_string(text);
  EXPECT_EQ(t.num_sinks(), 1u);
}

TEST(TreeIo, RejectsBadHeader) {
  EXPECT_THROW(read_tree_from_string("nope\n"), std::runtime_error);
  EXPECT_THROW(read_tree_from_string("vabi-tree v1\nnodes 0\n"),
               std::runtime_error);
}

TEST(TreeIo, RejectsOutOfOrderIds) {
  const std::string text =
      "vabi-tree v1\nnodes 2\n0 source 0 0\n2 sink 1 0 0 1 0.01 0\n";
  EXPECT_THROW(read_tree_from_string(text), std::runtime_error);
}

TEST(TreeIo, RejectsMissingSinkFields) {
  const std::string text =
      "vabi-tree v1\nnodes 2\n0 source 0 0\n1 sink 1 0 0 1\n";
  EXPECT_THROW(read_tree_from_string(text), std::runtime_error);
}

TEST(TreeIo, RejectsUnknownKind) {
  const std::string text =
      "vabi-tree v1\nnodes 2\n0 source 0 0\n1 widget 1 0 0 1\n";
  EXPECT_THROW(read_tree_from_string(text), std::runtime_error);
}

TEST(TreeIo, RejectsTruncatedFile) {
  const std::string text = "vabi-tree v1\nnodes 3\n0 source 0 0\n";
  EXPECT_THROW(read_tree_from_string(text), std::runtime_error);
}

TEST(TreeIo, SaveAndLoadFile) {
  const routing_tree t = small_tree();
  const std::string path = ::testing::TempDir() + "/vabi_tree_io_test.tree";
  save_tree(path, t);
  const routing_tree u = load_tree(path);
  EXPECT_EQ(write_tree_to_string(u), write_tree_to_string(t));
  EXPECT_THROW(load_tree("/nonexistent/dir/x.tree"), std::runtime_error);
}

TEST(TreeIo, RoundTripsPaperBenchmarksBitExactly) {
  // save -> load must reproduce every double field to the exact bit pattern
  // over all seven Table-1 benchmarks: the writer emits max_digits10
  // decimal digits, the guaranteed-round-trip precision. Since the solver is
  // a deterministic function of the tree's bits, this is what makes solving
  // a reloaded tree bit-identical to solving the in-memory one (the journal
  // resume contract leans on the same property for fingerprinting).
  const auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
  for (const auto& spec : paper_benchmarks()) {
    SCOPED_TRACE(spec.name);
    const routing_tree t = build_benchmark(spec);
    const routing_tree u = read_tree_from_string(write_tree_to_string(t));
    ASSERT_EQ(u.num_nodes(), t.num_nodes());
    for (node_id id = 0; id < t.num_nodes(); ++id) {
      const auto& a = t.node(id);
      const auto& b = u.node(id);
      ASSERT_EQ(b.kind, a.kind) << "node " << id;
      ASSERT_EQ(b.parent, a.parent) << "node " << id;
      ASSERT_EQ(bits(b.location.x), bits(a.location.x)) << "node " << id;
      ASSERT_EQ(bits(b.location.y), bits(a.location.y)) << "node " << id;
      ASSERT_EQ(bits(b.parent_wire_um), bits(a.parent_wire_um))
          << "node " << id;
      ASSERT_EQ(bits(b.sink_cap_pf), bits(a.sink_cap_pf)) << "node " << id;
      ASSERT_EQ(bits(b.sink_rat_ps), bits(a.sink_rat_ps)) << "node " << id;
    }
    // A second trip through text must be byte-stable (the fixed point is
    // reached immediately -- no drift from repeated save/load cycles).
    EXPECT_EQ(write_tree_to_string(u), write_tree_to_string(t));
  }
}

TEST(TreeIo, RoundTripsAdversarialDoublesExactly) {
  // Coordinates and caps chosen to need all 17 digits: values that lose a
  // bit under %.15g or naive streaming. (Non-finite values are rejected at
  // parse time by design, so only finite doubles must survive.)
  routing_tree t{{0.1 + 0.2, 1.0 / 3.0}};
  const auto a = t.add_steiner(t.root(), {6755399441055744.0 / 3.0, 0.1},
                               1e-9);
  t.add_sink(a, {1.7976931348623157e308 / 1e300, 2.2250738585072014e-308},
             0.015000000000000001, -3000.0000000000005);
  const routing_tree u = read_tree_from_string(write_tree_to_string(t));
  const auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
  for (node_id id = 0; id < t.num_nodes(); ++id) {
    ASSERT_EQ(bits(u.node(id).location.x), bits(t.node(id).location.x));
    ASSERT_EQ(bits(u.node(id).location.y), bits(t.node(id).location.y));
    ASSERT_EQ(bits(u.node(id).parent_wire_um), bits(t.node(id).parent_wire_um));
    ASSERT_EQ(bits(u.node(id).sink_cap_pf), bits(t.node(id).sink_cap_pf));
    ASSERT_EQ(bits(u.node(id).sink_rat_ps), bits(t.node(id).sink_rat_ps));
  }
}

}  // namespace
}  // namespace vabi::tree
