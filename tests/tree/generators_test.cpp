#include "tree/generators.hpp"

#include <gtest/gtest.h>

namespace vabi::tree {
namespace {

TEST(RandomTree, SinkAndPositionCountsMatchTable1Convention) {
  for (std::size_t n : {1u, 2u, 3u, 10u, 269u}) {
    random_tree_options o;
    o.num_sinks = n;
    o.seed = n;
    const routing_tree t = make_random_tree(o);
    EXPECT_EQ(t.num_sinks(), n);
    if (n > 1) {
      EXPECT_EQ(t.num_buffer_positions(), 2 * n - 1) << "sinks=" << n;
    }
    EXPECT_NO_THROW(t.validate());
  }
}

TEST(RandomTree, DeterministicInSeed) {
  random_tree_options o;
  o.num_sinks = 40;
  o.seed = 7;
  const routing_tree a = make_random_tree(o);
  const routing_tree b = make_random_tree(o);
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  for (node_id id = 0; id < a.num_nodes(); ++id) {
    EXPECT_DOUBLE_EQ(a.node(id).location.x, b.node(id).location.x);
    EXPECT_DOUBLE_EQ(a.node(id).location.y, b.node(id).location.y);
  }
  o.seed = 8;
  const routing_tree c = make_random_tree(o);
  bool any_diff = false;
  for (node_id id = 0; id < std::min(a.num_nodes(), c.num_nodes()); ++id) {
    any_diff |= a.node(id).location.x != c.node(id).location.x;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RandomTree, SinksInsideDie) {
  random_tree_options o;
  o.num_sinks = 100;
  o.die_side_um = 3000.0;
  o.seed = 3;
  const routing_tree t = make_random_tree(o);
  const auto box = t.bounding_box();
  EXPECT_GE(box.lo.x, 0.0);
  EXPECT_LE(box.hi.x, 3000.0);
  EXPECT_GE(box.lo.y, 0.0);
  EXPECT_LE(box.hi.y, 3000.0);
}

TEST(RandomTree, SinkCapsWithinRange) {
  random_tree_options o;
  o.num_sinks = 64;
  o.sink_cap_min_pf = 0.01;
  o.sink_cap_max_pf = 0.02;
  const routing_tree t = make_random_tree(o);
  for (node_id s : t.sinks()) {
    EXPECT_GE(t.node(s).sink_cap_pf, 0.01);
    EXPECT_LE(t.node(s).sink_cap_pf, 0.02);
  }
}

TEST(RandomTree, CriticalityBalanceTightensNearSinks) {
  random_tree_options o;
  o.num_sinks = 60;
  o.die_side_um = 8000.0;
  o.seed = 44;
  o.criticality_balance = 1.0;
  const routing_tree t = make_random_tree(o);
  const auto src = t.node(t.root()).location;
  // The farthest sink keeps RAT ~ 0; nearer sinks get more negative RATs,
  // in proportion to their distance advantage.
  double max_dist = 0.0;
  for (node_id s : t.sinks()) {
    max_dist = std::max(max_dist,
                        layout::manhattan_distance(src, t.node(s).location));
  }
  for (node_id s : t.sinks()) {
    const double dist = layout::manhattan_distance(src, t.node(s).location);
    const double expected = -o.balance_delay_per_um * (max_dist - dist);
    EXPECT_NEAR(t.node(s).sink_rat_ps, expected, 1e-9);
    EXPECT_LE(t.node(s).sink_rat_ps, 1e-9);
  }
}

TEST(RandomTree, ZeroBalanceKeepsFlatRats) {
  random_tree_options o;
  o.num_sinks = 20;
  o.seed = 45;
  o.sink_rat_ps = -7.0;
  const routing_tree t = make_random_tree(o);
  for (node_id s : t.sinks()) {
    EXPECT_DOUBLE_EQ(t.node(s).sink_rat_ps, -7.0);
  }
}

TEST(RandomTree, RejectsBadOptions) {
  random_tree_options o;
  o.num_sinks = 0;
  EXPECT_THROW(make_random_tree(o), std::invalid_argument);
  o.num_sinks = 2;
  o.die_side_um = 0.0;
  EXPECT_THROW(make_random_tree(o), std::invalid_argument);
}

TEST(HTree, SinkCountIsFourToTheLevels) {
  for (std::size_t levels : {1u, 2u, 3u, 4u}) {
    h_tree_options o;
    o.levels = levels;
    const routing_tree t = make_h_tree(o);
    std::size_t expected = 1;
    for (std::size_t i = 0; i < levels; ++i) expected *= 4;
    EXPECT_EQ(t.num_sinks(), expected) << "levels=" << levels;
    EXPECT_NO_THROW(t.validate());
  }
}

TEST(HTree, PerfectlySymmetricWireLengths) {
  h_tree_options o;
  o.levels = 3;
  const routing_tree t = make_h_tree(o);
  // All sinks must be equidistant from the root along tree edges.
  std::vector<double> depth(t.num_nodes(), 0.0);
  for (node_id id = 1; id < t.num_nodes(); ++id) {
    depth[id] = depth[t.node(id).parent] + t.node(id).parent_wire_um;
  }
  double first = -1.0;
  for (node_id s : t.sinks()) {
    if (first < 0.0) first = depth[s];
    EXPECT_NEAR(depth[s], first, 1e-9);
  }
}

TEST(HTree, RejectsZeroLevels) {
  h_tree_options o;
  o.levels = 0;
  EXPECT_THROW(make_h_tree(o), std::invalid_argument);
}

TEST(Chain, StructureAndLengths) {
  chain_options o;
  o.length_um = 1000.0;
  o.segments = 4;
  const routing_tree t = make_chain(o);
  EXPECT_EQ(t.num_sinks(), 1u);
  EXPECT_EQ(t.num_nodes(), 5u);  // source + 3 steiner + sink
  EXPECT_NEAR(t.total_wire_um(), 1000.0, 1e-9);
  EXPECT_NO_THROW(t.validate());
}

TEST(Chain, SingleSegmentIsDirectWire) {
  chain_options o;
  o.segments = 1;
  const routing_tree t = make_chain(o);
  EXPECT_EQ(t.num_nodes(), 2u);
  EXPECT_THROW((make_chain(chain_options{.length_um = 0.0})),
               std::invalid_argument);
}

}  // namespace
}  // namespace vabi::tree
